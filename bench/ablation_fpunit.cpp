// Ablation: the directory's combine FP unit (§5.1.3).
//
// "Since a cache line contains several individual data elements, such
//  execution units may become a bottleneck if their performance is too
//  low. Luckily, all the elements of a line can be processed in parallel
//  or in a pipelined fashion."
//
// Sweep: pipelined (II=3) vs. unpipelined (II=18 ≈ full latency per
// element), and 1 vs. 2 units, on the combine-heaviest codes.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

int main() {
  using namespace sapp;
  using namespace sapp::sim;

  const double scale = bench::workload_scale(0.15);
  std::printf("=== Ablation: combine FP unit (PCLR Hw, 16 nodes, scale "
              "%.2f) ===\n\n", scale);

  const auto rows = workloads::table2_rows(scale);
  Table t({"App", "Units", "II cy", "Loop Mcy", "Flush Mcy", "Total Mcy"});
  for (const auto& row : rows) {
    struct Cfg {
      unsigned units;
      unsigned ii;
    };
    for (const Cfg c : {Cfg{1, 3}, Cfg{1, 18}, Cfg{2, 3}, Cfg{2, 18}}) {
      MachineConfig cfg = MachineConfig::paper(16);
      cfg.fp_units = c.units;
      cfg.fp_initiation = c.ii;
      const auto r = simulate_reduction(row.workload, Mode::kHw, cfg);
      t.add_row({row.workload.app,
                 Table::num(static_cast<long long>(c.units)),
                 Table::num(static_cast<long long>(c.ii)),
                 Table::num(r.phase("loop") / 1e6, 3),
                 Table::num(r.phase("merge") / 1e6, 3),
                 Table::num(r.total_cycles / 1e6, 3)});
    }
  }
  t.print();
  std::printf("\nAn unpipelined adder (II=18) stretches the flush and can "
              "back up displacement combining into the loop; a second unit "
              "recovers most of it — matching the paper's \"pipeline it or "
              "add units\" remedy.\n");
  return 0;
}
