// Ablation: shared-data page placement vs. loop scaling.
//
// "Pages of shared data are allocated in the memory module of the first
//  processor that accesses them" (§6.1) — but *who touches first* depends
//  on how the program initializes its inputs. This sweep shows the three
//  regimes: master-initialized inputs (everything homed at node 0),
//  OS page interleaving, and parallel (reader-local) initialization.
//  Placement does not change what PCLR does; it changes how much the loop
//  phase scales — often the difference between a 4x and a 14x application.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

int main() {
  using namespace sapp;
  using namespace sapp::sim;

  const double scale = bench::workload_scale(0.15);
  std::printf("=== Ablation: input page placement (PCLR Hw, 16 nodes, "
              "scale %.2f) ===\n\n", scale);

  const auto rows = workloads::table2_rows(scale);
  Table t({"App", "Placement", "Loop Mcy", "Total Mcy", "Speedup"});
  struct Policy {
    MachineConfig::InputPlacement pl;
    const char* name;
  };
  const Policy policies[] = {
      {MachineConfig::InputPlacement::kMaster, "master"},
      {MachineConfig::InputPlacement::kRoundRobin, "round-robin"},
      {MachineConfig::InputPlacement::kReaderLocal, "reader-local"},
  };
  for (const auto& row : rows) {
    MachineConfig cfg = MachineConfig::paper(16);
    const auto seq =
        simulate_reduction(row.workload, Mode::kSeq, cfg).total_cycles;
    for (const Policy& pol : policies) {
      cfg.input_placement = pol.pl;
      const auto r = simulate_reduction(row.workload, Mode::kHw, cfg);
      t.add_row({row.workload.app, pol.name,
                 Table::num(r.phase("loop") / 1e6, 3),
                 Table::num(r.total_cycles / 1e6, 3),
                 Table::num(static_cast<double>(seq) / r.total_cycles, 1)});
    }
  }
  t.print();
  std::printf("\nInput-heavy codes (Nbf streams 800 B of pair list per "
              "iteration) are most sensitive; compute-heavy ones barely "
              "notice. The paper's per-application speedup spread (4x-15.6x "
              "under the same hardware) lives in exactly this kind of "
              "difference.\n");
  return 0;
}
