// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdlib>
#include <string>

namespace sapp::bench {

/// Workload scale factor: 1.0 reproduces the paper's sizes; the default is
/// reduced so `for b in build/bench/*; do $b; done` finishes in minutes.
/// Set SAPP_FULL=1 for full-size runs, or SAPP_SCALE=<0..1> explicitly.
inline double workload_scale(double default_scale) {
  if (const char* full = std::getenv("SAPP_FULL");
      full != nullptr && full[0] == '1')
    return 1.0;
  if (const char* s = std::getenv("SAPP_SCALE"); s != nullptr) {
    const double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return default_scale;
}

/// Thread count for software-scheme measurements (the paper used 8
/// processors; the host decides what is realistic).
inline unsigned software_threads(unsigned fallback = 8) {
  if (const char* s = std::getenv("SAPP_THREADS"); s != nullptr) {
    const int v = std::atoi(s);
    if (v >= 1 && v <= 256) return static_cast<unsigned>(v);
  }
  return fallback;
}

}  // namespace sapp::bench
