// sapp_repro — one-command reproduction of the paper's experiments.
//
//   sapp_repro --list
//   sapp_repro --all --format table,json
//   sapp_repro fig3_adaptive_table --threads 8
//
// All logic lives in src/repro/ (registry, experiments, renderers); this
// translation unit only exists so the CLI gets built as a binary.
#include "repro/runner.hpp"

int main(int argc, char** argv) { return sapp::repro::run_cli(argc, argv); }
