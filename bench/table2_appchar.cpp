// Table 2 — application characteristics, including the two simulation-
// derived columns: reduction lines flushed at the end of the loop and
// reduction lines displaced (combined in the background) during the loop,
// both measured on the 16-processor PCLR (Hw) configuration.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/characterize.hpp"
#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

int main() {
  using namespace sapp;
  using namespace sapp::sim;

  // Full size by default: the flushed/displaced columns are meaningful
  // only when the reduction arrays have their paper footprints (Hw-only
  // runs keep this cheap).
  const double scale = bench::workload_scale(1.0);
  const MachineConfig cfg = MachineConfig::paper(16);
  std::printf("=== Table 2: application characteristics (16-processor "
              "simulation) ===\nworkload scale: %.2f — paper values in "
              "(parentheses)\n\n", scale);

  Table t({"Appl.", "Loop", "Iters/inv", "Instr/iter", "RedOps/iter",
           "RedArray KB", "Lines flushed", "Lines displaced"});
  for (const auto& row : workloads::table2_rows(scale)) {
    const auto& w = row.workload;
    const auto& p = w.input.pattern;
    const auto hw = simulate_reduction(w, Mode::kHw, cfg);

    const double red_per_iter = static_cast<double>(p.num_refs()) /
                                static_cast<double>(p.iterations());
    const double kb =
        static_cast<double>(p.dim) * sizeof(double) / 1024.0;
    auto with_paper = [](std::string got, std::string paper) {
      return got + " (" + paper + ")";
    };
    t.add_row({w.app, w.loop,
               with_paper(Table::num(static_cast<long long>(p.iterations())),
                          Table::num(static_cast<long long>(
                              row.paper_iters))),
               with_paper(Table::num(static_cast<long long>(
                              w.instr_per_iter)),
                          Table::num(static_cast<long long>(
                              row.paper_instr_per_iter))),
               with_paper(Table::num(red_per_iter, 0),
                          Table::num(static_cast<long long>(
                              row.paper_red_per_iter))),
               with_paper(Table::num(kb, 1), Table::num(row.paper_array_kb, 1)),
               with_paper(Table::num(static_cast<long long>(
                              hw.counters.red_lines_flushed)),
                          Table::num(static_cast<long long>(
                              row.paper_lines_flushed))),
               with_paper(Table::num(static_cast<long long>(
                              hw.counters.red_lines_displaced)),
                          Table::num(static_cast<long long>(
                              row.paper_lines_displaced)))});
  }
  t.print();
  std::printf("\nNotes: flushed/displaced counts are per processor per "
              "invocation summed over processors, as in the paper's last "
              "two columns. Iteration counts scale with SAPP_SCALE; the "
              "paper columns are the full-size values.\n");
  return 0;
}
