// Micro-benchmarks: per-scheme cost across pattern shapes — the raw
// material behind the ToolBox cost models. Uses Google Benchmark when
// available; otherwise CMake builds this file against the vendored
// microbench.hpp timer so the binary still exists on bare toolchains.
#if defined(SAPP_HAVE_GBENCH)
#include <benchmark/benchmark.h>
#else
#include "microbench.hpp"
#endif

#include "common/rng.hpp"
#include "reductions/registry.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace sapp;

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

/// Pattern shapes spanning the taxonomy's regimes.
workloads::SynthParams shape(int id) {
  workloads::SynthParams p;
  p.seed = 1234 + id;
  switch (id) {
    case 0:  // dense reuse, small array (rep territory)
      p.dim = 8192;
      p.distinct = 6000;
      p.iterations = 100000;
      p.refs_per_iter = 2;
      break;
    case 1:  // moderate, mesh-local (lw territory)
      p.dim = 262144;
      p.distinct = 30000;
      p.iterations = 60000;
      p.refs_per_iter = 2;
      p.locality = 0.95;
      p.window = 64;
      break;
    case 2:  // low sharing (sel territory)
      p.dim = 131072;
      p.distinct = 40000;
      p.iterations = 80000;
      p.refs_per_iter = 1;
      p.locality = 0.9;
      break;
    default:  // very sparse scatter (hash territory)
      p.dim = 1 << 20;
      p.distinct = 3000;
      p.iterations = 4000;
      p.refs_per_iter = 24;
      p.locality = 0.2;
      break;
  }
  return p;
}

void BM_Scheme(benchmark::State& state) {
  const auto kind = static_cast<SchemeKind>(state.range(0));
  const auto in = workloads::make_synthetic(shape(static_cast<int>(state.range(1))));
  const auto scheme = make_scheme(kind);
  if (!scheme->applicable(in.pattern)) {
    state.SkipWithError("scheme not applicable");
    return;
  }
  const auto plan = scheme->plan(in.pattern, pool().size());
  std::vector<double> out(in.pattern.dim, 0.0);
  for (auto _ : state) {
    scheme->execute(plan.get(), in, pool(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.pattern.num_refs()));
  state.SetLabel(std::string(to_string(kind)));
}

void BM_SchemePlan(benchmark::State& state) {
  const auto kind = static_cast<SchemeKind>(state.range(0));
  const auto in = workloads::make_synthetic(shape(2));
  const auto scheme = make_scheme(kind);
  if (!scheme->applicable(in.pattern)) {
    state.SkipWithError("scheme not applicable");
    return;
  }
  for (auto _ : state) {
    auto plan = scheme->plan(in.pattern, pool().size());
    benchmark::DoNotOptimize(plan.get());
  }
  state.SetLabel(std::string(to_string(kind)) + "-inspector");
}

}  // namespace

BENCHMARK(BM_Scheme)
    ->ArgsProduct({{static_cast<long>(sapp::SchemeKind::kRep),
                    static_cast<long>(sapp::SchemeKind::kLocalWrite),
                    static_cast<long>(sapp::SchemeKind::kLinked),
                    static_cast<long>(sapp::SchemeKind::kSelective),
                    static_cast<long>(sapp::SchemeKind::kHash)},
                   {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SchemePlan)
    ->Args({static_cast<long>(sapp::SchemeKind::kLocalWrite)})
    ->Args({static_cast<long>(sapp::SchemeKind::kSelective)})
    ->Args({static_cast<long>(sapp::SchemeKind::kHash)})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
