// Ablation: how slow can the programmable (Flex) directory controller be
// before PCLR loses its advantage?
//
// The paper reports Flex within ~16% of hardwired Hw and 136% above Sw
// with a MAGIC-style controller. This sweep varies the firmware occupancy
// multiplier and reports the harmonic-mean speedup over the Table 2 codes
// (16 nodes), locating the crossover with the software-only scheme.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

int main() {
  using namespace sapp;
  using namespace sapp::sim;

  const double scale = bench::workload_scale(0.15);
  std::printf("=== Ablation: Flex controller occupancy (16 nodes, scale "
              "%.2f) ===\n\n", scale);

  const auto rows = workloads::table2_rows(scale);
  MachineConfig base = MachineConfig::paper(16);

  // Reference points: Seq and Sw per app.
  std::vector<double> seq_cycles, sw_speedup;
  for (const auto& row : rows) {
    const auto seq =
        simulate_reduction(row.workload, Mode::kSeq, base).total_cycles;
    const auto sw =
        simulate_reduction(row.workload, Mode::kSw, base).total_cycles;
    seq_cycles.push_back(static_cast<double>(seq));
    sw_speedup.push_back(static_cast<double>(seq) / sw);
  }
  const double sw_hm = harmonic_mean(sw_speedup);

  Table t({"Occupancy x", "Flex speedup (hm)", "vs Hw", "vs Sw"});
  double hw_hm = 0.0;
  for (const double mult : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 20.0}) {
    MachineConfig cfg = base;
    cfg.flex_occupancy_mult = mult;
    std::vector<double> spd;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto fx =
          simulate_reduction(rows[i].workload, Mode::kFlex, cfg)
              .total_cycles;
      spd.push_back(seq_cycles[i] / fx);
    }
    const double hm = harmonic_mean(spd);
    if (mult == 1.0) hw_hm = hm;  // x1 == hardwired occupancy
    char vs_hw[32], vs_sw[32];
    std::snprintf(vs_hw, sizeof vs_hw, "%+.0f%%", 100.0 * (hm / hw_hm - 1.0));
    std::snprintf(vs_sw, sizeof vs_sw, "%+.0f%%", 100.0 * (hm / sw_hm - 1.0));
    t.add_row({Table::num(mult, 0), Table::num(hm, 2), vs_hw, vs_sw});
  }
  t.print();
  std::printf("\nSw harmonic-mean speedup: %.2f. The paper's MAGIC-style "
              "controller sits near x6 (Flex ~16%% below Hw); PCLR stays "
              "ahead of Sw far beyond that.\n", sw_hm);
  return 0;
}
