// Micro-benchmarks: cost of the run-time pattern characterization (§4's
// "simple, fast ways to recognize" access patterns), exact vs. sampled —
// the overhead SmartApps pays before it can decide. Uses Google Benchmark
// when available; otherwise CMake builds this file against the vendored
// microbench.hpp timer so the binary still exists on bare toolchains.
#if defined(SAPP_HAVE_GBENCH)
#include <benchmark/benchmark.h>
#else
#include "microbench.hpp"
#endif

#include "core/characterize.hpp"
#include "core/phase_monitor.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace sapp;

ReductionInput input() {
  workloads::SynthParams p;
  p.dim = 500000;
  p.distinct = 80000;
  p.iterations = 400000;
  p.refs_per_iter = 2;
  p.seed = 77;
  return workloads::make_synthetic(p);
}

void BM_CharacterizeExact(benchmark::State& state) {
  const auto in = input();
  for (auto _ : state) {
    const PatternStats s = characterize(in.pattern, 8);
    benchmark::DoNotOptimize(s.distinct);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.pattern.num_refs()));
}

void BM_CharacterizeSampled(benchmark::State& state) {
  const auto in = input();
  CharacterizeOptions opt;
  opt.sample_stride = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const PatternStats s = characterize(in.pattern, 8, opt);
    benchmark::DoNotOptimize(s.distinct);
  }
  state.SetLabel("stride=" + std::to_string(state.range(0)));
}

void BM_PatternSignature(benchmark::State& state) {
  const auto in = input();
  for (auto _ : state) {
    const auto sig = PatternSignature::of(in.pattern);
    benchmark::DoNotOptimize(sig.sampled_index_sum);
  }
}

}  // namespace

BENCHMARK(BM_CharacterizeExact)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CharacterizeSampled)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PatternSignature)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
