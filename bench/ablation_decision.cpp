// Ablation: sensitivity of the rule-taxonomy decision to its thresholds,
// and rule-vs-cost-model agreement across the Fig. 3 parameter sets.
//
// The paper's selector is threshold-based ("a threshold that is tested at
// run-time"); this sweep shows how many of the 21 Fig. 3 decisions flip as
// the two most influential cut-points move.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/decision.hpp"
#include "workloads/paramsets.hpp"

int main() {
  using namespace sapp;

  const double scale = bench::workload_scale(0.1);
  const unsigned threads = bench::software_threads(8);
  std::printf("=== Ablation: decision thresholds (Fig. 3 rows, %u threads) "
              "===\n\n", threads);

  // Characterize all rows once.
  const auto rows = workloads::fig3_rows(scale);
  std::vector<PatternStats> stats;
  for (const auto& r : rows)
    stats.push_back(characterize(r.workload.input.pattern, threads));

  // Baseline decisions.
  const RuleThresholds base;
  std::vector<SchemeKind> base_pick;
  for (const auto& s : stats) base_pick.push_back(decide_rules(s).recommended);

  Table t({"hash_sp_max", "rep_chr_min", "ll_shared_min", "flips",
           "hash-picks", "rep-picks", "lw-picks", "ll-picks", "sel-picks"});
  for (const double sp_max : {1.0, 3.0, 6.0}) {
    for (const double chr_min : {1.0, 2.0, 4.0}) {
      for (const double ll_min : {0.2, 0.35, 0.6}) {
        RuleThresholds th = base;
        th.hash_sp_max = sp_max;
        th.rep_chr_min = chr_min;
        th.ll_shared_min = ll_min;
        int flips = 0;
        int picks[5] = {0, 0, 0, 0, 0};
        for (std::size_t i = 0; i < stats.size(); ++i) {
          const SchemeKind k = decide_rules(stats[i], th).recommended;
          if (k != base_pick[i]) ++flips;
          switch (k) {
            case SchemeKind::kHash: ++picks[0]; break;
            case SchemeKind::kRep: ++picks[1]; break;
            case SchemeKind::kLocalWrite: ++picks[2]; break;
            case SchemeKind::kLinked: ++picks[3]; break;
            case SchemeKind::kSelective: ++picks[4]; break;
            default: break;
          }
        }
        t.add_row({Table::num(sp_max, 1), Table::num(chr_min, 1),
                   Table::num(ll_min, 2),
                   Table::num(static_cast<long long>(flips)),
                   Table::num(static_cast<long long>(picks[0])),
                   Table::num(static_cast<long long>(picks[1])),
                   Table::num(static_cast<long long>(picks[2])),
                   Table::num(static_cast<long long>(picks[3])),
                   Table::num(static_cast<long long>(picks[4]))});
      }
    }
  }
  t.print();

  // Rule vs model agreement at the defaults.
  ThreadPool pool(2);
  const MachineCoeffs mc = MachineCoeffs::calibrate(pool);
  int agree = 0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const auto m = decide_model(
        stats[i], rows[i].workload.input.pattern.body_flops, mc);
    if (m.recommended == base_pick[i]) ++agree;
  }
  std::printf("\nrule-taxonomy vs cost-model agreement at defaults: %d/%zu "
              "rows\n", agree, stats.size());
  return 0;
}
