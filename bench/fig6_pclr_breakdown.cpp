// Figure 6 — execution time under Sw / Hw / Flex on a 16-node CC-NUMA,
// normalized to Sw and broken into Init / Loop / Merge, with speedups over
// sequential execution printed above each bar (here: as columns).
//
// Paper reference values (16 nodes):
//   speedups  Sw / Hw / Flex
//   Euler     1.3 /  4.0 /  3.5
//   Equake    7.3 / 14.0 / 10.6
//   Vml       3.1 /  6.1 /  5.0
//   Charmm    1.9 /  9.9 /  7.7
//   Nbf       9.1 / 15.6 / 14.2
//   harmonic means: Sw 2.7, Hw 7.6, Flex 6.4.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

namespace {

using namespace sapp;
using namespace sapp::sim;

struct AppResult {
  std::string app;
  Cycle seq;
  RunResult sw, hw, flex;
};

double spd(Cycle seq, const RunResult& r) {
  return static_cast<double>(seq) / static_cast<double>(r.total_cycles);
}

}  // namespace

int main() {
  const double scale = bench::workload_scale(0.25);
  const MachineConfig cfg = MachineConfig::paper(16);

  std::printf("=== Figure 6: PCLR vs software-only reductions (16 nodes) "
              "===\n%s\nworkload scale: %.2f (SAPP_FULL=1 for paper "
              "sizes)\n\n",
              cfg.table1().c_str(), scale);

  std::vector<AppResult> results;
  for (const auto& row : workloads::table2_rows(scale)) {
    AppResult r;
    r.app = row.workload.app;
    r.seq = simulate_reduction(row.workload, Mode::kSeq, cfg).total_cycles;
    r.sw = simulate_reduction(row.workload, Mode::kSw, cfg);
    r.hw = simulate_reduction(row.workload, Mode::kHw, cfg);
    r.flex = simulate_reduction(row.workload, Mode::kFlex, cfg);
    results.push_back(std::move(r));
    std::printf("simulated %-7s seq=%.2fMcy sw=%.2fMcy hw=%.2fMcy "
                "flex=%.2fMcy\n",
                results.back().app.c_str(), results.back().seq / 1e6,
                results.back().sw.total_cycles / 1e6,
                results.back().hw.total_cycles / 1e6,
                results.back().flex.total_cycles / 1e6);
  }

  std::printf("\n-- Normalized execution time (Sw = 1.00), phase "
              "breakdown --\n");
  Table t({"App", "Scheme", "Init", "Loop", "Merge", "Total",
           "Speedup", "Paper-speedup"});
  const auto rows = workloads::table2_rows(scale);
  std::vector<double> sw_spd, hw_spd, flex_spd;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double sw_total = static_cast<double>(r.sw.total_cycles);
    auto add = [&](const char* name, const RunResult& run, double paper) {
      t.add_row({r.app, name,
                 Table::num(run.phase("init") / sw_total, 3),
                 Table::num(run.phase("loop") / sw_total, 3),
                 Table::num(run.phase("merge") / sw_total, 3),
                 Table::num(run.total_cycles / sw_total, 3),
                 Table::num(spd(r.seq, run), 1), Table::num(paper, 1)});
    };
    add("Sw", r.sw, rows[i].paper_speedup_sw);
    add("Hw", r.hw, rows[i].paper_speedup_hw);
    add("Flex", r.flex, rows[i].paper_speedup_flex);
    sw_spd.push_back(spd(r.seq, r.sw));
    hw_spd.push_back(spd(r.seq, r.hw));
    flex_spd.push_back(spd(r.seq, r.flex));
  }
  t.print();

  std::printf("\n-- Harmonic-mean speedups (paper: Sw 2.7, Hw 7.6, Flex "
              "6.4) --\n");
  std::printf("  Sw   %.2f\n  Hw   %.2f\n  Flex %.2f\n",
              harmonic_mean(sw_spd), harmonic_mean(hw_spd),
              harmonic_mean(flex_spd));
  std::printf("  Flex vs Hw gap: %.0f%% (paper: ~16%%)\n",
              100.0 * (1.0 - harmonic_mean(flex_spd) / harmonic_mean(hw_spd)));
  return 0;
}
