// R-LRPD benchmark (§3, ref [5]): speedup of speculative execution of
// partially parallel loops as a function of dependence density.
//
// "We have implemented the Recursive LRPD test and applied it to the three
//  most important loops in TRACK ... prior to this technique, TRACK was
//  considered sequential." The TRACK loops have a few genuine
//  cross-iteration dependences in otherwise parallel work; this harness
//  sweeps that density.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "spec/rlrpd.hpp"

int main() {
  using namespace sapp;
  constexpr std::size_t kN = 30000;
  constexpr std::size_t kDim = 40000;
  constexpr int kWork = 800;  // flops per iteration (TRACK-like heavy body)

  ThreadPool pool(4);
  std::printf("=== R-LRPD: partially parallel loops (N=%zu, %u threads) "
              "===\n\n", kN, pool.size());

  Table t({"dep density", "rounds", "committed", "re-executed", "seq ms",
           "rlrpd ms", "speedup"});
  for (const double density : {0.0, 0.0005, 0.002, 0.01, 0.05}) {
    // Dependence pairs: iteration s writes a flag element, iteration
    // s + gap reads it. Pairs scattered deterministically.
    Rng rng(99);
    std::vector<std::uint8_t> reads_flag(kN, 0), writes_flag(kN, 0);
    const auto deps = static_cast<std::size_t>(density * kN);
    for (std::size_t d = 0; d < deps; ++d) {
      const std::size_t src = rng.below(kN - 200);
      const std::size_t sink = src + 20 + rng.below(150);
      writes_flag[src] = 1;
      reads_flag[sink] = 1;
    }

    const SpecLoopBody body = [&](std::size_t i, SpecArray& a) {
      double x = 1.0 + static_cast<double>(i % 7);
      for (int k = 0; k < kWork; ++k) x = x * 0.999 + 0.01;  // heavy body
      if (writes_flag[i]) a.write(static_cast<std::uint32_t>(kDim - 1), x);
      if (reads_flag[i])
        x += a.read(static_cast<std::uint32_t>(kDim - 1));
      a.reduce_add(static_cast<std::uint32_t>(i % (kDim - 2)), x);
    };

    std::vector<double> seq(kDim, 0.0), par(kDim, 0.0);
    Timer ts;
    sequential_execute(kN, body, seq);
    const double seq_s = ts.seconds();

    ts.restart();
    const RlrpdStats st = rlrpd_execute(kN, body, par, pool);
    const double par_s = ts.seconds();

    t.add_row({Table::num(density, 4),
               Table::num(static_cast<long long>(st.rounds)),
               Table::num(static_cast<long long>(st.committed)),
               Table::num(static_cast<long long>(st.reexecuted)),
               Table::num(seq_s * 1e3, 1), Table::num(par_s * 1e3, 1),
               Table::num(seq_s / par_s, 2)});
  }
  t.print();
  std::printf("\nAt density 0 the loop commits in one round (plain LRPD "
              "pass); as genuine dependences appear, only the suffix past "
              "each earliest sink re-executes, so useful speedup survives "
              "moderate densities — the paper's TRACK result.\n");
  return 0;
}
