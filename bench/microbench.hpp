// Vendored micro-timer fallback for the Google Benchmark API surface the
// bench/ binaries actually use. When libbenchmark is absent, CMake builds
// them against this header instead of skipping them: the BENCHMARK(...)
// registration macros, State's range-for protocol, Args/ArgsProduct and
// the per-iteration report all keep working, just with a plain wall-clock
// timer (no CPU-frequency guards, no statistical repetitions). Numbers
// from this shim are good for eyeballing relative scheme cost, not for
// publication — install libbenchmark-dev to get the real harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

template <class T>
inline void DoNotOptimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(value) : "memory");
#else
  volatile const void* sink = &value;
  (void)sink;
#endif
}

class State {
 public:
  State(std::vector<std::int64_t> args, std::int64_t target)
      : args_(std::move(args)), target_(target) {}

  std::int64_t range(std::size_t i = 0) const { return args_.at(i); }
  std::int64_t iterations() const { return done_; }

  void SkipWithError(const char* msg) {
    skipped_ = true;
    error_ = msg;
    target_ = 0;
  }
  void SetItemsProcessed(std::int64_t n) { items_ = n; }
  void SetLabel(const std::string& label) { label_ = label; }

  // Range-for protocol: `for (auto _ : state)` calls begin() once, then
  // one `it != end()` check per iteration; each check burns one budgeted
  // iteration. The timer spans first check to failing check.
  // Non-trivial ctor + dtor so `for (auto _ : state)` doesn't trip
  // -Wunused-variable / -Wunused-but-set-variable on the loop variable.
  struct value_type {
    value_type() {}
    ~value_type() {}
  };
  struct iterator {
    State* s;
    bool operator!=(const iterator&) const { return s->keep_running(); }
    iterator& operator++() { return *this; }
    value_type operator*() const { return value_type(); }
  };
  iterator begin() {
    start_ = std::chrono::steady_clock::now();
    return {this};
  }
  iterator end() { return {nullptr}; }

  // Runner-side accessors (not part of the benchmark-body API).
  bool skipped() const { return skipped_; }
  const std::string& error() const { return error_; }
  double elapsed_seconds() const { return elapsed_; }
  std::int64_t items_processed() const { return items_; }
  const std::string& label() const { return label_; }

 private:
  bool keep_running() {
    if (done_ >= target_) {
      elapsed_ = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
      return false;
    }
    ++done_;
    return true;
  }

  std::vector<std::int64_t> args_;
  std::int64_t target_ = 0;
  std::int64_t done_ = 0;
  std::int64_t items_ = 0;
  double elapsed_ = 0.0;
  bool skipped_ = false;
  std::string error_;
  std::string label_;
  std::chrono::steady_clock::time_point start_{};
};

namespace internal {

class Benchmark {
 public:
  Benchmark(std::string name, void (*fn)(State&))
      : name_(std::move(name)), fn_(fn) {}

  Benchmark* Arg(std::int64_t arg) {
    arg_sets_.push_back({arg});
    return this;
  }

  Benchmark* Args(std::vector<std::int64_t> args) {
    arg_sets_.push_back(std::move(args));
    return this;
  }

  Benchmark* ArgsProduct(std::vector<std::vector<std::int64_t>> lists) {
    std::vector<std::vector<std::int64_t>> product{{}};
    for (const auto& list : lists) {
      std::vector<std::vector<std::int64_t>> next;
      for (const auto& prefix : product)
        for (const std::int64_t v : list) {
          auto row = prefix;
          row.push_back(v);
          next.push_back(std::move(row));
        }
      product = std::move(next);
    }
    for (auto& row : product) arg_sets_.push_back(std::move(row));
    return this;
  }

  Benchmark* Unit(TimeUnit unit) {
    unit_ = unit;
    return this;
  }

  void run() const {
    const auto sets =
        arg_sets_.empty() ? std::vector<std::vector<std::int64_t>>{{}}
                          : arg_sets_;
    for (const auto& args : sets) {
      std::string id = name_;
      for (const std::int64_t a : args) id += "/" + std::to_string(a);

      // Calibrate by doubling until the run is long enough to trust the
      // wall clock; heavy cases finish on the first (single-iteration)
      // attempt once it alone exceeds the budget.
      constexpr double kMinSeconds = 0.05;
      std::int64_t iters = 1;
      for (;;) {
        State st(args, iters);
        fn_(st);
        if (st.skipped()) {
          std::printf("%-40s SKIPPED: %s\n", id.c_str(), st.error().c_str());
          break;
        }
        if (st.elapsed_seconds() >= kMinSeconds || iters >= (1 << 24)) {
          report(id, st);
          break;
        }
        iters *= 2;
      }
    }
  }

 private:
  void report(const std::string& id, const State& st) const {
    const double per_iter =
        st.elapsed_seconds() / static_cast<double>(st.iterations());
    const char* suffix = "s";
    double scaled = per_iter;
    switch (unit_) {
      case kNanosecond: scaled = per_iter * 1e9; suffix = "ns"; break;
      case kMicrosecond: scaled = per_iter * 1e6; suffix = "us"; break;
      case kMillisecond: scaled = per_iter * 1e3; suffix = "ms"; break;
      case kSecond: break;
    }
    std::printf("%-40s %12.4f %s %10lld iters", id.c_str(), scaled, suffix,
                static_cast<long long>(st.iterations()));
    if (st.items_processed() > 0)
      std::printf("  %.3g items/s",
                  static_cast<double>(st.items_processed()) /
                      st.elapsed_seconds());
    if (!st.label().empty()) std::printf("  %s", st.label().c_str());
    std::printf("\n");
  }

  std::string name_;
  void (*fn_)(State&);
  std::vector<std::vector<std::int64_t>> arg_sets_;
  TimeUnit unit_ = kNanosecond;
};

inline std::vector<Benchmark*>& registry() {
  static std::vector<Benchmark*> r;
  return r;
}

inline Benchmark* register_benchmark(const char* name, void (*fn)(State&)) {
  auto* b = new Benchmark(name, fn);
  registry().push_back(b);
  return b;
}

}  // namespace internal

inline int run_all() {
  std::printf("microbench fallback timer (Google Benchmark not found; "
              "numbers are wall-clock, single-repetition)\n");
  for (const internal::Benchmark* b : internal::registry()) b->run();
  return 0;
}

}  // namespace benchmark

#define BENCHMARK(fn)                                  \
  static ::benchmark::internal::Benchmark* benchmark_registration_##fn = \
      ::benchmark::internal::register_benchmark(#fn, fn)

#define BENCHMARK_MAIN() \
  int main() { return ::benchmark::run_all(); }
