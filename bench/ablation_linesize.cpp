// Ablation: cache-line size vs. PCLR behaviour.
//
// A reduction line is combined whole (every element through the FP unit),
// so longer lines mean fewer, heavier combines and more neutral-element
// slots per displaced line; shorter lines mean more combine transactions.
// §5.1.3's bottleneck discussion is about exactly this traffic.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

int main() {
  using namespace sapp;
  using namespace sapp::sim;

  const double scale = bench::workload_scale(0.15);
  std::printf("=== Ablation: line size (PCLR Hw, 16 nodes, scale %.2f) "
              "===\n\n", scale);

  const auto rows = workloads::table2_rows(scale);
  Table t({"App", "Line B", "Total Mcy", "Fills", "Displaced", "Flushed",
           "Combines"});
  for (const auto& row : rows) {
    for (const unsigned line : {32u, 64u, 128u}) {
      MachineConfig cfg = MachineConfig::paper(16);
      cfg.line_bytes = line;
      const auto r = simulate_reduction(row.workload, Mode::kHw, cfg);
      t.add_row({row.workload.app,
                 Table::num(static_cast<long long>(line)),
                 Table::num(r.total_cycles / 1e6, 3),
                 Table::num(static_cast<long long>(r.counters.red_fills)),
                 Table::num(static_cast<long long>(
                     r.counters.red_lines_displaced)),
                 Table::num(static_cast<long long>(
                     r.counters.red_lines_flushed)),
                 Table::num(static_cast<long long>(r.counters.combines))});
    }
  }
  t.print();
  std::printf("\nLonger lines amortize fills but combine more neutral "
              "elements per write-back; 64 B (the paper's size) balances "
              "the two for these access densities.\n");
  return 0;
}
