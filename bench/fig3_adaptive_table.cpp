// Figure 3 — validation of adaptive reduction-algorithm selection.
//
// For every row of the paper's table (6 applications × input sizes) this
// harness:
//   1. generates the workload from the official parameter set,
//   2. characterizes the reference pattern (MO, DIM, SP, CON, CHR, ...),
//   3. asks both deciders (cost model / rule taxonomy) for a
//      recommendation,
//   4. measures every applicable scheme from the library and reports the
//      experimental ordering (best first),
// and finally scores the recommendations against the measured winners —
// the same validation the paper's table performs.
//
// Host caveat: the paper measured on 8 processors of a dedicated SMP; by
// default this harness uses min(8, 2 x hardware threads). Rankings are the
// reproducible object, not absolute speedups. SAPP_THREADS overrides.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/adaptive.hpp"
#include "workloads/paramsets.hpp"

namespace {

using namespace sapp;

struct Measured {
  SchemeKind kind;
  double seconds;
};

std::string order_string(std::vector<Measured> ms) {
  std::sort(ms.begin(), ms.end(),
            [](const Measured& a, const Measured& b) {
              return a.seconds < b.seconds;
            });
  std::string out;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (i) out += ">=";
    out += to_string(ms[i].kind);
  }
  return out;
}

}  // namespace

int main() {
  const double scale = bench::workload_scale(0.3);
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const unsigned threads = bench::software_threads(std::min(8u, 2 * hw));
  constexpr int kReps = 3;

  std::printf("=== Figure 3: adaptive reduction-scheme selection ===\n"
              "threads: %u (paper: 8 processors), workload scale: %.2f, "
              "best of %d runs\n\n",
              threads, scale, kReps);

  ThreadPool pool(threads);
  const MachineCoeffs coeffs = MachineCoeffs::calibrate(pool);

  Table t({"App", "Input", "MO", "SP%", "CON", "CHR", "Model", "Rules",
           "Paper", "Measured order", "Paper order"});

  int model_hits = 0, rule_hits = 0, paper_hits = 0, rows_counted = 0;
  for (const auto& row : workloads::fig3_rows(scale)) {
    const auto& w = row.workload;
    const auto& in = w.input;

    const PatternStats stats = characterize(in.pattern, threads);
    const Decision model = decide_model(stats, in.pattern.body_flops, coeffs);
    const Decision rules = decide_rules(stats);

    // Measure every applicable candidate. The paper's run-time system pays
    // the inspector and the private-storage allocation at run time, so the
    // ranking charges plan + execute (best of kReps full runs).
    std::vector<Measured> measured;
    std::vector<double> out(in.pattern.dim);
    for (SchemeKind kind : candidate_scheme_kinds()) {
      const auto scheme = make_scheme(kind);
      if (!scheme->applicable(in.pattern)) continue;
      double best = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        std::fill(out.begin(), out.end(), 0.0);
        const SchemeResult r = scheme->run(in, pool, out);
        best = std::min(best, r.total_with_inspect_s());
      }
      measured.push_back({kind, best});
    }
    const SchemeKind winner =
        std::min_element(measured.begin(), measured.end(),
                         [](const Measured& a, const Measured& b) {
                           return a.seconds < b.seconds;
                         })
            ->kind;

    ++rows_counted;
    if (model.recommended == winner) ++model_hits;
    if (rules.recommended == winner) ++rule_hits;
    if (w.paper.recommended == to_string(winner)) ++paper_hits;

    t.add_row({w.app, Table::num(static_cast<long long>(in.pattern.dim)),
               Table::num(stats.mo, 2), Table::num(stats.sp, 2),
               Table::num(stats.con, 1), Table::num(stats.chr, 2),
               std::string(to_string(model.recommended)),
               std::string(to_string(rules.recommended)),
               w.paper.recommended, order_string(measured),
               w.paper.measured_order});
  }
  t.print();

  std::printf("\n-- Decision quality (recommendation == measured winner on "
              "this host) --\n");
  std::printf("  cost model : %d/%d rows\n", model_hits, rows_counted);
  std::printf("  rule table : %d/%d rows\n", rule_hits, rows_counted);
  std::printf("  paper's recommendation vs our measured winner: %d/%d "
              "(pattern stats are host/definition dependent)\n",
              paper_hits, rows_counted);
  std::printf("\nPaper's own model matched its measurements on 16/21 rows; "
              "stat definitions under-specified in the paper are documented "
              "in docs/BENCHMARKS.md.\n");
  return 0;
}
