// Figure 7 — harmonic mean of the speedups delivered by Sw / Hw / Flex at
// 4, 8 and 16 processors.
//
// Paper shape: Hw and Flex scale well (Hw reaching ~7.6 at 16 procs, Flex
// ~16% below); Sw flattens early because the merge step does not shrink
// with more processors (Amdahl's law on the merge).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

int main() {
  using namespace sapp;
  using namespace sapp::sim;

  const double scale = bench::workload_scale(0.15);
  std::printf("=== Figure 7: speedup scalability (harmonic mean over the "
              "Table 2 codes) ===\nworkload scale: %.2f\n\n", scale);

  const auto rows = workloads::table2_rows(scale);

  Table t({"Procs", "Hw", "Flex", "Sw", "Sw-merge-frac"});
  for (unsigned procs : {4u, 8u, 16u}) {
    const MachineConfig cfg = MachineConfig::paper(procs);
    std::vector<double> sw, hw, fx;
    double merge_frac_acc = 0.0;
    for (const auto& row : rows) {
      const auto seq =
          simulate_reduction(row.workload, Mode::kSeq, cfg).total_cycles;
      const auto rs = simulate_reduction(row.workload, Mode::kSw, cfg);
      const auto rh = simulate_reduction(row.workload, Mode::kHw, cfg);
      const auto rf = simulate_reduction(row.workload, Mode::kFlex, cfg);
      sw.push_back(static_cast<double>(seq) / rs.total_cycles);
      hw.push_back(static_cast<double>(seq) / rh.total_cycles);
      fx.push_back(static_cast<double>(seq) / rf.total_cycles);
      merge_frac_acc += static_cast<double>(rs.phase("merge")) /
                        static_cast<double>(rs.total_cycles);
    }
    t.add_row({Table::num(static_cast<long long>(procs)),
               Table::num(harmonic_mean(hw), 2),
               Table::num(harmonic_mean(fx), 2),
               Table::num(harmonic_mean(sw), 2),
               Table::num(merge_frac_acc / rows.size(), 2)});
  }
  t.print();
  std::printf("\npaper at 16 procs: Hw 7.6, Flex 6.4, Sw 2.7; Sw flattens "
              "because its merge phase is constant in P.\n");
  return 0;
}
