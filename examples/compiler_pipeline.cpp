// The full SmartApps pipeline, compiler to runtime (Fig. 1):
//
//   1. the "static compiler" sees the loop's IR and recognizes which
//      arrays are reduction variables (§4 footnote rules),
//   2. at run time, the inspector evaluates the subscripts against the
//      actual input data (the part "not statically available"),
//   3. the adaptive runtime characterizes the extracted pattern, selects
//      a scheme and executes it.
//
// The loop here is Fig. 5's shape with a second, illegal statement mixed
// in to show the analysis catching it.
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "core/runtime.hpp"
#include "frontend/loop_ir.hpp"

int main() {
  using namespace sapp;
  using namespace sapp::frontend;

  // --- The program's loop, as the compiler sees it:
  //   for i in 0..N:  w[x[i]] += force[i];  hist[bin[i]] += 1;
  LoopNest loop;
  loop.name = "assemble";
  loop.iterations = 120000;
  loop.body.push_back({"w", IndexExpr::indirect("x"),
                       Statement::Op::kPlusAssign, ValueExpr::input("force")});
  loop.body.push_back({"hist", IndexExpr::indirect("bin"),
                       Statement::Op::kPlusAssign, ValueExpr::computed()});

  const LoopAnalysis analysis = analyze(loop);
  std::printf("compiler analysis of '%s':\n", loop.name.c_str());
  for (const auto& aa : analysis.arrays)
    std::printf("  %-5s : %s%s\n", aa.array.c_str(),
                aa.is_reduction ? "reduction variable" : "NOT a reduction",
                aa.reason.empty() ? "" : (" (" + aa.reason + ")").c_str());
  std::printf("  iteration replication legal: %s\n\n",
              analysis.iteration_replication_legal ? "yes" : "no");

  // --- Run time: the input data arrives; the inspector extracts the
  // pattern for the 'w' reduction.
  constexpr std::size_t kDim = 60000;
  Rng rng(2024);
  Bindings bindings;
  auto& x = bindings.index_arrays["x"];
  auto& bin = bindings.index_arrays["bin"];
  auto& force = bindings.value_arrays["force"];
  x.reserve(loop.iterations);
  for (std::size_t i = 0; i < loop.iterations; ++i) {
    x.push_back(static_cast<std::uint32_t>(rng.zipf(kDim, 0.5)));
    bin.push_back(static_cast<std::uint32_t>(rng.below(256)));
    force.push_back(rng.uniform(-1.0, 1.0));
  }

  const ReductionInput w_input =
      extract_input(loop, analysis, "w", kDim, bindings);
  const ReductionInput hist_input =
      extract_input(loop, analysis, "hist", 256, bindings);

  // --- The adaptive runtime takes it from here.
  SmartAppsRuntime rt;
  std::vector<double> w(kDim, 0.0), hist(256, 0.0);
  rt.reducer("assemble.w").invoke(w_input, w);
  rt.reducer("assemble.hist").invoke(hist_input, hist);
  std::printf("%s", rt.report().c_str());

  // Sanity against sequential execution.
  std::vector<double> ref(kDim, 0.0);
  run_sequential(w_input, ref);
  double err = 0.0;
  for (std::size_t e = 0; e < kDim; ++e) err = std::max(err, std::abs(ref[e] - w[e]));
  std::printf("max |err| vs sequential: %.2e\n", err);
  return err < 1e-6 ? 0 : 1;
}
