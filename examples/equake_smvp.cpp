// Sparse matrix-vector assembly (the Equake smvp loop) measured under
// every scheme in the library, side by side with the adaptive choice —
// a miniature of the Fig. 3 methodology on one workload.
#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "core/adaptive.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace sapp;

  const auto w = workloads::make_equake(/*scale=*/0.5, /*seed=*/7);
  const ReductionInput& in = w.input;
  std::printf("Equake smvp: %zu rows, %zu reduction ops, array %.0f KB\n\n",
              in.pattern.iterations(), in.pattern.num_refs(),
              in.pattern.dim * sizeof(double) / 1024.0);

  ThreadPool pool(4);
  const MachineCoeffs coeffs = MachineCoeffs::calibrate(pool);

  // Reference result for correctness checking.
  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);

  Table t({"Scheme", "Plan ms", "Init ms", "Loop ms", "Merge ms",
           "Total ms", "Priv KB", "ok"});
  std::vector<double> out(in.pattern.dim);
  double best = 1e300;
  SchemeKind best_kind{};
  for (SchemeKind kind : candidate_scheme_kinds()) {
    const auto scheme = make_scheme(kind);
    if (!scheme->applicable(in.pattern)) continue;
    std::fill(out.begin(), out.end(), 0.0);
    const SchemeResult r = scheme->run(in, pool, out);
    bool ok = true;
    for (std::size_t e = 0; e < ref.size(); e += 37)
      if (std::abs(ref[e] - out[e]) > 1e-6) ok = false;
    t.add_row({std::string(to_string(kind)), Table::num(r.inspect_s * 1e3),
               Table::num(r.phases.init_s * 1e3),
               Table::num(r.phases.loop_s * 1e3),
               Table::num(r.phases.merge_s * 1e3),
               Table::num(r.total_with_inspect_s() * 1e3),
               Table::num(r.private_bytes / 1024.0, 0), ok ? "yes" : "NO"});
    if (r.total_with_inspect_s() < best) {
      best = r.total_with_inspect_s();
      best_kind = kind;
    }
  }
  t.print();

  // What would the adaptive runtime have picked?
  const PatternStats stats = characterize(in.pattern, pool.size());
  const Decision d = decide_model(stats, in.pattern.body_flops, coeffs);
  std::printf("\nmeasured winner : %s\n", to_string(best_kind).data());
  std::printf("model pick      : %s (%s)\n", to_string(d.recommended).data(),
              d.rationale.c_str());
  return 0;
}
