// PCLR demo: run one reduction loop through the simulated CC-NUMA under
// the three code versions of §6 (software-only, hardwired PCLR,
// programmable PCLR), print the Fig. 6-style breakdown, and verify that
// the hardware combining produced exactly the sequential result.
#include <cmath>
#include <cstdio>

#include "common/table.hpp"
#include "sim/codegen.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace sapp;
  using namespace sapp::sim;

  const auto w = workloads::make_euler(/*scale=*/0.25, /*seed=*/3);
  const MachineConfig cfg = MachineConfig::paper(8);
  std::printf("%s\n\nworkload: %s %s (%zu iterations, %zu reduction ops)\n\n",
              cfg.table1().c_str(), w.app.c_str(), w.loop.c_str(),
              w.input.pattern.iterations(), w.input.pattern.num_refs());

  const auto seq = simulate_reduction(w, Mode::kSeq, cfg);

  Table t({"Version", "Init Mcy", "Loop Mcy", "Merge/Flush Mcy",
           "Total Mcy", "Speedup", "Fills", "Displaced", "Flushed"});
  std::vector<double> hw_values(w.input.pattern.dim, 0.0);
  for (Mode m : {Mode::kSw, Mode::kHw, Mode::kFlex}) {
    std::vector<double> vals(w.input.pattern.dim, 0.0);
    const auto r = simulate_reduction(w, m, cfg, vals);
    if (m == Mode::kHw) hw_values = vals;
    t.add_row({std::string(to_string(m)),
               Table::num(r.phase("init") / 1e6, 3),
               Table::num(r.phase("loop") / 1e6, 3),
               Table::num(r.phase("merge") / 1e6, 3),
               Table::num(r.total_cycles / 1e6, 3),
               Table::num(static_cast<double>(seq.total_cycles) /
                              r.total_cycles, 1),
               Table::num(static_cast<long long>(r.counters.red_fills)),
               Table::num(static_cast<long long>(
                   r.counters.red_lines_displaced)),
               Table::num(static_cast<long long>(
                   r.counters.red_lines_flushed))});
  }
  t.print();

  // The directory controllers did the arithmetic: check it.
  std::vector<double> ref(w.input.pattern.dim, 0.0);
  run_sequential(w.input, ref);
  double max_err = 0.0;
  for (std::size_t e = 0; e < ref.size(); ++e)
    max_err = std::max(max_err, std::abs(ref[e] - hw_values[e]));
  std::printf("\nPCLR combine correctness: max |err| vs sequential = %.2e\n",
              max_err);
  std::printf("(reduction lines displaced during the loop were combined in "
              "the background;\n the flush only handled what remained "
              "cached — §5.2's key property.)\n");
  return max_err < 1e-9 ? 0 : 1;
}
