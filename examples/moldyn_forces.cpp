// Molecular-dynamics force loop with a *drifting* access pattern — the
// dynamic-application scenario of §4: "some codes ... modify their behavior
// during their execution because they simulate position dependent
// interactions between physical entities."
//
// Every timestep the particles move; every few steps the neighbour list is
// rebuilt, so the reduction's reference pattern changes gradually. The
// AdaptiveReducer's phase monitor accumulates the drift and
// re-characterizes (possibly re-selecting the scheme) only when it crosses
// the threshold — not on every step.
#include <cstdio>

#include "core/runtime.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace sapp;
  constexpr int kTimesteps = 24;
  constexpr int kRebuildEvery = 4;

  SmartAppsRuntime rt(SmartAppsRuntime::Options{.threads = 0});
  AdaptiveReducer& forces_loop = rt.reducer("ComputeForces");

  std::size_t particles = 3000;
  std::size_t pairs = 60000;
  std::vector<double> forces;

  std::printf("step  scheme  pairs   invoke_ms  rechar  switches\n");
  for (int step = 0; step < kTimesteps; ++step) {
    // The system slowly densifies: the neighbour list grows on rebuild
    // (position-dependent interactions).
    if (step % kRebuildEvery == 0 && step > 0) {
      pairs = pairs + pairs / 6;
      particles += 50;
    }
    const auto w = workloads::make_moldyn(
        /*dim=*/16384, /*distinct=*/particles, /*pairs=*/pairs,
        /*seed=*/1000 + step / kRebuildEvery);

    forces.assign(w.input.pattern.dim, 0.0);
    const SchemeResult r = forces_loop.invoke(w.input, forces);
    std::printf("%4d  %-6s  %-6zu  %8.2f   %5u   %5u\n", step,
                to_string(forces_loop.current()).data(), pairs,
                r.total_s() * 1e3, forces_loop.recharacterizations(),
                forces_loop.scheme_switches());
  }

  std::printf("\nThe monitor re-characterized %u time(s) over %d steps "
              "(threshold-triggered, not per-step).\n",
              forces_loop.recharacterizations(), kTimesteps);
  std::printf("%s", rt.report().c_str());
  return 0;
}
