// The speculative-parallelization substrate in action (§3): LRPD
// classification, R-LRPD execution of a partially parallel loop, wavefront
// scheduling, and while-loop speculation — the run-time techniques the
// SmartApps executable embeds.
#include <cstdio>
#include <numeric>

#include "spec/lrpd.hpp"
#include "spec/rlrpd.hpp"
#include "spec/wavefront.hpp"
#include "spec/while_spec.hpp"

int main() {
  using namespace sapp;
  ThreadPool pool(4);

  // --- 1. LRPD: classify a loop's accesses speculatively.
  {
    SpeculativeLoop loop;
    loop.dim = 64;
    for (std::uint32_t i = 0; i < 32; ++i) {
      IterationAccesses it;
      it.ops = {{i, Access::kWrite},                 // private write
                {40, Access::kReduction},            // shared accumulator
                {i, Access::kRead}};                 // read own value
      loop.iterations.push_back(std::move(it));
    }
    const LrpdResult r = lrpd_test(loop, pool);
    std::printf("[lrpd]      passed=%d reduction=%d privatizable=%d\n",
                r.passed(), r.valid_reduction,
                r.parallel_after_privatization);
  }

  // --- 2. R-LRPD: execute a partially parallel loop; only the suffix
  // past the dependence sink re-executes.
  {
    constexpr std::size_t kN = 1200;
    const SpecLoopBody body = [](std::size_t i, SpecArray& a) {
      if (i == 300) a.write(1000, 3.0);           // source
      if (i == 900) {                             // sink: reads 300's value
        a.write(1001, a.read(1000) * 2.0);
      }
      a.reduce_add(static_cast<std::uint32_t>(i % 64), 1.0);
    };
    std::vector<double> seq(1100, 0.0), par(1100, 0.0);
    sequential_execute(kN, body, seq);
    const RlrpdStats st = rlrpd_execute(kN, body, par, pool);
    std::printf("[r-lrpd]    rounds=%u committed=%zu reexecuted=%zu "
                "correct=%d\n",
                st.rounds, st.committed, st.reexecuted, seq == par);
  }

  // --- 3. Wavefront: inspector finds the parallel levels of a banded
  // recurrence.
  {
    SpeculativeLoop loop;
    loop.dim = 1024;
    for (std::uint32_t i = 0; i < 1024; ++i) {
      IterationAccesses it;
      if (i >= 8)
        it.ops.push_back({i - 8, Access::kRead});  // depends 8 back
      it.ops.push_back({i, Access::kWrite});
      loop.iterations.push_back(std::move(it));
    }
    const Wavefronts w = compute_wavefronts(loop);
    std::printf("[wavefront] levels=%zu avg parallelism=%.1f\n",
                w.num_levels(), w.parallelism());
  }

  // --- 4. While-loop speculation: parallel processing of a linked-list
  // traversal with unknown exit.
  {
    std::vector<std::uint32_t> next(5000);
    std::iota(next.begin(), next.end(), 1u);
    std::atomic<std::uint64_t> work{0};
    const auto st = while_spec_execute<std::uint32_t>(
        0, [&](const std::uint32_t& n) { return n < 3777; },
        [&](const std::uint32_t& n) { return next[n]; },
        [&](const std::uint32_t& n) {
          // expensive per-node processing
          std::uint64_t h = n;
          for (int k = 0; k < 200; ++k) h = h * 6364136223846793005ull + 1;
          work.fetch_add(h & 1);
        },
        64, pool);
    std::printf("[while]     iterations=%zu batches=%u discarded=%zu\n",
                st.iterations, st.batches, st.discarded);
  }
  return 0;
}
