// Quickstart: parallelize an irregular reduction with the SmartApps
// runtime in ~30 lines.
//
// The loop being parallelized is the paper's canonical shape (Fig. 5):
//
//     for (i = 0; i < N; i++)
//       w[x[i]] += expression(i);
//
// The runtime characterizes the reference pattern, picks a scheme from the
// library (rep / lw / ll / sel / hash), and adapts if the pattern drifts.
#include <cstdio>

#include "core/runtime.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace sapp;

  // A skewed scatter-add: 200k updates into a 100k-element array.
  workloads::SynthParams params;
  params.dim = 100000;
  params.distinct = 30000;
  params.iterations = 200000;
  params.refs_per_iter = 1;
  params.zipf_theta = 0.6;
  params.seed = 42;
  const ReductionInput input = workloads::make_synthetic(params);

  // The runtime owns the thread pool and the calibrated cost models.
  SmartAppsRuntime rt;
  AdaptiveReducer& loop = rt.reducer("quickstart");

  std::vector<double> w(input.pattern.dim, 0.0);
  const SchemeResult r = loop.invoke(input, w);

  std::printf("selected scheme : %s\n", to_string(loop.current()).data());
  std::printf("rationale       : %s\n", loop.decision().rationale.c_str());
  std::printf("inspector       : %.3f ms\n", r.inspect_s * 1e3);
  std::printf("init/loop/merge : %.3f / %.3f / %.3f ms\n",
              r.phases.init_s * 1e3, r.phases.loop_s * 1e3,
              r.phases.merge_s * 1e3);
  std::printf("private storage : %.1f KB\n", r.private_bytes / 1024.0);

  // Sanity: compare against the sequential loop.
  std::vector<double> ref(input.pattern.dim, 0.0);
  run_sequential(input, ref);
  double max_err = 0.0;
  for (std::size_t e = 0; e < ref.size(); ++e)
    max_err = std::max(max_err, std::abs(ref[e] - w[e]));
  std::printf("max |err| vs sequential: %.2e\n", max_err);
  std::printf("\n%s", rt.report().c_str());
  return max_err < 1e-6 ? 0 : 1;
}
