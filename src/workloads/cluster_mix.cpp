// Cluster-mix generators — the three workload regimes the `sapp_repro
// distributed` experiment sweeps over node count × link class.
//
// Each regime is a differently-shaped instantiation of the synthetic
// reference-pattern engine, chosen so the distributed strategy ranking
// *changes* somewhere inside the sweep (the crossover frontier the
// committed reference tables pin down):
//
//   dense  — the touched set is essentially the whole (modest) array and
//            every element is hit many times. Dense ring all-reduce moves
//            dim/N-sized chunks and wins once per-node partial work
//            dominates; sparse strategies would ship ~dim entries at 12 B
//            each anyway.
//   mid    — refs ≈ dim, half the array touched: no strategy dominates,
//            the winner flips with node count and link class.
//   sparse — a tiny touched set inside a huge index space (Spice-like).
//            Dense replication must still stream ceil(dim/N)·8 B chunks
//            around the ring, while combining/owner-computes ship only the
//            few live entries — the link class decides between those two.
#include <algorithm>

#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_cluster_workload(ClusterShape shape, double scale,
                               std::uint64_t seed) {
  SynthParams p;
  p.seed = seed;
  // Dimensions scale with `scale` (floored) so each regime keeps its
  // refs/dim and distinct/dim signature — and therefore its place on the
  // crossover frontier — from --tiny smoke runs up to full size.
  switch (shape) {
    case ClusterShape::kDense:
      p.dim = std::max<std::size_t>(
          2048, static_cast<std::size_t>((1 << 16) * scale));
      p.distinct = p.dim - p.dim / 16;  // ~94% of the array touched
      p.iterations = std::max<std::size_t>(
          200'000, static_cast<std::size_t>(1'000'000 * scale));
      p.refs_per_iter = 2;  // heavy reuse: refs >> dim
      // Histogram-style scatter: iteration order carries no element
      // locality, so every iteration block references the whole array
      // (remote fraction ~ (N-1)/N under block ownership).
      p.sort_iterations = false;
      p.locality = 0.2;
      p.body_flops = 4;
      break;
    case ClusterShape::kMid:
      p.dim = std::max<std::size_t>(
          8192, static_cast<std::size_t>((1 << 19) * scale));
      p.distinct = p.dim / 2;  // half the array live
      p.iterations = std::max<std::size_t>(
          65'536, static_cast<std::size_t>(500'000 * scale));
      p.refs_per_iter = 1;
      p.zipf_theta = 0.4;
      p.locality = 0.7;
      p.body_flops = 6;
      break;
    case ClusterShape::kSparse:
      p.dim = std::max<std::size_t>(
          65'536, static_cast<std::size_t>((1 << 21) * scale));
      // A tiny globally-hot set (~0.05% of the array) hit over and over:
      // Spice-like device loading. Every node accumulates into the same
      // few elements, so sparse partials stay small while a per-reference
      // shuffle would ship the full reference stream.
      p.distinct = std::max<std::size_t>(512, p.dim / 2048);
      p.iterations = std::max<std::size_t>(
          20'000, static_cast<std::size_t>(80'000 * scale));
      p.refs_per_iter = 4;
      p.zipf_theta = 0.6;
      // Hot elements are globally hot, not block-local: owners are spread
      // over the cluster regardless of the iteration partition.
      p.sort_iterations = false;
      p.locality = 0.4;
      p.body_flops = 8;
      break;
  }
  p.distinct = std::min(
      {p.distinct, p.dim,
       p.iterations * static_cast<std::size_t>(p.refs_per_iter)});

  Workload w;
  w.app = "cluster";
  w.loop = to_string(shape);
  w.variant = "dim=" + std::to_string(p.dim) +
              " iters=" + std::to_string(p.iterations) +
              " distinct=" + std::to_string(p.distinct);
  w.input = make_synthetic(p);
  w.instr_per_iter = 30 + p.body_flops * 2;
  w.invocations = 1;
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
