// SPICE — circuit simulation, bjt100 device-loading loop (Fig. 3).
//
// Each iteration loads one BJT device model and stamps ~28 entries of the
// sparse circuit matrix (the paper reports MO = 28). The matrix index
// space is huge but each device touches only its own few rows/columns, so
// the overall touched fraction is far below 1% — the only Fig. 3 case
// where hash-table privatization wins ("the hash table reduces the
// allocated and processed space to such an extent that ... the performance
// improves dramatically"). Device loading updates shared model state, so
// iteration replication (lw) is illegal here, as the paper notes.
#include "common/assert.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_spice(std::size_t dim, std::size_t devices,
                    std::uint64_t seed) {
  SAPP_REQUIRE(devices >= 1, "need at least one device");
  Rng rng(seed);
  constexpr unsigned kStampsPerDevice = 28;

  // Each device owns a small cluster of matrix entries (its equivalent
  // circuit's stamp) plus a few couplings to the devices it is wired to.
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(devices + 1);
  idx.reserve(devices * kStampsPerDevice);

  const std::size_t region =
      dim / (devices + 1) > 64 ? dim / (devices + 1) : 64;
  std::vector<std::uint32_t> base(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    const std::uint64_t b = d * region + rng.below(region / 2 + 1);
    base[d] = static_cast<std::uint32_t>(b < dim ? b : dim - 1);
  }

  for (std::size_t d = 0; d < devices; ++d) {
    // 16 intra-device stamp entries scattered in the device's region...
    for (unsigned k = 0; k < 16; ++k) {
      std::uint64_t e = base[d] + rng.below(48);
      if (e >= dim) e = dim - 1;
      idx.push_back(static_cast<std::uint32_t>(e));
    }
    // ...plus couplings into the stamps of arbitrary other devices (the
    // circuit's wiring): they make most touched entries visible to several
    // threads, which is what defeats selective privatization here.
    for (unsigned k = 16; k < kStampsPerDevice; ++k) {
      const std::size_t other = rng.below(devices);
      std::uint64_t e = base[other] + rng.below(48);
      if (e >= dim) e = dim - 1;
      idx.push_back(static_cast<std::uint32_t>(e));
    }
    row_ptr.push_back(idx.size());
  }

  Workload w;
  w.app = "Spice";
  w.loop = "bjt100";
  w.variant = "dim=" + std::to_string(dim);
  w.input.pattern.dim = dim;
  w.input.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  w.input.pattern.body_flops = 48;  // device model evaluation is expensive
  w.input.pattern.iteration_replication_legal = false;  // paper's footnote
  w.input.values.resize(w.input.pattern.num_refs());
  for (auto& v : w.input.values) v = rng.uniform(-1.0, 1.0);
  w.instr_per_iter = 600;
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
