// The synthetic reference-pattern engine shared by all app generators.
#include "workloads/workload.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace sapp::workloads {

ReductionInput make_synthetic(const SynthParams& p) {
  SAPP_REQUIRE(p.dim > 0, "dim must be positive");
  SAPP_REQUIRE(p.distinct > 0 && p.distinct <= p.dim,
               "distinct must be in (0, dim]");
  SAPP_REQUIRE(p.refs_per_iter >= 1, "need at least one ref per iteration");
  Rng rng(p.seed);

  // --- Active element set: a random sorted sample of [0, dim), drawn via
  // a stride-jitter walk so the active elements spread over the whole
  // array (as a renumbered mesh would) while staying irregular.
  std::vector<std::uint32_t> active;
  active.reserve(p.distinct);
  const double stride =
      static_cast<double>(p.dim) / static_cast<double>(p.distinct);
  double pos = rng.uniform() * stride;
  for (std::size_t k = 0; k < p.distinct; ++k) {
    auto e = static_cast<std::uint64_t>(pos + rng.uniform() * stride * 0.9);
    if (e >= p.dim) e = p.dim - 1;
    active.push_back(static_cast<std::uint32_t>(e));
    pos += stride;
  }
  active.erase(std::unique(active.begin(), active.end()), active.end());
  const std::size_t nact = active.size();

  // --- Popularity permutation: zipf rank r maps to a random active
  // element, so hot elements are scattered through the index space.
  std::vector<std::uint32_t> by_rank(nact);
  std::iota(by_rank.begin(), by_rank.end(), 0u);
  for (std::size_t k = nact; k > 1; --k)
    std::swap(by_rank[k - 1], by_rank[rng.below(k)]);

  // --- Iterations: first reference drawn by popularity; the rest of the
  // iteration's references stay within `window` active slots with
  // probability `locality`, else draw independently.
  struct Iter {
    std::uint32_t first_slot;
    std::vector<std::uint32_t> elems;
  };
  std::vector<Iter> iters(p.iterations);
  for (auto& it : iters) {
    const std::size_t rank0 = rng.zipf(nact, p.zipf_theta);
    const std::uint32_t slot0 = by_rank[rank0];
    it.first_slot = slot0;
    it.elems.push_back(active[slot0]);
    for (unsigned r = 1; r < p.refs_per_iter; ++r) {
      std::size_t slot;
      if (rng.uniform() < p.locality) {
        const std::size_t w = p.window < nact ? p.window : nact;
        const std::size_t lo = slot0 >= w / 2 ? slot0 - w / 2 : 0;
        const std::size_t hi = lo + w < nact ? lo + w : nact;
        slot = lo + rng.below(hi - lo);
      } else {
        slot = by_rank[rng.zipf(nact, p.zipf_theta)];
      }
      it.elems.push_back(active[slot]);
    }
  }

  // --- Mesh ordering: sort iterations by their first referenced slot so
  // block scheduling aligns iteration blocks with element regions (what a
  // locality-optimized code would have).
  if (p.sort_iterations) {
    std::stable_sort(iters.begin(), iters.end(),
                     [](const Iter& a, const Iter& b) {
                       return a.first_slot < b.first_slot;
                     });
  }

  // --- Pack into CSR + values.
  ReductionInput in;
  // Synthetic sites are anonymous by default; callers (the app generators,
  // tests) overwrite loop_id with a stable per-site name.
  in.pattern.loop_id = "synth/seed=" + std::to_string(p.seed);
  in.pattern.dim = p.dim;
  in.pattern.body_flops = p.body_flops;
  in.pattern.iteration_replication_legal = p.lw_legal;
  std::vector<std::uint64_t> row_ptr;
  row_ptr.reserve(p.iterations + 1);
  row_ptr.push_back(0);
  std::vector<std::uint32_t> idx;
  idx.reserve(p.iterations * p.refs_per_iter);
  for (const auto& it : iters) {
    idx.insert(idx.end(), it.elems.begin(), it.elems.end());
    row_ptr.push_back(idx.size());
  }
  in.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  in.values.resize(in.pattern.num_refs());
  for (auto& v : in.values) v = rng.uniform(-1.0, 1.0);
  return in;
}

}  // namespace sapp::workloads
