// IRREG — CFD-style kernel: flux accumulation over the edges of an
// irregular 2-D mesh (HPF-2 motivated kernel, Fig. 3 "Irreg - DO 100").
//
// Construction: `distinct` active nodes form a jittered 2-D grid embedded
// in an array of `dim` elements (the array is larger than the active mesh
// when the input only populates part of the domain — this is how the
// paper's sweep grows DIM while SP falls). Edges connect grid neighbours;
// the edge list is swept repeatedly until the requested edge/iteration
// count is reached, exactly like a solver doing many relaxation sweeps.
// Mesh-renumbered: edges sorted by their lower endpoint.
#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_irreg(std::size_t dim, std::size_t distinct, std::size_t edges,
                    std::uint64_t seed) {
  SAPP_REQUIRE(distinct >= 4 && distinct <= dim, "bad irreg sizing");
  Rng rng(seed);

  // Active nodes: jittered grid spread over [0, dim).
  const auto side = static_cast<std::size_t>(std::sqrt(
      static_cast<double>(distinct)));
  const std::size_t nodes = side * side;
  std::vector<std::uint32_t> node_elem(nodes);
  const double stride = static_cast<double>(dim) / static_cast<double>(nodes);
  for (std::size_t k = 0; k < nodes; ++k) {
    auto e = static_cast<std::uint64_t>(
        static_cast<double>(k) * stride + rng.uniform() * stride * 0.5);
    node_elem[k] = static_cast<std::uint32_t>(e >= dim ? dim - 1 : e);
  }

  // Mesh edges: 4-neighbour grid connectivity.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> mesh;
  mesh.reserve(2 * nodes);
  for (std::size_t y = 0; y < side; ++y)
    for (std::size_t x = 0; x < side; ++x) {
      const std::size_t u = y * side + x;
      if (x + 1 < side)
        mesh.emplace_back(static_cast<std::uint32_t>(u),
                          static_cast<std::uint32_t>(u + 1));
      if (y + 1 < side)
        mesh.emplace_back(static_cast<std::uint32_t>(u),
                          static_cast<std::uint32_t>(u + side));
    }

  // Sweep the edge list until `edges` iterations are produced.
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(edges + 1);
  idx.reserve(2 * edges);
  std::size_t produced = 0;
  while (produced < edges) {
    for (const auto& [u, v] : mesh) {
      if (produced >= edges) break;
      idx.push_back(node_elem[u]);
      idx.push_back(node_elem[v]);
      row_ptr.push_back(idx.size());
      ++produced;
    }
  }

  Workload w;
  w.app = "Irreg";
  w.loop = "do100";
  w.variant = "dim=" + std::to_string(dim);
  w.input.pattern.dim = dim;
  w.input.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  w.input.pattern.body_flops = 8;  // flux evaluation per edge
  w.input.pattern.iteration_replication_legal = true;
  w.input.values.resize(w.input.pattern.num_refs());
  for (auto& v : w.input.values) v = rng.uniform(-1.0, 1.0);
  w.instr_per_iter = 40;
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
