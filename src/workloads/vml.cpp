// VML — Sparse BLAS Level-3 kernel VecMult C=A·B (Table 2: 4929
// iterations, 135 instructions and 6 reduction ops per iteration, 40 KB
// reduction array, 1 invocation).
//
// The accumulation target is small (40 KB fits in the simulated L2), which
// is why the paper measures *zero* reduction lines displaced during the
// loop for this code — everything stays cached until the final flush.
#include "common/assert.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_vml(double scale, std::uint64_t seed) {
  SAPP_REQUIRE(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
  Rng rng(seed);
  const auto rows = static_cast<std::size_t>(4929 * scale);
  const std::size_t dim = 5120;  // 40 KB of doubles (not scaled: cache-resident)

  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(rows + 1);
  idx.reserve(rows * 6);
  for (std::size_t r = 0; r < rows; ++r) {
    // Each sparse row accumulates 6 products into a compact slice of C;
    // consecutive rows walk the output vector in order, so row blocks
    // touch (mostly) disjoint bands.
    const std::size_t base = (r * (dim - 8)) / rows;
    for (unsigned k = 0; k < 6; ++k)
      idx.push_back(static_cast<std::uint32_t>(base + k));
    row_ptr.push_back(idx.size());
  }

  Workload w;
  w.app = "Vml";
  w.loop = "VecMult_CAB";
  w.variant = "scale=" + std::to_string(scale);
  w.input.pattern.dim = dim;
  w.input.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  w.input.pattern.body_flops = 10;
  w.input.pattern.iteration_replication_legal = true;
  w.input.values.resize(w.input.pattern.num_refs());
  for (auto& v : w.input.values) v = rng.uniform(-1.0, 1.0);
  w.instr_per_iter = 135;
  w.input_bytes_per_iter = 28;  // sparse row structure
  w.invocations = 1;
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
