#include "workloads/paramsets.hpp"

#include "common/assert.hpp"

namespace sapp::workloads {

namespace {

std::size_t scaled(std::size_t n, double scale) {
  auto v = static_cast<std::size_t>(static_cast<double>(n) * scale);
  return v > 0 ? v : 1;
}

Fig3Row row(Workload w, PaperRow paper, double mo, double dim, double sp,
            double con, double chr) {
  Fig3Row r;
  w.paper = std::move(paper);
  r.workload = std::move(w);
  r.paper_mo = mo;
  r.paper_dim = dim;
  r.paper_sp = sp;
  r.paper_con = con;
  r.paper_chr = chr;
  return r;
}

}  // namespace

std::vector<Fig3Row> fig3_rows(double scale, std::uint64_t seed) {
  SAPP_REQUIRE(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
  std::vector<Fig3Row> rows;

  // ---- Irreg - DO 100 (MO=2): dimension sweep from dense reuse to very
  // sparse touch. Paper: rep, lw, lw, sel.
  rows.push_back(row(
      make_irreg(100000, 25000, scaled(1250000, scale), seed + 1),
      {"rep", "rep>=ll>=sel>=lw"}, 2, 100000, 25, 100, 0.92));
  rows.push_back(row(
      make_irreg(500000, 25000, scaled(250000, scale), seed + 2),
      {"lw", "lw>=rep>=ll>=sel"}, 2, 500000, 5, 20, 0.71));
  rows.push_back(row(
      make_irreg(1000000, 12500, scaled(62500, scale), seed + 3),
      {"lw", "lw>=rep>=ll>=sel"}, 2, 1000000, 1.25, 5, 0.40));
  rows.push_back(row(
      make_irreg(2000000, 5000, scaled(20000, scale), seed + 4),
      {"sel", "sel>=lw>=ll>=rep"}, 2, 2000000, 0.25, 1, 0.26));

  // ---- Nbf - DO 50 (MO=1): skewed single-target accumulation.
  // Paper: ll (measured sel), sel, sel, sel.
  rows.push_back(row(
      make_nbf(25600, 6400, scaled(1280000, scale), seed + 5),
      {"ll", "sel>=ll>=rep>=lw"}, 1, 25600, 25, 200, 0.25));
  rows.push_back(row(
      make_nbf(128000, 8000, scaled(400000, scale), seed + 6),
      {"sel", "sel>=ll>=rep>=lw"}, 1, 128000, 6.25, 50, 0.25));
  rows.push_back(row(
      make_nbf(256000, 1600, scaled(32000, scale), seed + 7),
      {"sel", "sel>=ll>=rep>=lw"}, 1, 256000, 0.625, 5, 0.25));
  rows.push_back(row(
      make_nbf(1280000, 3200, scaled(25600, scale), seed + 8),
      {"sel", "sel>=ll>=rep>=lw"}, 1, 1280000, 0.25, 2, 0.25));

  // ---- Moldyn - ComputeForces (MO=2): scrambled pair lists, high
  // sharing. Paper: rep, rep, ll, ll.
  rows.push_back(row(
      make_moldyn(16384, 3922, scaled(375000, scale), seed + 9),
      {"rep", "rep>=ll>=sel>=lw"}, 2, 16384, 23.94, 95.75, 0.41));
  rows.push_back(row(
      make_moldyn(42592, 3301, scaled(102000, scale), seed + 10),
      {"rep", "rep>=ll>=sel>=lw"}, 2, 42592, 7.75, 31, 0.36));
  rows.push_back(row(
      make_moldyn(70304, 1188, scaled(24000, scale), seed + 11),
      {"ll", "ll>=rep>=sel>=lw"}, 2, 70304, 1.69, 6.75, 0.33));
  rows.push_back(row(
      make_moldyn(87808, 329, scaled(8000, scale), seed + 12),
      {"ll", "ll>=rep>=sel>=lw"}, 2, 87808, 0.375, 1.5, 0.29));

  // ---- Spark98 - smvpthread (MO=1): banded smvp, tiny shared set.
  // Paper: sel, sel (measured ll first on the small mesh).
  rows.push_back(row(
      make_spark98(30169, 18000, scaled(210000, scale), seed + 13),
      {"sel", "sel>=ll>=rep>=lw"}, 1, 30169, 0.625, 5, 0.18));
  rows.push_back(row(
      make_spark98(7294, 4400, scaled(51000, scale), seed + 14),
      {"sel", "ll>=sel>=rep>=lw"}, 1, 7294, 0.6, 4.8, 0.2));

  // ---- Charmm - DO 78 (MO=2): large arrays, scattered interaction lists.
  // Paper recommends sel; measurements put ll first.
  rows.push_back(row(
      make_charmm(332288, 119000, scaled(1000000, scale), seed + 15),
      {"sel", "ll>=sel>=rep>=lw"}, 2, 332288, 35.88, 17.9, 0.14));
  rows.push_back(row(
      make_charmm(332288, 59600, scaled(500000, scale), seed + 16),
      {"sel", "ll>=sel>=rep>=lw"}, 2, 332288, 17.94, 8.97, 0.15));
  rows.push_back(row(
      make_charmm(664576, 7443, scaled(33000, scale), seed + 17),
      {"sel", "ll>=sel>=rep>=lw"}, 2, 664576, 1.12, 4.48, 0.13));

  // ---- Spice - bjt100 (MO=28): very sparse device stamps, lw illegal.
  // Paper: hash everywhere.
  rows.push_back(row(make_spice(186943, scaled(500, scale), seed + 18),
                     {"hash", "hash>=ll>=rep"}, 28, 186943, 0.14, 0.04,
                     0.125));
  rows.push_back(row(make_spice(99190, scaled(300, scale), seed + 19),
                     {"hash", "hash>=ll>=rep"}, 28, 99190, 0.20, 0.06,
                     0.125));
  rows.push_back(row(make_spice(89925, scaled(280, scale), seed + 20),
                     {"hash", "hash>=ll>=rep"}, 28, 89925, 0.16, 0.05,
                     0.125));
  rows.push_back(row(make_spice(33725, scaled(110, scale), seed + 21),
                     {"hash", "hash>=ll>=rep"}, 28, 33725, 0.16, 0.05,
                     0.126));
  return rows;
}

std::vector<Table2Row> table2_rows(double scale, std::uint64_t seed) {
  SAPP_REQUIRE(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
  std::vector<Table2Row> rows;

  auto add = [&](Workload w, double tseq, unsigned inv, unsigned iters,
                 unsigned instr, unsigned red, double kb, unsigned flushed,
                 unsigned displaced, double sw, double hw, double flex) {
    Table2Row r;
    r.workload = std::move(w);
    r.paper_tseq_pct = tseq;
    r.paper_invocations = inv;
    r.paper_iters = iters;
    r.paper_instr_per_iter = instr;
    r.paper_red_per_iter = red;
    r.paper_array_kb = kb;
    r.paper_lines_flushed = flushed;
    r.paper_lines_displaced = displaced;
    r.paper_speedup_sw = sw;
    r.paper_speedup_hw = hw;
    r.paper_speedup_flex = flex;
    rows.push_back(std::move(r));
  };

  add(make_euler(scale, seed + 101), 84.7, 120, 59863, 118, 14, 686.6, 3261,
      2117, 1.3, 4.0, 3.5);
  add(make_equake(scale, seed + 102), 50.0, 3855, 30169, 550, 22, 707.1, 742,
      580, 7.3, 14.0, 10.6);
  add(make_vml(scale, seed + 103), 89.4, 1, 4929, 135, 6, 40.0, 168, 0, 3.1,
      6.1, 5.0);
  add(make_charmm_hw(scale, seed + 104), 82.8, 1, 82944, 420, 54, 1947.0,
      1849, 330, 1.9, 9.9, 7.7);
  add(make_nbf_hw(scale, seed + 105), 99.1, 1, 128000, 1880, 200, 1000.0,
      238, 1774, 9.1, 15.6, 14.2);
  return rows;
}

}  // namespace sapp::workloads
