// SPARK98 — earthquake-simulation sparse matrix-vector product
// (Fig. 3 "smvpthread() loop").
//
// Banded symmetric sparse matrix from a tetrahedral mesh: row i accumulates
// contributions into w[i] (MO = 1), rows processed in order. Under block
// scheduling almost every row's target is exclusive to one thread; only the
// band overlap at block boundaries is shared — the selective-privatization
// sweet spot the paper's recommendation reflects.
#include "common/assert.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_spark98(std::size_t dim, std::size_t distinct, std::size_t nnz,
                      std::uint64_t seed) {
  SAPP_REQUIRE(distinct >= 8 && distinct <= dim, "bad spark98 sizing");
  Rng rng(seed);

  // Active rows spread over the array.
  std::vector<std::uint32_t> row_elem(distinct);
  const double stride =
      static_cast<double>(dim) / static_cast<double>(distinct);
  for (std::size_t k = 0; k < distinct; ++k) {
    auto e = static_cast<std::uint64_t>(
        static_cast<double>(k) * stride + rng.uniform() * stride * 0.5);
    row_elem[k] = static_cast<std::uint32_t>(e >= dim ? dim - 1 : e);
  }

  // One iteration per matrix entry: w[row] += A[row,col] * v[col]. The
  // symmetric part also scatters w[col] += ... for a fraction of entries
  // (off-band contributions), giving the small shared set.
  const std::size_t entries = nnz;
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(entries + 1);
  idx.reserve(entries);
  constexpr std::size_t kBand = 32;
  for (std::size_t k = 0; k < entries; ++k) {
    // Rows visited in order; ~entries/distinct entries per row.
    const std::size_t r = (k * distinct) / entries;
    // 85% of entries hit the row target, 15% the symmetric partner inside
    // the band.
    if (rng.uniform() < 0.85) {
      idx.push_back(row_elem[r]);
    } else {
      std::size_t c = r + 1 + rng.below(kBand);
      if (c >= distinct) c = r >= kBand ? r - kBand : 0;
      idx.push_back(row_elem[c]);
    }
    row_ptr.push_back(idx.size());
  }

  Workload w;
  w.app = "Spark98";
  w.loop = "smvpthread";
  w.variant = "dim=" + std::to_string(dim);
  w.input.pattern.dim = dim;
  w.input.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  w.input.pattern.body_flops = 10;  // multiply-add plus index arithmetic
  w.input.pattern.iteration_replication_legal = true;
  w.input.values.resize(w.input.pattern.num_refs());
  for (auto& v : w.input.values) v = rng.uniform(-1.0, 1.0);
  w.instr_per_iter = 20;
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
