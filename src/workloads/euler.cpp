// EULER — HPF-2 unstructured-mesh Euler solver, loop dflux do100
// (Table 2: 59863 iterations/invocation, 118 instructions and 14 reduction
// operations per iteration, 686.6 KB reduction array, 120 invocations).
//
// Each iteration is one mesh edge; it accumulates a 7-component flux into
// the state records of both endpoint nodes (2 × 7 = 14 reduction ops).
// Node records are contiguous 7-double blocks — the layout the paper's
// PCLR section assumes when it requires reduction data to be cache-line
// aligned and unshared with regular data.
#include <cmath>

#include "common/assert.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_euler(double scale, std::uint64_t seed) {
  SAPP_REQUIRE(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
  Rng rng(seed);
  constexpr unsigned kComp = 7;  // state components per node
  const auto edges = static_cast<std::size_t>(59863 * scale);
  const auto nodes = static_cast<std::size_t>(12555 * scale);
  const std::size_t dim = nodes * kComp;  // 87885 doubles ~ 686.6 KB at scale 1

  // Mesh connectivity: nodes laid out along a space-filling order, each
  // edge joins a node to a near neighbour (renumbered tetra mesh).
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(edges + 1);
  idx.reserve(edges * 2 * kComp);
  for (std::size_t k = 0; k < edges; ++k) {
    const std::size_t u = (k * nodes) / edges;  // sweep nodes in order
    std::size_t v = u + 1 + rng.below(12);
    if (v >= nodes) v = u >= 12 ? u - 12 : 0;
    for (unsigned c = 0; c < kComp; ++c)
      idx.push_back(static_cast<std::uint32_t>(u * kComp + c));
    for (unsigned c = 0; c < kComp; ++c)
      idx.push_back(static_cast<std::uint32_t>(v * kComp + c));
    row_ptr.push_back(idx.size());
  }

  Workload w;
  w.app = "Euler";
  w.loop = "dflux_do100";
  w.variant = "scale=" + std::to_string(scale);
  w.input.pattern.dim = dim;
  w.input.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  w.input.pattern.body_flops = 16;
  w.input.pattern.iteration_replication_legal = true;
  w.input.values.resize(w.input.pattern.num_refs());
  for (auto& v : w.input.values) v = rng.uniform(-1.0, 1.0);
  w.instr_per_iter = 118;
  w.input_bytes_per_iter = 8;  // two node ids per edge
  w.invocations = 120;
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
