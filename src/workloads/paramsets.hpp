// Official parameter sets: one entry per row of Fig. 3 and Table 2.
//
// Each entry carries the generated workload plus everything the paper
// reports for that row, so the benchmark harnesses can print measured and
// published values side by side (docs/BENCHMARKS.md discusses the deltas).
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace sapp::workloads {

/// One row of the Fig. 3 validation table.
struct Fig3Row {
  Workload workload;
  /// Paper-reported measures for the row (as printed; definitions in the
  /// paper are partly ambiguous — see docs/BENCHMARKS.md).
  double paper_mo = 0.0;
  double paper_dim = 0.0;  ///< the INPUT column (reduction elements)
  double paper_sp = 0.0;
  double paper_con = 0.0;
  double paper_chr = 0.0;
};

/// All 21 Fig. 3 rows (Irreg 4, Nbf 4, Moldyn 4, Spark98 2, Charmm 3,
/// Spice 4). `scale` multiplies iteration counts (1.0 = paper regime;
/// smaller for quick runs). Dimensions are never scaled — they are the
/// quantity the paper sweeps.
[[nodiscard]] std::vector<Fig3Row> fig3_rows(double scale = 1.0,
                                             std::uint64_t seed = 2002);

/// One row of Table 2 (hardware study).
struct Table2Row {
  Workload workload;
  // Paper-reported values.
  double paper_tseq_pct = 0.0;
  unsigned paper_invocations = 0;
  unsigned paper_iters = 0;
  unsigned paper_instr_per_iter = 0;
  unsigned paper_red_per_iter = 0;
  double paper_array_kb = 0.0;
  unsigned paper_lines_flushed = 0;
  unsigned paper_lines_displaced = 0;
  // Paper Fig. 6 speedups (16 processors) for Sw/Hw/Flex.
  double paper_speedup_sw = 0.0;
  double paper_speedup_hw = 0.0;
  double paper_speedup_flex = 0.0;
};

/// The five Table 2 codes at `scale` (1.0 = paper sizing).
[[nodiscard]] std::vector<Table2Row> table2_rows(double scale = 1.0,
                                                 std::uint64_t seed = 2002);

}  // namespace sapp::workloads
