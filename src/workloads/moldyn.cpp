// MOLDYN — molecular-dynamics ComputeForces loop (Fig. 3).
//
// Neighbour-pair force accumulation (MO = 2). Unlike Irreg, the particle
// order has been randomized by motion (no mesh renumbering), so iteration
// blocks touch elements all over the array: the touched set is shared
// across threads. That high shared fraction is what moves the winner from
// rep (small arrays, cheap replication) to ll (large arrays) in the
// paper's sweep — selective privatization degenerates when nearly every
// touched element is shared.
#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_moldyn(std::size_t dim, std::size_t distinct,
                     std::size_t pairs, std::uint64_t seed) {
  SAPP_REQUIRE(distinct >= 8 && distinct <= dim, "bad moldyn sizing");
  Rng rng(seed);

  // Particles occupy a jittered fraction of the array index space.
  std::vector<std::uint32_t> particle(distinct);
  const double stride =
      static_cast<double>(dim) / static_cast<double>(distinct);
  for (std::size_t k = 0; k < distinct; ++k) {
    auto e = static_cast<std::uint64_t>(
        static_cast<double>(k) * stride + rng.uniform() * stride * 0.5);
    particle[k] = static_cast<std::uint32_t>(e >= dim ? dim - 1 : e);
  }

  // Neighbour list: each pair joins a particle with one of its spatial
  // neighbours (small rank distance ~ within the cutoff radius), but the
  // *pair list order is scrambled* — particles moved since the list was
  // built, which is precisely the dynamic behaviour §4 discusses.
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(pairs + 1);
  idx.reserve(2 * pairs);
  // Partners are within the *spatial* cutoff, but array indices have
  // decorrelated since the particles moved: the partner's rank distance
  // spreads over a wide window. This is what makes iteration replication
  // (lw) expensive here — pair endpoints often live in different owners'
  // partitions.
  constexpr std::size_t kRankWindow = 400;
  for (std::size_t k = 0; k < pairs; ++k) {
    const std::size_t a = rng.below(distinct);
    std::size_t b =
        (a + distinct + rng.below(2 * kRankWindow) - kRankWindow) % distinct;
    if (b == a) b = (a + 1) % distinct;
    idx.push_back(particle[a]);
    idx.push_back(particle[b]);
    row_ptr.push_back(idx.size());
  }

  Workload w;
  w.app = "Moldyn";
  w.loop = "ComputeForces";
  w.variant = "dim=" + std::to_string(dim);
  w.input.pattern.dim = dim;
  w.input.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  w.input.pattern.body_flops = 40;  // LJ force evaluation (r^-12 terms)
  w.input.pattern.iteration_replication_legal = true;
  w.input.values.resize(w.input.pattern.num_refs());
  for (auto& v : w.input.values) v = rng.uniform(-1.0, 1.0);
  w.instr_per_iter = 60;
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
