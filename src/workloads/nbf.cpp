// NBF — GROMOS non-bonded force kernel (Fig. 3 "Nbf - DO 50").
//
// Pair-list force evaluation accumulating into one partner per interaction
// (the paper reports MO = 1). Reference histogram is heavily skewed: atoms
// in dense solvation shells appear in many more pairs than bulk atoms —
// reproduced with a Zipf-ranked partner draw. The skew is what defeats the
// local-write scheme here (the owners of hot atoms execute most of the
// replicated iterations), matching lw placing last in the paper's
// experimental ordering.
#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_nbf(std::size_t dim, std::size_t distinct, std::size_t pairs,
                  std::uint64_t seed) {
  SynthParams p;
  p.dim = dim;
  p.distinct = distinct;
  p.iterations = pairs;
  p.refs_per_iter = 1;     // MO = 1 (Fig. 3)
  p.zipf_theta = 0.85;     // hot solvation-shell atoms
  p.locality = 0.0;        // single ref -> locality knob unused
  p.sort_iterations = false;  // pair list order is not mesh order
  p.body_flops = 48;       // heavy body: 1880 instructions/iteration scaled
  p.lw_legal = true;
  p.seed = seed;

  Workload w;
  w.app = "Nbf";
  w.loop = "do50";
  w.variant = "dim=" + std::to_string(dim);
  w.input = make_synthetic(p);
  w.instr_per_iter = 1880;
  tag_site(w);
  return w;
}

// Hardware-study sizing (Table 2: 128000 iterations, 1880 instructions and
// 200 reduction ops per iteration, 1000 KB array = 128000 doubles, 1
// invocation). One iteration is a charge group evaluating its pair list
// (~100 partners × 2 components each): mostly scattered partners, which is
// why Nbf shows the largest displaced-line count in Table 2.
Workload make_nbf_hw(double scale, std::uint64_t seed) {
  SAPP_REQUIRE(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
  Rng rng(seed);
  const auto groups = static_cast<std::size_t>(128000 * scale);
  const std::size_t dim = static_cast<std::size_t>(128000 * scale);

  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(groups + 1);
  idx.reserve(groups * 200);
  // Pair lists come from a cutoff search: partners sit in a spatial shell
  // around the group, with a small long-range tail (the list is rebuilt
  // infrequently, so some partners have drifted away).
  constexpr std::size_t kShell = 2048;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t self = (g * dim) / groups;
    for (unsigned k = 0; k < 200; ++k) {
      std::uint64_t e;
      if (k % 2 == 0) {
        e = self + rng.below(64);  // own neighbourhood
      } else if (rng.uniform() < 0.9) {
        const std::uint64_t off = rng.below(2 * kShell);
        e = self + dim + off - kShell;  // shell partner (bias-safe wrap)
        e %= dim;
      } else {
        e = rng.below(dim);  // drifted long-range partner
      }
      if (e >= dim) e = dim - 1;
      idx.push_back(static_cast<std::uint32_t>(e));
    }
    row_ptr.push_back(idx.size());
  }

  Workload w;
  w.app = "Nbf";
  w.loop = "do50";
  w.variant = "scale=" + std::to_string(scale);
  w.input.pattern.dim = dim;
  w.input.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  w.input.pattern.body_flops = 24;
  w.input.pattern.iteration_replication_legal = true;
  w.input.values.resize(w.input.pattern.num_refs());
  for (auto& v : w.input.values) v = rng.uniform(-1.0, 1.0);
  w.instr_per_iter = 1880;
  w.invocations = 1;
  w.input_bytes_per_iter = 800;  // the charge group's pair list (200 ids)
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
