// Drifting-input workload — IRREG with a mid-run connectivity reshuffle.
//
// The paper's §4 "dynamic applications" re-characterize when the access
// pattern shifts between program phases. This generator builds the two
// phases of such a shift for one loop site (same array dimension, same
// loop_id — only the *pattern* moves):
//
//   * `dense`  — the familiar IRREG relaxation phase: a mesh whose active
//     nodes cover most of the reduction array and whose edge list sweeps
//     many times per invocation, so reuse is high and a replicated-array
//     scheme (`rep`) amortizes its O(dim) init/merge;
//   * `sparse` — the post-reshuffle phase: the solver has re-meshed onto a
//     tiny active region, so each invocation scatters a few references
//     into a handful of nodes of the same big array. `rep` now pays its
//     O(dim) init/merge for almost no useful work; compact schemes
//     (`sel`/`hash`) win by orders of magnitude.
//
// `sapp_repro phase_drift` feeds `dense`×k then `sparse`×k through one
// site and compares the phase-aware runtime (demotes + re-characterizes
// on drift) with a frozen-decision baseline.
#include <algorithm>

#include "common/assert.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {

namespace {

/// Random edge list over `nodes` node→element slots, `edges` iterations,
/// MO=2 like the mesh phase, sorted by lower endpoint (mesh renumbering).
ReductionInput scatter_phase(std::size_t dim,
                             const std::vector<std::uint32_t>& node_elem,
                             std::size_t edges, Rng& rng) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> list;
  list.reserve(edges);
  const std::size_t n = node_elem.size();
  for (std::size_t k = 0; k < edges; ++k) {
    const std::uint32_t u = node_elem[rng.below(n)];
    const std::uint32_t v = node_elem[rng.below(n)];
    list.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(list.begin(), list.end());

  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(edges + 1);
  idx.reserve(2 * edges);
  for (const auto& [u, v] : list) {
    idx.push_back(u);
    idx.push_back(v);
    row_ptr.push_back(idx.size());
  }

  ReductionInput in;
  in.pattern.dim = dim;
  in.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  in.pattern.body_flops = 8;  // same flux evaluation as the mesh phase
  in.pattern.iteration_replication_legal = true;
  in.values.resize(in.pattern.num_refs());
  for (auto& x : in.values) x = rng.uniform(-1.0, 1.0);
  return in;
}

}  // namespace

DriftPhases make_irreg_reshuffle(std::size_t dim, std::size_t dense_edges,
                                 std::size_t sparse_edges,
                                 std::uint64_t seed) {
  SAPP_REQUIRE(dim >= 4096, "bad irreg-reshuffle sizing");

  // Phase 1: the standard IRREG mesh covering ~60% of the array, swept
  // until `dense_edges` iterations — size the edge budget so refs per
  // invocation dwarf the array (reuse: rep territory).
  DriftPhases d;
  d.dense = make_irreg(dim, (dim * 3) / 5, dense_edges, seed);
  d.dense.loop = "do100-reshuffle";
  d.dense.variant = "phase=dense dim=" + std::to_string(d.dense.input.pattern.dim);
  tag_site(d.dense);

  // Phase 2: the reshuffled connectivity — the same array, but the active
  // region collapsed to a scattered handful of nodes.
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const std::size_t nodes_b = std::max<std::size_t>(64, dim / 256);
  std::vector<std::uint32_t> node_elem(nodes_b);
  for (auto& e : node_elem)
    e = static_cast<std::uint32_t>(rng.below(dim));

  d.sparse.app = d.dense.app;
  d.sparse.loop = d.dense.loop;
  d.sparse.variant = "phase=sparse dim=" + std::to_string(dim);
  d.sparse.input = scatter_phase(dim, node_elem, sparse_edges, rng);
  d.sparse.instr_per_iter = d.dense.instr_per_iter;
  d.sparse.paper = d.dense.paper;
  tag_site(d.sparse);
  return d;
}

}  // namespace sapp::workloads
