// Serving-mix site generator — the randomized population behind the
// `sapp_repro serving` stress harness.
//
// A serving workload is not one loop: it is thousands of distinct loop
// sites, each with its own shape, arriving interleaved from many client
// threads. Each index instantiates the synthetic reference-pattern engine
// with shape parameters drawn deterministically from (seed, index):
// array dimension, iteration count, references per iteration, histogram
// skew, locality, per-iteration body work and local-write legality all
// vary, so the population spans every regime the adaptive runtime can
// decide between (rep-friendly dense sweeps, sel/hash-friendly sparse
// scatters, skewed hot-element histograms, lw-illegal loops). Requests
// stay small on purpose — the harness measures runtime overheads
// (site-table, cache, eviction), not kernel bandwidth.
#include <algorithm>

#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_serving_site(std::size_t index, double scale,
                           std::uint64_t seed) {
  // One throwaway draw per parameter keeps shapes independent.
  Rng rng(seed * 0x9E3779B97F4A7C15ull + index + 1);

  SynthParams p;
  // dim: log-uniform-ish in [256, 4096].
  p.dim = static_cast<std::size_t>(256) << rng.below(5);
  p.dim += rng.below(p.dim / 2);
  // Request cost: iterations in [150, 1200) scaled by the experiment
  // scale (floor keeps characterize sampling meaningful).
  const auto base_iters = 150 + rng.below(1050);
  p.iterations = std::max<std::size_t>(
      64, static_cast<std::size_t>(static_cast<double>(base_iters) * scale));
  p.refs_per_iter = 1 + static_cast<unsigned>(rng.below(3));
  // Touched set: from a tiny hot region (~dim/64) to most of the array.
  const std::size_t denom = 1 + rng.below(64);
  p.distinct = std::max<std::size_t>(8, p.dim / denom);
  // Skew: half the sites uniform, half zipf-skewed.
  p.zipf_theta = rng.uniform() < 0.5 ? 0.0 : 0.3 + rng.uniform() * 0.6;
  p.locality = 0.5 + rng.uniform() * 0.5;
  p.body_flops = static_cast<unsigned>(rng.below(12));
  p.lw_legal = rng.uniform() < 0.8;  // 1 in 5 loops forbids replication
  p.seed = seed ^ (index * 0x100000001b3ull);

  Workload w;
  w.app = "Serve";
  w.loop = "s" + std::to_string(index);
  w.variant = "dim=" + std::to_string(p.dim) +
              " iters=" + std::to_string(p.iterations) +
              " mo=" + std::to_string(p.refs_per_iter);
  w.input = make_synthetic(p);
  w.instr_per_iter = 40 + p.body_flops * 2;
  w.invocations = 1;
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
