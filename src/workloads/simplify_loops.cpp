// Frontend-level workloads with exploitable cross-iteration reuse — the
// inputs of the reduction simplification pass (frontend/simplify.hpp).
//
// Unlike every other generator here, these do NOT flatten to a
// ReductionInput: the whole point is that adjacent outer iterations'
// accumulation ranges overlap almost completely (a prefix grows by one
// element, a window slides by one), and that reuse only exists at the
// LoopNest level. Flattening first is what turns O(N) of information into
// O(N²)/O(N·W) of work — the asymptotic gap `sapp_repro simplify`
// measures.
#include "workloads/workload.hpp"

namespace sapp::workloads {

namespace {

/// Positive values in [0.5, 1.5): keeps the add–subtract sliding rewrite
/// well-conditioned (no cancellation) and window sums O(w).
std::vector<double> positive_values(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = 0.5 + rng.uniform();
  return v;
}

}  // namespace

LoopWorkload make_prefix_sum(std::size_t n, std::uint64_t seed,
                             frontend::Statement::Op op) {
  using namespace frontend;
  Rng rng(seed ^ 0x5f12a3c9d48bee01ull);
  LoopWorkload w;
  w.app = "PrefixSum";
  w.loop = "scan" + std::to_string(n);
  w.target = "out";
  w.dim = n;
  w.nest.name = w.app + "/" + w.loop;
  w.nest.iterations = n;
  // for i: for j in [0, i+1): out[i] ⊕= in[j]
  Statement st;
  st.target = "out";
  st.index = IndexExpr::loop_index();
  st.op = op;
  st.value = ValueExpr::array_read("in", IndexExpr::inner_index());
  st.inner = InnerRange{AffineExpr::constant(0), AffineExpr::of_i(1)};
  w.nest.body.push_back(std::move(st));
  w.bindings.value_arrays["in"] = positive_values(n, rng);
  return w;
}

LoopWorkload make_sliding_window(std::size_t n, std::size_t win,
                                 std::uint64_t seed,
                                 frontend::Statement::Op op) {
  using namespace frontend;
  SAPP_REQUIRE(win > 0, "sliding window must be non-empty");
  Rng rng(seed ^ 0xc0ffee1234567890ull);
  LoopWorkload w;
  w.app = "SlidingWindow";
  w.loop = "win" + std::to_string(win) + "n" + std::to_string(n);
  w.target = "out";
  w.dim = n;
  w.nest.name = w.app + "/" + w.loop;
  w.nest.iterations = n;
  // for i: for j in [i, i+w): out[i] ⊕= in[j]
  Statement st;
  st.target = "out";
  st.index = IndexExpr::loop_index();
  st.op = op;
  st.value = ValueExpr::array_read("in", IndexExpr::inner_index());
  st.inner = InnerRange{AffineExpr::of_i(0),
                        AffineExpr::of_i(static_cast<std::int64_t>(win))};
  w.nest.body.push_back(std::move(st));
  // n-1+w input elements: the last window [n-1, n-1+w) stays in range.
  w.bindings.value_arrays["in"] =
      positive_values(n == 0 ? win : n - 1 + win, rng);
  return w;
}

}  // namespace sapp::workloads
