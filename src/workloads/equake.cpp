// EQUAKE — SPECfp2000 earthquake simulation, loop smvp
// (Table 2: 30169 iterations/invocation, 550 instructions and 22 reduction
// operations per iteration, 707.1 KB reduction array, 3855 invocations).
//
// Sparse matrix-vector product over a 3-dof-per-node mesh: row i
// accumulates ~22 contributions, most into its own 3 components, the rest
// into the symmetric partners' components (the scatter part of smvp).
#include "common/assert.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_equake(double scale, std::uint64_t seed) {
  SAPP_REQUIRE(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
  Rng rng(seed);
  constexpr unsigned kDof = 3;
  const auto nodes = static_cast<std::size_t>(30169 * scale);
  const std::size_t dim = nodes * kDof;  // 90507 doubles ~ 707.1 KB at scale 1

  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(nodes + 1);
  idx.reserve(nodes * 22);
  constexpr std::size_t kBand = 40;
  for (std::size_t r = 0; r < nodes; ++r) {
    // ~13 updates into the row's own dofs (diagonal block x matrix row),
    // ~9 scattered into symmetric partners within the band.
    for (unsigned k = 0; k < 13; ++k)
      idx.push_back(static_cast<std::uint32_t>(r * kDof + k % kDof));
    for (unsigned k = 0; k < 9; ++k) {
      std::size_t c = r + 1 + rng.below(kBand);
      if (c >= nodes) c = r >= kBand ? r - kBand : 0;
      idx.push_back(static_cast<std::uint32_t>(c * kDof + k % kDof));
    }
    row_ptr.push_back(idx.size());
  }

  Workload w;
  w.app = "Equake";
  w.loop = "smvp";
  w.variant = "scale=" + std::to_string(scale);
  w.input.pattern.dim = dim;
  w.input.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  w.input.pattern.body_flops = 24;
  w.input.pattern.iteration_replication_legal = true;
  w.input.values.resize(w.input.pattern.num_refs());
  for (auto& v : w.input.values) v = rng.uniform(-1.0, 1.0);
  w.instr_per_iter = 550;
  w.input_bytes_per_iter = 32;  // row pointer + column indices
  w.invocations = 3855;
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
