// Workload descriptors for the paper's applications.
//
// The paper evaluates on real FORTRAN/C codes (Irreg, Nbf, Moldyn, Spark98,
// Charmm, Spice for the software study; Euler, Equake, Vml, Charmm, Nbf for
// the hardware study). We cannot ship those inputs, so each application is
// reproduced as a *generator* that builds a reduction loop whose reference
// pattern matches the published statistics (MO/DIM/SP/CON plus iteration,
// instruction and reduction-op counts). DESIGN.md §2 documents this
// substitution; tests in tests/workloads_test.cpp assert the generated
// stats land in the intended regime.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "frontend/loop_ir.hpp"
#include "reductions/access_pattern.hpp"

namespace sapp::workloads {

/// Paper-published expectations for one Fig. 3 row (for side-by-side
/// printing; empty strings when the paper does not report a value).
struct PaperRow {
  std::string recommended;     ///< paper's "Recom. Scheme" column
  std::string measured_order;  ///< paper's experimental ordering, best first
};

/// One generated reduction workload.
struct Workload {
  std::string app;      ///< application ("Irreg", "Nbf", ...)
  std::string loop;     ///< loop name from the paper ("do100", "smvp", ...)
  std::string variant;  ///< input-size label (e.g. "dim=100000")
  ReductionInput input;
  PaperRow paper;

  /// Instructions per iteration (Table 2) — used by the simulator's trace
  /// generator to size the compute portion of each iteration.
  unsigned instr_per_iter = 0;
  /// Loop invocations in one program run (Table 2).
  unsigned invocations = 1;
  /// Bytes of input data (index/pair lists) streamed per iteration by the
  /// simulator traces. Varies enormously across the codes: an Euler edge
  /// reads two node ids (8 B) while an Nbf charge group streams its whole
  /// pair list (~800 B). 0 = default of 4 B per reference.
  unsigned input_bytes_per_iter = 0;
};

/// Stamp the pattern with its stable loop-site id ("<App>/<loop>") so the
/// multi-site runtime (sapp::Runtime) can key its site table and persistent
/// decision cache on it. Every generator calls this last.
inline void tag_site(Workload& w) {
  w.input.pattern.loop_id = w.app + "/" + w.loop;
}

/// Common knobs of the synthetic reference-pattern engine. Every app
/// generator is a differently-shaped instantiation of this.
struct SynthParams {
  std::size_t dim = 0;        ///< reduction array elements
  std::size_t distinct = 0;   ///< elements actually referenced
  std::size_t iterations = 0;
  unsigned refs_per_iter = 1; ///< the MO target
  double zipf_theta = 0.0;    ///< reference histogram skew (0 = uniform)
  double locality = 0.9;      ///< P(later ref close to the iteration's first)
  std::size_t window = 256;   ///< "close" = within this many active elements
  bool sort_iterations = true;///< order iterations by first element (mesh order)
  unsigned body_flops = 4;
  bool lw_legal = true;
  std::uint64_t seed = 12345;
};

/// Build a pattern+values from the synthetic engine.
[[nodiscard]] ReductionInput make_synthetic(const SynthParams& p);

// ---- Application generators (software study, Fig. 3) -------------------

/// IRREG: CFD-style edge list over an irregular mesh, MO=2, good spatial
/// locality after mesh renumbering.
[[nodiscard]] Workload make_irreg(std::size_t dim, std::size_t distinct,
                                  std::size_t edges, std::uint64_t seed);

/// NBF (GROMOS nonbonded force, loop do50): pair list accumulating into one
/// partner per interaction (MO=1), heavily skewed reference histogram.
[[nodiscard]] Workload make_nbf(std::size_t dim, std::size_t distinct,
                                std::size_t pairs, std::uint64_t seed);

/// MOLDYN ComputeForces: neighbor pairs of a 3-D particle lattice, MO=2,
/// high cross-thread sharing of the touched set.
[[nodiscard]] Workload make_moldyn(std::size_t dim, std::size_t distinct,
                                   std::size_t pairs, std::uint64_t seed);

/// SPARK98 smvp: symmetric sparse matrix-vector product accumulation,
/// MO=1, row-banded locality.
[[nodiscard]] Workload make_spark98(std::size_t dim, std::size_t distinct,
                                    std::size_t nnz, std::uint64_t seed);

/// CHARMM dynamc do78: bonded-force interaction lists, MO=2, large arrays,
/// heavy per-iteration body.
[[nodiscard]] Workload make_charmm(std::size_t dim, std::size_t distinct,
                                   std::size_t interactions,
                                   std::uint64_t seed);

/// SPICE bjt100 device loading: each device stamps ~28 scattered matrix
/// entries; tiny touched set inside a huge index space; iteration
/// replication illegal (device model updates shared state).
[[nodiscard]] Workload make_spice(std::size_t dim, std::size_t devices,
                                  std::uint64_t seed);

// ---- Drifting inputs (phase-aware runtime, §4 dynamic applications) ----

/// The two phases of a mid-run connectivity reshuffle on one loop site
/// (same dim, same loop_id — only the pattern moves between them).
struct DriftPhases {
  Workload dense;   ///< pre-reshuffle: mesh covering most of the array
  Workload sparse;  ///< post-reshuffle: scatter into a tiny active region
};

/// IRREG whose mesh is reshuffled mid-run: `dense` sweeps `dense_edges`
/// mesh edges over ~60% of the array per invocation (reuse — rep
/// territory); `sparse` scatters `sparse_edges` edges into ~dim/256 nodes
/// of the same array (sel/hash territory). Feeding dense×k then sparse×k
/// through one site is the drift the phase-aware runtime must catch —
/// see `sapp_repro phase_drift`.
[[nodiscard]] DriftPhases make_irreg_reshuffle(std::size_t dim,
                                               std::size_t dense_edges,
                                               std::size_t sparse_edges,
                                               std::uint64_t seed);

// ---- Frontend loop workloads (reduction simplification pass) -----------

/// A workload kept at the LoopNest level: the nested accumulation shape
/// the simplification pass (frontend/simplify.hpp) consumes. The
/// flattened ReductionInput of the adaptive runtime hides exactly the
/// cross-iteration reuse the pass exploits, so these generators hand out
/// the loop itself plus its runtime bindings.
struct LoopWorkload {
  std::string app;    ///< "PrefixSum" / "SlidingWindow"
  std::string loop;   ///< loop name (doubles as the fallback site id stem)
  frontend::LoopNest nest;
  frontend::Bindings bindings;
  std::string target;   ///< the reduction array
  std::size_t dim = 0;  ///< extent of the target
};

/// Prefix-sum shape with maximal reuse: `out[i] ⊕= in[j]` for 0 <= j <= i
/// over n outer iterations — O(n²) contributions naively, O(n) once the
/// pass rewrites it to a running scan. Input values are positive
/// (drawn in [0.5, 1.5)) so the rewritten forms stay numerically benign.
[[nodiscard]] LoopWorkload make_prefix_sum(
    std::size_t n, std::uint64_t seed,
    frontend::Statement::Op op = frontend::Statement::Op::kPlusAssign);

/// Sliding-window shape: `out[i] ⊕= in[j]` for i <= j < i+w — O(n·w)
/// contributions naively, O(n) as add–subtract (⊕ = +) or a monotonic
/// deque (⊕ = min/max). The input array carries n-1+w elements so every
/// window is fully in range.
[[nodiscard]] LoopWorkload make_sliding_window(
    std::size_t n, std::size_t w, std::uint64_t seed,
    frontend::Statement::Op op = frontend::Statement::Op::kPlusAssign);

// ---- Serving mix (serving-scale stress harness) ------------------------

/// One site of the serving-mix population: a randomized instantiation of
/// the synthetic engine whose shape (dim, iterations, refs/iter, skew,
/// locality, body flops, lw legality) is drawn deterministically from
/// (seed, index), so the same (seed, index) always regenerates the same
/// site. Sites span the regimes of every scheme — dense sweeps, sparse
/// scatters, skewed histograms — and are tagged "serve/s<index>".
/// `scale` multiplies the iteration count (request cost), not the
/// population shape. See `sapp_repro serving` / docs/serving.md.
[[nodiscard]] Workload make_serving_site(std::size_t index, double scale,
                                         std::uint64_t seed);

// ---- Cluster mix (distributed strategy sweep) --------------------------

/// The three workload regimes the `distributed` experiment sweeps across
/// node count × link class — chosen to straddle the strategy crossovers
/// (see docs/distributed.md).
enum class ClusterShape {
  kDense,   ///< touches ~the whole array, heavy reuse → replication regime
  kMid,     ///< moderate sparsity, balanced refs/dim → contested middle
  kSparse,  ///< tiny touched set in a huge array → combining/owner regime
};

[[nodiscard]] constexpr const char* to_string(ClusterShape s) {
  switch (s) {
    case ClusterShape::kDense: return "dense";
    case ClusterShape::kMid: return "mid";
    case ClusterShape::kSparse: return "sparse";
  }
  return "?";
}

/// Synthetic-engine instantiation of one cluster regime, scaled by the
/// repro harness's `--scale` (iteration count and reference volume shrink;
/// the regime's sparsity signature is preserved). Tagged "cluster/<shape>".
[[nodiscard]] Workload make_cluster_workload(ClusterShape shape, double scale,
                                             std::uint64_t seed);

// ---- Application generators (hardware study, Table 2) ------------------

/// EULER dflux do100 (HPF-2): flux accumulation over unstructured-mesh
/// edges.
[[nodiscard]] Workload make_euler(double scale, std::uint64_t seed);
/// EQUAKE smvp (SPECfp2000): sparse matrix-vector with 3 dofs per node.
[[nodiscard]] Workload make_equake(double scale, std::uint64_t seed);
/// VML VecMult CAB (Sparse BLAS): small dense-ish accumulation target.
[[nodiscard]] Workload make_vml(double scale, std::uint64_t seed);
/// CHARMM dynamc (hardware-study sizing).
[[nodiscard]] Workload make_charmm_hw(double scale, std::uint64_t seed);
/// NBF do50 (hardware-study sizing).
[[nodiscard]] Workload make_nbf_hw(double scale, std::uint64_t seed);

}  // namespace sapp::workloads
