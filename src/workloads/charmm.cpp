// CHARMM — macromolecular dynamics, loop dynamc/do78 (Fig. 3, Table 2).
//
// Bonded/nonbonded interaction lists over a large coordinate array
// (Table 2: 1947 KB reduction array, 420 instructions and 54 reduction ops
// per iteration in the hardware study). MO = 2 in the software study.
// Interactions are list-ordered, not mesh-ordered, and the molecule spans
// the whole array, so the touched set is large and highly shared — the
// regime where ll's lazy initialization beats both rep (full-array sweeps)
// and sel (whose shared set approaches the full touched set).
#include "common/assert.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {

Workload make_charmm(std::size_t dim, std::size_t distinct,
                     std::size_t interactions, std::uint64_t seed) {
  SynthParams p;
  p.dim = dim;
  p.distinct = distinct;
  p.iterations = interactions;
  p.refs_per_iter = 2;     // MO = 2 (Fig. 3)
  p.zipf_theta = 0.35;     // mild skew: backbone atoms recur
  p.locality = 0.25;       // interaction partners scattered over the molecule
  p.window = 64;
  p.sort_iterations = false;  // interaction lists are not spatially sorted
  p.body_flops = 56;       // 420 instructions/iteration scaled
  p.lw_legal = true;
  p.seed = seed;

  Workload w;
  w.app = "Charmm";
  w.loop = "do78";
  w.variant = "dim=" + std::to_string(dim);
  w.input = make_synthetic(p);
  w.instr_per_iter = 420;
  tag_site(w);
  return w;
}

// Hardware-study sizing (Table 2: loop dynamc, 82944 iterations, 420
// instructions and 54 reduction ops per iteration, 1947 KB array = 249216
// doubles, 1 invocation). Each iteration updates the 3 coordinates of 18
// atoms: its own atom group plus list neighbours.
Workload make_charmm_hw(double scale, std::uint64_t seed) {
  SAPP_REQUIRE(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
  Rng rng(seed);
  constexpr unsigned kDof = 3;
  const auto atoms = static_cast<std::size_t>(83072 * scale);
  const std::size_t dim = atoms * kDof;
  const auto iters = static_cast<std::size_t>(82944 * scale);

  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  row_ptr.reserve(iters + 1);
  idx.reserve(iters * 54);
  for (std::size_t i = 0; i < iters; ++i) {
    const std::size_t self = (i * atoms) / iters;
    // 6 atoms of the local group (bonded terms)...
    for (unsigned a = 0; a < 6; ++a) {
      std::size_t at = self + a;
      if (at >= atoms) at = atoms - 1;
      for (unsigned c = 0; c < kDof; ++c)
        idx.push_back(static_cast<std::uint32_t>(at * kDof + c));
    }
    // ...plus 12 list neighbours: mostly within the molecule's spatial
    // neighbourhood, a few long-range electrostatic partners.
    constexpr std::size_t kNeighborhood = 3000;
    for (unsigned a = 0; a < 12; ++a) {
      std::size_t at;
      if (rng.uniform() < 0.85) {
        const std::size_t off = rng.below(2 * kNeighborhood);
        at = (self + atoms + off - kNeighborhood) % atoms;
      } else {
        at = rng.below(atoms);
      }
      for (unsigned c = 0; c < kDof; ++c)
        idx.push_back(static_cast<std::uint32_t>(at * kDof + c));
    }
    row_ptr.push_back(idx.size());
  }

  Workload w;
  w.app = "Charmm";
  w.loop = "dynamc";
  w.variant = "scale=" + std::to_string(scale);
  w.input.pattern.dim = dim;
  w.input.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  w.input.pattern.body_flops = 32;
  w.input.pattern.iteration_replication_legal = true;
  w.input.values.resize(w.input.pattern.num_refs());
  for (auto& v : w.input.values) v = rng.uniform(-1.0, 1.0);
  w.instr_per_iter = 420;
  w.invocations = 1;
  w.input_bytes_per_iter = 48;  // 12 neighbour ids
  tag_site(w);
  return w;
}

}  // namespace sapp::workloads
