// Deterministic pseudo-random number generation.
//
// All workload generators take an explicit `Rng` so every experiment in the
// repository is reproducible from a seed. xoshiro256** (Blackman & Vigna) is
// used for its speed and statistical quality; SplitMix64 seeds the state.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace sapp {

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed, per the xoshiro authors' guidance.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      si = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction
  /// (bias negligible for the bounds used here).
  std::uint64_t below(std::uint64_t bound) {
    SAPP_REQUIRE(bound > 0, "bound must be positive");
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Approximately normal deviate (Irwin–Hall sum of 12 uniforms; adequate
  /// for workload shaping, not for statistics).
  double normalish(double mean, double stddev) {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform();
    return mean + (acc - 6.0) * stddev;
  }

  /// Zipf-like rank selection over [0, n): rank r chosen with probability
  /// roughly proportional to 1/(r+1)^theta, via inverse-CDF of the
  /// continuous bounded power law. Used for skewed reduction reference
  /// histograms (the CH/CHD measures of the paper). theta <= 0 degrades to
  /// uniform.
  std::uint64_t zipf(std::uint64_t n, double theta) {
    SAPP_REQUIRE(n > 0, "zipf needs a non-empty range");
    if (theta <= 0.0) return below(n);
    const double u = uniform();
    const double nn = static_cast<double>(n);
    double r;
    const double exp1 = 1.0 - theta;
    if (std::abs(exp1) > 1e-9) {
      const double t = u * (std::pow(nn, exp1) - 1.0) + 1.0;
      r = std::pow(t, 1.0 / exp1) - 1.0;
    } else {  // theta == 1: harmonic; CDF ~ ln(1+r)/ln(1+n)
      r = std::exp(u * std::log(nn + 1.0)) - 1.0;
    }
    auto idx = static_cast<std::uint64_t>(r);
    return idx >= n ? n - 1 : idx;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace sapp
