#include "common/thread_pool.hpp"

#include <atomic>

#include "common/assert.hpp"

namespace sapp {

ThreadPool::ThreadPool(unsigned nthreads) : nthreads_(nthreads) {
  SAPP_REQUIRE(nthreads >= 1, "pool needs at least one worker");
  workers_.reserve(nthreads_);
  for (unsigned t = 0; t < nthreads_; ++t)
    workers_.emplace_back([this, t] { worker_main(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main(unsigned tid) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job;
    {
      std::unique_lock lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_ && epoch_ == seen) return;
      seen = epoch_;
      job = job_;
    }
    (*job)(tid);
    {
      std::scoped_lock lk(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run(const std::function<void(unsigned)>& f) {
  std::unique_lock lk(mu_);
  job_ = &f;
  remaining_ = nthreads_;
  ++epoch_;
  cv_start_.notify_all();
  cv_done_.wait(lk, [&] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(unsigned, Range)>& body) {
  run([&](unsigned tid) {
    const Range r = static_block(n, tid, nthreads_);
    if (!r.empty()) body(tid, r);
  });
}

void ThreadPool::parallel_for_dynamic(
    std::size_t n, std::size_t chunk,
    const std::function<void(unsigned, Range)>& body) {
  SAPP_REQUIRE(chunk > 0, "chunk must be positive");
  std::atomic<std::size_t> next{0};
  run([&](unsigned tid) {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= n) break;
      const std::size_t hi = lo + chunk < n ? lo + chunk : n;
      body(tid, Range{lo, hi});
    }
  });
}

}  // namespace sapp
