#include "common/thread_pool.hpp"

#include "common/assert.hpp"
#include "common/compiler.hpp"

namespace sapp {

namespace {

// Bounded spin before parking on the futex. Sized so back-to-back regions
// (the common case: a scheme issues Init, Loop and Merge within
// microseconds of each other) are caught in the spin phase.
constexpr int kSpinIters = 1 << 10;

}  // namespace

ThreadPool::ThreadPool(unsigned nthreads) : nthreads_(nthreads) {
  SAPP_REQUIRE(nthreads >= 1, "pool needs at least one worker");
  // Spinning only helps when every worker owns a hardware context. On an
  // oversubscribed pool (more workers than the machine has contexts — the
  // paper-compat SAPP_THREADS=8 on a small container) a spinning thread
  // burns exactly the scheduler quantum the other workers need, so park
  // on the futex immediately instead.
  const unsigned hw = std::thread::hardware_concurrency();
  spin_iters_ = (hw == 0 || nthreads_ <= hw) ? kSpinIters : 1;
  helpers_.reserve(nthreads_ - 1);
  for (unsigned t = 1; t < nthreads_; ++t)
    helpers_.emplace_back([this, t] { worker_main(t); });
}

ThreadPool::~ThreadPool() {
  if (helpers_.empty()) return;
  stop_ = true;  // published by the epoch release-store below
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  epoch_.notify_all();
  for (auto& h : helpers_) h.join();
}

void ThreadPool::require_positive_chunk(std::size_t chunk) {
  SAPP_REQUIRE(chunk > 0, "chunk must be positive");
}

void ThreadPool::worker_main(unsigned tid) {
  std::uint64_t seen = 0;
  for (;;) {
    // Spin-then-block until the epoch moves past the last region we ran.
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    int spins = 0;
    while (e == seen) {
      if (++spins < spin_iters_) {
        cpu_relax();
      } else {
        // Park. atomic::wait re-checks the value against `seen` before
        // blocking, so a bump between our load and the wait cannot be
        // lost; `sleepers_` only gates the dispatcher's futex wake. The
        // seq_cst register/recheck pair forms the store-buffering Dekker
        // with the dispatcher's seq_cst bump + sleepers_ load.
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        epoch_.wait(seen, std::memory_order_seq_cst);
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
        spins = 0;
      }
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    if (stop_) return;
    fn_(ctx_, tid);
    // Last helper out wakes the caller iff it actually went to sleep.
    // seq_cst pairs with the caller's flag-store / counter-load so at
    // least one side observes the other (plain store-load ordering).
    if (remaining_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        caller_waiting_.load(std::memory_order_seq_cst))
      remaining_.notify_all();
  }
}

void ThreadPool::dispatch(RawFn fn, void* ctx) {
  if (helpers_.empty()) {  // pool of one: no fork-join state at all
    fn(ctx, 0);
    return;
  }

  fn_ = fn;
  ctx_ = ctx;
  remaining_.store(nthreads_ - 1, std::memory_order_relaxed);
  // Release the helpers. The release ordering publishes fn_/ctx_ and the
  // join counter; seq_cst additionally orders the bump against the
  // sleepers_ load (Dekker with the helpers' park sequence).
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) != 0) epoch_.notify_all();

  fn(ctx, 0);  // the caller is worker 0

  // Join: spin briefly — helpers finishing a balanced region land within
  // nanoseconds of worker 0 — then park on the counter.
  unsigned r = remaining_.load(std::memory_order_acquire);
  int spins = 0;
  while (r != 0) {
    if (++spins < spin_iters_) {
      cpu_relax();
      r = remaining_.load(std::memory_order_acquire);
    } else {
      // seq_cst flag-store / counter-load pairs with the helpers'
      // seq_cst decrement / flag-load (Dekker; see worker_main).
      caller_waiting_.store(true, std::memory_order_seq_cst);
      while ((r = remaining_.load(std::memory_order_seq_cst)) != 0)
        remaining_.wait(r, std::memory_order_seq_cst);
      caller_waiting_.store(false, std::memory_order_relaxed);
    }
  }
}

}  // namespace sapp
