// Compressed-sparse-row container.
//
// Used as the backbone of the reduction AccessPattern (iteration → element
// references), workload meshes (node adjacency) and the wavefront
// inspector's dependence lists.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace sapp {

/// Rows of variable-length index lists stored contiguously.
/// `row_ptr` has `rows()+1` entries; row r occupies
/// `indices[row_ptr[r] .. row_ptr[r+1])`.
class Csr {
 public:
  Csr() = default;

  /// Adopt prebuilt arrays. `row_ptr` must be non-decreasing, start at 0 and
  /// end at `indices.size()`.
  Csr(std::vector<std::uint64_t> row_ptr, std::vector<std::uint32_t> indices)
      : row_ptr_(std::move(row_ptr)), indices_(std::move(indices)) {
    SAPP_REQUIRE(!row_ptr_.empty() && row_ptr_.front() == 0 &&
                     row_ptr_.back() == indices_.size(),
                 "malformed CSR row pointer");
  }

  /// Build from a list of (row, index) pairs via counting sort.
  static Csr from_pairs(
      std::size_t rows,
      std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs) {
    std::vector<std::uint64_t> ptr(rows + 1, 0);
    for (const auto& [r, c] : pairs) {
      SAPP_REQUIRE(r < rows, "row out of range");
      (void)c;
      ++ptr[r + 1];
    }
    for (std::size_t r = 0; r < rows; ++r) ptr[r + 1] += ptr[r];
    std::vector<std::uint32_t> idx(pairs.size());
    std::vector<std::uint64_t> cursor(ptr.begin(), ptr.end() - 1);
    for (const auto& [r, c] : pairs) idx[cursor[r]++] = c;
    return Csr(std::move(ptr), std::move(idx));
  }

  [[nodiscard]] std::size_t rows() const {
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  [[nodiscard]] std::size_t nnz() const { return indices_.size(); }

  [[nodiscard]] std::span<const std::uint32_t> row(std::size_t r) const {
    SAPP_ASSERT(r + 1 < row_ptr_.size(), "row out of range");
    return {indices_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  [[nodiscard]] const std::vector<std::uint64_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& indices() const {
    return indices_;
  }
  [[nodiscard]] std::vector<std::uint32_t>& mutable_indices() {
    return indices_;
  }

 private:
  std::vector<std::uint64_t> row_ptr_;
  std::vector<std::uint32_t> indices_;
};

}  // namespace sapp
