// Fixed-width plain-text table printer.
//
// The benchmark harnesses print rows in the same layout as the paper's
// tables/figures; this helper keeps the columns aligned without dragging in
// a formatting library.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace sapp {

/// Column-aligned table. Add a header and rows of strings; `str()` renders
/// with every column padded to its widest cell, `print()` writes to stdout.
class Table {
 public:
  /// Start a table with the given column headers.
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {
    SAPP_REQUIRE(!header_.empty(), "table needs at least one column");
  }

  /// Append a data row; must match the header's column count.
  void add_row(std::vector<std::string> row) {
    SAPP_REQUIRE(row.size() == header_.size(),
                 "row width must match header width");
    rows_.push_back(std::move(row));
  }

  /// Convenience for numeric cells.
  static std::string num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }
  static std::string num(long long v) { return std::to_string(v); }
  static std::string num(std::size_t v) { return std::to_string(v); }

  [[nodiscard]] std::string str() const {
    std::vector<std::size_t> w(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c)
        w[c] = r[c].size() > w[c] ? r[c].size() : w[c];
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        os << r[c];
        if (c + 1 < r.size())
          os << std::string(w[c] - r[c].size() + 2, ' ');
      }
      os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& r : rows_) emit(r);
    return os.str();
  }

  void print() const { std::fputs(str().c_str(), stdout); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sapp
