#include "common/topology.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/assert.hpp"

namespace sapp {

namespace fs = std::filesystem;

namespace {

std::string read_first_line(const fs::path& p) {
  std::ifstream f(p);
  std::string line;
  if (f) std::getline(f, line);
  return line;
}

CpuTopology flat_fallback() {
  CpuTopology t;
  t.total_cpus = std::max(1u, std::thread::hardware_concurrency());
  TopologyNode n;
  n.node_id = 0;
  for (unsigned c = 0; c < t.total_cpus; ++c) n.cpus.push_back(c);
  t.nodes.push_back(std::move(n));
  return t;
}

}  // namespace

std::vector<unsigned> parse_cpulist(const std::string& list) {
  std::vector<unsigned> cpus;
  std::stringstream ss(list);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    if (chunk.empty()) continue;
    try {
      if (const auto dash = chunk.find('-'); dash != std::string::npos) {
        const unsigned lo = static_cast<unsigned>(
            std::stoul(chunk.substr(0, dash)));
        const unsigned hi = static_cast<unsigned>(
            std::stoul(chunk.substr(dash + 1)));
        if (hi < lo || hi - lo > 4096) continue;  // malformed / absurd
        for (unsigned c = lo; c <= hi; ++c) cpus.push_back(c);
      } else {
        cpus.push_back(static_cast<unsigned>(std::stoul(chunk)));
      }
    } catch (...) {
      // skip the malformed chunk, keep the rest
    }
  }
  // sysfs lists may overlap across chunks ("0-2,2,1" is legal); the
  // consumers (CPU shares, group splits) need each CPU exactly once, in
  // order.
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology CpuTopology::detect() {
#if defined(__linux__)
  CpuTopology t;
  std::error_code ec;
  const fs::path node_root = "/sys/devices/system/node";
  if (fs::is_directory(node_root, ec)) {
    for (const auto& entry : fs::directory_iterator(node_root, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("node", 0) != 0 ||
          name.find_first_not_of("0123456789", 4) != std::string::npos ||
          name.size() == 4)
        continue;
      TopologyNode n;
      n.node_id = static_cast<unsigned>(std::stoul(name.substr(4)));
      n.cpus = parse_cpulist(read_first_line(entry.path() / "cpulist"));
      if (!n.cpus.empty()) t.nodes.push_back(std::move(n));
    }
  }
  if (t.nodes.empty()) return flat_fallback();
  std::sort(t.nodes.begin(), t.nodes.end(),
            [](const TopologyNode& a, const TopologyNode& b) {
              return a.node_id < b.node_id;
            });

  // Core/package counts from the per-cpu topology files (best effort; the
  // counts are metadata, the schedule only needs the node shares).
  std::set<std::pair<long, long>> cores;
  std::set<long> packages;
  for (const auto& node : t.nodes) {
    t.total_cpus += static_cast<unsigned>(node.cpus.size());
    for (const unsigned c : node.cpus) {
      const fs::path cpu = "/sys/devices/system/cpu/cpu" + std::to_string(c);
      const std::string core = read_first_line(cpu / "topology" / "core_id");
      const std::string pkg =
          read_first_line(cpu / "topology" / "physical_package_id");
      if (core.empty() || pkg.empty()) continue;
      try {
        cores.emplace(std::stol(pkg), std::stol(core));
        packages.insert(std::stol(pkg));
      } catch (...) {
      }
    }
  }
  t.physical_cores = static_cast<unsigned>(cores.size());
  t.packages = static_cast<unsigned>(packages.size());
  t.from_sysfs = true;
  return t;
#else
  return flat_fallback();
#endif
}

const CpuTopology& CpuTopology::host() {
  static const CpuTopology t = detect();
  return t;
}

std::string CpuTopology::summary() const {
  std::string s = std::to_string(nodes.size()) +
                  (nodes.size() == 1 ? " node" : " nodes");
  if (packages > 0)
    s += " / " + std::to_string(packages) +
         (packages == 1 ? " package" : " packages");
  if (physical_cores > 0)
    s += " / " + std::to_string(physical_cores) +
         (physical_cores == 1 ? " core" : " cores");
  s += " / " + std::to_string(total_cpus) +
       (total_cpus == 1 ? " cpu" : " cpus");
  s += from_sysfs ? " (sysfs)" : " (flat fallback)";
  return s;
}

// ------------------------------------------------------ CombineSchedule

namespace {

/// 0 = no override. Relaxed atomics: tests flip this between runs while
/// pool helpers are parked.
std::atomic<unsigned> g_forced_groups{0};

enum class Policy { kFlat, kNodes, kFixedGroups };

struct EnvPolicy {
  Policy policy = Policy::kNodes;
  unsigned fixed = 0;
};

EnvPolicy env_policy() {
  static const EnvPolicy p = [] {
    EnvPolicy e;
    const char* env = std::getenv("SAPP_TOPOLOGY");
    if (env == nullptr || *env == '\0') return e;
    const std::string v = env;
    if (v == "flat") {
      e.policy = Policy::kFlat;
    } else if (v == "nodes") {
      e.policy = Policy::kNodes;
    } else if (v.rfind("groups=", 0) == 0) {
      try {
        e.fixed = static_cast<unsigned>(std::stoul(v.substr(7)));
        e.policy = Policy::kFixedGroups;
      } catch (...) {
        e.fixed = 0;
      }
      if (e.fixed == 0) {
        SAPP_REQUIRE(false,
                     "SAPP_TOPOLOGY=groups=<G> needs a positive integer");
      }
    } else {
      const std::string msg = "SAPP_TOPOLOGY='" + v +
                              "' is not flat, nodes, or groups=<G>";
      SAPP_REQUIRE(false, msg.c_str());
    }
    return e;
  }();
  return p;
}

}  // namespace

const Range& CombineSchedule::group_of(unsigned tid) const {
  for (const Range& g : groups)
    if (tid >= g.begin && tid < g.end) return g;
  SAPP_REQUIRE(false, "worker id outside the combine schedule");
  return groups.front();  // unreachable
}

CombineSchedule CombineSchedule::equal_groups(unsigned P, unsigned G) {
  CombineSchedule s;
  if (P == 0) return s;
  G = std::clamp(G, 1u, P);
  for (unsigned g = 0; g < G; ++g) {
    const Range r = static_block(P, g, G);
    if (!r.empty()) s.groups.push_back(r);
  }
  return s;
}

CombineSchedule CombineSchedule::from_topology(unsigned P,
                                               const CpuTopology& t) {
  CombineSchedule s;
  if (P == 0) return s;
  if (t.nodes.size() <= 1 || t.total_cpus == 0)
    return equal_groups(P, 1);
  // Proportional contiguous split: node j's group gets a worker-id block
  // sized by its share of the machine's CPUs (cumulative rounding keeps
  // the union exact). Empty blocks are dropped (P < node count).
  std::size_t begin = 0;
  unsigned cpus_before = 0;
  for (const auto& node : t.nodes) {
    cpus_before += static_cast<unsigned>(node.cpus.size());
    const std::size_t end =
        (static_cast<std::size_t>(P) * cpus_before + t.total_cpus / 2) /
        t.total_cpus;
    const std::size_t clamped = std::min<std::size_t>(end, P);
    if (clamped > begin) {
      s.groups.push_back(Range{begin, clamped});
      begin = clamped;
    }
  }
  if (begin < P) {  // rounding shortfall lands in the last group
    if (s.groups.empty()) s.groups.push_back(Range{0, P});
    else s.groups.back().end = P;
  }
  return s;
}

CombineSchedule CombineSchedule::for_workers(unsigned P) {
  if (const unsigned g = g_forced_groups.load(std::memory_order_relaxed);
      g > 0)
    return equal_groups(P, g);
  const EnvPolicy e = env_policy();
  switch (e.policy) {
    case Policy::kFlat: return equal_groups(P, 1);
    case Policy::kFixedGroups: return equal_groups(P, e.fixed);
    case Policy::kNodes: break;
  }
  return from_topology(P, CpuTopology::host());
}

namespace topology {

void force_groups(unsigned g) {
  g_forced_groups.store(g, std::memory_order_relaxed);
}

std::string policy_summary() {
  if (const unsigned g = g_forced_groups.load(std::memory_order_relaxed);
      g > 0)
    return "forced groups=" + std::to_string(g);
  switch (env_policy().policy) {
    case Policy::kFlat: return "flat (SAPP_TOPOLOGY)";
    case Policy::kFixedGroups:
      return "groups=" + std::to_string(env_policy().fixed) +
             " (SAPP_TOPOLOGY)";
    case Policy::kNodes: break;
  }
  return "nodes";
}

}  // namespace topology

}  // namespace sapp
