// Wall-clock timing helpers built on std::chrono::steady_clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace sapp {

/// Monotonic stopwatch. Construction starts it; `seconds()` reads elapsed
/// time without stopping; `restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }
  [[nodiscard]] std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Phase timings common to all reduction schemes (and to the simulator's
/// Fig. 6 breakdown): initialization of private storage, main loop body,
/// and merge/flush of partial results.
struct PhaseTimes {
  double init_s = 0.0;
  double loop_s = 0.0;
  double merge_s = 0.0;

  [[nodiscard]] double total() const { return init_s + loop_s + merge_s; }

  PhaseTimes& operator+=(const PhaseTimes& o) {
    init_s += o.init_s;
    loop_s += o.loop_s;
    merge_s += o.merge_s;
    return *this;
  }
};

}  // namespace sapp
