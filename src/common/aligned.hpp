// Cache-line-aware allocation helpers.
//
// Parallel reduction schemes keep per-thread accumulators; placing two
// threads' data in the same cache line destroys their performance through
// false sharing. `Padded<T>` and `CacheAlignedVector<T>` guarantee each
// logical slot starts on its own destructive-interference boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace sapp {

// Size of the destructive-interference region. Pinned to 64 bytes (x86-64,
// and the line size the paper's Table 1 architecture uses) rather than
// std::hardware_destructive_interference_size, whose value is
// tuning-dependent and poisons ABI stability (GCC -Winterference-size).
inline constexpr std::size_t kCacheLine = 64;

/// A value padded out to a full cache line so adjacent array elements never
/// share a line (use for per-thread counters/accumulators).
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

/// Minimal allocator that over-aligns every allocation to a cache line.
/// Satisfies the Allocator named requirements for use with std::vector.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  constexpr CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kCacheLine});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLine});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Vector whose backing store starts on a cache-line boundary.
template <typename T>
using CacheAlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

/// Fixed-size, cache-line-aligned, *uninitialized* storage — the backing
/// store of every scheme's private buffers.
///
/// Unlike a vector, constructing or resetting an AlignedBuffer touches no
/// pages: under Linux's first-touch placement policy the physical pages
/// land on the NUMA node of whichever worker first writes them, so the
/// schemes' Init phase (each worker neutral-fills its own buffer) doubles
/// as placement. The 64-byte alignment is what the SIMD kernel backends
/// and the cache-tiled merges assume (SAPP_ASSERT_ALIGNED checks it in
/// debug builds at the point of use).
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "AlignedBuffer holds raw uninitialized storage");

 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) { reset(n); }
  ~AlignedBuffer() { std::free(ptr_); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : ptr_(std::exchange(other.ptr_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(ptr_);
      ptr_ = std::exchange(other.ptr_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Reallocate to exactly `n` elements, contents indeterminate.
  void reset(std::size_t n) {
    std::free(ptr_);
    ptr_ = nullptr;
    size_ = n;
    if (n == 0) return;
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLine - 1) / kCacheLine * kCacheLine;
    ptr_ = static_cast<T*>(std::aligned_alloc(kCacheLine, bytes));
    if (ptr_ == nullptr) throw std::bad_alloc();
  }

  [[nodiscard]] T* data() noexcept { return ptr_; }
  [[nodiscard]] const T* data() const noexcept { return ptr_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return ptr_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return ptr_[i];
  }

 private:
  T* ptr_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace sapp

/// Debug-build check that a pointer satisfies the kernel backends'
/// 64-byte alignment contract (compiled out under NDEBUG).
#define SAPP_ASSERT_ALIGNED(p)                                            \
  SAPP_ASSERT(reinterpret_cast<std::uintptr_t>(p) % ::sapp::kCacheLine == \
                  0,                                                      \
              "private buffer is not 64-byte aligned")
