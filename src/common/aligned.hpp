// Cache-line-aware allocation helpers.
//
// Parallel reduction schemes keep per-thread accumulators; placing two
// threads' data in the same cache line destroys their performance through
// false sharing. `Padded<T>` and `CacheAlignedVector<T>` guarantee each
// logical slot starts on its own destructive-interference boundary.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace sapp {

// Size of the destructive-interference region. Pinned to 64 bytes (x86-64,
// and the line size the paper's Table 1 architecture uses) rather than
// std::hardware_destructive_interference_size, whose value is
// tuning-dependent and poisons ABI stability (GCC -Winterference-size).
inline constexpr std::size_t kCacheLine = 64;

/// A value padded out to a full cache line so adjacent array elements never
/// share a line (use for per-thread counters/accumulators).
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

/// Minimal allocator that over-aligns every allocation to a cache line.
/// Satisfies the Allocator named requirements for use with std::vector.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  constexpr CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kCacheLine});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLine});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Vector whose backing store starts on a cache-line boundary.
template <typename T>
using CacheAlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

}  // namespace sapp
