// Host CPU topology and the topology-aware combine schedule.
//
// The privatizing schemes' merge phase folds P private buffers into the
// shared array. On a multi-node machine the fold order matters twice:
// once for bandwidth (reading a buffer that lives on another NUMA node
// crosses the interconnect) and once for determinism (floating-point sums
// reassociate). `CpuTopology` reads the sysfs view of the machine
// (packages, cores, NUMA nodes — a hwloc-style summary without the
// dependency) and `CombineSchedule` turns it into a deterministic
// partition of the P workers into groups: the merge folds copies within a
// group first, then folds the group results in ascending order. With one
// group (any single-node host, or SAPP_TOPOLOGY=flat) the schedule is
// exactly the historical flat ascending-thread fold, bitwise included.
//
// Workers are not pinned, so node grouping is proportional, not exact:
// worker ids are split into contiguous blocks sized by each node's share
// of the machine's CPUs. That captures the first-touch placement the
// schemes establish (each worker initializes its own buffer) without a
// pinning dependency. docs/backends.md documents the combine-order
// contract; tests/kernels_test.cpp pins it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"

namespace sapp {

/// One NUMA node's share of the machine.
struct TopologyNode {
  unsigned node_id = 0;
  std::vector<unsigned> cpus;  ///< logical CPU ids on this node
};

/// Sysfs-derived machine shape. Falls back to a single flat node holding
/// hardware_concurrency() CPUs when sysfs is unreadable (non-Linux,
/// containers with masked /sys).
struct CpuTopology {
  std::vector<TopologyNode> nodes;
  unsigned total_cpus = 0;
  unsigned physical_cores = 0;   ///< distinct (package, core) pairs; 0 if unknown
  unsigned packages = 0;         ///< distinct physical packages; 0 if unknown
  bool from_sysfs = false;       ///< false = flat fallback

  /// Cached host topology (read once).
  [[nodiscard]] static const CpuTopology& host();
  /// Uncached probe (testing).
  [[nodiscard]] static CpuTopology detect();

  /// e.g. "1 node / 1 package / 4 cores / 8 cpus (sysfs)".
  [[nodiscard]] std::string summary() const;
};

/// Parse a sysfs cpulist ("0-3,8-11", "0", "") into CPU ids. Malformed
/// chunks are skipped; exposed for tests.
[[nodiscard]] std::vector<unsigned> parse_cpulist(const std::string& list);

/// Deterministic partition of worker ids [0, P) into contiguous groups for
/// the hierarchical merge. Groups are never empty and cover [0, P) in
/// ascending order.
struct CombineSchedule {
  std::vector<Range> groups;

  [[nodiscard]] bool flat() const { return groups.size() <= 1; }
  [[nodiscard]] std::size_t group_count() const { return groups.size(); }
  /// The group containing worker `tid`.
  [[nodiscard]] const Range& group_of(unsigned tid) const;

  /// Schedule for P workers on the host topology, honouring the
  /// SAPP_TOPOLOGY override (read once at first use):
  ///   flat        — one group (the historical flat merge),
  ///   nodes       — group by NUMA-node share (default),
  ///   groups=<G>  — G equal contiguous groups (testing/ablation).
  /// A `force_groups` override (test hook) beats the environment.
  [[nodiscard]] static CombineSchedule for_workers(unsigned P);

  /// Build from an explicit group count (clamped to [1, P]).
  [[nodiscard]] static CombineSchedule equal_groups(unsigned P, unsigned G);

  /// Build for P workers from an explicit topology (nodes policy).
  [[nodiscard]] static CombineSchedule from_topology(unsigned P,
                                                     const CpuTopology& t);
};

namespace topology {
/// Test/ablation hook: force every CombineSchedule::for_workers to use G
/// equal groups (0 restores the environment/topology-driven behaviour).
void force_groups(unsigned g);
/// One-line description of the schedule policy for result metadata, e.g.
/// "nodes (1 group over 8 workers would be flat)" — combined with
/// CpuTopology::host().summary() by callers.
[[nodiscard]] std::string policy_summary();
}  // namespace topology

}  // namespace sapp
