// Assertion macros for the SmartApps library.
//
// SAPP_ASSERT is compiled out in NDEBUG builds and is for internal
// invariants; SAPP_REQUIRE always fires and is for validating arguments at
// public API boundaries (CppCoreGuidelines I.6/I.8: state preconditions).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sapp {

[[noreturn]] inline void
assert_fail(const char* kind, const char* expr, const char* file, int line,
            const char* msg) {
  std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n  %s\n", kind, expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace sapp

#define SAPP_REQUIRE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sapp::assert_fail("precondition", #expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define SAPP_ASSERT(expr, msg) ((void)0)
#else
#define SAPP_ASSERT(expr, msg)                                        \
  do {                                                                \
    if (!(expr))                                                      \
      ::sapp::assert_fail("invariant", #expr, __FILE__, __LINE__, msg); \
  } while (0)
#endif
