// Persistent fork-join thread pool.
//
// Every parallel region in the library runs on this pool: the reduction
// schemes, the speculative-runtime substrate and the examples. Keeping the
// workers alive across invocations removes thread create/join cost from the
// measured phase times — the same property the paper's run-time library has.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sapp {

/// Half-open iteration range assigned to one worker.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
};

/// Contiguous block of a [0, n) iteration space owned by thread `tid` out of
/// `nthreads`, with remainder iterations spread over the leading threads.
[[nodiscard]] constexpr Range static_block(std::size_t n, unsigned tid,
                                           unsigned nthreads) {
  const std::size_t per = n / nthreads;
  const std::size_t rem = n % nthreads;
  const std::size_t lo =
      static_cast<std::size_t>(tid) * per + (tid < rem ? tid : rem);
  const std::size_t len = per + (tid < rem ? 1 : 0);
  return Range{lo, lo + len};
}

/// Fixed-size pool of worker threads executing fork-join parallel regions.
///
/// `run(f)` invokes `f(tid)` once on each of `size()` workers and returns
/// when all have finished. `parallel_for` partitions an index range
/// statically in blocks; `parallel_for_dynamic` hands out fixed-size chunks
/// from a shared counter (self-scheduling).
class ThreadPool {
 public:
  /// Create a pool with `nthreads` workers (>=1). The calling thread does
  /// not participate; it blocks in `run` until the workers finish.
  explicit ThreadPool(unsigned nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return nthreads_; }

  /// Execute `f(tid)` on every worker; blocks until all complete.
  /// Exceptions escaping `f` terminate (parallel regions must not throw,
  /// matching the no-throw discipline of the schemes).
  void run(const std::function<void(unsigned)>& f);

  /// Statically blocked parallel loop over [0, n):
  /// each worker receives one contiguous `Range`.
  void parallel_for(std::size_t n,
                    const std::function<void(unsigned, Range)>& body);

  /// Dynamically scheduled parallel loop over [0, n) with chunks of
  /// `chunk` iterations claimed from a shared counter.
  void parallel_for_dynamic(std::size_t n, std::size_t chunk,
                            const std::function<void(unsigned, Range)>& body);

 private:
  void worker_main(unsigned tid);

  unsigned nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
};

}  // namespace sapp
