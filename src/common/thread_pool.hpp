// Persistent low-overhead fork-join thread pool.
//
// Every parallel region in the library runs on this pool: the reduction
// schemes, the speculative-runtime substrate and the examples. Keeping the
// workers alive across invocations removes thread create/join cost from the
// measured phase times — the same property the paper's run-time library has.
//
// The dispatch path is built for very small regions (the Init/Merge phases
// the paper's schemes try to shrink are often microseconds):
//   - the calling thread participates as worker 0, so a pool of P uses
//     exactly P hardware contexts and a pool of 1 never synchronizes;
//   - `run`/`parallel_for` are templates that erase the body to one raw
//     function pointer + context pointer — no std::function, no heap
//     allocation, no virtual call per region;
//   - helper threads wait with a bounded spin (cpu_relax) before falling
//     back to a futex-backed std::atomic wait, so back-to-back regions
//     never pay a sleep/wake round trip;
//   - fork/join state lives on dedicated cache lines (alignas(kCacheLine))
//     so the epoch broadcast, the join counter and the dynamic-scheduling
//     cursor never false-share;
//   - `parallel_for_dynamic` claims chunks from that padded atomic cursor
//     instead of taking a lock.
// The `overhead` experiment (src/repro/exp_overhead.cpp) measures this
// design against the previous mutex+condvar+std::function pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/aligned.hpp"

namespace sapp {

/// Half-open iteration range assigned to one worker.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
};

/// Contiguous block of a [0, n) iteration space owned by thread `tid` out of
/// `nthreads`, with remainder iterations spread over the leading threads.
///
/// Edge cases are explicit: `nthreads == 0` (or `tid >= nthreads`) yields an
/// empty range, and when `n < nthreads` the first `n` threads receive one
/// iteration each while the rest receive empty ranges — so the union over
/// tids always covers [0, n) exactly once.
[[nodiscard]] constexpr Range static_block(std::size_t n, unsigned tid,
                                           unsigned nthreads) {
  if (nthreads == 0 || tid >= nthreads) return Range{n, n};
  const std::size_t per = n / nthreads;
  const std::size_t rem = n % nthreads;
  const std::size_t lo =
      static_cast<std::size_t>(tid) * per + (tid < rem ? tid : rem);
  const std::size_t len = per + (tid < rem ? 1 : 0);
  return Range{lo, lo + len};
}

/// Fixed-size fork-join pool of `size()` workers, one of which is the
/// calling thread.
///
/// `run(f)` invokes `f(tid)` once for each tid in [0, size()) and returns
/// when all have finished; tid 0 always executes on the calling thread.
/// `parallel_for` partitions an index range statically in blocks;
/// `parallel_for_dynamic` hands out fixed-size chunks from a shared padded
/// counter (self-scheduling).
///
/// Regions must be dispatched from one thread at a time (the owner of the
/// fork-join structure), must not throw, and must not recursively dispatch
/// onto the same pool — the same discipline the previous condvar pool had.
class ThreadPool {
 public:
  /// Create a pool with `nthreads` workers (>=1). `nthreads - 1` helper
  /// threads are spawned; the calling thread is worker 0 of every region.
  explicit ThreadPool(unsigned nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return nthreads_; }

  /// Execute `f(tid)` once per worker; blocks until all complete. The body
  /// is captured by reference for the duration of the region only — no
  /// copy, no allocation. Exceptions escaping `f` terminate (parallel
  /// regions must not throw, matching the no-throw discipline of the
  /// schemes).
  template <typename F>
  void run(F&& f) {
    using Fn = std::remove_reference_t<F>;
    dispatch(
        [](void* ctx, unsigned tid) { (*static_cast<Fn*>(ctx))(tid); },
        const_cast<void*>(static_cast<const void*>(std::addressof(f))));
  }

  /// Statically blocked parallel loop over [0, n):
  /// each worker receives one contiguous `Range` (empty ranges skipped).
  template <typename F>
  void parallel_for(std::size_t n, F&& body) {
    run([&](unsigned tid) {
      const Range r = static_block(n, tid, nthreads_);
      if (!r.empty()) body(tid, r);
    });
  }

  /// Dynamically scheduled parallel loop over [0, n) with chunks of
  /// `chunk` iterations claimed from a padded shared counter.
  template <typename F>
  void parallel_for_dynamic(std::size_t n, std::size_t chunk, F&& body) {
    require_positive_chunk(chunk);
    cursor_.store(0, std::memory_order_relaxed);
    run([&](unsigned tid) {
      for (;;) {
        const std::size_t lo =
            cursor_.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= n) break;
        const std::size_t hi = lo + chunk < n ? lo + chunk : n;
        body(tid, Range{lo, hi});
      }
    });
  }

 private:
  using RawFn = void (*)(void* ctx, unsigned tid);

  /// Type-erased region dispatch: publish (fn, ctx), release the helpers,
  /// run worker 0 inline, then join. Defined in thread_pool.cpp.
  void dispatch(RawFn fn, void* ctx);
  void worker_main(unsigned tid);
  static void require_positive_chunk(std::size_t chunk);

  unsigned nthreads_;
  /// Spin budget before parking: full when every worker can own a
  /// hardware context, ~zero when the pool oversubscribes the machine
  /// (spinning would steal the quantum the other workers need).
  int spin_iters_ = 1;
  std::vector<std::thread> helpers_;  // nthreads_ - 1 threads, tids 1..P-1

  // Fork side. `fn_`/`ctx_` are plain: they are written by the dispatching
  // thread before the epoch release-store and read by helpers only after
  // an acquire-load observes the new epoch.
  RawFn fn_ = nullptr;
  void* ctx_ = nullptr;
  bool stop_ = false;
  alignas(kCacheLine) std::atomic<std::uint64_t> epoch_{0};
  /// Helpers currently parked in epoch_.wait (gates the futex wake).
  alignas(kCacheLine) std::atomic<unsigned> sleepers_{0};

  // Join side.
  alignas(kCacheLine) std::atomic<unsigned> remaining_{0};
  /// Caller parked in remaining_.wait (gates the helpers' futex wake).
  alignas(kCacheLine) std::atomic<bool> caller_waiting_{false};

  /// Self-scheduling cursor for parallel_for_dynamic, on its own line so
  /// chunk claims never contend with fork/join state.
  alignas(kCacheLine) std::atomic<std::size_t> cursor_{0};
};

}  // namespace sapp
