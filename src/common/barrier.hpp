// Centralized sense-reversing barrier.
//
// std::barrier carries completion-function machinery we do not need inside
// scheme inner phases; this spin/yield barrier has the fixed-participant
// semantics the reduction schemes want and is reusable across phases.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "common/assert.hpp"

namespace sapp {

/// Reusable barrier for a fixed set of `n` participants. `arrive_and_wait()`
/// blocks (spinning, then yielding) until all participants arrive; the
/// barrier immediately becomes reusable for the next phase.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t n) : total_(n) {
    SAPP_REQUIRE(n > 0, "barrier needs at least one participant");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > 1024) {
          std::this_thread::yield();  // polite on oversubscribed hosts
          spins = 0;
        }
      }
    }
  }

 private:
  const std::size_t total_;
  std::atomic<std::size_t> count_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace sapp
