// Summary statistics used throughout the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace sapp {

/// Arithmetic mean of a sample; 0 for an empty span.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
inline double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

/// Harmonic mean — the paper reports average speedups this way ("since
/// there is a significant variation in speedup figures across applications,
/// we report average results using the harmonic mean").
inline double harmonic_mean(std::span<const double> xs) {
  SAPP_REQUIRE(!xs.empty(), "harmonic mean of empty sample");
  double acc = 0.0;
  for (double x : xs) {
    SAPP_REQUIRE(x > 0.0, "harmonic mean requires positive values");
    acc += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / acc;
}

/// Median (copies; fine for harness-sized samples).
inline double median(std::span<const double> xs) {
  SAPP_REQUIRE(!xs.empty(), "median of empty sample");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Minimum of a non-empty sample.
inline double min_of(std::span<const double> xs) {
  SAPP_REQUIRE(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

/// Speedup of a parallel time against a sequential reference.
inline double speedup(double seq_time, double par_time) {
  SAPP_REQUIRE(par_time > 0.0, "parallel time must be positive");
  return seq_time / par_time;
}

}  // namespace sapp
