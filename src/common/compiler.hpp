// Compiler hints used by the hot kernels.
//
// The scheme inner loops walk several arrays (row pointers, indices,
// values, private accumulators) that never alias; telling the compiler so
// unlocks unrolling and vectorization it must otherwise forgo. Kept as a
// macro because `restrict` is not standard C++ and the spelling differs
// per compiler.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define SAPP_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define SAPP_RESTRICT __restrict
#else
#define SAPP_RESTRICT
#endif

namespace sapp {

/// Pause/yield hint for bounded spin loops: keeps the spinning hardware
/// thread from starving its sibling and lowers exit latency from the spin.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  // No architectural pause available; a compiler barrier at least forces
  // the re-load in the spin condition.
  asm volatile("" ::: "memory");
#endif
}

}  // namespace sapp
