// Deliberate corruption hooks — the test layer that proves the checker's
// detection bound empirically (SpiderMonkey's reduce-bail test does the
// same for mid-reduction bailout: break the machinery on purpose, then
// demand the recovery path produces the right answer).
//
// An armed injector corrupts exactly `shots` values (default one) at one
// of three sites:
//   * kSchemeCombine   — a merged private-buffer combine, i.e. one element
//                        of the output array after a Scheme::execute;
//   * kSpecCommit      — one speculative block's pending write/reduction
//                        before R-LRPD validation commits it;
//   * kRestoredDecision— the combine of an invocation running under a
//                        warm-started (evicted-then-restored) cached
//                        decision.
// The corruption `v → v + (|v| + 1)` moves any finite value by at least 1,
// far outside every legal floating-point reassociation tolerance, so a
// sampled corrupted element is always detected. Thread-safe; every event
// is recorded so experiments can compute the exact analytical detection
// probability for the element that was actually hit.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace sapp {

enum class FaultSite {
  kSchemeCombine,
  kSpecCommit,
  kRestoredDecision,
};

[[nodiscard]] constexpr std::string_view to_string(FaultSite s) {
  switch (s) {
    case FaultSite::kSchemeCombine: return "scheme_combine";
    case FaultSite::kSpecCommit: return "spec_commit";
    case FaultSite::kRestoredDecision: return "restored_decision";
  }
  return "?";
}

class FaultInjector {
 public:
  struct Event {
    FaultSite site{};
    std::uint64_t element = 0;  ///< index corrupted (array slot or element id)
    double original = 0.0;
    double corrupted = 0.0;
  };

  /// Arm for `shots` corruptions at `site`; victim selection is driven by
  /// `seed`. Re-arming replaces the previous configuration but keeps the
  /// event log.
  void arm(FaultSite site, std::uint64_t seed, int shots = 1);
  void disarm();

  /// Corrupt one uniformly chosen element of `data` if armed for `site`
  /// and shots remain. The recorded element is the index into `data`.
  /// Returns true when a corruption happened.
  bool corrupt_one(FaultSite site, std::span<double> data);

  /// Same, over indirect cells (`*cells[i]`); `elements[i]` is the element
  /// id recorded for the victim (the R-LRPD path hands pending map cells).
  bool corrupt_indirect(FaultSite site, std::span<double* const> cells,
                        std::span<const std::uint32_t> elements);

  [[nodiscard]] std::uint64_t injected() const;
  [[nodiscard]] std::vector<Event> events() const;

 private:
  bool take_shot(FaultSite site);
  void record(FaultSite site, std::uint64_t element, double before,
              double after);

  mutable std::mutex mu_;
  bool armed_ = false;
  FaultSite site_{};
  int shots_ = 0;
  Rng rng_{1};
  std::vector<Event> events_;
};

/// The corruption applied to a victim value: moves any finite v by ≥ 1.
[[nodiscard]] inline double corrupt_value(double v) { return v + (v < 0 ? -v : v) + 1.0; }

}  // namespace sapp
