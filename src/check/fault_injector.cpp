#include "check/fault_injector.hpp"

namespace sapp {

void FaultInjector::arm(FaultSite site, std::uint64_t seed, int shots) {
  std::scoped_lock lk(mu_);
  armed_ = shots > 0;
  site_ = site;
  shots_ = shots;
  rng_ = Rng(seed);
}

void FaultInjector::disarm() {
  std::scoped_lock lk(mu_);
  armed_ = false;
  shots_ = 0;
}

bool FaultInjector::take_shot(FaultSite site) {
  if (!armed_ || site != site_ || shots_ <= 0) return false;
  --shots_;
  if (shots_ == 0) armed_ = false;
  return true;
}

void FaultInjector::record(FaultSite site, std::uint64_t element,
                           double before, double after) {
  events_.push_back(Event{site, element, before, after});
}

bool FaultInjector::corrupt_one(FaultSite site, std::span<double> data) {
  std::scoped_lock lk(mu_);
  if (data.empty() || !take_shot(site)) return false;
  const auto i = rng_.below(data.size());
  const double before = data[i];
  data[i] = corrupt_value(before);
  record(site, i, before, data[i]);
  return true;
}

bool FaultInjector::corrupt_indirect(FaultSite site,
                                     std::span<double* const> cells,
                                     std::span<const std::uint32_t> elements) {
  std::scoped_lock lk(mu_);
  if (cells.empty() || !take_shot(site)) return false;
  const auto i = rng_.below(cells.size());
  const double before = *cells[i];
  *cells[i] = corrupt_value(before);
  record(site, elements[i], before, *cells[i]);
  return true;
}

std::uint64_t FaultInjector::injected() const {
  std::scoped_lock lk(mu_);
  return events_.size();
}

std::vector<FaultInjector::Event> FaultInjector::events() const {
  std::scoped_lock lk(mu_);
  return events_;
}

}  // namespace sapp
