#include "check/checker.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/timer.hpp"

namespace sapp {

namespace {

/// 2^40 fixed-point grid of the sum checksum. The quantization is exact
/// to half a grid step for any contribution with |c| < 2^22 (far above
/// every workload in the repository); larger magnitudes saturate, which
/// only ever widens the failure report, never crashes.
constexpr double kQuantScale = 0x1p40;
constexpr double kQuantInv = 0x1p-40;
constexpr double kQuantClamp = 0x1p62;

inline std::int64_t quantize(double v) {
  const double x = std::clamp(v * kQuantScale, -kQuantClamp, kQuantClamp);
  return std::llrint(x);
}

/// Finalizing 64-bit mixer (splitmix64 tail): the sampling predicate and
/// the checksum fold both need a hash whose low bits are uniform.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t element_hash(std::uint64_t seed, std::uint64_t element) {
  return mix64(seed ^ (element + 1) * 0x9E3779B97F4A7C15ull);
}

inline double combine_witness(CheckOp op, double a, double b) {
  return op == CheckOp::kMin ? std::min(a, b) : std::max(a, b);
}

/// threshold = rate·2^64, computed in double; rate < 1 keeps it in range.
/// Hoisted out of the per-block loops: ldexp is a libm call, and paying
/// it per membership query dominated the whole selection pass.
inline std::uint64_t sample_threshold(double rate) {
  return static_cast<std::uint64_t>(std::ldexp(rate, 64));
}

/// int64 → double is one hardware convert; the generic __int128 path is a
/// libgcc call. Every in-range value converts identically either way, and
/// slot sums leave the int64 range only under deliberate saturation abuse.
inline double i128_to_double(__int128 v) {
  if (v >= static_cast<__int128>(std::numeric_limits<std::int64_t>::min()) &&
      v <= static_cast<__int128>(std::numeric_limits<std::int64_t>::max()))
    return static_cast<double>(static_cast<std::int64_t>(v));
  return static_cast<double>(v);
}

/// Saturating add of non-negative magnitudes — commutative and
/// associative (the sum is monotone, so any overflow pins every
/// association at the ceiling), which keeps sharded merges exact.
inline std::uint64_t sat_add_u64(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s < a ? std::numeric_limits<std::uint64_t>::max() : s;
}

/// Content fingerprint over three 64-index windows of the reference
/// stream, part of the sampled-positions cache key: a stale cache hit
/// would need a pattern reallocated at the same addresses, with the same
/// sizes, matching all three windows.
std::uint64_t pattern_fingerprint(const ReductionInput& in) {
  const auto& idx = in.pattern.refs.indices();
  const std::size_t n = idx.size();
  std::uint64_t h = 0x9E3779B97F4A7C15ull * (n + 1);
  const std::size_t starts[3] = {0, n / 2, n > 64 ? n - 64 : 0};
  for (const std::size_t s : starts)
    for (std::size_t k = s; k < std::min(n, s + 64); ++k)
      h = mix64(h ^ (h << 1) ^ idx[k]);
  return h;
}

}  // namespace

bool ReductionChecker::slot_sampled(std::uint64_t seed, double rate,
                                    std::uint64_t element) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  return element_hash(seed, element >> kBlockShift) < sample_threshold(rate);
}

std::size_t ReductionChecker::count_sampled(std::uint64_t seed, double rate,
                                            std::size_t dim) {
  if (rate >= 1.0) return dim;
  if (rate <= 0.0) return 0;
  const std::uint64_t threshold = sample_threshold(rate);
  const std::size_t nblocks = (dim + kBlock - 1) >> kBlockShift;
  std::size_t n = 0;
  for (std::size_t b = 0; b < nblocks; ++b)
    if (element_hash(seed, b) < threshold)
      n += std::min(kBlock, dim - (b << kBlockShift));
  return n;
}

ReductionChecker::ReductionChecker(CheckerOptions opt, CheckOp op)
    : opt_(opt), op_(op) {}

namespace {

/// Shared accumulate step of every fold variant. First touch initializes
/// the (deliberately uninitialized) accumulators; the count is the guard.
inline void accumulate_slot(CheckOp op, std::uint32_t slot, double c,
                            std::span<std::uint32_t> counts,
                            std::span<__int128> qsum,
                            std::span<std::uint64_t> qabs,
                            std::span<double> witness) {
  const std::uint32_t seen = counts[slot]++;
  if (op == CheckOp::kSum) {
    const std::int64_t q = quantize(c);
    const std::uint64_t a = q < 0 ? static_cast<std::uint64_t>(-(q + 1)) + 1
                                  : static_cast<std::uint64_t>(q);
    if (seen == 0) {
      qsum[slot] = q;
      qabs[slot] = a;
    } else {
      qsum[slot] += q;
      qabs[slot] = sat_add_u64(qabs[slot], a);
    }
  } else {
    witness[slot] = seen == 0 ? c : combine_witness(op, witness[slot], c);
  }
}

}  // namespace

void ReductionChecker::fold_serial(const ReductionInput& in,
                                   std::size_t iter_begin,
                                   std::size_t iter_end,
                                   std::span<std::uint32_t> counts,
                                   std::span<__int128> qsum,
                                   std::span<std::uint64_t> qabs,
                                   std::span<double> witness,
                                   std::span<const double> scale) const {
  const auto& refs = in.pattern.refs;
  const double* vals = in.values.data();
  const auto& ptr = refs.row_ptr();
  const std::uint32_t* idx = refs.indices().data();
  for (std::size_t i = iter_begin; i < iter_end; ++i) {
    const double s = scale[i & 1023];
    for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
      const std::uint32_t e = idx[j];
      const std::uint32_t base = block_base_[e >> kBlockShift];
      if (base == kUnsampled) continue;
      const std::uint32_t slot =
          base + (e & static_cast<std::uint32_t>(kBlock - 1));
      accumulate_slot(op_, slot, vals[j] * s, counts, qsum, qabs, witness);
    }
  }
}

void ReductionChecker::fold_record(const ReductionInput& in,
                                   std::span<std::uint32_t> counts,
                                   std::span<__int128> qsum,
                                   std::span<std::uint64_t> qabs,
                                   std::span<double> witness,
                                   std::span<const double> scale) {
  fold_pos_.clear();
  fold_iter_.clear();
  const auto& refs = in.pattern.refs;
  const double* vals = in.values.data();
  const auto& ptr = refs.row_ptr();
  const std::uint32_t* idx = refs.indices().data();
  const std::size_t iters = in.pattern.iterations();
  for (std::size_t i = 0; i < iters; ++i) {
    const double s = scale[i & 1023];
    for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
      const std::uint32_t e = idx[j];
      const std::uint32_t base = block_base_[e >> kBlockShift];
      if (base == kUnsampled) continue;
      fold_pos_.push_back(static_cast<std::uint32_t>(j));
      fold_iter_.push_back(static_cast<std::uint32_t>(i));
      const std::uint32_t slot =
          base + (e & static_cast<std::uint32_t>(kBlock - 1));
      accumulate_slot(op_, slot, vals[j] * s, counts, qsum, qabs, witness);
    }
  }
}

void ReductionChecker::fold_replay(const ReductionInput& in,
                                   std::span<std::uint32_t> counts,
                                   std::span<__int128> qsum,
                                   std::span<std::uint64_t> qabs,
                                   std::span<double> witness,
                                   std::span<const double> scale) const {
  const double* vals = in.values.data();
  const std::uint32_t* idx = in.pattern.refs.indices().data();
  for (std::size_t k = 0; k < fold_pos_.size(); ++k) {
    const std::uint32_t j = fold_pos_[k];
    const std::uint32_t e = idx[j];
    const std::uint32_t slot = block_base_[e >> kBlockShift] +
                               (e & static_cast<std::uint32_t>(kBlock - 1));
    const double c = vals[j] * scale[fold_iter_[k] & 1023];
    accumulate_slot(op_, slot, c, counts, qsum, qabs, witness);
  }
}

void ReductionChecker::begin(const ReductionInput& in,
                             std::span<const double> out, ThreadPool* pool) {
  SAPP_REQUIRE(in.consistent(), "values/pattern size mismatch");
  SAPP_REQUIRE(out.size() == in.pattern.dim, "output size mismatch");
  Timer t;
  begun_ = true;
  const std::size_t dim = in.pattern.dim;

  // --- Select the sampled blocks and snapshot their pre-execution state.
  // One hash decides a whole 16-element block, so this pass is O(dim/16)
  // plus O(sampled) for the snapshot — the unsampled majority of the
  // output array is never touched.
  const std::size_t nblocks = (dim + kBlock - 1) >> kBlockShift;
  block_base_.assign(nblocks, kUnsampled);
  elements_.clear();
  before_.clear();
  const double rate = opt_.sample_rate;
  const bool all = rate >= 1.0;
  const bool none = !all && rate <= 0.0;
  const std::uint64_t threshold = all || none ? 0 : sample_threshold(rate);
  elements_.reserve(
      all ? dim
          : static_cast<std::size_t>(static_cast<double>(dim) *
                                     std::min(1.0, rate * 1.2)) +
                kBlock);
  for (std::size_t b = 0; b < nblocks && !none; ++b) {
    if (!all && element_hash(opt_.seed, b) >= threshold) continue;
    block_base_[b] = static_cast<std::uint32_t>(elements_.size());
    const std::size_t e0 = b << kBlockShift;
    const std::size_t e1 = std::min(dim, e0 + kBlock);
    before_.insert(before_.end(), out.begin() + e0, out.begin() + e1);
    for (std::size_t e = e0; e < e1; ++e)
      elements_.push_back(static_cast<std::uint32_t>(e));
  }
  const std::size_t n = elements_.size();
  counts_.assign(n, 0);
  if (n > accum_cap_) {
    // Allocated for overwrite: slots are first-touch initialized in the
    // fold, so untouched slots never fault their accumulator pages.
    qsum_ = std::make_unique_for_overwrite<__int128[]>(n);
    qabs_ = std::make_unique_for_overwrite<std::uint64_t[]>(n);
    witness_ = std::make_unique_for_overwrite<double[]>(n);
    accum_cap_ = n;
  }

  // --- Recompute contributions from the input stream. iteration_scale
  // depends only on iter % 1024, so one 1024-entry table replaces the
  // per-iteration flops chain (the scheme still pays it; the checker does
  // not — this is what keeps the overhead a small fraction of loop time).
  // The table itself is cached across begins: the flops chain per entry
  // is expensive for device-model workloads, and body_flops rarely moves.
  if (scale_.size() != 1024 || scale_flops_ != in.pattern.body_flops) {
    scale_.resize(1024);
    for (std::size_t k = 0; k < scale_.size(); ++k)
      scale_[k] = iteration_scale(k, in.pattern.body_flops);
    scale_flops_ = in.pattern.body_flops;
  }
  const std::span<const double> scale(scale_);

  const std::size_t iters = in.pattern.iterations();
  const std::size_t refs_total = in.pattern.refs.indices().size();
  const std::span<std::uint32_t> counts(counts_);
  const std::span<__int128> qsum(qsum_.get(), n);
  const std::span<std::uint64_t> qabs(qabs_.get(), n);
  const std::span<double> witness(witness_.get(), n);
  const bool parallel =
      pool != nullptr && pool->size() > 1 && iters >= 4096 && n > 0;
  if (!parallel) {
    // The sampled-positions cache pays off only for a partial sample on
    // a pattern this checker has folded before (the steady state of a
    // serving site re-submitting its loop); anything else is a plain scan.
    const bool cacheable =
        !all && !none && n > 0 &&
        refs_total <= std::numeric_limits<std::uint32_t>::max() &&
        iters <= std::numeric_limits<std::uint32_t>::max();
    if (!cacheable) {
      fold_serial(in, 0, iters, counts, qsum, qabs, witness, scale);
    } else {
      FoldKey key;
      key.idx = in.pattern.refs.indices().data();
      key.row_ptr = in.pattern.refs.row_ptr().data();
      key.dim = dim;
      key.iters = iters;
      key.refs = refs_total;
      key.seed = opt_.seed;
      key.rate = rate;
      key.fingerprint = pattern_fingerprint(in);
      if (fold_cache_valid_ && key == fold_key_) {
        fold_replay(in, counts, qsum, qabs, witness, scale);
      } else {
        fold_key_ = key;
        fold_record(in, counts, qsum, qabs, witness, scale);
        fold_cache_valid_ = true;
      }
    }
  } else {
    // Sharded pass: each worker folds its iteration block into private
    // accumulator arrays (first-touch initialized, like the serial pass);
    // the integer merge is exact (and the witness combine is the operator
    // itself), so the final state — and the checksum — is bitwise
    // identical to the serial pass.
    const unsigned P = pool->size();
    struct Shard {
      std::vector<std::uint32_t> counts;
      std::unique_ptr<__int128[]> qsum;
      std::unique_ptr<std::uint64_t[]> qabs;
      std::unique_ptr<double[]> witness;
      bool used = false;
    };
    std::vector<Shard> shard(P);
    const bool is_sum = op_ == CheckOp::kSum;
    ThreadPool& tp = *pool;
    auto* self = this;
    tp.run([&, self](unsigned tid) {
      const Range r = static_block(iters, tid, P);
      if (r.empty()) return;
      Shard& sh = shard[tid];
      sh.used = true;
      sh.counts.assign(n, 0);
      sh.qsum = std::make_unique_for_overwrite<__int128[]>(n);
      sh.qabs = std::make_unique_for_overwrite<std::uint64_t[]>(n);
      sh.witness = std::make_unique_for_overwrite<double[]>(n);
      self->fold_serial(in, r.begin, r.end, sh.counts,
                        {sh.qsum.get(), n}, {sh.qabs.get(), n},
                        {sh.witness.get(), n}, scale);
    });
    for (unsigned p = 0; p < P; ++p) {
      if (!shard[p].used) continue;
      for (std::size_t s = 0; s < n; ++s) {
        const std::uint32_t sc = shard[p].counts[s];
        if (sc == 0) continue;
        const bool first = counts_[s] == 0;
        counts_[s] += sc;
        if (is_sum) {
          qsum_[s] = first ? shard[p].qsum[s] : qsum_[s] + shard[p].qsum[s];
          qabs_[s] =
              first ? shard[p].qabs[s] : sat_add_u64(qabs_[s], shard[p].qabs[s]);
        } else {
          witness_[s] = first ? shard[p].witness[s]
                              : combine_witness(op_, witness_[s],
                                                shard[p].witness[s]);
        }
      }
    }
  }

  // --- Order-independent mod-2^64 fold over the per-slot integer state.
  // Slots that received no contribution are skipped: their state is a
  // constant, so folding them would only pad the checksum with hash work
  // (on sparse patterns most sampled slots are untouched). One mix64 per
  // touched slot; element and accumulator enter through distinct odd
  // multipliers so each diffuses independently.
  const std::uint64_t cs_seed = opt_.seed ^ 0xC0DEull;
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (counts_[s] == 0) continue;
    const std::uint64_t item =
        op_ == CheckOp::kSum
            ? static_cast<std::uint64_t>(static_cast<unsigned __int128>(qsum_[s]))
            : std::bit_cast<std::uint64_t>(witness_[s]);
    sum += mix64(cs_seed ^
                 (elements_[s] + 1) * 0x9E3779B97F4A7C15ull ^
                 item * 0xFF51AFD7ED558CCDull) +
           counts_[s];
  }
  checksum_ = sum;
  begin_s_ = t.seconds();
}

CheckReport ReductionChecker::verify(std::span<const double> out) const {
  SAPP_REQUIRE(begun_, "verify before begin");
  Timer t;
  CheckReport rep;
  rep.slots_sampled = elements_.size();
  rep.input_checksum = checksum_;
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  constexpr double kTiny = std::numeric_limits<double>::denorm_min();

  for (std::size_t s = 0; s < elements_.size(); ++s) {
    const std::uint32_t count = counts_[s];
    const double before = before_[s];
    const double after = out[elements_[s]];
    // Fast pass-path: an untouched slot whose value is unchanged needs no
    // tolerance math — on sparse patterns that is most sampled slots.
    if (count == 0 && after == before) continue;
    rep.contributions += count;
    bool ok = true;
    if (op_ == CheckOp::kSum) {
      // expected = before + Σc on the 2^-40 grid. The tolerance covers
      //   (a) the scheme's legal reassociation of before and n
      //       contributions: ≤ (4+n)·eps·(|before| + Σ|c|) — the same
      //       bound the differential test suite uses;
      //   (b) the checker's quantization: ≤ n·2^-41 plus one rounding of
      //       each conversion.
      // Both padded ×2; derivation in docs/checking.md.
      // count == 0 here means the slot was corrupted without receiving a
      // contribution; its accumulators were never initialized, so the
      // expected value is the snapshot alone.
      const double qsumd =
          count == 0 ? 0.0 : i128_to_double(qsum_[s]) * kQuantInv;
      const double qabsd =
          count == 0 ? 0.0 : static_cast<double>(qabs_[s]) * kQuantInv;
      const double expected = before + qsumd;
      const double n = static_cast<double>(count);
      const double tol =
          opt_.tolerance_scale *
              ((8.0 + 2.0 * n) * kEps *
                   (qabsd + std::abs(before) + std::abs(after)) +
               (2.0 + n) * kQuantInv) +
          4 * kTiny;
      const double err = std::abs(after - expected);
      if (tol > 0.0)
        rep.max_rel_excess = std::max(rep.max_rel_excess, err / tol);
      ok = err <= tol;
    } else {
      // min/max are exact: out[e] must equal Op(before, witness) as a
      // value (== also accepts a ±0 sign flip, which reassociation of the
      // exact operator can legally produce).
      const double expected =
          count == 0 ? before : combine_witness(op_, before, witness_[s]);
      ok = after == expected;
    }
    if (!ok) {
      ++rep.slots_failed;
      if (rep.first_failed_slot == CheckReport::knpos)
        rep.first_failed_slot = elements_[s];
    }
  }
  rep.passed = rep.slots_failed == 0;
  rep.check_s = begin_s_ + t.seconds();
  return rep;
}

}  // namespace sapp
