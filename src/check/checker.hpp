// In-flight probabilistic reduction checking (ROADMAP item 5).
//
// A parallel reduction scheme is trusted to compute, for every element e,
//     out[e] = before[e] ⊕ c_1 ⊕ c_2 ⊕ ... ⊕ c_k
// over the contributions the access pattern assigns to e. The checker
// recomputes that combine *independently of the scheme* from the input
// stream — in a representation that is exact and order-independent — for a
// pseudo-randomly sampled subset of elements, and compares against the
// merged output after the scheme ran (Thrill's reduce_checker idea,
// SNIPPETS.md #3, adapted to in-place array reductions).
//
// Per-operator checksum:
//   * sum — each contribution is quantized to a 2^-40 fixed-point grid
//     (llrint(ldexp(v, 40))) and accumulated into a 128-bit integer. The
//     integer sum is exact and order-independent, so the checker state is
//     bitwise identical across thread counts and combine orders; the
//     mod-2^64 fold of the slot sums is the experiment's portable
//     "input checksum". The verdict compares out[e] against
//     before[e] + sum/2^40 under a tolerance that covers both the scheme's
//     legal reassociation error and the quantization error (derivation in
//     docs/checking.md).
//   * min/max — the operators are exact (the result is one of the
//     operands), so the checker keeps the extremal sampled contribution as
//     a witness and demands value equality with Op(before, witness).
//
// Sampling: element e is checked iff its 16-element block hashes under the
// rate threshold — mix64(seed, e/16) < rate·2^64 — a fixed pseudo-random
// subset, independent of the scheme and of thread count. Block granularity
// amortizes the membership hash (the selection pass is O(dim/16), not
// O(dim)) without changing the single-corruption bound: each element's
// membership is still a Bernoulli(rate) event, so one corrupted element is
// detected with probability exactly `rate`; only elements sharing a block
// are correlated (a corruption confined to k unsampled *blocks* escapes
// with probability (1-rate)^k). rate = 1 checks every element.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "reductions/access_pattern.hpp"

namespace sapp {

/// Reduction operator the checker validates against. The type-erased
/// scheme library runs double/sum; the templated schemes (and the tests)
/// also exercise min/max.
enum class CheckOp { kSum, kMin, kMax };

[[nodiscard]] constexpr std::string_view to_string(CheckOp op) {
  switch (op) {
    case CheckOp::kSum: return "sum";
    case CheckOp::kMin: return "min";
    case CheckOp::kMax: return "max";
  }
  return "?";
}

/// Checker knobs, embedded in AdaptiveOptions as `check`.
struct CheckerOptions {
  /// Off by default: the unchecked path is byte-identical to a build
  /// without the checker (no snapshot, no sampling pass).
  bool enabled = false;
  /// Fraction of elements sampled. Detection probability for one corrupted
  /// element; overhead scales with it.
  double sample_rate = 0.25;
  /// Seed of the element-sampling hash. Fixed by default so runs are
  /// reproducible; serving deployments may rotate it per process.
  std::uint64_t seed = 0x5EEDC0DEDC0FFEEull;
  /// Multiplier on the sum-tolerance (1.0 = the analytical bound used by
  /// the differential test suite; raise only to diagnose false positives).
  double tolerance_scale = 1.0;
};

/// Outcome of one begin()/verify() cycle.
struct CheckReport {
  static constexpr std::size_t knpos = std::numeric_limits<std::size_t>::max();

  bool passed = true;
  std::size_t slots_sampled = 0;   ///< elements under observation
  std::size_t slots_failed = 0;    ///< elements whose combine was wrong
  std::size_t contributions = 0;   ///< sampled contributions folded in
  std::size_t first_failed_slot = knpos;  ///< element index of first failure
  double max_rel_excess = 0.0;  ///< worst error/tolerance ratio seen (sum op)
  std::uint64_t input_checksum = 0;  ///< order-independent mod-2^64 fold
  double check_s = 0.0;              ///< wall time spent checking
};

/// One-shot checker for a single scheme execution: snapshot + input pass
/// before the scheme runs, verdict after.
class ReductionChecker {
 public:
  explicit ReductionChecker(CheckerOptions opt, CheckOp op = CheckOp::kSum);

  /// Re-arm a checker for a new begin()/verify() cycle with different
  /// options, keeping the allocated buffers. Lets long-lived callers
  /// (Scheme::execute_checked keeps one checker per thread) amortize the
  /// buffer setup across invocations instead of re-faulting pages each
  /// call.
  void configure(CheckerOptions opt, CheckOp op = CheckOp::kSum) {
    opt_ = opt;
    op_ = op;
    begun_ = false;
    checksum_ = 0;
  }

  /// Capture the pre-execution output snapshot for the sampled elements
  /// and fold the input stream into the checker state. `out` is the
  /// output array *before* the scheme runs. When `pool` is non-null and
  /// the pattern is large enough the input pass is sharded over the pool
  /// (the integer accumulation merges exactly, so the result is bitwise
  /// identical to the serial pass).
  void begin(const ReductionInput& in, std::span<const double> out,
             ThreadPool* pool = nullptr);

  /// Compare the post-execution output against the recomputed combines.
  [[nodiscard]] CheckReport verify(std::span<const double> out) const;

  /// Order-independent checksum of the sampled input stream (valid after
  /// begin; equal across thread counts and combine orders by construction).
  [[nodiscard]] std::uint64_t input_checksum() const { return checksum_; }

  [[nodiscard]] std::size_t slots_sampled() const { return elements_.size(); }
  [[nodiscard]] double begin_seconds() const { return begin_s_; }

  /// The sampling predicate, exposed so tests and the fault-injection
  /// experiment can compute the analytical detection probability exactly:
  /// a single corruption of element e is detected iff slot_sampled(...).
  [[nodiscard]] static bool slot_sampled(std::uint64_t seed, double rate,
                                         std::uint64_t element);
  /// Number of sampled elements in [0, dim) — the exact per-input
  /// detection probability is count/dim for a uniformly placed corruption.
  [[nodiscard]] static std::size_t count_sampled(std::uint64_t seed,
                                                 double rate,
                                                 std::size_t dim);

 private:
  /// Sampling block: one membership hash covers 2^kBlockShift consecutive
  /// elements, and a sampled block's elements occupy consecutive slots.
  static constexpr unsigned kBlockShift = 4;
  static constexpr std::size_t kBlock = std::size_t{1} << kBlockShift;
  static constexpr std::uint32_t kUnsampled = 0xFFFFFFFFu;

  /// Per-sampled-element state, struct-of-arrays (the AoS layout cost a
  /// 64-byte write per slot and dominated the whole begin pass). The
  /// integer fields are exact under any association; `before_` is captured
  /// once, not accumulated. `qabs_` saturates at 2^64-1 (absolute sums
  /// past ~1.6e7 only widen the tolerance, never produce a false accept of
  /// a corrupted slot beyond it); saturating addition of non-negative
  /// values is commutative and associative, so shard merges stay exact.
  ///
  /// The accumulator arrays (qsum_/qabs_/witness_) are allocated without
  /// initialization and first-touch initialized under the count guard
  /// (count 0 → store, else combine): on sparse patterns most sampled
  /// slots receive no contribution, and zero-filling 28 bytes per slot
  /// was the largest single cost of begin() on bandwidth-bound hosts. No
  /// path reads a slot's accumulators while its count is zero.
  void fold_serial(const ReductionInput& in, std::size_t iter_begin,
                   std::size_t iter_end, std::span<std::uint32_t> counts,
                   std::span<__int128> qsum, std::span<std::uint64_t> qabs,
                   std::span<double> witness,
                   std::span<const double> scale) const;
  /// Full serial scan that also records the sampled reference positions
  /// into fold_pos_/fold_iter_ (cache fill).
  void fold_record(const ReductionInput& in, std::span<std::uint32_t> counts,
                   std::span<__int128> qsum, std::span<std::uint64_t> qabs,
                   std::span<double> witness, std::span<const double> scale);
  /// Replay of a recorded position list (cache hit); bitwise identical to
  /// the full scan by construction.
  void fold_replay(const ReductionInput& in, std::span<std::uint32_t> counts,
                   std::span<__int128> qsum, std::span<std::uint64_t> qabs,
                   std::span<double> witness,
                   std::span<const double> scale) const;

  /// Identity of an access pattern for the sampled-positions cache:
  /// buffer addresses and sizes plus a content fingerprint over three
  /// 64-index windows of the reference stream. A stale hit would need a
  /// reallocation at the same addresses with the same sizes and matching
  /// windows — the checker otherwise rescans, so mutated patterns only
  /// cost the cache, never the verdict.
  struct FoldKey {
    const void* idx = nullptr;
    const void* row_ptr = nullptr;
    std::size_t dim = 0;
    std::size_t iters = 0;
    std::size_t refs = 0;
    std::uint64_t seed = 0;
    double rate = 0.0;
    std::uint64_t fingerprint = 0;
    bool operator==(const FoldKey&) const = default;
  };

  CheckerOptions opt_;
  CheckOp op_;
  /// Per-block map: first slot index of the block's run (kUnsampled when
  /// the block is unobserved).
  std::vector<std::uint32_t> block_base_;
  std::vector<std::uint32_t> elements_;  ///< slot → element index
  std::vector<double> before_;           ///< out[e] before the scheme ran
  std::vector<std::uint32_t> counts_;    ///< contributions folded in
  std::unique_ptr<__int128[]> qsum_;        ///< sum: Σ llrint(c·2^40), exact
  std::unique_ptr<std::uint64_t[]> qabs_;   ///< sum: Σ|q|, saturating
  std::unique_ptr<double[]> witness_;       ///< min/max: extremal contribution
  std::size_t accum_cap_ = 0;  ///< allocated accumulator capacity (reused)
  /// iteration_scale depends only on iter % 1024 and body_flops; the
  /// table is rebuilt only when body_flops changes (the flops chain per
  /// entry is expensive for device-model workloads).
  std::vector<double> scale_;
  double scale_flops_ = -1.0;
  /// Sampled-positions cache: on a serial fold over a pattern already
  /// seen (same FoldKey), only the reference positions that hit sampled
  /// blocks are replayed — O(rate·refs) instead of O(refs), which is
  /// what makes steady-state checking cheap for a long-lived serving
  /// site that submits the same pattern repeatedly. The accumulation
  /// order equals the recording scan's order, so the resulting state is
  /// bitwise identical to a full scan.
  FoldKey fold_key_;
  bool fold_cache_valid_ = false;
  std::vector<std::uint32_t> fold_pos_;   ///< ref positions j, scan order
  std::vector<std::uint32_t> fold_iter_;  ///< iteration index per position
  std::uint64_t checksum_ = 0;
  double begin_s_ = 0.0;
  bool begun_ = false;
};

}  // namespace sapp
