// Inspector/executor wavefront parallelization (§3, ref [15]).
//
// For loops whose iterations have cross-iteration dependences, the
// inspector computes "wavefronts (sequences of mutually independent sets of
// iterations that can be executed in parallel)": iteration i's level is one
// more than the deepest level among the iterations it depends on (flow,
// anti and output dependences through the array under test). The executor
// then runs the levels in order, with all iterations of a level in
// parallel.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_pool.hpp"
#include "spec/lrpd.hpp"

namespace sapp {

/// Output of the wavefront inspector.
struct Wavefronts {
  /// level[i] = wavefront index of iteration i (0-based).
  std::vector<std::uint32_t> level;
  /// wavefront[l] = iterations in level l, in increasing order.
  std::vector<std::vector<std::uint32_t>> fronts;

  [[nodiscard]] std::size_t num_levels() const { return fronts.size(); }
  /// Average parallelism = iterations / levels.
  [[nodiscard]] double parallelism() const {
    return fronts.empty() ? 0.0
                          : static_cast<double>(level.size()) /
                                static_cast<double>(fronts.size());
  }
};

/// Sequential inspector over the access traces (O(total accesses)).
/// Reduction accesses are treated as commutative with each other but
/// ordered against plain reads/writes.
[[nodiscard]] Wavefronts compute_wavefronts(const SpeculativeLoop& loop);

/// Run `body(iter)` for every iteration, level by level; iterations within
/// one level execute concurrently on `pool`.
void execute_wavefronts(const Wavefronts& w, ThreadPool& pool,
                        const std::function<void(std::size_t)>& body);

}  // namespace sapp
