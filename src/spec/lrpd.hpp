// The LRPD test (§3, refs [16,17]) — speculative run-time loop
// parallelization with privatization and reduction validation.
//
// The loop is executed speculatively in parallel while shadow arrays track,
// per element of the array under test:
//   * whether it was read before any write in some iteration (exposed read),
//   * whether it was written in more than one iteration,
//   * whether it was only ever accessed as `x = x ⊕ e` (reduction-like).
// After the parallel phase, a validation pass decides whether the loop was
// fully parallel (possibly after privatization), a parallel reduction, or
// has genuine cross-iteration dependences (speculation failed → the caller
// re-executes sequentially from the checkpoint).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"

namespace sapp {

/// How one iteration touches one element of the shadowed array.
enum class Access : std::uint8_t {
  kRead,        ///< plain read
  kWrite,       ///< plain write (kills earlier values)
  kReduction,   ///< x = x ⊕ e update
};

/// One iteration's trace: the element/type pairs it performs, in order.
/// The test only needs the access trace, not the actual values.
struct IterationAccesses {
  std::vector<std::pair<std::uint32_t, Access>> ops;
};

/// A loop abstracted for speculation: per-iteration access traces over an
/// array of `dim` elements.
struct SpeculativeLoop {
  std::size_t dim = 0;
  std::vector<IterationAccesses> iterations;
};

/// Verdict of the LRPD test.
struct LrpdResult {
  bool fully_parallel = false;   ///< no dependences at all
  bool parallel_after_privatization = false;  ///< deps removable by privatization
  bool valid_reduction = false;  ///< all conflicting accesses are reductions
  /// The earliest iteration that is the *sink* of a genuine dependence
  /// (== iterations.size() when none). R-LRPD restarts from here.
  std::size_t first_dependence_sink = 0;

  [[nodiscard]] bool passed() const {
    return fully_parallel || parallel_after_privatization || valid_reduction;
  }
};

/// Shadow-array state for the marking phase. Exposed for tests.
struct ShadowFlags {
  // Per element: bit 0 = written, bit 1 = exposed read (read w/o earlier
  // write in the same iteration), bit 2 = written in >1 iteration,
  // bit 3 = non-reduction access seen, bit 4 = reduction access seen.
  std::vector<std::uint8_t> flags;
  std::vector<std::uint32_t> first_writer;  // iteration of first write
  std::vector<std::uint32_t> last_writer;
};

/// Run the marking + analysis phases of the LRPD test over `loop`,
/// executing the marking in parallel on `pool`. Deterministic: marking
/// uses per-thread shadows merged in element order.
[[nodiscard]] LrpdResult lrpd_test(const SpeculativeLoop& loop,
                                   ThreadPool& pool);

}  // namespace sapp
