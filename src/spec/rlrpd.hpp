// The Recursive LRPD test (§3, ref [5]) — speculative execution of
// *partially parallel* loops.
//
// "in any block-scheduled loop executed under the processor-wise LRPD test
//  with copy-in, the chunks of iterations that are less than or equal to
//  the source of the first detected dependence arc are always executed
//  correctly. Only the processors executing iterations larger or equal to
//  the earliest sink of any dependence arc need to re-execute their portion
//  of work. Thus only the remainder of the work needs to be re-executed."
//
// `rlrpd_execute` runs a loop with real values: each round block-schedules
// the remaining iterations over the pool, executes them speculatively
// against the committed array state with copy-in privatization and
// reduction recognition, validates cross-block flow dependences, commits
// the correct prefix of blocks, and recurses on the rest.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/checker.hpp"
#include "check/fault_injector.hpp"
#include "common/thread_pool.hpp"

namespace sapp {

/// Array access interface handed to a speculative loop body. The
/// implementation differs between sequential execution (direct) and
/// speculative execution (private copy-in buffers + dependence logging),
/// but the body code is identical — this is the multi-version code shape
/// the paper's compiler emits.
class SpecArray {
 public:
  virtual ~SpecArray() = default;
  [[nodiscard]] virtual double read(std::uint32_t e) = 0;
  virtual void write(std::uint32_t e, double v) = 0;
  /// Reduction update `data[e] += v` (recognized, so cross-block conflicts
  /// on reduction-only elements do not force re-execution).
  virtual void reduce_add(std::uint32_t e, double v) = 0;
};

/// Loop body: executes iteration `iter` against `arr`.
using SpecLoopBody = std::function<void(std::size_t iter, SpecArray& arr)>;

/// Execution statistics of one rlrpd_execute call.
struct RlrpdStats {
  unsigned rounds = 0;              ///< speculation rounds (1 = fully parallel)
  std::size_t committed = 0;        ///< iterations committed (== n on success)
  std::size_t reexecuted = 0;       ///< speculative iterations thrown away
  bool success = true;              ///< false only if max_rounds was hit
  std::size_t checked_blocks = 0;   ///< blocks shadow-verified (check.enabled)
  unsigned check_failures = 0;      ///< blocks rolled back on a failed check
};

struct RlrpdConfig {
  unsigned max_rounds = 0;  ///< 0 = unlimited (termination is guaranteed)
  /// In-flight commit checking: each block mirrors its pending writes and
  /// reductions for the sampled elements into a shadow ledger (identical
  /// arithmetic, so the comparison is exact); validation refuses to commit
  /// a block whose pending state disagrees with its shadow and rolls it
  /// back through the ordinary mis-speculation path (docs/checking.md).
  CheckerOptions check{};
  /// Test hook: corrupts one pending speculative value (FaultSite::
  /// kSpecCommit) between block execution and validation.
  FaultInjector* fault_injector = nullptr;
};

/// Execute `body` for iterations [0, n) against `data` with R-LRPD
/// speculation on `pool`. On return `data` holds the same values sequential
/// execution would produce (up to reassociation of reduce_add).
RlrpdStats rlrpd_execute(std::size_t n, const SpecLoopBody& body,
                         std::span<double> data, ThreadPool& pool,
                         const RlrpdConfig& cfg = {});

/// Sequential reference executor for the same body abstraction.
void sequential_execute(std::size_t n, const SpecLoopBody& body,
                        std::span<double> data);

}  // namespace sapp
