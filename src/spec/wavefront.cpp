#include "spec/wavefront.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sapp {

Wavefronts compute_wavefronts(const SpeculativeLoop& loop) {
  const std::size_t n = loop.iterations.size();
  const std::size_t dim = loop.dim;
  constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  Wavefronts w;
  w.level.assign(n, 0);

  // Per element: level of the last iteration that wrote it, the deepest
  // level among readers since that write, and the deepest level among
  // pending reduction updates (commutative among themselves).
  std::vector<std::uint32_t> writer_level(dim, kNone);
  std::vector<std::uint32_t> reader_level(dim, kNone);
  std::vector<std::uint32_t> red_level(dim, kNone);

  auto bump = [](std::uint32_t& slot, std::uint32_t lvl) {
    if (slot == kNone || lvl > slot) slot = lvl;
  };

  std::uint32_t max_level = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Pass 1: the level this iteration must run at.
    std::uint32_t lvl = 0;
    for (const auto& [e, kind] : loop.iterations[i].ops) {
      SAPP_ASSERT(e < dim, "element out of range");
      switch (kind) {
        case Access::kRead:  // flow dep on last writer and pending reductions
          if (writer_level[e] != kNone) lvl = std::max(lvl, writer_level[e] + 1);
          if (red_level[e] != kNone) lvl = std::max(lvl, red_level[e] + 1);
          break;
        case Access::kWrite:  // output dep on writer, anti on readers/reds
          if (writer_level[e] != kNone) lvl = std::max(lvl, writer_level[e] + 1);
          if (reader_level[e] != kNone) lvl = std::max(lvl, reader_level[e] + 1);
          if (red_level[e] != kNone) lvl = std::max(lvl, red_level[e] + 1);
          break;
        case Access::kReduction:  // ordered against plain accesses only
          if (writer_level[e] != kNone) lvl = std::max(lvl, writer_level[e] + 1);
          if (reader_level[e] != kNone) lvl = std::max(lvl, reader_level[e] + 1);
          break;
      }
    }
    w.level[i] = lvl;
    max_level = std::max(max_level, lvl);
    // Pass 2: update the element state with this iteration's accesses.
    for (const auto& [e, kind] : loop.iterations[i].ops) {
      switch (kind) {
        case Access::kRead:
          bump(reader_level[e], lvl);
          break;
        case Access::kWrite:
          writer_level[e] = lvl;
          reader_level[e] = kNone;
          red_level[e] = kNone;
          break;
        case Access::kReduction:
          bump(red_level[e], lvl);
          break;
      }
    }
  }

  w.fronts.assign(n == 0 ? 0 : max_level + 1, {});
  for (std::size_t i = 0; i < n; ++i)
    w.fronts[w.level[i]].push_back(static_cast<std::uint32_t>(i));
  return w;
}

void execute_wavefronts(const Wavefronts& w, ThreadPool& pool,
                        const std::function<void(std::size_t)>& body) {
  for (const auto& front : w.fronts) {
    pool.parallel_for(front.size(), [&](unsigned, Range rg) {
      for (std::size_t k = rg.begin; k < rg.end; ++k) body(front[k]);
    });
  }
}

}  // namespace sapp
