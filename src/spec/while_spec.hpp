// Speculative WHILE-loop parallelization (§3, ref [18]).
//
// "a technique for parallelizing while loops (do loops with an unknown
//  number of iterations and/or containing linked list traversals)".
//
// The traversal that discovers iteration states (e.g. walking a linked
// list) is inherently sequential but cheap; the per-iteration processing is
// expensive. The executor speculatively collects a batch of states by
// advancing the traversal past the point where the continuation condition
// might fail, processes the batch in parallel, and discards the
// speculatively processed iterations that turn out to lie beyond the loop
// exit.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.hpp"

namespace sapp {

/// Statistics of one speculative while-loop execution.
struct WhileSpecStats {
  std::size_t iterations = 0;  ///< genuine iterations processed
  std::size_t discarded = 0;   ///< speculative overrun thrown away
  unsigned batches = 0;
};

/// Speculatively parallel while-loop over states of type S.
///
///   S state = init;
///   while (cond(state)) { process(state); state = advance(state); }
///
/// `process` must be safe to call on states past the exit point (its result
/// is discarded) and must not mutate shared data that `cond`/`advance`
/// read — the usual legality condition for while-loop speculation.
template <typename S>
WhileSpecStats while_spec_execute(S init,
                                  const std::function<bool(const S&)>& cond,
                                  const std::function<S(const S&)>& advance,
                                  const std::function<void(const S&)>& process,
                                  std::size_t batch, ThreadPool& pool) {
  WhileSpecStats st;
  std::vector<S> states;
  states.reserve(batch);
  S cur = init;
  bool done = false;
  while (!done) {
    // Sequential, cheap: collect up to `batch` states speculatively,
    // evaluating the condition as we go.
    states.clear();
    while (states.size() < batch) {
      if (!cond(cur)) {
        done = true;
        break;
      }
      states.push_back(cur);
      cur = advance(cur);
    }
    if (states.empty()) break;
    ++st.batches;
    // Parallel, expensive: process the batch. If the exit was found inside
    // the batch we already trimmed it above, so nothing here is wasted; the
    // speculation cost shows up when `process` runs ahead of a condition
    // that depends on processing (handled by the caller choosing `cond`
    // conservatively). We still account for the last partial batch.
    pool.parallel_for(states.size(), [&](unsigned, Range rg) {
      for (std::size_t k = rg.begin; k < rg.end; ++k) process(states[k]);
    });
    st.iterations += states.size();
  }
  return st;
}

/// Variant where the continuation condition depends on processing results:
/// `process` returns false when the loop should stop. The batch is
/// processed in parallel; iterations after the first returning false are
/// speculative overrun and are counted as discarded (their side effects
/// must be confined to per-iteration state — the caller's legality
/// obligation).
template <typename S>
WhileSpecStats while_spec_execute_datadep(
    S init, const std::function<S(const S&)>& advance,
    const std::function<bool(const S&)>& process, std::size_t batch,
    ThreadPool& pool) {
  WhileSpecStats st;
  std::vector<S> states;
  std::vector<std::uint8_t> keep;
  S cur = init;
  for (;;) {
    states.clear();
    for (std::size_t k = 0; k < batch; ++k) {
      states.push_back(cur);
      cur = advance(cur);
    }
    keep.assign(states.size(), 1);
    ++st.batches;
    pool.parallel_for(states.size(), [&](unsigned, Range rg) {
      for (std::size_t k = rg.begin; k < rg.end; ++k)
        keep[k] = process(states[k]) ? 1 : 0;
    });
    // First failing iteration ends the loop; everything after it in the
    // batch was wasted speculation.
    for (std::size_t k = 0; k < keep.size(); ++k) {
      if (!keep[k]) {
        st.iterations += k + 1;
        st.discarded += keep.size() - k - 1;
        return st;
      }
    }
    st.iterations += states.size();
  }
}

}  // namespace sapp
