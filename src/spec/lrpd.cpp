#include "spec/lrpd.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/assert.hpp"

namespace sapp {

namespace {

constexpr std::uint32_t kNoIter = std::numeric_limits<std::uint32_t>::max();

// Per-element flags accumulated during marking.
enum : std::uint8_t {
  kFWritten = 1u << 0,        // plain write somewhere
  kFExposedRead = 1u << 1,    // read with no earlier write in its iteration
  kFReduction = 1u << 2,      // reduction access somewhere
  kFMultiIterWrite = 1u << 3, // written (or reduced) in >= 2 iterations
  kFMultiIterTouch = 1u << 4, // touched by >= 2 iterations
};

struct Shadow {
  std::vector<std::uint8_t> flags;
  std::vector<std::uint32_t> first_write;  // earliest iteration writing e
  std::vector<std::uint32_t> last_touch_iter;  // dedup within iteration
  std::vector<std::uint32_t> write_iter;       // earliest writer (plain or red)

  explicit Shadow(std::size_t dim)
      : flags(dim, 0),
        first_write(dim, kNoIter),
        last_touch_iter(dim, kNoIter),
        write_iter(dim, kNoIter) {}
};

}  // namespace

LrpdResult lrpd_test(const SpeculativeLoop& loop, ThreadPool& pool) {
  const std::size_t dim = loop.dim;
  const std::size_t n = loop.iterations.size();
  const unsigned P = pool.size();

  // ---- Marking phase (parallel, processor-wise): each thread marks its
  // block of iterations into a private shadow.
  std::vector<Shadow> shadows;
  shadows.reserve(P);
  for (unsigned t = 0; t < P; ++t) shadows.emplace_back(dim);

  pool.parallel_for(n, [&](unsigned tid, Range rg) {
    Shadow& sh = shadows[tid];
    // Written-in-current-iteration marker for exposed-read detection.
    std::vector<std::uint32_t> wrote_this_iter(dim, kNoIter);
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      const auto iter = static_cast<std::uint32_t>(i);
      for (const auto& [e, kind] : loop.iterations[i].ops) {
        SAPP_ASSERT(e < dim, "element out of range");
        // Multi-iteration touch tracking (dedup repeats inside i).
        if (sh.last_touch_iter[e] != iter) {
          if (sh.last_touch_iter[e] != kNoIter)
            sh.flags[e] |= kFMultiIterTouch;
          sh.last_touch_iter[e] = iter;
        }
        switch (kind) {
          case Access::kRead:
            if (wrote_this_iter[e] != iter) sh.flags[e] |= kFExposedRead;
            break;
          case Access::kWrite:
            sh.flags[e] |= kFWritten;
            wrote_this_iter[e] = iter;
            if (sh.write_iter[e] == kNoIter) {
              sh.write_iter[e] = iter;
            } else if (sh.write_iter[e] != iter) {
              sh.flags[e] |= kFMultiIterWrite;
            }
            if (sh.first_write[e] == kNoIter) sh.first_write[e] = iter;
            break;
          case Access::kReduction:
            sh.flags[e] |= kFReduction;
            if (sh.write_iter[e] == kNoIter) {
              sh.write_iter[e] = iter;
            } else if (sh.write_iter[e] != iter) {
              sh.flags[e] |= kFMultiIterWrite;
            }
            // For flow-dependence purposes a reduction update defines the
            // element: a later plain read of it is a genuine sink.
            if (sh.first_write[e] == kNoIter) sh.first_write[e] = iter;
            break;
        }
      }
    }
  });

  // ---- Merge phase (parallel over elements): fold the P shadows.
  Shadow merged(dim);
  pool.parallel_for(dim, [&](unsigned, Range rg) {
    for (std::size_t e = rg.begin; e < rg.end; ++e) {
      std::uint8_t f = 0;
      std::uint32_t fw = kNoIter;
      unsigned touching_threads = 0;
      unsigned writing_threads = 0;
      for (unsigned t = 0; t < P; ++t) {
        const Shadow& sh = shadows[t];
        f |= sh.flags[e];
        if (sh.first_write[e] != kNoIter)
          fw = std::min(fw, sh.first_write[e]);
        if (sh.last_touch_iter[e] != kNoIter) ++touching_threads;
        if (sh.write_iter[e] != kNoIter) ++writing_threads;
      }
      if (touching_threads > 1) f |= kFMultiIterTouch;
      if (writing_threads > 1) f |= kFMultiIterWrite;
      merged.flags[e] = f;
      merged.first_write[e] = fw;
    }
  });

  // ---- Analysis phase.
  // An element is a *conflict* when written/reduced in >=2 iterations, or
  // written in one and touched in another.
  // Conflicts are benign when the element is privatizable (no exposed read
  // anywhere) or reduction-only (no plain access at all).
  bool any_conflict = false;
  bool needs_privatization = false;
  bool needs_reduction = false;
  std::atomic<std::uint32_t> earliest_sink{
      static_cast<std::uint32_t>(n)};

  std::vector<std::uint8_t> genuine(dim, 0);
  for (std::size_t e = 0; e < dim; ++e) {
    const std::uint8_t f = merged.flags[e];
    const bool written = (f & (kFWritten | kFReduction)) != 0;
    const bool conflict = written && (f & kFMultiIterTouch) != 0;
    if (!conflict) continue;
    any_conflict = true;
    const bool reduction_only =
        (f & kFReduction) != 0 && (f & (kFWritten | kFExposedRead)) == 0;
    const bool privatizable = (f & kFExposedRead) == 0;
    if (reduction_only) {
      needs_reduction = true;
    } else if (privatizable) {
      needs_privatization = true;
    } else {
      genuine[e] = 1;  // cross-iteration flow dependence possible
    }
  }

  bool any_genuine = std::any_of(genuine.begin(), genuine.end(),
                                 [](std::uint8_t g) { return g != 0; });

  // ---- Sink pass: earliest iteration performing an exposed read of an
  // element first written by a strictly earlier iteration.
  if (any_genuine) {
    pool.parallel_for(n, [&](unsigned, Range rg) {
      std::vector<std::uint32_t> wrote_this_iter(dim, kNoIter);
      std::uint32_t local_sink = static_cast<std::uint32_t>(n);
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const auto iter = static_cast<std::uint32_t>(i);
        if (iter >= local_sink) break;
        for (const auto& [e, kind] : loop.iterations[i].ops) {
          if (kind == Access::kWrite) wrote_this_iter[e] = iter;
          if (!genuine[e]) continue;
          if (kind == Access::kRead && wrote_this_iter[e] != iter &&
              merged.first_write[e] < iter) {
            local_sink = iter;
            break;
          }
        }
      }
      std::uint32_t cur = earliest_sink.load(std::memory_order_relaxed);
      while (local_sink < cur &&
             !earliest_sink.compare_exchange_weak(cur, local_sink,
                                                  std::memory_order_relaxed)) {
      }
    });
  }

  LrpdResult r;
  if (!any_conflict) {
    r.fully_parallel = true;
    r.first_dependence_sink = n;
  } else if (!any_genuine) {
    r.parallel_after_privatization = needs_privatization;
    r.valid_reduction = needs_reduction;
    // A loop can need both; both flags set is fine (both tests passed).
    if (!needs_privatization && !needs_reduction) r.fully_parallel = true;
    r.first_dependence_sink = n;
  } else {
    r.first_dependence_sink = earliest_sink.load();
    // No flow-dependence sink found: the arcs on the flagged elements are
    // WAR only (reads precede every write), which copy-in privatization
    // with in-order commit removes. The loop passed.
    if (r.first_dependence_sink >= n) {
      r.parallel_after_privatization = true;
      r.valid_reduction = needs_reduction;
    }
  }
  return r;
}

}  // namespace sapp
