#include "spec/rlrpd.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sapp {

namespace {

/// Direct execution against the shared array.
class DirectArray final : public SpecArray {
 public:
  explicit DirectArray(std::span<double> data) : data_(data) {}
  double read(std::uint32_t e) override { return data_[e]; }
  void write(std::uint32_t e, double v) override { data_[e] = v; }
  void reduce_add(std::uint32_t e, double v) override { data_[e] += v; }

 private:
  std::span<double> data_;
};

/// Speculative execution of one block: copy-in reads from the committed
/// state, private write buffer, reduction accumulators, and the access
/// sets the validation phase needs.
class BlockArray final : public SpecArray {
 public:
  explicit BlockArray(std::span<const double> committed)
      : committed_(committed) {}

  double read(std::uint32_t e) override {
    if (auto it = written_.find(e); it != written_.end()) {
      // Value produced inside this block; accumulate pending reductions.
      return it->second;
    }
    exposed_reads_.insert(e);  // observed committed state -> potential sink
    double v = committed_[e];
    if (auto it = red_.find(e); it != red_.end()) v += it->second;
    return v;
  }

  void write(std::uint32_t e, double v) override {
    written_[e] = v;
    red_.erase(e);  // write kills pending accumulation
  }

  void reduce_add(std::uint32_t e, double v) override {
    if (auto it = written_.find(e); it != written_.end()) {
      it->second += v;  // local to the block, not a cross-block reduction
    } else {
      red_[e] += v;
    }
  }

  /// Elements whose committed value this block observed.
  [[nodiscard]] const std::unordered_set<std::uint32_t>& exposed_reads()
      const {
    return exposed_reads_;
  }
  /// Elements this block defines (writes) or accumulates into.
  [[nodiscard]] const std::unordered_map<std::uint32_t, double>& written()
      const {
    return written_;
  }
  [[nodiscard]] const std::unordered_map<std::uint32_t, double>& reduced()
      const {
    return red_;
  }

  /// Apply this block's effects to the shared state (called in block order
  /// for committed blocks only).
  void commit(std::span<double> data) const {
    for (const auto& [e, v] : written_) data[e] = v;
    for (const auto& [e, v] : red_) data[e] += v;
  }

 private:
  std::span<const double> committed_;
  std::unordered_map<std::uint32_t, double> written_;
  std::unordered_map<std::uint32_t, double> red_;
  std::unordered_set<std::uint32_t> exposed_reads_;
};

}  // namespace

void sequential_execute(std::size_t n, const SpecLoopBody& body,
                        std::span<double> data) {
  DirectArray arr(data);
  for (std::size_t i = 0; i < n; ++i) body(i, arr);
}

RlrpdStats rlrpd_execute(std::size_t n, const SpecLoopBody& body,
                         std::span<double> data, ThreadPool& pool,
                         const RlrpdConfig& cfg) {
  RlrpdStats stats;
  const unsigned P = pool.size();
  std::size_t start = 0;

  while (start < n) {
    if (cfg.max_rounds != 0 && stats.rounds >= cfg.max_rounds) {
      // Give up on speculation; finish sequentially (always correct).
      DirectArray arr(data);
      for (std::size_t i = start; i < n; ++i) body(i, arr);
      stats.committed = n;
      stats.success = false;
      return stats;
    }
    ++stats.rounds;

    const std::size_t remaining = n - start;
    const unsigned blocks = static_cast<unsigned>(
        std::min<std::size_t>(P, remaining));

    // --- Speculative parallel execution of the blocks.
    std::vector<BlockArray> arrs;
    arrs.reserve(blocks);
    for (unsigned b = 0; b < blocks; ++b)
      arrs.emplace_back(std::span<const double>(data.data(), data.size()));
    std::vector<Range> ranges(blocks);
    pool.run([&](unsigned tid) {
      if (tid >= blocks) return;
      const Range r = static_block(remaining, tid, blocks);
      ranges[tid] = Range{start + r.begin, start + r.end};
      for (std::size_t i = ranges[tid].begin; i < ranges[tid].end; ++i)
        body(i, arrs[tid]);
    });

    // --- Validation: earliest block whose exposed reads intersect the
    // writes/reductions of any earlier block in this round.
    std::unordered_set<std::uint32_t> defined;
    unsigned fail_block = blocks;
    for (unsigned b = 0; b < blocks; ++b) {
      if (b > 0) {
        bool conflict = false;
        for (std::uint32_t e : arrs[b].exposed_reads())
          if (defined.contains(e)) {
            conflict = true;
            break;
          }
        if (conflict) {
          fail_block = b;
          break;
        }
      }
      for (const auto& [e, v] : arrs[b].written()) {
        (void)v;
        defined.insert(e);
      }
      for (const auto& [e, v] : arrs[b].reduced()) {
        (void)v;
        defined.insert(e);
      }
    }

    // --- Commit the correct prefix, in block order.
    for (unsigned b = 0; b < fail_block; ++b) {
      arrs[b].commit(data);
      stats.committed += ranges[b].size();
    }
    if (fail_block == blocks) {
      start = n;
    } else {
      for (unsigned b = fail_block; b < blocks; ++b)
        stats.reexecuted += ranges[b].size();
      start = ranges[fail_block].begin;
    }
  }
  return stats;
}

}  // namespace sapp
