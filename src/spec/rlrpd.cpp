#include "spec/rlrpd.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sapp {

namespace {

/// Direct execution against the shared array.
class DirectArray final : public SpecArray {
 public:
  explicit DirectArray(std::span<double> data) : data_(data) {}
  double read(std::uint32_t e) override { return data_[e]; }
  void write(std::uint32_t e, double v) override { data_[e] = v; }
  void reduce_add(std::uint32_t e, double v) override { data_[e] += v; }

 private:
  std::span<double> data_;
};

/// Speculative execution of one block: copy-in reads from the committed
/// state, private write buffer, reduction accumulators, and the access
/// sets the validation phase needs.
class BlockArray final : public SpecArray {
 public:
  /// `sampled` (when non-null) marks the elements whose pending state is
  /// mirrored into a shadow ledger for the pre-commit check. The shadow
  /// repeats the primary updates in identical program order on the same
  /// types, so an uncorrupted block matches its shadow bitwise and the
  /// comparison needs no tolerance.
  BlockArray(std::span<const double> committed,
             const std::vector<std::uint8_t>* sampled)
      : committed_(committed), sampled_(sampled) {}

  double read(std::uint32_t e) override {
    if (auto it = written_.find(e); it != written_.end()) {
      // Value produced inside this block; accumulate pending reductions.
      return it->second;
    }
    exposed_reads_.insert(e);  // observed committed state -> potential sink
    double v = committed_[e];
    if (auto it = red_.find(e); it != red_.end()) v += it->second;
    return v;
  }

  void write(std::uint32_t e, double v) override {
    written_[e] = v;
    red_.erase(e);  // write kills pending accumulation
    if (watched(e)) {
      shadow_written_[e] = v;
      shadow_red_.erase(e);
    }
  }

  void reduce_add(std::uint32_t e, double v) override {
    if (auto it = written_.find(e); it != written_.end()) {
      it->second += v;  // local to the block, not a cross-block reduction
      if (watched(e)) shadow_written_[e] += v;
    } else {
      red_[e] += v;
      if (watched(e)) shadow_red_[e] += v;
    }
  }

  /// Pre-commit check: every watched pending value must agree with its
  /// shadow, in both directions (a corruption that moved or dropped an
  /// entry is caught by the count comparison).
  [[nodiscard]] bool shadow_matches() const {
    if (sampled_ == nullptr) return true;
    std::size_t watched_writes = 0;
    for (const auto& [e, v] : written_) {
      if (!watched(e)) continue;
      ++watched_writes;
      const auto it = shadow_written_.find(e);
      if (it == shadow_written_.end() || !(it->second == v)) return false;
    }
    if (watched_writes != shadow_written_.size()) return false;
    std::size_t watched_reds = 0;
    for (const auto& [e, v] : red_) {
      if (!watched(e)) continue;
      ++watched_reds;
      const auto it = shadow_red_.find(e);
      if (it == shadow_red_.end() || !(it->second == v)) return false;
    }
    return watched_reds == shadow_red_.size();
  }

  /// Expose the pending cells so the fault injector can corrupt one
  /// speculative value between execution and validation.
  void pending_cells(std::vector<double*>& cells,
                     std::vector<std::uint32_t>& elements) {
    for (auto& [e, v] : written_) {
      cells.push_back(&v);
      elements.push_back(e);
    }
    for (auto& [e, v] : red_) {
      cells.push_back(&v);
      elements.push_back(e);
    }
  }

  /// Elements whose committed value this block observed.
  [[nodiscard]] const std::unordered_set<std::uint32_t>& exposed_reads()
      const {
    return exposed_reads_;
  }
  /// Elements this block defines (writes) or accumulates into.
  [[nodiscard]] const std::unordered_map<std::uint32_t, double>& written()
      const {
    return written_;
  }
  [[nodiscard]] const std::unordered_map<std::uint32_t, double>& reduced()
      const {
    return red_;
  }

  /// Apply this block's effects to the shared state (called in block order
  /// for committed blocks only).
  void commit(std::span<double> data) const {
    for (const auto& [e, v] : written_) data[e] = v;
    for (const auto& [e, v] : red_) data[e] += v;
  }

 private:
  [[nodiscard]] bool watched(std::uint32_t e) const {
    return sampled_ != nullptr && (*sampled_)[e] != 0;
  }

  std::span<const double> committed_;
  const std::vector<std::uint8_t>* sampled_ = nullptr;
  std::unordered_map<std::uint32_t, double> written_;
  std::unordered_map<std::uint32_t, double> red_;
  std::unordered_map<std::uint32_t, double> shadow_written_;
  std::unordered_map<std::uint32_t, double> shadow_red_;
  std::unordered_set<std::uint32_t> exposed_reads_;
};

}  // namespace

void sequential_execute(std::size_t n, const SpecLoopBody& body,
                        std::span<double> data) {
  DirectArray arr(data);
  for (std::size_t i = 0; i < n; ++i) body(i, arr);
}

RlrpdStats rlrpd_execute(std::size_t n, const SpecLoopBody& body,
                         std::span<double> data, ThreadPool& pool,
                         const RlrpdConfig& cfg) {
  RlrpdStats stats;
  const unsigned P = pool.size();
  std::size_t start = 0;

  // Element-sampling bitmap of the in-flight commit check, fixed for the
  // whole execution: a corrupted pending value on a sampled element is
  // detected with certainty, on an unsampled one never — exactly the
  // checker's per-element detection bound.
  std::vector<std::uint8_t> sampled;
  const std::vector<std::uint8_t>* sampled_ptr = nullptr;
  if (cfg.check.enabled) {
    sampled.resize(data.size());
    for (std::size_t e = 0; e < data.size(); ++e)
      sampled[e] = ReductionChecker::slot_sampled(
                       cfg.check.seed, cfg.check.sample_rate, e)
                       ? 1
                       : 0;
    sampled_ptr = &sampled;
  }

  while (start < n) {
    if (cfg.max_rounds != 0 && stats.rounds >= cfg.max_rounds) {
      // Give up on speculation; finish sequentially (always correct).
      DirectArray arr(data);
      for (std::size_t i = start; i < n; ++i) body(i, arr);
      stats.committed = n;
      stats.success = false;
      return stats;
    }
    ++stats.rounds;

    const std::size_t remaining = n - start;
    const unsigned blocks = static_cast<unsigned>(
        std::min<std::size_t>(P, remaining));

    // --- Speculative parallel execution of the blocks.
    std::vector<BlockArray> arrs;
    arrs.reserve(blocks);
    for (unsigned b = 0; b < blocks; ++b)
      arrs.emplace_back(std::span<const double>(data.data(), data.size()),
                        sampled_ptr);
    std::vector<Range> ranges(blocks);
    pool.run([&](unsigned tid) {
      if (tid >= blocks) return;
      const Range r = static_block(remaining, tid, blocks);
      ranges[tid] = Range{start + r.begin, start + r.end};
      for (std::size_t i = ranges[tid].begin; i < ranges[tid].end; ++i)
        body(i, arrs[tid]);
    });

    // --- Fault injection (tests and sapp_repro checking only): corrupt
    // one pending speculative value before validation sees it.
    if (cfg.fault_injector != nullptr) {
      std::vector<double*> cells;
      std::vector<std::uint32_t> elements;
      for (unsigned b = 0; b < blocks; ++b)
        arrs[b].pending_cells(cells, elements);
      cfg.fault_injector->corrupt_indirect(FaultSite::kSpecCommit, cells,
                                           elements);
    }

    // --- Validation: earliest block whose pending state fails the shadow
    // check or whose exposed reads intersect the writes/reductions of any
    // earlier block in this round. A failed check re-uses the
    // mis-speculation machinery: the correct prefix commits, the corrupted
    // block (and everything after it) re-executes.
    std::unordered_set<std::uint32_t> defined;
    unsigned fail_block = blocks;
    for (unsigned b = 0; b < blocks; ++b) {
      if (sampled_ptr != nullptr) {
        ++stats.checked_blocks;
        if (!arrs[b].shadow_matches()) {
          ++stats.check_failures;
          fail_block = b;
          break;
        }
      }
      if (b > 0) {
        bool conflict = false;
        for (std::uint32_t e : arrs[b].exposed_reads())
          if (defined.contains(e)) {
            conflict = true;
            break;
          }
        if (conflict) {
          fail_block = b;
          break;
        }
      }
      for (const auto& [e, v] : arrs[b].written()) {
        (void)v;
        defined.insert(e);
      }
      for (const auto& [e, v] : arrs[b].reduced()) {
        (void)v;
        defined.insert(e);
      }
    }

    // --- Commit the correct prefix, in block order.
    for (unsigned b = 0; b < fail_block; ++b) {
      arrs[b].commit(data);
      stats.committed += ranges[b].size();
    }
    if (fail_block == blocks) {
      start = n;
    } else {
      for (unsigned b = fail_block; b < blocks; ++b)
        stats.reexecuted += ranges[b].size();
      start = ranges[fail_block].begin;
    }
  }
  return stats;
}

}  // namespace sapp
