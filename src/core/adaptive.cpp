#include "core/adaptive.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/timer.hpp"

namespace sapp {

AdaptiveReducer::AdaptiveReducer(ThreadPool& pool, MachineCoeffs coeffs,
                                 AdaptiveOptions opt)
    : pool_(pool),
      coeffs_(coeffs),
      opt_(opt),
      monitor_(opt.drift_threshold) {}

AdaptiveReducer::~AdaptiveReducer() = default;

SchemeKind AdaptiveReducer::current() const {
  SAPP_REQUIRE(scheme_ != nullptr, "no invocation yet");
  return scheme_->kind();
}

void AdaptiveReducer::warm_start(CachedDecision cached) {
  SAPP_REQUIRE(scheme_ == nullptr, "warm_start after the first invocation");
  warm_ = std::move(cached);
}

/// Shared post-(re)decision epilogue of the cold and warm adoption paths.
void AdaptiveReducer::reset_feedback(const PatternSignature& sig, bool warm) {
  monitor_.rebase(sig);
  overruns_ = 0;
  abandoned_.clear();
  warm_started_ = warm;
  if (!warm) invocations_base_ = 0;  // fresh evidence supersedes the cache
}

void AdaptiveReducer::characterize_and_decide(const AccessPattern& p) {
  stats_ = characterize(p, pool_.size(), opt_.characterize);
  decision_ = opt_.use_rule_decider
                  ? decide_rules(stats_, opt_.rules)
                  : decide_model(stats_, p.body_flops, coeffs_);
  // The rule decider can pick an inapplicable scheme only through a bug;
  // guard against selecting lw for an illegal loop either way.
  if (decision_.recommended == SchemeKind::kLocalWrite &&
      !p.iteration_replication_legal)
    decision_.recommended = SchemeKind::kSelective;
  adopt(decision_.recommended, p);
  ++recharacterizations_;
  reset_feedback(PatternSignature::of(p), /*warm=*/false);
}

void AdaptiveReducer::adopt(SchemeKind kind, const AccessPattern& p) {
  scheme_ = make_scheme(kind);
  plan_ = scheme_->plan(p, pool_.size());
}

SchemeResult AdaptiveReducer::execute_arbitrated(const ReductionInput& in,
                                                 std::span<double> out) {
  if (pool_mu_ == nullptr) return scheme_->execute(plan_.get(), in, pool_, out);
  std::scoped_lock lk(*pool_mu_);
  return scheme_->execute(plan_.get(), in, pool_, out);
}

SchemeResult AdaptiveReducer::invoke(const ReductionInput& in,
                                     std::span<double> out) {
  SAPP_REQUIRE(in.consistent(), "values/pattern size mismatch");
  SAPP_REQUIRE(out.size() == in.pattern.dim, "output size mismatch");
  ++invocations_;

  Timer inspect_timer;
  if (scheme_ == nullptr) {
    // Warm start: adopt the cached scheme when the first observed pattern
    // still matches the signature it was learned for; characterization and
    // the cost-model decision are skipped entirely. The cached prediction
    // (when recorded) keeps the mispredict feedback loop armed, and the
    // cached evidence/rationale carry forward into the next snapshot.
    const PatternSignature sig = PatternSignature::of(in.pattern);
    if (warm_.has_value() &&
        DecisionCache::matches(*warm_, sig, pool_.size(),
                               opt_.warm_match_tolerance) &&
        (warm_->scheme != SchemeKind::kLocalWrite ||
         in.pattern.iteration_replication_legal)) {
      adopt(warm_->scheme, in.pattern);
      decision_ = Decision{};
      decision_.recommended = warm_->scheme;
      decision_.rationale =
          warm_->rationale.empty()
              ? "warm start: adopted '" +
                    std::string(to_string(warm_->scheme)) +
                    "' from the decision cache"
              : warm_->rationale;
      if (warm_->predicted_total_s > 0.0) {
        CostPrediction cp;
        cp.scheme = warm_->scheme;
        cp.loop_s = warm_->predicted_total_s;  // total() == cached value
        decision_.predictions.push_back(cp);
      }
      invocations_base_ = warm_->invocations;
      reset_feedback(sig, /*warm=*/true);
    } else {
      characterize_and_decide(in.pattern);
    }
    warm_.reset();
  } else if (monitor_.observe(PatternSignature::of(in.pattern))) {
    characterize_and_decide(in.pattern);
  }
  const double adapt_s = inspect_timer.seconds();

  SchemeResult r = execute_arbitrated(in, out);
  r.inspect_s += adapt_s;

  // Feedback: compare measured against the model's prediction for the
  // selected scheme; persistent overruns promote the runner-up.
  double predicted = 0.0;
  for (const auto& cp : decision_.predictions)
    if (cp.scheme == scheme_->kind()) predicted = cp.total();
  if (predicted > 0.0 && r.total_s() > opt_.mispredict_ratio * predicted) {
    if (++overruns_ >= opt_.mispredict_patience) {
      // The model was wrong about this scheme here: blacklist it and move
      // to the best not-yet-tried alternative (no ping-pong).
      abandoned_.push_back(scheme_->kind());
      bool switched = false;
      for (const auto& cp : decision_.predictions) {
        const bool tried =
            std::find(abandoned_.begin(), abandoned_.end(), cp.scheme) !=
            abandoned_.end();
        if (!tried && cp.applicable) {
          adopt(cp.scheme, in.pattern);
          ++switches_;
          switched = true;
          break;
        }
      }
      // No runner-up left — every alternative was abandoned, or this was
      // a warm start whose cache carried only the one prediction. Fresh
      // evidence beats a stale decision: re-characterize and re-decide
      // (mispredict_patience throttles how often this can fire).
      if (!switched) characterize_and_decide(in.pattern);
      overruns_ = 0;
    }
  } else {
    overruns_ = 0;
  }
  return r;
}

}  // namespace sapp
