#include "core/adaptive.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/timer.hpp"

namespace sapp {

AdaptiveReducer::AdaptiveReducer(ThreadPool& pool, MachineCoeffs coeffs,
                                 AdaptiveOptions opt)
    : pool_(pool),
      coeffs_(coeffs),
      opt_(opt),
      monitor_(opt.drift_threshold) {}

AdaptiveReducer::~AdaptiveReducer() = default;

SchemeKind AdaptiveReducer::current() const {
  SAPP_REQUIRE(scheme_ != nullptr, "no invocation yet");
  return scheme_->kind();
}

void AdaptiveReducer::characterize_and_decide(const AccessPattern& p) {
  stats_ = characterize(p, pool_.size(), opt_.characterize);
  decision_ = opt_.use_rule_decider
                  ? decide_rules(stats_, opt_.rules)
                  : decide_model(stats_, p.body_flops, coeffs_);
  // The rule decider can pick an inapplicable scheme only through a bug;
  // guard against selecting lw for an illegal loop either way.
  if (decision_.recommended == SchemeKind::kLocalWrite &&
      !p.iteration_replication_legal)
    decision_.recommended = SchemeKind::kSelective;
  adopt(decision_.recommended, p);
  ++recharacterizations_;
  monitor_.rebase(PatternSignature::of(p));
  overruns_ = 0;
  abandoned_.clear();
}

void AdaptiveReducer::adopt(SchemeKind kind, const AccessPattern& p) {
  scheme_ = make_scheme(kind);
  plan_ = scheme_->plan(p, pool_.size());
}

SchemeResult AdaptiveReducer::invoke(const ReductionInput& in,
                                     std::span<double> out) {
  SAPP_REQUIRE(in.consistent(), "values/pattern size mismatch");
  SAPP_REQUIRE(out.size() == in.pattern.dim, "output size mismatch");
  ++invocations_;

  Timer inspect_timer;
  if (scheme_ == nullptr) {
    characterize_and_decide(in.pattern);
  } else if (monitor_.observe(PatternSignature::of(in.pattern))) {
    characterize_and_decide(in.pattern);
  }
  const double adapt_s = inspect_timer.seconds();

  SchemeResult r = scheme_->execute(plan_.get(), in, pool_, out);
  r.inspect_s += adapt_s;

  // Feedback: compare measured against the model's prediction for the
  // selected scheme; persistent overruns promote the runner-up.
  double predicted = 0.0;
  for (const auto& cp : decision_.predictions)
    if (cp.scheme == scheme_->kind()) predicted = cp.total();
  if (predicted > 0.0 && r.total_s() > opt_.mispredict_ratio * predicted) {
    if (++overruns_ >= opt_.mispredict_patience) {
      // The model was wrong about this scheme here: blacklist it and move
      // to the best not-yet-tried alternative (no ping-pong).
      abandoned_.push_back(scheme_->kind());
      for (const auto& cp : decision_.predictions) {
        const bool tried =
            std::find(abandoned_.begin(), abandoned_.end(), cp.scheme) !=
            abandoned_.end();
        if (!tried && cp.applicable) {
          adopt(cp.scheme, in.pattern);
          ++switches_;
          break;
        }
      }
      overruns_ = 0;
    }
  } else {
    overruns_ = 0;
  }
  return r;
}

}  // namespace sapp
