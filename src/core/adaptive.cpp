#include "core/adaptive.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/timer.hpp"

namespace sapp {

namespace {
/// The monitor's knobs live in AdaptiveOptions::monitor except the pattern
/// threshold, which predates them as AdaptiveOptions::drift_threshold.
PhaseMonitorOptions merged_monitor_options(const AdaptiveOptions& opt) {
  PhaseMonitorOptions mo = opt.monitor;
  mo.pattern_threshold = opt.drift_threshold;
  return mo;
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const auto mid = xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2);
  std::nth_element(xs.begin(), mid, xs.end());
  return *mid;
}
}  // namespace

AdaptiveReducer::AdaptiveReducer(ThreadPool& pool, MachineCoeffs coeffs,
                                 AdaptiveOptions opt)
    : pool_(pool),
      coeffs_(coeffs),
      opt_(opt),
      monitor_(merged_monitor_options(opt)) {}

AdaptiveReducer::~AdaptiveReducer() = default;

SchemeKind AdaptiveReducer::current() const {
  SAPP_REQUIRE(scheme_ != nullptr, "no invocation yet");
  return scheme_->kind();
}

void AdaptiveReducer::warm_start(CachedDecision cached) {
  SAPP_REQUIRE(scheme_ == nullptr, "warm_start after the first invocation");
  warm_ = std::move(cached);
}

/// Shared post-(re)decision epilogue of the cold and warm adoption paths.
void AdaptiveReducer::reset_feedback(const PatternSignature& sig, bool warm) {
  monitor_.rebase(sig);
  overruns_ = 0;
  abandoned_.clear();
  warm_started_ = warm;
  phase_history_.clear();  // the history describes the previous decision
  if (!warm) invocations_base_ = 0;  // fresh evidence supersedes the cache
}

void AdaptiveReducer::record_phase_time(double seconds) {
  if (!(seconds > 0.0)) return;
  if (phase_history_.size() >= DecisionCache::kMaxPhaseHistory)
    phase_history_.erase(phase_history_.begin());
  phase_history_.push_back(seconds);
}

void AdaptiveReducer::characterize_and_decide(const AccessPattern& p) {
  stats_ = characterize(p, pool_.size(), opt_.characterize);
  decision_ = opt_.use_rule_decider
                  ? decide_rules(stats_, opt_.rules)
                  : decide_model(stats_, p.body_flops, coeffs_);
  // The rule decider can pick an inapplicable scheme only through a bug;
  // guard against selecting lw for an illegal loop either way.
  if (decision_.recommended == SchemeKind::kLocalWrite &&
      !p.iteration_replication_legal)
    decision_.recommended = SchemeKind::kSelective;
  adopt(decision_.recommended, p);
  ++recharacterizations_;
  reset_feedback(PatternSignature::of(p), /*warm=*/false);
}

void AdaptiveReducer::adopt(SchemeKind kind, const AccessPattern& p) {
  scheme_ = make_scheme(kind);
  plan_ = scheme_->plan(p, pool_.size());
}

SchemeResult AdaptiveReducer::execute_arbitrated(const ReductionInput& in,
                                                 std::span<double> out) {
  if (pool_mu_ == nullptr) return execute_current(in, out);
  std::scoped_lock lk(*pool_mu_);
  return execute_current(in, out);
}

/// One scheme execution, checked when AdaptiveOptions::check asks for it.
/// On a failed check the output is rolled back to its pre-invocation
/// snapshot and recomputed on the trusted sequential path, so a detected
/// wrong combine is never shipped; the demotion happens in invoke().
SchemeResult AdaptiveReducer::execute_current(const ReductionInput& in,
                                              std::span<double> out) {
  if (!opt_.check.enabled)
    return scheme_->execute(plan_.get(), in, pool_, out);
  check_before_.assign(out.begin(), out.end());
  // A warm-started invocation is running an evicted-then-restored cached
  // decision — corruption there is the injector's third class.
  const FaultSite site = warm_started_ ? FaultSite::kRestoredDecision
                                       : FaultSite::kSchemeCombine;
  SchemeResult r =
      scheme_->execute_checked(plan_.get(), in, pool_, out, opt_.check,
                               &last_check_, opt_.fault_injector, site);
  ++checks_run_;
  if (!last_check_.passed) {
    ++check_failures_;
    last_check_failed_ = true;
    std::copy(check_before_.begin(), check_before_.end(), out.begin());
    Timer t;
    make_scheme(SchemeKind::kSeq)->execute(nullptr, in, pool_, out);
    r.check_s += t.seconds();
  }
  return r;
}

SchemeResult AdaptiveReducer::invoke(const ReductionInput& in,
                                     std::span<double> out) {
  SAPP_REQUIRE(in.consistent(), "values/pattern size mismatch");
  SAPP_REQUIRE(out.size() == in.pattern.dim, "output size mismatch");
  ++invocations_;

  Timer inspect_timer;
  if (scheme_ == nullptr) {
    // Warm start: adopt the cached scheme when the first observed pattern
    // still matches the signature it was learned for; characterization and
    // the cost-model decision are skipped entirely. The cached prediction
    // (when recorded) keeps the mispredict feedback loop armed, and the
    // cached evidence/rationale carry forward into the next snapshot.
    const PatternSignature sig = PatternSignature::of(in.pattern);
    if (warm_.has_value() &&
        DecisionCache::matches(*warm_, sig, pool_.size(),
                               opt_.warm_match_tolerance) &&
        (warm_->scheme != SchemeKind::kLocalWrite ||
         in.pattern.iteration_replication_legal)) {
      adopt(warm_->scheme, in.pattern);
      decision_ = Decision{};
      decision_.recommended = warm_->scheme;
      decision_.rationale =
          warm_->rationale.empty()
              ? "warm start: adopted '" +
                    std::string(to_string(warm_->scheme)) +
                    "' from the decision cache"
              : warm_->rationale;
      if (warm_->predicted_total_s > 0.0) {
        CostPrediction cp;
        cp.scheme = warm_->scheme;
        cp.loop_s = warm_->predicted_total_s;  // total() == cached value
        decision_.predictions.push_back(cp);
      }
      invocations_base_ = warm_->invocations;
      reset_feedback(sig, /*warm=*/true);
      // Arm the time-drift detector from the persisted phase history: the
      // baseline is measured evidence, not a model prediction, and no
      // warmup is taken — a cache whose history contradicts what this
      // host/input actually measures is demoted within the first
      // monitored window instead of being trusted until it overruns the
      // (possibly absent) prediction.
      if (!warm_->phase_times_s.empty()) {
        monitor_.seed_time_baseline(median_of(warm_->phase_times_s));
        phase_history_ = warm_->phase_times_s;  // carry forward on re-save
      }
    } else {
      characterize_and_decide(in.pattern);
    }
    warm_.reset();
  } else if (opt_.freeze_decisions) {
    // Frozen ablation (phase_drift baseline): pattern drift only rebuilds
    // the inspector plan for the frozen scheme — a plan is
    // pattern-specific, so executing a stale one on a drifted input would
    // be unsafe — and never revisits the decision itself.
    const PatternSignature sig = PatternSignature::of(in.pattern);
    if (monitor_.observe(sig)) {
      adopt(scheme_->kind(), in.pattern);
      monitor_.rebase(sig);
    }
  } else if (monitor_.observe(PatternSignature::of(in.pattern))) {
    characterize_and_decide(in.pattern);
  }
  const double adapt_s = inspect_timer.seconds();

  SchemeResult r = execute_arbitrated(in, out);
  r.inspect_s += adapt_s;

  if (last_check_failed_) {
    // The scheme's combine was provably wrong (output already rolled back
    // and recomputed serially in execute_current). Correctness evidence
    // outranks every timing signal: demote the decision and re-characterize
    // now, and keep the bogus measurement out of the phase history and the
    // mispredict/time feedback. The frozen ablation still recovers the
    // result but, by definition, never revisits its decision.
    last_check_failed_ = false;
    if (!opt_.freeze_decisions) characterize_and_decide(in.pattern);
    return r;
  }

  record_phase_time(r.total_s());
  if (opt_.freeze_decisions) return r;

  // Time-drift demotion: the EWMA of measured times has moved away from
  // the baseline this decision was adopted under (or from the persisted
  // history on a warm start) for a sustained stretch — the input is in a
  // new phase, so the decision is demoted and the site re-characterizes.
  // Takes effect from the next invocation, like a mispredict switch.
  if (monitor_.observe_time(r.total_s())) {
    ++time_demotions_;
    characterize_and_decide(in.pattern);
    return r;
  }

  // Feedback: compare measured against the model's prediction for the
  // selected scheme; persistent overruns promote the runner-up.
  double predicted = 0.0;
  for (const auto& cp : decision_.predictions)
    if (cp.scheme == scheme_->kind()) predicted = cp.total();
  if (predicted > 0.0 && r.total_s() > opt_.mispredict_ratio * predicted) {
    if (++overruns_ >= opt_.mispredict_patience) {
      // The model was wrong about this scheme here: blacklist it and move
      // to the best not-yet-tried alternative (no ping-pong).
      abandoned_.push_back(scheme_->kind());
      bool switched = false;
      for (const auto& cp : decision_.predictions) {
        const bool tried =
            std::find(abandoned_.begin(), abandoned_.end(), cp.scheme) !=
            abandoned_.end();
        if (!tried && cp.applicable) {
          adopt(cp.scheme, in.pattern);
          ++switches_;
          switched = true;
          // The old scheme's time baseline (and history) say nothing
          // about the new scheme.
          monitor_.reset_time();
          phase_history_.clear();
          break;
        }
      }
      // No runner-up left — every alternative was abandoned, or this was
      // a warm start whose cache carried only the one prediction. Fresh
      // evidence beats a stale decision: re-characterize and re-decide
      // (mispredict_patience throttles how often this can fire).
      if (!switched) characterize_and_decide(in.pattern);
      overruns_ = 0;
    }
  } else {
    overruns_ = 0;
  }
  return r;
}

}  // namespace sapp
