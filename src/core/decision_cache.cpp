#include "core/decision_cache.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "reductions/registry.hpp"
#include "repro/json.hpp"

namespace sapp {

namespace {

using repro::JsonValue;

/// Schema version of the cache document; bump on incompatible layout
/// changes (a reader seeing an unknown version treats the file as absent).
/// v2 added the per-site `phase_times_s` measured history — v1 files are
/// rejected into a graceful cold start rather than warm-starting with the
/// feedback loop unarmed.
constexpr int kCacheSchemaVersion = 2;
constexpr const char* kGenerator = "sapp-decision-cache";

double rel_change(double a, double b) {
  const double mx = a > b ? a : b;
  if (mx <= 0.0) return 0.0;
  return std::abs(a - b) / mx;
}

/// The 64-bit signature fingerprints are stored as hex strings: JSON
/// numbers are doubles and silently lose precision above 2^53.
std::string to_hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

bool from_hex(const std::string& s, std::uint64_t& out) {
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X'))
    return false;
  const auto [p, ec] =
      std::from_chars(s.data() + 2, s.data() + s.size(), out, 16);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool read_u64_number(const JsonValue& obj, const char* key,
                     std::uint64_t& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number() || v->as_number() < 0) return false;
  out = static_cast<std::uint64_t>(v->as_number());
  return true;
}

bool read_hex(const JsonValue& obj, const char* key, std::uint64_t& out) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() && from_hex(v->as_string(), out);
}

/// The persisted slice of a phase-time history: the most recent
/// `DecisionCache::kMaxPhaseHistory` samples. GCC 12 -O2 flags the
/// number→JsonValue variant moves in this loop with a spurious
/// -Wmaybe-uninitialized (the temporary is fully constructed); suppressed
/// locally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
JsonValue history_json(const std::vector<double>& ts, std::size_t cap) {
  JsonValue a = JsonValue::array();
  const std::size_t first = ts.size() > cap ? ts.size() - cap : 0;
  for (std::size_t j = first; j < ts.size(); ++j) a.push_back(ts[j]);
  return a;
}
#pragma GCC diagnostic pop

}  // namespace

void DecisionCache::put(CachedDecision d) {
  for (auto& e : entries_) {
    if (e.site == d.site) {
      e = std::move(d);
      return;
    }
  }
  entries_.push_back(std::move(d));
}

const CachedDecision* DecisionCache::find(std::string_view site) const {
  for (const auto& e : entries_)
    if (e.site == site) return &e;
  return nullptr;
}

bool DecisionCache::matches(const CachedDecision& d,
                            const PatternSignature& sig, unsigned threads,
                            double tolerance) {
  if (d.threads != threads) return false;
  if (d.signature.dim != sig.dim) return false;
  if (rel_change(static_cast<double>(d.signature.iterations),
                 static_cast<double>(sig.iterations)) > tolerance)
    return false;
  if (rel_change(static_cast<double>(d.signature.refs),
                 static_cast<double>(sig.refs)) > tolerance)
    return false;
  return rel_change(static_cast<double>(d.signature.sampled_index_sum),
                    static_cast<double>(sig.sampled_index_sum)) <= tolerance;
}

std::string DecisionCache::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", kCacheSchemaVersion);
  doc.set("generator", kGenerator);
  JsonValue sites = JsonValue::array();
  for (const auto& e : entries_) {
    JsonValue s = JsonValue::object();
    s.set("site", e.site);
    s.set("scheme", to_string(e.scheme));
    s.set("threads", e.threads);
    JsonValue sig = JsonValue::object();
    sig.set("dim", static_cast<unsigned long long>(e.signature.dim));
    sig.set("iterations",
            static_cast<unsigned long long>(e.signature.iterations));
    sig.set("refs", static_cast<unsigned long long>(e.signature.refs));
    sig.set("index_sum", to_hex(e.signature.sampled_index_sum));
    sig.set("index_xor", to_hex(e.signature.sampled_index_xor));
    s.set("signature", std::move(sig));
    s.set("predicted_total_s", e.predicted_total_s);
    s.set("phase_times_s", history_json(e.phase_times_s, kMaxPhaseHistory));
    s.set("invocations", static_cast<unsigned long long>(e.invocations));
    s.set("rationale", e.rationale);
    sites.push_back(std::move(s));
  }
  doc.set("sites", std::move(sites));
  return doc.dump();
}

std::optional<DecisionCache> DecisionCache::from_json(std::string_view text,
                                                      std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<DecisionCache> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::string parse_err;
  const auto doc = JsonValue::parse(text, &parse_err);
  if (!doc) return fail("decision cache does not parse: " + parse_err);
  if (!doc->is_object()) return fail("decision cache root is not an object");
  const JsonValue* ver = doc->find("schema_version");
  if (ver == nullptr || !ver->is_number() ||
      static_cast<int>(ver->as_number()) != kCacheSchemaVersion)
    return fail("decision cache has a missing or unsupported schema_version");
  const JsonValue* sites = doc->find("sites");
  if (sites == nullptr || !sites->is_array())
    return fail("decision cache has no 'sites' array");

  DecisionCache cache;
  for (const auto& s : sites->items()) {
    if (!s.is_object()) return fail("site entry is not an object");
    CachedDecision d;
    const JsonValue* site = s.find("site");
    const JsonValue* scheme = s.find("scheme");
    const JsonValue* threads = s.find("threads");
    const JsonValue* sig = s.find("signature");
    if (site == nullptr || !site->is_string() || scheme == nullptr ||
        !scheme->is_string() || threads == nullptr || !threads->is_number() ||
        sig == nullptr || !sig->is_object())
      return fail("site entry is missing site/scheme/threads/signature");
    d.site = site->as_string();
    try {
      d.scheme = scheme_kind_from_name(scheme->as_string());
    } catch (const std::invalid_argument&) {
      return fail("unknown scheme name '" + scheme->as_string() + "'");
    }
    d.threads = static_cast<unsigned>(threads->as_number());
    std::uint64_t dim = 0, iterations = 0, refs = 0;
    if (!read_u64_number(*sig, "dim", dim) ||
        !read_u64_number(*sig, "iterations", iterations) ||
        !read_u64_number(*sig, "refs", refs) ||
        !read_hex(*sig, "index_sum", d.signature.sampled_index_sum) ||
        !read_hex(*sig, "index_xor", d.signature.sampled_index_xor))
      return fail("malformed signature for site '" + d.site + "'");
    d.signature.dim = static_cast<std::size_t>(dim);
    d.signature.iterations = static_cast<std::size_t>(iterations);
    d.signature.refs = static_cast<std::size_t>(refs);
    if (const JsonValue* pred = s.find("predicted_total_s");
        pred != nullptr && pred->is_number() && pred->as_number() >= 0)
      d.predicted_total_s = pred->as_number();
    // The measured history is required by schema v2, and every sample must
    // be a non-negative number — a malformed history is a malformed file
    // (cold start), not a silently unarmed feedback loop.
    const JsonValue* hist = s.find("phase_times_s");
    if (hist == nullptr || !hist->is_array())
      return fail("missing or non-array phase_times_s for site '" + d.site +
                  "'");
    for (const auto& h : hist->items()) {
      if (!h.is_number() || h.as_number() < 0)
        return fail("malformed phase_times_s entry for site '" + d.site + "'");
      d.phase_times_s.push_back(h.as_number());
    }
    if (d.phase_times_s.size() > kMaxPhaseHistory)
      return fail("phase_times_s for site '" + d.site +
                  "' exceeds the history cap");
    (void)read_u64_number(s, "invocations", d.invocations);
    if (const JsonValue* why = s.find("rationale");
        why != nullptr && why->is_string())
      d.rationale = why->as_string();
    cache.put(std::move(d));
  }
  return cache;
}

bool DecisionCache::save(const std::string& path, std::string* error) const {
  std::ofstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  file << to_json();
  file.flush();
  if (!file) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::optional<DecisionCache> DecisionCache::load(const std::string& path,
                                                 std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  return from_json(buf.str(), error);
}

}  // namespace sapp
