#include "core/decision_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

namespace sapp {

namespace {

constexpr std::size_t kMaxShards = 256;

void append_error(std::string* error, const std::string& msg) {
  if (error == nullptr) return;
  if (!error->empty()) *error += "; ";
  *error += msg;
}

}  // namespace

ShardedDecisionStore::ShardedDecisionStore(DecisionStoreOptions opt)
    : opt_(std::move(opt)),
      shards_(std::clamp<std::size_t>(opt_.shards, 1, kMaxShards)) {
  opt_.shards = shards_.size();
}

std::uint64_t ShardedDecisionStore::fingerprint(std::string_view site) {
  // FNV-1a, 64-bit: stable across builds and platforms, unlike std::hash.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::size_t ShardedDecisionStore::shard_of(std::string_view site) const {
  return static_cast<std::size_t>(fingerprint(site) % shards_.size());
}

std::string ShardedDecisionStore::shard_path(std::size_t shard) const {
  return opt_.dir + "/shard-" + std::to_string(shard) + ".json";
}

std::size_t ShardedDecisionStore::load(std::string* error) {
  if (!persistent()) return 0;
  std::error_code ec;
  std::filesystem::create_directories(opt_.dir, ec);
  if (ec) {
    append_error(error, "cannot create '" + opt_.dir + "': " + ec.message());
    return 0;
  }
  // Two passes so an entry present both in its home shard and (from an
  // older layout) a foreign one resolves to the home copy.
  std::vector<std::pair<CachedDecision, std::size_t>> foreign;
  std::size_t loaded = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string path = shard_path(i);
    if (!std::filesystem::exists(path, ec)) continue;
    std::string err;
    auto cache = DecisionCache::load(path, &err);
    if (!cache.has_value()) {
      // A torn or alien file is a cold shard, never a crash. (Atomic
      // renames make this unreachable for our own writes; it guards
      // against truncation by other tools.)
      append_error(error, "skipped '" + path + "': " + err);
      continue;
    }
    for (const auto& e : cache->entries()) {
      const std::size_t home = shard_of(e.site);
      if (home == i) {
        std::scoped_lock lk(shards_[i].mu);
        shards_[i].cache.put(e);
        ++loaded;
      } else {
        foreign.emplace_back(e, i);
      }
    }
  }
  for (auto& [e, from] : foreign) {
    const std::size_t home = shard_of(e.site);
    {
      std::scoped_lock lk(shards_[home].mu);
      if (shards_[home].cache.find(e.site) != nullptr) continue;
      std::string site = e.site;
      shards_[home].cache.put(std::move(e));
      shards_[home].dirty.insert(std::move(site));
      ++loaded;
    }
    // Rewriting the source shard drops the foreign entry (serialization
    // only ever renders the in-memory shard, which is home-keyed).
    std::scoped_lock lk(shards_[from].mu);
    shards_[from].dirty.insert("");  // sentinel: shard content changed
  }
  return loaded;
}

void ShardedDecisionStore::put(CachedDecision d) {
  Shard& s = shards_[shard_of(d.site)];
  std::string site = d.site;
  std::scoped_lock lk(s.mu);
  s.cache.put(std::move(d));
  if (persistent()) s.dirty.insert(std::move(site));
}

std::optional<CachedDecision> ShardedDecisionStore::get(
    std::string_view site) const {
  const Shard& s = shards_[shard_of(site)];
  std::scoped_lock lk(s.mu);
  if (const CachedDecision* d = s.cache.find(site); d != nullptr) return *d;
  return std::nullopt;
}

std::size_t ShardedDecisionStore::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::scoped_lock lk(s.mu);
    n += s.cache.size();
  }
  return n;
}

DecisionCache ShardedDecisionStore::merged() const {
  DecisionCache all;
  for (const auto& s : shards_) {
    std::scoped_lock lk(s.mu);
    for (const auto& e : s.cache.entries()) all.put(e);
  }
  return all;
}

void ShardedDecisionStore::mark_dirty(std::string_view site) {
  if (!persistent()) return;
  Shard& s = shards_[shard_of(site)];
  std::scoped_lock lk(s.mu);
  s.dirty.insert(std::string(site));
}

std::size_t ShardedDecisionStore::dirty_count() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::scoped_lock lk(s.mu);
    n += s.dirty.size();
  }
  return n;
}

void ShardedDecisionStore::set_flush_failure_hook(FlushFailureHook hook) {
  std::scoped_lock lk(hook_mu_);
  hook_ = std::move(hook);
}

std::size_t ShardedDecisionStore::drain(const Snapshotter& snap,
                                        std::string* error) {
  if (!persistent()) return 0;
  std::size_t written = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = shards_[i];
    std::unordered_set<std::string> dirty;
    {
      std::scoped_lock lk(s.mu);
      if (s.dirty.empty()) continue;
      dirty.swap(s.dirty);
    }
    // Refresh each dirty site from live state outside the shard lock —
    // the snapshotter takes site locks and must not nest inside ours.
    if (snap) {
      for (const auto& site : dirty) {
        if (site.empty()) continue;  // re-home sentinel
        CachedDecision d;
        if (snap(site, d)) {
          std::scoped_lock lk(s.mu);
          s.cache.put(std::move(d));
        }
      }
    }
    std::string json;
    {
      std::scoped_lock lk(s.mu);
      json = s.cache.to_json();
    }
    if (write_shard(i, json, error)) {
      ++written;
    } else {
      // Keep the sites dirty so the next drain retries (new dirtiness
      // accumulated meanwhile wins the merge).
      std::scoped_lock lk(s.mu);
      s.dirty.merge(dirty);
    }
  }
  return written;
}

bool ShardedDecisionStore::write_shard(std::size_t i, const std::string& json,
                                       std::string* error) {
  FlushFailureHook hook;
  {
    std::scoped_lock lk(hook_mu_);
    hook = hook_;
  }
  const std::string path = shard_path(i);
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    append_error(error, "cannot open '" + tmp + "' for writing");
    flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (hook && hook(i, FlushPhase::kTempWrite)) {
    // Simulated crash mid-write: leave a torn temp file behind, never
    // rename it — the shard file keeps its previous complete contents.
    (void)std::fwrite(json.data(), 1, json.size() / 2, f);
    (void)std::fclose(f);
    flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) ==
                         json.size() &&
                     std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    append_error(error, "write to '" + tmp + "' failed");
    flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (hook && hook(i, FlushPhase::kRename)) {
    // Simulated crash between the complete temp write and the rename:
    // the new version exists only as .tmp and is ignored by load().
    flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    append_error(error, "rename '" + tmp + "' -> '" + path + "' failed");
    flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace sapp
