// Persistent decision cache — learned scheme choices that survive restarts.
//
// The paper's Fig. 2 ToolBox keeps "application and system specific
// databases"; this is the application half: per loop site, the scheme the
// adaptive runtime settled on together with the PatternSignature it was
// learned for, the thread count it is valid under, and a bounded history
// of measured per-invocation phase times. On a warm start `sapp::Runtime`
// adopts the remembered scheme directly and skips the first-invocation
// characterization + decision (the expensive O(refs + dim) inspector
// sweep), and the phase history arms the PhaseMonitor's time-drift
// detector immediately — a warm-started site whose cached history
// contradicts fresh measurements re-characterizes within the first
// monitored window instead of trusting the stale scheme.
// Persistence is explicit: `Runtime::save_decisions()` writes the
// file (typically at the end of a run); the constructor loads
// `RuntimeOptions::decision_cache_path` when it is set. A cached entry is
// only adopted when the first observed pattern still matches its recorded
// signature — otherwise the site falls back to the normal
// characterize-and-decide path.
//
// The file format is JSON rendered by src/repro/json (schema documented in
// docs/adaptivity.md, "The on-disk decision cache"; schema_version 2 —
// version-1 files without phase history are treated as absent, a graceful
// cold start). Caches are host- and thread-count-specific, like the rest
// of docs/results/.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/phase_monitor.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

/// One learned decision: what a loop site should run on a warm start.
struct CachedDecision {
  std::string site;            ///< loop-site id (Runtime::submit key)
  SchemeKind scheme{};         ///< scheme the site had settled on
  unsigned threads = 0;        ///< pool size the decision was learned under
  PatternSignature signature;  ///< pattern the decision is valid for
  /// Cost-model prediction (seconds/invocation) for `scheme` when it was
  /// decided. Carried so a warm-started site keeps the mispredict
  /// feedback loop: sustained overruns against this value trigger
  /// re-characterization instead of trusting a stale cache forever.
  /// 0 = unknown (feedback resumes after the next re-characterization).
  double predicted_total_s = 0.0;
  /// Bounded history of *measured* per-invocation phase times (seconds,
  /// oldest first, at most `DecisionCache::kMaxPhaseHistory` entries) under
  /// `scheme`. A warm-started site seeds its PhaseMonitor time baseline
  /// from the median of this history, so the feedback loop arrives armed
  /// with evidence instead of a model prediction — and re-decides within
  /// the first monitored window when fresh measurements contradict it
  /// (stale host, copied file, input moved to a new phase).
  std::vector<double> phase_times_s;
  std::uint64_t invocations = 0;  ///< cumulative evidence behind the decision
  std::string rationale;          ///< human-readable provenance
};

/// Site-id keyed collection of cached decisions with a JSON round trip.
class DecisionCache {
 public:
  /// Cap on the persisted phase-time history per site: enough to smooth a
  /// median over, small enough that cache files stay diff-sized.
  /// `to_json` keeps the most recent entries when given more.
  static constexpr std::size_t kMaxPhaseHistory = 16;

  /// Insert or replace the entry for `d.site`.
  void put(CachedDecision d);

  /// Entry for `site`, or nullptr.
  [[nodiscard]] const CachedDecision* find(std::string_view site) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<CachedDecision>& entries() const {
    return entries_;
  }

  /// Does a cached decision still apply to the pattern `sig` under
  /// `threads` workers? Dimension and thread count must match exactly;
  /// iteration, reference and sampled-index-sum counts may each drift by
  /// at most `tolerance` (relative). The xor fingerprint is deliberately
  /// not compared — any reordering flips it, and the cache must tolerate
  /// benign run-to-run perturbation.
  [[nodiscard]] static bool matches(const CachedDecision& d,
                                    const PatternSignature& sig,
                                    unsigned threads, double tolerance);

  /// JSON round trip (entries in insertion order; stable diffs).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static std::optional<DecisionCache> from_json(
      std::string_view text, std::string* error = nullptr);

  /// File round trip. `load` returns nullopt (with an error message) on a
  /// missing, unreadable or malformed file — a cold start, never a crash.
  [[nodiscard]] bool save(const std::string& path,
                          std::string* error = nullptr) const;
  [[nodiscard]] static std::optional<DecisionCache> load(
      const std::string& path, std::string* error = nullptr);

 private:
  std::vector<CachedDecision> entries_;
};

}  // namespace sapp
