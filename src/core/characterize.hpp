// Reference-pattern characterization (§4).
//
// "To find the best choice we establish a taxonomy of different access
//  patterns, devise simple, fast ways to recognize them, and model the
//  various ... reduction methods in order to find the best match."
//
// `characterize` computes the paper's measures from an AccessPattern:
//   CH  — histogram: number of elements referenced by a given number of
//         iterations,
//   CHD — the CH distribution, summarized here by a Gini skew coefficient,
//   CHR — ratio of total references to the space needed for replicated
//         arrays across processors (refs / (P · dim)),
//   CON — connectivity: references per distinct referenced element,
//   MO  — mobility: mean distinct elements referenced per iteration,
//   SP  — sparsity: percentage of the array that is actually referenced,
//   DIM — reduction array footprint relative to cache capacity.
// plus thread-dependent quantities the schemes' cost models need (per-thread
// touched sets, shared-element fraction, local-write replication factor and
// owner imbalance).
//
// The exact CHR/CON formulas are under-specified in the paper; the formulas
// implemented here are documented above and in docs/schemes.md, and the
// decision model is calibrated against *these* definitions.
#pragma once

#include <cstdint>
#include <vector>

#include "reductions/access_pattern.hpp"

namespace sapp {

/// Knobs for the characterizer.
struct CharacterizeOptions {
  /// Cache capacity used for the DIM measure (bytes). Default matches the
  /// paper's simulated L2 (512 KB).
  std::size_t cache_bytes = 512 * 1024;
  /// Inspect every `sample_stride`-th iteration (1 = exact). Counts are
  /// scaled back up; "fast, approximative methods" per the paper.
  std::size_t sample_stride = 1;
  /// Cap for the CH histogram's per-element count bucket.
  std::size_t ch_cap = 64;
};

/// Everything the decision model needs to know about one reduction loop.
struct PatternStats {
  // Raw sizes.
  std::size_t dim = 0;
  std::size_t iterations = 0;
  std::size_t refs = 0;
  std::size_t distinct = 0;

  // Paper measures.
  double mo = 0.0;   ///< distinct elements per iteration (mean)
  double con = 0.0;  ///< refs / distinct
  double sp = 0.0;   ///< 100 * distinct / dim  (percent)
  double dim_ratio = 0.0;  ///< dim * sizeof(double) / cache_bytes
  double chr = 0.0;  ///< refs / (P * dim)

  /// CH histogram: ch[k] = number of elements referenced k times
  /// (k capped at ch_cap; index 0 unused).
  std::vector<std::uint64_t> ch;
  double chd_gini = 0.0;  ///< skew of CH distribution, 0 = uniform

  // Thread-dependent measures (computed for `threads`).
  unsigned threads = 0;
  double touched_per_thread = 0.0;  ///< mean |touched_t|
  double shared_fraction = 0.0;  ///< distinct elements referenced by >1 thread / distinct
  double lw_replication = 0.0;   ///< Σ_i |owner threads of i| / iterations
  double lw_imbalance = 1.0;     ///< max_t lw work / mean lw work

  // True when the loop body permits iteration replication (copied from the
  // pattern; lw legality).
  bool lw_legal = true;
};

/// Compute stats for `p` as seen by `threads` workers under the block
/// schedule all schemes use.
[[nodiscard]] PatternStats characterize(const AccessPattern& p,
                                        unsigned threads,
                                        const CharacterizeOptions& opt = {});

}  // namespace sapp
