#include "core/distributed_cost.hpp"

#include <algorithm>

namespace sapp {

DistCostPrediction DistributedCostModel::predict(
    const sim::DistWork& work, sim::DistStrategy strategy) const {
  const sim::DistRunResult r = sim::simulate_strategy(work, strategy, cfg_);
  DistCostPrediction p;
  p.strategy = strategy;
  p.total_s = r.total_s;
  p.partial_s = r.partial_s;
  p.exchange_s = r.exchange_s;
  p.messages = r.messages;
  p.bytes = r.bytes;
  return p;
}

std::vector<DistCostPrediction> DistributedCostModel::predict_all(
    const sim::DistWork& work) const {
  std::vector<DistCostPrediction> out;
  for (const sim::DistStrategy s : sim::all_dist_strategies())
    out.push_back(predict(work, s));
  std::stable_sort(out.begin(), out.end(),
                   [](const DistCostPrediction& a, const DistCostPrediction& b) {
                     return a.total_s < b.total_s;
                   });
  return out;
}

std::vector<DistCostPrediction> DistributedCostModel::predict_all(
    const DistQuery& q) const {
  return predict_all(sim::synth_work(q.dim, q.iterations, q.refs, q.sparsity,
                                     q.body_flops, cfg_.nodes));
}

sim::DistStrategy DistributedCostModel::best(const DistQuery& q) const {
  return predict_all(q).front().strategy;
}

}  // namespace sapp
