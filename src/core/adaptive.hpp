// AdaptiveReducer — the multi-version executor at the heart of SmartApps'
// software reduction support (§4).
//
// One AdaptiveReducer manages one reduction loop site across its
// invocations:
//   * first invocation: characterize the pattern, decide a scheme (cost
//     model or rule taxonomy), build its inspector plan, execute;
//   * later invocations: reuse scheme + plan while the pattern is stable;
//   * drift (PhaseMonitor) — pattern-fingerprint accumulation *or* a
//     sustained shift of the measured-time EWMA away from the baseline the
//     current decision was made under — demotes the decision and triggers
//     re-characterization;
//   * sustained mispredictions (measured ≫ predicted) trigger a switch to
//     the runner-up scheme — the Fig. 1 "monitor performance and adapt"
//     feedback loop realized as library code.
//
// The reducer keeps a bounded ring of measured per-invocation phase times;
// `sapp::Runtime` persists it in the decision cache, and a warm start
// seeds the time-drift baseline from that history so the feedback loop
// survives process restarts armed (docs/adaptivity.md walks the full
// lifecycle).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "check/checker.hpp"
#include "check/fault_injector.hpp"
#include "core/decision.hpp"
#include "core/decision_cache.hpp"
#include "core/phase_monitor.hpp"
#include "reductions/registry.hpp"

namespace sapp {

/// Tunables of the adaptive loop.
struct AdaptiveOptions {
  CharacterizeOptions characterize{};
  /// Use the rule taxonomy instead of the cost model (ablation).
  bool use_rule_decider = false;
  RuleThresholds rules{};
  /// Accumulated pattern drift that triggers re-characterization.
  double drift_threshold = 0.25;
  /// Measured/predicted overrun that counts as a misprediction.
  double mispredict_ratio = 2.0;
  /// Consecutive mispredictions before switching to the runner-up.
  int mispredict_patience = 3;
  /// Relative signature drift a cached decision may show and still be
  /// adopted on a warm start (see DecisionCache::matches).
  double warm_match_tolerance = 0.1;
  /// Time-drift detector knobs (EWMA smoothing, ratio, patience, noise
  /// floor). `monitor.pattern_threshold` is overridden by
  /// `drift_threshold` above.
  PhaseMonitorOptions monitor{};
  /// In-flight probabilistic result checking (src/check, docs/checking.md):
  /// when enabled every invocation validates the scheme's combine against
  /// an independent input-stream checksum. A failed check rolls the output
  /// back to its pre-invocation state, re-executes serially (trusted
  /// path), and demotes the decision that produced the wrong result — the
  /// same re-characterization a phase change triggers, but on *correctness*
  /// evidence instead of timing evidence.
  CheckerOptions check{};
  /// Test hook (never set in production): corrupts one combine / commit /
  /// warm-started combine so tests and `sapp_repro checking` can prove the
  /// detection bound empirically.
  FaultInjector* fault_injector = nullptr;
  /// Freeze the first decision for the lifetime of the site: pattern drift
  /// only rebuilds the inspector plan for the frozen scheme (a plan is
  /// pattern-specific, so executing a stale one would be unsafe) and the
  /// time/mispredict feedback is disabled. This is the pre-phase-aware
  /// behaviour, kept as the `sapp_repro phase_drift` ablation baseline.
  bool freeze_decisions = false;
};

/// Adaptive multi-version reduction executor for one loop site.
class AdaptiveReducer {
 public:
  AdaptiveReducer(ThreadPool& pool, MachineCoeffs coeffs,
                  AdaptiveOptions opt = {});
  ~AdaptiveReducer();

  AdaptiveReducer(const AdaptiveReducer&) = delete;
  AdaptiveReducer& operator=(const AdaptiveReducer&) = delete;

  /// Execute one invocation of the loop, accumulating into `out`.
  SchemeResult invoke(const ReductionInput& in, std::span<double> out);

  /// Offer a cached decision for adoption on the first invocation. If the
  /// first observed pattern matches the cached signature (within
  /// `AdaptiveOptions::warm_match_tolerance`) the reducer adopts the
  /// cached scheme directly and skips characterization and the cost-model
  /// decision; otherwise it falls back to the cold path. Must be called
  /// before the first invoke.
  void warm_start(CachedDecision cached);

  /// Serialize the shared-pool phases (Scheme::execute) on `mu` so
  /// reducers owned by one multi-site runtime can run their sequential
  /// phases (characterize, plan, monitor) concurrently while arbitrating
  /// the one pool. nullptr (the default) means no arbitration.
  void set_pool_arbiter(std::mutex* mu) { pool_mu_ = mu; }

  /// Scheme currently selected (valid after the first invoke).
  [[nodiscard]] SchemeKind current() const;
  /// Last decision with predictions and rationale.
  [[nodiscard]] const Decision& decision() const { return decision_; }
  /// Stats of the last characterization.
  [[nodiscard]] const PatternStats& stats() const { return stats_; }
  /// Drift monitor (exposes the base/last pattern signatures).
  [[nodiscard]] const PhaseMonitor& monitor() const { return monitor_; }

  [[nodiscard]] unsigned invocations() const { return invocations_; }
  /// Invocations including the evidence inherited from the decision cache
  /// on a warm start — what the next snapshot should record, so repeated
  /// warm restarts accumulate provenance instead of resetting it.
  [[nodiscard]] std::uint64_t lifetime_invocations() const {
    return invocations_base_ + invocations_;
  }
  [[nodiscard]] unsigned recharacterizations() const {
    return recharacterizations_;
  }
  [[nodiscard]] unsigned scheme_switches() const { return switches_; }
  /// Re-characterizations forced by the time-drift detector specifically
  /// (a subset of recharacterizations()).
  [[nodiscard]] unsigned time_drift_demotions() const {
    return time_demotions_;
  }
  /// Measured per-invocation phase times under the current scheme since
  /// the last re-characterization (oldest first, bounded by
  /// DecisionCache::kMaxPhaseHistory; a warm start inherits the cached
  /// history). This is what Runtime::snapshot_decisions persists.
  [[nodiscard]] const std::vector<double>& phase_history() const {
    return phase_history_;
  }
  /// True when the current scheme was adopted from a decision cache
  /// without characterizing (reset by the next re-characterization).
  [[nodiscard]] bool warm_started() const { return warm_started_; }

  /// In-flight check counters (only move when `opt.check.enabled`).
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::uint64_t check_failures() const {
    return check_failures_;
  }
  /// Verdict of the most recent checked invocation.
  [[nodiscard]] const CheckReport& last_check() const { return last_check_; }

 private:
  void characterize_and_decide(const AccessPattern& p);
  void adopt(SchemeKind kind, const AccessPattern& p);
  void reset_feedback(const PatternSignature& sig, bool warm);
  void record_phase_time(double seconds);
  SchemeResult execute_arbitrated(const ReductionInput& in,
                                  std::span<double> out);
  SchemeResult execute_current(const ReductionInput& in,
                               std::span<double> out);

  ThreadPool& pool_;
  MachineCoeffs coeffs_;
  AdaptiveOptions opt_;
  PhaseMonitor monitor_;
  std::mutex* pool_mu_ = nullptr;
  std::optional<CachedDecision> warm_;

  std::unique_ptr<Scheme> scheme_;
  std::unique_ptr<SchemePlan> plan_;
  Decision decision_{};
  PatternStats stats_{};
  /// Schemes abandoned after sustained overruns since the last
  /// re-characterization (never returned to without new evidence).
  std::vector<SchemeKind> abandoned_;

  unsigned invocations_ = 0;
  unsigned recharacterizations_ = 0;
  unsigned switches_ = 0;
  unsigned time_demotions_ = 0;
  int overruns_ = 0;
  bool warm_started_ = false;
  std::uint64_t checks_run_ = 0;
  std::uint64_t check_failures_ = 0;
  bool last_check_failed_ = false;
  CheckReport last_check_{};
  /// Pre-invocation output snapshot for rollback (reused across checked
  /// invocations to avoid an allocation per call).
  std::vector<double> check_before_;
  /// Invocation evidence inherited from the cache entry on a warm start.
  std::uint64_t invocations_base_ = 0;
  /// Bounded ring of measured phase times (see phase_history()).
  std::vector<double> phase_history_;
};

}  // namespace sapp
