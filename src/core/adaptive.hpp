// AdaptiveReducer — the multi-version executor at the heart of SmartApps'
// software reduction support (§4).
//
// One AdaptiveReducer manages one reduction loop site across its
// invocations:
//   * first invocation: characterize the pattern, decide a scheme (cost
//     model or rule taxonomy), build its inspector plan, execute;
//   * later invocations: reuse scheme + plan while the pattern is stable;
//   * drift (PhaseMonitor) triggers re-characterization and re-decision;
//   * sustained mispredictions (measured ≫ predicted) trigger a switch to
//     the runner-up scheme — the Fig. 1 "monitor performance and adapt"
//     feedback loop realized as library code.
#pragma once

#include <memory>
#include <span>

#include "core/decision.hpp"
#include "core/phase_monitor.hpp"
#include "reductions/registry.hpp"

namespace sapp {

/// Tunables of the adaptive loop.
struct AdaptiveOptions {
  CharacterizeOptions characterize{};
  /// Use the rule taxonomy instead of the cost model (ablation).
  bool use_rule_decider = false;
  RuleThresholds rules{};
  /// Accumulated pattern drift that triggers re-characterization.
  double drift_threshold = 0.25;
  /// Measured/predicted overrun that counts as a misprediction.
  double mispredict_ratio = 2.0;
  /// Consecutive mispredictions before switching to the runner-up.
  int mispredict_patience = 3;
};

/// Adaptive multi-version reduction executor for one loop site.
class AdaptiveReducer {
 public:
  AdaptiveReducer(ThreadPool& pool, MachineCoeffs coeffs,
                  AdaptiveOptions opt = {});
  ~AdaptiveReducer();

  AdaptiveReducer(const AdaptiveReducer&) = delete;
  AdaptiveReducer& operator=(const AdaptiveReducer&) = delete;

  /// Execute one invocation of the loop, accumulating into `out`.
  SchemeResult invoke(const ReductionInput& in, std::span<double> out);

  /// Scheme currently selected (valid after the first invoke).
  [[nodiscard]] SchemeKind current() const;
  /// Last decision with predictions and rationale.
  [[nodiscard]] const Decision& decision() const { return decision_; }
  /// Stats of the last characterization.
  [[nodiscard]] const PatternStats& stats() const { return stats_; }

  [[nodiscard]] unsigned invocations() const { return invocations_; }
  [[nodiscard]] unsigned recharacterizations() const {
    return recharacterizations_;
  }
  [[nodiscard]] unsigned scheme_switches() const { return switches_; }

 private:
  void characterize_and_decide(const AccessPattern& p);
  void adopt(SchemeKind kind, const AccessPattern& p);

  ThreadPool& pool_;
  MachineCoeffs coeffs_;
  AdaptiveOptions opt_;
  PhaseMonitor monitor_;

  std::unique_ptr<Scheme> scheme_;
  std::unique_ptr<SchemePlan> plan_;
  Decision decision_{};
  PatternStats stats_{};
  /// Schemes abandoned after sustained overruns since the last
  /// re-characterization (never returned to without new evidence).
  std::vector<SchemeKind> abandoned_;

  unsigned invocations_ = 0;
  unsigned recharacterizations_ = 0;
  unsigned switches_ = 0;
  int overruns_ = 0;
};

}  // namespace sapp
