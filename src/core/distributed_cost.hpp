// Distributed cost model — the cluster-level extension of the per-scheme
// predictor in core/cost_model.hpp.
//
// Prices the three distributed reduction strategies of sim/cluster.hpp from
// aggregate workload shape (dim, iterations, refs, sparsity) plus cluster
// shape (nodes, cores per node, link latency/bandwidth), and ranks them.
// The pricing runs the *same* deterministic task-graph engine the value-
// tracked simulation uses, so the model's best strategy is the simulation's
// best strategy by construction — there is no separate closed-form surface
// that could drift from the machine model it summarizes.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "sim/cluster.hpp"

namespace sapp {

/// One strategy's predicted breakdown, in seconds (sorted output of
/// DistributedCostModel::predict_all).
struct DistCostPrediction {
  sim::DistStrategy strategy{};
  double total_s = 0.0;
  double partial_s = 0.0;   ///< slowest node-local phase
  double exchange_s = 0.0;  ///< communication + combine tail
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Aggregate query shape: what the decision layer knows about a reduction
/// before running it anywhere (cf. predict_cost's PatternStats input).
struct DistQuery {
  std::size_t dim = 0;
  std::size_t iterations = 0;
  std::size_t refs = 0;
  double sparsity = 1.0;  ///< distinct/dim in (0, 1]
  unsigned body_flops = 0;
};

/// Prices and ranks the distributed strategies for one cluster shape.
class DistributedCostModel {
 public:
  explicit DistributedCostModel(sim::ClusterConfig cfg) : cfg_(cfg) {
    SAPP_REQUIRE(cfg_.nodes >= 1, "cluster needs at least one node");
  }

  [[nodiscard]] const sim::ClusterConfig& config() const { return cfg_; }

  /// Price one strategy over an exact per-node work description.
  [[nodiscard]] DistCostPrediction predict(const sim::DistWork& work,
                                           sim::DistStrategy strategy) const;

  /// Price every strategy over `work`, sorted ascending by total_s
  /// (ties broken by enum order, so the ranking is deterministic).
  [[nodiscard]] std::vector<DistCostPrediction> predict_all(
      const sim::DistWork& work) const;

  /// Price every strategy from aggregate shape (synth_work slicing).
  [[nodiscard]] std::vector<DistCostPrediction> predict_all(
      const DistQuery& q) const;

  /// The cheapest strategy for `q` on this cluster.
  [[nodiscard]] sim::DistStrategy best(const DistQuery& q) const;

 private:
  sim::ClusterConfig cfg_;
};

}  // namespace sapp
