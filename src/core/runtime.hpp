// SmartAppsRuntime — the application-facing facade (Fig. 1 / Fig. 2).
//
// Owns the thread pool, the calibrated machine-coefficient database (the
// ToolBox "system-specific database") and one AdaptiveReducer per loop
// site. An application links against this and writes
//
//     SmartAppsRuntime rt({.threads = 8});
//     auto& site = rt.reducer("ComputeForces");
//     for (each timestep) site.invoke(input, forces);
//
// which is the shape of code the paper's run-time compiler would emit.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/adaptive.hpp"

namespace sapp {

class SmartAppsRuntime {
 public:
  struct Options {
    unsigned threads = 0;      ///< 0 = hardware concurrency
    bool calibrate = true;     ///< micro-calibrate MachineCoeffs at startup
    AdaptiveOptions adaptive{};
  };

  SmartAppsRuntime() : SmartAppsRuntime(Options{}) {}
  explicit SmartAppsRuntime(Options opt);

  [[nodiscard]] ThreadPool& pool() { return *pool_; }
  [[nodiscard]] const MachineCoeffs& coeffs() const { return coeffs_; }

  /// The adaptive reducer for the loop site `name` (created on first use).
  [[nodiscard]] AdaptiveReducer& reducer(const std::string& name);

  /// Per-site summary: decisions, re-characterizations, switches.
  [[nodiscard]] std::string report() const;

 private:
  Options opt_;
  std::unique_ptr<ThreadPool> pool_;
  MachineCoeffs coeffs_;
  std::map<std::string, std::unique_ptr<AdaptiveReducer>> sites_;
};

}  // namespace sapp
