// sapp::Runtime — the process-wide multi-site adaptive runtime (Fig. 1 at
// scale), plus the SmartAppsRuntime single-threaded facade it grew from.
//
// One Runtime serves every reduction loop site of an application:
//
//     sapp::Runtime rt({.threads = 8, .decision_cache_dir = "sapp.cache.d"});
//     // any application thread, concurrently:
//     rt.submit("Moldyn/ComputeForces", input, forces);
//     rt.submit(input_with_loop_id, out);   // site id from pattern.loop_id
//
// Concurrency model:
//   * the site table is lock-striped: submissions to distinct sites never
//     contend on one global lock, and a site is created exactly once no
//     matter how many threads race to its first submission;
//   * submissions to the same site serialize in arrival order (an
//     AdaptiveReducer is stateful: monitor, plan, feedback counters);
//   * the sequential per-site phases — characterization, planning, drift
//     monitoring — run concurrently across sites; only Scheme::execute
//     regions are arbitrated onto the one shared ThreadPool (a pool region
//     must be dispatched by one thread at a time).
//
// Serving-scale bounds (see docs/serving.md):
//   * `max_sites` caps the live site table with approximate-LRU eviction
//     (per-site last-used timestamps; a creation past the cap evicts the
//     coldest sites first); `site_ttl_s` additionally expires idle sites.
//     An evicted site's learned decision is snapshotted into the decision
//     store, so a returning site re-registers and warm-starts instead of
//     re-characterizing — eviction bounds memory, not knowledge.
//   * persistence is asynchronous: submissions only mark their site dirty
//     in the sharded decision store (decision_store.hpp); a maintenance
//     thread snapshots dirty sites and flushes changed shards atomically
//     (temp file + rename) on an interval, and the destructor drains
//     cleanly. No file I/O ever runs on the submit path.
//
// The legacy single-file workflow (`decision_cache_path` + explicit
// `save_decisions()`/`load_decisions()`) still works and now also seeds
// the store; `sapp_repro serving` measures the whole arrangement under
// sustained multi-threaded churn and CI gates its throughput and p99.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/adaptive.hpp"
#include "core/decision_cache.hpp"
#include "core/decision_store.hpp"

namespace sapp {

/// Construction knobs of the multi-site runtime.
struct RuntimeOptions {
  unsigned threads = 0;   ///< 0 = hardware concurrency
  bool calibrate = true;  ///< micro-calibrate MachineCoeffs at startup
  AdaptiveOptions adaptive{};
  /// Path of the legacy single-file decision cache. When non-empty, the
  /// constructor loads it (silently starting cold if missing/corrupt) and
  /// `save_decisions()` with no argument writes back to it.
  std::string decision_cache_path;
  /// Directory of the sharded, asynchronously persisted decision store.
  /// When non-empty, the constructor loads every shard for warm starts
  /// and a maintenance thread flushes learned decisions back on
  /// `flush_interval_s` — the serving-scale replacement for the explicit
  /// single-file save.
  std::string decision_cache_dir;
  /// Shard-file count of the decision store (clamped to [1, 256]).
  std::size_t decision_cache_shards = 16;
  /// Maintenance-thread period: async flush of dirty decisions plus
  /// TTL/capacity sweeps.
  double flush_interval_s = 0.05;
  /// Cap on live sites (0 = unbounded). A creation past the cap evicts
  /// the least-recently-used sites after persisting their decisions.
  std::size_t max_sites = 0;
  /// Evict sites idle longer than this many seconds (0 = no TTL).
  double site_ttl_s = 0.0;
  /// Skip calibration and use these coefficients (tests, experiments
  /// wanting identical deciders across Runtime instances).
  const MachineCoeffs* coeffs = nullptr;
};

/// Process-wide registry of adaptive reduction sites sharing one pool.
class Runtime {
 public:
  Runtime() : Runtime(RuntimeOptions{}) {}
  explicit Runtime(RuntimeOptions opt);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] ThreadPool& pool() { return *pool_; }
  [[nodiscard]] const MachineCoeffs& coeffs() const { return coeffs_; }
  [[nodiscard]] unsigned threads() const;

  /// Execute one invocation of loop site `site_id`, accumulating into
  /// `out`. The site is created (or revived from the decision store) on
  /// first use. Safe to call from any number of application threads
  /// concurrently, including concurrently with eviction.
  SchemeResult submit(std::string_view site_id, const ReductionInput& in,
                      std::span<double> out);

  /// As above with the site id taken from `in.pattern.loop_id`. Patterns
  /// carrying no loop_id share a dimension-keyed anonymous site
  /// ("<anonymous dim=N>") — good enough to keep structurally different
  /// untagged loops apart, but tag loop_id for stable identity.
  SchemeResult submit(const ReductionInput& in, std::span<double> out);

  /// The site's reducer, created on first use. Reading reducer state is
  /// NOT synchronized against concurrent submit() or eviction — use from
  /// single-threaded phases (startup, reporting, tests).
  [[nodiscard]] AdaptiveReducer& site(std::string_view site_id);

  /// Whether `site_id` is currently live (not evicted / never created).
  [[nodiscard]] bool has_live_site(std::string_view site_id) const;

  [[nodiscard]] std::size_t site_count() const;
  /// All live site ids, sorted (stable report/serialization order).
  [[nodiscard]] std::vector<std::string> site_ids() const;
  /// Per-site summary: decisions, re-characterizations, switches.
  [[nodiscard]] std::string report() const;

  // ---- eviction -----------------------------------------------------
  /// Sites evicted so far (LRU capacity + TTL combined).
  [[nodiscard]] std::uint64_t evictions() const { return evictions_.load(); }
  /// Site creations that found a cached decision to offer (initial warm
  /// loads plus evicted sites re-registering; approximate under racing
  /// duplicate creations).
  [[nodiscard]] std::uint64_t warm_offers() const {
    return warm_offers_.load();
  }
  /// Evict TTL-expired sites and trim over-capacity now (also runs on
  /// every maintenance tick). Returns the number of sites evicted.
  std::size_t sweep();

  // ---- in-flight checking (AdaptiveOptions::check) -------------------
  /// Checked invocations across every site, including evicted ones.
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_.load(); }
  /// Detected wrong combines (each rolled back, recomputed serially, and
  /// demoted; see docs/checking.md).
  [[nodiscard]] std::uint64_t check_failures() const {
    return check_failures_.load();
  }

  // ---- persistent decision cache ------------------------------------
  /// Snapshot of every live site that has settled on a scheme (keyed by
  /// site id; signature = the most recently observed pattern).
  [[nodiscard]] DecisionCache snapshot_decisions() const;
  /// Everything the decision store knows: loaded shards, evicted sites,
  /// flushed snapshots. Live sites may have advanced past this.
  [[nodiscard]] DecisionCache persisted_decisions() const;
  /// Save store + live-site decisions as one legacy single file. Returns
  /// false (with `error`) on I/O failure.
  bool save_decisions(const std::string& path,
                      std::string* error = nullptr) const;
  /// Save to `RuntimeOptions::decision_cache_path`.
  bool save_decisions(std::string* error = nullptr) const;
  /// Merge `path` into the decision store consulted when sites are
  /// created. Entries for already-created sites do not apply retroactively.
  bool load_decisions(const std::string& path, std::string* error = nullptr);
  /// The decisions currently offered to newly created sites.
  [[nodiscard]] std::size_t warm_entries() const;
  /// Synchronously flush dirty decisions to the store's shard files (the
  /// maintenance thread does this on an interval; this forces it now).
  /// Returns the number of shard files written.
  std::size_t flush_decisions(std::string* error = nullptr);
  /// The sharded store (testing/metrics: flush counters, failure hook).
  [[nodiscard]] ShardedDecisionStore& decision_store() { return *store_; }

 private:
  struct Site {
    std::mutex mu;  // serializes submissions to this site
    /// Set under `mu` by eviction after the site left the table; a
    /// submitter that raced the eviction re-resolves the site id.
    bool evicted = false;
    /// steady_clock nanos of the last submission — read lock-free by the
    /// LRU/TTL sweeps.
    std::atomic<std::uint64_t> last_used_ns{0};
    std::unique_ptr<AdaptiveReducer> reducer;
  };
  struct Stripe {
    mutable std::mutex mu;
    /// shared_ptr so eviction can drop a site from the table while a
    /// racing submitter still holds a reference (it detects `evicted`
    /// under the site mutex and retries).
    std::map<std::string, std::shared_ptr<Site>, std::less<>> sites;
  };
  /// Stripe count: a small power of two; striping only needs to keep
  /// unrelated sites off one cache-hot mutex, not scale to thousands.
  static constexpr std::size_t kStripes = 16;

  [[nodiscard]] static std::size_t stripe_of(std::string_view id);
  std::shared_ptr<Site> find_live(std::string_view id) const;
  std::shared_ptr<Site> site_slot(std::string_view id);
  /// Build the persistable snapshot of one live site (caller holds its
  /// mutex and guarantees at least one invocation).
  [[nodiscard]] CachedDecision snapshot_site(const std::string& id,
                                             const AdaptiveReducer& r) const;
  /// Evict up to `want` least-recently-used live sites (plus every
  /// TTL-expired one when `ttl_cutoff_ns` > 0), persisting their
  /// decisions into the store. Caller holds evict_mu_.
  std::size_t evict_locked(std::size_t want, std::uint64_t ttl_cutoff_ns);
  /// Snapshot-and-erase one site; false when it is gone or mid-submit.
  bool evict_site(const std::string& id);
  /// Make room for one more site when `max_sites` is set.
  void ensure_capacity();
  void maintenance_loop();
  void stop_maintenance();
  /// Visit every live site in sorted id order, holding the site's own
  /// mutex — safe against concurrent submit().
  template <typename Fn>  // Fn(const std::string&, const AdaptiveReducer&)
  void for_each_site(Fn&& fn) const;

  RuntimeOptions opt_;
  std::unique_ptr<ThreadPool> pool_;
  MachineCoeffs coeffs_;
  /// Arbitrates Scheme::execute regions on the shared pool across sites.
  std::mutex pool_mu_;
  std::array<Stripe, kStripes> stripes_;
  /// Live-site count maintained next to the stripe maps (an atomic so
  /// capacity checks never take every stripe lock).
  std::atomic<std::size_t> live_sites_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> warm_offers_{0};
  std::atomic<std::uint64_t> checks_run_{0};
  std::atomic<std::uint64_t> check_failures_{0};
  /// Serializes evictors (capacity + TTL sweeps scan the whole table).
  std::mutex evict_mu_;
  /// Warm-start + persistence engine (always constructed; file-backed
  /// only when decision_cache_dir is set).
  std::unique_ptr<ShardedDecisionStore> store_;
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
  std::thread maintenance_;
};

/// The original single-site-table facade (Fig. 1 / Fig. 2): the shape of
/// code the paper's run-time compiler would emit for a sequential
/// application. Now a thin veneer over Runtime — new code should use
/// Runtime directly (concurrent submission, decision persistence).
class SmartAppsRuntime {
 public:
  struct Options {
    unsigned threads = 0;      ///< 0 = hardware concurrency
    bool calibrate = true;     ///< micro-calibrate MachineCoeffs at startup
    AdaptiveOptions adaptive{};
  };

  SmartAppsRuntime() : SmartAppsRuntime(Options{}) {}
  explicit SmartAppsRuntime(Options opt) : rt_(to_runtime_options(opt)) {}

  [[nodiscard]] ThreadPool& pool() { return rt_.pool(); }
  [[nodiscard]] const MachineCoeffs& coeffs() const { return rt_.coeffs(); }

  /// The adaptive reducer for the loop site `name` (created on first use).
  [[nodiscard]] AdaptiveReducer& reducer(const std::string& name) {
    return rt_.site(name);
  }

  /// Per-site summary: decisions, re-characterizations, switches.
  [[nodiscard]] std::string report() const { return rt_.report(); }

  /// The multi-site runtime underneath.
  [[nodiscard]] Runtime& runtime() { return rt_; }

 private:
  [[nodiscard]] static RuntimeOptions to_runtime_options(const Options& o) {
    RuntimeOptions r;
    r.threads = o.threads;
    r.calibrate = o.calibrate;
    r.adaptive = o.adaptive;
    return r;
  }

  Runtime rt_;
};

}  // namespace sapp
