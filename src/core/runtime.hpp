// sapp::Runtime — the process-wide multi-site adaptive runtime (Fig. 1 at
// scale), plus the SmartAppsRuntime single-threaded facade it grew from.
//
// One Runtime serves every reduction loop site of an application:
//
//     sapp::Runtime rt({.threads = 8, .decision_cache_path = "sapp.cache"});
//     // any application thread, concurrently:
//     rt.submit("Moldyn/ComputeForces", input, forces);
//     rt.submit(input_with_loop_id, out);   // site id from pattern.loop_id
//     ...
//     rt.save_decisions("sapp.cache");      // warm-start the next run
//
// Concurrency model:
//   * the site table is lock-striped: submissions to distinct sites never
//     contend on one global lock, and a site is created exactly once no
//     matter how many threads race to its first submission;
//   * submissions to the same site serialize in arrival order (an
//     AdaptiveReducer is stateful: monitor, plan, feedback counters);
//   * the sequential per-site phases — characterization, planning, drift
//     monitoring — run concurrently across sites; only Scheme::execute
//     regions are arbitrated onto the one shared ThreadPool (a pool region
//     must be dispatched by one thread at a time).
//
// Persistence: learned decisions (scheme + PatternSignature per site) are
// saved/loaded as a JSON decision cache (src/core/decision_cache.hpp), so
// a warm start skips the first-invocation characterization — measured by
// `sapp_repro adaptive_sites` and gated in CI.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/adaptive.hpp"
#include "core/decision_cache.hpp"

namespace sapp {

/// Construction knobs of the multi-site runtime.
struct RuntimeOptions {
  unsigned threads = 0;   ///< 0 = hardware concurrency
  bool calibrate = true;  ///< micro-calibrate MachineCoeffs at startup
  AdaptiveOptions adaptive{};
  /// Path of the persistent decision cache. When non-empty, the
  /// constructor loads it (silently starting cold if missing/corrupt) and
  /// `save_decisions()` with no argument writes back to it.
  std::string decision_cache_path;
  /// Skip calibration and use these coefficients (tests, experiments
  /// wanting identical deciders across Runtime instances).
  const MachineCoeffs* coeffs = nullptr;
};

/// Process-wide registry of adaptive reduction sites sharing one pool.
class Runtime {
 public:
  Runtime() : Runtime(RuntimeOptions{}) {}
  explicit Runtime(RuntimeOptions opt);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] ThreadPool& pool() { return *pool_; }
  [[nodiscard]] const MachineCoeffs& coeffs() const { return coeffs_; }
  [[nodiscard]] unsigned threads() const;

  /// Execute one invocation of loop site `site_id`, accumulating into
  /// `out`. The site is created on first use. Safe to call from any
  /// number of application threads concurrently.
  SchemeResult submit(std::string_view site_id, const ReductionInput& in,
                      std::span<double> out);

  /// As above with the site id taken from `in.pattern.loop_id`. Patterns
  /// carrying no loop_id share a dimension-keyed anonymous site
  /// ("<anonymous dim=N>") — good enough to keep structurally different
  /// untagged loops apart, but tag loop_id for stable identity.
  SchemeResult submit(const ReductionInput& in, std::span<double> out);

  /// The site's reducer, created on first use. Reading reducer state is
  /// NOT synchronized against concurrent submit() calls to the same site —
  /// use from single-threaded phases (startup, reporting, tests).
  [[nodiscard]] AdaptiveReducer& site(std::string_view site_id);

  [[nodiscard]] std::size_t site_count() const;
  /// All site ids, sorted (stable report/serialization order).
  [[nodiscard]] std::vector<std::string> site_ids() const;
  /// Per-site summary: decisions, re-characterizations, switches.
  [[nodiscard]] std::string report() const;

  // ---- persistent decision cache ------------------------------------
  /// Snapshot of every site that has settled on a scheme (keyed by site
  /// id; signature = the most recently observed pattern).
  [[nodiscard]] DecisionCache snapshot_decisions() const;
  /// Save the snapshot to `path`. Returns false (with `error`) on I/O
  /// failure.
  bool save_decisions(const std::string& path,
                      std::string* error = nullptr) const;
  /// Save to `RuntimeOptions::decision_cache_path`.
  bool save_decisions(std::string* error = nullptr) const;
  /// Merge `path` into the warm-start cache consulted when sites are
  /// created. Entries for already-created sites do not apply retroactively.
  bool load_decisions(const std::string& path, std::string* error = nullptr);
  /// The decisions currently offered to newly created sites.
  [[nodiscard]] std::size_t warm_entries() const;

 private:
  struct Site {
    std::mutex mu;  // serializes submissions to this site
    std::unique_ptr<AdaptiveReducer> reducer;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Site>, std::less<>> sites;
  };
  /// Stripe count: a small power of two; striping only needs to keep
  /// unrelated sites off one cache-hot mutex, not scale to thousands.
  static constexpr std::size_t kStripes = 16;

  [[nodiscard]] static std::size_t stripe_of(std::string_view id);
  Site& site_slot(std::string_view id);
  /// Visit every site in sorted id order, holding both the stripe lock
  /// and the site's own mutex — safe against concurrent submit().
  template <typename Fn>  // Fn(const std::string&, const AdaptiveReducer&)
  void for_each_site(Fn&& fn) const;

  RuntimeOptions opt_;
  std::unique_ptr<ThreadPool> pool_;
  MachineCoeffs coeffs_;
  /// Arbitrates Scheme::execute regions on the shared pool across sites.
  std::mutex pool_mu_;
  std::array<Stripe, kStripes> stripes_;
  /// Warm-start cache (loaded entries); guarded by warm_mu_ because
  /// load_decisions may race with site creation.
  mutable std::mutex warm_mu_;
  DecisionCache warm_;
};

/// The original single-site-table facade (Fig. 1 / Fig. 2): the shape of
/// code the paper's run-time compiler would emit for a sequential
/// application. Now a thin veneer over Runtime — new code should use
/// Runtime directly (concurrent submission, decision persistence).
class SmartAppsRuntime {
 public:
  struct Options {
    unsigned threads = 0;      ///< 0 = hardware concurrency
    bool calibrate = true;     ///< micro-calibrate MachineCoeffs at startup
    AdaptiveOptions adaptive{};
  };

  SmartAppsRuntime() : SmartAppsRuntime(Options{}) {}
  explicit SmartAppsRuntime(Options opt) : rt_(to_runtime_options(opt)) {}

  [[nodiscard]] ThreadPool& pool() { return rt_.pool(); }
  [[nodiscard]] const MachineCoeffs& coeffs() const { return rt_.coeffs(); }

  /// The adaptive reducer for the loop site `name` (created on first use).
  [[nodiscard]] AdaptiveReducer& reducer(const std::string& name) {
    return rt_.site(name);
  }

  /// Per-site summary: decisions, re-characterizations, switches.
  [[nodiscard]] std::string report() const { return rt_.report(); }

  /// The multi-site runtime underneath.
  [[nodiscard]] Runtime& runtime() { return rt_; }

 private:
  [[nodiscard]] static RuntimeOptions to_runtime_options(const Options& o) {
    RuntimeOptions r;
    r.threads = o.threads;
    r.calibrate = o.calibrate;
    r.adaptive = o.adaptive;
    return r;
  }

  Runtime rt_;
};

}  // namespace sapp
