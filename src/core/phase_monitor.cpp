#include "core/phase_monitor.hpp"

#include <cmath>
#include <cstdlib>

namespace sapp {

PatternSignature PatternSignature::of(const AccessPattern& p,
                                      std::size_t sample_stride) {
  PatternSignature s;
  s.dim = p.dim;
  s.iterations = p.refs.rows();
  s.refs = p.refs.nnz();
  const auto& idx = p.refs.indices();
  if (sample_stride == 0) sample_stride = 1;
  for (std::size_t j = 0; j < idx.size(); j += sample_stride) {
    s.sampled_index_sum += idx[j];
    s.sampled_index_xor ^= (static_cast<std::uint64_t>(idx[j]) * 0x9E3779B9u)
                           << (j % 17);
  }
  return s;
}

namespace {
double rel_change(double a, double b) {
  const double mx = a > b ? a : b;
  if (mx <= 0.0) return 0.0;
  return std::abs(a - b) / mx;
}
}  // namespace

bool PhaseMonitor::observe(const PatternSignature& sig) {
  if (!have_base_) {
    base_ = sig;
    last_ = sig;
    have_base_ = true;
    return false;
  }
  // Structural change (different loop extent/array) always triggers.
  if (sig.dim != base_.dim) {
    accumulated_ = threshold_;
    return true;
  }
  // Incremental accumulation of the change vs. the previous invocation —
  // slow continuous drift adds up, transient jitter does not reach the
  // threshold.
  const double step =
      0.5 * rel_change(static_cast<double>(sig.refs),
                       static_cast<double>(last_.refs)) +
      0.25 * rel_change(static_cast<double>(sig.iterations),
                        static_cast<double>(last_.iterations)) +
      0.25 * rel_change(static_cast<double>(sig.sampled_index_sum),
                        static_cast<double>(last_.sampled_index_sum));
  accumulated_ += step;
  last_ = sig;
  return accumulated_ >= threshold_;
}

}  // namespace sapp
