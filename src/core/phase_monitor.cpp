#include "core/phase_monitor.hpp"

#include <cmath>
#include <cstdlib>

namespace sapp {

PatternSignature PatternSignature::of(const AccessPattern& p,
                                      std::size_t sample_stride) {
  PatternSignature s;
  s.dim = p.dim;
  s.iterations = p.refs.rows();
  s.refs = p.refs.nnz();
  const auto& idx = p.refs.indices();
  if (sample_stride == 0) sample_stride = 1;
  for (std::size_t j = 0; j < idx.size(); j += sample_stride) {
    s.sampled_index_sum += idx[j];
    s.sampled_index_xor ^= (static_cast<std::uint64_t>(idx[j]) * 0x9E3779B9u)
                           << (j % 17);
  }
  return s;
}

namespace {
double rel_change(double a, double b) {
  const double mx = a > b ? a : b;
  if (mx <= 0.0) return 0.0;
  return std::abs(a - b) / mx;
}
}  // namespace

bool PhaseMonitor::observe(const PatternSignature& sig) {
  if (!have_base_) {
    base_ = sig;
    last_ = sig;
    have_base_ = true;
    return false;
  }
  // Structural change (different loop extent/array) always triggers.
  if (sig.dim != base_.dim) {
    accumulated_ = opt_.pattern_threshold;
    return true;
  }
  // Incremental accumulation of the change vs. the previous invocation —
  // slow continuous drift adds up, transient jitter does not reach the
  // threshold.
  const double step =
      0.5 * rel_change(static_cast<double>(sig.refs),
                       static_cast<double>(last_.refs)) +
      0.25 * rel_change(static_cast<double>(sig.iterations),
                        static_cast<double>(last_.iterations)) +
      0.25 * rel_change(static_cast<double>(sig.sampled_index_sum),
                        static_cast<double>(last_.sampled_index_sum));
  accumulated_ += step;
  last_ = sig;
  return accumulated_ >= opt_.pattern_threshold;
}

bool PhaseMonitor::observe_time(double seconds) {
  if (!(seconds > 0.0) || !std::isfinite(seconds)) return false;
  // Establish the baseline from the first `time_warmup` observations after
  // a rebase (a seeded baseline skips this: history is the baseline).
  if (!time_seeded_ && time_samples_ < opt_.time_warmup) {
    ++time_samples_;
    time_baseline_ +=
        (seconds - time_baseline_) / static_cast<double>(time_samples_);
    time_ewma_ = time_baseline_;
    return false;
  }
  if (time_baseline_ <= 0.0) return false;
  time_ewma_ = opt_.time_alpha * seconds + (1.0 - opt_.time_alpha) * time_ewma_;
  const bool ewma_breach =
      time_ewma_ > opt_.time_drift_ratio * time_baseline_ ||
      time_baseline_ > opt_.time_drift_ratio * time_ewma_;
  // The raw sample must breach too: a single huge spike (preemption, page
  // fault storm) poisons the EWMA for several invocations, and without
  // this check the decaying average alone would stretch the streak past
  // the patience and fire on what was one bad invocation.
  const bool sample_breach = seconds > opt_.time_drift_ratio * time_baseline_ ||
                             time_baseline_ > opt_.time_drift_ratio * seconds;
  const bool above_noise =
      std::abs(time_ewma_ - time_baseline_) > opt_.time_noise_floor_s;
  if (ewma_breach && sample_breach && above_noise) {
    ++time_streak_;
  } else {
    time_streak_ = 0;
  }
  return time_streak_ >= opt_.time_drift_patience;
}

}  // namespace sapp
