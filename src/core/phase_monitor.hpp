// Drift detection for dynamic applications (§4).
//
// "If the program is dynamic then changes in the access pattern will be
//  collected, as much as possible, in an incremental manner. When the
//  changes are significant enough (a threshold that is tested at run-time)
//  then a re-characterization of the reference pattern is needed."
//
// `PhaseMonitor` watches one loop site across program phases through two
// independent detectors, either of which demands re-characterization:
//
//   * **pattern drift** — a cheap `PatternSignature` of each invocation's
//     access pattern is compared against the previous one; relative change
//     accumulates, so slow continuous drift adds up while transient jitter
//     does not (`pattern_threshold`);
//   * **time drift** — an EWMA of the measured per-invocation execution
//     time is compared against the baseline established when the current
//     scheme was adopted; a sustained ratio breach in either direction
//     (`time_drift_ratio` for `time_drift_patience` consecutive
//     invocations) means the input has moved into a phase the current
//     decision was not made for, even when the fingerprint looks stable
//     (e.g. a connectivity reshuffle that only destroys locality).
//
// The time baseline can also be **seeded from persisted phase history**
// (`seed_time_baseline`), so a warm-started site arrives with the detector
// already armed and re-decides within the first monitored window when the
// cached history contradicts fresh measurements. See docs/adaptivity.md
// for the full decision lifecycle.
#pragma once

#include <cstdint>

#include "reductions/access_pattern.hpp"

namespace sapp {

/// O(sampled refs) signature of a pattern: sizes plus a sampled index sum,
/// robust to small perturbations but sensitive to structural change.
struct PatternSignature {
  std::size_t dim = 0;
  std::size_t iterations = 0;
  std::size_t refs = 0;
  std::uint64_t sampled_index_sum = 0;
  std::uint64_t sampled_index_xor = 0;

  static PatternSignature of(const AccessPattern& p,
                             std::size_t sample_stride = 64);
};

/// Tunables of the two drift detectors.
struct PhaseMonitorOptions {
  /// Accumulated relative pattern change (0..1 scale per component) that
  /// triggers re-characterization.
  double pattern_threshold = 0.25;
  /// EWMA smoothing factor for per-invocation execution times (weight of
  /// the newest sample).
  double time_alpha = 0.4;
  /// EWMA-vs-baseline ratio (either direction) counted as a drifting
  /// observation.
  double time_drift_ratio = 2.0;
  /// Consecutive drifting observations before the time detector fires.
  int time_drift_patience = 3;
  /// Observations averaged into the baseline after a rebase before the
  /// detector starts judging (ignored when the baseline is seeded from
  /// cached phase history).
  int time_warmup = 3;
  /// Absolute |EWMA - baseline| floor below which observations never count
  /// as drifting: sub-floor regions are dominated by dispatch and timer
  /// noise, and pattern drift still covers them.
  double time_noise_floor_s = 100e-6;

  /// Invocations a freshly (re)based site needs before the time detector
  /// can possibly fire — "the first monitored window".
  [[nodiscard]] int window() const { return time_warmup + time_drift_patience; }
};

/// Accumulates drift between the state at the last (re)characterization
/// and the current invocation, in both pattern and time.
class PhaseMonitor {
 public:
  explicit PhaseMonitor(PhaseMonitorOptions opt = {}) : opt_(opt) {}
  /// Pattern-threshold-only convenience (time detector keeps defaults).
  explicit PhaseMonitor(double pattern_threshold)
      : PhaseMonitor(PhaseMonitorOptions{.pattern_threshold =
                                             pattern_threshold}) {}

  /// Rebase on a freshly characterized pattern; resets both detectors.
  void rebase(const PatternSignature& sig) {
    base_ = sig;
    last_ = sig;
    have_base_ = true;
    accumulated_ = 0.0;
    reset_time();
  }

  /// Reset only the time detector (used on a scheme switch: the old
  /// scheme's baseline says nothing about the new scheme's times).
  void reset_time() {
    time_baseline_ = 0.0;
    time_ewma_ = 0.0;
    time_samples_ = 0;
    time_streak_ = 0;
    time_seeded_ = false;
  }

  /// Arm the time detector with a baseline from persisted phase history
  /// (median of the cached per-invocation times). No warmup is taken:
  /// fresh measurements are judged against the history immediately, so a
  /// contradicted warm start re-characterizes within the first window.
  void seed_time_baseline(double seconds) {
    reset_time();
    if (seconds <= 0.0) return;
    time_baseline_ = seconds;
    time_ewma_ = seconds;
    time_seeded_ = true;
  }

  /// Observe the pattern of the next invocation; returns true when the
  /// accumulated drift demands re-characterization.
  bool observe(const PatternSignature& sig);

  /// Observe the measured execution time of the invocation that just ran;
  /// returns true when the EWMA has drifted from the baseline by more than
  /// `time_drift_ratio` (and `time_noise_floor_s`) for
  /// `time_drift_patience` consecutive observations.
  bool observe_time(double seconds);

  [[nodiscard]] double accumulated() const { return accumulated_; }
  [[nodiscard]] double threshold() const { return opt_.pattern_threshold; }
  [[nodiscard]] bool has_base() const { return have_base_; }
  /// Signature at the last rebase (the characterized pattern).
  [[nodiscard]] const PatternSignature& base() const { return base_; }
  /// Signature of the most recently observed invocation.
  [[nodiscard]] const PatternSignature& last() const { return last_; }

  /// Per-invocation time baseline the EWMA is judged against (0 until the
  /// warmup completes or a seed arrives).
  [[nodiscard]] double time_baseline() const { return time_baseline_; }
  [[nodiscard]] double time_ewma() const { return time_ewma_; }
  /// Consecutive drifting observations so far.
  [[nodiscard]] int time_streak() const { return time_streak_; }
  /// True when the baseline came from persisted phase history.
  [[nodiscard]] bool time_seeded() const { return time_seeded_; }
  [[nodiscard]] const PhaseMonitorOptions& options() const { return opt_; }

 private:
  PhaseMonitorOptions opt_;
  double accumulated_ = 0.0;
  PatternSignature base_{};
  PatternSignature last_{};
  bool have_base_ = false;

  double time_baseline_ = 0.0;
  double time_ewma_ = 0.0;
  int time_samples_ = 0;
  int time_streak_ = 0;
  bool time_seeded_ = false;
};

}  // namespace sapp
