// Drift detection for dynamic applications (§4).
//
// "If the program is dynamic then changes in the access pattern will be
//  collected, as much as possible, in an incremental manner. When the
//  changes are significant enough (a threshold that is tested at run-time)
//  then a re-characterization of the reference pattern is needed."
//
// `PhaseMonitor` keeps a cheap signature of the last characterized pattern
// and accumulates relative change across invocations; when the accumulated
// change passes the threshold, the adaptive reducer re-characterizes and
// re-decides.
#pragma once

#include <cstdint>

#include "reductions/access_pattern.hpp"

namespace sapp {

/// O(sampled refs) signature of a pattern: sizes plus a sampled index sum,
/// robust to small perturbations but sensitive to structural change.
struct PatternSignature {
  std::size_t dim = 0;
  std::size_t iterations = 0;
  std::size_t refs = 0;
  std::uint64_t sampled_index_sum = 0;
  std::uint64_t sampled_index_xor = 0;

  static PatternSignature of(const AccessPattern& p,
                             std::size_t sample_stride = 64);
};

/// Accumulates drift between the signature at the last (re)characterization
/// and the current one.
class PhaseMonitor {
 public:
  /// `threshold`: accumulated relative change (0..1 scale per component)
  /// that triggers re-characterization.
  explicit PhaseMonitor(double threshold = 0.25) : threshold_(threshold) {}

  /// Rebase on a freshly characterized pattern.
  void rebase(const PatternSignature& sig) {
    base_ = sig;
    last_ = sig;
    have_base_ = true;
    accumulated_ = 0.0;
  }

  /// Observe the pattern of the next invocation; returns true when the
  /// accumulated drift demands re-characterization.
  bool observe(const PatternSignature& sig);

  [[nodiscard]] double accumulated() const { return accumulated_; }
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] bool has_base() const { return have_base_; }
  /// Signature at the last rebase (the characterized pattern).
  [[nodiscard]] const PatternSignature& base() const { return base_; }
  /// Signature of the most recently observed invocation.
  [[nodiscard]] const PatternSignature& last() const { return last_; }

 private:
  double threshold_;
  double accumulated_ = 0.0;
  PatternSignature base_{};
  PatternSignature last_{};
  bool have_base_ = false;
};

}  // namespace sapp
