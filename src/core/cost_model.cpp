#include "core/cost_model.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "reductions/kernels.hpp"
#include "reductions/registry.hpp"
#include "reductions/scheme_hash.hpp"

namespace sapp {

namespace {

/// ns per op of `body(n)` measured over enough repetitions to exceed ~2 ms.
template <typename F>
double measure_ns(std::size_t n, F&& body) {
  Timer t;
  std::size_t reps = 0;
  do {
    body(n);
    ++reps;
  } while (t.seconds() < 2e-3);
  return t.seconds() * 1e9 / static_cast<double>(reps * n);
}

}  // namespace

MachineCoeffs MachineCoeffs::calibrate(ThreadPool& pool) {
  MachineCoeffs mc;
  constexpr std::size_t kN = 1 << 16;
  std::vector<double> a(kN, 1.0), b(kN, 2.0);
  std::vector<std::uint32_t> ix(kN);
  for (std::size_t i = 0; i < kN; ++i) ix[i] = static_cast<std::uint32_t>(
      (i * 2654435761u) % kN);

  // Init and Merge are exactly the kernel-backend primitives the schemes
  // execute, so calibrate through the dispatched backend: an AVX-512 host
  // gets AVX-512 Init/Merge coefficients and the ranking shifts with it.
  const kernels::KernelOps& K = kernels::active();
  mc.ns_init = measure_ns(kN, [&](std::size_t n) {
    K.fill(a.data(), n, 0.0);
  });
  mc.ns_update = measure_ns(kN, [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) a[ix[i]] += b[i];
  });
  // Strided/random updates over a working set larger than cache.
  static std::vector<double> big(1 << 22, 0.0);
  mc.ns_update_far = measure_ns(kN, [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
      big[(i * 40503u + 77u) % big.size()] += b[i];
  });
  mc.ns_merge = measure_ns(kN, [&](std::size_t n) {
    K.merge_sum(a.data(), b.data(), n);
  }) * 2.0;  // merge reads a remote copy and writes: ~2 streams
  // 3 streams per merged element: read acc, read src, write acc.
  mc.merge_gbps = 3.0 * sizeof(double) / (mc.ns_merge / 2.0);
  mc.ns_flop = measure_ns(kN, [&](std::size_t n) {
    double x = 1.0;
    for (std::size_t i = 0; i < n; ++i) x = x * 0.999 + 0.001;
    a[0] = x;
  });
  std::atomic<double> acc{0.0};
  mc.ns_atomic = measure_ns(kN, [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      double cur = acc.load(std::memory_order_relaxed);
      while (!acc.compare_exchange_weak(cur, cur + 1.0,
                                        std::memory_order_relaxed)) {
      }
    }
  });
  // Hash probe cost: measured on the library's real open-addressing table
  // at a realistic size/load instead of guessed.
  {
    HashScheme<>::Table tb;
    tb.reset(std::size_t{1} << 15);
    mc.ns_hash = measure_ns(kN, [&](std::size_t n) {
      for (std::size_t i = 0; i < n; ++i)
        tb.accumulate(ix[i] & 0x2FFF, 1.0);
    });
  }
  mc.ns_link = mc.ns_update * 0.6;
  mc.ns_slot = mc.ns_update * 0.4;
  mc.ns_inspect = mc.ns_update * 1.6;
  mc.ns_alloc = mc.ns_init * 1.2;

  // Fork-join dispatch: one empty parallel region.
  Timer t;
  constexpr int kReps = 50;
  for (int r = 0; r < kReps; ++r) pool.run([](unsigned) {});
  mc.fork_join_us = t.seconds() * 1e6 / kReps;
  return mc;
}

CostPrediction predict_cost(SchemeKind kind, const PatternStats& s,
                            unsigned body_flops, const MachineCoeffs& mc) {
  CostPrediction c;
  c.scheme = kind;
  const double P = static_cast<double>(s.threads);
  const double refs = static_cast<double>(s.refs);
  const double iters = static_cast<double>(s.iterations);
  const double dim = static_cast<double>(s.dim);
  const double touched = s.touched_per_thread;
  const double flops = static_cast<double>(body_flops);
  const double body_ns = iters / P * flops * mc.ns_flop;
  const double fj = mc.fork_join_us * 1e3;  // ns per phase dispatch

  // Work per reference depends on whether the accumulation target fits in
  // cache: private full-size copies of a large array thrash, compact
  // buffers do not.
  const auto update_cost = [&](double working_set_elems) {
    return working_set_elems * sizeof(double) >
                   256.0 * 1024  // roughly per-core L2 share
               ? mc.ns_update_far
               : mc.ns_update;
  };

  switch (kind) {
    case SchemeKind::kRep:
      // Plan: allocate P full private copies.
      c.plan_s = P * dim * mc.ns_alloc * 1e-9;
      // Every thread initializes and merges a full copy; concurrent threads
      // share memory bandwidth, modeled as sqrt(P) effective parallelism
      // for the bandwidth-bound phases.
      // Init: each thread sweeps its own full copy concurrently; the
      // bandwidth factor max(1, P/2) models the shared memory system.
      c.init_s = (dim * mc.ns_init * std::max(1.0, P / 2) / P + fj) * 1e-9;
      c.loop_s = (refs / P * update_cost(dim) + body_ns + fj) * 1e-9;
      // Merge: dim*P element-reads spread over P threads = dim per thread,
      // again bandwidth-scaled.
      c.merge_s = (dim * mc.ns_merge * std::max(1.0, P / 2) + fj) * 1e-9;
      break;
    case SchemeKind::kLinked:
      // Plan: allocate P value+link copies (1.5x the data of rep).
      c.plan_s = P * dim * mc.ns_alloc * 1.5 * 1e-9;
      c.init_s = (touched * mc.ns_init + fj) * 1e-9;
      c.loop_s =
          (refs / P * (update_cost(dim) + mc.ns_link) + body_ns + fj) * 1e-9;
      c.merge_s = (touched * mc.ns_atomic + fj) * 1e-9;
      break;
    case SchemeKind::kSelective: {
      const double nshared = s.shared_fraction * static_cast<double>(s.distinct);
      // Plan: classify every reference + build the slot map + compact
      // buffers.
      c.plan_s =
          (refs * mc.ns_inspect + dim * mc.ns_init + P * nshared * mc.ns_alloc) *
          1e-9;
      c.init_s = (nshared * mc.ns_init + fj) * 1e-9;
      c.loop_s =
          (refs / P * (update_cost(nshared + dim / P) + mc.ns_slot) +
           body_ns + fj) *
          1e-9;
      c.merge_s = (nshared * mc.ns_merge + fj) * 1e-9;
      break;
    }
    case SchemeKind::kLocalWrite: {
      c.applicable = s.lw_legal;
      if (!c.applicable) break;
      // Plan: per-owner iteration lists (one inspector sweep).
      c.plan_s = refs * mc.ns_inspect * 1e-9;
      // Replicated iterations: each owner replica re-runs the body and
      // scans all references of the iteration; imbalance stretches the
      // critical path.
      const double repl = std::max(1.0, s.lw_replication);
      const double scan =
          refs * repl / P * (mc.ns_update * 0.5) /* scan-only refs */ +
          refs / P * update_cost(dim / P);
      c.loop_s = ((body_ns * repl + scan) * s.lw_imbalance + fj) * 1e-9;
      break;
    }
    case SchemeKind::kHash: {
      const double cap = std::min(dim, 2.0 * refs / P);
      // Probes get colder as the table outgrows the cache.
      const double probe =
          mc.ns_hash + (update_cost(cap * 1.5) - mc.ns_update);
      c.plan_s = P * cap * mc.ns_alloc * 1.5 * 1e-9;
      c.init_s = (cap * mc.ns_init + fj) * 1e-9;
      c.loop_s = (refs / P * probe + body_ns + fj) * 1e-9;
      c.merge_s = (touched * mc.ns_atomic + fj) * 1e-9;
      break;
    }
    case SchemeKind::kAtomic:
      c.loop_s = (refs / P * mc.ns_atomic * (1.0 + s.chd_gini * P) +
                  body_ns + fj) *
                 1e-9;
      break;
    case SchemeKind::kCritical:
      c.loop_s = (refs / P * mc.ns_atomic * 4.0 * P + body_ns + fj) * 1e-9;
      break;
    case SchemeKind::kSeq:
      c.loop_s = (refs * update_cost(dim) + iters * flops * mc.ns_flop) * 1e-9;
      break;
  }
  return c;
}

std::vector<CostPrediction> predict_all(const PatternStats& s,
                                        unsigned body_flops,
                                        const MachineCoeffs& mc) {
  std::vector<CostPrediction> out;
  for (SchemeKind k : candidate_scheme_kinds())
    out.push_back(predict_cost(k, s, body_flops, mc));
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    const double ta = a.applicable ? a.total()
                                   : std::numeric_limits<double>::infinity();
    const double tb = b.applicable ? b.total()
                                   : std::numeric_limits<double>::infinity();
    return ta < tb;
  });
  return out;
}

}  // namespace sapp
