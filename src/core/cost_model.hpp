// Per-scheme analytic cost models — the ToolBox "Performance Models /
// Predictor" of Fig. 2.
//
// Each model predicts the wall time of one invocation of a scheme from the
// PatternStats and a small set of machine coefficients. The coefficients can
// be micro-calibrated on the host at startup (`MachineCoeffs::calibrate`),
// which is exactly the paper's "application and system specific databases
// ... supported by architectural and performance models".
#pragma once

#include <string>
#include <vector>

#include "core/characterize.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

class ThreadPool;

/// Host coefficients, all in nanoseconds per unit.
struct MachineCoeffs {
  double ns_update = 1.2;    ///< private-array accumulate (hit-dominated)
  double ns_update_far = 2.5;///< shared/large-array accumulate (miss-prone)
  double ns_init = 0.35;     ///< per-element bulk initialization
  double ns_merge = 1.8;     ///< per-element per-copy merge (read+add)
  double ns_atomic = 8.0;    ///< contended atomic read-modify-write
  double ns_hash = 4.0;      ///< hash probe+accumulate
  double ns_flop = 0.7;      ///< one body multiply-add
  double ns_link = 0.8;      ///< ll first-touch link maintenance
  double ns_slot = 0.5;      ///< sel slot-map indirection per reference
  double ns_inspect = 2.0;   ///< inspector work per reference (lw/sel)
  double ns_alloc = 0.4;     ///< private-storage allocation per element
  double fork_join_us = 15;  ///< per parallel phase dispatch overhead
  /// Merge-kernel streaming bandwidth (GB/s moved: read acc + read src +
  /// write acc per element) as measured on the active backend. Metadata
  /// for results; ns_init/ns_merge already embed it.
  double merge_gbps = 0.0;

  /// Coefficients measured on this host with short micro-loops (~10 ms).
  /// Init and Merge run through the active kernel backend
  /// (reductions/kernels.hpp), so the predictions — and therefore the
  /// scheme ranking — track whatever ISA dispatch selected.
  static MachineCoeffs calibrate(ThreadPool& pool);
  /// Conservative defaults (used when calibration is disabled).
  static MachineCoeffs defaults() { return {}; }
};

/// Predicted phase breakdown for one scheme invocation, in seconds.
/// `plan_s` is the inspector/allocation cost the run-time system pays when
/// it adopts the scheme (charged once per characterization; included in
/// total() because the Fig. 3 ranking charges it too).
struct CostPrediction {
  SchemeKind scheme{};
  double plan_s = 0.0;
  double init_s = 0.0;
  double loop_s = 0.0;
  double merge_s = 0.0;
  bool applicable = true;

  [[nodiscard]] double total() const {
    return plan_s + init_s + loop_s + merge_s;
  }
};

/// Predict one invocation of `kind` on `stats` using `P = stats.threads`
/// workers. `body_flops` comes from the pattern.
[[nodiscard]] CostPrediction predict_cost(SchemeKind kind,
                                          const PatternStats& stats,
                                          unsigned body_flops,
                                          const MachineCoeffs& mc);

/// Predict all candidate schemes, sorted ascending by total cost
/// (inapplicable schemes sort last with +inf).
[[nodiscard]] std::vector<CostPrediction> predict_all(
    const PatternStats& stats, unsigned body_flops, const MachineCoeffs& mc);

// The cluster-level extension of this predictor — pricing the distributed
// strategies (message-combining, replication, owner-computes) over N nodes
// connected by a link model — lives in core/distributed_cost.hpp, layered
// on the task-graph simulator of sim/cluster.hpp.

}  // namespace sapp
