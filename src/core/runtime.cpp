#include "core/runtime.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <thread>

namespace sapp {

Runtime::Runtime(RuntimeOptions opt) : opt_(std::move(opt)) {
  unsigned n = opt_.threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 2;
  }
  pool_ = std::make_unique<ThreadPool>(n);
  if (opt_.coeffs != nullptr)
    coeffs_ = *opt_.coeffs;
  else
    coeffs_ = opt_.calibrate ? MachineCoeffs::calibrate(*pool_)
                             : MachineCoeffs::defaults();
  if (!opt_.decision_cache_path.empty()) {
    // A missing or corrupt cache is a cold start, never an error.
    (void)load_decisions(opt_.decision_cache_path);
  }
}

Runtime::~Runtime() = default;

unsigned Runtime::threads() const { return pool_->size(); }

std::size_t Runtime::stripe_of(std::string_view id) {
  return std::hash<std::string_view>{}(id) % kStripes;
}

Runtime::Site& Runtime::site_slot(std::string_view id) {
  Stripe& stripe = stripes_[stripe_of(id)];
  std::scoped_lock lk(stripe.mu);
  auto it = stripe.sites.find(id);
  if (it == stripe.sites.end()) {
    std::string key(id);
    auto site = std::make_unique<Site>();
    site->reducer =
        std::make_unique<AdaptiveReducer>(*pool_, coeffs_, opt_.adaptive);
    site->reducer->set_pool_arbiter(&pool_mu_);
    {
      std::scoped_lock wl(warm_mu_);
      if (const CachedDecision* cached = warm_.find(id); cached != nullptr)
        site->reducer->warm_start(*cached);
    }
    it = stripe.sites.emplace(std::move(key), std::move(site)).first;
  }
  return *it->second;
}

SchemeResult Runtime::submit(std::string_view site_id,
                             const ReductionInput& in,
                             std::span<double> out) {
  Site& s = site_slot(site_id);
  std::scoped_lock lk(s.mu);
  return s.reducer->invoke(in, out);
}

SchemeResult Runtime::submit(const ReductionInput& in,
                             std::span<double> out) {
  if (!in.pattern.loop_id.empty()) return submit(in.pattern.loop_id, in, out);
  // Untagged patterns fall back to a dimension-keyed anonymous site, so
  // two structurally different untagged loops alternating through here do
  // not share one drift monitor and re-characterize on every invocation.
  // Same-dimension loops still collide — tag loop_id for stable identity.
  return submit("<anonymous dim=" + std::to_string(in.pattern.dim) + ">", in,
                out);
}

AdaptiveReducer& Runtime::site(std::string_view site_id) {
  return *site_slot(site_id).reducer;
}

std::size_t Runtime::site_count() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::scoped_lock lk(stripe.mu);
    n += stripe.sites.size();
  }
  return n;
}

std::vector<std::string> Runtime::site_ids() const {
  std::vector<std::string> ids;
  for (const auto& stripe : stripes_) {
    std::scoped_lock lk(stripe.mu);
    for (const auto& [id, site] : stripe.sites) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

template <typename Fn>
void Runtime::for_each_site(Fn&& fn) const {
  for (const auto& id : site_ids()) {
    // Resolve the site under the stripe lock, then release it before
    // waiting on the site mutex — otherwise a long in-flight reduction
    // would stall every submission hashing into the same stripe for its
    // whole duration. Sites are never erased, so the pointer stays valid.
    Site* site = nullptr;
    {
      const Stripe& stripe = stripes_[stripe_of(id)];
      std::scoped_lock lk(stripe.mu);
      const auto it = stripe.sites.find(id);
      if (it != stripe.sites.end()) site = it->second.get();
    }
    if (site == nullptr) continue;
    // The site mutex makes the read safe against a concurrent submit()
    // mutating the reducer.
    std::scoped_lock site_lk(site->mu);
    fn(id, static_cast<const AdaptiveReducer&>(*site->reducer));
  }
}

std::string Runtime::report() const {
  std::ostringstream os;
  os << "sapp::Runtime: " << pool_->size() << " threads, " << site_count()
     << " loop site(s)";
  {
    std::scoped_lock wl(warm_mu_);
    if (!warm_.empty()) os << ", " << warm_.size() << " cached decision(s)";
  }
  os << "\n";
  for_each_site([&](const std::string& id, const AdaptiveReducer& r) {
    os << "  site '" << id << "': ";
    if (r.invocations() == 0) {
      os << "never invoked\n";
      return;
    }
    os << to_string(r.current()) << " after " << r.invocations()
       << " invocation(s), " << r.recharacterizations()
       << " characterization(s), " << r.scheme_switches() << " switch(es)";
    if (r.time_drift_demotions() > 0)
      os << ", " << r.time_drift_demotions() << " time-drift demotion(s)";
    os << (r.warm_started() ? ", warm-started" : "") << "\n    "
       << r.decision().rationale << "\n";
  });
  return os.str();
}

DecisionCache Runtime::snapshot_decisions() const {
  DecisionCache cache;
  for_each_site([&](const std::string& id, const AdaptiveReducer& r) {
    if (r.invocations() == 0) return;  // nothing learned yet
    CachedDecision d;
    d.site = id;
    d.scheme = r.current();
    d.threads = pool_->size();
    // The most recently observed signature: what the next run's first
    // invocation is expected to look like.
    d.signature = r.monitor().last();
    // Prediction for the current scheme, so the warm-started next run
    // keeps the mispredict feedback loop armed (0 when unknown).
    for (const auto& cp : r.decision().predictions)
      if (cp.scheme == r.current()) d.predicted_total_s = cp.total();
    // Measured phase times under the current scheme (bounded ring): the
    // warm-started next run seeds its time-drift baseline from these, so
    // the feedback loop survives the restart armed with evidence.
    d.phase_times_s = r.phase_history();
    // Cumulative across warm restarts — a warm-started run inherits the
    // cache's evidence instead of resetting it to this run's count, and
    // the rationale stays the original decider justification.
    d.invocations = r.lifetime_invocations();
    d.rationale = r.decision().rationale;
    cache.put(std::move(d));
  });
  return cache;
}

bool Runtime::save_decisions(const std::string& path,
                             std::string* error) const {
  return snapshot_decisions().save(path, error);
}

bool Runtime::save_decisions(std::string* error) const {
  if (opt_.decision_cache_path.empty()) {
    if (error != nullptr) *error = "no decision_cache_path configured";
    return false;
  }
  return save_decisions(opt_.decision_cache_path, error);
}

bool Runtime::load_decisions(const std::string& path, std::string* error) {
  auto loaded = DecisionCache::load(path, error);
  if (!loaded.has_value()) return false;
  std::scoped_lock lk(warm_mu_);
  for (const auto& e : loaded->entries()) warm_.put(e);
  return true;
}

std::size_t Runtime::warm_entries() const {
  std::scoped_lock lk(warm_mu_);
  return warm_.size();
}

}  // namespace sapp
