#include "core/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <sstream>
#include <utility>

namespace sapp {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Runtime::Runtime(RuntimeOptions opt) : opt_(std::move(opt)) {
  unsigned n = opt_.threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 2;
  }
  pool_ = std::make_unique<ThreadPool>(n);
  if (opt_.coeffs != nullptr)
    coeffs_ = *opt_.coeffs;
  else
    coeffs_ = opt_.calibrate ? MachineCoeffs::calibrate(*pool_)
                             : MachineCoeffs::defaults();
  store_ = std::make_unique<ShardedDecisionStore>(DecisionStoreOptions{
      .dir = opt_.decision_cache_dir, .shards = opt_.decision_cache_shards});
  if (store_->persistent()) {
    // Missing or torn shards are cold shards, never an error.
    (void)store_->load();
  }
  if (!opt_.decision_cache_path.empty()) {
    // A missing or corrupt cache is a cold start, never an error.
    (void)load_decisions(opt_.decision_cache_path);
  }
  if (store_->persistent() || opt_.site_ttl_s > 0.0)
    maintenance_ = std::thread([this] { maintenance_loop(); });
}

Runtime::~Runtime() {
  stop_maintenance();
  // Clean shutdown drain: everything learned since the last tick reaches
  // the shard files before the site table is torn down.
  (void)flush_decisions();
}

void Runtime::stop_maintenance() {
  if (!maintenance_.joinable()) return;
  {
    std::scoped_lock lk(maint_mu_);
    maint_stop_ = true;
  }
  maint_cv_.notify_all();
  maintenance_.join();
}

void Runtime::maintenance_loop() {
  double interval_s = std::max(opt_.flush_interval_s, 1e-3);
  if (opt_.site_ttl_s > 0.0)
    interval_s = std::min(interval_s, std::max(opt_.site_ttl_s / 2, 1e-3));
  const auto interval = std::chrono::duration<double>(interval_s);
  std::unique_lock lk(maint_mu_);
  while (!maint_stop_) {
    maint_cv_.wait_for(lk, interval);
    if (maint_stop_) break;
    lk.unlock();
    if (opt_.site_ttl_s > 0.0 || opt_.max_sites > 0) (void)sweep();
    (void)flush_decisions();
    lk.lock();
  }
}

unsigned Runtime::threads() const { return pool_->size(); }

std::size_t Runtime::stripe_of(std::string_view id) {
  return std::hash<std::string_view>{}(id) % kStripes;
}

std::shared_ptr<Runtime::Site> Runtime::find_live(std::string_view id) const {
  const Stripe& stripe = stripes_[stripe_of(id)];
  std::scoped_lock lk(stripe.mu);
  const auto it = stripe.sites.find(id);
  return it != stripe.sites.end() ? it->second : nullptr;
}

std::shared_ptr<Runtime::Site> Runtime::site_slot(std::string_view id) {
  Stripe& stripe = stripes_[stripe_of(id)];
  {
    std::scoped_lock lk(stripe.mu);
    if (const auto it = stripe.sites.find(id); it != stripe.sites.end())
      return it->second;
  }
  // Creation path. Make room first (outside the stripe lock — eviction
  // takes stripe locks itself), so the table never grows past the cap by
  // more than the creations in flight.
  if (opt_.max_sites > 0) ensure_capacity();
  auto site = std::make_shared<Site>();
  site->reducer =
      std::make_unique<AdaptiveReducer>(*pool_, coeffs_, opt_.adaptive);
  site->reducer->set_pool_arbiter(&pool_mu_);
  site->last_used_ns.store(now_ns(), std::memory_order_relaxed);
  std::scoped_lock lk(stripe.mu);
  const auto [it, inserted] =
      stripe.sites.try_emplace(std::string(id), std::move(site));
  if (inserted) {
    // Warm-start from the store only under the stripe lock, after losing
    // any creation race: eviction needs this same lock to erase a site,
    // so the entry read here cannot be stale. (Reading it before the
    // lock would race a whole create→invoke→evict cycle of this site on
    // another thread and resurrect the pre-cycle snapshot, losing the
    // cycle's invocations from the lifetime counters.)
    if (auto cached = store_->get(id); cached.has_value()) {
      it->second->reducer->warm_start(*std::move(cached));
      warm_offers_.fetch_add(1, std::memory_order_relaxed);
    }
    live_sites_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

SchemeResult Runtime::submit(std::string_view site_id,
                             const ReductionInput& in,
                             std::span<double> out) {
  for (;;) {
    std::shared_ptr<Site> s = site_slot(site_id);
    std::scoped_lock lk(s->mu);
    // The site may have been evicted between the table lookup and the
    // lock: it still exists (we hold a reference) but no longer receives
    // persistence or warm-start offers — re-resolve so the invocation
    // lands in a live site and is counted exactly once.
    if (s->evicted) continue;
    s->last_used_ns.store(now_ns(), std::memory_order_relaxed);
    // In-flight check counters survive eviction: accumulate the per-site
    // deltas into the runtime-wide tally while the site mutex is held.
    const bool checking = opt_.adaptive.check.enabled;
    const std::uint64_t cr0 = checking ? s->reducer->checks_run() : 0;
    const std::uint64_t cf0 = checking ? s->reducer->check_failures() : 0;
    SchemeResult r = s->reducer->invoke(in, out);
    if (checking) {
      checks_run_.fetch_add(s->reducer->checks_run() - cr0,
                            std::memory_order_relaxed);
      check_failures_.fetch_add(s->reducer->check_failures() - cf0,
                                std::memory_order_relaxed);
    }
    // Asynchronous persistence: only note that this site moved on; the
    // maintenance thread snapshots and flushes off the submit path.
    store_->mark_dirty(site_id);
    return r;
  }
}

SchemeResult Runtime::submit(const ReductionInput& in,
                             std::span<double> out) {
  if (!in.pattern.loop_id.empty()) return submit(in.pattern.loop_id, in, out);
  // Untagged patterns fall back to a dimension-keyed anonymous site, so
  // two structurally different untagged loops alternating through here do
  // not share one drift monitor and re-characterize on every invocation.
  // Same-dimension loops still collide — tag loop_id for stable identity.
  return submit("<anonymous dim=" + std::to_string(in.pattern.dim) + ">", in,
                out);
}

AdaptiveReducer& Runtime::site(std::string_view site_id) {
  return *site_slot(site_id)->reducer;
}

bool Runtime::has_live_site(std::string_view site_id) const {
  return find_live(site_id) != nullptr;
}

std::size_t Runtime::site_count() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::scoped_lock lk(stripe.mu);
    n += stripe.sites.size();
  }
  return n;
}

std::vector<std::string> Runtime::site_ids() const {
  std::vector<std::string> ids;
  for (const auto& stripe : stripes_) {
    std::scoped_lock lk(stripe.mu);
    for (const auto& [id, site] : stripe.sites) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

template <typename Fn>
void Runtime::for_each_site(Fn&& fn) const {
  for (const auto& id : site_ids()) {
    // Resolve the site under the stripe lock, then release it before
    // waiting on the site mutex — otherwise a long in-flight reduction
    // would stall every submission hashing into the same stripe for its
    // whole duration. The shared_ptr keeps a concurrently evicted site
    // alive; the `evicted` flag (read under the site mutex) tells us to
    // skip it.
    const std::shared_ptr<Site> site = find_live(id);
    if (site == nullptr) continue;
    std::scoped_lock site_lk(site->mu);
    if (site->evicted) continue;
    fn(id, static_cast<const AdaptiveReducer&>(*site->reducer));
  }
}

CachedDecision Runtime::snapshot_site(const std::string& id,
                                      const AdaptiveReducer& r) const {
  CachedDecision d;
  d.site = id;
  d.scheme = r.current();
  d.threads = pool_->size();
  // The most recently observed signature: what the next run's first
  // invocation is expected to look like.
  d.signature = r.monitor().last();
  // Prediction for the current scheme, so the warm-started next run
  // keeps the mispredict feedback loop armed (0 when unknown).
  for (const auto& cp : r.decision().predictions)
    if (cp.scheme == r.current()) d.predicted_total_s = cp.total();
  // Measured phase times under the current scheme (bounded ring): the
  // warm-started next run seeds its time-drift baseline from these, so
  // the feedback loop survives the restart armed with evidence.
  d.phase_times_s = r.phase_history();
  // Cumulative across warm restarts — a warm-started run inherits the
  // cache's evidence instead of resetting it to this run's count, and
  // the rationale stays the original decider justification.
  d.invocations = r.lifetime_invocations();
  d.rationale = r.decision().rationale;
  return d;
}

// ---- eviction --------------------------------------------------------

void Runtime::ensure_capacity() {
  std::scoped_lock lk(evict_mu_);
  const std::size_t cap = opt_.max_sites;
  const std::size_t live = live_sites_.load(std::memory_order_relaxed);
  if (live < cap) return;
  // Evict the overflow plus a little slack (1/16th of the cap) so a
  // churning burst of creations amortizes the table scan instead of
  // rescanning per creation. Small caps get exact-overflow eviction.
  (void)evict_locked(live - cap + 1 + cap / 16, /*ttl_cutoff_ns=*/0);
}

std::size_t Runtime::sweep() {
  std::scoped_lock lk(evict_mu_);
  std::uint64_t cutoff = 0;
  if (opt_.site_ttl_s > 0.0) {
    const auto ttl_ns =
        static_cast<std::uint64_t>(opt_.site_ttl_s * 1e9);
    const std::uint64_t now = now_ns();
    cutoff = now > ttl_ns ? now - ttl_ns : 0;
  }
  const std::size_t live = live_sites_.load(std::memory_order_relaxed);
  const std::size_t over =
      opt_.max_sites > 0 && live > opt_.max_sites ? live - opt_.max_sites : 0;
  if (over == 0 && cutoff == 0) return 0;
  return evict_locked(over, cutoff);
}

std::size_t Runtime::evict_locked(std::size_t want,
                                  std::uint64_t ttl_cutoff_ns) {
  // One pass over the table: every TTL-expired site goes; beyond that,
  // the `want` least-recently-used ones. Timestamps are read lock-free —
  // approximate LRU is all a cap needs.
  std::vector<std::pair<std::uint64_t, std::string>> by_age;
  std::size_t evicted = 0;
  for (const auto& stripe : stripes_) {
    std::scoped_lock lk(stripe.mu);
    for (const auto& [id, site] : stripe.sites)
      by_age.emplace_back(site->last_used_ns.load(std::memory_order_relaxed),
                          id);
  }
  std::sort(by_age.begin(), by_age.end());
  for (const auto& [used_ns, id] : by_age) {
    const bool expired = ttl_cutoff_ns > 0 && used_ns < ttl_cutoff_ns;
    if (!expired && evicted >= want) break;
    if (evict_site(id)) ++evicted;
  }
  return evicted;
}

bool Runtime::evict_site(const std::string& id) {
  Stripe& stripe = stripes_[stripe_of(id)];
  std::scoped_lock lk(stripe.mu);
  const auto it = stripe.sites.find(id);
  if (it == stripe.sites.end()) return false;
  Site& s = *it->second;
  // A site whose mutex is held is mid-submission — by definition not LRU;
  // skip it rather than stall the evictor behind a running reduction.
  std::unique_lock site_lk(s.mu, std::try_to_lock);
  if (!site_lk.owns_lock()) return false;
  // Persist what the site learned so a return warm-starts instead of
  // re-characterizing: eviction bounds memory, not knowledge.
  if (s.reducer->invocations() > 0) store_->put(snapshot_site(id, *s.reducer));
  s.evicted = true;
  site_lk.unlock();
  stripe.sites.erase(it);
  live_sites_.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// ---- reporting and persistence ---------------------------------------

std::string Runtime::report() const {
  std::ostringstream os;
  os << "sapp::Runtime: " << pool_->size() << " threads, " << site_count()
     << " loop site(s)";
  if (const std::uint64_t ev = evictions_.load(); ev > 0)
    os << ", " << ev << " eviction(s)";
  if (const std::size_t cached = store_->size(); cached > 0)
    os << ", " << cached << " cached decision(s)";
  if (const std::uint64_t cr = checks_run_.load(); cr > 0)
    os << ", " << cr << " check(s) run / " << check_failures_.load()
       << " failed";
  os << "\n";
  for_each_site([&](const std::string& id, const AdaptiveReducer& r) {
    os << "  site '" << id << "': ";
    if (r.invocations() == 0) {
      os << "never invoked\n";
      return;
    }
    os << to_string(r.current()) << " after " << r.invocations()
       << " invocation(s), " << r.recharacterizations()
       << " characterization(s), " << r.scheme_switches() << " switch(es)";
    if (r.time_drift_demotions() > 0)
      os << ", " << r.time_drift_demotions() << " time-drift demotion(s)";
    os << (r.warm_started() ? ", warm-started" : "") << "\n    "
       << r.decision().rationale << "\n";
  });
  return os.str();
}

DecisionCache Runtime::snapshot_decisions() const {
  DecisionCache cache;
  for_each_site([&](const std::string& id, const AdaptiveReducer& r) {
    if (r.invocations() == 0) return;  // nothing learned yet
    cache.put(snapshot_site(id, r));
  });
  return cache;
}

DecisionCache Runtime::persisted_decisions() const { return store_->merged(); }

bool Runtime::save_decisions(const std::string& path,
                             std::string* error) const {
  // Store entries (loaded + evicted sites) first, then live sites on top:
  // a site that is both evicted-stale and live resolves to live state.
  DecisionCache all = store_->merged();
  for_each_site([&](const std::string& id, const AdaptiveReducer& r) {
    if (r.invocations() == 0) return;
    all.put(snapshot_site(id, r));
  });
  return all.save(path, error);
}

bool Runtime::save_decisions(std::string* error) const {
  if (opt_.decision_cache_path.empty()) {
    if (error != nullptr) *error = "no decision_cache_path configured";
    return false;
  }
  return save_decisions(opt_.decision_cache_path, error);
}

bool Runtime::load_decisions(const std::string& path, std::string* error) {
  auto loaded = DecisionCache::load(path, error);
  if (!loaded.has_value()) return false;
  for (const auto& e : loaded->entries()) store_->put(e);
  return true;
}

std::size_t Runtime::warm_entries() const { return store_->size(); }

std::size_t Runtime::flush_decisions(std::string* error) {
  if (!store_->persistent()) return 0;
  const auto snapshotter = [this](const std::string& id,
                                  CachedDecision& out) {
    const std::shared_ptr<Site> s = find_live(id);
    if (s == nullptr) return false;  // evicted: the store copy is final
    std::scoped_lock lk(s->mu);
    if (s->evicted || s->reducer->invocations() == 0) return false;
    out = snapshot_site(id, *s->reducer);
    return true;
  };
  return store_->drain(snapshotter, error);
}

}  // namespace sapp
