#include "core/runtime.hpp"

#include <sstream>
#include <thread>

namespace sapp {

SmartAppsRuntime::SmartAppsRuntime(Options opt) : opt_(opt) {
  unsigned n = opt.threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 2;
  }
  pool_ = std::make_unique<ThreadPool>(n);
  coeffs_ = opt.calibrate ? MachineCoeffs::calibrate(*pool_)
                          : MachineCoeffs::defaults();
}

AdaptiveReducer& SmartAppsRuntime::reducer(const std::string& name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_
             .emplace(name, std::make_unique<AdaptiveReducer>(
                                *pool_, coeffs_, opt_.adaptive))
             .first;
  }
  return *it->second;
}

std::string SmartAppsRuntime::report() const {
  std::ostringstream os;
  os << "SmartAppsRuntime: " << pool_->size() << " threads, "
     << sites_.size() << " loop site(s)\n";
  for (const auto& [name, r] : sites_) {
    os << "  site '" << name << "': ";
    if (r->invocations() == 0) {
      os << "never invoked\n";
      continue;
    }
    os << to_string(r->current()) << " after " << r->invocations()
       << " invocation(s), " << r->recharacterizations()
       << " characterization(s), " << r->scheme_switches()
       << " switch(es)\n    " << r->decision().rationale << "\n";
  }
  return os.str();
}

}  // namespace sapp
