#include "core/characterize.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "reductions/scheme_lw.hpp"

namespace sapp {

namespace {

/// Gini coefficient of the per-element reference counts: 0 when every
/// referenced element is touched equally often, →1 when references pile
/// onto few elements. This summarizes the CHD distribution.
double gini_of_counts(const std::vector<std::uint32_t>& counts) {
  std::vector<std::uint32_t> nz;
  nz.reserve(counts.size());
  for (auto c : counts)
    if (c > 0) nz.push_back(c);
  if (nz.size() < 2) return 0.0;
  std::sort(nz.begin(), nz.end());
  const double n = static_cast<double>(nz.size());
  double cum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < nz.size(); ++i) {
    cum += nz[i];
    weighted += static_cast<double>(i + 1) * nz[i];
  }
  if (cum == 0.0) return 0.0;
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace

PatternStats characterize(const AccessPattern& p, unsigned threads,
                          const CharacterizeOptions& opt) {
  SAPP_REQUIRE(threads >= 1, "need at least one thread");
  SAPP_REQUIRE(opt.sample_stride >= 1, "stride must be >= 1");

  PatternStats s;
  s.dim = p.dim;
  s.iterations = p.refs.rows();
  s.refs = p.refs.nnz();
  s.threads = threads;
  s.lw_legal = p.iteration_replication_legal;

  const auto& ptr = p.refs.row_ptr();
  const auto& idx = p.refs.indices();
  const std::size_t n = s.iterations;
  const std::size_t stride = opt.sample_stride;

  // Per-element reference counts and per-thread touch masks, in one sweep
  // over the (possibly sampled) iterations. kOwnerNone/kOwnerShared mirror
  // the selective-privatization inspector.
  std::vector<std::uint32_t> count(p.dim, 0);
  constexpr std::uint8_t kOwnerNone = 0xFF;
  constexpr std::uint8_t kOwnerShared = 0xFE;
  std::vector<std::uint8_t> owner(p.dim, kOwnerNone);

  std::size_t sampled_iters = 0;
  std::size_t sampled_refs = 0;
  std::size_t sum_iter_distinct = 0;
  std::size_t sum_owner_sets = 0;  // Σ_i |owner threads of iteration i|
  std::vector<std::size_t> lw_work(threads, 0);
  std::vector<std::uint32_t> scratch;

  for (std::size_t i = 0; i < n; i += stride) {
    ++sampled_iters;
    const unsigned tid = static_cast<unsigned>(
        std::min<std::size_t>(threads - 1, i * threads / (n ? n : 1)));
    // The owner byte packs thread ids next to the kOwnerNone/kOwnerShared
    // sentinels; on a > 253-thread pool ids clamp to one bucket, slightly
    // under-counting sharing between the highest threads. Approximate
    // stats beat aborting — this is the paper's "fast, approximative"
    // characterizer, and the schemes themselves are unaffected.
    const unsigned otid = tid < 0xFDu ? tid : 0xFDu;
    scratch.clear();
    for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
      const std::uint32_t e = idx[j];
      SAPP_ASSERT(e < p.dim, "element out of range");
      ++count[e];
      ++sampled_refs;
      auto& o = owner[e];
      if (o == kOwnerNone)
        o = static_cast<std::uint8_t>(otid);
      else if (o != otid && o != kOwnerShared)
        o = kOwnerShared;
      scratch.push_back(e);
    }
    // Distinct elements of this iteration (MO numerator).
    std::sort(scratch.begin(), scratch.end());
    const auto uniq = static_cast<std::size_t>(
        std::unique(scratch.begin(), scratch.end()) - scratch.begin());
    sum_iter_distinct += uniq;
    // Owner threads of this iteration (lw replication), via the same block
    // partition of the element space lw uses.
    std::size_t owners = 0;
    unsigned last_owner = ~0u;
    for (std::size_t k = 0; k < uniq; ++k) {
      const unsigned t =
          LocalWriteScheme<>::owner_of(scratch[k], p.dim, threads);
      if (t != last_owner) {
        // scratch sorted => same owner elements are adjacent
        ++owners;
        lw_work[t] += 1;
        last_owner = t;
      }
    }
    sum_owner_sets += owners;
  }

  // Scale sampled counts back to the full loop.
  const double scale = static_cast<double>(stride);

  std::size_t distinct = 0, shared = 0;
  for (std::size_t e = 0; e < p.dim; ++e) {
    if (count[e] > 0) ++distinct;
    if (owner[e] == kOwnerShared) ++shared;
  }
  // Sampling misses elements; scale the distinct estimate but never past
  // the array dimension (exact when stride == 1).
  s.distinct = stride == 1
                   ? distinct
                   : std::min<std::size_t>(
                         p.dim, static_cast<std::size_t>(distinct * scale));
  s.refs = stride == 1 ? sampled_refs
                       : static_cast<std::size_t>(sampled_refs * scale);

  s.mo = sampled_iters ? static_cast<double>(sum_iter_distinct) /
                             static_cast<double>(sampled_iters)
                       : 0.0;
  s.con = s.distinct ? static_cast<double>(s.refs) /
                           static_cast<double>(s.distinct)
                     : 0.0;
  s.sp = p.dim ? 100.0 * static_cast<double>(s.distinct) /
                     static_cast<double>(p.dim)
               : 0.0;
  s.dim_ratio = static_cast<double>(p.dim * sizeof(double)) /
                static_cast<double>(opt.cache_bytes);
  s.chr = p.dim ? static_cast<double>(s.refs) /
                      (static_cast<double>(threads) *
                       static_cast<double>(p.dim))
                : 0.0;

  // CH histogram (counts capped).
  s.ch.assign(opt.ch_cap + 1, 0);
  for (std::size_t e = 0; e < p.dim; ++e) {
    if (count[e] == 0) continue;
    const std::size_t k = std::min<std::size_t>(count[e], opt.ch_cap);
    ++s.ch[k];
  }
  s.chd_gini = gini_of_counts(count);

  // Thread-dependent measures. Touched-per-thread estimated from the owner
  // classification: exclusives touch one thread, shared ones we charge to
  // every thread that could see them (upper bound: threads).
  const double excl = static_cast<double>(distinct - shared);
  s.touched_per_thread =
      threads ? (excl / threads + static_cast<double>(shared)) * scale : 0.0;
  s.touched_per_thread = std::min(s.touched_per_thread,
                                  static_cast<double>(p.dim));
  s.shared_fraction =
      distinct ? static_cast<double>(shared) / static_cast<double>(distinct)
               : 0.0;
  s.lw_replication = sampled_iters ? static_cast<double>(sum_owner_sets) /
                                         static_cast<double>(sampled_iters)
                                   : 0.0;
  const double lw_total = static_cast<double>(
      std::accumulate(lw_work.begin(), lw_work.end(), std::size_t{0}));
  if (lw_total > 0.0) {
    const double mx =
        static_cast<double>(*std::max_element(lw_work.begin(), lw_work.end()));
    s.lw_imbalance = mx / (lw_total / static_cast<double>(threads));
  }
  return s;
}

}  // namespace sapp
