// ShardedDecisionStore — the serving-scale persistence engine behind the
// decision cache.
//
// The single-file DecisionCache (decision_cache.hpp) rewrites one JSON
// document per save, which is fine for an end-of-run snapshot but not for
// a runtime serving thousands of churning sites: every flush would
// serialize every site, and a crash mid-rewrite loses the whole database.
// The store splits the cache across `shards` files keyed by a stable
// 64-bit FNV-1a fingerprint of the site id:
//
//     <dir>/shard-<k>.json        (each file is a DecisionCache document)
//
// Properties:
//   * per-shard mutexes — writers to unrelated sites never contend;
//   * dirty-set coalescing — `mark_dirty` is a cheap set insert on the
//     submit path; `drain()` (called by the runtime's maintenance thread,
//     never by submitters) snapshots the dirty sites and rewrites only
//     the shards that changed;
//   * atomic flushes — each shard is written to `<file>.tmp`, fsync'd,
//     then renamed over the old file, so a reader (or a crash) sees
//     either the old complete document or the new complete document,
//     never a torn one. A failure hook can abandon a flush mid-write
//     (tests/decision_store_test.cpp proves the old-or-new invariant);
//   * re-homing — entries found in the wrong shard file (the directory
//     was written under a different shard count) are adopted into their
//     home shard and both shards are marked dirty, so the layout
//     converges instead of resurrecting stale duplicates.
//
// The store itself is runtime-agnostic: `sapp::Runtime` owns one, feeds
// it evicted-site snapshots, and passes a live-site snapshotter to
// `drain()` so persisted state always reflects the latest invocation.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/decision_cache.hpp"

namespace sapp {

/// Construction knobs of the sharded store.
struct DecisionStoreOptions {
  /// Directory holding the shard files. Empty = in-memory only: the store
  /// still shards its map and serves get/put (the runtime's eviction
  /// warm-restart path), but mark_dirty/drain are no-ops.
  std::string dir;
  /// Number of shard files; clamped to [1, 256]. Changing it later is
  /// safe (entries re-home on load) but rewrites shards once.
  std::size_t shards = 16;
};

/// Sharded, asynchronously flushable decision database.
class ShardedDecisionStore {
 public:
  /// Where a simulated crash strikes during one shard flush.
  enum class FlushPhase {
    kTempWrite,  ///< mid temp-file write: a torn .tmp, no rename
    kRename      ///< after a complete temp write, before the rename
  };
  /// Fault-injection hook consulted during every shard flush; returning
  /// true abandons the flush at `phase` as a crash would (the shard's
  /// sites stay dirty and are retried on the next drain).
  using FlushFailureHook =
      std::function<bool(std::size_t shard, FlushPhase phase)>;
  /// Refreshes a dirty site's entry from live state at flush time.
  /// Returns false when the site has no live state to snapshot (evicted
  /// or never invoked) — the store then keeps its current entry.
  using Snapshotter =
      std::function<bool(const std::string& site, CachedDecision& out)>;

  explicit ShardedDecisionStore(DecisionStoreOptions opt);

  ShardedDecisionStore(const ShardedDecisionStore&) = delete;
  ShardedDecisionStore& operator=(const ShardedDecisionStore&) = delete;

  /// Stable 64-bit FNV-1a fingerprint of a site id (not std::hash, which
  /// may differ across libstdc++ versions — shard files outlive builds).
  [[nodiscard]] static std::uint64_t fingerprint(std::string_view site);
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(std::string_view site) const;
  [[nodiscard]] std::string shard_path(std::size_t shard) const;
  [[nodiscard]] bool persistent() const { return !opt_.dir.empty(); }

  /// Load every shard file under the directory (creating the directory if
  /// missing). A malformed or missing shard contributes nothing — a cold
  /// shard, never an error; `error` collects a description of skipped
  /// files. Returns the number of entries loaded.
  std::size_t load(std::string* error = nullptr);

  /// Insert or replace the entry for `d.site` and mark its shard dirty.
  void put(CachedDecision d);
  /// Copy of the entry for `site` (copies: the caller may outlive locks).
  [[nodiscard]] std::optional<CachedDecision> get(
      std::string_view site) const;
  [[nodiscard]] std::size_t size() const;
  /// Every entry folded into one single-file cache (legacy save path).
  [[nodiscard]] DecisionCache merged() const;

  /// Record that `site`'s live state has advanced past what the store
  /// holds; coalesced per shard until the next drain. No-op when the
  /// store is not persistent.
  void mark_dirty(std::string_view site);
  [[nodiscard]] std::size_t dirty_count() const;

  /// Flush every dirty shard: refresh each dirty site via `snap` (when
  /// given), then rewrite the shard file atomically. Returns the number
  /// of shard files written; failed shards stay dirty for retry. Safe to
  /// call concurrently with put/mark_dirty.
  std::size_t drain(const Snapshotter& snap = nullptr,
                    std::string* error = nullptr);

  /// Shard files successfully written since construction.
  [[nodiscard]] std::uint64_t flushes() const { return flushes_.load(); }
  /// Flushes abandoned (injected crash or real I/O failure).
  [[nodiscard]] std::uint64_t flush_failures() const {
    return flush_failures_.load();
  }
  void set_flush_failure_hook(FlushFailureHook hook);

 private:
  struct Shard {
    mutable std::mutex mu;
    DecisionCache cache;
    std::unordered_set<std::string> dirty;
  };

  /// Atomically replace shard `i`'s file with `json` (temp + rename),
  /// honouring the failure hook. Returns false on abandonment/failure.
  bool write_shard(std::size_t i, const std::string& json,
                   std::string* error);

  DecisionStoreOptions opt_;
  std::vector<Shard> shards_;
  mutable std::mutex hook_mu_;
  FlushFailureHook hook_;
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> flush_failures_{0};
};

}  // namespace sapp
