// The decision algorithm (§4): pick the reduction parallelization scheme
// that best matches a characterized access pattern.
//
// Two deciders are provided:
//  * `decide_model`  — argmin over the analytic cost models (the ToolBox
//    Predictor/Optimizer path). This is the default.
//  * `decide_rules`  — the taxonomy-style rule cascade the paper sketches
//    (SP ≪ 1 → hash; high CHR & CON → rep; …). Kept as an ablation
//    (`sapp_repro ablation_decision`) and as documentation of the taxonomy.
#pragma once

#include <string>
#include <vector>

#include "core/cost_model.hpp"

namespace sapp {

/// Outcome of the decision process for one loop instance.
struct Decision {
  SchemeKind recommended{};
  /// All candidates with predicted costs, best first.
  std::vector<CostPrediction> predictions;
  /// Human-readable explanation (printed by the Fig. 3 harness).
  std::string rationale;
};

/// Cost-model-based decision (default path).
[[nodiscard]] Decision decide_model(const PatternStats& stats,
                                    unsigned body_flops,
                                    const MachineCoeffs& mc);

/// Thresholds of the rule-based taxonomy. Defaults reproduce the paper's
/// Fig. 3 recommendations under this repository's stat definitions.
struct RuleThresholds {
  double hash_sp_max = 3.0;     ///< SP (%) below which hash is considered
  double hash_mo_min = 6.0;     ///< ... for wide scatter iterations only
  double rep_chr_min = 2.0;     ///< CHR above which full replication pays
  double rep_dim_max = 8.0;     ///< ... as long as DIM (vs cache) is modest
  double lw_imbalance_max = 1.6;///< lw rejected above this owner imbalance
  double lw_replication_max = 1.7;  ///< lw rejected above this replication
  double ll_shared_min = 0.35;  ///< shared fraction above which ll beats sel
};

/// Rule-cascade decision.
[[nodiscard]] Decision decide_rules(const PatternStats& stats,
                                    const RuleThresholds& th = {});

}  // namespace sapp
