#include "core/decision.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace sapp {

Decision decide_model(const PatternStats& stats, unsigned body_flops,
                      const MachineCoeffs& mc) {
  Decision d;
  d.predictions = predict_all(stats, body_flops, mc);
  SAPP_REQUIRE(!d.predictions.empty() && d.predictions.front().applicable,
               "no applicable scheme");
  d.recommended = d.predictions.front().scheme;

  std::ostringstream os;
  os << "cost model: " << to_string(d.recommended) << " predicted "
     << d.predictions.front().total() * 1e3 << " ms";
  if (d.predictions.size() > 1 && d.predictions[1].applicable)
    os << " vs " << to_string(d.predictions[1].scheme) << " "
       << d.predictions[1].total() * 1e3 << " ms";
  d.rationale = os.str();
  return d;
}

Decision decide_rules(const PatternStats& s, const RuleThresholds& th) {
  Decision d;
  std::ostringstream why;

  if (s.sp < th.hash_sp_max && s.mo >= th.hash_mo_min && s.dim_ratio > 1.0) {
    // Very sparse wide-scatter references into an array much bigger than
    // cache: hash tables shrink the processed space (the paper's Spice
    // case, MO = 28).
    d.recommended = SchemeKind::kHash;
    why << "SP=" << s.sp << "% < " << th.hash_sp_max << "%, MO=" << s.mo
        << " >= " << th.hash_mo_min << " and DIM=" << s.dim_ratio
        << " > 1: very sparse scatter -> hash";
  } else if (s.chr >= th.rep_chr_min && s.dim_ratio <= th.rep_dim_max) {
    // Heavy reuse of a modest array: full replication amortizes its
    // init/merge sweeps (Irreg small, Moldyn small).
    d.recommended = SchemeKind::kRep;
    why << "CHR=" << s.chr << " >= " << th.rep_chr_min
        << " and DIM=" << s.dim_ratio << " <= " << th.rep_dim_max
        << ": dense reuse -> rep";
  } else if (s.lw_legal && s.lw_replication <= th.lw_replication_max &&
             s.lw_imbalance <= th.lw_imbalance_max && s.chr >= 0.05) {
    // Moderate reuse, good partition locality, balanced owners: owner
    // computes avoids all private storage (Irreg medium).
    d.recommended = SchemeKind::kLocalWrite;
    why << "lw legal, replication=" << s.lw_replication
        << " <= " << th.lw_replication_max << ", imbalance=" << s.lw_imbalance
        << " <= " << th.lw_imbalance_max << " -> lw";
  } else if (s.shared_fraction >= th.ll_shared_min) {
    // Most touched elements are shared between threads: selective
    // privatization degenerates to full replication plus indirection, so
    // lazy-init replicated buffers win (Moldyn large, Charmm).
    d.recommended = SchemeKind::kLinked;
    why << "shared fraction=" << s.shared_fraction << " >= "
        << th.ll_shared_min << ": most touched elements contended -> ll";
  } else {
    // Few shared elements: privatize only those (Nbf, Spark98).
    d.recommended = SchemeKind::kSelective;
    why << "shared fraction=" << s.shared_fraction << " < "
        << th.ll_shared_min << ": privatize only shared -> sel";
  }
  d.rationale = why.str();
  return d;
}

}  // namespace sapp
