#include "repro/context.hpp"

#include <cstdlib>
#include <thread>

namespace sapp::repro {

RunOptions RunOptions::from_env() {
  RunOptions o;
  if (const char* s = std::getenv("SAPP_SCALE"); s != nullptr) {
    const double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) o.scale = v;
  }
  // SAPP_FULL wins over SAPP_SCALE (same precedence as the original
  // bench_util.hpp helper).
  if (const char* full = std::getenv("SAPP_FULL");
      full != nullptr && full[0] == '1')
    o.scale = 1.0;
  if (const char* s = std::getenv("SAPP_THREADS"); s != nullptr) {
    const int v = std::atoi(s);
    if (v >= 1 && v <= 256) o.threads = static_cast<unsigned>(v);
  }
  return o;
}

RunContext::RunContext(RunOptions opt) : opt_(opt) {
  if (opt_.threads >= 1) {
    threads_ = opt_.threads;
  } else {
    // One software thread per hardware context. The previous default
    // (min(8, 2 x hw)) oversubscribed small containers 4x, which skews
    // exactly the fork-join and phase latencies the experiments measure;
    // the paper's 8-processor setup is requested explicitly with
    // SAPP_THREADS=8 / --threads 8 (see docs/reproducing.md).
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw != 0 ? hw : 2;
  }
  reps_ = opt_.reps >= 1 ? opt_.reps : 3;
  warmup_ = opt_.warmup >= 0 ? opt_.warmup : 1;
}

double RunContext::scale(double experiment_default) const {
  if (opt_.tiny)
    return std::clamp(experiment_default * 0.1, 0.01, 0.05);
  if (opt_.scale > 0.0) return opt_.scale;
  return experiment_default;
}

ThreadPool& RunContext::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_);
  return *pool_;
}

const MachineCoeffs& RunContext::coeffs() {
  if (!coeffs_)
    coeffs_ = std::make_unique<MachineCoeffs>(MachineCoeffs::calibrate(pool()));
  return *coeffs_;
}

}  // namespace sapp::repro
