#include "repro/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sapp::repro {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_rec(const JsonValue& v, std::string& out, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; return;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; return;
    case JsonValue::Kind::kNumber: out += format_json_number(v.as_number()); return;
    case JsonValue::Kind::kString: append_escaped(out, v.as_string()); return;
    case JsonValue::Kind::kArray: {
      const auto& xs = v.items();
      if (xs.empty()) {
        out += "[]";
        return;
      }
      // Arrays of scalars stay on one line (table rows read naturally);
      // arrays holding containers get one element per line.
      bool nested = false;
      for (const auto& x : xs)
        nested = nested || x.is_array() || x.is_object();
      out += '[';
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (nested) {
          out += '\n';
          out += pad_in;
        }
        dump_rec(xs[i], out, depth + 1);
        if (i + 1 < xs.size()) out += nested ? "," : ", ";
      }
      if (nested) {
        out += '\n';
        out += pad;
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      const auto& ms = v.members();
      if (ms.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < ms.size(); ++i) {
        out += pad_in;
        append_escaped(out, ms[i].first);
        out += ": ";
        dump_rec(ms[i].second, out, depth + 1);
        if (i + 1 < ms.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += '}';
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    auto v = parse_value(0);
    skip_ws();
    if (v && pos_ != text_.size()) {
      fail("trailing characters after document");
      v = std::nullopt;
    }
    if (!v && error != nullptr)
      *error = err_ + " at byte " + std::to_string(err_pos_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(std::string msg) {
    if (err_.empty()) {
      err_ = std::move(msg);
      err_pos_ = pos_;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string_body() {
    // Called with pos_ just past the opening quote.
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad hex digit in \\u escape");
              return std::nullopt;
            }
          }
          // Encode as UTF-8 (surrogate pairs are not needed for our
          // ASCII-centric output; lone surrogates round-trip as-is).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == 'n') {
      if (literal("null")) return JsonValue(nullptr);
      fail("bad literal");
      return std::nullopt;
    }
    if (c == 't') {
      if (literal("true")) return JsonValue(true);
      fail("bad literal");
      return std::nullopt;
    }
    if (c == 'f') {
      if (literal("false")) return JsonValue(false);
      fail("bad literal");
      return std::nullopt;
    }
    if (c == '"') {
      ++pos_;
      auto s = parse_string_body();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (c == '[') {
      ++pos_;
      JsonValue arr = JsonValue::array();
      skip_ws();
      if (consume(']')) return arr;
      while (true) {
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        arr.push_back(std::move(*v));
        if (consume(',')) continue;
        if (consume(']')) return arr;
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos_;
      JsonValue obj = JsonValue::object();
      skip_ws();
      if (consume('}')) return obj;
      while (true) {
        if (!consume('"')) {
          fail("expected member name");
          return std::nullopt;
        }
        auto key = parse_string_body();
        if (!key) return std::nullopt;
        if (!consume(':')) {
          fail("expected ':'");
          return std::nullopt;
        }
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        obj.set(*key, std::move(*v));
        if (consume(',')) continue;
        if (consume('}')) return obj;
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
    // Number. Validate against the JSON grammar first — std::from_chars
    // alone would also accept non-JSON spellings like "inf" or "007".
    const std::size_t start = pos_;
    std::size_t p = pos_;
    auto digits = [&] {
      const std::size_t first = p;
      while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') ++p;
      return p > first;
    };
    if (p < text_.size() && text_[p] == '-') ++p;
    if (p < text_.size() && text_[p] == '0') {
      ++p;  // a leading zero must stand alone
    } else if (!digits()) {
      fail("invalid value");
      return std::nullopt;
    }
    if (p < text_.size() && text_[p] == '.') {
      ++p;
      if (!digits()) {
        fail("invalid value");
        return std::nullopt;
      }
    }
    if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
      ++p;
      if (p < text_.size() && (text_[p] == '+' || text_[p] == '-')) ++p;
      if (!digits()) {
        fail("invalid value");
        return std::nullopt;
      }
    }
    const char* begin = text_.data() + start;
    double num = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, text_.data() + p, num);
    if (ec != std::errc{} || ptr != text_.data() + p) {
      fail("invalid value");
      return std::nullopt;
    }
    pos_ = p;
    return JsonValue(num);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
  std::size_t err_pos_ = 0;
};

}  // namespace

void JsonValue::set(std::string_view key, JsonValue v) {
  auto& ms = std::get<Members>(v_);
  for (auto& [k, existing] : ms) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  ms.emplace_back(std::string(key), std::move(v));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members())
    if (k == key) return &v;
  return nullptr;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_rec(*this, out, 0);
  out += '\n';
  return out;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text).run(error);
}

std::string format_json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof buf, static_cast<long long>(v));
    return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
  }
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

}  // namespace sapp::repro
