// RunContext — the shared execution environment every experiment runs in.
//
// This replaces the per-binary env parsing and hand-rolled timing loops the
// old bench/ mains carried: one place decides the workload scale, thread
// count, repetition strategy and warmup, and hands experiments a lazily
// constructed ThreadPool and calibrated MachineCoeffs.
//
// Environment compatibility (kept from the old bench_util.hpp):
//   SAPP_FULL=1      — force scale 1.0 (paper-size workloads)
//   SAPP_SCALE=<0..1>— explicit scale override
//   SAPP_THREADS=<n> — software-scheme thread count
// CLI flags (--scale/--threads/--reps/--warmup/--tiny) take precedence.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/cost_model.hpp"

namespace sapp::repro {

/// User-selected knobs (0 = "use the default for this experiment/host").
struct RunOptions {
  double scale = 0.0;    ///< workload scale; 0 = experiment default
  unsigned threads = 0;  ///< software threads; 0 = hardware_concurrency()
  int reps = 0;          ///< timing repetitions; 0 = experiment default (3)
  int warmup = -1;       ///< warmup runs before timing; -1 = default (1)
  bool tiny = false;     ///< smoke sizes: ~1/10 scale, 1 rep, no warmup

  /// Defaults honouring the SAPP_* environment variables.
  [[nodiscard]] static RunOptions from_env();
};

/// Execution context passed to every experiment's run function.
class RunContext {
 public:
  explicit RunContext(RunOptions opt = RunOptions::from_env());

  /// Effective workload scale given the experiment's registered default.
  /// Tiny mode clamps to one tenth of the default, within [0.01, 0.05].
  [[nodiscard]] double scale(double experiment_default) const;

  /// Software-scheme thread count; defaults to one per hardware context
  /// (the paper's 8-processor setup is an explicit override).
  [[nodiscard]] unsigned threads() const { return threads_; }
  /// Timing repetitions (median-of-reps is the reported statistic).
  [[nodiscard]] int reps() const { return opt_.tiny ? 1 : reps_; }
  /// Untimed warmup runs before the measured repetitions.
  [[nodiscard]] int warmup() const { return opt_.tiny ? 0 : warmup_; }
  [[nodiscard]] bool tiny() const { return opt_.tiny; }

  /// Shared pool sized to threads(), created on first use.
  [[nodiscard]] ThreadPool& pool();
  /// Host-calibrated cost-model coefficients, measured on first use.
  [[nodiscard]] const MachineCoeffs& coeffs();

  /// Shared timing policy: run `fn` warmup() times untimed, then reps()
  /// times, and return the median of the values `fn` reports (seconds, or
  /// any other statistic the experiment measures per repetition).
  [[nodiscard]] double measure(const std::function<double()>& fn) {
    for (int i = 0; i < warmup(); ++i) (void)fn();
    std::vector<double> xs;
    xs.reserve(static_cast<std::size_t>(std::max(1, reps())));
    for (int i = 0; i < std::max(1, reps()); ++i) xs.push_back(fn());
    return median(xs);
  }

  [[nodiscard]] const RunOptions& options() const { return opt_; }

 private:
  RunOptions opt_;
  unsigned threads_;
  int reps_;
  int warmup_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<MachineCoeffs> coeffs_;
};

}  // namespace sapp::repro
