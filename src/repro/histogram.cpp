#include "repro/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sapp::repro {

std::size_t LatencyHistogram::bucket_of(double seconds) {
  const double ns = seconds * 1e9;
  if (!(ns >= 1.0)) return 0;  // sub-nanosecond, zero, negative, NaN
  const auto v = static_cast<std::uint64_t>(ns);
  const auto octave = static_cast<std::size_t>(std::bit_width(v) - 1);
  if (octave >= kOctaves) return kBuckets - 1;
  // Low 3 bits below the leading bit pick the linear sub-bucket.
  const std::size_t sub =
      octave >= 3 ? static_cast<std::size_t>((v >> (octave - 3)) & 7)
                  : static_cast<std::size_t>((v << (3 - octave)) & 7);
  return octave * kSub + sub;
}

double LatencyHistogram::bucket_value(std::size_t bucket) {
  const std::size_t octave = bucket / kSub;
  const std::size_t sub = bucket % kSub;
  // Bucket spans [lo, lo + lo/8) ns where lo = 2^octave * (1 + sub/8);
  // report the midpoint.
  const double lo = std::ldexp(1.0 + static_cast<double>(sub) / kSub,
                               static_cast<int>(octave));
  return (lo + lo / (2.0 * kSub)) * 1e-9;
}

void LatencyHistogram::record(double seconds) {
  if (!(seconds >= 0.0)) {  // negative or NaN: a timer bug, not a sample
    ++invalid_samples_;
    return;
  }
  ++buckets_[bucket_of(seconds)];
  ++count_;
  sum_s_ += seconds;
  max_s_ = std::max(max_s_, seconds);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  invalid_samples_ += other.invalid_samples_;
  sum_s_ += other.sum_s_;
  max_s_ = std::max(max_s_, other.max_s_);
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Rank at least 1: q = 0 explicitly means "the smallest recorded
  // latency's bucket", not a vacuous rank-0 threshold.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    // The first bucket where the cumulative count crosses the rank is
    // non-empty by construction (rank >= 1 and `seen` only grows when a
    // bucket holds samples).
    if (seen >= rank) return bucket_value(b);
  }
  return bucket_value(kBuckets - 1);
}

}  // namespace sapp::repro
