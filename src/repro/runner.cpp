#include "repro/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/topology.hpp"
#include "reductions/kernels.hpp"

namespace sapp::repro {

namespace fs = std::filesystem;

namespace {

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t end = 0;
    out = std::stod(s, &end);
    return end == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_int(const std::string& s, int& out) {
  try {
    std::size_t end = 0;
    out = std::stoi(s, &end);
    return end == s.size();
  } catch (...) {
    return false;
  }
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Render the fixed-width stdout view of one result (the markdown/CSV/JSON
/// files are the durable artifacts; this is for humans watching the run).
void print_result(const RunMeta& meta, const ExperimentResult& r,
                  std::ostream& os) {
  os << "=== " << meta.experiment << ": " << meta.title << " ["
     << meta.paper_ref << "] ===\n"
     << "scale " << format_json_number(meta.scale) << ", threads "
     << meta.threads << ", reps " << meta.reps << ", warmup " << meta.warmup
     << (meta.tiny ? ", tiny" : "") << "\n";
  for (const auto& rt : r.tables) {
    os << "\n-- " << rt.name << " --\n";
    Table t(rt.columns);
    for (const auto& row : rt.rows) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const auto& cell : row) cells.push_back(format_cell(cell));
      t.add_row(std::move(cells));
    }
    os << t.str();
  }
  if (!r.metrics.empty()) {
    os << "\n-- summary metrics --\n";
    for (const auto& [k, v] : r.metrics)
      os << "  " << k << " = " << format_json_number(v) << "\n";
  }
  for (const auto& n : r.notes) os << "note: " << n << "\n";
  os << "\n";
}

struct WrittenFile {
  std::string experiment;
  fs::path path;
};

}  // namespace

std::string usage() {
  return R"(usage: sapp_repro [options] [<experiment> ...]

Reproduce the paper's experiments (figures, tables, ablations).

  --list             list registered experiments and exit
  --list-backends    list compiled/usable kernel backends, the dispatch
                     decision and the host topology, then exit
  --all              run every registered experiment
  --tiny             smoke sizes: ~1/10 scale (capped at 0.05), 1 rep
  --format LIST      comma-separated subset of {table,csv,json}
                     (default: table; 'table' writes GitHub markdown)
  --out DIR          output directory
                     (default: docs/results/<os>-<arch>[-tiny])
  --no-write         do not write files, print to stdout only
  --check            schema-validate the JSON rendering (exit 1 on failure)
  --quiet            suppress the stdout table rendering
  --scale X          workload scale in (0,1]; overrides SAPP_SCALE/SAPP_FULL
  --threads N        software-scheme threads; overrides SAPP_THREADS
  --reps N           timing repetitions (median reported; default 3)
  --warmup N         untimed warmup runs (default 1)
  -h, --help         show this help

Examples:
  sapp_repro --list
  sapp_repro fig3_adaptive_table --format table,json
  sapp_repro --all --tiny --format json --check
)";
}

std::string parse_cli(int argc, const char* const* argv, CliOptions& opts) {
  opts.run = RunOptions::from_env();
  bool format_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument(std::string(flag) + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--list") opts.list = true;
      else if (arg == "--list-backends") opts.list_backends = true;
      else if (arg == "--all") opts.all = true;
      else if (arg == "--tiny") opts.run.tiny = true;
      else if (arg == "--check") opts.check = true;
      else if (arg == "--no-write") opts.no_write = true;
      else if (arg == "--quiet") opts.quiet = true;
      else if (arg == "-h" || arg == "--help") opts.help = true;
      else if (arg == "--format") {
        opts.formats = split_commas(value("--format"));
        format_given = true;
        if (opts.formats.empty()) return "--format needs at least one value";
        for (const auto& f : opts.formats)
          if (f != "table" && f != "csv" && f != "json")
            return "unknown format '" + f + "' (expected table, csv or json)";
      } else if (arg == "--out") {
        opts.out_dir = value("--out");
      } else if (arg == "--scale") {
        double v = 0.0;
        if (!parse_double(value("--scale"), v) || v <= 0.0 || v > 1.0)
          return "--scale needs a number in (0, 1]";
        opts.run.scale = v;
      } else if (arg == "--threads") {
        int v = 0;
        if (!parse_int(value("--threads"), v) || v < 1 || v > 256)
          return "--threads needs an integer in [1, 256]";
        opts.run.threads = static_cast<unsigned>(v);
      } else if (arg == "--reps") {
        int v = 0;
        if (!parse_int(value("--reps"), v) || v < 1)
          return "--reps needs a positive integer";
        opts.run.reps = v;
      } else if (arg == "--warmup") {
        int v = 0;
        if (!parse_int(value("--warmup"), v) || v < 0)
          return "--warmup needs a non-negative integer";
        opts.run.warmup = v;
      } else if (!arg.empty() && arg[0] == '-') {
        return "unknown option '" + arg + "'";
      } else {
        opts.experiments.push_back(arg);
      }
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
  }
  // --check validates the JSON rendering, so make sure it exists.
  if (opts.check && format_given &&
      std::find(opts.formats.begin(), opts.formats.end(), "json") ==
          opts.formats.end())
    opts.formats.push_back("json");
  if (opts.check && !format_given) opts.formats = {"json"};
  return "";
}

int run_cli(const CliOptions& opts, const ExperimentRegistry& registry,
            std::ostream& out, std::ostream& err) {
  if (opts.help) {
    out << usage();
    return 0;
  }
  if (opts.list_backends) {
    Table t({"Backend", "ISA", "Compiled", "CPU", "Active"});
    for (const kernels::Backend b :
         {kernels::Backend::kScalar, kernels::Backend::kAvx2,
          kernels::Backend::kAvx512}) {
      t.add_row({kernels::to_string(b),
                 b == kernels::Backend::kScalar ? "portable"
                 : b == kernels::Backend::kAvx2 ? "AVX2 (4 lanes)"
                                                : "AVX-512F (8 lanes)",
                 kernels::compiled(b) ? "yes" : "no",
                 kernels::cpu_supports(b) ? "yes" : "no",
                 b == kernels::active_backend() ? "*" : ""});
    }
    out << t.str() << "\ndispatch: " << kernels::dispatch_summary()
        << "\ntopology: " << CpuTopology::host().summary()
        << "\ncombine:  " << topology::policy_summary() << "\n";
    return 0;
  }
  if (opts.list) {
    Table t({"Experiment", "Paper", "Default scale", "Description"});
    for (const auto& e : registry.list())
      t.add_row({e.name, e.paper_ref, Table::num(e.default_scale, 2),
                 e.description});
    out << t.str();
    return 0;
  }

  std::vector<const Experiment*> selected;
  if (opts.all) {
    for (const auto& e : registry.list()) selected.push_back(&e);
  } else {
    for (const auto& name : opts.experiments) {
      try {
        selected.push_back(&registry.find(name));
      } catch (const std::out_of_range& e) {
        err << "sapp_repro: " << e.what() << "\n";
        return 2;
      }
    }
  }
  if (selected.empty()) {
    err << "sapp_repro: nothing to run (name experiments, or use --all / "
           "--list)\n"
        << usage();
    return 2;
  }

  const HostInfo host = HostInfo::current();
  fs::path out_dir;
  if (!opts.no_write) {
    out_dir = opts.out_dir.empty()
                  ? fs::path("docs") / "results" /
                        (host.tag() + (opts.run.tiny ? "-tiny" : ""))
                  : fs::path(opts.out_dir);
    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec) {
      err << "sapp_repro: cannot create output directory " << out_dir
          << ": " << ec.message() << "\n";
      return 1;
    }
  }

  std::vector<WrittenFile> written;
  std::vector<std::pair<const Experiment*, double>> timings;
  int failures = 0;
  // One context for the whole run: the ThreadPool and the calibrated
  // MachineCoeffs are shared across experiments.
  RunContext ctx(opts.run);
  for (const Experiment* e : selected) {
    RunMeta meta;
    meta.experiment = e->name;
    meta.title = e->title;
    meta.paper_ref = e->paper_ref;
    meta.scale = ctx.scale(e->default_scale);
    meta.threads = ctx.threads();
    meta.reps = ctx.reps();
    meta.warmup = ctx.warmup();
    meta.tiny = ctx.tiny();

    ExperimentResult result;
    Timer timer;
    try {
      result = e->run(ctx);
    } catch (const std::exception& ex) {
      err << "sapp_repro: experiment '" << e->name << "' failed: "
          << ex.what() << "\n";
      ++failures;
      continue;
    }
    timings.emplace_back(e, timer.seconds());

    if (!opts.quiet) print_result(meta, result, out);

    const JsonValue doc = result_to_json(meta, host, result);
    if (opts.check) {
      // Round-trip through the parser and validate what a reader of the
      // written file would see (serialization maps non-finite numbers to
      // null, which the in-memory document would hide).
      std::string parse_err;
      const auto reparsed = JsonValue::parse(doc.dump(), &parse_err);
      if (!reparsed) {
        err << "sapp_repro: JSON for '" << e->name
            << "' does not re-parse: " << parse_err << "\n";
        ++failures;
        continue;
      }
      if (const std::string schema_err = validate_result_json(*reparsed);
          !schema_err.empty()) {
        err << "sapp_repro: schema check failed for '" << e->name
            << "': " << schema_err << "\n";
        ++failures;
        continue;
      }
    }

    if (!opts.no_write) {
      for (const auto& format : opts.formats) {
        const char* ext = format == "table" ? "md"
                          : format == "csv" ? "csv"
                                            : "json";
        const fs::path path = out_dir / (e->name + "." + ext);
        std::ofstream file(path);
        if (!file) {
          err << "sapp_repro: cannot write " << path << "\n";
          ++failures;
          continue;
        }
        if (format == "table") file << render_markdown(meta, host, result);
        else if (format == "csv") file << render_csv(meta, result);
        else file << doc.dump();
        written.push_back({e->name, path});
      }
    }
  }

  // An index makes the committed docs/results/<host>/ tree navigable.
  if (!opts.no_write && opts.all && failures == 0) {
    std::ofstream index(out_dir / "index.md");
    index << "# sapp_repro results — " << host.tag()
          << (opts.run.tiny ? " (tiny smoke sizes)" : "") << "\n\n"
          << "Produced by `sapp_repro --all`"
          << (opts.run.tiny ? " `--tiny`" : "") << " on a " << host.tag()
          << " host with " << host.hardware_threads
          << " hardware threads (" << host.compiler
          << "). See [docs/reproducing.md](../../reproducing.md) for the "
             "figure-by-figure mapping and the JSON schema.\n\n"
          << "| Experiment | Paper | Wall time (s) | Files |\n"
          << "| --- | --- | --- | --- |\n";
    for (const auto& [e, secs] : timings) {
      index << "| " << e->name << " | " << e->paper_ref << " | "
            << format_json_number(round_to(secs, 1)) << " |";
      bool first = true;
      for (const auto& w : written) {
        if (w.experiment != e->name) continue;
        index << (first ? " " : ", ") << "[" << w.path.extension().string().substr(1)
              << "](" << w.path.filename().string() << ")";
        first = false;
      }
      index << " |\n";
    }
  }

  if (!opts.no_write && !written.empty() && !opts.quiet)
    out << "wrote " << written.size() << " file(s) under " << out_dir.string()
        << "\n";
  return failures == 0 ? 0 : 1;
}

int run_cli(int argc, const char* const* argv) {
  CliOptions opts;
  if (const std::string parse_error = parse_cli(argc, argv, opts);
      !parse_error.empty()) {
    std::cerr << "sapp_repro: " << parse_error << "\n" << usage();
    return 2;
  }
  return run_cli(opts, builtin_experiments(), std::cout, std::cerr);
}

}  // namespace sapp::repro
