// Serving-scale stress experiment:
//   serving — many client threads hammer one sapp::Runtime with a churning
//             mix of thousands of distinct loop sites (randomized dims,
//             memory ops and tags from workloads::make_serving_site). A
//             sliding window over the site-index space keeps only a small
//             working set hot, so sites continually go cold, get evicted by
//             the LRU cap, persist their decision into the sharded store,
//             and later return to warm-start instead of re-characterizing.
//             Reps share one store directory: rep 0 populates it, every
//             later rep constructs a *fresh* Runtime against the same
//             shards — a process-restart drill that must reload every
//             persisted decision and warm-start returning sites with zero
//             mismatches. Submissions also run the in-flight reduction
//             checker at a low sample rate, so the serving numbers include
//             the checking tax and any silent corruption would surface as
//             check_failures.
//
// Reported: sustained throughput (median across reps) and p50/p90/p99
// site-invocation latency (log-linear histogram merged across reps and
// clients). The CI repro-smoke gate enforces a minimum throughput, a p99
// ceiling, zero correctness mismatches and a bounded site table — see
// .github/workflows/ci.yml and docs/serving.md.
//
// The adaptation feedback loop (mispredict/time-drift demotion) is parked:
// with 8 clients contending on one pool arbiter, measured invocation times
// are dominated by queueing noise and would demote decisions at random,
// gating nothing. This harness measures the serving substrate — site
// table, eviction, async persistence, warm starts; adaptivity-under-drift
// has its own experiment (phase_drift).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/runtime.hpp"
#include "repro/histogram.hpp"
#include "repro/registry.hpp"
#include "workloads/workload.hpp"

namespace sapp::repro {

namespace {

/// Shape of one serving run, derived from the workload scale.
struct ServingConfig {
  std::size_t sites = 0;          ///< distinct loop sites in the population
  std::size_t cap = 0;            ///< Runtime max_sites (LRU bound)
  unsigned clients = 0;           ///< submitter threads
  std::uint64_t requests = 0;     ///< total submissions across clients
  std::size_t window = 0;         ///< hot working-set width (in sites)
  std::size_t step = 0;           ///< window advance (in sites)
  std::uint64_t advance_every = 0;///< requests between window advances
  std::size_t verify_sites = 0;   ///< low-index sites spot-checked per request
};

ServingConfig make_config(RunContext& ctx, double scale) {
  ServingConfig c;
  c.sites = std::max<std::size_t>(
      64, static_cast<std::size_t>(2000.0 * scale));
  // Cap at a fifth of the population: most of the mix is cold at any
  // moment, so the table must evict constantly to stay bounded.
  c.cap = std::max<std::size_t>(16, c.sites / 5);
  c.clients = ctx.tiny() ? 4 : 8;
  c.requests = static_cast<std::uint64_t>(c.sites) * 12;
  c.window = std::max<std::size_t>(8, c.cap / 2);
  c.advance_every = 64;
  // Step sized so the window makes ~2.2 passes over the whole population:
  // every site is visited, evicted while cold, and revisited for a warm
  // start at least once.
  const std::uint64_t advances =
      std::max<std::uint64_t>(1, c.requests / c.advance_every);
  c.step = std::max<std::size_t>(1, (22 * c.sites) / (10 * advances));
  c.verify_sites = std::min<std::size_t>(24, c.sites);
  return c;
}

RuntimeOptions runtime_options(RunContext& ctx, const ServingConfig& c,
                               const std::string& cache_dir) {
  RuntimeOptions o;
  o.threads = ctx.threads();
  o.coeffs = &ctx.coeffs();
  o.adaptive.mispredict_patience = 1 << 30;       // see file comment
  o.adaptive.monitor.time_drift_patience = 1 << 30;
  o.max_sites = c.cap;
  o.decision_cache_dir = cache_dir;
  o.flush_interval_s = 0.01;  // many async flushes within a ~1 s run
  // In-flight checking at a serving-realistic sample rate: cheap enough to
  // leave on, dense enough that sustained corruption could not hide.
  o.adaptive.check.enabled = true;
  o.adaptive.check.sample_rate = 0.05;
  return o;
}

/// Everything one timed repetition produces.
struct RepStats {
  double wall_s = 0.0;
  LatencyHistogram hist;  // merged across this rep's clients
  std::uint64_t evictions = 0;
  std::uint64_t warm_offers = 0;
  std::uint64_t flushes = 0;
  std::uint64_t flush_failures = 0;
  std::uint64_t mismatches = 0;
  std::size_t max_live = 0;
  std::size_t end_live = 0;
  std::size_t store_entries = 0;
  std::size_t store_entries_start = 0;  // reloaded from disk at construction
  std::uint64_t checks_run = 0;
  std::uint64_t check_failures = 0;
};

RepStats run_rep(RunContext& ctx, const ServingConfig& cfg,
                 const std::vector<ReductionInput>& inputs,
                 const std::vector<std::vector<double>>& refs,
                 const std::string& cache_dir, int rep) {
  Runtime rt(runtime_options(ctx, cfg, cache_dir));
  const std::size_t entries_start = rt.warm_entries();

  std::size_t max_dim = 0;
  for (const auto& in : inputs) max_dim = std::max(max_dim, in.pattern.dim);

  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::size_t> max_live{0};
  std::atomic<bool> done{false};

  // Watch the live-site count while clients run: the LRU cap must hold
  // *during* churn, not just at the end. Transient overshoot is bounded by
  // the number of in-flight creations (one per client).
  std::thread watcher([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::size_t live = rt.site_count();
      std::size_t seen = max_live.load(std::memory_order_relaxed);
      while (live > seen &&
             !max_live.compare_exchange_weak(seen, live)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<LatencyHistogram> hists(cfg.clients);
  std::vector<std::thread> clients;
  clients.reserve(cfg.clients);
  Timer wall;
  for (unsigned t = 0; t < cfg.clients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(0xC0FFEEull + static_cast<std::uint64_t>(rep) * 977 + t);
      std::vector<double> buf(max_dim, 0.0);
      LatencyHistogram& hist = hists[t];
      for (;;) {
        const std::uint64_t r = next.fetch_add(1, std::memory_order_relaxed);
        if (r >= cfg.requests) break;
        // Sliding hot window: the window's base walks the population as
        // the global request counter advances; each request picks a site
        // uniformly inside the window.
        const std::size_t base = static_cast<std::size_t>(
            (r / cfg.advance_every) * cfg.step % cfg.sites);
        const std::size_t idx =
            (base + rng.below(static_cast<std::uint64_t>(cfg.window))) %
            cfg.sites;
        const ReductionInput& in = inputs[idx];
        const std::size_t dim = in.pattern.dim;
        std::fill_n(buf.begin(), dim, 0.0);
        Timer t_req;
        (void)rt.submit(in, std::span<double>(buf.data(), dim));
        hist.record(t_req.seconds());
        if (idx < cfg.verify_sites) {
          const std::vector<double>& ref = refs[idx];
          for (std::size_t e = 0; e < dim; ++e) {
            if (std::abs(buf[e] - ref[e]) >
                1e-9 + 1e-6 * std::abs(ref[e])) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  RepStats s;
  s.wall_s = wall.seconds();
  done.store(true);
  watcher.join();

  for (const auto& h : hists) s.hist.merge(h);
  s.evictions = rt.evictions();
  s.warm_offers = rt.warm_offers();
  s.store_entries_start = entries_start;
  s.checks_run = rt.checks_run();
  s.check_failures = rt.check_failures();
  s.mismatches = mismatches.load();
  s.max_live = std::max(max_live.load(), rt.site_count());
  s.end_live = rt.site_count();
  (void)rt.flush_decisions();
  s.flushes = rt.decision_store().flushes();
  s.flush_failures = rt.decision_store().flush_failures();
  s.store_entries = rt.decision_store().size();
  return s;
}

ExperimentResult run_serving(RunContext& ctx) {
  const double scale = ctx.scale(1.0);
  const ServingConfig cfg = make_config(ctx, scale);

  // The whole site population up front (clients only index into it). The
  // generator scales per-request cost with `scale`; the population shape
  // (dims, ops, skew) is scale-independent.
  std::vector<ReductionInput> inputs;
  inputs.reserve(cfg.sites);
  for (std::size_t i = 0; i < cfg.sites; ++i)
    inputs.push_back(
        workloads::make_serving_site(i, scale, /*seed=*/2026).input);

  // Sequential references for the spot-checked low-index sites: under
  // churn those sites are created, evicted and revived repeatedly, so a
  // matching sum proves exactly-once execution through every transition.
  std::vector<std::vector<double>> refs(cfg.verify_sites);
  for (std::size_t i = 0; i < cfg.verify_sites; ++i) {
    refs[i].assign(inputs[i].pattern.dim, 0.0);
    run_sequential(inputs[i], refs[i]);
  }

  // PID-qualified store directory shared by ALL reps: rep 0 starts cold
  // and populates the shards; every later rep constructs a fresh Runtime
  // against the same directory — a process restart. Concurrent sapp_repro
  // runs still never share a shard file. At least two reps always run so
  // the restart path is exercised even under --reps 1 / --tiny.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("sapp_serving." + std::to_string(::getpid()) + ".cache"))
          .string();
  std::filesystem::remove_all(dir);

  const int reps = std::max(2, ctx.reps());
  std::vector<RepStats> stats;
  std::vector<double> rps;
  LatencyHistogram merged;
  ResultTable per_rep("serving_reps",
                      {"Rep", "Wall s", "Throughput req/s", "p50 us",
                       "p99 us", "Evictions", "Warm offers", "Flushes",
                       "Max live", "End live", "Store at start"});
  for (int rep = 0; rep < reps; ++rep) {
    RepStats s = run_rep(ctx, cfg, inputs, refs, dir, rep);
    const double tput =
        s.wall_s > 0.0 ? static_cast<double>(cfg.requests) / s.wall_s : 0.0;
    rps.push_back(tput);
    merged.merge(s.hist);
    per_rep.add_row({static_cast<double>(rep), round_to(s.wall_s, 3),
                     round_to(tput, 0), round_to(s.hist.quantile(0.5) * 1e6, 1),
                     round_to(s.hist.quantile(0.99) * 1e6, 1),
                     static_cast<double>(s.evictions),
                     static_cast<double>(s.warm_offers),
                     static_cast<double>(s.flushes),
                     static_cast<double>(s.max_live),
                     static_cast<double>(s.end_live),
                     static_cast<double>(s.store_entries_start)});
    stats.push_back(std::move(s));
  }
  {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  std::uint64_t evictions = 0, warm = 0, flushes = 0, flush_failures = 0,
                mismatches = 0, checks = 0, check_failures = 0;
  std::size_t max_live = 0, end_live = 0, store_entries = 0;
  // Restart aggregates cover reps >= 1 only: those Runtimes were built
  // against an already-populated store, so their start-of-rep reload count
  // and warm offers measure knowledge crossing a process boundary.
  std::uint64_t restart_warm = 0;
  std::size_t restart_entries_min = inputs.size() + 1;
  std::uint64_t restart_mismatches = 0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const RepStats& s = stats[i];
    evictions += s.evictions;
    warm += s.warm_offers;
    flushes += s.flushes;
    flush_failures += s.flush_failures;
    mismatches += s.mismatches;
    checks += s.checks_run;
    check_failures += s.check_failures;
    max_live = std::max(max_live, s.max_live);
    end_live = std::max(end_live, s.end_live);
    store_entries = std::max(store_entries, s.store_entries);
    if (i >= 1) {
      restart_warm += s.warm_offers;
      restart_entries_min =
          std::min(restart_entries_min, s.store_entries_start);
      restart_mismatches += s.mismatches;
    }
  }
  // Bounded: never more than cap + one in-flight creation per client
  // mid-run, and within the cap once the run quiesces.
  const bool bounded =
      max_live <= cfg.cap + cfg.clients && end_live <= cfg.cap;

  ExperimentResult res;
  res.tables.push_back(std::move(per_rep));
  res.metric("threads", ctx.threads());
  res.metric("client_threads", cfg.clients);
  res.metric("sites_distinct", static_cast<double>(cfg.sites));
  res.metric("site_cap", static_cast<double>(cfg.cap));
  res.metric("requests", static_cast<double>(cfg.requests));
  res.metric("reps", reps);
  res.metric("throughput_rps", round_to(median(rps), 0));
  res.metric("p50_ms", round_to(merged.quantile(0.5) * 1e3, 4));
  res.metric("p90_ms", round_to(merged.quantile(0.9) * 1e3, 4));
  res.metric("p99_ms", round_to(merged.quantile(0.99) * 1e3, 4));
  res.metric("max_latency_ms", round_to(merged.max() * 1e3, 3));
  res.metric("max_live_sites", static_cast<double>(max_live));
  res.metric("end_live_sites", static_cast<double>(end_live));
  res.metric("site_table_bounded", bounded ? 1 : 0);
  res.metric("evictions", static_cast<double>(evictions));
  res.metric("warm_reregistrations", static_cast<double>(warm));
  res.metric("store_flushes", static_cast<double>(flushes));
  res.metric("store_flush_failures", static_cast<double>(flush_failures));
  res.metric("store_entries_end", static_cast<double>(store_entries));
  res.metric("sanity_mismatches", static_cast<double>(mismatches));
  // A nonzero invalid count means a client produced a negative/NaN
  // latency — a harness timer bug, so fail the run loudly right here.
  SAPP_REQUIRE(merged.invalid_samples() == 0,
               "serving harness recorded invalid (negative/NaN) latencies");
  res.metric("invalid_latency_samples",
             static_cast<double>(merged.invalid_samples()));
  res.metric("restart_reps", reps - 1);
  res.metric("restart_store_entries_min",
             static_cast<double>(restart_entries_min));
  res.metric("restart_warm_offers", static_cast<double>(restart_warm));
  res.metric("restart_mismatches", static_cast<double>(restart_mismatches));
  res.metric("checks_run", static_cast<double>(checks));
  res.metric("check_failures", static_cast<double>(check_failures));
  res.note("Throughput is the median across reps; latency quantiles come "
           "from one log-linear histogram (~6% bucket error) merged across "
           "all clients and reps. All reps share one store directory: each "
           "rep constructs a fresh Runtime, so every rep after the first "
           "is a process restart that must reload the sharded store "
           "(restart_store_entries_min counts decisions present at "
           "construction) and warm-start returning sites "
           "(restart_warm_offers) with zero restart_mismatches.");
  res.note("Every submission runs the in-flight reduction checker at "
           "sample rate 0.05 (checks_run counts them); the reported "
           "throughput and latency therefore include the checking tax, "
           "and check_failures must stay zero on healthy hardware.");
  res.note("site_table_bounded requires max_live_sites <= site_cap + "
           "client_threads while clients run (transient overshoot is one "
           "in-flight creation per client) and end_live_sites <= site_cap "
           "after quiescing; the repro-smoke gate requires it, zero "
           "sanity_mismatches, a minimum throughput_rps and a p99_ms "
           "ceiling.");
  res.note("Adaptation feedback (mispredict/time-drift demotion) is "
           "parked: under 8-client contention measured times are queueing "
           "noise. The harness measures the serving substrate — striped "
           "site table, LRU eviction, sharded async persistence, warm "
           "starts; see phase_drift for adaptivity.");
  return res;
}

}  // namespace

void register_serving_experiments(ExperimentRegistry& r) {
  r.add({.name = "serving",
         .title = "serving-scale stress: site churn, eviction, async cache",
         .paper_ref = "§5 (ROADMAP)",
         .description =
             "Many client threads submit a churning mix of thousands of "
             "randomized sites through one Runtime with a bounded site "
             "table and sharded async-persisted decision cache, with "
             "in-flight reduction checking sampled on every submission; "
             "later reps restart against the same store in a fresh "
             "Runtime. Reports sustained throughput and p50/p99 "
             "invocation latency.",
         .default_scale = 1.0,
         .run = run_serving});
}

}  // namespace sapp::repro
