// Software-study experiments (measured on the host, not simulated):
//   fig3_adaptive_table — Fig. 3 validation of adaptive scheme selection,
//   ablation_decision   — sensitivity of the rule taxonomy's thresholds.
#include <algorithm>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "repro/registry.hpp"
#include "workloads/paramsets.hpp"

namespace sapp::repro {

namespace {

struct Measured {
  SchemeKind kind;
  double seconds;
};

std::string order_string(std::vector<Measured> ms) {
  std::sort(ms.begin(), ms.end(), [](const Measured& a, const Measured& b) {
    return a.seconds < b.seconds;
  });
  std::string out;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (i) out += ">=";
    out += to_string(ms[i].kind);
  }
  return out;
}

// Figure 3 — validation of adaptive reduction-algorithm selection.
//
// For every row of the paper's table (6 applications x input sizes):
//   1. generate the workload from the official parameter set,
//   2. characterize the reference pattern (MO, DIM, SP, CON, CHR, ...),
//   3. ask both deciders (cost model / rule taxonomy) for a recommendation,
//   4. measure every applicable scheme and report the experimental
//      ordering (best first),
// then score the recommendations against the measured winners — the same
// validation the paper's table performs.
//
// Host caveat: the paper measured on 8 processors of a dedicated SMP;
// rankings are the reproducible object, not absolute speedups.
ExperimentResult run_fig3(RunContext& ctx) {
  const double scale = ctx.scale(0.3);
  ThreadPool& pool = ctx.pool();
  const MachineCoeffs& coeffs = ctx.coeffs();

  ExperimentResult res;
  ResultTable t("adaptive_selection",
                {"App", "Input", "MO", "SP%", "CON", "CHR", "Model", "Rules",
                 "Paper", "Measured order", "Paper order"});

  int model_hits = 0, rule_hits = 0, paper_hits = 0, rows_counted = 0;
  for (const auto& row : workloads::fig3_rows(scale)) {
    const auto& w = row.workload;
    const auto& in = w.input;

    const PatternStats stats = characterize(in.pattern, ctx.threads());
    const Decision model = decide_model(stats, in.pattern.body_flops, coeffs);
    const Decision rules = decide_rules(stats);

    // Measure every applicable candidate. The paper's run-time system pays
    // the inspector and the private-storage allocation at run time, so the
    // ranking charges plan + execute (median of reps() full runs).
    std::vector<Measured> measured;
    std::vector<double> out(in.pattern.dim);
    for (SchemeKind kind : candidate_scheme_kinds()) {
      const auto scheme = make_scheme(kind);
      if (!scheme->applicable(in.pattern)) continue;
      const double secs = ctx.measure([&] {
        std::fill(out.begin(), out.end(), 0.0);
        return scheme->run(in, pool, out).total_with_inspect_s();
      });
      measured.push_back({kind, secs});
    }
    const SchemeKind winner =
        std::min_element(measured.begin(), measured.end(),
                         [](const Measured& a, const Measured& b) {
                           return a.seconds < b.seconds;
                         })
            ->kind;

    ++rows_counted;
    if (model.recommended == winner) ++model_hits;
    if (rules.recommended == winner) ++rule_hits;
    if (w.paper.recommended == to_string(winner)) ++paper_hits;

    t.add_row({w.app, in.pattern.dim, round_to(stats.mo, 2),
               round_to(stats.sp, 2), round_to(stats.con, 1),
               round_to(stats.chr, 2), std::string(to_string(model.recommended)),
               std::string(to_string(rules.recommended)), w.paper.recommended,
               order_string(measured), w.paper.measured_order});
  }
  res.tables.push_back(std::move(t));

  res.metric("rows", rows_counted);
  res.metric("cost_model_hits", model_hits);
  res.metric("rule_table_hits", rule_hits);
  res.metric("paper_recommendation_hits", paper_hits);
  res.note("Decision quality scores recommendation == measured winner on "
           "this host; the paper's own model matched its measurements on "
           "16/21 rows.");
  res.note("paper_recommendation_hits compares the paper's recommended "
           "scheme with our measured winner (pattern stats are "
           "host/definition dependent; see docs/reproducing.md).");
  return res;
}

// Ablation: sensitivity of the rule-taxonomy decision to its thresholds,
// and rule-vs-cost-model agreement across the Fig. 3 parameter sets. The
// paper's selector is threshold-based ("a threshold that is tested at
// run-time"); the sweep shows how many of the 21 Fig. 3 decisions flip as
// the three most influential cut-points move.
ExperimentResult run_ablation_decision(RunContext& ctx) {
  const double scale = ctx.scale(0.1);

  // Characterize all rows once.
  const auto rows = workloads::fig3_rows(scale);
  std::vector<PatternStats> stats;
  for (const auto& r : rows)
    stats.push_back(characterize(r.workload.input.pattern, ctx.threads()));

  // Baseline decisions.
  const RuleThresholds base;
  std::vector<SchemeKind> base_pick;
  for (const auto& s : stats) base_pick.push_back(decide_rules(s).recommended);

  ExperimentResult res;
  ResultTable t("threshold_sweep",
                {"hash_sp_max", "rep_chr_min", "ll_shared_min", "flips",
                 "hash-picks", "rep-picks", "lw-picks", "ll-picks",
                 "sel-picks"});
  for (const double sp_max : {1.0, 3.0, 6.0}) {
    for (const double chr_min : {1.0, 2.0, 4.0}) {
      for (const double ll_min : {0.2, 0.35, 0.6}) {
        RuleThresholds th = base;
        th.hash_sp_max = sp_max;
        th.rep_chr_min = chr_min;
        th.ll_shared_min = ll_min;
        int flips = 0;
        int picks[5] = {0, 0, 0, 0, 0};
        for (std::size_t i = 0; i < stats.size(); ++i) {
          const SchemeKind k = decide_rules(stats[i], th).recommended;
          if (k != base_pick[i]) ++flips;
          switch (k) {
            case SchemeKind::kHash: ++picks[0]; break;
            case SchemeKind::kRep: ++picks[1]; break;
            case SchemeKind::kLocalWrite: ++picks[2]; break;
            case SchemeKind::kLinked: ++picks[3]; break;
            case SchemeKind::kSelective: ++picks[4]; break;
            default: break;
          }
        }
        t.add_row({sp_max, chr_min, round_to(ll_min, 2), flips, picks[0],
                   picks[1], picks[2], picks[3], picks[4]});
      }
    }
  }
  res.tables.push_back(std::move(t));

  // Rule vs model agreement at the defaults.
  const MachineCoeffs& mc = ctx.coeffs();
  int agree = 0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const auto m = decide_model(
        stats[i], rows[i].workload.input.pattern.body_flops, mc);
    if (m.recommended == base_pick[i]) ++agree;
  }
  res.metric("rows", static_cast<double>(stats.size()));
  res.metric("rule_vs_model_agreement", agree);
  res.note("Agreement counts rows where the rule taxonomy and the cost "
           "model pick the same scheme at default thresholds.");
  return res;
}

}  // namespace

void register_software_experiments(ExperimentRegistry& r) {
  r.add({.name = "fig3_adaptive_table",
         .title = "adaptive reduction-scheme selection (Fig. 3)",
         .paper_ref = "Fig. 3",
         .description =
             "Characterize each Fig. 3 workload, compare the cost-model and "
             "rule-taxonomy recommendations against the measured-on-this-"
             "host scheme ranking.",
         .default_scale = 0.3,
         .run = run_fig3});
  r.add({.name = "ablation_decision",
         .title = "decision-threshold sensitivity",
         .paper_ref = "ablation (Fig. 3 data)",
         .description =
             "Sweep the rule taxonomy's thresholds over the Fig. 3 rows and "
             "count flipped decisions; report rule-vs-model agreement.",
         .default_scale = 0.1,
         .run = run_ablation_decision});
}

}  // namespace sapp::repro
