// Log-linear latency histogram for the serving-scale experiments.
//
// Percentiles of millions of per-request latencies cannot be computed by
// keeping every sample. This is the standard log-linear compromise (the
// HdrHistogram layout at small fixed size): buckets cover one power of
// two of nanoseconds each, split into 8 linear sub-buckets, giving a
// worst-case relative error of ~6% per reported quantile across a range
// of 1 ns to ~18 s — plenty for p50/p99 gates — in a few KB of counters.
//
// Intended use: one histogram per client thread (record() is not
// thread-safe), merged after the run, quantiles read off the merge.
#pragma once

#include <array>
#include <cstdint>

namespace sapp::repro {

/// Fixed-size log-linear histogram of latencies in seconds.
class LatencyHistogram {
 public:
  /// Record one latency. Zero and sub-nanosecond durations clamp into the
  /// first bucket; negative and NaN durations are rejected — they count
  /// only in invalid_samples() and leave count/mean/max untouched (a
  /// negative "latency" is a timer bug, not a fast request).
  void record(double seconds);

  /// Fold `other` into this histogram (including its invalid counter).
  void merge(const LatencyHistogram& other);

  /// The q-quantile (q in [0,1]; clamped) in seconds: the representative
  /// value of the first bucket whose cumulative count reaches
  /// max(1, ceil(q * count())) — so q = 0 is explicitly the min-latency
  /// bucket and q = 1 the max-latency one. Returns 0 for an empty
  /// histogram.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Rejected record() calls (negative or NaN duration). The serving
  /// harness asserts this stays zero — a nonzero value means a client
  /// thread produced a nonsense timing.
  [[nodiscard]] std::uint64_t invalid_samples() const {
    return invalid_samples_;
  }
  /// Arithmetic mean of the recorded latencies (exact, not bucketed).
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_s_ / static_cast<double>(count_);
  }
  /// Largest recorded latency (exact, not bucketed).
  [[nodiscard]] double max() const { return max_s_; }

 private:
  /// 34 octaves (1 ns .. ~17 s) x 8 linear sub-buckets.
  static constexpr std::size_t kOctaves = 34;
  static constexpr std::size_t kSub = 8;
  static constexpr std::size_t kBuckets = kOctaves * kSub;

  [[nodiscard]] static std::size_t bucket_of(double seconds);
  /// Representative latency of a bucket (geometric midpoint), seconds.
  [[nodiscard]] static double bucket_value(std::size_t bucket);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t invalid_samples_ = 0;
  double sum_s_ = 0.0;
  double max_s_ = 0.0;
};

}  // namespace sapp::repro
