// Speculation experiment (§3, ref [5]): R-LRPD speedup on partially
// parallel loops as a function of cross-iteration dependence density.
//
// "We have implemented the Recursive LRPD test and applied it to the three
//  most important loops in TRACK ... prior to this technique, TRACK was
//  considered sequential." The TRACK loops have a few genuine dependences
// in otherwise parallel work; this harness sweeps that density.
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "repro/registry.hpp"
#include "spec/rlrpd.hpp"

namespace sapp::repro {

namespace {

ExperimentResult run_spec_rlrpd(RunContext& ctx) {
  const double scale = ctx.scale(1.0);
  // Floor: the dependence-pair generator places sinks up to 170 past a
  // source drawn below n - 200, so n must stay comfortably above that.
  const auto n = std::max<std::size_t>(
      1000, static_cast<std::size_t>(30000 * scale));
  constexpr std::size_t kDim = 40000;
  constexpr int kWork = 800;  // flops per iteration (TRACK-like heavy body)
  ThreadPool& pool = ctx.pool();

  ExperimentResult res;
  ResultTable t("dependence_density_sweep",
                {"Dep density", "Rounds", "Committed", "Re-executed",
                 "Seq ms", "R-LRPD ms", "Speedup"});
  for (const double density : {0.0, 0.0005, 0.002, 0.01, 0.05}) {
    // Dependence pairs: iteration s writes a flag element, iteration
    // s + gap reads it. Pairs scattered deterministically.
    Rng rng(99);
    std::vector<std::uint8_t> reads_flag(n, 0), writes_flag(n, 0);
    const auto deps = static_cast<std::size_t>(density * static_cast<double>(n));
    for (std::size_t d = 0; d < deps; ++d) {
      const std::size_t src = rng.below(n - 200);
      const std::size_t sink = src + 20 + rng.below(150);
      writes_flag[src] = 1;
      reads_flag[sink] = 1;
    }

    const SpecLoopBody body = [&](std::size_t i, SpecArray& a) {
      double x = 1.0 + static_cast<double>(i % 7);
      for (int k = 0; k < kWork; ++k) x = x * 0.999 + 0.01;  // heavy body
      if (writes_flag[i]) a.write(static_cast<std::uint32_t>(kDim - 1), x);
      if (reads_flag[i]) x += a.read(static_cast<std::uint32_t>(kDim - 1));
      a.reduce_add(static_cast<std::uint32_t>(i % (kDim - 2)), x);
    };

    std::vector<double> seq(kDim, 0.0), par(kDim, 0.0);
    const double seq_s = ctx.measure([&] {
      std::fill(seq.begin(), seq.end(), 0.0);
      Timer timer;
      sequential_execute(n, body, seq);
      return timer.seconds();
    });

    RlrpdStats st{};
    const double par_s = ctx.measure([&] {
      std::fill(par.begin(), par.end(), 0.0);
      Timer timer;
      st = rlrpd_execute(n, body, par, pool);
      return timer.seconds();
    });

    t.add_row({round_to(density, 4), st.rounds, st.committed, st.reexecuted,
               round_to(seq_s * 1e3, 1), round_to(par_s * 1e3, 1),
               round_to(seq_s / par_s, 2)});
  }
  res.tables.push_back(std::move(t));
  res.metric("iterations", static_cast<double>(n));
  res.note("At density 0 the loop commits in one round (plain LRPD pass); "
           "as genuine dependences appear, only the suffix past each "
           "earliest sink re-executes, so useful speedup survives moderate "
           "densities — the paper's TRACK result.");
  return res;
}

}  // namespace

void register_speculation_experiments(ExperimentRegistry& r) {
  r.add({.name = "spec_rlrpd",
         .title = "R-LRPD speculation on partially parallel loops",
         .paper_ref = "§3",
         .description =
             "Sweep cross-iteration dependence density and report rounds, "
             "re-executed iterations and speedup of the Recursive LRPD "
             "test against sequential execution.",
         .default_scale = 1.0,
         .run = run_spec_rlrpd});
}

}  // namespace sapp::repro
