// sapp_repro command-line driver (the bench/sapp_repro.cpp main is a thin
// wrapper around run_cli so the CLI is testable and lives in the library).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "repro/registry.hpp"

namespace sapp::repro {

/// Parsed command line. See `usage()` / docs/reproducing.md.
struct CliOptions {
  bool list = false;
  bool list_backends = false;  ///< print kernel backends/topology and exit
  bool all = false;
  bool help = false;
  bool check = false;     ///< re-parse + schema-validate every JSON written
  bool no_write = false;  ///< print to stdout only
  bool quiet = false;     ///< suppress the stdout table rendering
  std::vector<std::string> formats = {"table"};  // table|csv|json
  std::string out_dir;    ///< empty = docs/results/<host-tag>[-tiny]
  std::vector<std::string> experiments;
  RunOptions run;
};

/// Parse argv. Returns an error message (empty on success); `-h/--help`
/// sets opts.help instead of erroring.
[[nodiscard]] std::string parse_cli(int argc, const char* const* argv,
                                    CliOptions& opts);

[[nodiscard]] std::string usage();

/// Execute the parsed command against a registry. Returns the process exit
/// code: 0 success, 1 an experiment or --check failed, 2 usage error.
int run_cli(const CliOptions& opts, const ExperimentRegistry& registry,
            std::ostream& out, std::ostream& err);

/// Convenience used by main(): parse + run against builtin_experiments().
int run_cli(int argc, const char* const* argv);

}  // namespace sapp::repro
