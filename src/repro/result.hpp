// Result model shared by every registered experiment.
//
// An experiment produces tables (the paper's figures are all tables once
// the bars are numbers), scalar summary metrics, and free-form notes. The
// runner renders one ExperimentResult to markdown, CSV, or JSON — the three
// `--format` values — so no experiment ever formats its own output.
// docs/reproducing.md documents the JSON schema rendered here.
#pragma once

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "repro/json.hpp"

namespace sapp::repro {

/// Schema version stamped into every JSON document; bump when the document
/// layout changes incompatibly. v2 added the required `environment` block
/// (kernel backend, ISA, topology).
inline constexpr int kSchemaVersion = 2;

/// One column-labelled table of results. Cells are JSON scalars so the
/// JSON rendering stays typed (numbers are numbers, not strings).
struct ResultTable {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<JsonValue>> rows;

  ResultTable(std::string table_name, std::vector<std::string> cols)
      : name(std::move(table_name)), columns(std::move(cols)) {}

  /// Append a row; width must match `columns`.
  void add_row(std::vector<JsonValue> row);
};

/// Everything one experiment reports.
struct ExperimentResult {
  std::vector<ResultTable> tables;
  /// Scalar summary metrics in insertion order (hit rates, harmonic
  /// means, ...).
  std::vector<std::pair<std::string, double>> metrics;
  /// Human context: paper reference values, host caveats.
  std::vector<std::string> notes;

  void metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  void note(std::string text) { notes.push_back(std::move(text)); }
};

/// Identity of a run, filled in by the runner (experiments never see it).
struct RunMeta {
  std::string experiment;  ///< registry name, e.g. "fig3_adaptive_table"
  std::string title;
  std::string paper_ref;   ///< "Fig. 3", "Table 2", "§3", ...
  double scale = 1.0;
  unsigned threads = 0;
  int reps = 1;
  int warmup = 0;
  bool tiny = false;
};

/// Identification of the machine a result was produced on.
struct HostInfo {
  std::string os;        ///< "linux", "darwin", "windows", "unknown"
  std::string arch;      ///< "x86_64", "aarch64", ...
  std::string compiler;  ///< e.g. "GNU 12.2.0"
  unsigned hardware_threads = 0;

  /// "<os>-<arch>" — the docs/results/ subdirectory name.
  [[nodiscard]] std::string tag() const { return os + "-" + arch; }

  /// Probe the build/runtime host.
  [[nodiscard]] static HostInfo current();
};

/// Execution environment of a run: which kernel backend dispatch selected,
/// the CPU's vector capability, and the machine topology driving the
/// combine schedule. Rendered into every result document (schema v2) so a
/// committed number can always be traced to the code path that produced it.
struct EnvironmentInfo {
  std::string backend;   ///< active backend name ("scalar", "avx2", ...)
  std::string isa;       ///< backend ISA description
  std::string dispatch;  ///< dispatch decision incl. detected/compiled sets
  std::string topology;  ///< CpuTopology::host().summary()
  std::string combine;   ///< combine-schedule policy (topology::policy_summary)

  /// Probe the active backend + host topology.
  [[nodiscard]] static EnvironmentInfo current();
};

/// Round to `digits` decimal places — use when storing derived doubles so
/// the shortest-round-trip JSON writer does not print 16-digit noise.
[[nodiscard]] inline double round_to(double v, int digits) {
  const double p = std::pow(10.0, digits);
  return std::round(v * p) / p;
}

/// Renderers. Markdown yields a standalone GitHub-flavoured document; CSV
/// yields one header+rows block per table separated by comment lines; JSON
/// yields the schema documented in docs/reproducing.md.
[[nodiscard]] std::string render_markdown(const RunMeta& meta,
                                          const HostInfo& host,
                                          const ExperimentResult& r);
[[nodiscard]] std::string render_csv(const RunMeta& meta,
                                     const ExperimentResult& r);
[[nodiscard]] JsonValue result_to_json(const RunMeta& meta,
                                       const HostInfo& host,
                                       const ExperimentResult& r);

/// Render one cell for the text formats (strings pass through, numbers via
/// format_json_number, bools as true/false).
[[nodiscard]] std::string format_cell(const JsonValue& v);

/// Schema check used by `sapp_repro --check` and the smoke tests: verifies
/// the required keys, their types, and per-table row/column consistency.
/// Returns an error description, or an empty string when valid.
[[nodiscard]] std::string validate_result_json(const JsonValue& doc);

}  // namespace sapp::repro
