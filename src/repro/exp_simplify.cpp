// Frontend simplification ablation:
//   simplify — rewritten O(N) reductions vs the best adaptive scheme.
//
// The adaptive runtime picks the fastest way to *execute* a reduction; the
// frontend pass (frontend/simplify.hpp) deletes work instead. This
// experiment makes that separation measurable: for the prefix-sum and
// sliding-window shapes it times the steady-state adaptive execution of
// the naive O(N²)/O(N·W) lowering (site already characterized and decided
// — first-invocation costs excluded, which favors the runtime) against the
// rewritten form, over a ladder of sizes. The speedup must *grow* with N:
// no scheme choice recovers an asymptotic difference.
//
// Correctness is gated by a 240-case differential grid (2 shapes × 3
// operators × 8 sizes × 5 seeds): every simplified result is differenced
// against the sequential reference interpreter — bitwise for min/max (the
// deque rewrite reorders no arithmetic), tolerance for + (the scan and
// add–subtract forms reassociate) — and every ⊕ = + case additionally
// runs the untouched-fallback leg (extract_input → Runtime::submit) to
// show the pass's two paths agree. CI gates on `simplify_speedup_min`,
// `differential_mismatches` and `fallback_mismatches`.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/runtime.hpp"
#include "frontend/simplify.hpp"
#include "repro/registry.hpp"
#include "workloads/workload.hpp"

namespace sapp::repro {

namespace {

using frontend::Statement;

RuntimeOptions runtime_options(RunContext& ctx) {
  RuntimeOptions o;
  o.threads = ctx.threads();
  o.coeffs = &ctx.coeffs();  // skip per-Runtime calibration
  return o;
}

/// Seconds per call of `body`, repeated until ~2 ms of work accumulates
/// (the rewritten forms run in microseconds at the ladder sizes).
template <typename F>
double seconds_per_call(F&& body) {
  Timer t;
  std::size_t reps = 0;
  do {
    body();
    ++reps;
  } while (t.seconds() < 2e-3);
  return t.seconds() / static_cast<double>(reps);
}

/// |a-b| <= tol * max(1, |a|, |b|) everywhere. The + rewrites reassociate,
/// so sums are compared to a tolerance; min/max are compared bitwise.
bool within_tolerance(const std::vector<double>& a,
                      const std::vector<double>& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({1.0, std::abs(a[i]), std::abs(b[i])});
    if (!(std::abs(a[i] - b[i]) <= tol * scale)) return false;
  }
  return true;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Deterministic nonzero initial accumulator contents: the rewrites must
/// fold *into* whatever the caller left in `out`, not overwrite it.
std::vector<double> initial_out(std::size_t dim) {
  std::vector<double> out(dim);
  for (std::size_t k = 0; k < dim; ++k)
    out[k] = 0.3 * static_cast<double>((k % 7) + 1);
  return out;
}

struct LadderSpec {
  const char* shape;  ///< "prefix" / "sliding"
  std::size_t n;
  std::size_t w;  ///< 0 for prefix
};

/// One speedup-ladder row: steady-state adaptive vs rewritten form.
void run_ladder_row(RunContext& ctx, Runtime& rt, const LadderSpec& spec,
                    ResultTable& table, double& speedup_out,
                    std::string& form_out, std::size_t& mismatches) {
  const std::uint64_t seed = 9000 + spec.n;
  const workloads::LoopWorkload wl =
      spec.w == 0 ? workloads::make_prefix_sum(spec.n, seed)
                  : workloads::make_sliding_window(spec.n, spec.w, seed);

  // Adaptive leg: lower through the inspector once (amortized, untimed)
  // and warm the site so characterize/decide are off the timed path.
  const frontend::LoopAnalysis la = frontend::analyze(wl.nest);
  const ReductionInput in =
      frontend::extract_input(wl.nest, la, wl.target, wl.dim, wl.bindings);
  const std::string site_id = "ladder/" + wl.loop;
  std::vector<double> scratch(wl.dim, 0.0);
  (void)rt.submit(site_id, in, scratch);
  const double adaptive_s = ctx.measure([&] {
    return seconds_per_call([&] { (void)rt.submit(site_id, in, scratch); });
  });

  // Simplified leg through the same public entry point the ladder's
  // adaptive leg bypasses.
  frontend::FrontendResult fr;
  const double simplified_s = ctx.measure([&] {
    return seconds_per_call([&] {
      fr = frontend::submit_simplified(rt, wl.nest, wl.target, wl.dim,
                                       wl.bindings, scratch);
    });
  });
  SAPP_REQUIRE(fr.simplified, "ladder workload was not simplified");

  // Correctness of this exact row (the grid covers the small sizes).
  std::vector<double> simp(wl.dim, 0.0), ref(wl.dim, 0.0);
  (void)frontend::submit_simplified(rt, wl.nest, wl.target, wl.dim,
                                    wl.bindings, simp);
  frontend::interpret_loop(wl.nest, wl.target, wl.dim, wl.bindings, ref);
  if (!within_tolerance(simp, ref, 1e-9)) ++mismatches;

  const std::string scheme = [&] {
    const DecisionCache snap = rt.snapshot_decisions();
    const CachedDecision* d = snap.find(site_id);
    return d != nullptr ? std::string(to_string(d->scheme))
                        : std::string("?");
  }();

  speedup_out = simplified_s > 0.0 ? adaptive_s / simplified_s : 0.0;
  form_out = to_string(fr.form);
  table.add_row({std::string(spec.shape), static_cast<double>(spec.n),
                 static_cast<double>(spec.w), form_out, scheme,
                 round_to(adaptive_s * 1e3, 4),
                 round_to(simplified_s * 1e6, 3),
                 round_to(speedup_out, 1)});
}

ExperimentResult run_simplify(RunContext& ctx) {
  const double scale = ctx.scale(1.0);
  const auto scaled = [&](std::size_t n) {
    return std::max<std::size_t>(
        64, static_cast<std::size_t>(static_cast<double>(n) * scale));
  };

  std::vector<LadderSpec> ladder;
  if (ctx.tiny()) {
    for (const std::size_t n : {64u, 128u, 256u})
      ladder.push_back({"prefix", n, 0});
    for (const std::size_t n : {256u, 512u, 1024u})
      ladder.push_back({"sliding", n, 16});
  } else {
    for (const std::size_t n : {256u, 512u, 1024u, 2048u, 4096u})
      ladder.push_back({"prefix", scaled(n), 0});
    for (const std::size_t n : {4096u, 16384u, 65536u, 262144u})
      ladder.push_back({"sliding", scaled(n), 64});
  }

  Runtime rt(runtime_options(ctx));

  ExperimentResult res;
  ResultTable t("simplify_speedup",
                {"Shape", "N", "W", "Form", "Adaptive scheme", "Adaptive ms",
                 "Simplified us", "Speedup"});

  std::size_t ladder_mismatches = 0;
  double prefix_first = 0.0, prefix_last = 0.0;
  double sliding_first = 0.0, sliding_last = 0.0;
  std::string form;
  for (const LadderSpec& spec : ladder) {
    double speedup = 0.0;
    run_ladder_row(ctx, rt, spec, t, speedup, form, ladder_mismatches);
    if (std::string_view(spec.shape) == "prefix") {
      if (prefix_first == 0.0) prefix_first = speedup;
      prefix_last = speedup;
    } else {
      if (sliding_first == 0.0) sliding_first = speedup;
      sliding_last = speedup;
    }
  }
  res.tables.push_back(std::move(t));

  // --- 240-case differential grid --------------------------------------
  // Static shape/op/size/seed cross product; every case differences the
  // simplified execution against the reference interpreter, and the ⊕ = +
  // cases additionally run the untouched runtime fallback.
  const Statement::Op ops[] = {Statement::Op::kPlusAssign,
                               Statement::Op::kMaxAssign,
                               Statement::Op::kMinAssign};
  const std::size_t sizes[] = {1, 2, 3, 7, 33, 128, 257, 1024};
  std::size_t diff_cases = 0, diff_mismatches = 0;
  std::size_t fallback_cases = 0, fallback_mismatches = 0;

  Runtime diff_rt(runtime_options(ctx));
  for (int shape = 0; shape < 2; ++shape)
    for (const Statement::Op op : ops)
      for (std::size_t si = 0; si < std::size(sizes); ++si)
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
          const std::size_t n = sizes[si];
          // Window sweep covers w = 1, w < n, and w > n (padded input).
          const std::size_t w = 1 + (si * 5 + seed * 13) % (n + 4);
          const workloads::LoopWorkload wl =
              shape == 0 ? workloads::make_prefix_sum(n, 40 + seed, op)
                         : workloads::make_sliding_window(n, w, 40 + seed, op);

          const std::vector<double> out0 = initial_out(wl.dim);
          std::vector<double> ref = out0;
          frontend::interpret_loop(wl.nest, wl.target, wl.dim, wl.bindings,
                                   ref);

          std::vector<double> simp = out0;
          const frontend::FrontendResult fr = frontend::submit_simplified(
              diff_rt, wl.nest, wl.target, wl.dim, wl.bindings, simp);
          SAPP_REQUIRE(fr.simplified, "grid workload was not simplified");
          ++diff_cases;
          const bool ok = op == Statement::Op::kPlusAssign
                              ? within_tolerance(simp, ref, 1e-9)
                              : bitwise_equal(simp, ref);
          if (!ok) ++diff_mismatches;

          if (op == Statement::Op::kPlusAssign) {
            // Untouched-fallback leg: the same site lowered naively and
            // executed by the adaptive runtime must agree with the
            // reference too (association differs, hence tolerance).
            const frontend::LoopAnalysis la = frontend::analyze(wl.nest);
            const ReductionInput in = frontend::extract_input(
                wl.nest, la, wl.target, wl.dim, wl.bindings);
            std::vector<double> fb = out0;
            (void)diff_rt.submit(
                "diff/" + std::to_string(shape) + "/" + std::to_string(si) +
                    "/" + std::to_string(seed),
                in, fb);
            ++fallback_cases;
            if (!within_tolerance(fb, ref, 1e-9)) ++fallback_mismatches;
          }
        }

  res.metric("ladder_rows", static_cast<double>(ladder.size()));
  res.metric("ladder_mismatches", static_cast<double>(ladder_mismatches));
  res.metric("prefix_speedup_smallest_n", round_to(prefix_first, 1));
  res.metric("prefix_speedup_largest_n", round_to(prefix_last, 1));
  res.metric("sliding_speedup_smallest_n", round_to(sliding_first, 1));
  res.metric("sliding_speedup_largest_n", round_to(sliding_last, 1));
  // The CI gate: both shapes must beat the best adaptive scheme at the
  // largest committed size.
  res.metric("simplify_speedup_min",
             round_to(std::min(prefix_last, sliding_last), 1));
  res.metric("prefix_speedup_growth",
             round_to(prefix_first > 0.0 ? prefix_last / prefix_first : 0.0,
                      2));
  res.metric("sliding_speedup_growth",
             round_to(sliding_first > 0.0 ? sliding_last / sliding_first : 0.0,
                      2));
  res.metric("differential_cases", static_cast<double>(diff_cases));
  res.metric("differential_mismatches", static_cast<double>(diff_mismatches));
  res.metric("fallback_cases", static_cast<double>(fallback_cases));
  res.metric("fallback_mismatches", static_cast<double>(fallback_mismatches));

  res.note("Adaptive times are steady state: the site is characterized and "
           "decided before timing, and the inspector lowering is excluded — "
           "both favor the runtime. The speedup still grows with N because "
           "the rewrite deletes O(N²)/O(N·W) work the runtime must execute.");
  res.note("Differential grid: min/max compared bitwise (the deque rewrite "
           "reorders no arithmetic); + compared to 1e-9 relative tolerance "
           "(scan and add-subtract reassociate). Fallback legs run the "
           "naive lowering through Runtime::submit.");
  return res;
}

}  // namespace

void register_simplify_experiments(ExperimentRegistry& r) {
  r.add({.name = "simplify",
         .title = "frontend reduction simplification vs adaptive runtime",
         .paper_ref = "frontend pass (beyond §4: simplification)",
         .description =
             "Rewrite prefix-sum and sliding-window reduction sites to "
             "O(N) forms and measure the growing speedup over the best "
             "adaptive scheme; verify a 240-case differential grid plus "
             "the untouched-fallback contract.",
         .default_scale = 1.0,
         .run = run_simplify});
}

}  // namespace sapp::repro
