// Minimal JSON value, writer and parser for the reproduction runner.
//
// sapp_repro emits machine-readable results (docs/reproducing.md documents
// the schema) and the smoke tests re-parse what was written; neither should
// drag in an external JSON dependency, so this header provides the small
// subset we need: an ordered-object value type, a pretty printer with
// stable key order, and a strict recursive-descent parser.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace sapp::repro {

/// A JSON document node. Objects preserve insertion order so rendered
/// files diff cleanly across runs.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : v_(std::monostate{}) {}
  JsonValue(std::nullptr_t) : v_(std::monostate{}) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<double>(i)) {}
  JsonValue(unsigned u) : v_(static_cast<double>(u)) {}
  JsonValue(long i) : v_(static_cast<double>(i)) {}
  JsonValue(unsigned long u) : v_(static_cast<double>(u)) {}
  JsonValue(long long i) : v_(static_cast<double>(i)) {}
  JsonValue(unsigned long long u) : v_(static_cast<double>(u)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string_view s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}

  [[nodiscard]] static JsonValue array() {
    JsonValue j;
    j.v_ = Array{};
    return j;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue j;
    j.v_ = Members{};
    return j;
  }

  [[nodiscard]] Kind kind() const {
    return static_cast<Kind>(v_.index());
  }
  [[nodiscard]] bool is_null() const { return kind() == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind() == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind() == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind() == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind() == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind() == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& items() const { return std::get<Array>(v_); }
  [[nodiscard]] const Members& members() const {
    return std::get<Members>(v_);
  }

  /// Append to an array value.
  void push_back(JsonValue v) { std::get<Array>(v_).push_back(std::move(v)); }

  /// Insert-or-replace a member of an object value (insertion order kept).
  void set(std::string_view key, JsonValue v);

  /// Member lookup on an object value; nullptr when absent or not an
  /// object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Render with 2-space indentation and '\n' line ends.
  [[nodiscard]] std::string dump() const;

  /// Strict parse of a complete document; on failure returns nullopt and,
  /// when `error` is non-null, a message with the byte offset.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text,
                                                      std::string* error =
                                                          nullptr);

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.v_ == b.v_;
  }

 private:
  std::variant<std::monostate, bool, double, std::string, Array, Members> v_;
};

/// Format a number the way the writer does (shortest round-trip form,
/// integers without a trailing ".0") — shared with the CSV/markdown
/// renderers so all three formats agree on digits.
[[nodiscard]] std::string format_json_number(double v);

}  // namespace sapp::repro
