// Multi-site adaptive-runtime experiment:
//   adaptive_sites — N concurrent loop sites submitting through one
//                    sapp::Runtime, and cold- vs warm-start
//                    first-invocation latency with a persistent decision
//                    cache.
//
// The paper's Fig. 1 loop is per site; the ROADMAP north star is a system
// serving many sites under heavy traffic whose learned decisions survive
// process restarts. This experiment measures both halves:
//   * multi_site_scaling — application threads submitting concurrently to
//     disjoint (and deliberately contended) sites, steady-state
//     invocations/s through the shared pool;
//   * cold_vs_warm_start — the first invocation of every site pays
//     characterize + decide on a cold start; a warm start adopts the
//     cached decision and skips both. The CI repro-smoke gate requires
//     warm_speedup >= 2x.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/runtime.hpp"
#include "repro/registry.hpp"
#include "workloads/workload.hpp"

namespace sapp::repro {

namespace {

/// The experiment's loop sites: paper workload generators (sparse-biased —
/// the regime the decision cache exists for) plus synthetic fillers, all
/// carrying their loop_id site tag. Dimensions are fixed (they set the
/// characterizer's O(dim) sweep); iteration counts scale.
std::vector<ReductionInput> build_sites(double scale) {
  const auto iters = [&](std::size_t n) {
    return std::max<std::size_t>(200, static_cast<std::size_t>(
                                          static_cast<double>(n) * scale));
  };
  std::vector<ReductionInput> sites;
  sites.push_back(
      workloads::make_spice(120000, iters(8000), 11).input);
  sites.push_back(
      workloads::make_nbf(160000, 1400, iters(30000), 12).input);
  sites.push_back(
      workloads::make_spark98(90000, 7000, iters(60000), 13).input);
  sites.push_back(
      workloads::make_irreg(50000, 2500, iters(40000), 14).input);
  sites.push_back(
      workloads::make_moldyn(8000, 4000, iters(50000), 15).input);
  for (int k = 0; k < 3; ++k) {
    workloads::SynthParams p;
    p.dim = 200000 + 40000 * static_cast<std::size_t>(k);
    p.distinct = 900 + 150 * static_cast<std::size_t>(k);
    p.iterations = iters(6000);
    p.refs_per_iter = 3;
    p.zipf_theta = 0.4 * k;
    p.seed = 100 + static_cast<std::uint64_t>(k);
    p.lw_legal = (k % 2) == 0;
    auto in = workloads::make_synthetic(p);
    in.pattern.loop_id = "Synth/sparse" + std::to_string(k);
    sites.push_back(std::move(in));
  }
  return sites;
}

RuntimeOptions runtime_options(RunContext& ctx) {
  RuntimeOptions o;
  o.threads = ctx.threads();
  o.coeffs = &ctx.coeffs();  // identical deciders across Runtime instances
  return o;
}

/// Submit every site once, back to back, and return the wall seconds —
/// the aggregate first-invocation cost the application pays at startup.
double first_pass_seconds(Runtime& rt,
                          const std::vector<ReductionInput>& sites,
                          std::vector<std::vector<double>>& outs) {
  Timer t;
  for (std::size_t s = 0; s < sites.size(); ++s)
    (void)rt.submit(sites[s], outs[s]);
  return t.seconds();
}

ExperimentResult run_adaptive_sites(RunContext& ctx) {
  const double scale = ctx.scale(0.3);
  const auto sites = build_sites(scale);
  const std::size_t S = sites.size();

  std::vector<std::vector<double>> outs;
  outs.reserve(S);
  for (const auto& in : sites) outs.emplace_back(in.pattern.dim, 0.0);

  ExperimentResult res;

  // --- multi-site scaling: concurrent submission ----------------------
  // T application threads share the S sites round-robin; every submission
  // goes through the one Runtime (striped site table, arbitrated pool).
  // The "contended" row points every thread at a single site, so it
  // measures pure per-site serialization.
  const int invocations_per_site = ctx.tiny() ? 3 : 12;
  ResultTable scaling("multi_site_scaling",
                      {"App threads", "Sites", "Invocations", "Wall ms",
                       "Invocations/s"});
  for (const bool contended : {false, true}) {
    for (const unsigned T : {1u, 2u, 4u}) {
      if (contended && T == 1) continue;  // identical to the T=1 row
      Runtime rt(runtime_options(ctx));
      // Untimed warm-up invocation per site: first invocations
      // characterize, the steady state is what scales.
      for (std::size_t s = 0; s < S; ++s)
        (void)rt.submit(sites[s], outs[s]);
      const std::size_t used_sites = contended ? 1 : S;
      // Contended: every thread hammers the one site. Round-robin: the S
      // sites are partitioned across the T threads.
      const std::size_t total =
          static_cast<std::size_t>(invocations_per_site) *
          (contended ? static_cast<std::size_t>(T) : S);
      const double secs = ctx.measure([&] {
        Timer t;
        std::vector<std::thread> threads;
        threads.reserve(T);
        for (unsigned a = 0; a < T; ++a) {
          threads.emplace_back([&, a] {
            for (int r = 0; r < invocations_per_site; ++r) {
              for (std::size_t s = contended ? 0 : a; s < used_sites;
                   s += contended ? 1 : T) {
                (void)rt.submit(sites[s], outs[s]);
              }
            }
          });
        }
        for (auto& th : threads) th.join();
        return t.seconds();
      });
      scaling.add_row({contended ? std::to_string(T) + " (1 shared site)"
                                 : std::to_string(T),
                       static_cast<double>(used_sites),
                       static_cast<double>(total), round_to(secs * 1e3, 2),
                       round_to(static_cast<double>(total) / secs, 1)});
    }
  }
  res.tables.push_back(std::move(scaling));

  // --- cold vs warm start --------------------------------------------
  const std::string cache_path =
      (std::filesystem::temp_directory_path() /
       "sapp_adaptive_sites.cache.json")
          .string();

  // Learn the decisions once and persist them.
  Runtime learner(runtime_options(ctx));
  for (std::size_t s = 0; s < S; ++s)
    (void)learner.submit(sites[s], outs[s]);
  std::string save_err;
  if (!learner.save_decisions(cache_path, &save_err))
    throw std::runtime_error("cannot write decision cache: " + save_err);

  // Per-site instrumented pass (cold vs warm), single shot for the table.
  ResultTable per_site("cold_vs_warm_per_site",
                       {"Site", "Scheme", "Cold first ms", "Warm first ms",
                        "Speedup", "Warm-started"});
  {
    Runtime cold(runtime_options(ctx));
    RuntimeOptions wopt = runtime_options(ctx);
    wopt.decision_cache_path = cache_path;
    Runtime warm(wopt);
    for (std::size_t s = 0; s < S; ++s) {
      Timer tc;
      (void)cold.submit(sites[s], outs[s]);
      const double cold_ms = tc.seconds() * 1e3;
      Timer tw;
      (void)warm.submit(sites[s], outs[s]);
      const double warm_ms = tw.seconds() * 1e3;
      const AdaptiveReducer& r = warm.site(sites[s].pattern.loop_id);
      per_site.add_row(
          {sites[s].pattern.loop_id, std::string(to_string(r.current())),
           round_to(cold_ms, 3), round_to(warm_ms, 3),
           round_to(warm_ms > 0 ? cold_ms / warm_ms : 0.0, 2),
           r.warm_started() ? "yes" : "no"});
    }
  }
  res.tables.push_back(std::move(per_site));

  // Median-of-reps aggregate: a fresh Runtime per repetition, timing only
  // the submissions (construction excluded for both variants).
  const double cold_s = ctx.measure([&] {
    Runtime rt(runtime_options(ctx));
    return first_pass_seconds(rt, sites, outs);
  });
  const double warm_s = ctx.measure([&] {
    RuntimeOptions o = runtime_options(ctx);
    o.decision_cache_path = cache_path;
    Runtime rt(o);
    return first_pass_seconds(rt, sites, outs);
  });

  // Sanity: a warm-started runtime must still compute correct sums.
  std::size_t mismatches = 0;
  {
    RuntimeOptions o = runtime_options(ctx);
    o.decision_cache_path = cache_path;
    Runtime rt(o);
    for (std::size_t s = 0; s < S; ++s) {
      std::vector<double> got(sites[s].pattern.dim, 0.0);
      std::vector<double> ref(sites[s].pattern.dim, 0.0);
      (void)rt.submit(sites[s], got);
      run_sequential(sites[s], ref);
      for (std::size_t e = 0; e < ref.size(); ++e) {
        const double tol = 1e-9 + 1e-9 * std::abs(ref[e]);
        if (std::abs(got[e] - ref[e]) > tol * 1e3) {
          ++mismatches;
          break;
        }
      }
    }
  }
  std::error_code ec;
  std::filesystem::remove(cache_path, ec);

  res.metric("sites", static_cast<double>(S));
  res.metric("threads", ctx.threads());
  res.metric("cold_first_invoke_ms", round_to(cold_s * 1e3, 3));
  res.metric("warm_first_invoke_ms", round_to(warm_s * 1e3, 3));
  res.metric("warm_speedup",
             round_to(warm_s > 0.0 ? cold_s / warm_s : 0.0, 2));
  res.metric("sanity_mismatches", static_cast<double>(mismatches));
  res.note("warm_speedup = cold / warm aggregate first-invocation wall "
           "time over all sites (median of reps, fresh Runtime per rep); "
           "the repro-smoke gate requires >= 2x. A warm start adopts the "
           "cached scheme and skips characterize + decide.");
  res.note("The decision cache is written to a temp file by the cold "
           "runtime and deleted afterwards; docs/reproducing.md documents "
           "the file format.");
  res.note("multi_site_scaling rows labelled '(1 shared site)' submit "
           "from T threads to one site (per-site serialization); numbered "
           "rows spread the sites round-robin over the T threads. "
           "Cross-site speedup needs multiple hardware threads — on a "
           "1-core host the rows measure arbitration overhead only.");
  return res;
}

}  // namespace

void register_runtime_experiments(ExperimentRegistry& r) {
  r.add({.name = "adaptive_sites",
         .title = "multi-site adaptive runtime + decision-cache warm start",
         .paper_ref = "Fig. 1 (ROADMAP)",
         .description =
             "Concurrent submission from many loop sites through one "
             "sapp::Runtime, and cold- vs warm-start first-invocation "
             "latency with the persistent decision cache.",
         .default_scale = 0.3,
         .run = run_adaptive_sites});
}

}  // namespace sapp::repro
