// Distributed strategy sweep — the cluster-level machine model's
// strategy-crossover frontier.
//
// Sweeps the three cluster workload regimes (dense / mid / sparse) over
// node count × link class, prices message-combining, full replication and
// owner-computes through the DistributedCostModel (which runs the same
// deterministic task-graph engine the value-tracked simulation uses), and
// reports where the winning strategy flips. Gates:
//   value_mismatches == 0      — every strategy's tracked values agree
//                                with the sequential reference,
//   ranking_deterministic == 1 — two pricing passes agree bitwise,
//   optimality_violations == 0 — the ranked-best cost is <= every
//                                alternative's simulated cost,
//   crossover_points >= 2      — the frontier actually crosses,
//   distinct_best_strategies   — no strategy dominates everywhere.
#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "core/distributed_cost.hpp"
#include "repro/registry.hpp"
#include "workloads/workload.hpp"

namespace sapp::repro {

namespace {

using sim::ClusterConfig;
using sim::CombineOp;
using sim::DistStrategy;
using workloads::ClusterShape;

struct LinkClass {
  const char* name;
  sim::LinkConfig link;
};

const LinkClass kLinks[] = {
    {"10GbE", sim::LinkConfig::ethernet_10g()},
    {"100G", sim::LinkConfig::hpc_100g()},
    {"800G", sim::LinkConfig::fabric_800g()},
};

constexpr ClusterShape kShapes[] = {ClusterShape::kDense, ClusterShape::kMid,
                                    ClusterShape::kSparse};
constexpr unsigned kNodeCounts[] = {2, 4, 8, 16, 32};
constexpr unsigned kCoresPerNode = 8;

/// Sequential reference under `op`: fold every contribution from neutral
/// in iteration order (for kAdd this is exactly run_sequential's sum with
/// a zero-filled output).
std::vector<double> reference(const ReductionInput& in, CombineOp op) {
  const auto& p = in.pattern;
  std::vector<double> w(p.dim, sim::neutral_of(op));
  if (op == CombineOp::kAdd) {
    std::fill(w.begin(), w.end(), 0.0);
    run_sequential(in, w);
    return w;
  }
  const auto& ptr = p.refs.row_ptr();
  const auto& idx = p.refs.indices();
  for (std::size_t i = 0; i < p.iterations(); ++i) {
    const double s = iteration_scale(i, p.body_flops);
    for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
      const double c = in.values[j] * s;
      if (op == CombineOp::kMax)
        w[idx[j]] = std::max(w[idx[j]], c);
      else
        w[idx[j]] = std::min(w[idx[j]], c);
    }
  }
  return w;
}

/// Mismatched elements between a strategy's tracked values and the
/// reference: bitwise for min/max (reassociation only reorders
/// comparisons), error-bounded for sum (reassociation changes rounding).
std::size_t mismatches(const std::vector<double>& got,
                       const std::vector<double>& ref, CombineOp op,
                       std::size_t max_combines) {
  std::size_t bad = 0;
  const double eps = std::numeric_limits<double>::epsilon();
  for (std::size_t e = 0; e < ref.size(); ++e) {
    if (op == CombineOp::kAdd) {
      const double bound =
          (4.0 + static_cast<double>(max_combines)) * eps *
              std::max(std::abs(ref[e]), std::abs(got[e])) +
          std::numeric_limits<double>::denorm_min();
      if (std::abs(got[e] - ref[e]) > bound) ++bad;
    } else if (std::memcmp(&got[e], &ref[e], sizeof(double)) != 0) {
      ++bad;
    }
  }
  return bad;
}

ExperimentResult run_distributed(RunContext& ctx) {
  const double scale = ctx.scale(1.0);
  // The default (uncalibrated) per-node surface: the frontier tables are
  // then a pure function of (scale), bitwise identical on every host, so
  // the committed reference results and the CI gates cannot drift with
  // calibration noise. Hosts that want their own frontier calibrate via
  // ClusterConfig::coeffs (see docs/distributed.md).
  const MachineCoeffs mc = MachineCoeffs::defaults();

  ExperimentResult res;
  ResultTable sweep("strategy_sweep",
                    {"Workload", "Link", "Nodes", "Combining ms",
                     "Replication ms", "Owner ms", "Best"});
  ResultTable crossings("crossover_frontier",
                        {"Workload", "Link", "Nodes", "Winner before",
                         "Winner after"});

  std::size_t crossover_points = 0;
  std::size_t optimality_violations = 0;
  bool deterministic = true;
  std::set<std::string> winners;

  for (const ClusterShape shape : kShapes) {
    const workloads::Workload w =
        workloads::make_cluster_workload(shape, scale, 2026);
    // cell[link][node index] = (combining ms, replication ms, owner ms,
    // winner); sliced once per node count, priced once per link class.
    struct Cell {
      double ms[3] = {};
      std::string best;
    };
    std::vector<std::vector<Cell>> cells(
        std::size(kLinks), std::vector<Cell>(std::size(kNodeCounts)));
    for (std::size_t ni = 0; ni < std::size(kNodeCounts); ++ni) {
      const unsigned nodes = kNodeCounts[ni];
      const sim::DistWork work = sim::slice_work(w.input.pattern, nodes);
      for (std::size_t li = 0; li < std::size(kLinks); ++li) {
        const DistributedCostModel model(
            {nodes, kCoresPerNode, kLinks[li].link, mc});
        const auto ranked = model.predict_all(work);
        // Re-price: the ranking must be a pure function of the inputs.
        const auto again = model.predict_all(work);
        for (std::size_t i = 0; i < ranked.size(); ++i)
          if (ranked[i].strategy != again[i].strategy ||
              std::memcmp(&ranked[i].total_s, &again[i].total_s,
                          sizeof(double)) != 0)
            deterministic = false;
        for (const auto& alt : ranked)
          if (ranked.front().total_s > alt.total_s) ++optimality_violations;

        Cell& c = cells[li][ni];
        for (const auto& pr : ranked)
          c.ms[static_cast<int>(pr.strategy)] = pr.total_s * 1e3;
        c.best = to_string(ranked.front().strategy);
        winners.insert(c.best);
      }
    }
    for (std::size_t li = 0; li < std::size(kLinks); ++li) {
      for (std::size_t ni = 0; ni < std::size(kNodeCounts); ++ni) {
        const Cell& c = cells[li][ni];
        sweep.add_row({to_string(shape), kLinks[li].name, kNodeCounts[ni],
                       round_to(c.ms[0], 4), round_to(c.ms[1], 4),
                       round_to(c.ms[2], 4), c.best});
        if (ni > 0 && c.best != cells[li][ni - 1].best) {
          ++crossover_points;
          crossings.add_row({to_string(shape), kLinks[li].name,
                             kNodeCounts[ni], cells[li][ni - 1].best,
                             c.best});
        }
      }
    }
  }

  // Value check: every strategy × operation, on a mid-size cluster, must
  // reproduce the sequential reference through the task graph's combines.
  ResultTable check("value_check",
                    {"Workload", "Strategy", "Op", "Mismatches"});
  std::size_t value_mismatches = 0;
  for (const ClusterShape shape : kShapes) {
    const workloads::Workload w = workloads::make_cluster_workload(
        shape, std::min(scale, 0.05), 2026);
    const ClusterConfig cfg{4, kCoresPerNode, sim::LinkConfig::hpc_100g(),
                            mc};
    struct OpCase {
      CombineOp op;
      const char* name;
    };
    for (const OpCase oc : {OpCase{CombineOp::kAdd, "sum"},
                            OpCase{CombineOp::kMin, "min"},
                            OpCase{CombineOp::kMax, "max"}}) {
      const std::vector<double> ref = reference(w.input, oc.op);
      for (const DistStrategy s : sim::all_dist_strategies()) {
        const auto r = sim::simulate_distributed(w.input, oc.op, s, cfg);
        // Worst-case reassociation depth: a node partial folds at most
        // refs contributions; the graph then folds one value per node.
        const std::size_t bad = mismatches(
            r.w, ref, oc.op, w.input.pattern.num_refs() + cfg.nodes);
        value_mismatches += bad;
        check.add_row({to_string(shape), to_string(s), oc.name, bad});
      }
    }
  }

  res.tables.push_back(std::move(sweep));
  res.tables.push_back(std::move(crossings));
  res.tables.push_back(std::move(check));
  res.metric("cells", static_cast<std::uint64_t>(
                          std::size(kShapes) * std::size(kLinks) *
                          std::size(kNodeCounts)));
  res.metric("crossover_points",
             static_cast<std::uint64_t>(crossover_points));
  res.metric("distinct_best_strategies",
             static_cast<std::uint64_t>(winners.size()));
  res.metric("ranking_deterministic", deterministic ? 1 : 0);
  res.metric("optimality_violations",
             static_cast<std::uint64_t>(optimality_violations));
  res.metric("value_mismatches",
             static_cast<std::uint64_t>(value_mismatches));
  res.note("Costs come from the deterministic task-graph engine "
           "(sim/cluster.hpp): per-node partials priced through the "
           "intra-node cost surface (pinned to MachineCoeffs::defaults() so "
           "the frontier is host-independent), exchanges through the "
           "port-contended link fabric. docs/distributed.md walks the "
           "frontier.");
  res.note("Crossovers are counted along the node-count axis within each "
           "(workload, link) row; the committed reference tables pin the "
           "frontier for the default link classes.");
  return res;
}

}  // namespace

void register_distributed_experiments(ExperimentRegistry& r) {
  r.add({.name = "distributed",
         .title = "distributed strategy crossover frontier (cluster model)",
         .paper_ref = "§6 (messages/combining discussion)",
         .description =
             "Price message-combining, full replication and owner-computes "
             "over node count x link class on the cluster machine model; "
             "report the strategy-crossover frontier and verify tracked "
             "values against the sequential reference.",
         .default_scale = 1.0,
         .run = run_distributed});
}

}  // namespace sapp::repro
