// Experiment registry — the one place that knows every paper experiment.
//
// Each bench harness that used to carry its own main() is now a registered
// Experiment: a name (the sapp_repro subcommand), its paper reference, a
// default workload scale, and a run function from RunContext to
// ExperimentResult. The registry enforces unique names and gives
// unknown-name lookups a helpful error (tests/repro_test.cpp covers both).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "repro/context.hpp"
#include "repro/result.hpp"

namespace sapp::repro {

/// One registered paper experiment.
struct Experiment {
  std::string name;         ///< CLI name, e.g. "fig3_adaptive_table"
  std::string title;        ///< one-line human title
  std::string paper_ref;    ///< "Fig. 3", "Table 2", "§3", "ablation"
  std::string description;  ///< what the experiment shows
  /// Workload scale when neither --scale nor SAPP_SCALE/SAPP_FULL is
  /// given (1.0 = the paper's sizes; see docs/reproducing.md).
  double default_scale = 1.0;
  std::function<ExperimentResult(RunContext&)> run;
};

/// Ordered collection of experiments. Registration order is listing and
/// `--all` execution order.
class ExperimentRegistry {
 public:
  /// Register; throws std::invalid_argument on an empty name, a missing
  /// run function, or a duplicate name.
  void add(Experiment e);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Lookup; throws std::out_of_range naming the unknown experiment and
  /// listing the registered ones.
  [[nodiscard]] const Experiment& find(std::string_view name) const;

  /// All experiments in registration order.
  [[nodiscard]] const std::vector<Experiment>& list() const {
    return experiments_;
  }
  [[nodiscard]] std::size_t size() const { return experiments_.size(); }

 private:
  std::vector<Experiment> experiments_;
};

/// The process-wide registry with every built-in experiment registered
/// (constructed on first use; cheap — workloads are generated at run time).
[[nodiscard]] ExperimentRegistry& builtin_experiments();

// Registration entry points, one per experiment family (defined in the
// exp_*.cpp files). Exposed so tests can build private registries.
void register_software_experiments(ExperimentRegistry& r);
void register_simulation_experiments(ExperimentRegistry& r);
void register_speculation_experiments(ExperimentRegistry& r);
void register_overhead_experiments(ExperimentRegistry& r);
void register_runtime_experiments(ExperimentRegistry& r);
void register_phase_drift_experiments(ExperimentRegistry& r);
void register_serving_experiments(ExperimentRegistry& r);
void register_checking_experiments(ExperimentRegistry& r);
void register_kernel_experiments(ExperimentRegistry& r);
void register_simplify_experiments(ExperimentRegistry& r);
void register_distributed_experiments(ExperimentRegistry& r);

}  // namespace sapp::repro
