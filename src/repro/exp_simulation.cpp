// Simulation-study experiments (cycle-approximate CC-NUMA simulator):
//   fig6_pclr_breakdown    — Sw/Hw/Flex phase breakdown + speedups,
//   fig7_scalability       — harmonic-mean speedup at 4/8/16 processors,
//   table2_appchar         — application characteristics incl. the two
//                            simulation-derived line counters,
//   ablation_fpunit        — combine FP-unit pipelining/units,
//   ablation_linesize      — cache-line size vs. PCLR traffic,
//   ablation_placement     — input page placement vs. loop scaling,
//   ablation_flex_occupancy— programmable-controller occupancy crossover.
//
// These charge simulated cycles, so reps/warmup do not apply: a simulation
// is deterministic for a given workload seed and machine config.
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "repro/registry.hpp"
#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

namespace sapp::repro {

namespace {

using namespace sapp::sim;

double spd(Cycle seq, Cycle par) {
  return static_cast<double>(seq) / static_cast<double>(par);
}

// Figure 6 — execution time under Sw / Hw / Flex on a 16-node CC-NUMA,
// normalized to Sw and broken into Init / Loop / Merge, with speedups over
// sequential execution.
ExperimentResult run_fig6(RunContext& ctx) {
  const double scale = ctx.scale(0.25);
  const MachineConfig cfg = MachineConfig::paper(16);
  const auto rows = workloads::table2_rows(scale);

  ExperimentResult res;
  ResultTable cycles("simulated_cycles",
                     {"App", "Seq Mcy", "Sw Mcy", "Hw Mcy", "Flex Mcy"});
  ResultTable breakdown("normalized_breakdown",
                        {"App", "Scheme", "Init", "Loop", "Merge", "Total",
                         "Speedup", "Paper speedup"});
  std::vector<double> sw_spd, hw_spd, flex_spd;
  for (const auto& row : rows) {
    const auto& w = row.workload;
    const Cycle seq = simulate_reduction(w, Mode::kSeq, cfg).total_cycles;
    const RunResult sw = simulate_reduction(w, Mode::kSw, cfg);
    const RunResult hw = simulate_reduction(w, Mode::kHw, cfg);
    const RunResult flex = simulate_reduction(w, Mode::kFlex, cfg);

    cycles.add_row({w.app, round_to(seq / 1e6, 2), round_to(sw.total_cycles / 1e6, 2),
                    round_to(hw.total_cycles / 1e6, 2),
                    round_to(flex.total_cycles / 1e6, 2)});

    const double sw_total = static_cast<double>(sw.total_cycles);
    auto add = [&](const char* name, const RunResult& run, double paper) {
      breakdown.add_row({w.app, name, round_to(run.phase("init") / sw_total, 3),
                         round_to(run.phase("loop") / sw_total, 3),
                         round_to(run.phase("merge") / sw_total, 3),
                         round_to(run.total_cycles / sw_total, 3),
                         round_to(spd(seq, run.total_cycles), 1),
                         round_to(paper, 1)});
    };
    add("Sw", sw, row.paper_speedup_sw);
    add("Hw", hw, row.paper_speedup_hw);
    add("Flex", flex, row.paper_speedup_flex);
    sw_spd.push_back(spd(seq, sw.total_cycles));
    hw_spd.push_back(spd(seq, hw.total_cycles));
    flex_spd.push_back(spd(seq, flex.total_cycles));
  }
  res.tables.push_back(std::move(cycles));
  res.tables.push_back(std::move(breakdown));

  const double hm_sw = harmonic_mean(sw_spd);
  const double hm_hw = harmonic_mean(hw_spd);
  const double hm_flex = harmonic_mean(flex_spd);
  res.metric("hm_speedup_sw", round_to(hm_sw, 2));
  res.metric("hm_speedup_hw", round_to(hm_hw, 2));
  res.metric("hm_speedup_flex", round_to(hm_flex, 2));
  res.metric("flex_vs_hw_gap_pct", round_to(100.0 * (1.0 - hm_flex / hm_hw), 1));
  res.note("Paper harmonic means at 16 nodes: Sw 2.7, Hw 7.6, Flex 6.4; "
           "Flex ~16% below Hw.");
  res.note("Execution times are normalized to Sw = 1.00 per application; "
           "PCLR's flush is reported under Merge to match Fig. 6's "
           "buckets.");
  return res;
}

// Figure 7 — harmonic mean of the Sw / Hw / Flex speedups at 4, 8 and 16
// processors. Hw and Flex scale; Sw flattens because its merge phase does
// not shrink with more processors.
ExperimentResult run_fig7(RunContext& ctx) {
  const double scale = ctx.scale(0.15);
  const auto rows = workloads::table2_rows(scale);

  ExperimentResult res;
  ResultTable t("scalability", {"Procs", "Hw", "Flex", "Sw", "Sw-merge-frac"});
  for (unsigned procs : {4u, 8u, 16u}) {
    const MachineConfig cfg = MachineConfig::paper(procs);
    std::vector<double> sw, hw, fx;
    double merge_frac_acc = 0.0;
    for (const auto& row : rows) {
      const auto seq =
          simulate_reduction(row.workload, Mode::kSeq, cfg).total_cycles;
      const auto rs = simulate_reduction(row.workload, Mode::kSw, cfg);
      const auto rh = simulate_reduction(row.workload, Mode::kHw, cfg);
      const auto rf = simulate_reduction(row.workload, Mode::kFlex, cfg);
      sw.push_back(spd(seq, rs.total_cycles));
      hw.push_back(spd(seq, rh.total_cycles));
      fx.push_back(spd(seq, rf.total_cycles));
      merge_frac_acc += static_cast<double>(rs.phase("merge")) /
                        static_cast<double>(rs.total_cycles);
    }
    t.add_row({procs, round_to(harmonic_mean(hw), 2),
               round_to(harmonic_mean(fx), 2), round_to(harmonic_mean(sw), 2),
               round_to(merge_frac_acc / static_cast<double>(rows.size()), 2)});
  }
  res.tables.push_back(std::move(t));
  res.note("Paper at 16 procs: Hw 7.6, Flex 6.4, Sw 2.7; Sw flattens "
           "because its merge phase is constant in P (Amdahl on the "
           "merge).");
  return res;
}

// Table 2 — application characteristics, including the two simulation-
// derived columns: reduction lines flushed at the end of the loop and
// lines displaced (combined in the background) during the loop, both on
// the 16-processor PCLR (Hw) configuration. Full size by default: the
// flushed/displaced columns are only meaningful at paper footprints.
ExperimentResult run_table2(RunContext& ctx) {
  const double scale = ctx.scale(1.0);
  const MachineConfig cfg = MachineConfig::paper(16);

  ExperimentResult res;
  ResultTable t("application_characteristics",
                {"App", "Loop", "Iters/inv", "Iters/inv (paper)",
                 "Instr/iter", "Instr/iter (paper)", "RedOps/iter",
                 "RedOps/iter (paper)", "RedArray KB", "RedArray KB (paper)",
                 "Lines flushed", "Lines flushed (paper)", "Lines displaced",
                 "Lines displaced (paper)"});
  for (const auto& row : workloads::table2_rows(scale)) {
    const auto& w = row.workload;
    const auto& p = w.input.pattern;
    const auto hw = simulate_reduction(w, Mode::kHw, cfg);

    const double red_per_iter = static_cast<double>(p.num_refs()) /
                                static_cast<double>(p.iterations());
    const double kb = static_cast<double>(p.dim) * sizeof(double) / 1024.0;
    t.add_row({w.app, w.loop, p.iterations(), row.paper_iters,
               w.instr_per_iter, row.paper_instr_per_iter,
               round_to(red_per_iter, 1), row.paper_red_per_iter,
               round_to(kb, 1), round_to(row.paper_array_kb, 1),
               hw.counters.red_lines_flushed, row.paper_lines_flushed,
               hw.counters.red_lines_displaced, row.paper_lines_displaced});
  }
  res.tables.push_back(std::move(t));
  res.note("Flushed/displaced counts are per processor per invocation "
           "summed over processors, as in the paper's last two columns.");
  res.note("Iteration counts scale with the workload scale; the paper "
           "columns are the full-size values.");
  return res;
}

// Ablation: the directory's combine FP unit (§5.1.3) — pipelined (II=3)
// vs. unpipelined (II=18), 1 vs. 2 units.
ExperimentResult run_ablation_fpunit(RunContext& ctx) {
  const double scale = ctx.scale(0.15);
  const auto rows = workloads::table2_rows(scale);

  ExperimentResult res;
  ResultTable t("fp_unit_sweep",
                {"App", "Units", "II cy", "Loop Mcy", "Flush Mcy",
                 "Total Mcy"});
  for (const auto& row : rows) {
    struct Cfg {
      unsigned units;
      unsigned ii;
    };
    for (const Cfg c : {Cfg{1, 3}, Cfg{1, 18}, Cfg{2, 3}, Cfg{2, 18}}) {
      MachineConfig cfg = MachineConfig::paper(16);
      cfg.fp_units = c.units;
      cfg.fp_initiation = c.ii;
      const auto r = simulate_reduction(row.workload, Mode::kHw, cfg);
      t.add_row({row.workload.app, c.units, c.ii,
                 round_to(r.phase("loop") / 1e6, 3),
                 round_to(r.phase("merge") / 1e6, 3),
                 round_to(r.total_cycles / 1e6, 3)});
    }
  }
  res.tables.push_back(std::move(t));
  res.note("An unpipelined adder (II=18) stretches the flush and can back "
           "up displacement combining into the loop; a second unit "
           "recovers most of it — the paper's \"pipeline it or add units\" "
           "remedy.");
  return res;
}

// Ablation: cache-line size vs. PCLR traffic (§5.1.3). A reduction line
// is combined whole, so longer lines mean fewer, heavier combines.
ExperimentResult run_ablation_linesize(RunContext& ctx) {
  const double scale = ctx.scale(0.15);
  const auto rows = workloads::table2_rows(scale);

  ExperimentResult res;
  ResultTable t("line_size_sweep",
                {"App", "Line B", "Total Mcy", "Fills", "Displaced",
                 "Flushed", "Combines"});
  for (const auto& row : rows) {
    for (const unsigned line : {32u, 64u, 128u}) {
      MachineConfig cfg = MachineConfig::paper(16);
      cfg.line_bytes = line;
      const auto r = simulate_reduction(row.workload, Mode::kHw, cfg);
      t.add_row({row.workload.app, line, round_to(r.total_cycles / 1e6, 3),
                 r.counters.red_fills, r.counters.red_lines_displaced,
                 r.counters.red_lines_flushed, r.counters.combines});
    }
  }
  res.tables.push_back(std::move(t));
  res.note("Longer lines amortize fills but combine more neutral elements "
           "per write-back; 64 B (the paper's size) balances the two for "
           "these access densities.");
  return res;
}

// Ablation: shared-input page placement (§6.1) — master first-touch, OS
// page interleaving, or parallel (reader-local) initialization. Placement
// changes how much the loop phase scales, not what PCLR does.
ExperimentResult run_ablation_placement(RunContext& ctx) {
  const double scale = ctx.scale(0.15);
  const auto rows = workloads::table2_rows(scale);

  ExperimentResult res;
  ResultTable t("placement_sweep",
                {"App", "Placement", "Loop Mcy", "Total Mcy", "Speedup"});
  struct Policy {
    MachineConfig::InputPlacement pl;
    const char* name;
  };
  const Policy policies[] = {
      {MachineConfig::InputPlacement::kMaster, "master"},
      {MachineConfig::InputPlacement::kRoundRobin, "round-robin"},
      {MachineConfig::InputPlacement::kReaderLocal, "reader-local"},
  };
  for (const auto& row : rows) {
    MachineConfig cfg = MachineConfig::paper(16);
    const auto seq =
        simulate_reduction(row.workload, Mode::kSeq, cfg).total_cycles;
    for (const Policy& pol : policies) {
      cfg.input_placement = pol.pl;
      const auto r = simulate_reduction(row.workload, Mode::kHw, cfg);
      t.add_row({row.workload.app, pol.name,
                 round_to(r.phase("loop") / 1e6, 3),
                 round_to(r.total_cycles / 1e6, 3),
                 round_to(spd(seq, r.total_cycles), 1)});
    }
  }
  res.tables.push_back(std::move(t));
  res.note("Input-heavy codes (Nbf streams ~800 B of pair list per "
           "iteration) are most sensitive; compute-heavy ones barely "
           "notice — the paper's per-application speedup spread lives in "
           "this difference.");
  return res;
}

// Ablation: how slow can the programmable (Flex) directory controller be
// before PCLR loses its advantage? Sweeps the firmware occupancy
// multiplier; x1 equals the hardwired controller.
ExperimentResult run_ablation_flex_occupancy(RunContext& ctx) {
  const double scale = ctx.scale(0.15);
  const auto rows = workloads::table2_rows(scale);
  const MachineConfig base = MachineConfig::paper(16);

  std::vector<double> seq_cycles, sw_speedup;
  for (const auto& row : rows) {
    const auto seq =
        simulate_reduction(row.workload, Mode::kSeq, base).total_cycles;
    const auto sw =
        simulate_reduction(row.workload, Mode::kSw, base).total_cycles;
    seq_cycles.push_back(static_cast<double>(seq));
    sw_speedup.push_back(spd(seq, sw));
  }
  const double sw_hm = harmonic_mean(sw_speedup);

  ExperimentResult res;
  ResultTable t("occupancy_sweep",
                {"Occupancy x", "Flex speedup (hm)", "vs Hw %", "vs Sw %"});
  double hw_hm = 0.0;
  for (const double mult : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 20.0}) {
    MachineConfig cfg = base;
    cfg.flex_occupancy_mult = mult;
    std::vector<double> speedups;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto fx =
          simulate_reduction(rows[i].workload, Mode::kFlex, cfg).total_cycles;
      speedups.push_back(seq_cycles[i] / static_cast<double>(fx));
    }
    const double hm = harmonic_mean(speedups);
    if (mult == 1.0) hw_hm = hm;  // x1 == hardwired occupancy
    t.add_row({mult, round_to(hm, 2), round_to(100.0 * (hm / hw_hm - 1.0), 0),
               round_to(100.0 * (hm / sw_hm - 1.0), 0)});
  }
  res.tables.push_back(std::move(t));
  res.metric("hm_speedup_sw", round_to(sw_hm, 2));
  res.note("The paper's MAGIC-style controller sits near x6 (Flex ~16% "
           "below Hw); PCLR stays ahead of Sw far beyond that.");
  return res;
}

}  // namespace

void register_simulation_experiments(ExperimentRegistry& r) {
  r.add({.name = "fig6_pclr_breakdown",
         .title = "PCLR vs software-only reductions, 16 nodes (Fig. 6)",
         .paper_ref = "Fig. 6",
         .description =
             "Simulate Seq/Sw/Hw/Flex per Table 2 code; report normalized "
             "Init/Loop/Merge breakdown and harmonic-mean speedups.",
         .default_scale = 0.25,
         .run = run_fig6});
  r.add({.name = "fig7_scalability",
         .title = "speedup scalability at 4/8/16 processors (Fig. 7)",
         .paper_ref = "Fig. 7",
         .description =
             "Harmonic-mean Sw/Hw/Flex speedups as the node count grows; "
             "shows Sw's merge-bound flattening.",
         .default_scale = 0.15,
         .run = run_fig7});
  r.add({.name = "table2_appchar",
         .title = "application characteristics (Table 2)",
         .paper_ref = "Table 2",
         .description =
             "Per-application loop statistics plus the simulation-derived "
             "flushed/displaced reduction-line counters.",
         .default_scale = 1.0,
         .run = run_table2});
  r.add({.name = "ablation_fpunit",
         .title = "combine FP-unit pipelining and unit count",
         .paper_ref = "ablation (§5.1.3)",
         .description =
             "Pipelined vs unpipelined combine adder, 1 vs 2 units, on the "
             "combine-heaviest codes.",
         .default_scale = 0.15,
         .run = run_ablation_fpunit});
  r.add({.name = "ablation_linesize",
         .title = "cache-line size vs PCLR traffic",
         .paper_ref = "ablation (§5.1.3)",
         .description =
             "32/64/128 B reduction lines: fills, displacements, flushes "
             "and combines per code.",
         .default_scale = 0.15,
         .run = run_ablation_linesize});
  r.add({.name = "ablation_placement",
         .title = "input page placement vs loop scaling",
         .paper_ref = "ablation (§6.1)",
         .description =
             "Master / round-robin / reader-local first-touch placement of "
             "the shared inputs under PCLR Hw.",
         .default_scale = 0.15,
         .run = run_ablation_placement});
  r.add({.name = "ablation_flex_occupancy",
         .title = "Flex controller occupancy crossover",
         .paper_ref = "ablation (§5.2)",
         .description =
             "Sweep the programmable controller's occupancy multiplier and "
             "locate the crossover with the software-only scheme.",
         .default_scale = 0.15,
         .run = run_ablation_flex_occupancy});
}

}  // namespace sapp::repro
