// Kernel-backend ablation:
//   kernels — scalar vs SIMD Init/Merge primitives on the Fig. 3 sizes.
//
// The schemes' Init and Merge phases run on the dispatched kernel backend
// (reductions/kernels.hpp). This experiment isolates those primitives:
// for every distinct reduction dimension of the Fig. 3 table and every
// backend usable on this host, it measures the neutral-fill and the
// sum-merge, reports per-element times and effective merge bandwidth, and
// verifies that every backend's merge is bitwise identical to scalar's
// (the backends vectorize without reassociating, so this must hold
// exactly). CI gates on `simd_merge_speedup` when a SIMD backend exists.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/timer.hpp"
#include "reductions/kernels.hpp"
#include "repro/registry.hpp"
#include "workloads/paramsets.hpp"

namespace sapp::repro {

namespace {

/// ns per element of `body(n)`, repeated until ~2 ms of work accumulates.
template <typename F>
double measure_ns(std::size_t n, F&& body) {
  Timer t;
  std::size_t reps = 0;
  do {
    body(n);
    ++reps;
  } while (t.seconds() < 2e-3);
  return t.seconds() * 1e9 / static_cast<double>(reps * n);
}

ExperimentResult run_kernels(RunContext& ctx) {
  // The Fig. 3 dimensions are scale-independent (the paper sweeps them);
  // generate the rows at the smallest scale just to enumerate the sizes.
  std::vector<std::size_t> sizes;
  for (const auto& row : workloads::fig3_rows(0.01))
    sizes.push_back(row.workload.input.pattern.dim);
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  if (ctx.tiny() && sizes.size() > 3)
    sizes.resize(3);  // smoke runs: smallest three sizes

  const std::vector<kernels::Backend> backends(
      kernels::usable_backends().begin(), kernels::usable_backends().end());
  const kernels::Backend original = kernels::active_backend();

  ExperimentResult res;
  ResultTable t("kernel_backends",
                {"Elements", "Backend", "ISA", "Fill ns/elem",
                 "Merge ns/elem", "Merge GB/s", "Speedup vs scalar"});

  // Per-backend merge speedups vs scalar, pooled over sizes (geomean).
  std::vector<double> log_speedup(backends.size(), 0.0);
  bool all_bitwise_equal = true;

  for (const std::size_t n : sizes) {
    AlignedBuffer<double> acc(n), src(n), ref(n);
    for (std::size_t i = 0; i < n; ++i)
      src[i] = 1.0 + 1e-3 * static_cast<double>(i % 1024);

    double scalar_merge_ns = 0.0;
    for (std::size_t bi = 0; bi < backends.size(); ++bi) {
      SAPP_REQUIRE(kernels::set_backend(backends[bi]),
                   "usable backend refused by set_backend");
      const kernels::KernelOps& K = kernels::active();

      const double fill_ns = ctx.measure([&] {
        return measure_ns(n, [&](std::size_t m) { K.fill(acc.data(), m, 0.0); });
      });
      // Merge timing re-folds src into acc in place; the accumulating
      // values do not affect the memory-bound timing.
      K.fill(acc.data(), n, 0.0);
      const double merge_ns = ctx.measure([&] {
        return measure_ns(
            n, [&](std::size_t m) { K.merge_sum(acc.data(), src.data(), m); });
      });
      if (backends[bi] == kernels::Backend::kScalar) scalar_merge_ns = merge_ns;

      // Bitwise check: one fill + one merge must match scalar exactly.
      K.fill(acc.data(), n, 0.0);
      K.merge_sum(acc.data(), src.data(), n);
      if (backends[bi] == kernels::Backend::kScalar) {
        std::memcpy(ref.data(), acc.data(), n * sizeof(double));
      } else if (std::memcmp(ref.data(), acc.data(), n * sizeof(double)) != 0) {
        all_bitwise_equal = false;
      }

      const double speedup =
          merge_ns > 0.0 && scalar_merge_ns > 0.0 ? scalar_merge_ns / merge_ns
                                                  : 1.0;
      log_speedup[bi] += std::log(speedup);
      // 3 streams per merged element: read acc, read src, write acc.
      const double gbps = 3.0 * sizeof(double) / merge_ns;
      t.add_row({static_cast<double>(n), std::string(K.name),
                 std::string(K.isa), round_to(fill_ns, 3),
                 round_to(merge_ns, 3), round_to(gbps, 2),
                 round_to(speedup, 2)});
    }
  }
  kernels::set_backend(original);
  res.tables.push_back(std::move(t));

  res.metric("sizes", static_cast<double>(sizes.size()));
  res.metric("backends", static_cast<double>(backends.size()));
  res.metric("backends_bitwise_equal", all_bitwise_equal ? 1.0 : 0.0);
  double best_simd = 0.0;
  for (std::size_t bi = 0; bi < backends.size(); ++bi) {
    const double geo =
        std::exp(log_speedup[bi] / static_cast<double>(sizes.size()));
    res.metric(std::string("merge_speedup_") +
                   kernels::to_string(backends[bi]),
               round_to(geo, 3));
    if (backends[bi] != kernels::Backend::kScalar)
      best_simd = std::max(best_simd, geo);
  }
  // 0 when only scalar is usable — CI skips the speedup gate then.
  res.metric("simd_merge_speedup", round_to(best_simd, 3));
  res.note("Scalar is compiled with auto-vectorization disabled on x86 so "
           "the backend comparison is a true one-lane baseline "
           "(docs/backends.md).");
  res.note("Merge GB/s counts 3 streams per element (read acc + read src + "
           "write acc). All backends must agree bitwise: the merge kernels "
           "vectorize without reassociating.");
  return res;
}

}  // namespace

void register_kernel_experiments(ExperimentRegistry& r) {
  r.add({.name = "kernels",
         .title = "kernel backend ablation (scalar vs SIMD)",
         .paper_ref = "ablation (§4 software schemes)",
         .description =
             "Measure the Init/Merge kernel primitives under every usable "
             "backend on the Fig. 3 reduction sizes; verify bitwise "
             "agreement and report SIMD-vs-scalar merge speedup.",
         .default_scale = 0.3,
         .run = run_kernels});
}

}  // namespace sapp::repro
