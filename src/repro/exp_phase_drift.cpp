// Phase-aware re-adaptation experiment:
//   phase_drift — one loop site whose input reshuffles its connectivity
//                 mid-run (dense mesh → sparse scatter). The phase-aware
//                 runtime demotes the stale decision and re-characterizes;
//                 the frozen-decision baseline keeps executing the phase-1
//                 scheme. The CI repro-smoke gate requires the re-adapting
//                 runtime to beat the frozen one by >= 1.3x on the drifted
//                 segment.
//
// Second half: the persisted-phase-history contract. A decision cache
// whose recorded phase times contradict what this host actually measures
// (stale host, copied file, input moved on) must be demoted within the
// first monitored window of a warm start — the site adopts the cached
// scheme, measures, and re-characterizes after at most
// `PhaseMonitorOptions::time_drift_patience` invocations.
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/runtime.hpp"
#include "repro/registry.hpp"
#include "workloads/workload.hpp"

namespace sapp::repro {

namespace {

struct DriftSetup {
  workloads::DriftPhases phases;
  int pre = 0;   ///< invocations before the reshuffle
  int post = 0;  ///< invocations after it (the drifted segment)
};

DriftSetup build(RunContext& ctx) {
  const double scale = ctx.scale(0.3);
  const auto iters = [&](std::size_t n) {
    return std::max<std::size_t>(200, static_cast<std::size_t>(
                                          static_cast<double>(n) * scale));
  };
  DriftSetup s;
  // dim fixed (it sets the frozen scheme's per-invocation init/merge tax);
  // edge counts scale. At the default scale the dense phase sweeps ~12
  // refs per array element per invocation — solid rep territory.
  s.phases = workloads::make_irreg_reshuffle(
      /*dim=*/100000, /*dense_edges=*/iters(2000000),
      /*sparse_edges=*/iters(2700), /*seed=*/41);
  s.pre = ctx.tiny() ? 3 : 6;
  s.post = ctx.tiny() ? 4 : 24;
  return s;
}

RuntimeOptions runtime_options(RunContext& ctx, bool frozen) {
  RuntimeOptions o;
  o.threads = ctx.threads();
  o.coeffs = &ctx.coeffs();  // identical deciders across Runtime instances
  o.adaptive.freeze_decisions = frozen;
  return o;
}

ExperimentResult run_phase_drift(RunContext& ctx) {
  const DriftSetup s = build(ctx);
  const ReductionInput& dense = s.phases.dense.input;
  const ReductionInput& sparse = s.phases.sparse.input;
  const std::string site = dense.pattern.loop_id;
  std::vector<double> out(dense.pattern.dim, 0.0);

  ExperimentResult res;

  // --- adapted-after-drift vs frozen decision -------------------------
  // One instrumented pass per variant for the schemes/counters, then
  // median-of-reps wall times per segment (fresh Runtime per rep; the
  // adaptive post-drift segment deliberately includes the demotion and
  // re-characterization cost).
  ResultTable seg("phase_drift_segments",
                  {"Variant", "Scheme pre", "Scheme post", "Pre ms",
                   "Drifted ms", "Recharacterizations"});
  double post_ms[2] = {0.0, 0.0};
  unsigned rechar[2] = {0, 0};
  for (const bool frozen : {false, true}) {
    std::string pre_scheme, post_scheme;
    {
      Runtime rt(runtime_options(ctx, frozen));
      for (int k = 0; k < s.pre; ++k) (void)rt.submit(dense, out);
      pre_scheme = to_string(rt.site(site).current());
      for (int k = 0; k < s.post; ++k) (void)rt.submit(sparse, out);
      post_scheme = to_string(rt.site(site).current());
      rechar[frozen ? 1 : 0] = rt.site(site).recharacterizations();
    }
    std::vector<double> pre_samples;  // medianed like the drifted segment
    const double post_s = ctx.measure([&] {
      Runtime rt(runtime_options(ctx, frozen));
      Timer tp;
      for (int k = 0; k < s.pre; ++k) (void)rt.submit(dense, out);
      pre_samples.push_back(tp.seconds());
      Timer t;
      for (int k = 0; k < s.post; ++k) (void)rt.submit(sparse, out);
      return t.seconds();
    });
    const double pre_s = median(pre_samples);
    post_ms[frozen ? 1 : 0] = post_s * 1e3;
    seg.add_row({frozen ? "frozen decision" : "phase-aware", pre_scheme,
                 post_scheme, round_to(pre_s * 1e3, 2),
                 round_to(post_s * 1e3, 2),
                 static_cast<double>(rechar[frozen ? 1 : 0])});
  }
  res.tables.push_back(std::move(seg));

  // Sanity: both variants must still compute correct sums on the drifted
  // input (the frozen baseline re-plans its frozen scheme — a decision may
  // be stale, an inspector plan must never be).
  std::size_t mismatches = 0;
  {
    std::vector<double> ref(sparse.pattern.dim, 0.0);
    run_sequential(sparse, ref);
    for (const bool frozen : {false, true}) {
      Runtime rt(runtime_options(ctx, frozen));
      for (int k = 0; k < s.pre; ++k) (void)rt.submit(dense, out);
      std::vector<double> got(sparse.pattern.dim, 0.0);
      (void)rt.submit(sparse, got);
      for (std::size_t e = 0; e < ref.size(); ++e) {
        const double tol = 1e-9 + 1e-9 * std::abs(ref[e]);
        if (std::abs(got[e] - ref[e]) > tol * 1e3) {
          ++mismatches;
          break;
        }
      }
    }
  }

  // --- stale phase history: warm start must re-decide -----------------
  // Learn the dense phase, then poison the persisted history as if the
  // cache came from a host 1000x faster (predicted_total_s cleared so the
  // *history* path, not the model-prediction path, is what demotes).
  // PID-qualified temp name: a fixed path would race a concurrent
  // sapp_repro on the same host (one process's remove/overwrite landing
  // between another's save and load).
  const std::string cache_path =
      (std::filesystem::temp_directory_path() /
       ("sapp_phase_drift." + std::to_string(::getpid()) + ".cache.json"))
          .string();
  {
    Runtime learner(runtime_options(ctx, false));
    for (int k = 0; k < 8; ++k) (void)learner.submit(dense, out);
    DecisionCache snap = learner.snapshot_decisions();
    const CachedDecision* learned = snap.find(site);
    if (learned == nullptr)
      throw std::runtime_error("phase_drift: no cached decision for " + site);
    CachedDecision doctored = *learned;
    doctored.predicted_total_s = 0.0;
    for (auto& t : doctored.phase_times_s) t /= 1000.0;
    DecisionCache poisoned;
    poisoned.put(std::move(doctored));
    std::string err;
    if (!poisoned.save(cache_path, &err))
      throw std::runtime_error("cannot write decision cache: " + err);
  }
  int recheck_invocation = 0;
  bool adopted = false;
  int window = 0;
  {
    RuntimeOptions o = runtime_options(ctx, false);
    o.decision_cache_path = cache_path;
    Runtime rt(o);
    window = o.adaptive.monitor.time_drift_patience;
    for (int k = 1; k <= window + 4; ++k) {
      (void)rt.submit(dense, out);
      if (k == 1) adopted = rt.site(site).warm_started();
      if (rt.site(site).recharacterizations() >= 1) {
        recheck_invocation = k;
        break;
      }
    }
  }
  std::error_code ec;
  std::filesystem::remove(cache_path, ec);

  const double speedup = post_ms[0] > 0.0 ? post_ms[1] / post_ms[0] : 0.0;
  res.metric("threads", ctx.threads());
  res.metric("pre_invocations", s.pre);
  res.metric("post_invocations", s.post);
  res.metric("drift_adapt_speedup", round_to(speedup, 2));
  res.metric("adaptive_recharacterizations", rechar[0]);
  res.metric("frozen_recharacterizations", rechar[1]);
  res.metric("sanity_mismatches", static_cast<double>(mismatches));
  res.metric("stale_warm_adopted", adopted ? 1 : 0);
  res.metric("stale_warm_recharacterize_invocation", recheck_invocation);
  res.metric("stale_warm_window", window);
  res.note("drift_adapt_speedup = frozen-decision wall time over the "
           "drifted segment divided by the phase-aware runtime's (which "
           "includes its demotion + re-characterization cost); the "
           "repro-smoke gate requires >= 1.3x at full size.");
  res.note("stale_warm_recharacterize_invocation: a warm start from a "
           "cache whose phase history promises 1000x-faster invocations "
           "adopts the cached scheme, contradicts it against fresh "
           "measurements, and re-characterizes; the gate requires this "
           "within the first monitored window (stale_warm_window "
           "invocations).");
  res.note("Committed reference results are from a 1-hardware-thread "
           "host; the scheme split (rep -> sel/hash) and the speedup "
           "survive any thread count because the frozen scheme's O(dim) "
           "init/merge tax is per-invocation.");
  return res;
}

}  // namespace

void register_phase_drift_experiments(ExperimentRegistry& r) {
  r.add({.name = "phase_drift",
         .title = "phase-aware re-adaptation after a mid-run reshuffle",
         .paper_ref = "§4 (ROADMAP)",
         .description =
             "Dense->sparse connectivity reshuffle on one loop site: "
             "re-adapting runtime vs frozen-decision baseline on the "
             "drifted segment, plus warm-start demotion of a decision "
             "cache with contradictory phase history.",
         .default_scale = 0.3,
         .run = run_phase_drift});
}

}  // namespace sapp::repro
