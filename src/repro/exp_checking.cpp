// In-flight checking experiment:
//   checking — (a) checker overhead: fig3-sized reductions executed
//              unchecked vs. checked at the serving deployment rate
//              (0.05) and the audit rates 0.25 and 1.0 (the checked wall
//              time includes snapshot, input-stream pass and verdict);
//              (b) detection rate: the FaultInjector corrupts
//              exactly one value per trial at each of the three wired
//              sites — a scheme combine (AdaptiveReducer), a speculative
//              commit (R-LRPD), a warm-started combine from a restored
//              cache decision (Runtime restart) — and the observed
//              detections are compared against the analytical bound.
//
// Detection is exactly predictable per trial: a single corrupted element e
// is caught iff ReductionChecker::slot_sampled(seed, rate, e), so beyond
// the aggregate binomial envelope the experiment asserts per-trial
// agreement (detection_trial_agreement). docs/checking.md derives the
// bound; the CI repro-smoke gate requires 100% detection at rate 1.0,
// overhead <= 15% at the serving rate on full fig3 scale, zero false
// positives and zero recovery mismatches.
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/fault_injector.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/adaptive.hpp"
#include "core/runtime.hpp"
#include "repro/registry.hpp"
#include "spec/rlrpd.hpp"
#include "workloads/paramsets.hpp"
#include "workloads/workload.hpp"

namespace sapp::repro {

namespace {

constexpr std::uint64_t kCheckSeed = 0x5EEDC0DEDC0FFEEull;

CheckerOptions checker_options(double rate) {
  CheckerOptions co;
  co.enabled = true;
  co.sample_rate = rate;
  co.seed = kCheckSeed;
  return co;
}

/// Tally shared by every section; the gates read these.
struct Tally {
  std::uint64_t false_positives = 0;    ///< clean runs that failed the check
  std::uint64_t recovery_mismatches = 0;///< detected trials with wrong output
  bool trial_agreement = true;  ///< detection == sampling predicate, per trial
};

// ---- overhead: checked vs unchecked execution ------------------------

struct OverheadRow {
  std::string label;
  double unchecked_s = 0.0;
  double serving_s = 0.0;  ///< the deployment rate, 0.05 — the gated number
  double quarter_s = 0.0;
  double full_s = 0.0;
  std::size_t sampled = 0;
};

/// In-flight sample rate the serving runtime deploys with (see
/// exp_serving.cpp); the CI overhead gate is evaluated at this rate.
constexpr double kServingRate = 0.05;

OverheadRow measure_row(RunContext& ctx, const workloads::Workload& w,
                        Tally& tally) {
  ThreadPool& pool = ctx.pool();
  const auto scheme = make_scheme(SchemeKind::kRep);
  const auto plan = scheme->plan(w.input.pattern, pool.size());
  std::vector<double> out(w.input.pattern.dim, 0.0);

  OverheadRow row;
  row.label = w.app + "/" + w.loop + " " + w.variant;
  {
    // Untimed rate-1.0 pass: sizes the per-thread checker's reusable
    // buffers for this dim so no timed sample pays the one-off
    // allocation faults (a real runtime amortizes them the same way).
    CheckReport rep;
    (void)scheme->execute_checked(plan.get(), w.input, pool, out,
                                  checker_options(1.0), &rep);
    std::fill(out.begin(), out.end(), 0.0);
  }
  row.unchecked_s = ctx.measure([&] {
    std::fill(out.begin(), out.end(), 0.0);
    Timer t;
    (void)scheme->execute(plan.get(), w.input, pool, out);
    return t.seconds();
  });
  const auto checked = [&](double rate, double& out_s) {
    const CheckerOptions co = checker_options(rate);
    out_s = ctx.measure([&] {
      std::fill(out.begin(), out.end(), 0.0);
      Timer t;
      CheckReport rep;
      (void)scheme->execute_checked(plan.get(), w.input, pool, out, co, &rep);
      if (!rep.passed) ++tally.false_positives;
      return t.seconds();
    });
  };
  checked(kServingRate, row.serving_s);
  checked(0.25, row.quarter_s);
  checked(1.0, row.full_s);
  row.sampled = ReductionChecker::count_sampled(kCheckSeed, 0.25,
                                                w.input.pattern.dim);
  return row;
}

// ---- detection trials -------------------------------------------------

/// Outcome of one class x rate trial batch.
struct TrialBatch {
  int trials = 0;
  int injected = 0;   ///< trials whose injector actually fired
  int detected = 0;
  int predicted = 0;  ///< trials whose corrupted element was sampled
};

ReductionInput detection_input(std::uint64_t seed) {
  workloads::SynthParams p;
  p.dim = 1200;
  p.distinct = 1200;
  p.iterations = 4000;
  p.refs_per_iter = 3;
  p.seed = seed;
  return workloads::make_synthetic(p);
}

AdaptiveOptions quiet_adaptive(double rate) {
  AdaptiveOptions o;
  // Park the timing feedback: these trials measure the correctness
  // detector, and contended timing would demote decisions at random.
  o.mispredict_patience = 1 << 30;
  o.monitor.time_drift_patience = 1 << 30;
  o.check = checker_options(rate);
  return o;
}

/// Corrupt one merged output element per trial inside AdaptiveReducer's
/// checked execute path (FaultSite::kSchemeCombine). Detection must roll
/// the output back to the bitwise serial result.
TrialBatch scheme_combine_trials(RunContext& ctx, double rate, int trials,
                                 Tally& tally) {
  const ReductionInput in = detection_input(424242);
  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);

  FaultInjector inj;
  AdaptiveOptions opt = quiet_adaptive(rate);
  opt.fault_injector = &inj;
  AdaptiveReducer red(ctx.pool(), ctx.coeffs(), opt);
  std::vector<double> out(in.pattern.dim, 0.0);
  (void)red.invoke(in, out);  // clean first invocation settles the decision
  tally.false_positives += red.check_failures();

  TrialBatch b;
  b.trials = trials;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t before = red.check_failures();
    const std::uint64_t shots_before = inj.injected();
    inj.arm(FaultSite::kSchemeCombine,
            0xC0DEull + static_cast<std::uint64_t>(t), 1);
    std::fill(out.begin(), out.end(), 0.0);
    (void)red.invoke(in, out);
    if (inj.injected() != shots_before + 1) continue;
    ++b.injected;
    const bool detected = red.check_failures() == before + 1;
    const bool predicted = ReductionChecker::slot_sampled(
        kCheckSeed, rate, inj.events().back().element);
    b.detected += detected ? 1 : 0;
    b.predicted += predicted ? 1 : 0;
    if (detected != predicted) tally.trial_agreement = false;
    if (detected) {
      // Recovery contract: rollback + serial re-execution, bitwise.
      for (std::size_t e = 0; e < ref.size(); ++e)
        if (out[e] != ref[e]) {
          ++tally.recovery_mismatches;
          break;
        }
    }
    inj.disarm();
  }
  return b;
}

/// Reduction-only speculative body: work derived from the iteration index
/// alone, so re-execution rounds replay identical contributions and the
/// loop is provably conflict-free (any check failure is the injector's).
SpecLoopBody reduction_body(std::size_t dim, std::uint64_t seed) {
  return [dim, seed](std::size_t iter, SpecArray& arr) {
    Rng rng(seed ^ (static_cast<std::uint64_t>(iter) * 0x9E3779B97F4A7C15ull));
    for (int r = 0; r < 3; ++r)
      arr.reduce_add(static_cast<std::uint32_t>(rng.below(dim)),
                     rng.uniform(-1.0, 1.0));
  };
}

/// Corrupt one pending speculative value per trial between block execution
/// and validation (FaultSite::kSpecCommit). A detected corruption must
/// roll the block back through the mis-speculation path and converge on
/// the sequential result.
TrialBatch spec_commit_trials(RunContext& ctx, double rate, int trials,
                              Tally& tally) {
  // 512 elements = 32 sampling blocks: enough granularity that a 0.25
  // sample observes some of the speculative array (dim/16 blocks is the
  // sampling resolution — see ReductionChecker).
  constexpr std::size_t kDim = 512;
  constexpr std::size_t kIters = 600;
  TrialBatch b;
  b.trials = trials;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 0x5bec0ull + static_cast<std::uint64_t>(t);
    const SpecLoopBody body = reduction_body(kDim, seed);
    std::vector<double> ref(kDim, 0.0);
    sequential_execute(kIters, body, ref);

    FaultInjector inj;
    inj.arm(FaultSite::kSpecCommit, seed * 31 + 7, 1);
    RlrpdConfig cfg;
    cfg.check = checker_options(rate);
    cfg.fault_injector = &inj;
    std::vector<double> data(kDim, 0.0);
    const RlrpdStats st =
        rlrpd_execute(kIters, body, data, ctx.pool(), cfg);
    if (inj.injected() != 1) continue;
    ++b.injected;
    const bool detected = st.check_failures >= 1;
    const bool predicted = ReductionChecker::slot_sampled(
        kCheckSeed, rate, inj.events()[0].element);
    b.detected += detected ? 1 : 0;
    b.predicted += predicted ? 1 : 0;
    if (detected != predicted) tally.trial_agreement = false;
    if (detected) {
      for (std::size_t e = 0; e < kDim; ++e)
        if (std::abs(data[e] - ref[e]) > 1e-9 + 1e-9 * std::abs(ref[e])) {
          ++tally.recovery_mismatches;
          break;
        }
    }
  }
  return b;
}

/// Corrupt one combine of a warm-started site (FaultSite::
/// kRestoredDecision): a learning Runtime persists its decision into a
/// sharded store, then each trial restarts a fresh Runtime against that
/// store and corrupts the first checked invocation of the reloaded
/// decision. Detection must recover serially and demote the decision.
TrialBatch restored_decision_trials(RunContext& ctx, double rate, int trials,
                                    const std::string& dir, Tally& tally) {
  const ReductionInput in = detection_input(777777);
  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);

  RuntimeOptions ro;
  ro.threads = ctx.threads();
  ro.coeffs = &ctx.coeffs();
  ro.adaptive = quiet_adaptive(rate);
  ro.decision_cache_dir = dir;
  {
    // Learning pass: settle and persist the decision (destructor flushes).
    Runtime learn(ro);
    std::vector<double> out(in.pattern.dim, 0.0);
    for (int k = 0; k < 3; ++k) {
      std::fill(out.begin(), out.end(), 0.0);
      (void)learn.submit("checking/restored", in, out);
    }
    tally.false_positives += learn.check_failures();
  }

  TrialBatch b;
  b.trials = trials;
  std::vector<double> out(in.pattern.dim, 0.0);
  for (int t = 0; t < trials; ++t) {
    FaultInjector inj;
    inj.arm(FaultSite::kRestoredDecision,
            0x4E57ull + static_cast<std::uint64_t>(t), 1);
    RuntimeOptions rt_opt = ro;
    rt_opt.adaptive.fault_injector = &inj;
    Runtime rt(rt_opt);  // fresh process-restart Runtime, reloaded store
    std::fill(out.begin(), out.end(), 0.0);
    (void)rt.submit("checking/restored", in, out);
    if (inj.injected() != 1) continue;  // cold start: site never fired
    ++b.injected;
    const bool detected = rt.check_failures() == 1;
    const bool predicted = ReductionChecker::slot_sampled(
        kCheckSeed, rate, inj.events()[0].element);
    b.detected += detected ? 1 : 0;
    b.predicted += predicted ? 1 : 0;
    if (detected != predicted) tally.trial_agreement = false;
    if (detected) {
      for (std::size_t e = 0; e < ref.size(); ++e)
        if (out[e] != ref[e]) {
          ++tally.recovery_mismatches;
          break;
        }
    }
  }
  return b;
}

double pct(double part, double whole) {
  return whole > 0.0 ? 100.0 * part / whole : 0.0;
}

ExperimentResult run_checking(RunContext& ctx) {
  const double scale = ctx.scale(0.3);
  Tally tally;

  // --- (a) overhead on fig3-sized inputs -----------------------------
  const auto rows = workloads::fig3_rows(scale);
  ResultTable overhead("checker_overhead",
                       {"Workload", "Unchecked ms", "Checked 0.05 ms",
                        "Overhead 0.05 %", "Checked 0.25 ms",
                        "Overhead 0.25 %", "Checked 1.0 ms",
                        "Overhead 1.0 %", "Sampled elems"});
  double sum_unchecked = 0.0, sum_serving = 0.0, sum_quarter = 0.0,
         sum_full = 0.0;
  // Every 4th row spans all six applications without timing all 21.
  for (std::size_t i = 0; i < rows.size(); i += 4) {
    const OverheadRow r = measure_row(ctx, rows[i].workload, tally);
    sum_unchecked += r.unchecked_s;
    sum_serving += r.serving_s;
    sum_quarter += r.quarter_s;
    sum_full += r.full_s;
    overhead.add_row(
        {r.label, round_to(r.unchecked_s * 1e3, 3),
         round_to(r.serving_s * 1e3, 3),
         round_to(pct(r.serving_s - r.unchecked_s, r.unchecked_s), 1),
         round_to(r.quarter_s * 1e3, 3),
         round_to(pct(r.quarter_s - r.unchecked_s, r.unchecked_s), 1),
         round_to(r.full_s * 1e3, 3),
         round_to(pct(r.full_s - r.unchecked_s, r.unchecked_s), 1),
         static_cast<double>(r.sampled)});
  }
  const double overhead_serving =
      pct(sum_serving - sum_unchecked, sum_unchecked);
  const double overhead_quarter =
      pct(sum_quarter - sum_unchecked, sum_unchecked);
  const double overhead_full = pct(sum_full - sum_unchecked, sum_unchecked);

  // --- (b) fault-injection detection ----------------------------------
  const std::string dir_base =
      (std::filesystem::temp_directory_path() /
       ("sapp_checking." + std::to_string(::getpid()) + ".cache"))
          .string();
  const int scheme_trials = ctx.tiny() ? 30 : 120;
  const int spec_trials = ctx.tiny() ? 20 : 80;
  const int restored_trials = ctx.tiny() ? 10 : 40;

  ResultTable det("fault_detection",
                  {"Fault site", "Rate", "Trials", "Injected", "Detected",
                   "Predicted", "Detection %"});
  double full_min = 1.0;
  double quarter_obs = 0.0, quarter_trials = 0.0;
  int injected_total = 0, trials_total = 0;
  const auto record = [&](const char* name, double rate, const TrialBatch& b,
                          bool uniform_victims) {
    const double obs =
        b.injected > 0 ? static_cast<double>(b.detected) / b.injected : 0.0;
    det.add_row({name, rate, static_cast<double>(b.trials),
                 static_cast<double>(b.injected),
                 static_cast<double>(b.detected),
                 static_cast<double>(b.predicted), round_to(obs * 100.0, 1)});
    injected_total += b.injected;
    trials_total += b.trials;
    if (rate == 1.0) full_min = std::min(full_min, obs);
    // The binomial envelope only applies where victims are uniform over
    // [0, dim) — the two corrupt_one sites; the spec site corrupts a
    // uniformly chosen *pending cell*, so its victim distribution follows
    // the access pattern and only the per-trial agreement is asserted.
    if (rate == 0.25 && uniform_victims) {
      quarter_obs += b.detected;
      quarter_trials += b.injected;
    }
  };

  for (const double rate : {0.25, 1.0}) {
    const std::string tag = rate == 1.0 ? ".full" : ".quarter";
    record("scheme combine", rate,
           scheme_combine_trials(ctx, rate, scheme_trials, tally), true);
    record("speculative commit", rate,
           spec_commit_trials(ctx, rate, spec_trials, tally), false);
    const std::string dir = dir_base + tag;
    std::filesystem::remove_all(dir);
    record("restored decision", rate,
           restored_decision_trials(ctx, rate, restored_trials, dir, tally),
           true);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  // Analytical bound for the uniform-victim sites at rate 0.25: the
  // sampled fraction of the detection input's element space.
  const std::size_t dim = detection_input(424242).pattern.dim;
  const double analytic =
      static_cast<double>(ReductionChecker::count_sampled(kCheckSeed, 0.25,
                                                          dim)) /
      static_cast<double>(dim);
  const double observed_quarter =
      quarter_trials > 0.0 ? quarter_obs / quarter_trials : 0.0;
  const double sigma =
      quarter_trials > 0.0
          ? std::sqrt(analytic * (1.0 - analytic) / quarter_trials)
          : 0.0;
  const bool within =
      std::abs(observed_quarter - analytic) <= 4.0 * sigma + 1e-12;

  ExperimentResult res;
  res.tables.push_back(std::move(overhead));
  res.tables.push_back(std::move(det));
  res.metric("threads", ctx.threads());
  res.metric("checker_overhead_pct", round_to(overhead_serving, 2));
  res.metric("checker_overhead_quarter_pct", round_to(overhead_quarter, 2));
  res.metric("checker_overhead_full_pct", round_to(overhead_full, 2));
  res.metric("detection_rate_full_min", round_to(full_min, 4));
  res.metric("detection_rate_quarter", round_to(observed_quarter, 4));
  res.metric("analytic_rate_quarter", round_to(analytic, 4));
  res.metric("detection_within_tolerance", within ? 1 : 0);
  res.metric("detection_trial_agreement", tally.trial_agreement ? 1 : 0);
  res.metric("trials_total", trials_total);
  res.metric("injected_total", injected_total);
  res.metric("recovery_mismatches",
             static_cast<double>(tally.recovery_mismatches));
  res.metric("false_positives", static_cast<double>(tally.false_positives));
  res.note("checker_overhead_pct compares wall time of rep-scheme "
           "executions with and without the in-flight checker at the "
           "serving deployment rate (0.05, the rate exp_serving.cpp runs "
           "with), summed over fig3 rows (median of reps each); the "
           "checked time includes the output snapshot, the input-stream "
           "checksum pass and the verdict. The CI gate is <= 15% at full "
           "fig3 scale; checker_overhead_quarter_pct / _full_pct report "
           "the audit rates 0.25 and 1.0, whose cost grows with the "
           "sampled fraction (see docs/checking.md).");
  res.note("Detection is exactly predictable per trial: a corruption of "
           "element e is caught iff slot_sampled(seed, rate, e), so "
           "detection_trial_agreement = 1 means every trial matched the "
           "analytical predicate; detection_within_tolerance additionally "
           "places the uniform-victim aggregate at rate 0.25 inside 4 "
           "sigma of the sampled fraction (docs/checking.md derives the "
           "1-(1-s)^k bound).");
  res.note("Every detected corruption must recover: the scheme-combine "
           "and restored-decision sites roll back and re-execute serially "
           "(bitwise-equal to run_sequential), the speculative-commit "
           "site re-executes the failed block through the ordinary "
           "mis-speculation path. recovery_mismatches counts detected "
           "trials whose final output still disagreed — the gate is 0, as "
           "is false_positives (clean checked runs that failed).");
  return res;
}

}  // namespace

void register_checking_experiments(ExperimentRegistry& r) {
  r.add({.name = "checking",
         .title = "in-flight checking: overhead + fault-injection detection",
         .paper_ref = "§4 + ROADMAP item 5",
         .description =
             "Measure the in-flight probabilistic checker's overhead "
             "against unchecked execution on fig3-sized inputs, and its "
             "detection rate under single-value fault injection at the "
             "three wired sites (scheme combine, speculative commit, "
             "restored cache decision) at sample rates 0.25 and 1.0.",
         .default_scale = 0.3,
         .run = run_checking});
}

}  // namespace sapp::repro
