#include "repro/registry.hpp"

#include <stdexcept>

namespace sapp::repro {

void ExperimentRegistry::add(Experiment e) {
  if (e.name.empty())
    throw std::invalid_argument("experiment registered with an empty name");
  if (!e.run)
    throw std::invalid_argument("experiment '" + e.name +
                                "' registered without a run function");
  if (contains(e.name))
    throw std::invalid_argument("duplicate experiment name '" + e.name + "'");
  experiments_.push_back(std::move(e));
}

bool ExperimentRegistry::contains(std::string_view name) const {
  for (const auto& e : experiments_)
    if (e.name == name) return true;
  return false;
}

const Experiment& ExperimentRegistry::find(std::string_view name) const {
  for (const auto& e : experiments_)
    if (e.name == name) return e;
  std::string msg = "unknown experiment '" + std::string(name) +
                    "'; registered experiments:";
  for (const auto& e : experiments_) msg += " " + e.name;
  throw std::out_of_range(msg);
}

ExperimentRegistry& builtin_experiments() {
  static ExperimentRegistry* registry = [] {
    auto* r = new ExperimentRegistry();
    register_software_experiments(*r);
    register_simulation_experiments(*r);
    register_speculation_experiments(*r);
    register_overhead_experiments(*r);
    register_runtime_experiments(*r);
    register_phase_drift_experiments(*r);
    register_serving_experiments(*r);
    register_checking_experiments(*r);
    register_kernel_experiments(*r);
    register_simplify_experiments(*r);
    register_distributed_experiments(*r);
    return r;
  }();
  return *registry;
}

}  // namespace sapp::repro
