#include "repro/result.hpp"

#include <sstream>
#include <thread>

#include "common/assert.hpp"
#include "common/topology.hpp"
#include "reductions/kernels.hpp"

namespace sapp::repro {

void ResultTable::add_row(std::vector<JsonValue> row) {
  SAPP_REQUIRE(row.size() == columns.size(),
               "result row width must match the table's columns");
  rows.push_back(std::move(row));
}

HostInfo HostInfo::current() {
  HostInfo h;
#if defined(__linux__)
  h.os = "linux";
#elif defined(__APPLE__)
  h.os = "darwin";
#elif defined(_WIN32)
  h.os = "windows";
#else
  h.os = "unknown";
#endif
#if defined(__x86_64__) || defined(_M_X64)
  h.arch = "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
  h.arch = "aarch64";
#elif defined(__i386__)
  h.arch = "x86";
#else
  h.arch = "unknown";
#endif
#if defined(__clang__)
  h.compiler = "clang " + std::to_string(__clang_major__) + "." +
               std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  h.compiler = "gcc " + std::to_string(__GNUC__) + "." +
               std::to_string(__GNUC_MINOR__);
#else
  h.compiler = "unknown";
#endif
  h.hardware_threads = std::thread::hardware_concurrency();
  return h;
}

EnvironmentInfo EnvironmentInfo::current() {
  EnvironmentInfo e;
  const kernels::KernelOps& k = kernels::active();
  e.backend = k.name;
  e.isa = k.isa;
  e.dispatch = kernels::dispatch_summary();
  e.topology = CpuTopology::host().summary();
  e.combine = topology::policy_summary();
  return e;
}

std::string format_cell(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: return "";
    case JsonValue::Kind::kBool: return v.as_bool() ? "true" : "false";
    case JsonValue::Kind::kNumber: return format_json_number(v.as_number());
    case JsonValue::Kind::kString: return v.as_string();
    default: return v.dump();  // containers never appear in cells
  }
}

namespace {

std::string md_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '|') out += "\\|";
    else if (c == '\n') out += ' ';
    else out += c;
  }
  return out;
}

void render_config_lines(const RunMeta& meta, const HostInfo& host,
                         std::ostringstream& os) {
  const EnvironmentInfo env = EnvironmentInfo::current();
  os << "- **Paper reference:** " << meta.paper_ref << "\n"
     << "- **Host:** " << host.tag() << ", " << host.hardware_threads
     << " hardware threads, " << host.compiler << "\n"
     << "- **Environment:** backend " << env.backend << " (" << env.isa
     << "), topology " << env.topology << ", combine " << env.combine << "\n"
     << "- **Config:** scale " << format_json_number(meta.scale)
     << ", threads " << meta.threads << ", reps " << meta.reps
     << ", warmup " << meta.warmup << (meta.tiny ? ", tiny" : "") << "\n";
}

}  // namespace

std::string render_markdown(const RunMeta& meta, const HostInfo& host,
                            const ExperimentResult& r) {
  std::ostringstream os;
  os << "# " << meta.experiment << " — " << meta.title << "\n\n";
  render_config_lines(meta, host, os);
  for (const auto& t : r.tables) {
    os << "\n## " << t.name << "\n\n|";
    for (const auto& c : t.columns) os << " " << md_escape(c) << " |";
    os << "\n|";
    for (std::size_t i = 0; i < t.columns.size(); ++i) os << " --- |";
    os << "\n";
    for (const auto& row : t.rows) {
      os << "|";
      for (const auto& cell : row) os << " " << md_escape(format_cell(cell)) << " |";
      os << "\n";
    }
  }
  if (!r.metrics.empty()) {
    os << "\n## Summary metrics\n\n| metric | value |\n| --- | --- |\n";
    for (const auto& [k, v] : r.metrics)
      os << "| " << md_escape(k) << " | " << format_json_number(v) << " |\n";
  }
  if (!r.notes.empty()) {
    os << "\n## Notes\n\n";
    for (const auto& n : r.notes) os << "- " << n << "\n";
  }
  return os.str();
}

std::string render_csv(const RunMeta& meta, const ExperimentResult& r) {
  auto csv_escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  os << "# experiment: " << meta.experiment << "\n";
  for (const auto& t : r.tables) {
    os << "# table: " << t.name << "\n";
    for (std::size_t i = 0; i < t.columns.size(); ++i)
      os << (i ? "," : "") << csv_escape(t.columns[i]);
    os << "\n";
    for (const auto& row : t.rows) {
      for (std::size_t i = 0; i < row.size(); ++i)
        os << (i ? "," : "") << csv_escape(format_cell(row[i]));
      os << "\n";
    }
  }
  if (!r.metrics.empty()) {
    os << "# table: metrics\nmetric,value\n";
    for (const auto& [k, v] : r.metrics)
      os << csv_escape(k) << "," << format_json_number(v) << "\n";
  }
  return os.str();
}

JsonValue result_to_json(const RunMeta& meta, const HostInfo& host,
                         const ExperimentResult& r) {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", kSchemaVersion);
  doc.set("generator", "sapp_repro");
  doc.set("experiment", meta.experiment);
  doc.set("title", meta.title);
  doc.set("paper_ref", meta.paper_ref);

  JsonValue h = JsonValue::object();
  h.set("os", host.os);
  h.set("arch", host.arch);
  h.set("tag", host.tag());
  h.set("compiler", host.compiler);
  h.set("hardware_threads", host.hardware_threads);
  doc.set("host", std::move(h));

  const EnvironmentInfo envi = EnvironmentInfo::current();
  JsonValue env = JsonValue::object();
  env.set("backend", envi.backend);
  env.set("isa", envi.isa);
  env.set("dispatch", envi.dispatch);
  env.set("topology", envi.topology);
  env.set("combine", envi.combine);
  doc.set("environment", std::move(env));

  JsonValue cfg = JsonValue::object();
  cfg.set("scale", meta.scale);
  cfg.set("threads", meta.threads);
  cfg.set("reps", meta.reps);
  cfg.set("warmup", meta.warmup);
  cfg.set("tiny", meta.tiny);
  doc.set("config", std::move(cfg));

  JsonValue tables = JsonValue::array();
  for (const auto& t : r.tables) {
    JsonValue jt = JsonValue::object();
    jt.set("name", t.name);
    JsonValue cols = JsonValue::array();
    for (const auto& c : t.columns) cols.push_back(c);
    jt.set("columns", std::move(cols));
    JsonValue rows = JsonValue::array();
    for (const auto& row : t.rows) {
      JsonValue jr = JsonValue::array();
      for (const auto& cell : row) jr.push_back(cell);
      rows.push_back(std::move(jr));
    }
    jt.set("rows", std::move(rows));
    tables.push_back(std::move(jt));
  }
  doc.set("tables", std::move(tables));

  JsonValue metrics = JsonValue::object();
  for (const auto& [k, v] : r.metrics) metrics.set(k, v);
  doc.set("metrics", std::move(metrics));

  JsonValue notes = JsonValue::array();
  for (const auto& n : r.notes) notes.push_back(n);
  doc.set("notes", std::move(notes));
  return doc;
}

std::string validate_result_json(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not a JSON object";

  auto require = [&](const char* key, JsonValue::Kind kind,
                     const char* what) -> std::string {
    const JsonValue* v = doc.find(key);
    if (v == nullptr) return std::string("missing key '") + key + "'";
    if (v->kind() != kind)
      return std::string("key '") + key + "' is not " + what;
    return "";
  };

  for (const auto& [key, kind, what] :
       {std::tuple{"schema_version", JsonValue::Kind::kNumber, "a number"},
        std::tuple{"generator", JsonValue::Kind::kString, "a string"},
        std::tuple{"experiment", JsonValue::Kind::kString, "a string"},
        std::tuple{"title", JsonValue::Kind::kString, "a string"},
        std::tuple{"paper_ref", JsonValue::Kind::kString, "a string"},
        std::tuple{"host", JsonValue::Kind::kObject, "an object"},
        std::tuple{"environment", JsonValue::Kind::kObject, "an object"},
        std::tuple{"config", JsonValue::Kind::kObject, "an object"},
        std::tuple{"tables", JsonValue::Kind::kArray, "an array"},
        std::tuple{"metrics", JsonValue::Kind::kObject, "an object"},
        std::tuple{"notes", JsonValue::Kind::kArray, "an array"}}) {
    if (auto err = require(key, kind, what); !err.empty()) return err;
  }

  if (doc.find("schema_version")->as_number() != kSchemaVersion)
    return "unsupported schema_version";

  const JsonValue& host = *doc.find("host");
  for (const char* key : {"os", "arch", "tag", "compiler"}) {
    const JsonValue* v = host.find(key);
    if (v == nullptr || !v->is_string())
      return std::string("host.") + key + " missing or not a string";
  }

  const JsonValue& env = *doc.find("environment");
  for (const char* key :
       {"backend", "isa", "dispatch", "topology", "combine"}) {
    const JsonValue* v = env.find(key);
    if (v == nullptr || !v->is_string())
      return std::string("environment.") + key + " missing or not a string";
  }

  const JsonValue& cfg = *doc.find("config");
  for (const char* key : {"scale", "threads", "reps", "warmup"}) {
    const JsonValue* v = cfg.find(key);
    if (v == nullptr || !v->is_number())
      return std::string("config.") + key + " missing or not a number";
  }
  if (const JsonValue* t = cfg.find("tiny"); t == nullptr || !t->is_bool())
    return "config.tiny missing or not a bool";

  const auto& tables = doc.find("tables")->items();
  if (tables.empty()) return "experiment produced no tables";
  for (const auto& t : tables) {
    if (!t.is_object()) return "table entry is not an object";
    const JsonValue* name = t.find("name");
    if (name == nullptr || !name->is_string())
      return "table.name missing or not a string";
    const JsonValue* cols = t.find("columns");
    if (cols == nullptr || !cols->is_array() || cols->items().empty())
      return "table '" + name->as_string() + "': bad columns";
    for (const auto& c : cols->items())
      if (!c.is_string())
        return "table '" + name->as_string() + "': non-string column";
    const JsonValue* rows = t.find("rows");
    if (rows == nullptr || !rows->is_array())
      return "table '" + name->as_string() + "': bad rows";
    for (const auto& row : rows->items()) {
      if (!row.is_array() || row.items().size() != cols->items().size())
        return "table '" + name->as_string() +
               "': row width differs from column count";
      for (const auto& cell : row.items())
        if (cell.is_array() || cell.is_object())
          return "table '" + name->as_string() + "': non-scalar cell";
    }
  }

  for (const auto& [k, v] : doc.find("metrics")->members())
    if (!v.is_number()) return "metric '" + k + "' is not a number";
  for (const auto& n : doc.find("notes")->items())
    if (!n.is_string()) return "notes must be strings";
  return "";
}

}  // namespace sapp::repro
