// Parallel-substrate overhead experiment:
//   overhead — fork-join dispatch latency and parallel_for throughput of
//              sapp::ThreadPool versus the previous-generation pool design.
//
// Every phase time the repo reproduces (Fig. 3 rankings, the Fig. 6
// Init/Loop/Merge breakdown, Fig. 7 scalability) is measured on top of the
// fork-join substrate, so its per-region cost is a floor under all of them.
// This experiment keeps the old design — mutex+condvar handshake, a
// std::function materialized per region, the caller blocked instead of
// participating — alive as `LegacyCondvarPool` so the comparison is
// measured by the harness on the current host, not claimed in prose.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "repro/registry.hpp"

namespace sapp::repro {

namespace {

/// DEPRECATED measured baseline — latency rows only. The seed repository's
/// ThreadPool, verbatim in behaviour: `nthreads` detached-from-caller
/// workers, one mutex + two condition variables per region, dispatch
/// through `const std::function&` (so every `run(lambda)` call site
/// allocates a std::function), and a caller that blocks idle —
/// oversubscribing the machine by one thread. Per the ROADMAP trim, it is
/// measured only in the `fork_join_latency` table (the throughput sweep
/// converged with the new pool once regions grow memory-bound, so those
/// rows carried no information); do not grow new uses of this class.
class LegacyCondvarPool {
 public:
  explicit LegacyCondvarPool(unsigned nthreads) : nthreads_(nthreads) {
    workers_.reserve(nthreads_);
    for (unsigned t = 0; t < nthreads_; ++t)
      workers_.emplace_back([this, t] { worker_main(t); });
  }

  ~LegacyCondvarPool() {
    {
      std::scoped_lock lk(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] unsigned size() const { return nthreads_; }

  void run(const std::function<void(unsigned)>& f) {
    std::unique_lock lk(mu_);
    job_ = &f;
    remaining_ = nthreads_;
    ++epoch_;
    cv_start_.notify_all();
    cv_done_.wait(lk, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }

  void parallel_for(std::size_t n,
                    const std::function<void(unsigned, Range)>& body) {
    run([&](unsigned tid) {
      const Range r = static_block(n, tid, nthreads_);
      if (!r.empty()) body(tid, r);
    });
  }

 private:
  void worker_main(unsigned tid) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* job;
      {
        std::unique_lock lk(mu_);
        cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        if (stop_ && epoch_ == seen) return;
        seen = epoch_;
        job = job_;
      }
      (*job)(tid);
      {
        std::scoped_lock lk(mu_);
        if (--remaining_ == 0) cv_done_.notify_one();
      }
    }
  }

  unsigned nthreads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
};

/// Median-of-reps nanoseconds per region for `regions` back-to-back empty
/// dispatches on either pool type.
template <typename Pool>
double empty_region_ns(RunContext& ctx, Pool& pool, int regions) {
  const double secs = ctx.measure([&] {
    Timer t;
    for (int k = 0; k < regions; ++k) pool.run([](unsigned) {});
    return t.seconds();
  });
  return secs / regions * 1e9;
}

/// Median-of-reps nanoseconds per parallel_for region of size n (daxpy
/// body: memory-streaming work representative of Init/Merge phases).
template <typename Pool>
double daxpy_region_ns(RunContext& ctx, Pool& pool, std::vector<double>& y,
                       const std::vector<double>& x, std::size_t n,
                       int regions) {
  const double secs = ctx.measure([&] {
    Timer t;
    for (int k = 0; k < regions; ++k)
      pool.parallel_for(n, [&](unsigned, Range rg) {
        for (std::size_t i = rg.begin; i < rg.end; ++i)
          y[i] = y[i] * 0.999999 + x[i];
      });
    return t.seconds();
  });
  return secs / regions * 1e9;
}

// The `overhead` experiment. Latency rows compare empty-region dispatch;
// throughput rows sweep the region size to show where dispatch overhead
// stops mattering; the dynamic table prices chunk self-scheduling.
ExperimentResult run_overhead(RunContext& ctx) {
  ThreadPool& pool = ctx.pool();
  LegacyCondvarPool legacy(ctx.threads());

  ExperimentResult res;

  // --- fork-join latency, empty regions -------------------------------
  const int regions = ctx.tiny() ? 2000 : 50000;
  const double ns_new = empty_region_ns(ctx, pool, regions);
  const double ns_legacy = empty_region_ns(ctx, legacy, regions);
  const double speedup = ns_new > 0.0 ? ns_legacy / ns_new : 0.0;

  ResultTable lat("fork_join_latency",
                  {"Pool", "Threads", "Regions", "ns/region"});
  lat.add_row({"fork-join (this repo)", pool.size(),
               static_cast<double>(regions), round_to(ns_new, 1)});
  lat.add_row({"condvar+std::function (seed)", legacy.size(),
               static_cast<double>(regions), round_to(ns_legacy, 1)});
  res.tables.push_back(std::move(lat));

  // --- parallel_for throughput vs region size -------------------------
  // Current pool only: the legacy baseline is deprecated and kept for the
  // latency rows above (its throughput rows converged with the new pool
  // as regions grow memory-bound — no information, pure maintenance).
  const std::size_t max_n = ctx.tiny() ? (1u << 14) : (1u << 21);
  std::vector<double> y(max_n, 1.0), x(max_n, 0.5);
  ResultTable tp("parallel_for_throughput",
                 {"Elements", "ns/region", "Melem/s"});
  for (std::size_t n = 1u << 10; n <= max_n; n <<= 2) {
    const int r = static_cast<int>(
        std::max<std::size_t>(4, (ctx.tiny() ? 1u << 16 : 1u << 22) / n));
    const double nn = daxpy_region_ns(ctx, pool, y, x, n, r);
    tp.add_row({static_cast<double>(n), round_to(nn, 1),
                round_to(n / nn * 1e3, 1)});
  }
  res.tables.push_back(std::move(tp));

  // --- dynamic self-scheduling: chunk-claim cost ----------------------
  const std::size_t dyn_n = ctx.tiny() ? (1u << 13) : (1u << 17);
  const int dyn_regions = ctx.tiny() ? 20 : 200;
  ResultTable dyn("dynamic_chunk_claim",
                  {"Chunk", "ns/region", "ns/chunk (incl body)"});
  for (const std::size_t chunk : {16u, 256u, 4096u}) {
    const double secs = ctx.measure([&] {
      Timer t;
      for (int k = 0; k < dyn_regions; ++k)
        pool.parallel_for_dynamic(dyn_n, chunk, [&](unsigned, Range rg) {
          for (std::size_t i = rg.begin; i < rg.end; ++i)
            y[i % max_n] = y[i % max_n] * 0.999999 + 1e-9;
        });
      return t.seconds();
    });
    const double per_region = secs / dyn_regions * 1e9;
    const double chunks = static_cast<double>((dyn_n + chunk - 1) / chunk);
    dyn.add_row({static_cast<double>(chunk), round_to(per_region, 1),
                 round_to(per_region / chunks, 2)});
  }
  res.tables.push_back(std::move(dyn));

  res.metric("threads", pool.size());
  res.metric("fork_join_ns_new", round_to(ns_new, 1));
  res.metric("fork_join_ns_legacy", round_to(ns_legacy, 1));
  res.metric("fork_join_speedup", round_to(speedup, 2));
  res.note("fork_join_speedup = legacy ns/region divided by new ns/region "
           "for empty fork-join regions (dispatch latency only); the PR "
           "gate is >= 3x.");
  res.note("The legacy pool is the seed implementation kept verbatim "
           "(mutex+condvar handshake, std::function per region, "
           "non-participating caller) so the comparison is re-measured on "
           "every host rather than claimed from old logs. It is deprecated "
           "and measured in the latency rows only.");
  res.note("parallel_for rows show where dispatch cost is amortized as "
           "the region grows memory-bound (current pool only).");
  return res;
}

}  // namespace

void register_overhead_experiments(ExperimentRegistry& r) {
  r.add({.name = "overhead",
         .title = "fork-join substrate overhead (latency + throughput)",
         .paper_ref = "substrate (ROADMAP)",
         .description =
             "Measure per-region fork-join latency and parallel_for "
             "throughput of the zero-allocation pool against the seed "
             "condvar/std::function design, plus dynamic chunk-claim cost.",
         .default_scale = 1.0,
         .run = run_overhead});
}

}  // namespace sapp::repro
