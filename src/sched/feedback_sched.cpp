#include "sched/feedback_sched.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace sapp {

FeedbackGuided::FeedbackGuided(std::size_t n, unsigned nthreads,
                               double smoothing)
    : n_(n),
      nthreads_(nthreads),
      smoothing_(smoothing),
      bounds_(nthreads + 1, 0),
      cost_(n, 1.0),
      last_times_(nthreads, 0.0),
      have_time_(nthreads, false) {
  SAPP_REQUIRE(n > 0, "loop must have iterations");
  SAPP_REQUIRE(nthreads >= 1, "need at least one thread");
  SAPP_REQUIRE(smoothing > 0.0 && smoothing <= 1.0, "smoothing in (0,1]");
  for (unsigned t = 0; t < nthreads_; ++t)
    bounds_[t] = static_block(n_, t, nthreads_).begin;
  bounds_[nthreads_] = n_;
}

Range FeedbackGuided::block(unsigned tid) const {
  SAPP_REQUIRE(tid < nthreads_, "tid out of range");
  return Range{bounds_[tid], bounds_[tid + 1]};
}

void FeedbackGuided::record(unsigned tid, double seconds) {
  SAPP_REQUIRE(tid < nthreads_, "tid out of range");
  SAPP_REQUIRE(seconds >= 0.0, "time must be non-negative");
  last_times_[tid] = seconds;
  have_time_[tid] = true;
}

void FeedbackGuided::adapt() {
  // 1. Fold the measured block times into the per-iteration cost estimate.
  for (unsigned t = 0; t < nthreads_; ++t) {
    if (!have_time_[t]) continue;
    const Range r{bounds_[t], bounds_[t + 1]};
    if (r.empty()) continue;
    const double per_iter =
        last_times_[t] / static_cast<double>(r.size());
    for (std::size_t i = r.begin; i < r.end; ++i)
      cost_[i] = (1.0 - smoothing_) * cost_[i] + smoothing_ * per_iter;
    have_time_[t] = false;
  }

  // 2. Equal-cost repartition: walk the prefix sum and cut at each
  //    multiple of total/nthreads.
  const double total = std::accumulate(cost_.begin(), cost_.end(), 0.0);
  if (total <= 0.0) return;  // degenerate: keep previous boundaries
  const double share = total / static_cast<double>(nthreads_);

  double acc = 0.0;
  unsigned cut = 1;
  for (std::size_t i = 0; i < n_ && cut < nthreads_; ++i) {
    acc += cost_[i];
    while (cut < nthreads_ &&
           acc >= share * static_cast<double>(cut)) {
      bounds_[cut] = i + 1;
      ++cut;
    }
  }
  // Any cuts not placed (all remaining cost at the tail) collapse to n.
  for (; cut < nthreads_; ++cut) bounds_[cut] = n_;
  bounds_[0] = 0;
  bounds_[nthreads_] = n_;
  // Boundaries must stay monotone even with zero-cost gaps.
  for (unsigned t = 1; t <= nthreads_; ++t)
    bounds_[t] = std::max(bounds_[t], bounds_[t - 1]);
}

double FeedbackGuided::imbalance() const {
  double mx = 0.0, sum = 0.0;
  unsigned counted = 0;
  for (unsigned t = 0; t < nthreads_; ++t) {
    mx = std::max(mx, last_times_[t]);
    sum += last_times_[t];
    ++counted;
  }
  if (counted == 0 || sum <= 0.0) return 0.0;
  return mx / (sum / static_cast<double>(counted));
}

}  // namespace sapp
