// Feedback-guided block scheduling (paper §3, reference [5]).
//
// "Load balancing will be achieved through feedback guided blocked
//  scheduling which allows highly imbalanced loops to be block scheduled by
//  predicting a good work distribution from previous measured execution
//  times of iteration blocks."
//
// The scheduler owns the block boundaries of a loop that is invoked
// repeatedly. After each invocation it converts the measured per-block times
// into a piecewise-constant per-iteration cost estimate and re-partitions
// the iteration space so every thread's predicted time is equal.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.hpp"

namespace sapp {

/// Adaptive block partitioner for a repeatedly invoked loop of `n`
/// iterations executed by `nthreads` threads.
///
/// Protocol per invocation:
///   1. read `block(tid)` for each thread and execute those iterations,
///   2. `record(tid, seconds)` the measured time of each block,
///   3. call `adapt()` once (single-threaded) to move the boundaries.
class FeedbackGuided {
 public:
  /// `smoothing` in [0,1]: weight of the newest cost estimate (1 = use only
  /// the last invocation, smaller values damp oscillation).
  FeedbackGuided(std::size_t n, unsigned nthreads, double smoothing = 0.7);

  [[nodiscard]] std::size_t iterations() const { return n_; }
  [[nodiscard]] unsigned threads() const { return nthreads_; }

  /// Current block of thread `tid`.
  [[nodiscard]] Range block(unsigned tid) const;

  /// Record the wall time thread `tid` spent on its current block.
  void record(unsigned tid, double seconds);

  /// Recompute boundaries from the recorded times. Blocks with no recorded
  /// time keep their previous cost estimate.
  void adapt();

  /// Predicted per-iteration cost (after smoothing); exposed for tests and
  /// for the runtime's performance predictor.
  [[nodiscard]] const std::vector<double>& iteration_cost() const {
    return cost_;
  }

  /// Largest measured block time divided by the mean — 1.0 means perfectly
  /// balanced. Returns 0 before any record().
  [[nodiscard]] double imbalance() const;

 private:
  std::size_t n_;
  unsigned nthreads_;
  double smoothing_;
  std::vector<std::size_t> bounds_;  // nthreads_+1 boundaries
  std::vector<double> cost_;         // per-iteration cost estimate
  std::vector<double> last_times_;   // per-thread measured seconds
  std::vector<bool> have_time_;
};

}  // namespace sapp
