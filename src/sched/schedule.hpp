// Loop-scheduling policies.
//
// The SmartApps runtime picks among these for each parallel loop; the
// feedback-guided policy (feedback_sched.hpp) handles persistent imbalance.
#pragma once

#include <cstddef>
#include <string_view>

#include "common/thread_pool.hpp"

namespace sapp {

/// Scheduling policy for a parallel loop.
enum class Schedule {
  kStaticBlock,   ///< one contiguous block per thread
  kStaticCyclic,  ///< round-robin chunks of fixed size
  kDynamic,       ///< self-scheduling from a shared counter
  kFeedback,      ///< feedback-guided block boundaries (see FeedbackGuided)
};

[[nodiscard]] constexpr std::string_view to_string(Schedule s) {
  switch (s) {
    case Schedule::kStaticBlock: return "static";
    case Schedule::kStaticCyclic: return "cyclic";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kFeedback: return "feedback";
  }
  return "?";
}

/// Number of chunks a cyclic schedule of `chunk` iterations produces.
[[nodiscard]] constexpr std::size_t cyclic_chunks(std::size_t n,
                                                  std::size_t chunk) {
  return (n + chunk - 1) / chunk;
}

}  // namespace sapp
