// The reduction access pattern — the common IR of the repository.
//
// Both of the paper's techniques act on the *memory reference pattern* of a
// reduction loop `for i: w[x[i][k]] += e(i,k)`. `AccessPattern` captures that
// pattern as a CSR of iteration → referenced elements. It feeds
//   (a) the software schemes (src/reductions),
//   (b) the pattern characterizer and decision model (src/core), and
//   (c) the simulator's Sw/Hw/Flex trace generators (src/sim).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/csr.hpp"

namespace sapp {

/// Reference pattern of one reduction loop.
struct AccessPattern {
  /// Stable identity of the loop site this pattern belongs to (e.g.
  /// "Moldyn/ComputeForces"). The multi-site runtime keys its site table
  /// and persistent decision cache on this; empty means anonymous.
  /// Workload generators tag it with "<App>/<loop>".
  std::string loop_id;

  /// Dimension of the reduction array `w` (number of elements).
  std::size_t dim = 0;

  /// refs.row(i) = element indices updated by iteration i (may repeat).
  Csr refs;

  /// Extra floating-point work per iteration emulating the non-reduction
  /// body of the loop (Table 2 reports 118–1880 instructions/iteration).
  /// The body computes a deterministic per-iteration scale factor; see
  /// `iteration_scale`.
  unsigned body_flops = 0;

  /// Whether iteration replication is legal, i.e. the loop body has no side
  /// effects besides the reduction updates. Local-write requires this
  /// (paper: "no experiments with the Local Write method because iteration
  /// replication is very difficult due to the modification of shared arrays
  /// inside the loop body").
  bool iteration_replication_legal = true;

  [[nodiscard]] std::size_t iterations() const { return refs.rows(); }
  [[nodiscard]] std::size_t num_refs() const { return refs.nnz(); }
};

/// A pattern plus per-reference contribution values: reference j (in CSR
/// order) contributes `values[j] * iteration_scale(i, body_flops)` to
/// element refs.indices()[j].
struct ReductionInput {
  AccessPattern pattern;
  std::vector<double> values;  // size == pattern.num_refs()

  [[nodiscard]] bool consistent() const {
    return values.size() == pattern.num_refs();
  }
};

/// Deterministic stand-in for the loop body's non-reduction computation:
/// a dependent chain of `flops` multiply-adds seeded by the iteration
/// index. Every scheme must call this exactly as the sequential code does
/// so results are bit-comparable up to reassociation of the reduction
/// itself. Returns a scale factor in roughly [0.5, 2).
inline double iteration_scale(std::uint64_t iter, unsigned flops) {
  double x = 1.0 + static_cast<double>(iter % 1024) * 0x1p-11;
  for (unsigned k = 0; k < flops; ++k) {
    x = x * 0.9999694824218750 + 0x1p-13;  // contraction keeps x bounded
  }
  return x;
}

/// Reference sequential execution: the ground truth every parallel scheme
/// must reproduce (up to floating-point reassociation). Accumulates into
/// `out` (size pattern.dim) in iteration order.
void run_sequential(const ReductionInput& in, std::span<double> out);

/// Number of *distinct* elements referenced by the whole pattern.
std::size_t count_distinct(const AccessPattern& p);

/// Per-iteration distinct-element count summed over iterations (used for
/// the Mobility measure; repeats within one iteration count once).
std::size_t sum_iteration_distinct(const AccessPattern& p);

}  // namespace sapp
