// "sel" — selective privatization (§4).
//
// An inspector pass classifies each referenced element as *exclusive*
// (referenced by exactly one thread under the block schedule) or *shared*
// (referenced by two or more). Only the shared elements are privatized,
// into compact per-thread buffers with a slot map; exclusive elements are
// written straight into the shared array with no synchronization. Init and
// merge cost scale with the number of shared elements only.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/compiler.hpp"
#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class SelectiveScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::kSelective;
  }

  struct Plan final : SchemePlan {
    std::vector<std::int32_t> slot;          // element -> compact slot or -1
    std::vector<std::uint32_t> shared_elems; // slot -> element
    mutable std::vector<std::vector<double>> priv;  // [thread][slot]
    unsigned nthreads = 0;
  };

  /// Inspector: one sweep over the references under the same static block
  /// schedule the loop phase will use.
  [[nodiscard]] std::unique_ptr<SchemePlan> plan(
      const AccessPattern& p, unsigned nthreads) const override {
    auto pl = std::make_unique<Plan>();
    pl->nthreads = nthreads;
    constexpr std::uint8_t kNone = 0xFF;
    constexpr std::uint8_t kShared = 0xFE;
    SAPP_REQUIRE(nthreads < kShared, "thread count too large for inspector");
    std::vector<std::uint8_t> cls(p.dim, kNone);
    const auto& ptr = p.refs.row_ptr();
    const auto& idx = p.refs.indices();
    const std::size_t n = p.refs.rows();
    for (unsigned t = 0; t < nthreads; ++t) {
      const Range rg = static_block(n, t, nthreads);
      for (std::size_t i = rg.begin; i < rg.end; ++i)
        for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
          auto& c = cls[idx[j]];
          if (c == kNone)
            c = static_cast<std::uint8_t>(t);
          else if (c != t && c != kShared)
            c = kShared;
        }
    }
    pl->slot.assign(p.dim, -1);
    for (std::size_t e = 0; e < p.dim; ++e)
      if (cls[e] == kShared) {
        pl->slot[e] = static_cast<std::int32_t>(pl->shared_elems.size());
        pl->shared_elems.push_back(static_cast<std::uint32_t>(e));
      }
    pl->priv.assign(nthreads,
                    std::vector<double>(pl->shared_elems.size()));
    return pl;
  }

  SchemeResult execute(const SchemePlan* plan_base, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    const auto* pl = dynamic_cast<const Plan*>(plan_base);
    SAPP_REQUIRE(pl != nullptr && pl->nthreads == pool.size(),
                 "sel: plan missing or built for a different thread count");
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;
    const unsigned P = pool.size();
    const std::size_t nshared = pl->shared_elems.size();

    SchemeResult r;
    r.private_bytes = static_cast<std::size_t>(P) * nshared * sizeof(double) +
                      pl->slot.size() * sizeof(std::int32_t);

    Timer t;
    pool.run([&](unsigned tid) {
      auto& mine = pl->priv[tid];
      fill_neutral<Op>(mine.data(), mine.size());  // memset when neutral==+0.0
    });
    r.phases.init_s = t.seconds();

    t.restart();
    pool.parallel_for(in.pattern.iterations(), [&](unsigned tid, Range rg) {
      double* SAPP_RESTRICT mine = pl->priv[tid].data();
      const std::int32_t* SAPP_RESTRICT slot = pl->slot.data();
      const std::uint64_t* SAPP_RESTRICT rp = ptr.data();
      const std::uint32_t* SAPP_RESTRICT ix = idx.data();
      const double* SAPP_RESTRICT v = vals;
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const double s = iteration_scale(i, flops);
        for (std::uint64_t j = rp[i]; j < rp[i + 1]; ++j) {
          const std::uint32_t e = ix[j];
          const std::int32_t sl = slot[e];
          const double contrib = v[j] * s;
          if (sl >= 0)
            mine[sl] = Op::apply(mine[sl], contrib);
          else  // exclusive to this thread under the block schedule
            out[e] = Op::apply(out[e], contrib);
        }
      }
    });
    r.phases.loop_s = t.seconds();

    // Merge: gather a tile of shared elements into a stack buffer once,
    // stream each thread's compact private row through the tile with unit
    // stride, then scatter back. Copies combine in ascending thread order
    // per slot — bitwise identical to the per-slot fold, but the per-copy
    // inner loop is contiguous and vectorizable.
    t.restart();
    pool.parallel_for(nshared, [&](unsigned, Range rg) {
      constexpr std::size_t kTile = 1024;  // 8 KiB stack buffer
      double acc[kTile];
      const std::uint32_t* SAPP_RESTRICT se = pl->shared_elems.data();
      for (std::size_t t0 = rg.begin; t0 < rg.end; t0 += kTile) {
        const std::size_t len =
            (rg.end - t0 < kTile) ? rg.end - t0 : kTile;
        for (std::size_t k = 0; k < len; ++k) acc[k] = out[se[t0 + k]];
        for (unsigned q = 0; q < P; ++q) {
          const double* SAPP_RESTRICT src = pl->priv[q].data() + t0;
          for (std::size_t k = 0; k < len; ++k)
            acc[k] = Op::apply(acc[k], src[k]);
        }
        for (std::size_t k = 0; k < len; ++k) out[se[t0 + k]] = acc[k];
      }
    });
    r.phases.merge_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
