// "sel" — selective privatization (§4).
//
// An inspector pass classifies each referenced element as *exclusive*
// (referenced by exactly one thread under the block schedule) or *shared*
// (referenced by two or more). Only the shared elements are privatized,
// into compact per-thread buffers with a slot map; exclusive elements are
// written straight into the shared array with no synchronization. Init and
// merge cost scale with the number of shared elements only.
//
// The compact private rows are 64-byte-aligned uninitialized storage
// (common/aligned.hpp) first-touched by their owning worker, and the Init
// fill plus the merge's contiguous row folds run on the active kernel
// backend (reductions/kernels.hpp). The merge honours the topology-aware
// combine schedule: grouped hosts pre-fold each group's rows into the
// group leader's row before the final gather/fold/scatter over `out`.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/compiler.hpp"
#include "common/topology.hpp"
#include "reductions/kernels.hpp"
#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class SelectiveScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::kSelective;
  }

  struct Plan final : SchemePlan {
    std::vector<std::int32_t> slot;          // element -> compact slot or -1
    std::vector<std::uint32_t> shared_elems; // slot -> element
    mutable std::vector<AlignedBuffer<double>> priv;  // [thread][slot]
    unsigned nthreads = 0;
  };

  /// Inspector: one sweep over the references under the same static block
  /// schedule the loop phase will use.
  [[nodiscard]] std::unique_ptr<SchemePlan> plan(
      const AccessPattern& p, unsigned nthreads) const override {
    auto pl = std::make_unique<Plan>();
    pl->nthreads = nthreads;
    constexpr std::uint8_t kNone = 0xFF;
    constexpr std::uint8_t kShared = 0xFE;
    SAPP_REQUIRE(nthreads < kShared, "thread count too large for inspector");
    std::vector<std::uint8_t> cls(p.dim, kNone);
    const auto& ptr = p.refs.row_ptr();
    const auto& idx = p.refs.indices();
    const std::size_t n = p.refs.rows();
    for (unsigned t = 0; t < nthreads; ++t) {
      const Range rg = static_block(n, t, nthreads);
      for (std::size_t i = rg.begin; i < rg.end; ++i)
        for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
          auto& c = cls[idx[j]];
          if (c == kNone)
            c = static_cast<std::uint8_t>(t);
          else if (c != t && c != kShared)
            c = kShared;
        }
    }
    pl->slot.assign(p.dim, -1);
    for (std::size_t e = 0; e < p.dim; ++e)
      if (cls[e] == kShared) {
        pl->slot[e] = static_cast<std::int32_t>(pl->shared_elems.size());
        pl->shared_elems.push_back(static_cast<std::uint32_t>(e));
      }
    pl->priv.resize(nthreads);
    for (auto& v : pl->priv) v.reset(pl->shared_elems.size());
    return pl;
  }

  SchemeResult execute(const SchemePlan* plan_base, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    const auto* pl = dynamic_cast<const Plan*>(plan_base);
    SAPP_REQUIRE(pl != nullptr && pl->nthreads == pool.size(),
                 "sel: plan missing or built for a different thread count");
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;
    const unsigned P = pool.size();
    const std::size_t nshared = pl->shared_elems.size();

    const kernels::KernelOps& K = kernels::active();
    const kernels::MergeFn merge = kernels::merge_fn<Op>(K);
    const auto fold = [&](double* SAPP_RESTRICT acc,
                          const double* SAPP_RESTRICT src, std::size_t len) {
      if (merge != nullptr) {
        merge(acc, src, len);
      } else {
        for (std::size_t k = 0; k < len; ++k)
          acc[k] = Op::apply(acc[k], src[k]);
      }
    };

    SchemeResult r;
    r.private_bytes = static_cast<std::size_t>(P) * nshared * sizeof(double) +
                      pl->slot.size() * sizeof(std::int32_t);

    Timer t;
    pool.run([&](unsigned tid) {
      auto& mine = pl->priv[tid];
      if (mine.empty()) return;
      SAPP_ASSERT_ALIGNED(mine.data());
      kernels::fill_neutral<Op>(K, mine.data(), mine.size());
    });
    r.phases.init_s = t.seconds();

    t.restart();
    pool.parallel_for(in.pattern.iterations(), [&](unsigned tid, Range rg) {
      double* SAPP_RESTRICT mine = pl->priv[tid].data();
      const std::int32_t* SAPP_RESTRICT slot = pl->slot.data();
      const std::uint64_t* SAPP_RESTRICT rp = ptr.data();
      const std::uint32_t* SAPP_RESTRICT ix = idx.data();
      const double* SAPP_RESTRICT v = vals;
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const double s = iteration_scale(i, flops);
        for (std::uint64_t j = rp[i]; j < rp[i + 1]; ++j) {
          const std::uint32_t e = ix[j];
          const std::int32_t sl = slot[e];
          const double contrib = v[j] * s;
          if (sl >= 0)
            mine[sl] = Op::apply(mine[sl], contrib);
          else  // exclusive to this thread under the block schedule
            out[e] = Op::apply(out[e], contrib);
        }
      }
    });
    r.phases.loop_s = t.seconds();

    // Merge: gather a tile of shared elements into a stack buffer once,
    // stream each private row through the tile with unit stride (the
    // backend merge kernel), then scatter back. With a grouped schedule
    // each group's rows pre-fold into the group leader's row first; the
    // final pass then streams one row per group. Per slot the combine
    // order stays deterministic: ascending thread order within a group,
    // ascending group order across groups (flat == historical order).
    t.restart();
    const CombineSchedule sched = CombineSchedule::for_workers(P);
    constexpr std::size_t kTile = 1024;  // 8 KiB stack buffer
    if (!sched.flat()) {
      pool.run([&](unsigned tid) {
        const Range g = sched.group_of(tid);
        const auto gsz = static_cast<unsigned>(g.size());
        if (gsz <= 1) return;
        const Range slice =
            static_block(nshared, tid - static_cast<unsigned>(g.begin), gsz);
        if (slice.empty()) return;
        double* leader = pl->priv[g.begin].data() + slice.begin;
        for (std::size_t q = g.begin + 1; q < g.end; ++q)
          fold(leader, pl->priv[q].data() + slice.begin, slice.size());
      });
    }
    pool.parallel_for(nshared, [&](unsigned, Range rg) {
      double acc[kTile];
      const std::uint32_t* SAPP_RESTRICT se = pl->shared_elems.data();
      for (std::size_t t0 = rg.begin; t0 < rg.end; t0 += kTile) {
        const std::size_t len =
            (rg.end - t0 < kTile) ? rg.end - t0 : kTile;
        for (std::size_t k = 0; k < len; ++k) acc[k] = out[se[t0 + k]];
        if (sched.flat()) {
          for (unsigned q = 0; q < P; ++q)
            fold(acc, pl->priv[q].data() + t0, len);
        } else {
          for (const Range& g : sched.groups)
            fold(acc, pl->priv[g.begin].data() + t0, len);
        }
        for (std::size_t k = 0; k < len; ++k) out[se[t0 + k]] = acc[k];
      }
    });
    r.phases.merge_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
