// Execution-backend abstraction for the scheme hot kernels.
//
// The privatizing schemes spend their Init and Merge phases in two dense
// primitives: broadcast-filling a private buffer with the operator's
// neutral element, and folding one contiguous buffer into another
// (`acc[i] = op(acc[i], src[i])`). Both are data-parallel with no
// reassociation freedom per element, so they can be vectorized without
// changing a single result bit — the per-element sequence of operator
// applications is identical whether elements advance one at a time or
// eight per instruction.
//
// A `KernelOps` table bundles one implementation of these primitives.
// Three backends are compiled on x86-64 (scalar, AVX2, AVX-512); runtime
// dispatch picks the widest one the CPU supports at first use, and
// `SAPP_BACKEND` (or `set_backend`, the test/ablation hook) overrides it.
// The table is deliberately tiny and layout-free — a hierarchical GPU
// backend (PAPERS.md: "A Fast and Generic GPU-Based Parallel Reduction
// Implementation", arXiv:1710.07358) slots in by providing the same
// entry points plus its own combine tree; see docs/backends.md.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>

#include "reductions/reduction_op.hpp"

namespace sapp::kernels {

/// Identity of one compiled backend, widest last (dispatch preference
/// order is the reverse of this enum).
enum class Backend { kScalar, kAvx2, kAvx512 };

[[nodiscard]] constexpr const char* to_string(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
  }
  return "?";
}

/// dst[i] = value for i in [0, n).
using FillFn = void (*)(double* dst, std::size_t n, double value);
/// acc[i] = op(acc[i], src[i]) for i in [0, n); acc and src must not alias.
using MergeFn = void (*)(double* acc, const double* src, std::size_t n);

/// One backend's kernel table. All functions accept any alignment (the
/// vector paths use unaligned loads, which cost nothing when the buffers
/// come from common/aligned.hpp), and n == 0.
struct KernelOps {
  Backend backend = Backend::kScalar;
  const char* name = "scalar";  ///< SAPP_BACKEND spelling
  const char* isa = "portable";  ///< human ISA description for metadata
  FillFn fill = nullptr;
  MergeFn merge_sum = nullptr;
  MergeFn merge_prod = nullptr;
  MergeFn merge_min = nullptr;
  MergeFn merge_max = nullptr;
};

/// The portable backend (always compiled). On x86 its loops carry a
/// no-autovectorize attribute so "scalar" genuinely means one element per
/// instruction — it is the ablation baseline, not the production path,
/// there. Elsewhere the compiler may still auto-vectorize it (it is the
/// production path and should be as fast as the toolchain allows).
[[nodiscard]] const KernelOps& scalar_ops();

/// True when this build contains code for `b` (scalar always; AVX paths
/// on x86-64 GCC/Clang builds only).
[[nodiscard]] bool compiled(Backend b);
/// True when the running CPU can execute `b`.
[[nodiscard]] bool cpu_supports(Backend b);
/// Backends that are both compiled and executable on this host, in
/// ascending width order (scalar first).
[[nodiscard]] std::span<const Backend> usable_backends();
/// Widest usable backend — what dispatch picks absent an override.
[[nodiscard]] Backend detect_best();

/// The active backend's kernel table. First use resolves `SAPP_BACKEND`
/// (scalar | avx2 | avx512; unusable or unknown values abort with a
/// message listing the usable ones) and falls back to detect_best().
[[nodiscard]] const KernelOps& active();
[[nodiscard]] inline Backend active_backend() { return active().backend; }

/// Force the active backend (test / ablation hook; not thread-safe with
/// concurrent scheme execution). Returns false and leaves the selection
/// unchanged when `b` is not usable on this host.
bool set_backend(Backend b);

/// Parse a SAPP_BACKEND spelling. Returns true and sets `out` on success.
[[nodiscard]] bool parse_backend(std::string_view name, Backend& out);

/// One-line description of the dispatch decision for result metadata,
/// e.g. "avx512 (detected: avx512, compiled: scalar,avx2,avx512)".
[[nodiscard]] std::string dispatch_summary();

/// The backend merge kernel for a reduction operator, or nullptr when the
/// operator has no kernel (exotic ops fall back to the schemes' generic
/// Op::apply loops).
template <typename Op>
[[nodiscard]] inline MergeFn merge_fn(const KernelOps& k) {
  if constexpr (std::is_same_v<Op, SumOp<double>>) return k.merge_sum;
  else if constexpr (std::is_same_v<Op, ProdOp<double>>) return k.merge_prod;
  else if constexpr (std::is_same_v<Op, MinOp<double>>) return k.merge_min;
  else if constexpr (std::is_same_v<Op, MaxOp<double>>) return k.merge_max;
  else return nullptr;
}

/// Backend-accelerated neutral fill — the software analogue of the PCLR
/// hardware's "line of neutral elements" (same contract as the scalar
/// fill_neutral in reduction_op.hpp).
template <typename Op>
  requires ReductionOp<Op, double>
inline void fill_neutral(const KernelOps& k, double* p, std::size_t n) {
  if (n == 0) return;
  k.fill(p, n, Op::neutral());
}

}  // namespace sapp::kernels
