// "lw" — local write, an owner-computes method (§4, after Han & Tseng).
//
// The reduction array is block-partitioned across threads; every thread
// executes (a replica of) each iteration that touches its partition but
// writes only the elements it owns. There is no private storage, no init
// and no merge — the cost is iteration replication: an iteration whose
// references span k partitions is executed k times. Requires the loop body
// to be side-effect free apart from the reduction updates
// (`AccessPattern::iteration_replication_legal`).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/compiler.hpp"
#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class LocalWriteScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::kLocalWrite;
  }

  [[nodiscard]] bool applicable(const AccessPattern& p) const override {
    return p.iteration_replication_legal;
  }

  struct Plan final : SchemePlan {
    // Per-thread iteration lists on their own cache lines: each list is
    // streamed read-only by exactly one worker during the loop phase.
    std::vector<CacheAlignedVector<std::uint32_t>> iters;
    std::size_t replicated_executions = 0;  // Σ_t |iters[t]|
    unsigned nthreads = 0;
  };

  /// Owner of element e under a block partition of [0, dim).
  [[nodiscard]] static unsigned owner_of(std::size_t e, std::size_t dim,
                                         unsigned nthreads) {
    const std::size_t blk = (dim + nthreads - 1) / nthreads;
    const auto t = static_cast<unsigned>(e / blk);
    return t < nthreads ? t : nthreads - 1;
  }

  [[nodiscard]] std::unique_ptr<SchemePlan> plan(
      const AccessPattern& p, unsigned nthreads) const override {
    auto pl = std::make_unique<Plan>();
    pl->nthreads = nthreads;
    pl->iters.resize(nthreads);
    const auto& ptr = p.refs.row_ptr();
    const auto& idx = p.refs.indices();
    std::vector<std::uint64_t> last_seen(nthreads, ~std::uint64_t{0});
    for (std::size_t i = 0; i < p.refs.rows(); ++i) {
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        const unsigned t = owner_of(idx[j], p.dim, nthreads);
        if (last_seen[t] != i) {  // first ref of iteration i into partition t
          last_seen[t] = i;
          pl->iters[t].push_back(static_cast<std::uint32_t>(i));
        }
      }
    }
    for (const auto& v : pl->iters) pl->replicated_executions += v.size();
    return pl;
  }

  SchemeResult execute(const SchemePlan* plan_base, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    SAPP_REQUIRE(applicable(in.pattern),
                 "lw: iteration replication not legal for this loop");
    const auto* pl = dynamic_cast<const Plan*>(plan_base);
    SAPP_REQUIRE(pl != nullptr && pl->nthreads == pool.size(),
                 "lw: plan missing or built for a different thread count");
    const std::size_t dim = in.pattern.dim;
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;
    const unsigned P = pool.size();
    const std::size_t blk = (dim + P - 1) / P;

    SchemeResult r;
    for (const auto& v : pl->iters)
      r.private_bytes += v.size() * sizeof(std::uint32_t);

    Timer t;
    pool.run([&](unsigned tid) {
      const std::size_t lo = static_cast<std::size_t>(tid) * blk;
      const std::size_t hi = lo + blk < dim ? lo + blk : dim;
      const std::size_t len = hi > lo ? hi - lo : 0;
      const std::uint32_t* SAPP_RESTRICT my_iters = pl->iters[tid].data();
      const std::size_t my_count = pl->iters[tid].size();
      const std::uint64_t* SAPP_RESTRICT rp = ptr.data();
      const std::uint32_t* SAPP_RESTRICT ix = idx.data();
      const double* SAPP_RESTRICT v = vals;
      double* SAPP_RESTRICT o = out.data();
      for (std::size_t q = 0; q < my_count; ++q) {
        const std::uint32_t i = my_iters[q];
        const double s = iteration_scale(i, flops);  // replicated body work
        for (std::uint64_t j = rp[i]; j < rp[i + 1]; ++j) {
          const std::uint32_t e = ix[j];
          // Single-compare ownership test: e in [lo, hi) iff e-lo < len.
          if (e - lo < len) o[e] = Op::apply(o[e], v[j] * s);
        }
      }
    });
    r.phases.loop_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
