#include "reductions/scheme.hpp"

#include "common/assert.hpp"

namespace sapp {

SchemeResult Scheme::run(const ReductionInput& in, ThreadPool& pool,
                         std::span<double> out) const {
  SAPP_REQUIRE(in.consistent(), "values/pattern size mismatch");
  SAPP_REQUIRE(out.size() == in.pattern.dim, "output size mismatch");
  Timer t;
  const auto pl = plan(in.pattern, pool.size());
  const double inspect = t.seconds();
  SchemeResult r = execute(pl.get(), in, pool, out);
  r.inspect_s = inspect;
  return r;
}

}  // namespace sapp
