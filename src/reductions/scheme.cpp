#include "reductions/scheme.hpp"

#include "common/assert.hpp"

namespace sapp {

SchemeResult Scheme::run(const ReductionInput& in, ThreadPool& pool,
                         std::span<double> out) const {
  SAPP_REQUIRE(in.consistent(), "values/pattern size mismatch");
  SAPP_REQUIRE(out.size() == in.pattern.dim, "output size mismatch");
  Timer t;
  const auto pl = plan(in.pattern, pool.size());
  const double inspect = t.seconds();
  SchemeResult r = execute(pl.get(), in, pool, out);
  r.inspect_s = inspect;
  return r;
}

SchemeResult Scheme::execute_checked(const SchemePlan* plan,
                                     const ReductionInput& in,
                                     ThreadPool& pool, std::span<double> out,
                                     const CheckerOptions& check,
                                     CheckReport* report,
                                     FaultInjector* injector, FaultSite site,
                                     CheckOp op) const {
  SAPP_REQUIRE(report != nullptr, "execute_checked needs a report sink");
  // One checker per thread, reused across invocations: its buffers are
  // sized by the largest dim seen, and reusing them avoids re-faulting
  // megabytes of accumulator pages on every checked execution (the single
  // largest checking cost on bandwidth-bound hosts). begin() re-reads the
  // options, so per-call rates/seeds/ops behave as if freshly constructed.
  static thread_local ReductionChecker checker{CheckerOptions{}};
  checker.configure(check, op);
  checker.begin(in, out, &pool);
  SchemeResult r = execute(plan, in, pool, out);
  if (injector != nullptr) injector->corrupt_one(site, out);
  *report = checker.verify(out);
  r.check_s = report->check_s;
  return r;
}

}  // namespace sapp
