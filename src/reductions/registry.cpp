#include "reductions/registry.hpp"

#include <array>
#include <stdexcept>
#include <string>

#include "reductions/scheme_atomic.hpp"
#include "reductions/scheme_critical.hpp"
#include "reductions/scheme_hash.hpp"
#include "reductions/scheme_ll.hpp"
#include "reductions/scheme_lw.hpp"
#include "reductions/scheme_rep.hpp"
#include "reductions/scheme_sel.hpp"
#include "reductions/scheme_seq.hpp"

namespace sapp {

std::unique_ptr<Scheme> make_scheme(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSeq: return std::make_unique<SeqScheme>();
    case SchemeKind::kAtomic: return std::make_unique<AtomicScheme<>>();
    case SchemeKind::kCritical: return std::make_unique<CriticalScheme<>>();
    case SchemeKind::kRep: return std::make_unique<RepScheme<>>();
    case SchemeKind::kLocalWrite: return std::make_unique<LocalWriteScheme<>>();
    case SchemeKind::kLinked: return std::make_unique<LinkedScheme<>>();
    case SchemeKind::kSelective: return std::make_unique<SelectiveScheme<>>();
    case SchemeKind::kHash: return std::make_unique<HashScheme<>>();
  }
  throw std::invalid_argument("unknown scheme kind");
}

std::span<const SchemeKind> all_scheme_kinds() {
  static constexpr std::array kinds{
      SchemeKind::kSeq,       SchemeKind::kAtomic,   SchemeKind::kCritical,
      SchemeKind::kRep,       SchemeKind::kLocalWrite, SchemeKind::kLinked,
      SchemeKind::kSelective, SchemeKind::kHash,
  };
  return kinds;
}

std::span<const SchemeKind> candidate_scheme_kinds() {
  static constexpr std::array kinds{
      SchemeKind::kRep,       SchemeKind::kLocalWrite, SchemeKind::kLinked,
      SchemeKind::kSelective, SchemeKind::kHash,
  };
  return kinds;
}

SchemeKind scheme_kind_from_name(std::string_view name) {
  for (SchemeKind k : all_scheme_kinds())
    if (to_string(k) == name) return k;
  throw std::invalid_argument("unknown scheme name: " + std::string(name));
}

}  // namespace sapp
