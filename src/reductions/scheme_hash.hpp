// "hash" — sparse reductions with privatization in hash tables (§4).
//
// Each thread accumulates into a private open-addressing hash table keyed by
// element index. Private space, init and merge all scale with the number of
// elements the thread actually touches — for very sparse patterns (the
// paper's Spice, SP « 1) this shrinks the working set so much that it wins
// despite the per-access probe cost.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/compiler.hpp"
#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class HashScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override { return SchemeKind::kHash; }

  /// Per-thread linear-probing table. Grows by doubling at 70% load.
  /// Storage is cache-line-aligned and allocated lazily on the first Init
  /// by the owning worker, so the pages land on that worker's node.
  struct Table {
    CacheAlignedVector<std::uint32_t> key;
    CacheAlignedVector<double> val;
    std::size_t mask = 0;
    std::size_t used = 0;

    static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

    void reset(std::size_t capacity) {
      const std::size_t cap = std::bit_ceil(capacity < 16 ? 16 : capacity);
      key.assign(cap, kEmpty);
      val.assign(cap, Op::neutral());
      mask = cap - 1;
      used = 0;
    }

    static std::size_t hash(std::uint32_t k) {
      std::uint64_t z = (static_cast<std::uint64_t>(k) + 1) *
                        0x9E3779B97F4A7C15ull;
      return static_cast<std::size_t>(z >> 32);
    }

    void accumulate(std::uint32_t k, double v) {
      std::size_t h = hash(k) & mask;
      for (;;) {
        if (key[h] == k) {
          val[h] = Op::apply(val[h], v);
          return;
        }
        if (key[h] == kEmpty) {
          key[h] = k;
          val[h] = Op::apply(Op::neutral(), v);
          if (++used * 10 > (mask + 1) * 7) grow();
          return;
        }
        h = (h + 1) & mask;
      }
    }

    void grow() {
      CacheAlignedVector<std::uint32_t> ok = std::move(key);
      CacheAlignedVector<double> ov = std::move(val);
      key.assign((mask + 1) * 2, kEmpty);
      val.assign((mask + 1) * 2, Op::neutral());
      mask = key.size() - 1;
      for (std::size_t i = 0; i < ok.size(); ++i) {
        if (ok[i] == kEmpty) continue;
        std::size_t h = hash(ok[i]) & mask;
        while (key[h] != kEmpty) h = (h + 1) & mask;
        key[h] = ok[i];
        val[h] = ov[i];
      }
    }

    [[nodiscard]] std::size_t capacity_bytes() const {
      return key.size() * (sizeof(std::uint32_t) + sizeof(double));
    }
  };

  struct Plan final : SchemePlan {
    mutable std::vector<Table> tables;
    std::size_t per_thread_refs = 0;
    std::size_t initial_capacity = 0;
    unsigned nthreads = 0;
  };

  [[nodiscard]] std::unique_ptr<SchemePlan> plan(
      const AccessPattern& p, unsigned nthreads) const override {
    auto pl = std::make_unique<Plan>();
    pl->nthreads = nthreads;
    pl->tables.resize(nthreads);
    // Size for the worst case of all-distinct refs per thread, capped by the
    // array dimension; the table grows if the estimate is beaten. The tables
    // themselves are allocated on first Init by their owning workers
    // (first-touch placement), not here.
    pl->per_thread_refs = p.num_refs() / nthreads + 1;
    pl->initial_capacity =
        2 * (pl->per_thread_refs < p.dim ? pl->per_thread_refs : p.dim);
    return pl;
  }

  SchemeResult execute(const SchemePlan* plan_base, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    const auto* pl = dynamic_cast<const Plan*>(plan_base);
    SAPP_REQUIRE(pl != nullptr && pl->nthreads == pool.size(),
                 "hash: plan missing or built for a different thread count");
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;

    SchemeResult r;

    Timer t;
    pool.run([&](unsigned tid) {
      auto& tb = pl->tables[tid];
      if (tb.key.empty()) {  // first invocation: owner allocates + touches
        tb.reset(pl->initial_capacity);
      } else {
        // Keep the grown capacity across invocations; just clear contents.
        std::fill(tb.key.begin(), tb.key.end(), Table::kEmpty);
        tb.used = 0;
      }
      SAPP_ASSERT_ALIGNED(tb.val.data());
    });
    r.phases.init_s = t.seconds();

    t.restart();
    pool.parallel_for(in.pattern.iterations(), [&](unsigned tid, Range rg) {
      auto& tb = pl->tables[tid];
      const std::uint64_t* SAPP_RESTRICT rp = ptr.data();
      const std::uint32_t* SAPP_RESTRICT ix = idx.data();
      const double* SAPP_RESTRICT v = vals;
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const double s = iteration_scale(i, flops);
        for (std::uint64_t j = rp[i]; j < rp[i + 1]; ++j)
          tb.accumulate(ix[j], v[j] * s);
      }
    });
    r.phases.loop_s = t.seconds();

    // Merge: each worker owns a block of the element space and scans every
    // thread's table in ascending thread order, folding in only the owned
    // keys — no atomics, and the per-element combine order is fixed, so the
    // result is deterministic. The P-fold scan amplification is cheap:
    // tables scale with the touched set, which is small whenever hash is
    // the right scheme.
    t.restart();
    const unsigned P = pool.size();
    pool.run([&](unsigned tid) {
      const Range own = static_block(in.pattern.dim, tid, P);
      for (unsigned q = 0; q < P; ++q) {
        const auto& tb = pl->tables[q];
        const std::uint32_t* SAPP_RESTRICT key = tb.key.data();
        const double* SAPP_RESTRICT val = tb.val.data();
        const std::size_t cap = tb.key.size();
        for (std::size_t h = 0; h < cap; ++h) {
          const std::uint32_t k = key[h];
          if (k != Table::kEmpty && k - own.begin < own.size())
            out[k] = Op::apply(out[k], val[h]);
        }
      }
    });
    r.phases.merge_s = t.seconds();

    for (const auto& tb : pl->tables) r.private_bytes += tb.capacity_bytes();
    return r;
  }
};

}  // namespace sapp
