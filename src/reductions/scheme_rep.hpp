// "rep" — private accumulation and global update in replicated private
// arrays (§4).
//
// Each thread owns a full private copy of the reduction array. Phases:
//   Init : fill every private copy with the neutral element,
//   Loop : accumulate locally, no synchronization,
//   Merge: fold the P partial copies into `w`.
// This is also exactly the Sw baseline of the hardware evaluation (§6.2),
// whose Init and Merge costs PCLR eliminates.
//
// Init and Merge run on the active kernel backend (reductions/kernels.hpp:
// scalar or AVX2/AVX-512 via runtime dispatch) over 64-byte-aligned
// private buffers that are first-touch-initialized by their owning worker.
// The merge is topology-aware (common/topology.hpp): with a grouped
// combine schedule, copies fold within a group into the group leader's
// buffer first, then the group results fold into `out` in ascending group
// order; with the (default single-node) flat schedule the fold is the
// historical ((out ⊕ p0) ⊕ p1)… ascending-thread order. Both orders are
// deterministic, and vectorization never changes a bit: per element the
// operator applications happen in the same sequence on every backend.
#pragma once

#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/compiler.hpp"
#include "common/topology.hpp"
#include "reductions/kernels.hpp"
#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class RepScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override { return SchemeKind::kRep; }

  /// The plan only carries the reusable private arrays so repeated
  /// invocations don't pay allocation (they still pay Init: the arrays must
  /// be re-neutralized every time, which is the point of the scheme's cost
  /// model). Buffers are raw aligned storage — allocation touches no pages,
  /// so the owning worker's Init fill doubles as first-touch placement.
  struct Plan final : SchemePlan {
    mutable std::vector<AlignedBuffer<double>> priv;
  };

  [[nodiscard]] std::unique_ptr<SchemePlan> plan(
      const AccessPattern& p, unsigned nthreads) const override {
    auto pl = std::make_unique<Plan>();
    pl->priv.resize(nthreads);
    for (auto& v : pl->priv) v.reset(p.dim);
    return pl;
  }

  SchemeResult execute(const SchemePlan* plan_base, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    const auto* pl = dynamic_cast<const Plan*>(plan_base);
    SAPP_REQUIRE(pl != nullptr && pl->priv.size() == pool.size(),
                 "rep: plan missing or built for a different thread count");
    const std::size_t dim = in.pattern.dim;
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;
    const unsigned P = pool.size();

    const kernels::KernelOps& K = kernels::active();
    const kernels::MergeFn merge = kernels::merge_fn<Op>(K);
    // acc[k] = Op(acc[k], src[k]) over a contiguous span: the backend
    // kernel when the operator has one, the generic loop otherwise.
    const auto fold = [&](double* SAPP_RESTRICT acc,
                          const double* SAPP_RESTRICT src, std::size_t len) {
      if (merge != nullptr) {
        merge(acc, src, len);
      } else {
        for (std::size_t k = 0; k < len; ++k)
          acc[k] = Op::apply(acc[k], src[k]);
      }
    };

    SchemeResult r;
    r.private_bytes = static_cast<std::size_t>(P) * dim * sizeof(double);

    Timer t;
    pool.run([&](unsigned tid) {
      auto& mine = pl->priv[tid];
      SAPP_ASSERT_ALIGNED(mine.data());
      kernels::fill_neutral<Op>(K, mine.data(), mine.size());
    });
    r.phases.init_s = t.seconds();

    t.restart();
    pool.parallel_for(in.pattern.iterations(), [&](unsigned tid, Range rg) {
      double* SAPP_RESTRICT mine = pl->priv[tid].data();
      const std::uint64_t* SAPP_RESTRICT rp = ptr.data();
      const std::uint32_t* SAPP_RESTRICT ix = idx.data();
      const double* SAPP_RESTRICT v = vals;
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const double s = iteration_scale(i, flops);
        for (std::uint64_t j = rp[i]; j < rp[i + 1]; ++j) {
          const std::uint32_t e = ix[j];
          mine[e] = Op::apply(mine[e], v[j] * s);
        }
      }
    });
    r.phases.loop_s = t.seconds();

    // Merge: tile the element space so each private row streams through a
    // tile contiguously (unit stride — the kernel backend's merge) instead
    // of striding one element across all P copies.
    t.restart();
    const CombineSchedule sched = CombineSchedule::for_workers(P);
    constexpr std::size_t kTile = 1024;  // 8 KiB of `out` per tile
    if (sched.flat()) {
      // Flat: per element, ((out ⊕ p0) ⊕ p1)… in ascending thread order.
      pool.parallel_for(dim, [&](unsigned, Range rg) {
        double* SAPP_RESTRICT o = out.data();
        for (std::size_t t0 = rg.begin; t0 < rg.end; t0 += kTile) {
          const std::size_t t1 = t0 + kTile < rg.end ? t0 + kTile : rg.end;
          for (unsigned q = 0; q < P; ++q)
            fold(o + t0, pl->priv[q].data() + t0, t1 - t0);
        }
      });
    } else {
      // Hierarchical: each group pre-folds its copies into the group
      // leader's buffer (workers split the element space within their own
      // group, so the intra-group traffic stays on the group's node under
      // first-touch placement), then the group results fold into `out` in
      // ascending group order.
      pool.run([&](unsigned tid) {
        const Range g = sched.group_of(tid);
        const auto gsz = static_cast<unsigned>(g.size());
        if (gsz <= 1) return;
        const Range slice =
            static_block(dim, tid - static_cast<unsigned>(g.begin), gsz);
        if (slice.empty()) return;
        double* leader = pl->priv[g.begin].data() + slice.begin;
        for (std::size_t q = g.begin + 1; q < g.end; ++q)
          fold(leader, pl->priv[q].data() + slice.begin, slice.size());
      });
      pool.parallel_for(dim, [&](unsigned, Range rg) {
        double* SAPP_RESTRICT o = out.data();
        for (std::size_t t0 = rg.begin; t0 < rg.end; t0 += kTile) {
          const std::size_t t1 = t0 + kTile < rg.end ? t0 + kTile : rg.end;
          for (const Range& g : sched.groups)
            fold(o + t0, pl->priv[g.begin].data() + t0, t1 - t0);
        }
      });
    }
    r.phases.merge_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
