// "rep" — private accumulation and global update in replicated private
// arrays (§4).
//
// Each thread owns a full private copy of the reduction array. Phases:
//   Init : fill every private copy with the neutral element,
//   Loop : accumulate locally, no synchronization,
//   Merge: parallel over elements, fold the P partial copies into `w`.
// This is also exactly the Sw baseline of the hardware evaluation (§6.2),
// whose Init and Merge costs PCLR eliminates.
#pragma once

#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class RepScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override { return SchemeKind::kRep; }

  /// The plan only carries the reusable private arrays so repeated
  /// invocations don't pay allocation (they still pay Init: the arrays must
  /// be re-neutralized every time, which is the point of the scheme's cost
  /// model).
  struct Plan final : SchemePlan {
    mutable std::vector<CacheAlignedVector<double>> priv;
  };

  [[nodiscard]] std::unique_ptr<SchemePlan> plan(
      const AccessPattern& p, unsigned nthreads) const override {
    auto pl = std::make_unique<Plan>();
    pl->priv.resize(nthreads);
    for (auto& v : pl->priv) v.resize(p.dim);
    return pl;
  }

  SchemeResult execute(const SchemePlan* plan_base, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    const auto* pl = dynamic_cast<const Plan*>(plan_base);
    SAPP_REQUIRE(pl != nullptr && pl->priv.size() == pool.size(),
                 "rep: plan missing or built for a different thread count");
    const std::size_t dim = in.pattern.dim;
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;
    const unsigned P = pool.size();

    SchemeResult r;
    r.private_bytes = static_cast<std::size_t>(P) * dim * sizeof(double);

    Timer t;
    pool.run([&](unsigned tid) {
      auto& mine = pl->priv[tid];
      std::fill(mine.begin(), mine.end(), Op::neutral());
    });
    r.phases.init_s = t.seconds();

    t.restart();
    pool.parallel_for(in.pattern.iterations(), [&](unsigned tid, Range rg) {
      double* mine = pl->priv[tid].data();
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const double s = iteration_scale(i, flops);
        for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
          const std::uint32_t e = idx[j];
          mine[e] = Op::apply(mine[e], vals[j] * s);
        }
      }
    });
    r.phases.loop_s = t.seconds();

    t.restart();
    pool.parallel_for(dim, [&](unsigned, Range rg) {
      for (std::size_t e = rg.begin; e < rg.end; ++e) {
        double acc = out[e];
        for (unsigned q = 0; q < P; ++q)
          acc = Op::apply(acc, pl->priv[q][e]);
        out[e] = acc;
      }
    });
    r.phases.merge_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
