// "rep" — private accumulation and global update in replicated private
// arrays (§4).
//
// Each thread owns a full private copy of the reduction array. Phases:
//   Init : fill every private copy with the neutral element,
//   Loop : accumulate locally, no synchronization,
//   Merge: parallel over elements, fold the P partial copies into `w`.
// This is also exactly the Sw baseline of the hardware evaluation (§6.2),
// whose Init and Merge costs PCLR eliminates.
#pragma once

#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/compiler.hpp"
#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class RepScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override { return SchemeKind::kRep; }

  /// The plan only carries the reusable private arrays so repeated
  /// invocations don't pay allocation (they still pay Init: the arrays must
  /// be re-neutralized every time, which is the point of the scheme's cost
  /// model).
  struct Plan final : SchemePlan {
    mutable std::vector<CacheAlignedVector<double>> priv;
  };

  [[nodiscard]] std::unique_ptr<SchemePlan> plan(
      const AccessPattern& p, unsigned nthreads) const override {
    auto pl = std::make_unique<Plan>();
    pl->priv.resize(nthreads);
    for (auto& v : pl->priv) v.resize(p.dim);
    return pl;
  }

  SchemeResult execute(const SchemePlan* plan_base, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    const auto* pl = dynamic_cast<const Plan*>(plan_base);
    SAPP_REQUIRE(pl != nullptr && pl->priv.size() == pool.size(),
                 "rep: plan missing or built for a different thread count");
    const std::size_t dim = in.pattern.dim;
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;
    const unsigned P = pool.size();

    SchemeResult r;
    r.private_bytes = static_cast<std::size_t>(P) * dim * sizeof(double);

    Timer t;
    pool.run([&](unsigned tid) {
      auto& mine = pl->priv[tid];
      fill_neutral<Op>(mine.data(), mine.size());  // memset when neutral==+0.0
    });
    r.phases.init_s = t.seconds();

    t.restart();
    pool.parallel_for(in.pattern.iterations(), [&](unsigned tid, Range rg) {
      double* SAPP_RESTRICT mine = pl->priv[tid].data();
      const std::uint64_t* SAPP_RESTRICT rp = ptr.data();
      const std::uint32_t* SAPP_RESTRICT ix = idx.data();
      const double* SAPP_RESTRICT v = vals;
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const double s = iteration_scale(i, flops);
        for (std::uint64_t j = rp[i]; j < rp[i + 1]; ++j) {
          const std::uint32_t e = ix[j];
          mine[e] = Op::apply(mine[e], v[j] * s);
        }
      }
    });
    r.phases.loop_s = t.seconds();

    // Merge: tile the element space so each private row streams through a
    // tile contiguously (unit stride, vectorizable) instead of striding
    // one element across all P copies. Within an element the copies still
    // combine in ascending thread order, so the result is bitwise
    // identical to the untiled per-element fold.
    t.restart();
    pool.parallel_for(dim, [&](unsigned, Range rg) {
      constexpr std::size_t kTile = 1024;  // 8 KiB of `out` per tile
      double* SAPP_RESTRICT o = out.data();
      for (std::size_t t0 = rg.begin; t0 < rg.end; t0 += kTile) {
        const std::size_t t1 = t0 + kTile < rg.end ? t0 + kTile : rg.end;
        for (unsigned q = 0; q < P; ++q) {
          const double* SAPP_RESTRICT src = pl->priv[q].data();
          for (std::size_t e = t0; e < t1; ++e)
            o[e] = Op::apply(o[e], src[e]);
        }
      }
    });
    r.phases.merge_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
