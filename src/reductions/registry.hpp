// Scheme registry: kind → instance.
//
// This is the "library of already implemented choices" the adaptive
// selector draws from (§4).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "reductions/scheme.hpp"

namespace sapp {

/// Instantiate the scheme for `kind` over double/sum.
[[nodiscard]] std::unique_ptr<Scheme> make_scheme(SchemeKind kind);

/// All kinds, in table-printing order.
[[nodiscard]] std::span<const SchemeKind> all_scheme_kinds();

/// The paper's five parallel candidates {rep, lw, ll, sel, hash} — the set
/// the decision algorithm selects from.
[[nodiscard]] std::span<const SchemeKind> candidate_scheme_kinds();

/// Parse a scheme name ("rep", "lw", ...); throws std::invalid_argument on
/// unknown names.
[[nodiscard]] SchemeKind scheme_kind_from_name(std::string_view name);

}  // namespace sapp
