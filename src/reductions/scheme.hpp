// Common interface of the parallel reduction schemes (§4).
//
// Every scheme executes `w[x[i][k]] ⊕= v(i,k)` over an AccessPattern and
// reports where its time went — inspector, private-storage initialization,
// loop body, and merge — plus how much private memory it allocated. This is
// the vocabulary the decision model (src/core) reasons in, and matches the
// Init/Loop/Merge breakdown of the hardware evaluation (Fig. 6).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>

#include "check/checker.hpp"
#include "check/fault_injector.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "reductions/access_pattern.hpp"

namespace sapp {

/// Identifiers for the scheme library. Order defines the printing order in
/// the benchmark tables.
enum class SchemeKind {
  kSeq,       ///< sequential reference
  kAtomic,    ///< atomic read-modify-write into shared array (baseline)
  kCritical,  ///< striped-mutex critical sections (baseline)
  kRep,       ///< replicated private arrays + merge (paper: "rep")
  kLocalWrite,///< owner-computes with iteration replication (paper: "lw")
  kLinked,    ///< replicated buffer with links, lazy init (paper: "ll")
  kSelective, ///< selective privatization of shared elements (paper: "sel")
  kHash,      ///< private hash-table accumulation (paper: "hash")
};

[[nodiscard]] constexpr std::string_view to_string(SchemeKind k) {
  switch (k) {
    case SchemeKind::kSeq: return "seq";
    case SchemeKind::kAtomic: return "atomic";
    case SchemeKind::kCritical: return "critical";
    case SchemeKind::kRep: return "rep";
    case SchemeKind::kLocalWrite: return "lw";
    case SchemeKind::kLinked: return "ll";
    case SchemeKind::kSelective: return "sel";
    case SchemeKind::kHash: return "hash";
  }
  return "?";
}

/// Outcome of one scheme execution.
struct SchemeResult {
  double inspect_s = 0.0;   ///< inspector/plan time (amortizable across invocations)
  PhaseTimes phases;        ///< init / loop / merge wall times
  std::size_t private_bytes = 0;  ///< private storage allocated
  /// Wall time the in-flight checker spent (execute_checked only). Kept
  /// out of `phases` so checked and unchecked loop times stay comparable.
  double check_s = 0.0;

  [[nodiscard]] double total_s() const { return phases.total(); }
  [[nodiscard]] double total_with_inspect_s() const {
    return inspect_s + phases.total();
  }
};

/// Reusable inspector output. Patterns are typically executed many times
/// (the paper's loops run hundreds of invocations); schemes that need an
/// inspector build a Plan once and reuse it while the pattern is unchanged.
struct SchemePlan {
  virtual ~SchemePlan() = default;
};

/// Abstract parallel reduction scheme over double/sum (the paper's
/// operator). Template implementations underneath are generic over the
/// operator; this type-erased interface is what the adaptive runtime and
/// the registry use.
class Scheme {
 public:
  virtual ~Scheme() = default;

  [[nodiscard]] virtual SchemeKind kind() const = 0;
  [[nodiscard]] std::string_view name() const { return to_string(kind()); }

  /// False if the scheme cannot legally run this pattern (e.g. local-write
  /// without iteration replication legality).
  [[nodiscard]] virtual bool applicable(const AccessPattern& p) const {
    (void)p;
    return true;
  }

  /// Build the inspector plan for `p` under `nthreads` (may return nullptr
  /// when no inspector is needed).
  [[nodiscard]] virtual std::unique_ptr<SchemePlan> plan(
      const AccessPattern& p, unsigned nthreads) const {
    (void)p;
    (void)nthreads;
    return nullptr;
  }

  /// Execute the reduction, accumulating into `out` (size == pattern.dim).
  /// `plan` must come from `this->plan` on the same pattern/thread count
  /// (or be nullptr if the scheme needs none).
  virtual SchemeResult execute(const SchemePlan* plan,
                               const ReductionInput& in, ThreadPool& pool,
                               std::span<double> out) const = 0;

  /// Convenience: plan + execute, folding plan time into inspect_s.
  SchemeResult run(const ReductionInput& in, ThreadPool& pool,
                   std::span<double> out) const;

  /// Execute with in-flight probabilistic checking (docs/checking.md):
  /// snapshot + input-stream checksum before the scheme runs, combine
  /// verdict after. Works for every scheme — the checker observes only the
  /// input stream and the merged output, never scheme internals. When
  /// `injector` is armed for `site` it corrupts one merged output element
  /// between execution and verification (the fault-injection proof).
  /// The verdict lands in `*report` (required); a failed check leaves
  /// `out` in its corrupted state — recovery policy belongs to the caller
  /// (AdaptiveReducer rolls back and re-executes serially).
  SchemeResult execute_checked(const SchemePlan* plan,
                               const ReductionInput& in, ThreadPool& pool,
                               std::span<double> out,
                               const CheckerOptions& check, CheckReport* report,
                               FaultInjector* injector = nullptr,
                               FaultSite site = FaultSite::kSchemeCombine,
                               CheckOp op = CheckOp::kSum) const;
};

}  // namespace sapp
