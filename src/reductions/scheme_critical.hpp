// Striped-lock critical-section baseline.
//
// The "unoptimized compiler output" the paper's techniques replace: each
// update takes a lock guarding a stripe of the shared array.
#pragma once

#include <array>
#include <memory>
#include <mutex>

#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class CriticalScheme final : public Scheme {
 public:
  static constexpr std::size_t kStripes = 256;

  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::kCritical;
  }

  SchemeResult execute(const SchemePlan*, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    SchemeResult r;
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;
    double* o = out.data();
    auto locks = std::make_unique<std::array<std::mutex, kStripes>>();

    Timer t;
    pool.parallel_for(in.pattern.iterations(), [&](unsigned, Range rg) {
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const double s = iteration_scale(i, flops);
        for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
          const std::uint32_t e = idx[j];
          std::scoped_lock lk((*locks)[e % kStripes]);
          o[e] = Op::apply(o[e], vals[j] * s);
        }
      }
    });
    r.phases.loop_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
