// Reduction operator concept and the standard operators.
//
// A reduction variable (paper §4, footnote 1) is updated only through one
// associative and commutative operation `x = x ⊕ expr` where `x` does not
// appear in `expr`. Schemes are parameterized over the operator; the
// operator supplies the neutral element used for on-demand initialization
// (exactly the role the PCLR hardware's "line of neutral elements" plays).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <limits>

namespace sapp {

/// An associative, commutative reduction operator over T.
template <typename Op, typename T>
concept ReductionOp = requires(T a, T b) {
  { Op::neutral() } -> std::convertible_to<T>;
  { Op::apply(a, b) } -> std::convertible_to<T>;
};

/// Sum (the only reduction operator appearing in the paper's applications;
/// §6.1: "Floating-point addition is the only reduction operation that
/// appears in our applications").
template <typename T>
struct SumOp {
  static constexpr T neutral() { return T{0}; }
  static constexpr T apply(T a, T b) { return a + b; }
  static constexpr const char* name() { return "sum"; }
};

/// Product.
template <typename T>
struct ProdOp {
  static constexpr T neutral() { return T{1}; }
  static constexpr T apply(T a, T b) { return a * b; }
  static constexpr const char* name() { return "prod"; }
};

/// Maximum (the paper's directory FP unit is "a floating-point adder and
/// comparator" — add and min/max are the supported combine ops).
template <typename T>
struct MaxOp {
  static constexpr T neutral() {
    return std::numeric_limits<T>::lowest();
  }
  static constexpr T apply(T a, T b) { return a > b ? a : b; }
  static constexpr const char* name() { return "max"; }
};

/// Minimum.
template <typename T>
struct MinOp {
  static constexpr T neutral() { return std::numeric_limits<T>::max(); }
  static constexpr T apply(T a, T b) { return a < b ? a : b; }
  static constexpr const char* name() { return "min"; }
};

/// Fill `n` doubles with Op's neutral element. When the neutral element is
/// all-zero bits (+0.0 — checked via bit_cast, so a hypothetical -0.0
/// neutral is not mis-memset), this is a plain memset: the software
/// analogue of the PCLR hardware's "line of neutral elements" fill, and
/// the fast path of every privatizing scheme's Init phase.
template <typename Op>
  requires ReductionOp<Op, double>
inline void fill_neutral(double* p, std::size_t n) {
  if (n == 0) return;  // empty buffers may hand us data() == nullptr (UB
                       // to pass to memset even with a zero length)
  if constexpr (std::bit_cast<std::uint64_t>(
                    static_cast<double>(Op::neutral())) == 0) {
    std::memset(p, 0, n * sizeof(double));
  } else {
    std::fill(p, p + n, Op::neutral());
  }
}

/// Lock-free accumulate of `v` into `*p` under operator Op using a CAS
/// loop over std::atomic_ref. Used by the atomic baseline and by merge
/// phases that write concurrently into the shared array.
template <typename Op, typename T>
  requires ReductionOp<Op, T>
inline void atomic_accumulate(T* p, T v) {
  std::atomic_ref<T> ref(*p);
  T expected = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(expected, Op::apply(expected, v),
                                    std::memory_order_relaxed)) {
  }
}

}  // namespace sapp
