// "ll" — replicated buffer with links (§4).
//
// Like rep, each thread has a full-size private buffer, but entries are
// initialized lazily on first touch and threaded onto a per-thread linked
// list. Re-initialization between invocations and the merge both walk only
// the touched entries, so the scheme's overhead scales with the touched set
// rather than with the array dimension.
//
// Merge partitions the element space: each worker walks every thread's
// touched list and folds in only the elements it owns, in ascending thread
// order. That trades a P-fold walk amplification (cheap: ll is selected
// when touched « dim) for a merge with no atomics and a deterministic
// floating-point combine order — the previous CAS-based merge was neither.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "common/compiler.hpp"
#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class LinkedScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::kLinked;
  }

  /// Buffers are uninitialized aligned storage: `val` is only ever read
  /// after the loop's first-touch neutralization, and `next` gets its bulk
  /// kUntouched sweep from the owning worker on first Init — which under
  /// first-touch placement also puts the pages on that worker's node.
  struct Plan final : SchemePlan {
    struct ThreadBuf {
      AlignedBuffer<double> val;
      AlignedBuffer<std::int32_t> next;  // kUntouched / kNil / element id
      std::int32_t head = kNil;
      bool virgin = true;  // next not yet bulk-initialized
    };
    mutable std::vector<ThreadBuf> bufs;
  };

  static constexpr std::int32_t kNil = -1;
  static constexpr std::int32_t kUntouched = -2;

  [[nodiscard]] std::unique_ptr<SchemePlan> plan(
      const AccessPattern& p, unsigned nthreads) const override {
    auto pl = std::make_unique<Plan>();
    pl->bufs.resize(nthreads);
    for (auto& b : pl->bufs) {
      b.val.reset(p.dim);
      b.next.reset(p.dim);
      b.virgin = true;
      b.head = kNil;
    }
    return pl;
  }

  SchemeResult execute(const SchemePlan* plan_base, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    const auto* pl = dynamic_cast<const Plan*>(plan_base);
    SAPP_REQUIRE(pl != nullptr && pl->bufs.size() == pool.size(),
                 "ll: plan missing or built for a different thread count");
    const std::size_t dim = in.pattern.dim;
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;

    SchemeResult r;
    r.private_bytes = static_cast<std::size_t>(pool.size()) * dim *
                      (sizeof(double) + sizeof(std::int32_t));

    // Init: first invocation pays a bulk flag sweep; later invocations only
    // unlink the entries the previous run touched.
    Timer t;
    pool.run([&](unsigned tid) {
      auto& b = pl->bufs[tid];
      SAPP_ASSERT_ALIGNED(b.val.data());
      if (b.virgin) {
        std::fill_n(b.next.data(), b.next.size(), kUntouched);
        b.virgin = false;
      } else {
        std::int32_t e = b.head;
        while (e != kNil) {
          const std::int32_t nxt = b.next[e];
          b.next[e] = kUntouched;
          e = nxt;
        }
      }
      b.head = kNil;
    });
    r.phases.init_s = t.seconds();

    t.restart();
    pool.parallel_for(in.pattern.iterations(), [&](unsigned tid, Range rg) {
      auto& b = pl->bufs[tid];
      double* SAPP_RESTRICT val = b.val.data();
      std::int32_t* SAPP_RESTRICT next = b.next.data();
      const std::uint64_t* SAPP_RESTRICT rp = ptr.data();
      const std::uint32_t* SAPP_RESTRICT ix = idx.data();
      const double* SAPP_RESTRICT v = vals;
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const double s = iteration_scale(i, flops);
        for (std::uint64_t j = rp[i]; j < rp[i + 1]; ++j) {
          const std::uint32_t e = ix[j];
          if (next[e] == kUntouched) {  // first touch: link + neutralize
            val[e] = Op::neutral();
            next[e] = b.head;
            b.head = static_cast<std::int32_t>(e);
          }
          val[e] = Op::apply(val[e], v[j] * s);
        }
      }
    });
    r.phases.loop_s = t.seconds();

    // Merge: each worker owns a block of the element space and walks every
    // thread's touched list in ascending thread order, folding in only the
    // owned elements — synchronization-free and deterministic (see file
    // comment).
    t.restart();
    const unsigned P = pool.size();
    pool.run([&](unsigned tid) {
      const Range own = static_block(dim, tid, P);
      for (unsigned q = 0; q < P; ++q) {
        const auto& b = pl->bufs[q];
        const double* SAPP_RESTRICT val = b.val.data();
        const std::int32_t* SAPP_RESTRICT next = b.next.data();
        for (std::int32_t e = b.head; e != kNil; e = next[e]) {
          const auto ue = static_cast<std::size_t>(e);
          if (ue - own.begin < own.size())
            out[ue] = Op::apply(out[ue], val[ue]);
        }
      }
    });
    r.phases.merge_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
