// Kernel backends and runtime dispatch (docs/backends.md).
//
// The AVX2/AVX-512 paths are compiled with per-function `target`
// attributes, so the whole file builds with the project's baseline flags
// and nothing vectorized executes unless CPUID said the ISA is there.
// Per-element combine order is identical across backends — lanes are
// independent, so scalar and vector backends produce bitwise-identical
// merges (tests/kernels_test.cpp pins this).
#include "reductions/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAPP_X86_BACKENDS 1
#include <immintrin.h>
#endif

namespace sapp::kernels {

namespace {

// ------------------------------------------------------------- scalar
// On x86 the scalar loops forbid auto-vectorization: there the SIMD
// backends are the production path and "scalar" is the one-element-per-
// instruction ablation baseline the kernels experiment measures against.
// On other architectures the attribute is omitted — scalar IS the
// production path and the compiler should do whatever it can with it.
#if defined(SAPP_X86_BACKENDS) && defined(__GNUC__) && !defined(__clang__)
#define SAPP_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define SAPP_NO_AUTOVEC
#endif

SAPP_NO_AUTOVEC void scalar_fill(double* dst, std::size_t n, double value) {
  if (n == 0) return;
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  if (bits == 0) {
    std::memset(dst, 0, n * sizeof(double));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] = value;
}

SAPP_NO_AUTOVEC void scalar_merge_sum(double* acc, const double* src,
                                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] = acc[i] + src[i];
}

SAPP_NO_AUTOVEC void scalar_merge_prod(double* acc, const double* src,
                                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] = acc[i] * src[i];
}

// min/max spell out the operator's exact select — `a < b ? a : b` with
// a = acc, b = src — which is also precisely what VMINPD/VMAXPD compute
// (false and NaN both select the second operand), so the vector paths
// agree bitwise even on NaN and signed-zero inputs.
SAPP_NO_AUTOVEC void scalar_merge_min(double* acc, const double* src,
                                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] = acc[i] < src[i] ? acc[i] : src[i];
}

SAPP_NO_AUTOVEC void scalar_merge_max(double* acc, const double* src,
                                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] = acc[i] > src[i] ? acc[i] : src[i];
}

#undef SAPP_NO_AUTOVEC

constexpr KernelOps kScalarOps{
    Backend::kScalar, "scalar",     "portable (no explicit SIMD)",
    scalar_fill,      scalar_merge_sum, scalar_merge_prod,
    scalar_merge_min, scalar_merge_max,
};

#ifdef SAPP_X86_BACKENDS

// --------------------------------------------------------------- AVX2
// 256-bit lanes, 2x unrolled main loop, scalar tail (<= 7 elements).

__attribute__((target("avx2"))) void avx2_fill(double* dst, std::size_t n,
                                               double value) {
  const __m256d v = _mm256_set1_pd(value);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(dst + i, v);
    _mm256_storeu_pd(dst + i + 4, v);
  }
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(dst + i, v);
  for (; i < n; ++i) dst[i] = value;
}

#define SAPP_AVX2_MERGE(NAME, COMBINE, SCALAR_TAIL)                          \
  __attribute__((target("avx2"))) void NAME(double* acc, const double* src,  \
                                            std::size_t n) {                 \
    std::size_t i = 0;                                                       \
    for (; i + 8 <= n; i += 8) {                                             \
      const __m256d a0 = _mm256_loadu_pd(acc + i);                           \
      const __m256d a1 = _mm256_loadu_pd(acc + i + 4);                       \
      const __m256d s0 = _mm256_loadu_pd(src + i);                           \
      const __m256d s1 = _mm256_loadu_pd(src + i + 4);                       \
      _mm256_storeu_pd(acc + i, COMBINE(a0, s0));                            \
      _mm256_storeu_pd(acc + i + 4, COMBINE(a1, s1));                        \
    }                                                                        \
    for (; i + 4 <= n; i += 4) {                                             \
      const __m256d a = _mm256_loadu_pd(acc + i);                            \
      const __m256d s = _mm256_loadu_pd(src + i);                            \
      _mm256_storeu_pd(acc + i, COMBINE(a, s));                              \
    }                                                                        \
    for (; i < n; ++i) acc[i] = SCALAR_TAIL;                                 \
  }

SAPP_AVX2_MERGE(avx2_merge_sum, _mm256_add_pd, acc[i] + src[i])
SAPP_AVX2_MERGE(avx2_merge_prod, _mm256_mul_pd, acc[i] * src[i])
SAPP_AVX2_MERGE(avx2_merge_min, _mm256_min_pd,
                acc[i] < src[i] ? acc[i] : src[i])
SAPP_AVX2_MERGE(avx2_merge_max, _mm256_max_pd,
                acc[i] > src[i] ? acc[i] : src[i])
#undef SAPP_AVX2_MERGE

constexpr KernelOps kAvx2Ops{
    Backend::kAvx2, "avx2",         "AVX2 (256-bit)",
    avx2_fill,      avx2_merge_sum, avx2_merge_prod,
    avx2_merge_min, avx2_merge_max,
};

// ------------------------------------------------------------ AVX-512
// 512-bit lanes; the tail is a single masked iteration (AVX-512F masked
// loads/stores), so there is no scalar epilogue at all.

__attribute__((target("avx512f"))) void avx512_fill(double* dst,
                                                    std::size_t n,
                                                    double value) {
  const __m512d v = _mm512_set1_pd(value);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) _mm512_storeu_pd(dst + i, v);
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    _mm512_mask_storeu_pd(dst + i, m, v);
  }
}

#define SAPP_AVX512_MERGE(NAME, COMBINE)                                     \
  __attribute__((target("avx512f"))) void NAME(                              \
      double* acc, const double* src, std::size_t n) {                       \
    std::size_t i = 0;                                                       \
    for (; i + 16 <= n; i += 16) {                                           \
      const __m512d a0 = _mm512_loadu_pd(acc + i);                           \
      const __m512d a1 = _mm512_loadu_pd(acc + i + 8);                       \
      const __m512d s0 = _mm512_loadu_pd(src + i);                           \
      const __m512d s1 = _mm512_loadu_pd(src + i + 8);                       \
      _mm512_storeu_pd(acc + i, COMBINE(a0, s0));                            \
      _mm512_storeu_pd(acc + i + 8, COMBINE(a1, s1));                        \
    }                                                                        \
    for (; i + 8 <= n; i += 8) {                                             \
      const __m512d a = _mm512_loadu_pd(acc + i);                            \
      const __m512d s = _mm512_loadu_pd(src + i);                            \
      _mm512_storeu_pd(acc + i, COMBINE(a, s));                              \
    }                                                                        \
    if (i < n) {                                                             \
      const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);        \
      const __m512d a = _mm512_maskz_loadu_pd(m, acc + i);                   \
      const __m512d s = _mm512_maskz_loadu_pd(m, src + i);                   \
      _mm512_mask_storeu_pd(acc + i, m, COMBINE(a, s));                      \
    }                                                                        \
  }

SAPP_AVX512_MERGE(avx512_merge_sum, _mm512_add_pd)
SAPP_AVX512_MERGE(avx512_merge_prod, _mm512_mul_pd)
SAPP_AVX512_MERGE(avx512_merge_min, _mm512_min_pd)
SAPP_AVX512_MERGE(avx512_merge_max, _mm512_max_pd)
#undef SAPP_AVX512_MERGE

constexpr KernelOps kAvx512Ops{
    Backend::kAvx512, "avx512",         "AVX-512F (512-bit, masked tail)",
    avx512_fill,      avx512_merge_sum, avx512_merge_prod,
    avx512_merge_min, avx512_merge_max,
};

#endif  // SAPP_X86_BACKENDS

const KernelOps* ops_for(Backend b) {
  switch (b) {
    case Backend::kScalar: return &kScalarOps;
#ifdef SAPP_X86_BACKENDS
    case Backend::kAvx2: return &kAvx2Ops;
    case Backend::kAvx512: return &kAvx512Ops;
#else
    default: break;
#endif
  }
  return nullptr;
}

/// The selection — written once at first use (or by set_backend), read by
/// every scheme execution. Relaxed atomics keep TSan quiet if a test
/// flips the backend while helper threads are parked.
std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* resolve_from_env_or_cpu() {
  if (const char* env = std::getenv("SAPP_BACKEND");
      env != nullptr && *env != '\0') {
    Backend b{};
    std::string usable;
    for (Backend u : usable_backends()) {
      if (!usable.empty()) usable += ',';
      usable += to_string(u);
    }
    if (!parse_backend(env, b)) {
      const std::string msg = "SAPP_BACKEND='" + std::string(env) +
                              "' is not a known backend (usable here: " +
                              usable + ")";
      SAPP_REQUIRE(false, msg.c_str());
    }
    if (!compiled(b) || !cpu_supports(b)) {
      const std::string msg = "SAPP_BACKEND='" + std::string(env) +
                              "' is not usable on this host (usable: " +
                              usable + ")";
      SAPP_REQUIRE(false, msg.c_str());
    }
    return ops_for(b);
  }
  return ops_for(detect_best());
}

}  // namespace

const KernelOps& scalar_ops() { return kScalarOps; }

bool compiled(Backend b) {
#ifdef SAPP_X86_BACKENDS
  (void)b;
  return true;
#else
  return b == Backend::kScalar;
#endif
}

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar: return true;
#ifdef SAPP_X86_BACKENDS
    case Backend::kAvx2: return __builtin_cpu_supports("avx2") != 0;
    case Backend::kAvx512: return __builtin_cpu_supports("avx512f") != 0;
#else
    default: break;
#endif
  }
  return false;
}

std::span<const Backend> usable_backends() {
  static const std::vector<Backend> usable = [] {
    std::vector<Backend> v;
    for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512})
      if (compiled(b) && cpu_supports(b)) v.push_back(b);
    return v;
  }();
  return usable;
}

Backend detect_best() {
  const auto usable = usable_backends();
  return usable.back();  // ascending width; scalar is always present
}

const KernelOps& active() {
  const KernelOps* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = resolve_from_env_or_cpu();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

bool set_backend(Backend b) {
  if (!compiled(b) || !cpu_supports(b)) return false;
  g_active.store(ops_for(b), std::memory_order_release);
  return true;
}

bool parse_backend(std::string_view name, Backend& out) {
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512})
    if (name == to_string(b)) {
      out = b;
      return true;
    }
  return false;
}

std::string dispatch_summary() {
  std::string s = active().name;
  s += " (detected: ";
  s += to_string(detect_best());
  s += ", usable:";
  for (Backend b : usable_backends()) {
    s += ' ';
    s += to_string(b);
  }
  s += ')';
  return s;
}

}  // namespace sapp::kernels
