#include "reductions/access_pattern.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "reductions/reduction_op.hpp"

namespace sapp {

void run_sequential(const ReductionInput& in, std::span<double> out) {
  SAPP_REQUIRE(in.consistent(), "values/pattern size mismatch");
  SAPP_REQUIRE(out.size() == in.pattern.dim, "output size mismatch");
  const auto& refs = in.pattern.refs;
  const auto& ptr = refs.row_ptr();
  const auto& idx = refs.indices();
  const unsigned flops = in.pattern.body_flops;
  for (std::size_t i = 0; i < refs.rows(); ++i) {
    const double s = iteration_scale(i, flops);
    for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j)
      out[idx[j]] += in.values[j] * s;
  }
}

std::size_t count_distinct(const AccessPattern& p) {
  std::vector<bool> seen(p.dim, false);
  std::size_t distinct = 0;
  for (std::uint32_t e : p.refs.indices()) {
    SAPP_ASSERT(e < p.dim, "element out of range");
    if (!seen[e]) {
      seen[e] = true;
      ++distinct;
    }
  }
  return distinct;
}

std::size_t sum_iteration_distinct(const AccessPattern& p) {
  std::size_t total = 0;
  std::vector<std::uint32_t> scratch;
  for (std::size_t i = 0; i < p.refs.rows(); ++i) {
    const auto row = p.refs.row(i);
    scratch.assign(row.begin(), row.end());
    std::sort(scratch.begin(), scratch.end());
    total += static_cast<std::size_t>(
        std::unique(scratch.begin(), scratch.end()) - scratch.begin());
  }
  return total;
}

}  // namespace sapp
