// Atomic read-modify-write baseline.
//
// Not in the paper's library, but the natural modern baseline: every update
// lands in the shared array via a CAS loop. Works for any pattern with no
// private storage, at the cost of coherence traffic on contended elements.
#pragma once

#include "reductions/reduction_op.hpp"
#include "reductions/scheme.hpp"

namespace sapp {

template <typename Op = SumOp<double>>
  requires ReductionOp<Op, double>
class AtomicScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::kAtomic;
  }

  SchemeResult execute(const SchemePlan*, const ReductionInput& in,
                       ThreadPool& pool, std::span<double> out) const override {
    SchemeResult r;
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    const auto* vals = in.values.data();
    const unsigned flops = in.pattern.body_flops;
    double* o = out.data();

    Timer t;
    pool.parallel_for(in.pattern.iterations(), [&](unsigned, Range rg) {
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        const double s = iteration_scale(i, flops);
        for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j)
          atomic_accumulate<Op>(o + idx[j], vals[j] * s);
      }
    });
    r.phases.loop_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
