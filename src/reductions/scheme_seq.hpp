// Sequential reference execution (speedup denominator everywhere).
#pragma once

#include "reductions/scheme.hpp"

namespace sapp {

/// Runs the loop in iteration order on the calling thread. All parallel
/// schemes must produce the same result up to reassociation of ⊕.
class SeqScheme final : public Scheme {
 public:
  [[nodiscard]] SchemeKind kind() const override { return SchemeKind::kSeq; }

  SchemeResult execute(const SchemePlan*, const ReductionInput& in,
                       ThreadPool&, std::span<double> out) const override {
    SchemeResult r;
    Timer t;
    run_sequential(in, out);
    r.phases.loop_s = t.seconds();
    return r;
  }
};

}  // namespace sapp
