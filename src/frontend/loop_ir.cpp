#include "frontend/loop_ir.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"

namespace sapp::frontend {

namespace {

bool is_commutative_update(Statement::Op op) {
  switch (op) {
    case Statement::Op::kPlusAssign:
    case Statement::Op::kMulAssign:
    case Statement::Op::kMaxAssign:
    case Statement::Op::kMinAssign:
      return true;
    case Statement::Op::kAssign:
      return false;
  }
  return false;
}

}  // namespace

LoopAnalysis analyze(const LoopNest& loop) {
  LoopAnalysis out;

  // Collect every array the body reads (through ValueExpr::kArrayRead);
  // a reduction variable must not appear there (§4 footnote: "x does not
  // occur in exp or anywhere else in the loop").
  std::set<std::string> read_arrays;
  for (const Statement& st : loop.body)
    if (st.value.kind == ValueExpr::Kind::kArrayRead)
      read_arrays.insert(st.value.array);

  // Per target array: check every statement.
  std::set<std::string> targets;
  for (const Statement& st : loop.body) targets.insert(st.target);

  for (const std::string& t : targets) {
    ArrayAnalysis aa;
    aa.array = t;
    aa.is_reduction = true;
    bool first = true;
    for (const Statement& st : loop.body) {
      if (st.target != t) continue;
      if (!is_commutative_update(st.op)) {
        aa.is_reduction = false;
        aa.reason = "plain assignment to " + t;
        break;
      }
      if (first) {
        aa.op = st.op;
        first = false;
      } else if (st.op != aa.op) {
        // §5.1.4: one reduction operation type per loop; mixed operators
        // must be distributed into separate loops first.
        aa.single_operator = false;
        aa.is_reduction = false;
        aa.reason = "mixed reduction operators on " + t;
        break;
      }
      if (st.value.kind == ValueExpr::Kind::kArrayRead &&
          st.value.array == t) {
        aa.is_reduction = false;
        aa.reason = t + " occurs in its own update expression";
        break;
      }
    }
    if (aa.is_reduction && read_arrays.contains(t)) {
      aa.is_reduction = false;
      aa.reason = t + " is read elsewhere in the loop";
    }
    out.arrays.push_back(std::move(aa));
  }

  // Loop-level properties.
  for (const Statement& st : loop.body) {
    const ArrayAnalysis* aa = out.find(st.target);
    SAPP_ASSERT(aa != nullptr, "analysis covers every target");
    if (!aa->is_reduction) {
      out.fully_reduction_parallel = false;
      // A plain write to a shared array poisons iteration replication:
      // re-executing the iteration would redo the write (harmless) but
      // also any non-reduction read-modify-write; conservatively require
      // all statements to be recognized reductions (the paper's Spice
      // case: "modification of shared arrays inside the loop body").
      out.iteration_replication_legal = false;
    }
  }
  return out;
}

ReductionInput extract_input(const LoopNest& loop,
                             const LoopAnalysis& analysis,
                             const std::string& target, std::size_t dim,
                             const Bindings& bindings) {
  const ArrayAnalysis* aa = analysis.find(target);
  SAPP_REQUIRE(aa != nullptr, "target not updated by this loop");
  SAPP_REQUIRE(aa->is_reduction,
               "target was not recognized as a reduction variable");

  // Statements contributing to this target, in body order.
  std::vector<const Statement*> updates;
  for (const Statement& st : loop.body)
    if (st.target == target) updates.push_back(&st);

  // Evaluate a subscript at (outer i, inner j); `j` is ignored for flat
  // statements and required (via kInnerIndex) only inside nested ones.
  auto eval_position = [&](const IndexExpr& ix, std::size_t i,
                           std::int64_t j) -> std::int64_t {
    switch (ix.kind) {
      case IndexExpr::Kind::kLoopIndex:
        return static_cast<std::int64_t>(i) + ix.offset;
      case IndexExpr::Kind::kConstant:
        return ix.offset;
      case IndexExpr::Kind::kInnerIndex:
        return j + ix.offset;
      case IndexExpr::Kind::kIndirect: {
        auto it = bindings.index_arrays.find(ix.index_array);
        SAPP_REQUIRE(it != bindings.index_arrays.end(),
                     "index array not bound");
        const auto pos = static_cast<std::int64_t>(i) + ix.offset;
        SAPP_REQUIRE(pos >= 0 && static_cast<std::size_t>(pos) <
                                     it->second.size(),
                     "index array subscript out of range");
        return it->second[static_cast<std::size_t>(pos)];
      }
    }
    return 0;
  };
  auto eval_index = [&](const IndexExpr& ix, std::size_t i,
                        std::int64_t j) -> std::uint32_t {
    const std::int64_t v = eval_position(ix, i, j);
    SAPP_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < dim,
                 "reduction subscript out of the target's extent");
    return static_cast<std::uint32_t>(v);
  };
  auto eval_value = [&](const ValueExpr& ve, std::size_t i,
                        std::int64_t j) -> double {
    switch (ve.kind) {
      case ValueExpr::Kind::kInputElement: {
        auto it = bindings.value_arrays.find(ve.array);
        SAPP_REQUIRE(it != bindings.value_arrays.end(),
                     "value array not bound");
        SAPP_REQUIRE(i < it->second.size(), "value array too short");
        return it->second[i];
      }
      case ValueExpr::Kind::kComputed:
        // Stand-in for arbitrary pure arithmetic on i.
        return 0.5 + static_cast<double>((i * 2654435761u) % 1024) / 1024.0;
      case ValueExpr::Kind::kArrayRead: {
        auto it = bindings.value_arrays.find(ve.array);
        SAPP_REQUIRE(it != bindings.value_arrays.end(),
                     "read value array not bound");
        const std::int64_t pos = eval_position(ve.index, i, j);
        SAPP_REQUIRE(pos >= 0 && static_cast<std::size_t>(pos) <
                                     it->second.size(),
                     "value array subscript out of range");
        return it->second[static_cast<std::size_t>(pos)];
      }
    }
    return 1.0;
  };

  ReductionInput in;
  in.pattern.dim = dim;
  in.pattern.iteration_replication_legal =
      analysis.iteration_replication_legal;
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> idx;
  std::vector<double> vals;
  row_ptr.reserve(loop.iterations + 1);
  idx.reserve(loop.iterations * updates.size());

  for (std::size_t i = 0; i < loop.iterations; ++i) {
    for (const Statement* st : updates) {
      if (st->inner) {
        // Naive expansion of the nested accumulation: one reference per
        // inner index. The simplification pass exists to avoid exactly
        // this O(N·W)/O(N²) blowup; this lowering is the fallback (and
        // the reference the simplified forms are checked against).
        const auto si = static_cast<std::int64_t>(i);
        const std::int64_t lo = st->inner->lo.at(si);
        const std::int64_t hi = st->inner->hi.at(si);
        for (std::int64_t j = lo; j < hi; ++j) {
          idx.push_back(eval_index(st->index, i, j));
          vals.push_back(eval_value(st->value, i, j));
        }
      } else {
        idx.push_back(eval_index(st->index, i, 0));
        vals.push_back(eval_value(st->value, i, 0));
      }
    }
    row_ptr.push_back(idx.size());
  }
  in.pattern.refs = Csr(std::move(row_ptr), std::move(idx));
  in.values = std::move(vals);
  return in;
}

}  // namespace sapp::frontend
