#include "frontend/simplify.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/runtime.hpp"

namespace sapp::frontend {

namespace {

/// The per-iteration contribution scale the whole library applies (the
/// LoopNest lowering runs with body_flops = 0; see AccessPattern).
double outer_scale(std::size_t i) { return iteration_scale(i, 0); }

bool op_supported(Statement::Op op) {
  return op == Statement::Op::kPlusAssign || op == Statement::Op::kMaxAssign ||
         op == Statement::Op::kMinAssign;
}

double apply_op(Statement::Op op, double acc, double v) {
  switch (op) {
    case Statement::Op::kAssign: return v;
    case Statement::Op::kPlusAssign: return acc + v;
    case Statement::Op::kMulAssign: return acc * v;
    case Statement::Op::kMaxAssign: return acc > v ? acc : v;
    case Statement::Op::kMinAssign: return acc < v ? acc : v;
  }
  return v;
}

/// Recognize the shape of one already-recognized reduction statement.
void classify(const LoopNest& loop, const Statement& st,
              SiteSimplification& s) {
  (void)loop;
  if (!st.inner) {
    s.reason = "no inner accumulation range (flat site)";
    return;
  }
  if (st.index.kind != IndexExpr::Kind::kLoopIndex) {
    s.reason = "target subscript is not the outer loop index";
    return;
  }
  if (st.value.kind != ValueExpr::Kind::kArrayRead ||
      st.value.index.kind != IndexExpr::Kind::kInnerIndex) {
    s.reason = "value does not stream the inner index";
    return;
  }
  const AffineExpr lo = st.inner->lo;
  const AffineExpr hi = st.inner->hi;
  if (lo.scale == 0 && hi.scale == 1) {
    // Growing range [b, i+d): the prefix shape. The running scan works
    // for any ⊕ that commutes with the per-iteration scale s(i): + does
    // (s·Σv = Σ s·v), min/max do (s > 0, rounding is monotone); a product
    // would need s(i)^count, which the scan cannot reproduce exactly.
    if (!op_supported(s.op)) {
      s.reason = "operator does not commute with the per-iteration scale";
      return;
    }
    s.form = SimplifiedForm::kPrefixScan;
    s.stmt = &st;
    return;
  }
  if (lo.scale == 1 && hi.scale == 1) {
    const std::int64_t w = hi.offset - lo.offset;
    if (w <= 0) {
      s.reason = "empty sliding window";
      return;
    }
    s.window = w;
    if (s.op == Statement::Op::kPlusAssign) {
      s.form = SimplifiedForm::kSlidingSum;  // + is invertible: add-subtract
      s.stmt = &st;
    } else if (s.op == Statement::Op::kMaxAssign ||
               s.op == Statement::Op::kMinAssign) {
      s.form = SimplifiedForm::kSlidingExtremum;  // monotonic deque
      s.stmt = &st;
    } else {
      s.reason = "non-invertible operator over a sliding window";
    }
    return;
  }
  s.reason = "inner range shape not recognized (lo scale " +
             std::to_string(lo.scale) + ", hi scale " +
             std::to_string(hi.scale) + ")";
}

}  // namespace

SimplifyAnalysis analyze_simplify(const LoopNest& loop,
                                  const LoopAnalysis& analysis) {
  SimplifyAnalysis out;
  for (const ArrayAnalysis& aa : analysis.arrays) {
    SiteSimplification s{};
    s.array = aa.array;
    s.op = aa.op;
    if (!aa.is_reduction) {
      // Carry the recognition diagnostic through: every analyze rejection
      // is a simplify rejection with the same reason.
      s.reason = aa.reason;
      out.sites.push_back(std::move(s));
      continue;
    }
    const Statement* only = nullptr;
    bool multiple = false;
    for (const Statement& st : loop.body) {
      if (st.target != aa.array) continue;
      if (only != nullptr) multiple = true;
      only = &st;
    }
    SAPP_ASSERT(only != nullptr, "recognized reduction with no statement");
    if (multiple) {
      // Two interleaved accumulations into one array need the general
      // machinery — exactly the irregular case the runtime handles.
      s.reason = "multiple update statements on " + aa.array;
    } else {
      classify(loop, *only, s);
    }
    out.sites.push_back(std::move(s));
  }
  return out;
}

void execute_simplified(const LoopNest& loop, const SiteSimplification& site,
                        std::size_t dim, const Bindings& bindings,
                        std::span<double> out) {
  SAPP_REQUIRE(site.form != SimplifiedForm::kNone,
               "execute_simplified on an unsimplified site");
  SAPP_REQUIRE(out.size() == dim, "output size mismatch");
  const Statement& st = *site.stmt;
  auto vit = bindings.value_arrays.find(st.value.array);
  SAPP_REQUIRE(vit != bindings.value_arrays.end(), "read value array not bound");
  const std::vector<double>& in = vit->second;
  const std::int64_t toff = st.index.offset;   // out position = i + toff
  const std::int64_t voff = st.value.index.offset;  // read in[j + voff]
  const std::int64_t n = static_cast<std::int64_t>(loop.iterations);

  auto out_at = [&](std::int64_t i) -> double& {
    const std::int64_t p = i + toff;
    SAPP_REQUIRE(p >= 0 && static_cast<std::size_t>(p) < dim,
                 "reduction subscript out of the target's extent");
    return out[static_cast<std::size_t>(p)];
  };
  auto in_at = [&](std::int64_t j) -> double {
    const std::int64_t p = j + voff;
    SAPP_REQUIRE(p >= 0 && static_cast<std::size_t>(p) < in.size(),
                 "value array subscript out of range");
    return in[static_cast<std::size_t>(p)];
  };

  switch (site.form) {
    case SimplifiedForm::kPrefixScan: {
      // Range [b, i+d): extend the running fold by the new edge elements,
      // one ⊕ each — O(N + total-new-elements) instead of O(Σ range).
      const std::int64_t b = st.inner->lo.offset;
      const std::int64_t d = st.inner->hi.offset;
      double acc = 0.0;
      bool have = false;
      std::int64_t next = b;
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t end = i + d;
        while (next < end) {
          const double v = in_at(next);
          acc = have ? apply_op(st.op, acc, v) : v;
          have = true;
          ++next;
        }
        if (end <= b || !have) continue;  // empty range: no contribution
        const double s = outer_scale(static_cast<std::size_t>(i));
        double& o = out_at(i);
        o = apply_op(st.op, o, acc * s);
      }
      return;
    }
    case SimplifiedForm::kSlidingSum: {
      // Window [i+a, i+a+W): add the entering edge, subtract the leaving
      // one — the invertibility of + pays for the whole window once.
      const std::int64_t a = st.inner->lo.offset;
      const std::int64_t w = site.window;
      if (n == 0) return;
      double wsum = 0.0;
      for (std::int64_t j = a; j < a + w; ++j) wsum += in_at(j);
      for (std::int64_t i = 0; i < n; ++i) {
        if (i > 0) wsum += in_at(i + a + w - 1) - in_at(i + a - 1);
        out_at(i) += wsum * outer_scale(static_cast<std::size_t>(i));
      }
      return;
    }
    case SimplifiedForm::kSlidingExtremum: {
      // Monotonic deque of window positions; the front is always the
      // extremum. Each position enters and leaves once: amortized O(1).
      const std::int64_t a = st.inner->lo.offset;
      const std::int64_t w = site.window;
      const bool is_max = st.op == Statement::Op::kMaxAssign;
      std::vector<std::int64_t> dq(static_cast<std::size_t>(w));
      std::size_t head = 0, tail = 0;  // [head, tail) into dq, wrapped
      auto dq_at = [&](std::size_t k) -> std::int64_t& {
        return dq[k % static_cast<std::size_t>(w)];
      };
      auto beats = [&](double cand, double old) {
        return is_max ? cand >= old : cand <= old;
      };
      std::int64_t filled = a;  // next position to push
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t lo_p = i + a;
        // Retire the leaving edge first so the ring never holds more than
        // W live positions while the entering edge is pushed.
        while (tail > head && dq_at(head) < lo_p) ++head;
        for (; filled < lo_p + w; ++filled) {
          const double v = in_at(filled);
          while (tail > head && beats(v, in_at(dq_at(tail - 1)))) --tail;
          dq_at(tail++) = filled;
        }
        SAPP_ASSERT(tail > head, "sliding deque emptied");
        const double m = in_at(dq_at(head));
        const double s = outer_scale(static_cast<std::size_t>(i));
        double& o = out_at(i);
        o = apply_op(st.op, o, m * s);
      }
      return;
    }
    case SimplifiedForm::kNone: break;
  }
}

void interpret_loop(const LoopNest& loop, const std::string& target,
                    std::size_t dim, const Bindings& bindings,
                    std::span<double> out) {
  SAPP_REQUIRE(out.size() == dim, "output size mismatch");
  auto eval_position = [&](const IndexExpr& ix, std::size_t i,
                           std::int64_t j) -> std::int64_t {
    switch (ix.kind) {
      case IndexExpr::Kind::kLoopIndex:
        return static_cast<std::int64_t>(i) + ix.offset;
      case IndexExpr::Kind::kConstant: return ix.offset;
      case IndexExpr::Kind::kInnerIndex: return j + ix.offset;
      case IndexExpr::Kind::kIndirect: {
        auto it = bindings.index_arrays.find(ix.index_array);
        SAPP_REQUIRE(it != bindings.index_arrays.end(),
                     "index array not bound");
        const auto pos = static_cast<std::int64_t>(i) + ix.offset;
        SAPP_REQUIRE(pos >= 0 && static_cast<std::size_t>(pos) <
                                     it->second.size(),
                     "index array subscript out of range");
        return it->second[static_cast<std::size_t>(pos)];
      }
    }
    return 0;
  };
  auto eval_value = [&](const ValueExpr& ve, std::size_t i,
                        std::int64_t j) -> double {
    switch (ve.kind) {
      case ValueExpr::Kind::kInputElement: {
        auto it = bindings.value_arrays.find(ve.array);
        SAPP_REQUIRE(it != bindings.value_arrays.end(),
                     "value array not bound");
        SAPP_REQUIRE(i < it->second.size(), "value array too short");
        return it->second[i];
      }
      case ValueExpr::Kind::kComputed:
        return 0.5 + static_cast<double>((i * 2654435761u) % 1024) / 1024.0;
      case ValueExpr::Kind::kArrayRead: {
        if (ve.array == target) {
          // Self-read: the statement consumes the target's current state
          // (the shape analyze() rejects; the serial interpreter is the
          // only executor that can honour it).
          const std::int64_t p = eval_position(ve.index, i, j);
          SAPP_REQUIRE(p >= 0 && static_cast<std::size_t>(p) < dim,
                       "self-read subscript out of the target's extent");
          return out[static_cast<std::size_t>(p)];
        }
        auto it = bindings.value_arrays.find(ve.array);
        SAPP_REQUIRE(it != bindings.value_arrays.end(),
                     "read value array not bound");
        const std::int64_t p = eval_position(ve.index, i, j);
        SAPP_REQUIRE(p >= 0 && static_cast<std::size_t>(p) <
                                   it->second.size(),
                     "value array subscript out of range");
        return it->second[static_cast<std::size_t>(p)];
      }
    }
    return 1.0;
  };

  for (std::size_t i = 0; i < loop.iterations; ++i) {
    const double s = outer_scale(i);
    for (const Statement& st : loop.body) {
      if (st.target != target) continue;
      const std::int64_t lo =
          st.inner ? st.inner->lo.at(static_cast<std::int64_t>(i)) : 0;
      const std::int64_t hi =
          st.inner ? st.inner->hi.at(static_cast<std::int64_t>(i)) : 1;
      for (std::int64_t j = lo; j < hi; ++j) {
        const std::int64_t p = eval_position(st.index, i, j);
        SAPP_REQUIRE(p >= 0 && static_cast<std::size_t>(p) < dim,
                     "reduction subscript out of the target's extent");
        const double v = eval_value(st.value, i, j) * s;
        double& o = out[static_cast<std::size_t>(p)];
        o = apply_op(st.op, o, v);
      }
    }
  }
}

FrontendResult submit_simplified(Runtime& rt, const LoopNest& loop,
                                 const std::string& target, std::size_t dim,
                                 const Bindings& bindings,
                                 std::span<double> out) {
  const LoopAnalysis analysis = analyze(loop);
  const SimplifyAnalysis sa = analyze_simplify(loop, analysis);
  const SiteSimplification* site = sa.find(target);
  SAPP_REQUIRE(site != nullptr, "target not updated by this loop");

  FrontendResult r;
  if (site->form != SimplifiedForm::kNone) {
    execute_simplified(loop, *site, dim, bindings, out);
    r.simplified = true;
    r.form = site->form;
    return r;
  }

  r.fallback_reason =
      site->reason.empty() ? "unrecognized" : site->reason;
  const ArrayAnalysis* aa = analysis.find(target);
  SAPP_ASSERT(aa != nullptr, "analysis covers every target");
  if (aa->is_reduction && aa->op == Statement::Op::kPlusAssign) {
    // The untouched fallback: lower to the flattened pattern and hand the
    // site to the adaptive runtime like any irregular reduction.
    const ReductionInput in = extract_input(loop, analysis, target, dim,
                                            bindings);
    const std::string site_id =
        (loop.name.empty() ? std::string("<loop>") : loop.name) + "/" + target;
    r.runtime_result = rt.submit(site_id, in, out);
    r.used_runtime = true;
  } else {
    // Non-reductions and non-sum operators: the scheme library implements
    // the paper's ⊕ = + (§6.1), so these run serially.
    interpret_loop(loop, target, dim, bindings, out);
  }
  return r;
}

}  // namespace sapp::frontend
