// A miniature loop IR — the compiler-facing substrate.
//
// The paper's pipeline starts in the compiler: "when a reduction operation
// is recognized or specifically called by the program, the compiler will
// possibly decide between the 'standard' parallel equivalent or 'histogram
// reductions'" (§2), with the recognition rule given in §4's footnote: a
// reduction variable is updated only through `x = x ⊕ exp` where ⊕ is
// associative and commutative and `x` does not occur in `exp` or anywhere
// else in the loop.
//
// This IR captures exactly the loop shape those rules talk about: a
// counted loop whose body is a list of array-update statements with
// (possibly indirect) subscripts. `analyze()` performs the recognition and
// legality analysis; `extract_input()` runs the subscript expressions as
// an inspector and emits the AccessPattern the rest of the library
// consumes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "reductions/access_pattern.hpp"

namespace sapp::frontend {

/// Subscript expression of an array access, evaluated per iteration i
/// (and, inside a nested accumulation, per inner index j).
struct IndexExpr {
  enum class Kind : std::uint8_t {
    kLoopIndex,   ///< i + offset
    kConstant,    ///< offset
    kIndirect,    ///< index_array[i + offset]  (the irregular case)
    kInnerIndex,  ///< j + offset (only inside a Statement with an
                  ///< InnerRange; see Statement::inner)
  };
  Kind kind = Kind::kLoopIndex;
  std::int64_t offset = 0;
  std::string index_array;  ///< for kIndirect

  static IndexExpr loop_index(std::int64_t off = 0) {
    return {Kind::kLoopIndex, off, {}};
  }
  static IndexExpr constant(std::int64_t c) {
    return {Kind::kConstant, c, {}};
  }
  static IndexExpr indirect(std::string array, std::int64_t off = 0) {
    return {Kind::kIndirect, off, std::move(array)};
  }
  static IndexExpr inner_index(std::int64_t off = 0) {
    return {Kind::kInnerIndex, off, {}};
  }
};

/// Affine function `scale*i + offset` of the outer loop index — the bound
/// language of nested accumulation ranges. The simplification pass
/// (frontend/simplify.hpp) recognizes scale 0 (fixed edge) and scale 1
/// (edge moving with i); anything else is legal to express but falls back
/// to the adaptive runtime.
struct AffineExpr {
  std::int64_t scale = 0;   ///< coefficient of the outer index i
  std::int64_t offset = 0;

  [[nodiscard]] std::int64_t at(std::int64_t i) const {
    return scale * i + offset;
  }
  static AffineExpr constant(std::int64_t c) { return {0, c}; }
  static AffineExpr of_i(std::int64_t off = 0) { return {1, off}; }
};

/// Inner accumulation range of one statement: the statement body runs for
/// j in [lo(i), hi(i)) on every outer iteration (empty when hi <= lo).
/// This is exactly enough structure to express the reuse-carrying shapes —
/// prefix sums (lo fixed, hi moves with i) and sliding windows (both edges
/// move with i) — that the simplification pass rewrites to O(N) forms.
struct InnerRange {
  AffineExpr lo;
  AffineExpr hi;  ///< exclusive
};

/// Right-hand side of an update, as much structure as the analysis needs.
struct ValueExpr {
  enum class Kind : std::uint8_t {
    kInputElement,  ///< value_array[i] — pure per-iteration input
    kComputed,      ///< pure function of i (models arbitrary arithmetic)
    kArrayRead,     ///< reads array[index] — poisons reduction recognition
  };
  Kind kind = Kind::kComputed;
  std::string array;  ///< for kInputElement / kArrayRead
  IndexExpr index;    ///< for kArrayRead

  static ValueExpr input(std::string value_array) {
    return {Kind::kInputElement, std::move(value_array), {}};
  }
  static ValueExpr computed() { return {Kind::kComputed, {}, {}}; }
  static ValueExpr array_read(std::string array, IndexExpr idx) {
    return {Kind::kArrayRead, std::move(array), idx};
  }
};

/// One statement: `target[index] op= value`, optionally repeated over an
/// inner accumulation range (`for j in [lo(i), hi(i)): ...`).
struct Statement {
  enum class Op : std::uint8_t {
    kAssign,     ///< = (plain write; never a reduction)
    kPlusAssign, ///< += (associative & commutative)
    kMulAssign,  ///< *=
    kMaxAssign,  ///< = max(x, e)
    kMinAssign,  ///< = min(x, e)
  };
  std::string target;
  IndexExpr index;
  Op op = Op::kPlusAssign;
  ValueExpr value;
  /// Nested accumulation range; disengaged for the flat (classic) shape.
  std::optional<InnerRange> inner;

  Statement() = default;
  Statement(std::string t, IndexExpr ix, Op o, ValueExpr v,
            std::optional<InnerRange> in = std::nullopt)
      : target(std::move(t)), index(ix), op(o), value(std::move(v)),
        inner(in) {}
};

/// A counted loop over [0, iterations) with a straight-line body.
struct LoopNest {
  std::string name;
  std::size_t iterations = 0;
  std::vector<Statement> body;
};

/// Result of the compiler analysis for one candidate array.
struct ArrayAnalysis {
  std::string array;
  bool is_reduction = false;  ///< all updates ⊕=, never read, single ⊕
  bool single_operator = true;
  Statement::Op op = Statement::Op::kPlusAssign;
  std::string reason;  ///< why recognition failed, for diagnostics
};

/// Whole-loop analysis.
struct LoopAnalysis {
  std::vector<ArrayAnalysis> arrays;
  /// No plain writes to shared arrays anywhere in the body — the paper's
  /// condition for local-write's iteration replication.
  bool iteration_replication_legal = true;
  /// True when every statement targets recognized reduction arrays.
  bool fully_reduction_parallel = true;

  [[nodiscard]] const ArrayAnalysis* find(const std::string& a) const {
    for (const auto& aa : arrays)
      if (aa.array == a) return &aa;
    return nullptr;
  }
};

/// Static recognition pass (no data needed).
[[nodiscard]] LoopAnalysis analyze(const LoopNest& loop);

/// Run-time bindings for the inspector: the contents of the index arrays
/// and (optionally) input value arrays named by the loop.
struct Bindings {
  std::map<std::string, std::vector<std::uint32_t>> index_arrays;
  std::map<std::string, std::vector<double>> value_arrays;
};

/// Inspector: evaluate the subscripts of all updates to `target` and build
/// the ReductionInput the scheme library consumes. Requires `target` to be
/// recognized as a reduction by `analyze` (checked). `dim` is the target
/// array's extent (subscripts are range-checked against it).
///
/// Statements with an InnerRange are expanded naively: outer iteration i
/// contributes one reference per inner index j in [lo(i), hi(i)) — the
/// O(N·W) / O(N²) lowering the simplification pass exists to avoid.
/// ValueExpr::kArrayRead values (other than the target itself, which is
/// never extractable) must be bound in `bindings.value_arrays` and are
/// evaluated per (i, j).
[[nodiscard]] ReductionInput extract_input(const LoopNest& loop,
                                           const LoopAnalysis& analysis,
                                           const std::string& target,
                                           std::size_t dim,
                                           const Bindings& bindings);

}  // namespace sapp::frontend
