// A miniature loop IR — the compiler-facing substrate.
//
// The paper's pipeline starts in the compiler: "when a reduction operation
// is recognized or specifically called by the program, the compiler will
// possibly decide between the 'standard' parallel equivalent or 'histogram
// reductions'" (§2), with the recognition rule given in §4's footnote: a
// reduction variable is updated only through `x = x ⊕ exp` where ⊕ is
// associative and commutative and `x` does not occur in `exp` or anywhere
// else in the loop.
//
// This IR captures exactly the loop shape those rules talk about: a
// counted loop whose body is a list of array-update statements with
// (possibly indirect) subscripts. `analyze()` performs the recognition and
// legality analysis; `extract_input()` runs the subscript expressions as
// an inspector and emits the AccessPattern the rest of the library
// consumes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "reductions/access_pattern.hpp"

namespace sapp::frontend {

/// Subscript expression of an array access, evaluated per iteration i.
struct IndexExpr {
  enum class Kind : std::uint8_t {
    kLoopIndex,   ///< i + offset
    kConstant,    ///< offset
    kIndirect,    ///< index_array[i + offset]  (the irregular case)
  };
  Kind kind = Kind::kLoopIndex;
  std::int64_t offset = 0;
  std::string index_array;  ///< for kIndirect

  static IndexExpr loop_index(std::int64_t off = 0) {
    return {Kind::kLoopIndex, off, {}};
  }
  static IndexExpr constant(std::int64_t c) {
    return {Kind::kConstant, c, {}};
  }
  static IndexExpr indirect(std::string array, std::int64_t off = 0) {
    return {Kind::kIndirect, off, std::move(array)};
  }
};

/// Right-hand side of an update, as much structure as the analysis needs.
struct ValueExpr {
  enum class Kind : std::uint8_t {
    kInputElement,  ///< value_array[i] — pure per-iteration input
    kComputed,      ///< pure function of i (models arbitrary arithmetic)
    kArrayRead,     ///< reads array[index] — poisons reduction recognition
  };
  Kind kind = Kind::kComputed;
  std::string array;  ///< for kInputElement / kArrayRead
  IndexExpr index;    ///< for kArrayRead

  static ValueExpr input(std::string value_array) {
    return {Kind::kInputElement, std::move(value_array), {}};
  }
  static ValueExpr computed() { return {Kind::kComputed, {}, {}}; }
  static ValueExpr array_read(std::string array, IndexExpr idx) {
    return {Kind::kArrayRead, std::move(array), idx};
  }
};

/// One statement: `target[index] op= value`.
struct Statement {
  enum class Op : std::uint8_t {
    kAssign,     ///< = (plain write; never a reduction)
    kPlusAssign, ///< += (associative & commutative)
    kMulAssign,  ///< *=
    kMaxAssign,  ///< = max(x, e)
  };
  std::string target;
  IndexExpr index;
  Op op = Op::kPlusAssign;
  ValueExpr value;
};

/// A counted loop over [0, iterations) with a straight-line body.
struct LoopNest {
  std::string name;
  std::size_t iterations = 0;
  std::vector<Statement> body;
};

/// Result of the compiler analysis for one candidate array.
struct ArrayAnalysis {
  std::string array;
  bool is_reduction = false;  ///< all updates ⊕=, never read, single ⊕
  bool single_operator = true;
  Statement::Op op = Statement::Op::kPlusAssign;
  std::string reason;  ///< why recognition failed, for diagnostics
};

/// Whole-loop analysis.
struct LoopAnalysis {
  std::vector<ArrayAnalysis> arrays;
  /// No plain writes to shared arrays anywhere in the body — the paper's
  /// condition for local-write's iteration replication.
  bool iteration_replication_legal = true;
  /// True when every statement targets recognized reduction arrays.
  bool fully_reduction_parallel = true;

  [[nodiscard]] const ArrayAnalysis* find(const std::string& a) const {
    for (const auto& aa : arrays)
      if (aa.array == a) return &aa;
    return nullptr;
  }
};

/// Static recognition pass (no data needed).
[[nodiscard]] LoopAnalysis analyze(const LoopNest& loop);

/// Run-time bindings for the inspector: the contents of the index arrays
/// and (optionally) input value arrays named by the loop.
struct Bindings {
  std::map<std::string, std::vector<std::uint32_t>> index_arrays;
  std::map<std::string, std::vector<double>> value_arrays;
};

/// Inspector: evaluate the subscripts of all updates to `target` and build
/// the ReductionInput the scheme library consumes. Requires `target` to be
/// recognized as a reduction by `analyze` (checked). `dim` is the target
/// array's extent (subscripts are range-checked against it).
[[nodiscard]] ReductionInput extract_input(const LoopNest& loop,
                                           const LoopAnalysis& analysis,
                                           const std::string& target,
                                           std::size_t dim,
                                           const Bindings& bindings);

}  // namespace sapp::frontend
