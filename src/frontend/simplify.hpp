// Reduction simplification — the frontend optimization pass.
//
// The adaptive runtime can only pick the fastest way to *run* a reduction;
// it can never remove work the compiler could have deleted. In the spirit
// of Narmour et al. ("Maximal Simplification of Polyhedral Reductions")
// and Yang et al. ("Simplifying Dependent Reductions in the Polyhedral
// Model"), this pass walks a LoopNest, finds reduction sites whose nested
// accumulation ranges overlap between adjacent outer iterations, and
// rewrites them to forms that exploit the reuse:
//
//   prefix shape    out[i] ⊕= in[j]  for j in [b, i+d)      (fixed lo edge)
//     → running scan: one ⊕ per new element, O(N) total.
//   sliding window  out[i] ⊕= in[j]  for j in [i+a, i+a+W)  (both edges move)
//     → add–subtract (⊕ = +, the invertible case): enter/leave edge
//       updates, O(N) total; or
//     → monotonic deque (⊕ = min/max): amortized O(1) per slide.
//
// Everything the recognizer cannot prove regular falls back *untouched* to
// the adaptive runtime (docs/simplify.md spells out the contract): the
// site is lowered through extract_input and submitted like any irregular
// reduction, with the rejection reason kept for diagnostics. A simplified
// site bypasses the runtime entirely — no characterization, no site-table
// entry, no decision cache traffic.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "frontend/loop_ir.hpp"
#include "reductions/scheme.hpp"

namespace sapp {
class Runtime;
}

namespace sapp::frontend {

/// The rewrite a recognized site is executed with.
enum class SimplifiedForm : std::uint8_t {
  kNone,            ///< not simplified — adaptive-runtime territory
  kPrefixScan,      ///< running scan over a growing range (any ⊕)
  kSlidingSum,      ///< add–subtract over a moving window (⊕ = +)
  kSlidingExtremum, ///< monotonic deque over a moving window (⊕ = min/max)
};

[[nodiscard]] constexpr const char* to_string(SimplifiedForm f) {
  switch (f) {
    case SimplifiedForm::kNone: return "none";
    case SimplifiedForm::kPrefixScan: return "prefix-scan";
    case SimplifiedForm::kSlidingSum: return "sliding-add-sub";
    case SimplifiedForm::kSlidingExtremum: return "sliding-deque";
  }
  return "?";
}

/// Outcome of the recognition+legality analysis for one target array.
struct SiteSimplification {
  std::string array;
  SimplifiedForm form = SimplifiedForm::kNone;
  Statement::Op op = Statement::Op::kPlusAssign;
  /// Window width W for the sliding forms (hi.offset - lo.offset).
  std::int64_t window = 0;
  /// Why the site was left to the runtime (empty when simplified). For
  /// sites `analyze` already rejected this carries the analyze reason.
  std::string reason;
  /// The single recognized update statement (null when form == kNone).
  const Statement* stmt = nullptr;
};

/// Whole-loop simplification analysis (one entry per target array of the
/// loop, in the order LoopAnalysis reports them).
struct SimplifyAnalysis {
  std::vector<SiteSimplification> sites;

  [[nodiscard]] const SiteSimplification* find(const std::string& a) const {
    for (const auto& s : sites)
      if (s.array == a) return &s;
    return nullptr;
  }
};

/// Recognition + legality. Pure static analysis: no data is consulted, so
/// the verdict holds for every binding. `analysis` must come from
/// `analyze(loop)`.
[[nodiscard]] SimplifyAnalysis analyze_simplify(const LoopNest& loop,
                                                const LoopAnalysis& analysis);

/// Execute one simplified site, accumulating into `out` (size `dim`).
/// Requires `site.form != kNone` (checked). All array reads are
/// range-checked against the bound arrays and `dim`.
void execute_simplified(const LoopNest& loop, const SiteSimplification& site,
                        std::size_t dim, const Bindings& bindings,
                        std::span<double> out);

/// Reference interpreter: run every statement of `loop` that targets
/// `target` naively (O(total contributions)), in iteration/body order —
/// the ground truth the simplified forms and the runtime lowering are
/// differenced against, and the serial fallback for loops the runtime
/// cannot execute. A contribution is `value * iteration_scale(i, 0)`,
/// matching the extract_input → scheme-library semantics; kArrayRead of
/// the target itself reads the current contents of `out`.
void interpret_loop(const LoopNest& loop, const std::string& target,
                    std::size_t dim, const Bindings& bindings,
                    std::span<double> out);

/// Outcome of a front-end submission (see submit_simplified).
struct FrontendResult {
  /// True when the rewritten O(N) form ran and the runtime was bypassed.
  bool simplified = false;
  SimplifiedForm form = SimplifiedForm::kNone;
  /// Why the site fell back (empty when simplified).
  std::string fallback_reason;
  /// Set when the adaptive runtime executed the site (fallback, ⊕ = +).
  bool used_runtime = false;
  /// The runtime's scheme result when used_runtime (zeroed otherwise).
  SchemeResult runtime_result;
};

/// Submit one reduction target of `loop` through the simplification pass:
///   * recognized sites run the rewritten O(N) form directly and never
///     touch `rt` (no characterization, no site table entry);
///   * unrecognized + reductions are lowered with extract_input and
///     submitted to the adaptive runtime under site id
///     "<loop.name>/<target>" (the untouched-fallback contract);
///   * everything else (non-reductions, non-sum rejected sites — the
///     runtime's schemes implement the paper's ⊕ = +) runs through the
///     sequential interpreter.
FrontendResult submit_simplified(Runtime& rt, const LoopNest& loop,
                                 const std::string& target, std::size_t dim,
                                 const Bindings& bindings,
                                 std::span<double> out);

}  // namespace sapp::frontend
