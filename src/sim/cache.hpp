// Set-associative cache models.
//
// The node's L2 (write-back, LRU) holds line state and data — including the
// non-coherent REDUCTION state PCLR adds (§5.1.1). The L1 is a tag-only
// latency filter kept inclusive by back-invalidation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/assert.hpp"
#include "sim/sim_types.hpp"

namespace sapp::sim {

/// Line states. Plain lines follow an MSI-flavoured protocol directed by
/// the home directory; kReduction lines are non-coherent private
/// accumulation storage (PCLR).
enum class LineState : std::uint8_t {
  kInvalid,
  kShared,     ///< clean, possibly cached elsewhere
  kDirty,      ///< modified, exclusive
  kReduction,  ///< PCLR reduction state (non-coherent partial results)
};

/// One cache line frame. `data` carries real values only for lines where
/// the simulation tracks arithmetic (reduction lines); plain lines use the
/// frame for state/tag only. Sized for the largest supported line
/// (128 B = 16 doubles).
struct CacheLine {
  static constexpr unsigned kMaxElems = 16;

  Addr line_addr = ~Addr{0};
  LineState state = LineState::kInvalid;
  std::uint64_t lru = 0;
  std::array<double, kMaxElems> data{};

  [[nodiscard]] bool valid() const { return state != LineState::kInvalid; }
};

/// Physically indexed set-associative cache with true-LRU replacement.
class Cache {
 public:
  Cache(std::size_t bytes, unsigned assoc, unsigned line_bytes)
      : assoc_(assoc),
        line_bytes_(line_bytes),
        sets_(bytes / (static_cast<std::size_t>(assoc) * line_bytes)),
        lines_(sets_ * assoc) {
    SAPP_REQUIRE(sets_ > 0 && (sets_ & (sets_ - 1)) == 0,
                 "set count must be a power of two");
  }

  [[nodiscard]] Addr line_of(Addr a) const { return a & ~Addr{line_bytes_ - 1}; }

  /// Set index with the page number hashed in. This models the physical
  /// page-coloring a real OS applies: without it, arrays allocated at
  /// large power-of-two virtual strides (e.g. the per-processor private
  /// arrays) would alias into the same sets and thrash pathologically.
  [[nodiscard]] std::size_t set_of(Addr line_addr) const {
    const Addr line_no = line_addr / line_bytes_;
    // Multiplicative mix of the page number, taking the *high* half of the
    // product so that page strides of any power of two still permute the
    // colors (low product bits are zero for such strides).
    const Addr color = (line_addr >> 12) * 0x9E3779B97F4A7C15ull >> 32;
    return (line_no ^ color) & (sets_ - 1);
  }

  /// Find a valid frame holding `line_addr`; bumps LRU on hit.
  [[nodiscard]] CacheLine* find(Addr line_addr) {
    auto* base = &lines_[set_of(line_addr) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
      CacheLine& l = base[w];
      if (l.valid() && l.line_addr == line_addr) {
        l.lru = ++tick_;
        return &l;
      }
    }
    return nullptr;
  }

  /// Allocate a frame for `line_addr` (must not be present), evicting the
  /// LRU victim. Returns the victim's previous content (state kInvalid if
  /// the frame was free). The new line is installed with `st` and zeroed
  /// data.
  CacheLine evict_and_install(Addr line_addr, LineState st) {
    auto* base = &lines_[set_of(line_addr) * assoc_];
    CacheLine* victim = base;
    for (unsigned w = 1; w < assoc_; ++w) {
      CacheLine& l = base[w];
      if (!l.valid()) {
        victim = &l;
        break;
      }
      if (!victim->valid()) break;
      if (l.lru < victim->lru) victim = &l;
    }
    CacheLine out = *victim;
    victim->line_addr = line_addr;
    victim->state = st;
    victim->lru = ++tick_;
    victim->data.fill(0.0);
    return out;
  }

  /// Drop `line_addr` if present; returns its content before invalidation.
  CacheLine invalidate(Addr line_addr) {
    auto* base = &lines_[set_of(line_addr) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
      CacheLine& l = base[w];
      if (l.valid() && l.line_addr == line_addr) {
        CacheLine out = l;
        l.state = LineState::kInvalid;
        return out;
      }
    }
    return {};
  }

  /// Visit every valid line (flush sweeps); `fn` may mutate the line.
  void for_each(const std::function<void(CacheLine&)>& fn) {
    for (auto& l : lines_)
      if (l.valid()) fn(l);
  }

  [[nodiscard]] std::size_t total_frames() const { return lines_.size(); }
  [[nodiscard]] unsigned assoc() const { return assoc_; }

 private:
  unsigned assoc_;
  unsigned line_bytes_;
  std::size_t sets_;
  std::uint64_t tick_ = 0;
  std::vector<CacheLine> lines_;
};

}  // namespace sapp::sim
