#include "sim/comm.hpp"

#include <algorithm>

namespace sapp::sim {

double CommFabric::transfer(unsigned src, unsigned dst, std::uint64_t bytes,
                            double ready_s) {
  SAPP_REQUIRE(src < nodes() && dst < nodes(), "endpoint out of range");
  if (src == dst) return ready_s;  // never leaves the node
  const double occ = occupancy_s(bytes);
  // The message starts serializing when the payload is ready AND both the
  // source send port and the destination receive port are free; it holds
  // both for the serialization time. This is the port-only contention
  // granularity of the intra-node simulator, lifted to the cluster.
  const double start =
      std::max({ready_s, send_busy_[src], recv_busy_[dst]});
  send_busy_[src] = start + occ;
  recv_busy_[dst] = start + occ;
  ++messages_;
  bytes_ += bytes;
  return start + occ + link_.latency_s;
}

}  // namespace sapp::sim
