// Inter-node communication fabric for the cluster-level machine model.
//
// A deterministic, bandwidth/latency-parameterized link model in the style
// of comp+comm device simulators: every node owns one send port and one
// receive port, each a monotone busy-until timeline. A transfer reserves
// both ports for its serialization time (per-message software overhead +
// bytes / bandwidth) and arrives one wire latency after the serialization
// starts clears. Contention is modeled at the source and destination ports
// only — the same granularity as the intra-node simulator (sim/machine.hpp),
// whose network models contention "only at the source and destination
// ports". The network core is contentionless.
//
// Time is in seconds (double): the cluster model prices node-local compute
// through the calibrated analytic MachineCoeffs surface, which is also in
// (nano)seconds, so no cycle clock is needed at this level. All arithmetic
// is pure and input-ordered, so a fabric replay is bitwise reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace sapp::sim {

/// One point-to-point link class: every node pair is connected by a link
/// with these parameters (a flat network; topology-aware fabrics slot in
/// behind the same transfer() interface).
struct LinkConfig {
  double latency_s = 5e-6;        ///< wire flight time per message
  double bytes_per_s = 12.5e9;    ///< serialization bandwidth (100 Gbit/s)
  double per_message_s = 2e-6;    ///< software send/recv overhead per message

  /// Named presets used by the `distributed` experiment sweep.
  [[nodiscard]] static LinkConfig ethernet_10g() {
    return {25e-6, 1.25e9, 10e-6};
  }
  [[nodiscard]] static LinkConfig hpc_100g() { return {5e-6, 12.5e9, 2e-6}; }
  [[nodiscard]] static LinkConfig fabric_800g() { return {2e-6, 100e9, 1e-6}; }
};

/// Port-contended flat fabric over `nodes` endpoints.
class CommFabric {
 public:
  CommFabric(unsigned nodes, LinkConfig link)
      : link_(link), send_busy_(nodes, 0.0), recv_busy_(nodes, 0.0) {
    SAPP_REQUIRE(nodes >= 1, "fabric needs at least one node");
    SAPP_REQUIRE(link.bytes_per_s > 0.0, "link bandwidth must be positive");
  }

  /// Schedule a transfer of `bytes` from `src` to `dst`, whose payload is
  /// ready at `ready_s`. Returns the arrival time at `dst`. A node-local
  /// transfer (src == dst) is free: the data never leaves the node.
  double transfer(unsigned src, unsigned dst, std::uint64_t bytes,
                  double ready_s);

  [[nodiscard]] unsigned nodes() const {
    return static_cast<unsigned>(send_busy_.size());
  }
  [[nodiscard]] const LinkConfig& link() const { return link_; }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_on_wire() const { return bytes_; }
  /// Serialization time of one message of `bytes` (no queueing).
  [[nodiscard]] double occupancy_s(std::uint64_t bytes) const {
    return link_.per_message_s +
           static_cast<double>(bytes) / link_.bytes_per_s;
  }

 private:
  LinkConfig link_;
  std::vector<double> send_busy_;  ///< source-port timelines
  std::vector<double> recv_busy_;  ///< destination-port timelines
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace sapp::sim
