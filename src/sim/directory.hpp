// Directory state (DASH-like, §5/§6.1).
//
// Each node's directory controller tracks, per cached line of the shared
// space, whether memory is current (Uncached), which nodes hold clean
// copies (Shared) or which single node holds it dirty (Exclusive). Pages
// are assigned to homes first-touch ("Pages of shared data are allocated
// in the memory module of the first processor that accesses them").
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/assert.hpp"
#include "sim/sim_types.hpp"

namespace sapp::sim {

enum class DirState : std::uint8_t { kUncached, kShared, kExclusive };

struct DirEntry {
  DirState state = DirState::kUncached;
  std::uint32_t sharers = 0;  ///< bitmask over nodes (<= 32)
  std::uint8_t owner = 0;     ///< valid when kExclusive

  [[nodiscard]] unsigned sharer_count() const {
    return static_cast<unsigned>(__builtin_popcount(sharers));
  }
};

/// Global directory + page-home map (logically distributed over the
/// nodes; the home of a line is the home of its page).
class Directory {
 public:
  explicit Directory(std::size_t page_bytes) : page_bytes_(page_bytes) {}

  /// Home node of `addr`, assigning first-touch to `toucher` on the first
  /// query for the page.
  [[nodiscard]] unsigned home_of(Addr addr, unsigned toucher) {
    const Addr page = addr & ~(page_bytes_ - 1);
    auto [it, inserted] = page_home_.try_emplace(page, toucher);
    (void)inserted;
    return it->second;
  }

  /// Entry for a line (created Uncached on first use).
  [[nodiscard]] DirEntry& entry(Addr line_addr) {
    return entries_[line_addr];
  }

  /// Entry if it exists (no creation) — for tests.
  [[nodiscard]] const DirEntry* peek(Addr line_addr) const {
    auto it = entries_.find(line_addr);
    return it == entries_.end() ? nullptr : &it->second;
  }

  void clear_line(Addr line_addr) { entries_.erase(line_addr); }

 private:
  std::size_t page_bytes_;
  std::unordered_map<Addr, unsigned> page_home_;
  std::unordered_map<Addr, DirEntry> entries_;
};

}  // namespace sapp::sim
