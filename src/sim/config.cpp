#include "sim/config.hpp"

#include <sstream>

namespace sapp::sim {

std::string MachineConfig::table1() const {
  std::ostringstream os;
  os << "Simulated CC-NUMA (Table 1):\n"
     << "  nodes: " << nodes << ", 4-issue dynamic @1 GHz, IPC "
     << effective_ipc << ", pending ld/st " << pending_loads << "/"
     << pending_stores << ", hide window " << hide_cycles << " cy\n"
     << "  L1 " << l1_bytes / 1024 << " KB " << l1_assoc << "-way, L2 "
     << l2_bytes / 1024 << " KB " << l2_assoc << "-way, " << line_bytes
     << " B lines, hit " << l1_hit_cycles << "/" << l2_hit_cycles
     << " cy\n"
     << "  memory round trip local/2-hop " << local_round_trip << "/"
     << remote_round_trip << " cy, dirty recall +" << recall_extra
     << " cy\n"
     << "  directory occupancy " << dir_occupancy
     << " cy (Flex x" << flex_occupancy_mult << "), FP add II "
     << fp_initiation << " cy latency " << fp_latency << " cy ("
     << fp_units << " unit(s), 1/3 clock)\n"
     << "  PCLR neutral fill " << pclr_fill_cycles << " cy";
  return os.str();
}

}  // namespace sapp::sim
