// Simulated machine configuration — Table 1 of the paper.
//
//   Processor: 4-issue dynamic, 1 GHz, int/fp/ld-st FUs 4/2/2, window 64,
//   pending ld/st 8/16, branch penalty 4, 64+64 rename regs.
//   Memory: L1 32 KB 2-way 64 B 2 cycles; L2 512 KB 4-way 64 B 10 cycles;
//   local memory round trip 104 cycles; 2-hop round trip 297 cycles.
//   Directory controller + FP add unit clocked at 1/3 of the processor;
//   the FP unit is fully pipelined (one add every 3 processor cycles,
//   latency 2 controller cycles = 6 processor cycles).
//
// The processor model is cycle-approximate: bounded outstanding misses
// (the paper's pending-load/store limits) plus a latency-hiding window
// standing in for the 64-entry instruction window. DESIGN.md §2 documents
// this substitution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sapp::sim {

/// Which code version the trace generator emits (§6.2).
enum class Mode {
  kSeq,   ///< sequential execution on one processor, all data local
  kSw,    ///< software-only: replicated private arrays + merge (baseline)
  kHw,    ///< PCLR with hardwired directory controller
  kFlex,  ///< PCLR with programmable (MAGIC-like) directory controller
};

[[nodiscard]] constexpr const char* to_string(Mode m) {
  switch (m) {
    case Mode::kSeq: return "Seq";
    case Mode::kSw: return "Sw";
    case Mode::kHw: return "Hw";
    case Mode::kFlex: return "Flex";
  }
  return "?";
}

struct MachineConfig {
  unsigned nodes = 16;

  // --- Processor (Table 1).
  unsigned issue_width = 4;
  double effective_ipc = 1.4;     ///< sustained IPC on irregular loop bodies
  unsigned pending_loads = 8;
  unsigned pending_stores = 16;
  /// Cycles of a miss the out-of-order window can hide (≈ window size /
  /// issue width × dependent-chain slack).
  unsigned hide_cycles = 24;
  /// Software barrier cost on the CC-NUMA (per barrier, grows with log P).
  unsigned barrier_base_cycles = 250;

  // --- Caches (Table 1). L1 is a tag-only latency filter; data and line
  // state live in the (inclusive) L2.
  std::size_t l1_bytes = 32 * 1024;
  unsigned l1_assoc = 2;
  std::size_t l2_bytes = 512 * 1024;
  unsigned l2_assoc = 4;
  unsigned line_bytes = 64;
  unsigned l1_hit_cycles = 2;
  unsigned l2_hit_cycles = 12;  ///< L1 miss + L2 hit (2 + 10)

  // --- Memory system (Table 1).
  unsigned local_round_trip = 104;
  unsigned remote_round_trip = 297;
  unsigned recall_extra = 160;     ///< extra for 3-hop dirty recall
  unsigned inval_base = 30;        ///< invalidation overhead on upgrades
  unsigned inval_per_sharer = 8;
  std::size_t page_bytes = 4096;

  // --- Directory controller occupancy (per transaction, processor
  // cycles). The controller runs at 1/3 of the processor clock; a
  // transaction takes ~4 controller cycles.
  unsigned dir_occupancy = 12;
  /// Programmable (Flex) controller: occupancy multiplier vs. hardwired
  /// (MAGIC-style firmware instead of hardwired datapath).
  double flex_occupancy_mult = 6.0;
  unsigned mem_occupancy = 20;     ///< DRAM access occupancy at the home

  // --- PCLR (§5).
  /// Reduction-load miss serviced from the local node with a line of
  /// neutral elements: no DRAM fetch, no network.
  unsigned pclr_fill_cycles = 30;
  /// Fully pipelined FP add unit at 1/3 clock: initiation interval 3
  /// processor cycles per element, latency 6.
  unsigned fp_initiation = 3;
  unsigned fp_latency = 6;
  unsigned fp_units = 1;           ///< ablation: more combine units
  /// Processor-side cost of scanning one cache line frame during
  /// CacheFlush(), and of sending one reduction write-back.
  unsigned flush_scan_per_line = 1;
  unsigned flush_send_cycles = 4;
  unsigned config_hw_cycles = 120; ///< ConfigHardware() system call
  unsigned preempt_cycles = 2000;  ///< OS context-switch overhead (§5.1.4)

  /// §5.1.5: identify reduction data by shadow addresses instead of
  /// special load/store instructions — no processor, cache or protocol
  /// changes; the directory recognizes accesses to non-existent memory.
  bool shadow_addresses = false;

  /// The reduction operation the directory controllers are configured for
  /// (§5.1.4: one operation type per parallel section; the controller is
  /// programmed by ConfigHardware).
  enum class CombineOp : std::uint8_t { kAdd, kMax, kMin };
  CombineOp combine_op = CombineOp::kAdd;

  /// Include loads of the input streams in the trace (the index lists /
  /// pair lists each iteration reads; volume comes from
  /// Workload::input_bytes_per_iter). Disable for microscopic protocol
  /// tests.
  bool metadata_loads = true;

  /// Where the pages of the shared read-only input arrays live.
  enum class InputPlacement {
    kReaderLocal,  ///< first touch by the loop's block owner (parallel init)
    kMaster,       ///< first touch by node 0 (master read the input file)
    kRoundRobin,   ///< page-interleaved across nodes (OS default for shared)
  };
  InputPlacement input_placement = InputPlacement::kRoundRobin;

  /// Table 1 rendered for harness headers.
  [[nodiscard]] std::string table1() const;

  /// The paper's configuration (16 nodes).
  [[nodiscard]] static MachineConfig paper(unsigned nodes = 16) {
    MachineConfig c;
    c.nodes = nodes;
    return c;
  }

  [[nodiscard]] unsigned elems_per_line() const {
    return line_bytes / sizeof(double);
  }
};

}  // namespace sapp::sim
