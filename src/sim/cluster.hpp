// Cluster-level machine model: N nodes, each summarized by the calibrated
// analytic per-node cost surface (core/cost_model.hpp MachineCoeffs — the
// same surface the shared-memory decision model prices schemes with),
// connected by the port-contended link fabric of sim/comm.hpp.
//
// On top of the model, the three distributed reduction strategies are
// implemented as deterministic simulated task graphs:
//
//   combining    — message-combining: each node accumulates a *compact*
//                  private partial (priced through the hash-scheme surface),
//                  then the sparse (index,value) partials combine up a
//                  binomial tree, unioning as they go. N-1 messages,
//                  payload ~ touched elements × 12 B, result at node 0.
//   replication  — full replication: each node accumulates a full dim-sized
//                  private replica (priced through the rep-scheme surface),
//                  then a ring all-reduce (N-1 reduce-scatter steps +
//                  N-1 all-gather steps) leaves the complete result on
//                  every node. 2·N·(N-1) messages of dim/N dense chunks —
//                  bandwidth-optimal on large dense reductions.
//   owner        — owner-computes: elements are block-partitioned across
//                  nodes; each node scans its iterations, applies local
//                  contributions and shuffles remote ones (12 B per
//                  reference) directly to their owners, which apply them.
//                  One all-to-all hop, N·(N-1) messages, result distributed
//                  across the owners.
//
// The simulation is pure and bitwise run-to-run deterministic: task issue
// order is fixed, time is double seconds, and no wall clock is read. It can
// optionally *track the reduction values* through the task graphs (the same
// way sim::Machine tracks w_memory through PCLR combines) so correctness is
// checked against the sequential reference, not assumed.
//
// docs/distributed.md walks through the model and the strategy-crossover
// frontier; src/core/distributed_cost.hpp packages it for the decision
// machinery.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/cost_model.hpp"
#include "reductions/access_pattern.hpp"
#include "sim/comm.hpp"
#include "sim/config.hpp"

namespace sapp::sim {

/// The combine operation, shared with the intra-node simulator (§5.1.4:
/// one operation per parallel section).
using CombineOp = MachineConfig::CombineOp;

[[nodiscard]] double neutral_of(CombineOp op);

/// The distributed reduction strategies the cluster model prices.
enum class DistStrategy {
  kCombining,     ///< message-combining tree of sparse partials
  kReplication,   ///< full replication + ring all-reduce
  kOwnerComputes, ///< shuffle contributions to block owners
};

[[nodiscard]] constexpr std::string_view to_string(DistStrategy s) {
  switch (s) {
    case DistStrategy::kCombining: return "combining";
    case DistStrategy::kReplication: return "replication";
    case DistStrategy::kOwnerComputes: return "owner-computes";
  }
  return "?";
}

[[nodiscard]] std::span<const DistStrategy> all_dist_strategies();

/// The simulated cluster: node count, per-node core count (the intra-node
/// cost surface is evaluated at this thread count), link parameters, and
/// the calibrated (or default) per-node machine coefficients.
struct ClusterConfig {
  unsigned nodes = 4;
  unsigned cores_per_node = 8;
  LinkConfig link;
  MachineCoeffs coeffs = MachineCoeffs::defaults();
};

/// Bytes of one sparse contribution on the wire (4 B element index +
/// 8 B value) — combining payloads and owner-computes shuffles.
inline constexpr std::uint64_t kEntryBytes = 12;
/// Bytes of one dense replica element (replication chunks).
inline constexpr std::uint64_t kElemBytes = sizeof(double);

/// Timing-only description of one reduction distributed over node slices
/// (contiguous iteration blocks — the same block schedule the shared-memory
/// schemes use). Built exactly from a pattern (`slice_work`) or estimated
/// from aggregate shape parameters (`synth_work`).
struct DistWork {
  std::size_t dim = 0;
  unsigned body_flops = 0;
  std::size_t distinct_total = 0;  ///< distinct elements over all slices

  struct Slice {
    std::size_t iterations = 0;
    std::size_t refs = 0;
    std::size_t distinct = 0;  ///< distinct elements in this slice
  };
  std::vector<Slice> slices;  ///< size == nodes

  /// Row-major nodes×nodes: refs_to[src*nodes+dst] = references issued by
  /// src's iterations into elements owned by dst (owner-computes volume;
  /// the diagonal is the local fraction).
  std::vector<std::uint64_t> refs_to;

  [[nodiscard]] unsigned nodes() const {
    return static_cast<unsigned>(slices.size());
  }
};

/// Exact per-node slice statistics of `p` over `nodes` iteration blocks.
[[nodiscard]] DistWork slice_work(const AccessPattern& p, unsigned nodes);

/// Analytic estimate from aggregate shape parameters: uniform slices,
/// uniform ownership (refs spread evenly over owners), per-slice distinct
/// capped by the total. `sparsity` = distinct/dim in (0, 1].
[[nodiscard]] DistWork synth_work(std::size_t dim, std::size_t iterations,
                                  std::size_t refs, double sparsity,
                                  unsigned body_flops, unsigned nodes);

/// Block owner of element `elem` among `nodes` (blocks of ceil(dim/nodes)).
[[nodiscard]] unsigned owner_of(std::size_t elem, std::size_t dim,
                                unsigned nodes);

/// The PatternStats one node's slice is priced with (threads = cores).
[[nodiscard]] PatternStats node_stats(const DistWork& w, unsigned node,
                                      unsigned cores);

/// Local-phase (pre-exchange) cost of `node` under `strategy`, in seconds:
/// replication prices through predict_cost(kRep), combining through
/// predict_cost(kHash) plus the message-emit sweep, owner-computes pays an
/// inspector + pack/apply sweep. A single-node cluster is exactly this —
/// the intra-node model's cost with zero communication.
[[nodiscard]] double partial_cost(DistStrategy strategy, const DistWork& w,
                                  unsigned node, const ClusterConfig& cfg);

/// Result of one simulated distributed reduction.
struct DistRunResult {
  DistStrategy strategy{};
  double total_s = 0.0;     ///< completion of the last task
  double partial_s = 0.0;   ///< completion of the slowest local partial
  double exchange_s = 0.0;  ///< total_s - partial_s (comm + combine)
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;  ///< payload bytes that crossed the fabric
  /// Tracked reduction values (simulate_distributed only; untouched
  /// elements hold the op's neutral element). Empty for timing-only runs.
  std::vector<double> w;
};

/// Pure timing simulation of one strategy's task graph over `work`.
[[nodiscard]] DistRunResult simulate_strategy(const DistWork& work,
                                              DistStrategy strategy,
                                              const ClusterConfig& cfg);

/// Timing + value tracking: partition `in`'s iterations into cfg.nodes
/// contiguous blocks, run the strategy task graph, and fold the tracked
/// contribution values (values[j] * iteration_scale(i, body_flops), exactly
/// as run_sequential computes them) with `op` along the graph's combine
/// edges. Timing is identical to simulate_strategy on slice_work(in).
[[nodiscard]] DistRunResult simulate_distributed(const ReductionInput& in,
                                                 CombineOp op,
                                                 DistStrategy strategy,
                                                 const ClusterConfig& cfg);

}  // namespace sapp::sim
