// Basic simulator types: addresses, trace operations, counters.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace sapp::sim {

using Addr = std::uint64_t;
using Cycle = std::uint64_t;

/// Address-space layout of a simulated run. Regions are disjoint and
/// page-aligned; home assignment is first-touch within each region.
///
/// The shadow region implements §5.1.5: shadow addresses differ from the
/// original reduction array "in a known manner" (here: one high bit) and
/// map to no physical memory, so the directory recognizes accesses to them
/// as reduction accesses without special instructions, cache states or
/// protocol transactions.
struct AddressMap {
  static constexpr Addr kWBase = 0x0000'0000'0000ull;     ///< shared reduction array
  static constexpr Addr kPrivBase = 0x0100'0000'0000ull;  ///< Sw private arrays
  static constexpr Addr kPrivStride = 0x0000'1000'0000ull;///< per-processor
  static constexpr Addr kIdxBase = 0x0200'0000'0000ull;   ///< index stream
  static constexpr Addr kValBase = 0x0300'0000'0000ull;   ///< value stream
  static constexpr Addr kShadowBit = 0x8000'0000'0000ull; ///< §5.1.5 shadow arrays

  [[nodiscard]] static Addr w_elem(std::uint64_t e) {
    return kWBase + e * sizeof(double);
  }
  [[nodiscard]] static Addr priv_elem(unsigned proc, std::uint64_t e) {
    return kPrivBase + proc * kPrivStride + e * sizeof(double);
  }
  [[nodiscard]] static Addr idx_entry(std::uint64_t j) {
    return kIdxBase + j * sizeof(std::uint32_t);
  }
  [[nodiscard]] static Addr val_entry(std::uint64_t j) {
    return kValBase + j * sizeof(double);
  }
  [[nodiscard]] static Addr shadow_of(Addr a) { return a | kShadowBit; }
  [[nodiscard]] static Addr unshadow(Addr a) { return a & ~kShadowBit; }
  [[nodiscard]] static bool is_shadow(Addr a) {
    return (a & kShadowBit) != 0;
  }
  [[nodiscard]] static bool is_w(Addr a) {
    return unshadow(a) < kPrivBase;
  }
};

/// One trace operation produced by a cursor.
struct Op {
  enum class Kind : std::uint8_t {
    kCompute,   ///< advance the processor by `cycles`
    kLoad,      ///< plain load of `addr`
    kStore,     ///< plain store to `addr`
    kLoadRed,   ///< reduction load (PCLR special instruction)
    kStoreRed,  ///< reduction store; `value` is the accumulated delta
    kFlush,     ///< CacheFlush(): write all reduction lines back
    kConfig,    ///< ConfigHardware() system call
    kPreempt,   ///< OS preemption: flush reduction data + reprogram (§5.1.4)
    kBarrier,   ///< named phase barrier
    kEnd,       ///< trace exhausted
  };
  Kind kind = Kind::kEnd;
  Addr addr = 0;
  std::uint32_t cycles = 0;   ///< for kCompute
  double value = 0.0;         ///< for kStoreRed
  const char* label = "";     ///< for kBarrier (phase name)
};

/// Event counters of one simulated run.
struct Counters {
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t local_misses = 0;
  std::uint64_t remote_misses = 0;
  std::uint64_t recalls = 0;          ///< 3-hop dirty interventions
  std::uint64_t invalidations = 0;
  std::uint64_t writebacks_plain = 0;
  std::uint64_t red_fills = 0;        ///< neutral-element line fills
  std::uint64_t red_lines_displaced = 0;  ///< combined during the loop
  std::uint64_t red_lines_flushed = 0;    ///< combined at CacheFlush()
  std::uint64_t combines = 0;         ///< element combines at directories
};

/// Result of one simulated run.
struct RunResult {
  Cycle total_cycles = 0;
  /// Phase name -> cycles ("init", "loop", "merge"; PCLR's flush is
  /// reported under "merge" to match Fig. 6's buckets).
  std::map<std::string, Cycle> phase_cycles;
  Counters counters;

  [[nodiscard]] Cycle phase(const std::string& name) const {
    auto it = phase_cycles.find(name);
    return it == phase_cycles.end() ? 0 : it->second;
  }
};

}  // namespace sapp::sim
