// Trace code generation: the three code versions of §6.2 emitted from one
// reduction workload.
//
//   Seq  — sequential reduction on one processor (speedup denominator),
//   Sw   — software-only: initialize private arrays, accumulate privately,
//          merge into the shared array (the rep scheme's memory behaviour),
//   Hw   — PCLR: ConfigHardware(), reduction loads/stores on the shared
//          array, CacheFlush(), barrier (Fig. 5's code),
//   Flex — same trace as Hw; the machine charges the programmable
//          controller's higher occupancy.
//
// Every processor's stream is generated lazily (full-size Nbf is >100 M
// operations).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "workloads/workload.hpp"

namespace sapp::sim {

/// Build one cursor per node for `w` under `mode`. For kSeq the machine
/// must have exactly one node.
[[nodiscard]] std::vector<std::unique_ptr<TraceCursor>> make_reduction_cursors(
    const workloads::Workload& w, Mode mode, const MachineConfig& cfg);

/// Convenience: build a machine (1 node for kSeq, cfg.nodes otherwise),
/// run the workload, optionally copy the final shared-array memory into
/// `w_out` (PCLR value verification).
RunResult simulate_reduction(const workloads::Workload& w, Mode mode,
                             MachineConfig cfg,
                             std::span<double> w_out = {});

}  // namespace sapp::sim
