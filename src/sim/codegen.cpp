#include "sim/codegen.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"

namespace sapp::sim {

namespace {

/// Shared read-only view of the workload for all cursors of one run.
struct TraceContext {
  const workloads::Workload* w;
  Mode mode;
  MachineConfig cfg;
  unsigned nprocs;

  [[nodiscard]] unsigned input_loads_per_iter() const {
    unsigned bytes = w->input_bytes_per_iter;
    if (bytes == 0) {
      const auto& pat = w->input.pattern;
      const double refs_per_iter =
          pat.iterations()
              ? static_cast<double>(pat.num_refs()) /
                    static_cast<double>(pat.iterations())
              : 1.0;
      bytes = static_cast<unsigned>(4.0 * refs_per_iter);
    }
    return (bytes + 7) / 8;  // 8-byte load granularity
  }

  [[nodiscard]] std::uint32_t compute_cycles_per_iter(
      std::size_t refs_in_iter) const {
    const double instr = static_cast<double>(w->instr_per_iter);
    // 3 instructions per reduction reference (address arithmetic +
    // accumulate load/store) plus the input loads are modeled explicitly;
    // the remainder is the loop body, issued at the sustained IPC.
    const double body = instr - 3.0 * static_cast<double>(refs_in_iter) -
                        2.0 * input_loads_per_iter();
    const double cycles = body / cfg.effective_ipc;
    return cycles < 1.0 ? 1u : static_cast<std::uint32_t>(cycles);
  }
};

/// Lazily enumerates one processor's trace. A small explicit state machine:
/// stages advance Init -> Loop -> Merge/Flush -> End with per-stage indices.
class ReductionCursor final : public TraceCursor {
 public:
  ReductionCursor(std::shared_ptr<const TraceContext> ctx, unsigned proc)
      : ctx_(std::move(ctx)), proc_(proc) {
    const auto& pat = ctx_->w->input.pattern;
    const std::size_t n = pat.iterations();
    if (ctx_->mode == Mode::kSeq) {
      SAPP_REQUIRE(ctx_->nprocs == 1, "Seq runs on one node");
      iters_ = Range{0, n};
      elems_ = Range{0, 0};
      stage_ = Stage::kLoopIterStart;
    } else {
      iters_ = static_block(n, proc_, ctx_->nprocs);
      elems_ = static_block(pat.dim, proc_, ctx_->nprocs);
      stage_ = ctx_->mode == Mode::kSw ? Stage::kInit : Stage::kConfig;
    }
    cur_iter_ = iters_.begin;
  }

  Op next() override {
    const auto& pat = ctx_->w->input.pattern;
    const auto& ptr = pat.refs.row_ptr();
    const auto& idx = pat.refs.indices();

    switch (stage_) {
      // ---------- Hw/Flex: ConfigHardware() ----------
      case Stage::kConfig:
        stage_ = Stage::kInitBarrier;
        return Op{.kind = Op::Kind::kConfig};

      // ---------- Sw: initialize the private array ----------
      case Stage::kInit: {
        if (init_elem_ >= pat.dim) {
          stage_ = Stage::kInitBarrier;
          return next();
        }
        Op op{.kind = Op::Kind::kStore,
              .addr = AddressMap::priv_elem(proc_, init_elem_)};
        ++init_elem_;
        return op;
      }
      case Stage::kInitBarrier:
        stage_ = Stage::kLoopIterStart;
        return Op{.kind = Op::Kind::kBarrier, .label = "init"};

      // ---------- Loop over my block of iterations ----------
      case Stage::kLoopIterStart: {
        if (cur_iter_ >= iters_.end) {
          stage_ = Stage::kLoopBarrier;
          return next();
        }
        cur_ref_ = ptr[cur_iter_];
        ref_step_ = 0;
        input_remaining_ =
            ctx_->cfg.metadata_loads ? ctx_->input_loads_per_iter() : 0;
        iter_scale_ = iteration_scale(cur_iter_, pat.body_flops);
        stage_ = Stage::kLoopInput;
        const std::size_t refs = ptr[cur_iter_ + 1] - ptr[cur_iter_];
        return Op{.kind = Op::Kind::kCompute,
                  .cycles = ctx_->compute_cycles_per_iter(refs)};
      }
      case Stage::kLoopInput: {
        // Stream this iteration's slice of the input lists.
        if (input_remaining_ == 0) {
          stage_ = Stage::kLoopRef;
          return next();
        }
        --input_remaining_;
        const Addr a = AddressMap::kIdxBase +
                       (cur_iter_ * ctx_->input_loads_per_iter() +
                        input_remaining_) *
                           8;
        return Op{.kind = Op::Kind::kLoad, .addr = a};
      }
      case Stage::kLoopRef: {
        if (cur_ref_ >= ptr[cur_iter_ + 1]) {
          ++cur_iter_;
          stage_ = Stage::kLoopIterStart;
          return next();
        }
        const std::uint32_t e = idx[cur_ref_];
        const Op op = loop_ref_op(e);
        if (ref_step_ > last_ref_step()) {
          ref_step_ = 0;
          ++cur_ref_;
        }
        return op;
      }
      case Stage::kLoopBarrier:
        stage_ = ctx_->mode == Mode::kSw    ? Stage::kMergeElem
                 : ctx_->mode == Mode::kSeq ? Stage::kDone
                                            : Stage::kFlush;
        return Op{.kind = Op::Kind::kBarrier, .label = "loop"};

      // ---------- Sw merge: fold P partials into the shared array -------
      case Stage::kMergeElem: {
        if (merge_elem_ == 0 && merge_q_ == 0) merge_elem_ = elems_.begin;
        if (merge_elem_ >= elems_.end) {
          stage_ = Stage::kMergeBarrier;
          return next();
        }
        // Sequence per element: load w, load P partials, add, store w.
        if (merge_q_ == 0) {
          ++merge_q_;
          return Op{.kind = Op::Kind::kLoad,
                    .addr = AddressMap::w_elem(merge_elem_)};
        }
        if (merge_q_ <= ctx_->nprocs) {
          const unsigned q = merge_q_ - 1;
          ++merge_q_;
          return Op{.kind = Op::Kind::kLoad,
                    .addr = AddressMap::priv_elem(q, merge_elem_)};
        }
        if (merge_q_ == ctx_->nprocs + 1) {
          ++merge_q_;
          // Folding P partials is a dependent FP-add chain: ~3 cycles per
          // add that no amount of issue width hides.
          return Op{.kind = Op::Kind::kCompute,
                    .cycles = std::max(1u, 3 * ctx_->nprocs)};
        }
        Op op{.kind = Op::Kind::kStore,
              .addr = AddressMap::w_elem(merge_elem_)};
        ++merge_elem_;
        merge_q_ = 0;
        if (merge_elem_ >= elems_.end) stage_ = Stage::kMergeBarrier;
        return op;
      }
      case Stage::kMergeBarrier:
        stage_ = Stage::kDone;
        return Op{.kind = Op::Kind::kBarrier, .label = "merge"};

      // ---------- PCLR flush ----------
      case Stage::kFlush:
        stage_ = Stage::kFlushBarrier;
        return Op{.kind = Op::Kind::kFlush};
      case Stage::kFlushBarrier:
        stage_ = Stage::kDone;
        return Op{.kind = Op::Kind::kBarrier, .label = "merge"};

      case Stage::kDone:
        return Op{};  // kEnd
    }
    return Op{};
  }

 private:
  enum class Stage {
    kConfig,
    kInit,
    kInitBarrier,
    kLoopIterStart,
    kLoopInput,
    kLoopRef,
    kLoopBarrier,
    kMergeElem,
    kMergeBarrier,
    kFlush,
    kFlushBarrier,
    kDone,
  };

  /// Two sub-ops per reference: accumulate load + store on the target.
  [[nodiscard]] unsigned last_ref_step() const { return 1; }

  Op loop_ref_op(std::uint32_t e) {
    const unsigned step = ref_step_++;
    const bool is_load = step == 0;
    switch (ctx_->mode) {
      case Mode::kSeq:
        return Op{.kind = is_load ? Op::Kind::kLoad : Op::Kind::kStore,
                  .addr = AddressMap::w_elem(e)};
      case Mode::kSw:
        return Op{.kind = is_load ? Op::Kind::kLoad : Op::Kind::kStore,
                  .addr = AddressMap::priv_elem(proc_, e)};
      case Mode::kHw:
      case Mode::kFlex: {
        // §5.1.5: with shadow addressing the compiler emits *plain*
        // accesses to the shadow array; otherwise special reduction
        // instructions on the original array.
        if (ctx_->cfg.shadow_addresses) {
          const Addr a = AddressMap::shadow_of(AddressMap::w_elem(e));
          if (is_load) return Op{.kind = Op::Kind::kLoad, .addr = a};
          return Op{.kind = Op::Kind::kStore,
                    .addr = a,
                    .value =
                        ctx_->w->input.values[cur_ref_] * iter_scale_};
        }
        if (is_load)
          return Op{.kind = Op::Kind::kLoadRed,
                    .addr = AddressMap::w_elem(e)};
        return Op{.kind = Op::Kind::kStoreRed,
                  .addr = AddressMap::w_elem(e),
                  .value = ctx_->w->input.values[cur_ref_] * iter_scale_};
      }
    }
    return Op{};
  }

  std::shared_ptr<const TraceContext> ctx_;
  unsigned proc_;
  Range iters_{};
  Range elems_{};
  Stage stage_;

  std::size_t init_elem_ = 0;
  std::size_t cur_iter_ = 0;
  std::uint64_t cur_ref_ = 0;
  unsigned ref_step_ = 0;
  unsigned input_remaining_ = 0;
  double iter_scale_ = 1.0;
  std::size_t merge_elem_ = 0;
  unsigned merge_q_ = 0;
};

}  // namespace

std::vector<std::unique_ptr<TraceCursor>> make_reduction_cursors(
    const workloads::Workload& w, Mode mode, const MachineConfig& cfg) {
  auto ctx = std::make_shared<TraceContext>();
  ctx->w = &w;
  ctx->mode = mode;
  ctx->cfg = cfg;
  ctx->nprocs = mode == Mode::kSeq ? 1 : cfg.nodes;

  std::vector<std::unique_ptr<TraceCursor>> cursors;
  cursors.reserve(ctx->nprocs);
  for (unsigned p = 0; p < ctx->nprocs; ++p)
    cursors.push_back(std::make_unique<ReductionCursor>(ctx, p));
  return cursors;
}

RunResult simulate_reduction(const workloads::Workload& w, Mode mode,
                             MachineConfig cfg, std::span<double> w_out) {
  if (mode == Mode::kSeq) cfg.nodes = 1;
  Machine m(cfg, mode, w.input.pattern.dim);
  RunResult r = m.run(make_reduction_cursors(w, mode, cfg));
  if (!w_out.empty()) {
    SAPP_REQUIRE(w_out.size() == w.input.pattern.dim,
                 "w_out size must match the reduction array");
    std::copy(m.w_memory().begin(), m.w_memory().end(), w_out.begin());
  }
  return r;
}

}  // namespace sapp::sim
