#include "sim/cluster.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

namespace sapp::sim {

namespace {

double apply_op(CombineOp op, double a, double b) {
  switch (op) {
    case CombineOp::kAdd: return a + b;
    case CombineOp::kMax: return a > b ? a : b;
    case CombineOp::kMin: return a < b ? a : b;
  }
  return a;
}

/// Contiguous iteration block of node `n` (remainder spread over the first
/// nodes — the block schedule the shared-memory schemes use).
struct BlockRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

BlockRange iter_block(std::size_t total, unsigned nodes, unsigned n) {
  const std::size_t base = total / nodes;
  const std::size_t rem = total % nodes;
  const std::size_t begin =
      n * base + std::min<std::size_t>(n, rem);
  return {begin, begin + base + (n < rem ? 1 : 0)};
}

/// One node's partial reduction as a sorted sparse (element, value) list.
struct SparsePartial {
  std::vector<std::uint32_t> idx;
  std::vector<double> val;
};

/// Value-tracking state threaded through the task-graph engine. Only the
/// representation the strategy combines over is populated.
struct ValueCtx {
  CombineOp op = CombineOp::kAdd;
  std::vector<SparsePartial> partials;  ///< per node (combining/replication)
  /// Owner-computes: contribs[src * N + dst] = (element, value) stream from
  /// src's iterations into dst-owned elements, in iteration order.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> contribs;
};

/// Sorted-merge `src` into `dst` applying `op` on collisions (the tree
/// combine of the message-combining strategy).
void merge_sparse(SparsePartial& dst, const SparsePartial& src, CombineOp op) {
  SparsePartial out;
  out.idx.reserve(dst.idx.size() + src.idx.size());
  out.val.reserve(dst.idx.size() + src.idx.size());
  std::size_t a = 0, b = 0;
  while (a < dst.idx.size() && b < src.idx.size()) {
    if (dst.idx[a] < src.idx[b]) {
      out.idx.push_back(dst.idx[a]);
      out.val.push_back(dst.val[a]);
      ++a;
    } else if (src.idx[b] < dst.idx[a]) {
      out.idx.push_back(src.idx[b]);
      out.val.push_back(src.val[b]);
      ++b;
    } else {
      out.idx.push_back(dst.idx[a]);
      out.val.push_back(apply_op(op, dst.val[a], src.val[b]));
      ++a;
      ++b;
    }
  }
  for (; a < dst.idx.size(); ++a) {
    out.idx.push_back(dst.idx[a]);
    out.val.push_back(dst.val[a]);
  }
  for (; b < src.idx.size(); ++b) {
    out.idx.push_back(src.idx[b]);
    out.val.push_back(src.val[b]);
  }
  dst = std::move(out);
}

/// The task-graph engine shared by timing-only and value-tracked runs:
/// identical issue order and arithmetic, so both report identical times.
DistRunResult run_engine(const DistWork& w, DistStrategy strategy,
                         const ClusterConfig& cfg, ValueCtx* v) {
  const unsigned N = w.nodes();
  SAPP_REQUIRE(N >= 1, "cluster needs at least one node");
  SAPP_REQUIRE(N == cfg.nodes, "DistWork sliced for a different node count");
  const MachineCoeffs& mc = cfg.coeffs;

  CommFabric fabric(N, cfg.link);
  std::vector<double> done(N);
  for (unsigned n = 0; n < N; ++n)
    done[n] = partial_cost(strategy, w, n, cfg);
  const double partial_s = *std::max_element(done.begin(), done.end());

  switch (strategy) {
    case DistStrategy::kCombining: {
      // Binomial tree over any N: in each round, the node `stride` above a
      // surviving node ships its (unioned) sparse partial down.
      std::vector<std::uint64_t> payload(N);
      for (unsigned n = 0; n < N; ++n) payload[n] = w.slices[n].distinct;
      for (unsigned stride = 1; stride < N; stride *= 2) {
        for (unsigned dst = 0; dst + stride < N; dst += 2 * stride) {
          const unsigned src = dst + stride;
          const double arrival = fabric.transfer(
              src, dst, payload[src] * kEntryBytes, done[src]);
          const double start = std::max(arrival, done[dst]);
          // Scatter-merge of the incoming sparse list into the local one.
          done[dst] = start + 1e-9 * static_cast<double>(payload[src]) *
                                  (mc.ns_merge + mc.ns_slot);
          payload[dst] = std::min<std::uint64_t>(
              payload[dst] + payload[src], w.distinct_total);
          if (v) merge_sparse(v->partials[dst], v->partials[src], v->op);
        }
      }
      break;
    }
    case DistStrategy::kReplication: {
      if (N > 1) {
        // Ring all-reduce on dense chunks: N-1 reduce-scatter steps (the
        // receiver combines the incoming chunk), then N-1 all-gather
        // steps. Each step every node forwards one chunk to its
        // successor, so both ports of every node are busy each step.
        const std::size_t chunk = (w.dim + N - 1) / N;
        const std::uint64_t chunk_bytes = chunk * kElemBytes;
        const double combine_s =
            1e-9 * static_cast<double>(chunk) * mc.ns_merge;
        for (unsigned step = 0; step + 1 < 2 * N - 1; ++step) {
          const bool reduce_scatter = step + 1 < N;
          std::vector<double> next = done;
          for (unsigned src = 0; src < N; ++src) {
            const unsigned dst = (src + 1) % N;
            const double arrival =
                fabric.transfer(src, dst, chunk_bytes, done[src]);
            const double start = std::max(arrival, done[dst]);
            next[dst] = std::max(
                next[dst], start + (reduce_scatter ? combine_s : 0.0));
          }
          done = std::move(next);
        }
      }
      break;
    }
    case DistStrategy::kOwnerComputes: {
      // One all-to-all hop: the per-destination messages were packed
      // during the local phase, so every message is ready at its source's
      // partial completion; the send port serializes the ladder. Owners
      // apply incoming contributions on their compute timeline.
      const std::vector<double> ready = done;
      const std::size_t owned = N ? (w.dim + N - 1) / N : 0;
      const double apply_ns =
          static_cast<double>(owned) * sizeof(double) > 256.0 * 1024
              ? mc.ns_update_far
              : mc.ns_update;
      for (unsigned k = 1; k < N; ++k) {
        for (unsigned src = 0; src < N; ++src) {
          const unsigned dst = (src + k) % N;
          const std::uint64_t r = w.refs_to[src * N + dst];
          if (r == 0) continue;  // nothing owned by dst was referenced
          const double arrival =
              fabric.transfer(src, dst, r * kEntryBytes, ready[src]);
          const double start = std::max(arrival, done[dst]);
          done[dst] = start + 1e-9 * static_cast<double>(r) * apply_ns;
        }
      }
      break;
    }
  }

  DistRunResult r;
  r.strategy = strategy;
  r.total_s = *std::max_element(done.begin(), done.end());
  r.partial_s = partial_s;
  r.exchange_s = r.total_s - partial_s;
  r.messages = fabric.messages();
  r.bytes = fabric.bytes_on_wire();
  return r;
}

}  // namespace

double neutral_of(CombineOp op) {
  switch (op) {
    case CombineOp::kAdd: return 0.0;
    case CombineOp::kMax: return -std::numeric_limits<double>::infinity();
    case CombineOp::kMin: return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

std::span<const DistStrategy> all_dist_strategies() {
  static constexpr std::array<DistStrategy, 3> kAll = {
      DistStrategy::kCombining, DistStrategy::kReplication,
      DistStrategy::kOwnerComputes};
  return kAll;
}

unsigned owner_of(std::size_t elem, std::size_t dim, unsigned nodes) {
  SAPP_ASSERT(dim > 0 && elem < dim, "element out of range");
  const std::size_t block = (dim + nodes - 1) / nodes;
  return static_cast<unsigned>(
      std::min<std::size_t>(elem / block, nodes - 1));
}

DistWork slice_work(const AccessPattern& p, unsigned nodes) {
  SAPP_REQUIRE(nodes >= 1, "cluster needs at least one node");
  DistWork w;
  w.dim = p.dim;
  w.body_flops = p.body_flops;
  w.slices.resize(nodes);
  w.refs_to.assign(static_cast<std::size_t>(nodes) * nodes, 0);

  const auto& ptr = p.refs.row_ptr();
  const auto& idx = p.refs.indices();
  // Epoch-stamped distinct counting: stamp[e] holds node+1 for the slice
  // pass, and a separate flag array tracks the global union.
  std::vector<std::uint32_t> stamp(p.dim, 0);
  std::vector<bool> seen(p.dim, false);
  for (unsigned n = 0; n < nodes; ++n) {
    const auto [begin, end] = iter_block(p.iterations(), nodes, n);
    auto& s = w.slices[n];
    s.iterations = end - begin;
    for (std::size_t i = begin; i < end; ++i) {
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        const std::uint32_t e = idx[j];
        ++s.refs;
        ++w.refs_to[static_cast<std::size_t>(n) * nodes +
                    owner_of(e, p.dim, nodes)];
        if (stamp[e] != n + 1) {
          stamp[e] = n + 1;
          ++s.distinct;
        }
        if (!seen[e]) {
          seen[e] = true;
          ++w.distinct_total;
        }
      }
    }
  }
  return w;
}

DistWork synth_work(std::size_t dim, std::size_t iterations, std::size_t refs,
                    double sparsity, unsigned body_flops, unsigned nodes) {
  SAPP_REQUIRE(nodes >= 1, "cluster needs at least one node");
  SAPP_REQUIRE(sparsity > 0.0 && sparsity <= 1.0, "sparsity must be (0,1]");
  DistWork w;
  w.dim = dim;
  w.body_flops = body_flops;
  w.distinct_total = std::min(
      {static_cast<std::size_t>(sparsity * static_cast<double>(dim)), dim,
       refs});
  w.slices.resize(nodes);
  w.refs_to.assign(static_cast<std::size_t>(nodes) * nodes, 0);
  for (unsigned n = 0; n < nodes; ++n) {
    const auto [ib, ie] = iter_block(iterations, nodes, n);
    const auto [rb, re] = iter_block(refs, nodes, n);
    auto& s = w.slices[n];
    s.iterations = ie - ib;
    s.refs = re - rb;
    s.distinct = std::min(s.refs, w.distinct_total);
    // Uniform ownership: each remote owner gets an equal share.
    const std::uint64_t each = nodes > 1 ? s.refs / nodes : 0;
    std::uint64_t local = s.refs;
    for (unsigned d = 0; d < nodes; ++d) {
      if (d == n) continue;
      w.refs_to[static_cast<std::size_t>(n) * nodes + d] = each;
      local -= each;
    }
    w.refs_to[static_cast<std::size_t>(n) * nodes + n] = local;
  }
  return w;
}

PatternStats node_stats(const DistWork& w, unsigned node, unsigned cores) {
  SAPP_REQUIRE(node < w.nodes(), "node out of range");
  const auto& s = w.slices[node];
  PatternStats st;
  st.threads = std::max(1u, cores);
  st.dim = w.dim;
  st.iterations = s.iterations;
  st.refs = s.refs;
  st.distinct = s.distinct;
  st.mo = s.iterations ? static_cast<double>(s.refs) /
                             static_cast<double>(s.iterations)
                       : 0.0;
  st.con = s.distinct ? static_cast<double>(s.refs) /
                            static_cast<double>(s.distinct)
                      : 0.0;
  st.sp = w.dim ? 100.0 * static_cast<double>(s.distinct) /
                      static_cast<double>(w.dim)
                : 0.0;
  st.touched_per_thread =
      static_cast<double>(s.distinct) / static_cast<double>(st.threads);
  st.shared_fraction = 0.5;
  st.lw_legal = false;  // the distributed strategies never replicate bodies
  return st;
}

double partial_cost(DistStrategy strategy, const DistWork& w, unsigned node,
                    const ClusterConfig& cfg) {
  const MachineCoeffs& mc = cfg.coeffs;
  const PatternStats st = node_stats(w, node, cfg.cores_per_node);
  switch (strategy) {
    case DistStrategy::kReplication:
      // A full dim-sized private replica per node: exactly the intra-node
      // rep-scheme cost surface.
      return predict_cost(SchemeKind::kRep, st, w.body_flops, mc).total();
    case DistStrategy::kCombining:
      // Compact private accumulation (the hash-scheme surface) plus one
      // sweep emitting the sorted (index, value) message list.
      return predict_cost(SchemeKind::kHash, st, w.body_flops, mc).total() +
             1e-9 * static_cast<double>(w.slices[node].distinct) * mc.ns_slot;
    case DistStrategy::kOwnerComputes: {
      // Inspector classifies every reference by owner; the sweep computes
      // each contribution and either applies it locally or packs it.
      const double C = static_cast<double>(std::max(1u, cfg.cores_per_node));
      const auto& s = w.slices[node];
      const double ns =
          mc.fork_join_us * 1e3 +
          static_cast<double>(s.iterations) * w.body_flops * mc.ns_flop / C +
          static_cast<double>(s.refs) *
              (mc.ns_inspect + mc.ns_update + mc.ns_slot) / C;
      return 1e-9 * ns;
    }
  }
  return 0.0;
}

DistRunResult simulate_strategy(const DistWork& work, DistStrategy strategy,
                                const ClusterConfig& cfg) {
  return run_engine(work, strategy, cfg, nullptr);
}

DistRunResult simulate_distributed(const ReductionInput& in, CombineOp op,
                                   DistStrategy strategy,
                                   const ClusterConfig& cfg) {
  SAPP_REQUIRE(in.consistent(), "values/pattern size mismatch");
  const AccessPattern& p = in.pattern;
  const unsigned N = cfg.nodes;
  const DistWork work = slice_work(p, N);
  const auto& ptr = p.refs.row_ptr();
  const auto& idx = p.refs.indices();

  ValueCtx v;
  v.op = op;
  const bool sparse_partials = strategy != DistStrategy::kOwnerComputes;
  if (sparse_partials) {
    // Build each node's partial with a dense scratch + touched list, then
    // compact to a sorted sparse list (deterministic element order).
    v.partials.resize(N);
    std::vector<double> scratch(p.dim, 0.0);
    std::vector<std::uint32_t> stamp(p.dim, 0);
    std::vector<std::uint32_t> touched;
    for (unsigned n = 0; n < N; ++n) {
      touched.clear();
      const auto [begin, end] = iter_block(p.iterations(), N, n);
      for (std::size_t i = begin; i < end; ++i) {
        const double s = iteration_scale(i, p.body_flops);
        for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
          const std::uint32_t e = idx[j];
          const double c = in.values[j] * s;
          if (stamp[e] == n + 1) {
            scratch[e] = apply_op(op, scratch[e], c);
          } else {
            stamp[e] = n + 1;
            scratch[e] = c;
            touched.push_back(e);
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& part = v.partials[n];
      part.idx.reserve(touched.size());
      part.val.reserve(touched.size());
      for (const std::uint32_t e : touched) {
        part.idx.push_back(e);
        part.val.push_back(scratch[e]);
      }
    }
  } else {
    v.contribs.resize(static_cast<std::size_t>(N) * N);
    for (unsigned n = 0; n < N; ++n) {
      const auto [begin, end] = iter_block(p.iterations(), N, n);
      for (std::size_t i = begin; i < end; ++i) {
        const double s = iteration_scale(i, p.body_flops);
        for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
          const std::uint32_t e = idx[j];
          v.contribs[static_cast<std::size_t>(n) * N +
                     owner_of(e, p.dim, N)]
              .emplace_back(e, in.values[j] * s);
        }
      }
    }
  }

  DistRunResult r = run_engine(work, strategy, cfg, &v);
  r.w.assign(p.dim, neutral_of(op));
  switch (strategy) {
    case DistStrategy::kCombining:
      // The tree left the full combined partial at node 0.
      for (std::size_t k = 0; k < v.partials[0].idx.size(); ++k)
        r.w[v.partials[0].idx[k]] = v.partials[0].val[k];
      break;
    case DistStrategy::kReplication: {
      // Ring reduce-scatter semantics: chunk c is folded along the ring
      // starting at node (c+1) mod N and ending at its final owner c.
      const std::size_t chunk = (p.dim + N - 1) / N;
      for (unsigned c = 0; c < N && p.dim > 0; ++c) {
        const std::uint32_t lo = static_cast<std::uint32_t>(
            std::min<std::size_t>(p.dim, c * chunk));
        const std::uint32_t hi = static_cast<std::uint32_t>(
            std::min<std::size_t>(p.dim, (c + 1) * chunk));
        if (lo == hi) continue;
        for (unsigned t = 0; t < N; ++t) {
          const auto& part = v.partials[(c + 1 + t) % N];
          const auto first = std::lower_bound(part.idx.begin(),
                                              part.idx.end(), lo);
          for (auto it = first; it != part.idx.end() && *it < hi; ++it) {
            const std::size_t k =
                static_cast<std::size_t>(it - part.idx.begin());
            r.w[*it] = r.w[*it] == neutral_of(op) && op == CombineOp::kAdd
                           ? part.val[k]
                           : apply_op(op, r.w[*it], part.val[k]);
          }
        }
      }
      break;
    }
    case DistStrategy::kOwnerComputes:
      // Each owner applies its local stream first, then the incoming
      // messages in ladder order (the order they are scheduled above).
      for (unsigned dst = 0; dst < N; ++dst) {
        for (unsigned k = 0; k < N; ++k) {
          const unsigned src = (dst + N - k) % N;  // k=0 is the local stream
          for (const auto& [e, c] :
               v.contribs[static_cast<std::size_t>(src) * N + dst]) {
            r.w[e] = r.w[e] == neutral_of(op) && op == CombineOp::kAdd
                         ? c
                         : apply_op(op, r.w[e], c);
          }
        }
      }
      break;
  }
  return r;
}

}  // namespace sapp::sim
