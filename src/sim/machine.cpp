#include "sim/machine.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace sapp::sim {

Machine::Machine(const MachineConfig& cfg, Mode mode, std::size_t w_dim)
    : cfg_(cfg), mode_(mode), dir_(cfg.page_bytes), wmem_(w_dim, 0.0) {
  SAPP_REQUIRE(cfg.nodes >= 1 && cfg.nodes <= 32,
               "directory sharer mask supports up to 32 nodes");
  SAPP_REQUIRE(cfg.elems_per_line() <= CacheLine::kMaxElems,
               "line size exceeds the cache frame's data capacity");
  nodes_.reserve(cfg.nodes);
  for (unsigned n = 0; n < cfg.nodes; ++n) nodes_.emplace_back(cfg);
}

unsigned Machine::home_for(Addr line_addr, unsigned toucher) {
  if (line_addr >= AddressMap::kIdxBase) {
    switch (cfg_.input_placement) {
      case MachineConfig::InputPlacement::kMaster:
        return dir_.home_of(line_addr, 0);
      case MachineConfig::InputPlacement::kRoundRobin:
        return static_cast<unsigned>((line_addr / cfg_.page_bytes) %
                                     cfg_.nodes);
      case MachineConfig::InputPlacement::kReaderLocal:
        break;
    }
  }
  return dir_.home_of(line_addr, toucher);
}

double Machine::neutral_element() const {
  switch (cfg_.combine_op) {
    case MachineConfig::CombineOp::kAdd: return 0.0;
    case MachineConfig::CombineOp::kMax:
      return -std::numeric_limits<double>::infinity();
    case MachineConfig::CombineOp::kMin:
      return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double Machine::combine(double a, double b) const {
  switch (cfg_.combine_op) {
    case MachineConfig::CombineOp::kAdd: return a + b;
    case MachineConfig::CombineOp::kMax: return a > b ? a : b;
    case MachineConfig::CombineOp::kMin: return a < b ? a : b;
  }
  return a + b;
}

Cycle Machine::pclr_dir_occupancy() const {
  const double occ = static_cast<double>(cfg_.dir_occupancy) *
                     (mode_ == Mode::kFlex ? cfg_.flex_occupancy_mult : 1.0);
  return static_cast<Cycle>(occ);
}

Cycle Machine::reserve_fp(Node& node, Cycle t, Cycle occ) {
  // Pick the earliest-free combine unit.
  auto it = std::min_element(node.fp_busy.begin(), node.fp_busy.end());
  return reserve(*it, t, occ);
}

void Machine::plain_writeback(unsigned p, Addr line_addr, Cycle t) {
  const unsigned home = home_for(line_addr, p);
  Node& h = nodes_[home];
  const Cycle s = reserve(h.dir_busy, t, cfg_.dir_occupancy);
  reserve(h.mem_busy, s, cfg_.mem_occupancy);
  // Memory now current; the directory forgets the owner.
  dir_.entry(line_addr) = DirEntry{};
  ++counters_.writebacks_plain;
}

void Machine::red_writeback(unsigned p, const CacheLine& line, Cycle t) {
  // §5.1.5: a shadow-address write-back is forwarded to the home of the
  // corresponding element of the original array.
  const Addr line_addr = AddressMap::unshadow(line.line_addr);
  const unsigned home = home_for(line_addr, p);
  Node& h = nodes_[home];

  const Cycle s = reserve(h.dir_busy, t, pclr_dir_occupancy());

  // §5.1.3: on the first reduction write-back the home checks for stale
  // plain copies: a dirty copy is recalled and written back, clean sharers
  // are invalidated. Afterwards the sharing list is empty.
  DirEntry& e = dir_.entry(line_addr);
  Cycle ready = s;
  if (e.state == DirState::kExclusive) {
    ++counters_.recalls;
    nodes_[e.owner].l2.invalidate(line_addr);
    nodes_[e.owner].l1.invalidate(line_addr);
    ready += cfg_.recall_extra;
    e = DirEntry{};
  } else if (e.state == DirState::kShared) {
    counters_.invalidations += e.sharer_count();
    for (unsigned q = 0; q < cfg_.nodes; ++q)
      if (e.sharers & (1u << q)) {
        nodes_[q].l2.invalidate(line_addr);
        nodes_[q].l1.invalidate(line_addr);
      }
    ready += cfg_.inval_base + cfg_.inval_per_sharer * e.sharer_count();
    e = DirEntry{};
  }

  // Combine every element of the line through the (pipelined) FP unit.
  const unsigned elems = cfg_.elems_per_line();
  const Cycle occ = static_cast<Cycle>(elems) * cfg_.fp_initiation;
  const Cycle f = reserve_fp(h, ready, occ);
  reserve(h.mem_busy, f, cfg_.mem_occupancy);
  const Cycle complete = f + occ + cfg_.fp_latency;
  h.quiesce = std::max(h.quiesce, complete);

  // Value tracking: fold the partial results into the shared array
  // (untouched elements hold the neutral element, so memory is unchanged
  // for them — exactly the property §5.1.3 relies on).
  if (AddressMap::is_w(line_addr)) {
    const std::uint64_t first_elem = line_addr / sizeof(double);
    for (unsigned k = 0; k < elems; ++k) {
      const std::uint64_t el = first_elem + k;
      if (el < wmem_.size()) wmem_[el] = combine(wmem_[el], line.data[k]);
    }
  }
  counters_.combines += elems;
}

Cycle Machine::global_miss(unsigned p, Addr line_addr, bool is_store,
                           Cycle t) {
  const unsigned home = home_for(line_addr, p);
  Node& h = nodes_[home];
  const Cycle base =
      home == p ? cfg_.local_round_trip : cfg_.remote_round_trip;

  // Queueing at the home: the request reaches the home roughly half-way
  // through the round trip.
  const Cycle arrive = t + base / 2;
  const Cycle s = reserve(h.dir_busy, arrive, cfg_.dir_occupancy);
  const Cycle queue_delay = s - arrive;
  reserve(h.mem_busy, s, cfg_.mem_occupancy);

  Cycle extra = 0;
  DirEntry& e = dir_.entry(line_addr);
  switch (e.state) {
    case DirState::kUncached:
      if (is_store) {
        e.state = DirState::kExclusive;
        e.owner = static_cast<std::uint8_t>(p);
      } else {
        e.state = DirState::kShared;
        e.sharers = 1u << p;
      }
      if (home == p) ++counters_.local_misses; else ++counters_.remote_misses;
      break;
    case DirState::kShared:
      if (is_store) {
        const std::uint32_t others = e.sharers & ~(1u << p);
        const unsigned n = static_cast<unsigned>(__builtin_popcount(others));
        if (n > 0) {
          counters_.invalidations += n;
          extra += cfg_.inval_base + cfg_.inval_per_sharer * n;
          for (unsigned q = 0; q < cfg_.nodes; ++q)
            if (others & (1u << q)) {
              nodes_[q].l2.invalidate(line_addr);
              nodes_[q].l1.invalidate(line_addr);
            }
        }
        e.state = DirState::kExclusive;
        e.owner = static_cast<std::uint8_t>(p);
        e.sharers = 0;
      } else {
        e.sharers |= 1u << p;
      }
      if (home == p) ++counters_.local_misses; else ++counters_.remote_misses;
      break;
    case DirState::kExclusive: {
      const unsigned q = e.owner;
      if (q != p) {
        // 3-hop intervention: recall the dirty line from its owner.
        ++counters_.recalls;
        extra += cfg_.recall_extra;
        CacheLine dropped = nodes_[q].l2.invalidate(line_addr);
        nodes_[q].l1.invalidate(line_addr);
        (void)dropped;  // plain data is not value-tracked
        if (is_store) {
          e.state = DirState::kExclusive;
          e.owner = static_cast<std::uint8_t>(p);
          e.sharers = 0;
        } else {
          e.state = DirState::kShared;
          e.sharers = (1u << p) | (1u << q);
        }
      } else {
        // Stale exclusivity of our own (silently evicted) copy.
        if (!is_store) {
          e.state = DirState::kShared;
          e.sharers = 1u << p;
        }
      }
      if (home == p) ++counters_.local_misses; else ++counters_.remote_misses;
      break;
    }
  }
  return base + extra + queue_delay;
}

void Machine::handle_eviction(unsigned p, const CacheLine& victim, Cycle t) {
  if (!victim.valid()) return;
  nodes_[p].l1.invalidate(victim.line_addr);  // inclusion
  if (victim.state == LineState::kDirty) {
    plain_writeback(p, victim.line_addr, t);
  } else if (victim.state == LineState::kReduction) {
    red_writeback(p, victim, t);
    ++counters_.red_lines_displaced;
  }
  // kShared victims are dropped silently (the directory keeps a stale
  // sharer bit; subsequent invalidations to it are harmless).
}

void Machine::do_memory(unsigned p, const Op& op) {
  Proc& pr = procs_[p];
  Node& node = nodes_[p];
  const Addr line_addr = node.l2.line_of(op.addr);
  // §5.1.5: with shadow addressing, plain accesses to the shadow region
  // are recognized as reduction accesses by the directory — no special
  // instructions needed.
  const bool is_shadow =
      cfg_.shadow_addresses && AddressMap::is_shadow(op.addr);
  const bool is_red = is_shadow ||
      op.kind == Op::Kind::kLoadRed || op.kind == Op::Kind::kStoreRed;
  const bool is_store =
      op.kind == Op::Kind::kStore || op.kind == Op::Kind::kStoreRed;
  const bool is_red_store = is_red && is_store;
  Cycle t = pr.clock;

  auto store_red_value = [&](CacheLine& l) {
    const unsigned k =
        static_cast<unsigned>((op.addr - line_addr) / sizeof(double));
    l.data[k] = combine(l.data[k], op.value);
  };

  // ---- L1 (tag-only) fast path.
  if (node.l1.find(line_addr) != nullptr) {
    CacheLine* l2line = node.l2.find(line_addr);
    SAPP_ASSERT(l2line != nullptr, "L1 must be inclusive in L2");
    const bool line_red = l2line->state == LineState::kReduction;
    if (is_red == line_red) {
      if (is_red_store) {
        store_red_value(*l2line);
      } else if (op.kind == Op::Kind::kStore) {
        if (l2line->state == LineState::kShared) {
          // Upgrade: ask the home for exclusivity.
          const Cycle lat = global_miss(p, line_addr, /*is_store=*/true, t);
          t += lat / 2;  // upgrade is one-way-ish; cheaper than a full miss
          l2line->state = LineState::kDirty;
        } else {
          l2line->state = LineState::kDirty;
        }
      }
      ++counters_.l1_hits;
      pr.clock = t + 1;  // pipelined L1 hit
      return;
    }
    // State mismatch (plain access to a reduction line or vice versa):
    // fall through to the slow path below after dropping the L1 tag.
    node.l1.invalidate(line_addr);
  }

  // ---- L2 lookup.
  CacheLine* l2line = node.l2.find(line_addr);
  if (l2line != nullptr) {
    const bool line_red = l2line->state == LineState::kReduction;
    if (!is_red && line_red) {
      // Plain access to a line still in reduction state (possible when a
      // loop's flush was skipped): combine it first, then refetch.
      red_writeback(p, *l2line, t);
      ++counters_.red_lines_flushed;
      node.l2.invalidate(line_addr);
      l2line = nullptr;
    } else if (is_red && !line_red) {
      // §5.1.2: reduction access hits a plain line: write back if dirty,
      // invalidate, then treat as a reduction miss.
      if (l2line->state == LineState::kDirty)
        plain_writeback(p, line_addr, t);
      node.l2.invalidate(line_addr);
      l2line = nullptr;
    } else {
      // Genuine L2 hit.
      if (is_red_store) {
        store_red_value(*l2line);
      } else if (op.kind == Op::Kind::kStore) {
        if (l2line->state == LineState::kShared) {
          const Cycle lat = global_miss(p, line_addr, /*is_store=*/true, t);
          t += lat / 2;
          l2line->state = LineState::kDirty;
        }
        l2line->state = LineState::kDirty;
      }
      // Install in L1 (tag only; evictions silent).
      node.l1.evict_and_install(line_addr, l2line->state);
      ++counters_.l2_hits;
      pr.clock = t + cfg_.l2_hit_cycles;
      return;
    }
  }

  // ---- Miss: global transaction (or local neutral fill for PCLR).
  Cycle latency;
  LineState new_state;
  if (is_red) {
    // Local directory intercepts and supplies a line of neutral elements.
    Node& local = nodes_[p];
    const Cycle s = reserve(local.dir_busy, t, pclr_dir_occupancy());
    latency = (s - t) + cfg_.pclr_fill_cycles;
    new_state = LineState::kReduction;
    ++counters_.red_fills;
  } else {
    latency = global_miss(p, line_addr, is_store, t);
    new_state = is_store ? LineState::kDirty : LineState::kShared;
  }

  // ---- MSHR occupancy + latency hiding.
  if (is_store) {
    auto it = std::min_element(pr.pending_stores.begin(),
                               pr.pending_stores.end());
    if (*it > t) t = *it;  // all store slots busy: stall until one frees
    *it = t + latency;
    pr.clock = t + 1;  // fire-and-forget through the store buffer
  } else {
    // Non-blocking loads: the out-of-order window hides miss latency until
    // the pending-load slots are exhausted; then the processor stalls for
    // the oldest outstanding miss. Sustained throughput under a miss
    // stream is pending_loads misses per round trip. The hide window
    // bounds how far past the oldest outstanding miss the core can run.
    auto it =
        std::min_element(pr.pending_loads.begin(), pr.pending_loads.end());
    if (*it > t) t = *it;  // all slots busy: stall until one frees
    const Cycle completion = t + latency;
    *it = completion;
    const Cycle oldest =
        *std::min_element(pr.pending_loads.begin(), pr.pending_loads.end());
    const Cycle bound = oldest > cfg_.hide_cycles
                            ? oldest - cfg_.hide_cycles
                            : 0;
    pr.clock = std::max(t + 2, bound > completion ? completion : bound);
  }

  // ---- Install the line (L2 then L1); evictions may trigger write-backs.
  CacheLine victim = node.l2.evict_and_install(line_addr, new_state);
  handle_eviction(p, victim, t);
  CacheLine* fresh = node.l2.find(line_addr);
  SAPP_ASSERT(fresh != nullptr, "just-installed line must be present");
  if (new_state == LineState::kReduction)
    fresh->data.fill(neutral_element());  // §5.1.2's line of neutral elements
  if (is_red_store) store_red_value(*fresh);
  node.l1.evict_and_install(line_addr, new_state);
}

void Machine::do_flush(unsigned p) {
  Proc& pr = procs_[p];
  Node& node = nodes_[p];
  Cycle t = pr.clock;

  // Sweep cost proportional to the cache size (§5.2: "the work is at worst
  // proportional to the size of the cache, rather than to the size of the
  // shared array").
  t += node.l2.total_frames() * cfg_.flush_scan_per_line;

  // Collect and send the reduction lines; sends are pipelined.
  std::vector<CacheLine> reds;
  node.l2.for_each([&](CacheLine& l) {
    if (l.state == LineState::kReduction) reds.push_back(l);
  });
  for (const CacheLine& l : reds) {
    t += cfg_.flush_send_cycles;
    red_writeback(p, l, t);
    node.l2.invalidate(l.line_addr);
    node.l1.invalidate(l.line_addr);
    ++counters_.red_lines_flushed;
  }
  pr.clock = t;
}

void Machine::resolve_barrier(RunResult& result) {
  // All memory must quiesce: outstanding misses, store buffers and
  // background combines complete before the barrier releases.
  Cycle release = 0;
  const char* label = "";
  for (Proc& pr : procs_) {
    release = std::max(release, pr.clock);
    for (Cycle c : pr.pending_loads) release = std::max(release, c);
    for (Cycle c : pr.pending_stores) release = std::max(release, c);
    if (pr.waiting) label = pr.barrier_label;
  }
  for (Node& n : nodes_) {
    release = std::max(release, n.quiesce);
    for (Cycle c : n.fp_busy) release = std::max(release, c);
    release = std::max({release, n.dir_busy, n.mem_busy});
  }
  // Software barrier on the CC-NUMA: cost grows with the tree depth.
  if (cfg_.nodes > 1) {
    unsigned depth = 0;
    for (unsigned n = cfg_.nodes - 1; n > 0; n >>= 1) ++depth;
    release += cfg_.barrier_base_cycles * depth;
  }
  result.phase_cycles[label] += release - last_barrier_time_;
  last_barrier_time_ = release;
  for (Proc& pr : procs_) {
    if (pr.done) continue;
    pr.clock = release;
    pr.waiting = false;
  }
}

RunResult Machine::run(std::vector<std::unique_ptr<TraceCursor>> cursors) {
  SAPP_REQUIRE(cursors.size() == cfg_.nodes,
               "need exactly one cursor per node");
  procs_.clear();
  procs_.resize(cfg_.nodes);
  for (unsigned p = 0; p < cfg_.nodes; ++p) {
    procs_[p].cursor = std::move(cursors[p]);
    procs_[p].pending_loads.assign(cfg_.pending_loads, 0);
    procs_[p].pending_stores.assign(cfg_.pending_stores, 0);
  }
  counters_ = Counters{};
  last_barrier_time_ = 0;

  RunResult result;
  unsigned active = cfg_.nodes;
  while (active > 0) {
    // Pick the earliest runnable processor (deterministic tie-break by id).
    unsigned best = cfg_.nodes;
    Cycle best_clock = std::numeric_limits<Cycle>::max();
    bool any_runnable = false;
    for (unsigned p = 0; p < cfg_.nodes; ++p) {
      Proc& pr = procs_[p];
      if (pr.done || pr.waiting) continue;
      any_runnable = true;
      if (pr.clock < best_clock) {
        best_clock = pr.clock;
        best = p;
      }
    }
    if (!any_runnable) {
      resolve_barrier(result);
      continue;
    }

    Proc& pr = procs_[best];
    const Op op = pr.cursor->next();
    switch (op.kind) {
      case Op::Kind::kCompute:
        pr.clock += op.cycles;
        break;
      case Op::Kind::kLoad:
      case Op::Kind::kStore:
      case Op::Kind::kLoadRed:
      case Op::Kind::kStoreRed:
        do_memory(best, op);
        break;
      case Op::Kind::kFlush:
        do_flush(best);
        break;
      case Op::Kind::kConfig:
        pr.clock += cfg_.config_hw_cycles;
        break;
      case Op::Kind::kPreempt:
        // §5.1.4: the OS flushes reduction data when the process is
        // preempted and reprograms the controller on reschedule.
        do_flush(best);
        pr.clock += cfg_.preempt_cycles + cfg_.config_hw_cycles;
        break;
      case Op::Kind::kBarrier:
        pr.waiting = true;
        pr.barrier_label = op.label;
        break;
      case Op::Kind::kEnd:
        pr.done = true;
        --active;
        break;
    }
  }

  Cycle end = last_barrier_time_;
  for (const Proc& pr : procs_) end = std::max(end, pr.clock);
  result.total_cycles = end;
  result.counters = counters_;
  return result;
}

}  // namespace sapp::sim
