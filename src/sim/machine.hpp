// The simulated CC-NUMA machine (§6.1) with PCLR support (§5).
//
// Deterministic cycle-approximate simulation: processors execute their
// trace cursors; the globally earliest processor advances one operation at
// a time, reserving shared resources (home directory controller, combine
// FP unit, memory port) on monotone per-node timelines. Contention is
// modeled at the source/destination ports — the same granularity as the
// paper's simulator ("contention is accurately modeled ... except in the
// network, where it is modeled only at the source and destination ports").
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/directory.hpp"
#include "sim/trace.hpp"

namespace sapp::sim {

class Machine {
 public:
  /// `w_dim` sizes the shared reduction array whose values the simulator
  /// tracks through PCLR combines (correctness checks compare it against
  /// the sequential reduction).
  Machine(const MachineConfig& cfg, Mode mode, std::size_t w_dim);

  /// Run one cursor per processor to completion; cursors must emit
  /// identical barrier sequences.
  RunResult run(std::vector<std::unique_ptr<TraceCursor>> cursors);

  /// Final contents of the shared reduction array (updated by PCLR
  /// combines; plain stores are not value-tracked).
  [[nodiscard]] std::span<const double> w_memory() const { return wmem_; }

  /// Directory introspection for tests.
  [[nodiscard]] const Directory& directory() const { return dir_; }

 private:
  struct Node {
    Cache l1;
    Cache l2;
    Cycle dir_busy = 0;
    Cycle mem_busy = 0;
    std::vector<Cycle> fp_busy;  ///< one timeline per combine unit
    Cycle quiesce = 0;           ///< completion of the last background combine

    Node(const MachineConfig& c)
        : l1(c.l1_bytes, c.l1_assoc, c.line_bytes),
          l2(c.l2_bytes, c.l2_assoc, c.line_bytes),
          fp_busy(c.fp_units, 0) {}
  };

  struct Proc {
    std::unique_ptr<TraceCursor> cursor;
    Cycle clock = 0;
    std::vector<Cycle> pending_loads;
    std::vector<Cycle> pending_stores;
    bool waiting = false;
    bool done = false;
    const char* barrier_label = "";
  };

  // --- Op dispatch.
  void do_memory(unsigned p, const Op& op);
  void do_flush(unsigned p);
  void resolve_barrier(RunResult& result);

  // --- Memory-system helpers.
  /// Latency of a global (L2-miss) transaction for a plain line.
  Cycle global_miss(unsigned p, Addr line_addr, bool is_store, Cycle t);
  /// Handle eviction of `victim` from p's L2 at time t.
  void handle_eviction(unsigned p, const CacheLine& victim, Cycle t);
  /// Background combine of a reduction line at its home.
  void red_writeback(unsigned p, const CacheLine& line, Cycle t);
  /// Plain write-back of a dirty line.
  void plain_writeback(unsigned p, Addr line_addr, Cycle t);
  /// Home node of a line (first-touch, with input regions pinned to the
  /// master when cfg_.inputs_on_master).
  unsigned home_for(Addr line_addr, unsigned toucher);
  /// Reserve `occ` cycles on `timeline` no earlier than t; returns start.
  static Cycle reserve(Cycle& timeline, Cycle t, Cycle occ) {
    const Cycle start = timeline > t ? timeline : t;
    timeline = start + occ;
    return start;
  }
  Cycle reserve_fp(Node& node, Cycle t, Cycle occ);

  /// PCLR directory occupancy (Flex pays the firmware multiplier).
  [[nodiscard]] Cycle pclr_dir_occupancy() const;
  /// Neutral element / combine function of the configured reduction
  /// operation (§5.1.4: the controller is programmed per parallel section).
  [[nodiscard]] double neutral_element() const;
  [[nodiscard]] double combine(double a, double b) const;

  MachineConfig cfg_;
  Mode mode_;
  Directory dir_;
  std::vector<Node> nodes_;
  std::vector<Proc> procs_;
  std::vector<double> wmem_;
  Counters counters_;
  Cycle last_barrier_time_ = 0;
};

}  // namespace sapp::sim
