// Trace cursor: lazily generated per-processor instruction stream.
//
// Traces are generated on the fly (a full Nbf run is >100 M operations;
// materializing it would need gigabytes). A cursor yields one Op at a
// time; kEnd terminates the stream.
#pragma once

#include <memory>
#include <vector>

#include "sim/sim_types.hpp"

namespace sapp::sim {

class TraceCursor {
 public:
  virtual ~TraceCursor() = default;
  /// Produce the next operation (kEnd forever once exhausted).
  virtual Op next() = 0;
};

/// Cursor over a pre-built vector of ops (protocol unit tests).
class VectorCursor final : public TraceCursor {
 public:
  explicit VectorCursor(std::vector<Op> ops) : ops_(std::move(ops)) {}
  Op next() override {
    if (pos_ >= ops_.size()) return Op{};  // kEnd
    return ops_[pos_++];
  }

 private:
  std::vector<Op> ops_;
  std::size_t pos_ = 0;
};

}  // namespace sapp::sim
