// Tests for the reduction simplification pass (frontend/simplify.hpp):
// shape recognition, the three rewritten executors against the reference
// interpreter (bitwise for min/max, tolerance for +), every rejection
// diagnostic, and the untouched-fallback contract through
// submit_simplified — rejected sum reductions must reach the adaptive
// runtime and agree with the naive reference, everything else must run
// through the serial interpreter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "frontend/simplify.hpp"
#include "workloads/workload.hpp"

namespace sapp::frontend {
namespace {

using Op = Statement::Op;

Runtime& test_runtime() {
  static Runtime rt([] {
    RuntimeOptions o;
    o.threads = 2;
    o.calibrate = false;
    return o;
  }());
  return rt;
}

/// |a-b| <= tol * max(1, |a|, |b|) everywhere (the + rewrites reassociate).
void expect_close(const std::vector<double>& got,
                  const std::vector<double>& want, double tol = 1e-9) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max({1.0, std::abs(got[i]), std::abs(want[i])});
    EXPECT_NEAR(got[i], want[i], tol * scale) << "element " << i;
  }
}

void expect_bitwise(const std::vector<double>& got,
                    const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(
      std::memcmp(got.data(), want.data(), got.size() * sizeof(double)), 0);
}

/// Nonzero initial accumulator contents: the rewrites must fold into
/// whatever the caller left in `out`, not overwrite it.
std::vector<double> initial_out(std::size_t dim) {
  std::vector<double> out(dim);
  for (std::size_t k = 0; k < dim; ++k)
    out[k] = 0.3 * static_cast<double>((k % 7) + 1);
  return out;
}

/// Run `wl` through the public entry point and the reference interpreter
/// from identical initial contents; returns (simplified result, reference).
struct RunPair {
  FrontendResult fr;
  std::vector<double> got;
  std::vector<double> want;
};

RunPair run_both(const workloads::LoopWorkload& wl) {
  RunPair p;
  p.got = initial_out(wl.dim);
  p.want = p.got;
  p.fr = submit_simplified(test_runtime(), wl.nest, wl.target, wl.dim,
                           wl.bindings, p.got);
  interpret_loop(wl.nest, wl.target, wl.dim, wl.bindings, p.want);
  return p;
}

// ---------------- recognition ----------------

TEST(SimplifyRecognize, PrefixShapeBecomesScan) {
  const auto wl = workloads::make_prefix_sum(64, 7);
  const SimplifyAnalysis sa = analyze_simplify(wl.nest, analyze(wl.nest));
  const SiteSimplification* s = sa.find("out");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->form, SimplifiedForm::kPrefixScan);
  EXPECT_TRUE(s->reason.empty());
}

TEST(SimplifyRecognize, SlidingShapeSplitsByOperator) {
  const auto sum = workloads::make_sliding_window(64, 8, 7);
  const SimplifyAnalysis ssum = analyze_simplify(sum.nest, analyze(sum.nest));
  EXPECT_EQ(ssum.find("out")->form, SimplifiedForm::kSlidingSum);
  EXPECT_EQ(ssum.find("out")->window, 8);

  for (const Op op : {Op::kMaxAssign, Op::kMinAssign}) {
    const auto ext = workloads::make_sliding_window(64, 8, 7, op);
    const SimplifyAnalysis se = analyze_simplify(ext.nest, analyze(ext.nest));
    EXPECT_EQ(se.find("out")->form, SimplifiedForm::kSlidingExtremum);
  }
}

// ---------------- rewritten executors vs the interpreter ----------------

TEST(SimplifyExecute, PrefixScanMatchesReference) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{57}, std::size_t{256}}) {
    const RunPair p = run_both(workloads::make_prefix_sum(n, 11));
    EXPECT_TRUE(p.fr.simplified);
    EXPECT_EQ(p.fr.form, SimplifiedForm::kPrefixScan);
    expect_close(p.got, p.want);
  }
}

TEST(SimplifyExecute, SlidingSumMatchesReference) {
  for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{9},
                              std::size_t{64}}) {
    const RunPair p = run_both(workloads::make_sliding_window(50, w, 13));
    EXPECT_TRUE(p.fr.simplified);
    EXPECT_EQ(p.fr.form, SimplifiedForm::kSlidingSum);
    expect_close(p.got, p.want);
  }
}

TEST(SimplifyExecute, ExtremaAreBitwiseIdentical) {
  // min/max rewrites reorder comparisons, never arithmetic: multiplication
  // by the positive per-iteration scale is monotone, so the selected
  // element — and therefore every output bit — must match the naive loop.
  for (const Op op : {Op::kMaxAssign, Op::kMinAssign}) {
    const RunPair scan = run_both(workloads::make_prefix_sum(123, 17, op));
    EXPECT_TRUE(scan.fr.simplified);
    expect_bitwise(scan.got, scan.want);

    const RunPair deq = run_both(workloads::make_sliding_window(123, 10, 17, op));
    EXPECT_TRUE(deq.fr.simplified);
    EXPECT_EQ(deq.fr.form, SimplifiedForm::kSlidingExtremum);
    expect_bitwise(deq.got, deq.want);
  }
}

TEST(SimplifyExecute, EdgeSizes) {
  // n = 0: nothing to do, out untouched.
  const auto empty = workloads::make_prefix_sum(0, 3);
  std::vector<double> out;
  const FrontendResult fr = submit_simplified(
      test_runtime(), empty.nest, empty.target, empty.dim, empty.bindings,
      out);
  EXPECT_TRUE(fr.simplified);

  // n = 1, and a window at least as wide as the whole input (padded by
  // the generator): both collapse to single-window cases.
  for (const auto& wl :
       {workloads::make_prefix_sum(1, 3),
        workloads::make_sliding_window(1, 1, 3),
        workloads::make_sliding_window(6, 32, 3),
        workloads::make_sliding_window(6, 32, 3, Op::kMaxAssign)}) {
    const RunPair p = run_both(wl);
    EXPECT_TRUE(p.fr.simplified) << wl.nest.name;
    expect_close(p.got, p.want);
  }
}

// ---------------- rejection diagnostics + fallback ----------------

/// Assert the site is rejected with `reason_fragment`, then check the
/// fallback contract: submit_simplified must still produce the reference
/// interpreter's result (via the runtime for + reductions, serially
/// otherwise).
void expect_rejected(const LoopNest& nest, const std::string& target,
                     std::size_t dim, const Bindings& bindings,
                     const std::string& reason_fragment,
                     bool expect_runtime) {
  const SimplifyAnalysis sa = analyze_simplify(nest, analyze(nest));
  const SiteSimplification* s = sa.find(target);
  ASSERT_NE(s, nullptr) << reason_fragment;
  EXPECT_EQ(s->form, SimplifiedForm::kNone) << reason_fragment;
  EXPECT_NE(s->reason.find(reason_fragment), std::string::npos)
      << "actual reason: " << s->reason;

  std::vector<double> got = initial_out(dim), want = got;
  const FrontendResult fr =
      submit_simplified(test_runtime(), nest, target, dim, bindings, got);
  EXPECT_FALSE(fr.simplified);
  EXPECT_NE(fr.fallback_reason.find(reason_fragment), std::string::npos);
  EXPECT_EQ(fr.used_runtime, expect_runtime) << reason_fragment;
  interpret_loop(nest, target, dim, bindings, want);
  expect_close(got, want);
}

TEST(SimplifyReject, FlatSiteFallsBackToRuntime) {
  // The classic flat shape (fig. 5) has no inner range — exactly what the
  // adaptive runtime exists for, so the fallback must reach it untouched.
  LoopNest l;
  l.name = "flat";
  l.iterations = 40;
  l.body.push_back({"w", IndexExpr::indirect("x"), Op::kPlusAssign,
                    ValueExpr::computed()});
  Bindings b;
  b.index_arrays["x"] = std::vector<std::uint32_t>(40);
  for (std::uint32_t i = 0; i < 40; ++i)
    b.index_arrays["x"][i] = (i * 13) % 8;
  expect_rejected(l, "w", 8, b, "no inner accumulation range",
                  /*expect_runtime=*/true);
}

TEST(SimplifyReject, TargetSubscriptMustBeTheLoopIndex) {
  auto wl = workloads::make_prefix_sum(16, 5);
  wl.nest.body[0].index = IndexExpr::constant(0);
  expect_rejected(wl.nest, "out", wl.dim, wl.bindings,
                  "target subscript is not the outer loop index",
                  /*expect_runtime=*/true);
}

TEST(SimplifyReject, ValueMustStreamTheInnerIndex) {
  auto wl = workloads::make_prefix_sum(16, 5);
  // Reads in[i] inside the inner range: no reuse between iterations.
  wl.nest.body[0].value =
      ValueExpr::array_read("in", IndexExpr::loop_index());
  expect_rejected(wl.nest, "out", wl.dim, wl.bindings,
                  "value does not stream the inner index",
                  /*expect_runtime=*/true);
}

TEST(SimplifyReject, ProductPrefixDoesNotCommuteWithTheScale) {
  // A product scan would need scale^count, which the running fold cannot
  // track exactly — and *= is outside the runtime's ⊕ = + schemes, so the
  // fallback is the serial interpreter.
  const auto wl = workloads::make_prefix_sum(16, 5, Op::kMulAssign);
  expect_rejected(wl.nest, "out", wl.dim, wl.bindings,
                  "operator does not commute with the per-iteration scale",
                  /*expect_runtime=*/false);
}

TEST(SimplifyReject, ProductSlidingWindowIsNotInvertible) {
  const auto wl = workloads::make_sliding_window(16, 4, 5, Op::kMulAssign);
  expect_rejected(wl.nest, "out", wl.dim, wl.bindings,
                  "non-invertible operator over a sliding window",
                  /*expect_runtime=*/false);
}

TEST(SimplifyReject, EmptySlidingWindow) {
  auto wl = workloads::make_sliding_window(16, 4, 5);
  wl.nest.body[0].inner = InnerRange{AffineExpr::of_i(4), AffineExpr::of_i(4)};
  const SimplifyAnalysis sa = analyze_simplify(wl.nest, analyze(wl.nest));
  EXPECT_EQ(sa.find("out")->form, SimplifiedForm::kNone);
  EXPECT_NE(sa.find("out")->reason.find("empty sliding window"),
            std::string::npos);
}

TEST(SimplifyReject, UnrecognizedRangeShape) {
  auto wl = workloads::make_prefix_sum(16, 5);
  // lo moves twice as fast as i: neither prefix nor sliding.
  wl.nest.body[0].inner = InnerRange{AffineExpr{2, 0}, AffineExpr{2, 4}};
  const SimplifyAnalysis sa = analyze_simplify(wl.nest, analyze(wl.nest));
  EXPECT_EQ(sa.find("out")->form, SimplifiedForm::kNone);
  EXPECT_NE(sa.find("out")->reason.find("inner range shape not recognized"),
            std::string::npos);
}

TEST(SimplifyReject, MultipleUpdateStatements) {
  auto wl = workloads::make_prefix_sum(16, 5);
  wl.nest.body.push_back({"out", IndexExpr::loop_index(), Op::kPlusAssign,
                          ValueExpr::computed()});
  expect_rejected(wl.nest, "out", wl.dim, wl.bindings,
                  "multiple update statements",
                  /*expect_runtime=*/true);
}

TEST(SimplifyReject, AnalyzeRejectionsCarryTheirReason) {
  // Sites analyze() already rejected keep its diagnostic and run through
  // the serial interpreter (they are not reductions at all).
  auto self = workloads::make_prefix_sum(16, 5);
  self.nest.body[0].value =
      ValueExpr::array_read("out", IndexExpr::loop_index(1));
  // Widen the extent so the self-read at out[i+1] stays in range.
  self.dim = 17;
  expect_rejected(self.nest, "out", self.dim, self.bindings,
                  "occurs in its own update expression",
                  /*expect_runtime=*/false);

  auto mixed = workloads::make_prefix_sum(16, 5);
  mixed.nest.body.push_back({"out", IndexExpr::loop_index(), Op::kMaxAssign,
                             ValueExpr::computed()});
  expect_rejected(mixed.nest, "out", mixed.dim, mixed.bindings,
                  "mixed reduction operators", /*expect_runtime=*/false);

  auto plain = workloads::make_prefix_sum(16, 5);
  plain.nest.body[0].op = Op::kAssign;
  expect_rejected(plain.nest, "out", plain.dim, plain.bindings,
                  "plain assignment", /*expect_runtime=*/false);
}

// ---------------- the runtime fallback agrees with the runtime ----------

TEST(SimplifyFallback, RuntimeLegAgreesWithDirectSubmission) {
  // A rejected + site must reach Runtime::submit under the documented
  // "<loop.name>/<target>" id and produce the same result as lowering by
  // hand — the pass may not perturb the fallback in any way.
  LoopNest l;
  l.name = "Fallback/hist";
  l.iterations = 64;
  l.body.push_back({"w", IndexExpr::indirect("x"), Op::kPlusAssign,
                    ValueExpr::computed()});
  Bindings b;
  for (std::uint32_t i = 0; i < 64; ++i)
    b.index_arrays["x"].push_back((i * 7) % 16);

  std::vector<double> via_pass(16, 0.0);
  const FrontendResult fr =
      submit_simplified(test_runtime(), l, "w", 16, b, via_pass);
  EXPECT_TRUE(fr.used_runtime);
  EXPECT_GT(fr.runtime_result.total_s(), 0.0);

  const LoopAnalysis la = analyze(l);
  const ReductionInput in = extract_input(l, la, "w", 16, b);
  std::vector<double> direct(16, 0.0);
  (void)test_runtime().submit("Fallback/hist/w.direct", in, direct);
  expect_close(via_pass, direct);
}

}  // namespace
}  // namespace sapp::frontend
