// Tests for the advanced PCLR features: shadow-address differentiation
// (§5.1.5), configurable combine operations and OS preemption handling
// (§5.1.4), and input page-placement policies.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/codegen.hpp"
#include "workloads/workload.hpp"

namespace sapp::sim {
namespace {

using workloads::Workload;

Workload small_workload(std::uint64_t seed = 5) {
  workloads::SynthParams p;
  p.dim = 4096;
  p.distinct = 1600;
  p.iterations = 2500;
  p.refs_per_iter = 2;
  p.seed = seed;
  Workload w;
  w.app = "synth";
  w.input = workloads::make_synthetic(p);
  w.instr_per_iter = 40;
  return w;
}

// ---------------- shadow addressing (§5.1.5) ----------------

TEST(ShadowAddresses, HelpersRoundTrip) {
  const Addr a = AddressMap::w_elem(1234);
  const Addr sh = AddressMap::shadow_of(a);
  EXPECT_TRUE(AddressMap::is_shadow(sh));
  EXPECT_FALSE(AddressMap::is_shadow(a));
  EXPECT_EQ(AddressMap::unshadow(sh), a);
  EXPECT_TRUE(AddressMap::is_w(sh));  // still the reduction array
}

TEST(ShadowAddresses, ProducesSameValuesAsSpecialInstructions) {
  const Workload w = small_workload();
  std::vector<double> special(w.input.pattern.dim, 0.0);
  std::vector<double> shadow(w.input.pattern.dim, 0.0);

  auto cfg = MachineConfig::paper(4);
  simulate_reduction(w, Mode::kHw, cfg, special);
  cfg.shadow_addresses = true;
  simulate_reduction(w, Mode::kHw, cfg, shadow);

  for (std::size_t e = 0; e < special.size(); ++e)
    ASSERT_DOUBLE_EQ(special[e], shadow[e]) << e;
}

TEST(ShadowAddresses, MatchesSequentialReference) {
  const Workload w = small_workload(9);
  std::vector<double> ref(w.input.pattern.dim, 0.0);
  run_sequential(w.input, ref);
  std::vector<double> got(w.input.pattern.dim, 0.0);
  auto cfg = MachineConfig::paper(8);
  cfg.shadow_addresses = true;
  simulate_reduction(w, Mode::kFlex, cfg, got);
  for (std::size_t e = 0; e < ref.size(); e += 31)
    ASSERT_NEAR(ref[e], got[e], 1e-9);
}

TEST(ShadowAddresses, SimilarTimingToSpecialInstructions) {
  // The paper presents the two mechanisms as equivalent; the simulated
  // costs should be close (same fills, same combines).
  const Workload w = small_workload();
  auto cfg = MachineConfig::paper(4);
  const auto special = simulate_reduction(w, Mode::kHw, cfg);
  cfg.shadow_addresses = true;
  const auto shadow = simulate_reduction(w, Mode::kHw, cfg);
  EXPECT_EQ(special.counters.red_fills, shadow.counters.red_fills);
  EXPECT_EQ(special.counters.combines, shadow.counters.combines);
  EXPECT_NEAR(static_cast<double>(shadow.total_cycles),
              static_cast<double>(special.total_cycles),
              0.05 * static_cast<double>(special.total_cycles));
}

// ---------------- configurable combine operation (§5.1.4) ----------------

TEST(CombineOp, MaxReductionThroughTheDirectory) {
  // Two processors accumulate max-partials into the same element.
  auto cfg = MachineConfig::paper(2);
  cfg.metadata_loads = false;
  cfg.combine_op = MachineConfig::CombineOp::kMax;
  Machine m(cfg, Mode::kHw, 64);

  auto mk = [&](double v) {
    std::vector<Op> ops;
    ops.push_back({.kind = Op::Kind::kLoadRed, .addr = 16});
    ops.push_back({.kind = Op::Kind::kStoreRed, .addr = 16, .value = v});
    ops.push_back({.kind = Op::Kind::kFlush});
    ops.push_back({.kind = Op::Kind::kBarrier, .label = "merge"});
    return ops;
  };
  std::vector<std::unique_ptr<TraceCursor>> cs;
  cs.push_back(std::make_unique<VectorCursor>(mk(3.5)));
  cs.push_back(std::make_unique<VectorCursor>(mk(7.25)));
  m.run(std::move(cs));
  EXPECT_DOUBLE_EQ(m.w_memory()[2], 7.25);
  // Untouched elements: combining the neutral element (-inf) left memory's
  // initial 0.0 unchanged only under max(0, -inf) = 0.
  EXPECT_DOUBLE_EQ(m.w_memory()[0], 0.0);
}

TEST(CombineOp, MinReduction) {
  auto cfg = MachineConfig::paper(1);
  cfg.metadata_loads = false;
  cfg.combine_op = MachineConfig::CombineOp::kMin;
  Machine m(cfg, Mode::kHw, 64);
  std::vector<Op> ops;
  ops.push_back({.kind = Op::Kind::kLoadRed, .addr = 0});
  ops.push_back({.kind = Op::Kind::kStoreRed, .addr = 0, .value = -2.5});
  ops.push_back({.kind = Op::Kind::kStoreRed, .addr = 0, .value = 4.0});
  ops.push_back({.kind = Op::Kind::kFlush});
  ops.push_back({.kind = Op::Kind::kBarrier, .label = "merge"});
  std::vector<std::unique_ptr<TraceCursor>> cs;
  cs.push_back(std::make_unique<VectorCursor>(std::move(ops)));
  m.run(std::move(cs));
  EXPECT_DOUBLE_EQ(m.w_memory()[0], -2.5);
}

// ---------------- preemption (§5.1.4) ----------------

TEST(Preemption, FlushesReductionDataAndStaysCorrect) {
  auto cfg = MachineConfig::paper(1);
  cfg.metadata_loads = false;
  Machine m(cfg, Mode::kHw, 64);
  std::vector<Op> ops;
  ops.push_back({.kind = Op::Kind::kLoadRed, .addr = 0});
  ops.push_back({.kind = Op::Kind::kStoreRed, .addr = 0, .value = 1.0});
  // The OS preempts the process mid-loop: reduction data must be flushed.
  ops.push_back({.kind = Op::Kind::kPreempt});
  ops.push_back({.kind = Op::Kind::kLoadRed, .addr = 0});
  ops.push_back({.kind = Op::Kind::kStoreRed, .addr = 0, .value = 2.0});
  ops.push_back({.kind = Op::Kind::kFlush});
  ops.push_back({.kind = Op::Kind::kBarrier, .label = "merge"});
  std::vector<std::unique_ptr<TraceCursor>> cs;
  cs.push_back(std::make_unique<VectorCursor>(std::move(ops)));
  const auto r = m.run(std::move(cs));
  EXPECT_DOUBLE_EQ(m.w_memory()[0], 3.0);
  // Two fills (one before, one after the preemption) and two combined
  // line-copies.
  EXPECT_EQ(r.counters.red_fills, 2u);
  EXPECT_EQ(r.counters.red_lines_flushed, 2u);
  EXPECT_GE(r.total_cycles, cfg.preempt_cycles);
}

// ---------------- input placement policies ----------------

TEST(InputPlacement, PoliciesChangeLoopCost) {
  // Input-heavy loop (Nbf-like: hundreds of bytes of pair list per
  // iteration) so the input stream dominates and placement matters.
  Workload w = small_workload(3);
  w.input_bytes_per_iter = 400;
  w.instr_per_iter = 60;
  auto base = MachineConfig::paper(8);

  auto loop_cycles = [&](MachineConfig::InputPlacement pl) {
    MachineConfig cfg = base;
    cfg.input_placement = pl;
    return simulate_reduction(w, Mode::kHw, cfg).phase("loop");
  };
  const auto master = loop_cycles(MachineConfig::InputPlacement::kMaster);
  const auto rr = loop_cycles(MachineConfig::InputPlacement::kRoundRobin);
  const auto local = loop_cycles(MachineConfig::InputPlacement::kReaderLocal);
  // Master-homed inputs serialize at node 0; reader-local is cheapest.
  EXPECT_GT(master, rr);
  EXPECT_GE(rr, local);
}

TEST(InputPlacement, SequentialUnaffected) {
  const Workload w = small_workload(4);
  auto cfg = MachineConfig::paper(4);
  cfg.input_placement = MachineConfig::InputPlacement::kMaster;
  const auto a = simulate_reduction(w, Mode::kSeq, cfg).total_cycles;
  cfg.input_placement = MachineConfig::InputPlacement::kReaderLocal;
  const auto b = simulate_reduction(w, Mode::kSeq, cfg).total_cycles;
  EXPECT_EQ(a, b);  // one processor: every policy is "local"
}

}  // namespace
}  // namespace sapp::sim
