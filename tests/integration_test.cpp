// End-to-end integration tests: the adaptive runtime must produce
// sequential-equivalent results on every official workload row, whatever
// scheme it selects, across deciders and thread counts.
#include <gtest/gtest.h>

#include <cmath>

#include "core/runtime.hpp"
#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

namespace sapp {
namespace {

ThreadPool& shared_pool() {
  static ThreadPool pool(3);
  return pool;
}

const std::vector<workloads::Fig3Row>& tiny_rows() {
  // Tiny scale: correctness, not performance.
  static const auto rows = workloads::fig3_rows(0.02, 31415);
  return rows;
}

class AdaptiveOnFig3 : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveOnFig3, MatchesSequential) {
  const auto& row = tiny_rows()[static_cast<std::size_t>(GetParam())];
  const ReductionInput& in = row.workload.input;

  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);

  AdaptiveReducer red(shared_pool(), MachineCoeffs::defaults());
  std::vector<double> out(in.pattern.dim, 0.0);
  red.invoke(in, out);

  const double tol = 1e-9 * std::max<double>(1.0, in.pattern.num_refs());
  for (std::size_t e = 0; e < ref.size(); e += 7)
    ASSERT_NEAR(ref[e], out[e], tol)
        << row.workload.app << " " << row.workload.variant << " via "
        << to_string(red.current());
}

TEST_P(AdaptiveOnFig3, RuleDeciderAlsoCorrect) {
  const auto& row = tiny_rows()[static_cast<std::size_t>(GetParam())];
  const ReductionInput& in = row.workload.input;
  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);

  AdaptiveReducer red(shared_pool(), MachineCoeffs::defaults(),
                      AdaptiveOptions{.use_rule_decider = true});
  std::vector<double> out(in.pattern.dim, 0.0);
  red.invoke(in, out);
  const double tol = 1e-9 * std::max<double>(1.0, in.pattern.num_refs());
  for (std::size_t e = 0; e < ref.size(); e += 13)
    ASSERT_NEAR(ref[e], out[e], tol);
}

std::string row_name(const ::testing::TestParamInfo<int>& info) {
  const auto& w = tiny_rows()[static_cast<std::size_t>(info.param)].workload;
  return w.app + "_" + std::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllRows, AdaptiveOnFig3, ::testing::Range(0, 21),
                         row_name);

// Selected scheme never violates applicability (lw on Spice rows).
TEST(AdaptiveOnFig3Suite, NeverSelectsIllegalScheme) {
  for (const auto& row : tiny_rows()) {
    const ReductionInput& in = row.workload.input;
    AdaptiveReducer red(shared_pool(), MachineCoeffs::defaults());
    std::vector<double> out(in.pattern.dim, 0.0);
    red.invoke(in, out);
    if (!in.pattern.iteration_replication_legal) {
      EXPECT_NE(red.current(), SchemeKind::kLocalWrite)
          << row.workload.app << " " << row.workload.variant;
    }
  }
}

// Repeated invocations through the runtime facade stay correct and stable.
TEST(RuntimeIntegration, MultiSiteRepeatedInvocations) {
  SmartAppsRuntime rt(SmartAppsRuntime::Options{
      .threads = 3, .calibrate = false, .adaptive = {}});
  const auto& rows = tiny_rows();
  const auto& a = rows[0].workload.input;   // Irreg
  const auto& b = rows[17].workload.input;  // Spice

  std::vector<double> ref_a(a.pattern.dim, 0.0), ref_b(b.pattern.dim, 0.0);
  run_sequential(a, ref_a);
  run_sequential(b, ref_b);

  std::vector<double> out_a(a.pattern.dim), out_b(b.pattern.dim);
  for (int k = 0; k < 5; ++k) {
    std::fill(out_a.begin(), out_a.end(), 0.0);
    std::fill(out_b.begin(), out_b.end(), 0.0);
    rt.reducer("irreg").invoke(a, out_a);
    rt.reducer("spice").invoke(b, out_b);
    for (std::size_t e = 0; e < ref_a.size(); e += 101)
      ASSERT_NEAR(ref_a[e], out_a[e], 1e-6);
    for (std::size_t e = 0; e < ref_b.size(); e += 101)
      ASSERT_NEAR(ref_b[e], out_b[e], 1e-6);
  }
  EXPECT_EQ(rt.reducer("irreg").invocations(), 5u);
  EXPECT_EQ(rt.reducer("irreg").recharacterizations(), 1u);
}

// Simulator x software cross-check: the PCLR machine and the software
// schemes compute the same reduction for the same workload.
TEST(CrossStack, SimulatorAgreesWithSoftwareSchemes) {
  const auto& row = tiny_rows()[4];  // Nbf
  const ReductionInput& in = row.workload.input;

  std::vector<double> sw(in.pattern.dim, 0.0);
  make_scheme(SchemeKind::kSelective)->run(in, shared_pool(), sw);

  std::vector<double> hw(in.pattern.dim, 0.0);
  sim::simulate_reduction(row.workload, sim::Mode::kHw,
                          sim::MachineConfig::paper(4), hw);

  for (std::size_t e = 0; e < sw.size(); e += 3)
    ASSERT_NEAR(sw[e], hw[e], 1e-9 * std::max<double>(
                                         1.0, in.pattern.num_refs()));
}

}  // namespace
}  // namespace sapp
