// Tests for the compiler front-end: reduction recognition per the §4
// footnote rules, legality analysis, and inspector-based pattern
// extraction.
#include <gtest/gtest.h>

#include "frontend/loop_ir.hpp"

namespace sapp::frontend {
namespace {

using Op = Statement::Op;

// The canonical loop of Fig. 5:  for i: w[x[i]] += expression.
LoopNest canonical(std::size_t n = 100) {
  LoopNest l;
  l.name = "fig5";
  l.iterations = n;
  l.body.push_back(
      {"w", IndexExpr::indirect("x"), Op::kPlusAssign, ValueExpr::computed()});
  return l;
}

TEST(Recognize, CanonicalReductionLoop) {
  const LoopAnalysis a = analyze(canonical());
  ASSERT_EQ(a.arrays.size(), 1u);
  EXPECT_TRUE(a.arrays[0].is_reduction);
  EXPECT_EQ(a.arrays[0].op, Op::kPlusAssign);
  EXPECT_TRUE(a.fully_reduction_parallel);
  EXPECT_TRUE(a.iteration_replication_legal);
}

TEST(Recognize, PlainAssignmentIsNotAReduction) {
  LoopNest l = canonical();
  l.body.push_back(
      {"w", IndexExpr::loop_index(), Op::kAssign, ValueExpr::computed()});
  const LoopAnalysis a = analyze(l);
  EXPECT_FALSE(a.find("w")->is_reduction);
  EXPECT_NE(a.find("w")->reason.find("plain assignment"), std::string::npos);
  EXPECT_FALSE(a.iteration_replication_legal);
}

TEST(Recognize, TargetReadElsewherePoisonsRecognition) {
  // w appears in another statement's RHS: not a reduction variable.
  LoopNest l = canonical();
  l.body.push_back({"y", IndexExpr::loop_index(), Op::kPlusAssign,
                    ValueExpr::array_read("w", IndexExpr::loop_index())});
  const LoopAnalysis a = analyze(l);
  EXPECT_FALSE(a.find("w")->is_reduction);
  EXPECT_NE(a.find("w")->reason.find("read elsewhere"), std::string::npos);
}

TEST(Recognize, SelfReferenceInExpressionPoisons) {
  LoopNest l;
  l.iterations = 10;
  l.body.push_back({"w", IndexExpr::loop_index(), Op::kPlusAssign,
                    ValueExpr::array_read("w", IndexExpr::loop_index(1))});
  const LoopAnalysis a = analyze(l);
  EXPECT_FALSE(a.find("w")->is_reduction);
  EXPECT_NE(a.find("w")->reason.find("occurs in its own update expression"),
            std::string::npos);
}

TEST(Recognize, MixedOperatorsRejectedPerSection514) {
  // §5.1.4: "Any loop that performs several types of reduction operation
  // must be distributed into multiple loops."
  LoopNest l = canonical();
  l.body.push_back({"w", IndexExpr::indirect("x"), Op::kMaxAssign,
                    ValueExpr::computed()});
  const LoopAnalysis a = analyze(l);
  EXPECT_FALSE(a.find("w")->is_reduction);
  EXPECT_FALSE(a.find("w")->single_operator);
  EXPECT_NE(a.find("w")->reason.find("mixed reduction operators"),
            std::string::npos);
}

TEST(Recognize, IndependentArraysAnalyzedSeparately) {
  LoopNest l = canonical();
  l.body.push_back({"hist", IndexExpr::indirect("bin"), Op::kPlusAssign,
                    ValueExpr::computed()});
  l.body.push_back(
      {"out", IndexExpr::loop_index(), Op::kAssign, ValueExpr::computed()});
  const LoopAnalysis a = analyze(l);
  EXPECT_TRUE(a.find("w")->is_reduction);
  EXPECT_TRUE(a.find("hist")->is_reduction);
  EXPECT_FALSE(a.find("out")->is_reduction);
  EXPECT_FALSE(a.fully_reduction_parallel);
  // The plain write forbids iteration replication — exactly the paper's
  // Spice situation.
  EXPECT_FALSE(a.iteration_replication_legal);
}

TEST(Recognize, MaxReductionRecognized) {
  LoopNest l;
  l.iterations = 50;
  l.body.push_back({"peak", IndexExpr::indirect("cell"), Op::kMaxAssign,
                    ValueExpr::input("sample")});
  const LoopAnalysis a = analyze(l);
  EXPECT_TRUE(a.find("peak")->is_reduction);
  EXPECT_EQ(a.find("peak")->op, Op::kMaxAssign);
}

// ---------------- extraction ----------------

TEST(Extract, BuildsPatternFromIndexArrays) {
  LoopNest l = canonical(4);
  Bindings b;
  b.index_arrays["x"] = {7, 3, 7, 1};
  const LoopAnalysis a = analyze(l);
  const ReductionInput in = extract_input(l, a, "w", 10, b);
  EXPECT_EQ(in.pattern.dim, 10u);
  EXPECT_EQ(in.pattern.iterations(), 4u);
  ASSERT_EQ(in.pattern.num_refs(), 4u);
  EXPECT_EQ(in.pattern.refs.row(0)[0], 7u);
  EXPECT_EQ(in.pattern.refs.row(1)[0], 3u);
  EXPECT_EQ(in.pattern.refs.row(3)[0], 1u);
  EXPECT_TRUE(in.consistent());
}

TEST(Extract, MultipleUpdatesPerIteration) {
  LoopNest l;
  l.iterations = 3;
  l.body.push_back({"w", IndexExpr::indirect("a"), Op::kPlusAssign,
                    ValueExpr::input("va")});
  l.body.push_back({"w", IndexExpr::indirect("b"), Op::kPlusAssign,
                    ValueExpr::input("vb")});
  Bindings bind;
  bind.index_arrays["a"] = {0, 1, 2};
  bind.index_arrays["b"] = {5, 5, 5};
  bind.value_arrays["va"] = {1.0, 2.0, 3.0};
  bind.value_arrays["vb"] = {10.0, 20.0, 30.0};
  const auto in = extract_input(l, analyze(l), "w", 8, bind);
  EXPECT_EQ(in.pattern.num_refs(), 6u);
  // Values interleave per body order: va[i], vb[i].
  EXPECT_DOUBLE_EQ(in.values[0], 1.0);
  EXPECT_DOUBLE_EQ(in.values[1], 10.0);
  EXPECT_DOUBLE_EQ(in.values[4], 3.0);
  EXPECT_DOUBLE_EQ(in.values[5], 30.0);
}

TEST(Extract, LegalityFlagsPropagate) {
  LoopNest l = canonical(5);
  l.body.push_back(
      {"log", IndexExpr::loop_index(), Op::kAssign, ValueExpr::computed()});
  Bindings b;
  b.index_arrays["x"] = {0, 1, 2, 3, 4};
  const auto a = analyze(l);
  const auto in = extract_input(l, a, "w", 10, b);
  EXPECT_FALSE(in.pattern.iteration_replication_legal);
}

TEST(Extract, RejectsUnrecognizedTarget) {
  LoopNest l = canonical(5);
  l.body.push_back(
      {"w", IndexExpr::loop_index(), Op::kAssign, ValueExpr::computed()});
  Bindings b;
  b.index_arrays["x"] = {0, 1, 2, 3, 4};
  const auto a = analyze(l);
  EXPECT_DEATH(extract_input(l, a, "w", 10, b), "not recognized");
}

TEST(Extract, RangeChecksSubscripts) {
  LoopNest l = canonical(2);
  Bindings b;
  b.index_arrays["x"] = {1, 99};
  const auto a = analyze(l);
  EXPECT_DEATH(extract_input(l, a, "w", 10, b), "extent");
}

// ---------------- end to end: extraction result is executable ----------

TEST(Extract, ExtractedInputRunsCorrectly) {
  LoopNest l = canonical(64);
  Bindings b;
  std::vector<std::uint32_t> x(64);
  std::vector<double> ref(16, 0.0);
  for (std::size_t i = 0; i < 64; ++i) x[i] = static_cast<std::uint32_t>(
      (i * 5) % 16);
  b.index_arrays["x"] = x;
  const auto in = extract_input(l, analyze(l), "w", 16, b);

  run_sequential(in, ref);
  double total = 0.0;
  for (double v : ref) total += v;
  EXPECT_GT(total, 0.0);  // computed() values are positive
}

}  // namespace
}  // namespace sapp::frontend
