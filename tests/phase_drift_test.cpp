// Tests for phase-aware re-adaptation: the PhaseMonitor time-EWMA drift
// detector, decision-cache round-tripping of the persisted phase history
// (including rejection of malformed/legacy files), and the AdaptiveReducer
// integration — stale-history warm starts demote within the first
// monitored window, frozen decisions re-plan but never re-decide.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "core/runtime.hpp"
#include "workloads/workload.hpp"

namespace sapp {
namespace {

// ---------------- time-EWMA drift detector ----------------

TEST(TimeDriftDetector, SteadyNoiseNeverFires) {
  PhaseMonitor mon;
  const double base = 2e-3;
  // Deterministic +-15% jitter around a steady 2 ms per invocation.
  for (int k = 0; k < 300; ++k) {
    const double jitter = 0.15 * std::sin(static_cast<double>(k) * 0.7);
    EXPECT_FALSE(mon.observe_time(base * (1.0 + jitter))) << "invocation " << k;
  }
  EXPECT_EQ(mon.time_streak(), 0);
  EXPECT_NEAR(mon.time_baseline(), base, 0.2 * base);
}

TEST(TimeDriftDetector, FiresWithinWindowOfARealShift) {
  PhaseMonitorOptions opt;
  PhaseMonitor mon(opt);
  for (int k = 0; k < opt.time_warmup + 5; ++k)
    EXPECT_FALSE(mon.observe_time(1e-3));
  // The input moves into a 4x-slower phase: the detector must fire within
  // the monitored window, not eventually.
  bool fired = false;
  int fired_at = 0;
  for (int k = 1; k <= opt.window() && !fired; ++k) {
    fired = mon.observe_time(4e-3);
    fired_at = k;
  }
  EXPECT_TRUE(fired);
  EXPECT_LE(fired_at, opt.window());
  EXPECT_GE(fired_at, opt.time_drift_patience);  // sustained, not a spike
}

TEST(TimeDriftDetector, SingleSpikeDoesNotFire) {
  PhaseMonitor mon;
  for (int k = 0; k < 10; ++k) EXPECT_FALSE(mon.observe_time(1e-3));
  EXPECT_FALSE(mon.observe_time(50e-3));  // one preempted invocation
  for (int k = 0; k < 50; ++k)
    EXPECT_FALSE(mon.observe_time(1e-3)) << "invocation " << k;
}

TEST(TimeDriftDetector, DownwardShiftAlsoFires) {
  PhaseMonitor mon;
  for (int k = 0; k < 5; ++k) EXPECT_FALSE(mon.observe_time(8e-3));
  bool fired = false;
  for (int k = 0; k < 10 && !fired; ++k) fired = mon.observe_time(0.5e-3);
  EXPECT_TRUE(fired);
}

TEST(TimeDriftDetector, SubNoiseFloorShiftIsIgnored) {
  PhaseMonitor mon;  // default floor: 100 us
  for (int k = 0; k < 5; ++k) EXPECT_FALSE(mon.observe_time(10e-6));
  // 4x ratio breach, but the absolute move is ~30 us — dispatch noise.
  for (int k = 0; k < 100; ++k) EXPECT_FALSE(mon.observe_time(40e-6));
}

TEST(TimeDriftDetector, SeededBaselineJudgesWithoutWarmup) {
  PhaseMonitorOptions opt;
  PhaseMonitor mon(opt);
  mon.seed_time_baseline(1e-3);  // persisted phase history said ~1 ms
  EXPECT_TRUE(mon.time_seeded());
  int fired_at = 0;
  for (int k = 1; k <= opt.window(); ++k) {
    if (mon.observe_time(10e-3)) {
      fired_at = k;
      break;
    }
  }
  // No warmup is consumed: the contradiction fires after exactly
  // `time_drift_patience` fresh measurements.
  EXPECT_EQ(fired_at, opt.time_drift_patience);
}

TEST(TimeDriftDetector, RebaseDisarmsSeededBaseline) {
  PhaseMonitor mon;
  mon.seed_time_baseline(1e-3);
  mon.rebase(PatternSignature{});
  EXPECT_FALSE(mon.time_seeded());
  EXPECT_EQ(mon.time_baseline(), 0.0);
}

TEST(TimeDriftDetector, DegenerateObservationsAreIgnored) {
  PhaseMonitor mon;
  EXPECT_FALSE(mon.observe_time(0.0));
  EXPECT_FALSE(mon.observe_time(-1.0));
  EXPECT_FALSE(mon.observe_time(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(mon.observe_time(std::numeric_limits<double>::infinity()));
  EXPECT_EQ(mon.time_baseline(), 0.0);  // none of those seeded the warmup
}

// ---------------- decision-cache phase history ----------------

CachedDecision history_entry() {
  CachedDecision d;
  d.site = "App/loop";
  d.scheme = SchemeKind::kHash;
  d.threads = 2;
  d.signature.dim = 5000;
  d.signature.iterations = 300;
  d.signature.refs = 900;
  d.signature.sampled_index_sum = 123456;
  d.signature.sampled_index_xor = 0xABCDEF;
  return d;
}

TEST(DecisionCachePhaseHistory, RoundTripPreservesHistory) {
  DecisionCache cache;
  CachedDecision d = history_entry();
  d.phase_times_s = {1.5e-3, 1.6e-3, 1.4e-3, 2.0e-3};
  cache.put(d);
  const auto round = DecisionCache::from_json(cache.to_json());
  ASSERT_TRUE(round.has_value());
  const CachedDecision* e = round->find("App/loop");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->phase_times_s, d.phase_times_s);
}

TEST(DecisionCachePhaseHistory, EmptyHistoryRoundTrips) {
  DecisionCache cache;
  cache.put(history_entry());  // no measured times yet
  const auto round = DecisionCache::from_json(cache.to_json());
  ASSERT_TRUE(round.has_value());
  EXPECT_TRUE(round->find("App/loop")->phase_times_s.empty());
}

TEST(DecisionCachePhaseHistory, SerializationKeepsOnlyTheMostRecentCap) {
  DecisionCache cache;
  CachedDecision d = history_entry();
  for (int k = 0; k < 50; ++k)
    d.phase_times_s.push_back(1e-3 + 1e-5 * k);
  cache.put(d);
  const auto round = DecisionCache::from_json(cache.to_json());
  ASSERT_TRUE(round.has_value());
  const auto& got = round->find("App/loop")->phase_times_s;
  ASSERT_EQ(got.size(), DecisionCache::kMaxPhaseHistory);
  // The *most recent* samples survive, oldest dropped.
  EXPECT_DOUBLE_EQ(got.back(), d.phase_times_s.back());
  EXPECT_DOUBLE_EQ(got.front(),
                   d.phase_times_s[d.phase_times_s.size() -
                                   DecisionCache::kMaxPhaseHistory]);
}

TEST(DecisionCachePhaseHistory, RejectsLegacyVersion1Files) {
  // A well-formed v1 document (pre-phase-history layout): the reader must
  // treat it as absent — a graceful cold start, not a warm start with the
  // feedback loop unarmed and not a crash.
  const char* v1 = R"({
    "schema_version": 1,
    "generator": "sapp-decision-cache",
    "sites": [{
      "site": "App/loop", "scheme": "rep", "threads": 2,
      "signature": {"dim": 100, "iterations": 50, "refs": 150,
                    "index_sum": "0x10", "index_xor": "0x20"},
      "predicted_total_s": 0.001, "invocations": 3, "rationale": "old"
    }]
  })";
  std::string err;
  EXPECT_FALSE(DecisionCache::from_json(v1, &err).has_value());
  EXPECT_NE(err.find("schema_version"), std::string::npos);
}

TEST(DecisionCachePhaseHistory, RejectsMalformedHistory) {
  const auto doc_with = [](const char* hist) {
    return std::string(R"({"schema_version": 2, "sites": [{
      "site": "s", "scheme": "rep", "threads": 2,
      "signature": {"dim": 100, "iterations": 50, "refs": 150,
                    "index_sum": "0x10", "index_xor": "0x20"},
      "phase_times_s": )") +
           hist + "}]}";
  };
  std::string err;
  // Missing entirely (v2 requires it), wrong type, negative and
  // non-numeric samples, oversized history: all malformed -> cold start.
  const char* v2_missing = R"({"schema_version": 2, "sites": [{
    "site": "s", "scheme": "rep", "threads": 2,
    "signature": {"dim": 100, "iterations": 50, "refs": 150,
                  "index_sum": "0x10", "index_xor": "0x20"}}]})";
  EXPECT_FALSE(DecisionCache::from_json(v2_missing, &err).has_value());
  EXPECT_FALSE(DecisionCache::from_json(doc_with("\"fast\""), &err)
                   .has_value());
  EXPECT_FALSE(DecisionCache::from_json(doc_with("[-0.5]"), &err).has_value());
  EXPECT_FALSE(
      DecisionCache::from_json(doc_with("[0.1, \"x\"]"), &err).has_value());
  std::string oversized = "[";
  for (std::size_t k = 0; k <= DecisionCache::kMaxPhaseHistory; ++k)
    oversized += (k ? ", " : "") + std::string("0.001");
  oversized += "]";
  EXPECT_FALSE(
      DecisionCache::from_json(doc_with(oversized.c_str()), &err).has_value());
  // And a valid history parses.
  EXPECT_TRUE(DecisionCache::from_json(doc_with("[0.001, 0.002]"), &err)
                  .has_value());
}

// ---------------- drifting workload generator ----------------

TEST(IrregReshuffle, PhasesShareSiteAndDimButNotDensity) {
  const auto d = workloads::make_irreg_reshuffle(60000, 40000, 4000, 7);
  EXPECT_EQ(d.dense.input.pattern.loop_id, d.sparse.input.pattern.loop_id);
  EXPECT_EQ(d.dense.input.pattern.dim, d.sparse.input.pattern.dim);
  EXPECT_TRUE(d.dense.input.consistent());
  EXPECT_TRUE(d.sparse.input.consistent());
  const std::size_t dense_touched = count_distinct(d.dense.input.pattern);
  const std::size_t sparse_touched = count_distinct(d.sparse.input.pattern);
  // The reshuffle collapses the active region by orders of magnitude —
  // that is the drift the runtime must catch.
  EXPECT_GT(dense_touched, 20 * sparse_touched);
  EXPECT_LE(sparse_touched, d.sparse.input.pattern.dim / 128);
  EXPECT_GT(d.dense.input.pattern.num_refs(),
            4 * d.sparse.input.pattern.num_refs());
}

// ---------------- reducer integration ----------------

ReductionInput big_sparse_input() {
  workloads::SynthParams p;
  p.dim = 400000;  // rep's O(dim) init/merge lands well above the noise floor
  p.distinct = 800;
  p.iterations = 2000;
  p.refs_per_iter = 3;
  p.seed = 91;
  p.lw_legal = false;
  return workloads::make_synthetic(p);
}

TEST(Runtime, StalePhaseHistoryWarmStartRecharacterizesWithinWindow) {
  // A cache whose *history* (not its model prediction) promises
  // 1000x-faster invocations: the warm-started site must adopt, contradict
  // it against fresh measurements, and re-characterize within the first
  // monitored window instead of trusting the stale scheme forever.
  const auto in = big_sparse_input();
  DecisionCache cache;
  CachedDecision d;
  d.site = "site";
  d.scheme = SchemeKind::kRep;  // pessimal here: tiny touched set, huge dim
  d.threads = 2;
  d.signature = PatternSignature::of(in.pattern);
  d.predicted_total_s = 0.0;  // keep the model-prediction path out of it
  d.phase_times_s = {2e-6, 2e-6, 3e-6, 2e-6};
  cache.put(d);
  const std::string path =
      ::testing::TempDir() + "phase_drift_stale_history.json";
  ASSERT_TRUE(cache.save(path));

  RuntimeOptions o;
  o.threads = 2;
  o.calibrate = false;
  o.adaptive.mispredict_patience = 1 << 30;  // isolate the history path
  o.decision_cache_path = path;
  Runtime rt(o);
  const int window = o.adaptive.monitor.window();
  std::vector<double> out(in.pattern.dim, 0.0);
  (void)rt.submit("site", in, out);
  EXPECT_TRUE(rt.site("site").warm_started());
  EXPECT_EQ(rt.site("site").current(), SchemeKind::kRep);
  EXPECT_EQ(rt.site("site").recharacterizations(), 0u);
  int recharacterized_at = 0;
  for (int k = 2; k <= window + 1 && recharacterized_at == 0; ++k) {
    (void)rt.submit("site", in, out);
    if (rt.site("site").recharacterizations() >= 1) recharacterized_at = k;
  }
  EXPECT_GT(recharacterized_at, 0) << "stale history was never contradicted";
  EXPECT_LE(recharacterized_at, window);
  EXPECT_GE(rt.site("site").time_drift_demotions(), 1u);
  EXPECT_FALSE(rt.site("site").warm_started());
  std::remove(path.c_str());
}

TEST(Runtime, HonestWarmStartKeepsTheCachedScheme) {
  // The counterpart: history recorded on this host, for this input, must
  // NOT be contradicted — the warm start sticks.
  const auto in = big_sparse_input();
  const std::string path =
      ::testing::TempDir() + "phase_drift_honest_history.json";
  std::vector<double> out(in.pattern.dim, 0.0);
  RuntimeOptions o;
  o.threads = 2;
  o.calibrate = false;
  o.adaptive.mispredict_patience = 1 << 30;
  {
    Runtime learner(o);
    for (int k = 0; k < 6; ++k) (void)learner.submit("site", in, out);
    ASSERT_TRUE(learner.save_decisions(path));
    const DecisionCache snap = learner.snapshot_decisions();
    EXPECT_FALSE(snap.find("site")->phase_times_s.empty());
  }
  RuntimeOptions w = o;
  w.decision_cache_path = path;
  Runtime rt(w);
  const int window = o.adaptive.monitor.window();
  for (int k = 0; k < window + 2; ++k) (void)rt.submit("site", in, out);
  EXPECT_TRUE(rt.site("site").warm_started());
  EXPECT_EQ(rt.site("site").recharacterizations(), 0u);
  EXPECT_EQ(rt.site("site").time_drift_demotions(), 0u);
  std::remove(path.c_str());
}

TEST(AdaptiveReducer, FrozenDecisionsReplanButNeverRedecide) {
  ThreadPool pool(2);
  AdaptiveOptions opt;
  opt.freeze_decisions = true;
  AdaptiveReducer red(pool, MachineCoeffs::defaults(), opt);

  workloads::SynthParams p;
  p.dim = 50000;
  p.distinct = 25000;
  p.iterations = 4000;
  p.refs_per_iter = 2;
  p.seed = 5;
  const auto a = workloads::make_synthetic(p);
  std::vector<double> out(a.pattern.dim, 0.0);
  red.invoke(a, out);
  EXPECT_EQ(red.recharacterizations(), 1u);
  const SchemeKind frozen = red.current();

  // Structural drift on the same array: the frozen reducer must keep the
  // scheme (no re-decision) but rebuild its inspector plan — proven by a
  // correct result on the drifted input.
  p.distinct = 300;
  p.iterations = 500;
  p.seed = 6;
  const auto b = workloads::make_synthetic(p);
  for (int k = 0; k < 4; ++k) {
    std::fill(out.begin(), out.end(), 0.0);
    red.invoke(b, out);
  }
  EXPECT_EQ(red.recharacterizations(), 1u);
  EXPECT_EQ(red.scheme_switches(), 0u);
  EXPECT_EQ(red.time_drift_demotions(), 0u);
  EXPECT_EQ(red.current(), frozen);
  std::vector<double> ref(b.pattern.dim, 0.0);
  run_sequential(b, ref);
  for (std::size_t e = 0; e < ref.size(); e += 101)
    ASSERT_NEAR(ref[e], out[e], 1e-8 + 1e-8 * std::abs(ref[e]));
}

TEST(Runtime, SnapshotPersistsTheReducersPhaseHistory) {
  const auto in = big_sparse_input();
  RuntimeOptions o;
  o.threads = 2;
  o.calibrate = false;
  o.adaptive.mispredict_patience = 1 << 30;
  o.adaptive.monitor.time_drift_patience = 1 << 30;
  Runtime rt(o);
  std::vector<double> out(in.pattern.dim, 0.0);
  const int n = 5;
  for (int k = 0; k < n; ++k) (void)rt.submit("site", in, out);
  const auto& hist = rt.site("site").phase_history();
  EXPECT_EQ(hist.size(), static_cast<std::size_t>(n));
  EXPECT_LE(hist.size(), DecisionCache::kMaxPhaseHistory);
  const DecisionCache snap = rt.snapshot_decisions();
  ASSERT_NE(snap.find("site"), nullptr);
  EXPECT_EQ(snap.find("site")->phase_times_s, hist);
}

}  // namespace
}  // namespace sapp
