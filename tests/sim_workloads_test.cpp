// Per-application simulator sanity: every Table 2 code, at test scale,
// must show the structural properties the evaluation depends on —
// deterministic cycles, conserved reduction-line accounting, PCLR value
// correctness, and the documented per-app signatures.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/codegen.hpp"
#include "workloads/paramsets.hpp"

namespace sapp::sim {
namespace {

const std::vector<workloads::Table2Row>& rows() {
  static const auto r = workloads::table2_rows(0.05, 99);
  return r;
}

class Table2Sim : public ::testing::TestWithParam<int> {};

TEST_P(Table2Sim, PclrValuesMatchSequential) {
  const auto& w = rows()[static_cast<std::size_t>(GetParam())].workload;
  std::vector<double> ref(w.input.pattern.dim, 0.0);
  run_sequential(w.input, ref);
  std::vector<double> got(w.input.pattern.dim, 0.0);
  simulate_reduction(w, Mode::kHw, MachineConfig::paper(8), got);
  const double tol =
      1e-9 * std::max<double>(1.0, static_cast<double>(w.input.pattern.num_refs()));
  for (std::size_t e = 0; e < ref.size(); e += 11)
    ASSERT_NEAR(ref[e], got[e], tol) << w.app << " elem " << e;
}

TEST_P(Table2Sim, ReductionLineAccountingConserved) {
  // Every neutral-filled line is eventually combined exactly once: fills
  // == displaced + flushed (no line is lost or combined twice).
  const auto& w = rows()[static_cast<std::size_t>(GetParam())].workload;
  const auto r = simulate_reduction(w, Mode::kHw, MachineConfig::paper(8));
  EXPECT_EQ(r.counters.red_fills,
            r.counters.red_lines_displaced + r.counters.red_lines_flushed)
      << w.app;
  EXPECT_EQ(r.counters.combines,
            r.counters.red_fills * MachineConfig::paper(8).elems_per_line())
      << w.app;
}

TEST_P(Table2Sim, OrderingHwFasterThanSwSlowerThanIdeal) {
  // At very small scales PCLR's fixed costs (whole-cache flush sweep,
  // per-line neutral fills) are not amortized and Sw can win — a genuine
  // crossover, cf. the Vml discussion in docs/BENCHMARKS.md. From ~15% of the
  // paper's sizes upward, PCLR wins for every code (Fig. 6's ordering).
  static const auto amortized_rows = workloads::table2_rows(0.15, 99);
  const auto& w =
      amortized_rows[static_cast<std::size_t>(GetParam())].workload;
  const auto cfg = MachineConfig::paper(8);
  const auto seq = simulate_reduction(w, Mode::kSeq, cfg).total_cycles;
  const auto sw = simulate_reduction(w, Mode::kSw, cfg).total_cycles;
  const auto hw = simulate_reduction(w, Mode::kHw, cfg).total_cycles;
  EXPECT_LT(hw, sw) << w.app;
  // Speedup bounded by the machine size (no better than ideal + small
  // aggregate-cache slack).
  EXPECT_LT(static_cast<double>(seq) / hw, 8.0 * 4.0) << w.app;
  EXPECT_GT(static_cast<double>(seq) / hw, 1.0) << w.app;
}

TEST(Table2Signatures, PclrFixedCostsNotAmortizedAtToyScale) {
  // Pin the crossover itself: at 5% scale the Nbf loop is too small for
  // the flush sweep + fills to pay off.
  const auto& nbf = rows()[4].workload;
  const auto cfg = MachineConfig::paper(8);
  const auto sw = simulate_reduction(nbf, Mode::kSw, cfg).total_cycles;
  const auto hw = simulate_reduction(nbf, Mode::kHw, cfg).total_cycles;
  EXPECT_GT(hw, sw);
}

TEST_P(Table2Sim, DeterministicCycleCounts) {
  const auto& w = rows()[static_cast<std::size_t>(GetParam())].workload;
  const auto cfg = MachineConfig::paper(4);
  const auto a = simulate_reduction(w, Mode::kFlex, cfg);
  const auto b = simulate_reduction(w, Mode::kFlex, cfg);
  EXPECT_EQ(a.total_cycles, b.total_cycles) << w.app;
  EXPECT_EQ(a.counters.l1_hits, b.counters.l1_hits) << w.app;
  EXPECT_EQ(a.counters.combines, b.counters.combines) << w.app;
}

std::string app_name(const ::testing::TestParamInfo<int>& info) {
  return rows()[static_cast<std::size_t>(info.param)].workload.app;
}

INSTANTIATE_TEST_SUITE_P(AllApps, Table2Sim, ::testing::Range(0, 5),
                         app_name);

// --- App-specific signatures the evaluation text relies on.

TEST(Table2Signatures, VmlNeverDisplacesItsCacheResidentArray) {
  const auto& vml = rows()[2].workload;
  ASSERT_EQ(vml.app, "Vml");
  const auto r = simulate_reduction(vml, Mode::kHw, MachineConfig::paper(16));
  EXPECT_EQ(r.counters.red_lines_displaced, 0u);
  EXPECT_GT(r.counters.red_lines_flushed, 0u);
}

TEST(Table2Signatures, SwInitScalesWithArrayNotIterations) {
  // Euler (big array, few iterations at this scale) must spend relatively
  // more of its Sw time in init than Nbf (small per-proc array share,
  // heavy loop).
  const auto cfg = MachineConfig::paper(8);
  const auto euler = simulate_reduction(rows()[0].workload, Mode::kSw, cfg);
  const auto nbf = simulate_reduction(rows()[4].workload, Mode::kSw, cfg);
  const double euler_init_frac =
      static_cast<double>(euler.phase("init")) / euler.total_cycles;
  const double nbf_init_frac =
      static_cast<double>(nbf.phase("init")) / nbf.total_cycles;
  EXPECT_GT(euler_init_frac, nbf_init_frac);
}

TEST(Table2Signatures, SeqCyclesScaleRoughlyLinearlyWithIterations) {
  const auto small = workloads::make_euler(0.05, 7);
  const auto big = workloads::make_euler(0.10, 7);
  const auto cfg = MachineConfig::paper(1);
  const auto cs = simulate_reduction(small, Mode::kSeq, cfg).total_cycles;
  const auto cb = simulate_reduction(big, Mode::kSeq, cfg).total_cycles;
  const double ratio = static_cast<double>(cb) / static_cast<double>(cs);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.6);
}

}  // namespace
}  // namespace sapp::sim
