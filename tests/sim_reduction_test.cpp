// Integration tests: workload -> trace codegen -> machine, checking PCLR
// value correctness against the sequential reduction and the qualitative
// properties behind Fig. 6 / Fig. 7 / Table 2.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/codegen.hpp"
#include "workloads/workload.hpp"

namespace sapp::sim {
namespace {

using workloads::Workload;

Workload small_workload(std::uint64_t seed = 7) {
  workloads::SynthParams p;
  p.dim = 4096;
  p.distinct = 1500;
  p.iterations = 3000;
  p.refs_per_iter = 2;
  p.locality = 0.7;
  p.window = 64;
  p.body_flops = 4;
  p.seed = seed;
  Workload w;
  w.app = "synth";
  w.loop = "test";
  w.input = workloads::make_synthetic(p);
  w.instr_per_iter = 40;
  return w;
}

std::vector<double> sequential_reference(const Workload& w) {
  std::vector<double> ref(w.input.pattern.dim, 0.0);
  run_sequential(w.input, ref);
  return ref;
}

TEST(SimReduction, PclrMatchesSequentialValues) {
  const Workload w = small_workload();
  const auto ref = sequential_reference(w);
  std::vector<double> got(w.input.pattern.dim, 0.0);
  auto cfg = MachineConfig::paper(4);
  simulate_reduction(w, Mode::kHw, cfg, got);
  double max_err = 0.0;
  for (std::size_t e = 0; e < ref.size(); ++e)
    max_err = std::max(max_err, std::abs(ref[e] - got[e]));
  EXPECT_LT(max_err, 1e-9);
}

TEST(SimReduction, FlexMatchesSequentialValues) {
  const Workload w = small_workload(11);
  const auto ref = sequential_reference(w);
  std::vector<double> got(w.input.pattern.dim, 0.0);
  simulate_reduction(w, Mode::kFlex, MachineConfig::paper(8), got);
  for (std::size_t e = 0; e < ref.size(); e += 97)
    EXPECT_NEAR(ref[e], got[e], 1e-9);
}

TEST(SimReduction, SwHasInitLoopMergePhases) {
  const Workload w = small_workload();
  auto r = simulate_reduction(w, Mode::kSw, MachineConfig::paper(4));
  EXPECT_GT(r.phase("init"), 0u);
  EXPECT_GT(r.phase("loop"), 0u);
  EXPECT_GT(r.phase("merge"), 0u);
}

// Larger array: the PCLR advantage (flush ∝ cache size, merge ∝ array
// size) needs the array to outweigh the fixed L2 sweep; below that, Sw's
// merge can win — which is real crossover behaviour, not a bug.
Workload medium_workload(std::uint64_t seed = 21) {
  workloads::SynthParams p;
  p.dim = 60000;
  p.distinct = 30000;
  p.iterations = 40000;
  p.refs_per_iter = 2;
  p.locality = 0.6;
  p.window = 128;
  p.body_flops = 4;
  p.seed = seed;
  Workload w;
  w.app = "synth-medium";
  w.input = workloads::make_synthetic(p);
  w.instr_per_iter = 60;
  return w;
}

TEST(SimReduction, PclrEliminatesInitAndShrinksMerge) {
  const Workload w = medium_workload();
  auto cfg = MachineConfig::paper(4);
  auto sw = simulate_reduction(w, Mode::kSw, cfg);
  auto hw = simulate_reduction(w, Mode::kHw, cfg);
  // PCLR "init" is just ConfigHardware + barrier.
  EXPECT_LT(hw.phase("init"), sw.phase("init") / 2);
  // The flush is much cheaper than the software merge.
  EXPECT_LT(hw.phase("merge"), sw.phase("merge"));
  // And overall PCLR wins.
  EXPECT_LT(hw.total_cycles, sw.total_cycles);
}

TEST(SimReduction, FlexBetweenSwAndHw) {
  const Workload w = medium_workload();
  auto cfg = MachineConfig::paper(4);
  const auto sw = simulate_reduction(w, Mode::kSw, cfg).total_cycles;
  const auto hw = simulate_reduction(w, Mode::kHw, cfg).total_cycles;
  const auto fx = simulate_reduction(w, Mode::kFlex, cfg).total_cycles;
  EXPECT_GE(fx, hw);
  EXPECT_LT(fx, sw);
}

TEST(SimReduction, FlushCostCrossoverOnTinyArrays) {
  // For an array far smaller than the L2, the whole-cache flush sweep can
  // cost more than the (tiny) software merge — the Vml-shaped corner.
  const Workload w = small_workload();
  auto cfg = MachineConfig::paper(4);
  auto sw = simulate_reduction(w, Mode::kSw, cfg);
  auto hw = simulate_reduction(w, Mode::kHw, cfg);
  // Even here PCLR still wins overall (no init, cheaper loop)...
  EXPECT_LT(hw.total_cycles, sw.total_cycles);
  // ...but the flush-vs-merge advantage has inverted or nearly so.
  EXPECT_GT(hw.phase("merge") * 5, sw.phase("merge"));
}

TEST(SimReduction, ParallelBeatsSequential) {
  const Workload w = small_workload();
  auto cfg = MachineConfig::paper(8);
  const auto seq = simulate_reduction(w, Mode::kSeq, cfg).total_cycles;
  const auto hw = simulate_reduction(w, Mode::kHw, cfg).total_cycles;
  EXPECT_GT(static_cast<double>(seq) / hw, 1.5);
}

TEST(SimReduction, HwScalesWithProcessors) {
  const Workload w = small_workload();
  const auto c4 =
      simulate_reduction(w, Mode::kHw, MachineConfig::paper(4)).total_cycles;
  const auto c16 =
      simulate_reduction(w, Mode::kHw, MachineConfig::paper(16)).total_cycles;
  EXPECT_LT(c16, c4);
}

TEST(SimReduction, SwMergeDoesNotScale) {
  // The merge sweeps the whole array regardless of P (Amdahl's law on the
  // merge step, the paper's explanation of Fig. 7's Sw curve).
  const Workload w = small_workload();
  const auto m4 =
      simulate_reduction(w, Mode::kSw, MachineConfig::paper(4)).phase("merge");
  const auto m16 = simulate_reduction(w, Mode::kSw, MachineConfig::paper(16))
                       .phase("merge");
  // Allow noise but demand clearly sublinear scaling (< 2x for 4x procs).
  EXPECT_GT(m16 * 2, m4 / 2);
}

TEST(SimReduction, DisplacementsHappenWhenArrayExceedsCache) {
  // 4096-element array = 32 KB < 512 KB L2: no displacement expected.
  const Workload small = small_workload();
  auto cfg = MachineConfig::paper(2);
  auto rs = simulate_reduction(small, Mode::kHw, cfg);
  EXPECT_EQ(rs.counters.red_lines_displaced, 0u);
  EXPECT_GT(rs.counters.red_lines_flushed, 0u);

  // A >512 KB touched set per node must displace.
  workloads::SynthParams p;
  p.dim = 200000;  // 1.6 MB
  p.distinct = 180000;
  p.iterations = 100000;
  p.refs_per_iter = 2;
  p.locality = 0.1;
  p.window = 1024;
  p.seed = 3;
  Workload big;
  big.app = "synth-big";
  big.input = workloads::make_synthetic(p);
  big.instr_per_iter = 20;
  auto rb = simulate_reduction(big, Mode::kHw, MachineConfig::paper(1));
  EXPECT_GT(rb.counters.red_lines_displaced, 0u);
}

TEST(SimReduction, SeqRunsOnOneNode) {
  const Workload w = small_workload();
  auto cfg = MachineConfig::paper(16);
  auto r = simulate_reduction(w, Mode::kSeq, cfg);
  EXPECT_EQ(r.counters.remote_misses, 0u);  // everything first-touch local
}

TEST(SimReduction, DeterministicEndToEnd) {
  const Workload w = small_workload();
  auto cfg = MachineConfig::paper(8);
  auto a = simulate_reduction(w, Mode::kFlex, cfg);
  auto b = simulate_reduction(w, Mode::kFlex, cfg);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.counters.red_lines_displaced, b.counters.red_lines_displaced);
}

}  // namespace
}  // namespace sapp::sim
