// Tests for the reproduction runner: JSON round-trips, the experiment
// registry's duplicate/unknown-name handling, CLI parsing, and a golden
// check that a real experiment's JSON document keeps its schema, scheme
// names and workload names stable (docs/results/ consumers rely on them).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <set>
#include <stdexcept>

#include "repro/histogram.hpp"
#include "repro/registry.hpp"
#include "repro/runner.hpp"

namespace sapp::repro {
namespace {

// ---------------------------------------------------------------- JSON

TEST(ReproJson, RoundTripsNestedDocument) {
  JsonValue doc = JsonValue::object();
  doc.set("s", "text");
  doc.set("n", 42);
  doc.set("f", 2.5);
  doc.set("b", true);
  doc.set("z", nullptr);
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  JsonValue inner = JsonValue::object();
  inner.set("k", 0.125);
  arr.push_back(std::move(inner));
  doc.set("a", std::move(arr));

  const std::string text = doc.dump();
  std::string err;
  const auto parsed = JsonValue::parse(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, doc);
}

TEST(ReproJson, EscapesAndParsesSpecialCharacters) {
  JsonValue doc = JsonValue::object();
  const std::string nasty = "a\"b\\c\nd\te\x01";
  doc.set("k", nasty);
  const auto parsed = JsonValue::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("k")->as_string(), nasty);
}

TEST(ReproJson, ParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "{\"a\":1,}", "[1] extra",
        "\"unterminated", "{1: 2}", "nan", "inf", "[inf]", "007", "1.",
        "1e", "-", "+1"}) {
    std::string err;
    EXPECT_FALSE(JsonValue::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(ReproJson, ParserAcceptsJsonNumberGrammar) {
  for (const auto& [text, expected] :
       {std::pair{"0", 0.0}, {"-0.5", -0.5}, {"1e3", 1000.0},
        {"2.5E-1", 0.25}, {"10", 10.0}}) {
    const auto v = JsonValue::parse(text);
    ASSERT_TRUE(v.has_value()) << text;
    EXPECT_DOUBLE_EQ(v->as_number(), expected) << text;
  }
}

TEST(ReproJson, NumbersRenderWithoutFloatNoise) {
  EXPECT_EQ(format_json_number(3.0), "3");
  EXPECT_EQ(format_json_number(0.25), "0.25");
  EXPECT_EQ(format_json_number(-17.0), "-17");
  EXPECT_EQ(format_json_number(round_to(1.0 / 3.0, 4)), "0.3333");
}

TEST(ReproJson, ObjectSetReplacesInPlace) {
  JsonValue o = JsonValue::object();
  o.set("a", 1);
  o.set("b", 2);
  o.set("a", 3);
  ASSERT_EQ(o.members().size(), 2u);
  EXPECT_EQ(o.members()[0].first, "a");
  EXPECT_EQ(o.find("a")->as_number(), 3.0);
}

// ------------------------------------------------------------ registry

Experiment dummy(const std::string& name) {
  return {.name = name,
          .title = "t",
          .paper_ref = "p",
          .description = "d",
          .default_scale = 1.0,
          .run = [](RunContext&) { return ExperimentResult{}; }};
}

TEST(ExperimentRegistry, RejectsDuplicateNames) {
  ExperimentRegistry r;
  r.add(dummy("one"));
  EXPECT_THROW(r.add(dummy("one")), std::invalid_argument);
  EXPECT_EQ(r.size(), 1u);
}

TEST(ExperimentRegistry, RejectsEmptyNameAndMissingRun) {
  ExperimentRegistry r;
  EXPECT_THROW(r.add(dummy("")), std::invalid_argument);
  Experiment no_run = dummy("x");
  no_run.run = nullptr;
  EXPECT_THROW(r.add(no_run), std::invalid_argument);
}

TEST(ExperimentRegistry, UnknownLookupNamesTheExperiment) {
  ExperimentRegistry r;
  r.add(dummy("fig3"));
  EXPECT_TRUE(r.contains("fig3"));
  EXPECT_FALSE(r.contains("nope"));
  try {
    (void)r.find("nope");
    FAIL() << "find() should have thrown";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nope"), std::string::npos);
    EXPECT_NE(msg.find("fig3"), std::string::npos);
  }
}

// Golden list: renaming or dropping an experiment breaks docs/results/
// consumers and docs/reproducing.md — change both together, deliberately.
TEST(ExperimentRegistry, BuiltinExperimentsAreStable) {
  const std::vector<std::string> expected = {
      "fig3_adaptive_table",     "ablation_decision",
      "fig6_pclr_breakdown",     "fig7_scalability",
      "table2_appchar",          "ablation_fpunit",
      "ablation_linesize",       "ablation_placement",
      "ablation_flex_occupancy", "spec_rlrpd",
      "overhead",                "adaptive_sites",
      "phase_drift",             "serving",
      "checking",                "kernels",
      "simplify",                "distributed",
  };
  const auto& reg = builtin_experiments();
  ASSERT_GE(reg.size(), 9u);
  std::vector<std::string> names;
  for (const auto& e : reg.list()) {
    names.push_back(e.name);
    EXPECT_FALSE(e.title.empty()) << e.name;
    EXPECT_FALSE(e.paper_ref.empty()) << e.name;
    EXPECT_FALSE(e.description.empty()) << e.name;
    EXPECT_GT(e.default_scale, 0.0) << e.name;
  }
  EXPECT_EQ(names, expected);
}

// ----------------------------------------------------------------- CLI

TEST(ReproCli, ParsesFlagsAndExperiments) {
  const char* argv[] = {"sapp_repro", "fig7_scalability", "--tiny",
                        "--format", "table,json", "--threads", "3",
                        "--scale", "0.5", "--out", "outdir"};
  CliOptions opts;
  ASSERT_EQ(parse_cli(static_cast<int>(std::size(argv)), argv, opts), "");
  EXPECT_TRUE(opts.run.tiny);
  EXPECT_EQ(opts.run.threads, 3u);
  EXPECT_DOUBLE_EQ(opts.run.scale, 0.5);
  EXPECT_EQ(opts.out_dir, "outdir");
  EXPECT_EQ(opts.formats, (std::vector<std::string>{"table", "json"}));
  EXPECT_EQ(opts.experiments, (std::vector<std::string>{"fig7_scalability"}));
}

TEST(ReproCli, RejectsBadValues) {
  auto parse = [](std::initializer_list<const char*> args) {
    std::vector<const char*> argv = {"sapp_repro"};
    argv.insert(argv.end(), args.begin(), args.end());
    CliOptions opts;
    return parse_cli(static_cast<int>(argv.size()), argv.data(), opts);
  };
  EXPECT_NE(parse({"--scale", "2.0"}), "");
  EXPECT_NE(parse({"--threads", "0"}), "");
  EXPECT_NE(parse({"--format", "xml"}), "");
  EXPECT_NE(parse({"--frmat", "json"}), "");
  EXPECT_NE(parse({"--out"}), "");
}

TEST(ReproCli, CheckImpliesJsonFormat) {
  const char* argv[] = {"sapp_repro", "--all", "--check", "--format", "table"};
  CliOptions opts;
  ASSERT_EQ(parse_cli(static_cast<int>(std::size(argv)), argv, opts), "");
  EXPECT_NE(std::find(opts.formats.begin(), opts.formats.end(), "json"),
            opts.formats.end());
}

// ------------------------------------------------- golden schema check

// Run a real simulation-backed experiment at tiny sizes and pin down the
// JSON schema plus the scheme and workload vocabularies.
TEST(ReproGolden, Fig6JsonSchemaSchemesAndWorkloadsAreStable) {
  RunOptions opt;
  opt.tiny = true;
  opt.threads = 2;
  RunContext ctx(opt);
  const Experiment& exp = builtin_experiments().find("fig6_pclr_breakdown");
  const ExperimentResult result = exp.run(ctx);

  RunMeta meta;
  meta.experiment = exp.name;
  meta.title = exp.title;
  meta.paper_ref = exp.paper_ref;
  meta.scale = ctx.scale(exp.default_scale);
  meta.threads = ctx.threads();
  meta.reps = ctx.reps();
  meta.warmup = ctx.warmup();
  meta.tiny = true;
  const JsonValue doc = result_to_json(meta, HostInfo::current(), result);

  EXPECT_EQ(validate_result_json(doc), "");

  // Top-level keys, in rendering order.
  std::vector<std::string> keys;
  for (const auto& [k, v] : doc.members()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{
                      "schema_version", "generator", "experiment", "title",
                      "paper_ref", "host", "environment", "config", "tables",
                      "metrics", "notes"}));
  EXPECT_EQ(doc.find("experiment")->as_string(), "fig6_pclr_breakdown");
  EXPECT_EQ(doc.find("paper_ref")->as_string(), "Fig. 6");

  // Table vocabulary.
  const auto& tables = doc.find("tables")->items();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].find("name")->as_string(), "simulated_cycles");
  EXPECT_EQ(tables[1].find("name")->as_string(), "normalized_breakdown");

  // Workload names: the five Table 2 codes, in paper order.
  const std::set<std::string> expected_apps = {"Euler", "Equake", "Vml",
                                               "Charmm", "Nbf"};
  std::set<std::string> apps;
  for (const auto& row : tables[0].find("rows")->items())
    apps.insert(row.items()[0].as_string());
  EXPECT_EQ(apps, expected_apps);

  // Scheme names in the breakdown: Sw / Hw / Flex only.
  std::set<std::string> schemes;
  for (const auto& row : tables[1].find("rows")->items())
    schemes.insert(row.items()[1].as_string());
  EXPECT_EQ(schemes, (std::set<std::string>{"Sw", "Hw", "Flex"}));

  // Summary metrics the docs reference.
  for (const char* metric :
       {"hm_speedup_sw", "hm_speedup_hw", "hm_speedup_flex",
        "flex_vs_hw_gap_pct"}) {
    const JsonValue* v = doc.find("metrics")->find(metric);
    ASSERT_NE(v, nullptr) << metric;
    EXPECT_TRUE(v->is_number()) << metric;
  }

  // The markdown and CSV renderings agree on the cell vocabulary.
  const std::string md = render_markdown(meta, HostInfo::current(), result);
  EXPECT_NE(md.find("| Euler |"), std::string::npos);
  const std::string csv = render_csv(meta, result);
  EXPECT_NE(csv.find("# table: normalized_breakdown"), std::string::npos);
}

TEST(ReproValidate, CatchesSchemaViolations) {
  JsonValue doc = JsonValue::object();
  EXPECT_NE(validate_result_json(doc), "");  // everything missing
  EXPECT_NE(validate_result_json(JsonValue(3)), "");  // not an object

  // Build a minimal valid document, then break it.
  RunMeta meta;
  meta.experiment = "x";
  meta.title = "t";
  meta.paper_ref = "p";
  ExperimentResult r;
  ResultTable t("t1", {"a", "b"});
  t.add_row({1, "two"});
  r.tables.push_back(std::move(t));
  JsonValue good = result_to_json(meta, HostInfo::current(), r);
  EXPECT_EQ(validate_result_json(good), "");

  JsonValue bad_version = good;
  bad_version.set("schema_version", 999);
  EXPECT_NE(validate_result_json(bad_version), "");

  JsonValue no_tables = good;
  no_tables.set("tables", JsonValue::array());
  EXPECT_NE(validate_result_json(no_tables), "");

  // Schema v2: the environment block is required and fully typed.
  JsonValue bad_env = good;
  bad_env.set("environment", JsonValue::object());
  EXPECT_NE(validate_result_json(bad_env), "");
  const JsonValue* env = good.find("environment");
  ASSERT_NE(env, nullptr);
  for (const char* key :
       {"backend", "isa", "dispatch", "topology", "combine"}) {
    const JsonValue* v = env->find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_TRUE(v->is_string()) << key;
    EXPECT_FALSE(v->as_string().empty()) << key;
  }
}

TEST(ReproResult, RowWidthMismatchIsFatal) {
  ResultTable t("t", {"a", "b"});
  EXPECT_DEATH(t.add_row({1}), "width");
}

// ----------------------------------------------------- latency histogram

TEST(LatencyHistogram, QuantilesLandWithinBucketError) {
  // Log-linear buckets (8 per octave) bound the relative quantile error
  // by one bucket width: ~1/8 ≈ 12.5%, well inside 15%.
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(1e-6 * i);  // 1us..1ms uniform
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.quantile(0.5), 500e-6, 500e-6 * 0.15);
  EXPECT_NEAR(h.quantile(0.99), 990e-6, 990e-6 * 0.15);
  EXPECT_NEAR(h.quantile(1.0), 1e-3, 1e-3 * 0.15);
  EXPECT_NEAR(h.mean(), 500.5e-6, 500.5e-6 * 0.01);  // exact sum, not buckets
  EXPECT_DOUBLE_EQ(h.max(), 1e-3);
  // Quantiles are monotone in q.
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), prev) << q;
    prev = h.quantile(q);
  }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, both;
  for (int i = 0; i < 100; ++i) {
    const double x = 1e-6 * (i + 1);
    const double y = 1e-4 * (i + 1);
    a.record(x);
    b.record(y);
    both.record(x);
    both.record(y);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  for (double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(a.quantile(q), both.quantile(q)) << q;
  EXPECT_DOUBLE_EQ(a.max(), both.max());
}

TEST(LatencyHistogram, QuantileZeroReturnsTheMinLatencyBucket) {
  LatencyHistogram h;
  h.record(2e-6);
  h.record(500e-6);
  h.record(900e-6);
  // q = 0 means "the smallest recorded latency's bucket", never a vacuous
  // rank-0 threshold — and q = 1 the largest.
  EXPECT_NEAR(h.quantile(0.0), 2e-6, 2e-6 * 0.15);
  EXPECT_NEAR(h.quantile(1.0), 900e-6, 900e-6 * 0.15);
  EXPECT_LT(h.quantile(0.0), h.quantile(1.0));
}

TEST(LatencyHistogram, SingleSampleAnswersEveryQuantile) {
  LatencyHistogram h;
  h.record(3e-6);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_NEAR(h.quantile(q), 3e-6, 3e-6 * 0.15) << q;
}

TEST(LatencyHistogram, AllSamplesInOverflowBucket) {
  // Far past the top octave: everything lands in the last bucket, and
  // every quantile (including q = 0) reports that bucket's value.
  LatencyHistogram h;
  h.record(3600.0);
  h.record(7200.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.quantile(1.0));
  EXPECT_GT(h.quantile(0.0), 0.0);
}

TEST(LatencyHistogram, InvalidSamplesAreCountedNotRecorded) {
  LatencyHistogram h;
  h.record(1e-6);
  h.record(-5.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.invalid_samples(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 1e-6);   // mean/max untouched by rejects
  EXPECT_DOUBLE_EQ(h.max(), 1e-6);

  LatencyHistogram other;
  other.record(-1.0);
  h.merge(other);  // merge folds the invalid counter too
  EXPECT_EQ(h.invalid_samples(), 3u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyHistogram, DegenerateInputsAreSafe) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.record(0.0);
  h.record(-1.0);      // clock went backwards: a timer bug, not a sample
  h.record(1e-12);     // sub-nanosecond
  h.record(3600.0);    // past the top octave: clamps to the last bucket
  EXPECT_EQ(h.count(), 3u);  // the negative was rejected, not clamped
  EXPECT_EQ(h.invalid_samples(), 1u);
  EXPECT_GT(h.quantile(1.0), 0.0);
}

// ------------------------------------------- serving experiment schema

// Deterministic tiny smoke of the serving stress harness: the metrics the
// CI gate greps for must exist, be numbers, and satisfy the invariants
// that hold at any scale (bounded table, zero mismatches, request count).
TEST(ReproServing, TinyRunReportsGatedMetricsAndInvariants) {
  RunOptions opt;
  opt.tiny = true;
  opt.threads = 2;
  RunContext ctx(opt);
  const Experiment& exp = builtin_experiments().find("serving");
  const ExperimentResult result = exp.run(ctx);

  RunMeta meta;
  meta.experiment = exp.name;
  meta.title = exp.title;
  meta.paper_ref = exp.paper_ref;
  meta.scale = ctx.scale(exp.default_scale);
  meta.threads = ctx.threads();
  meta.reps = ctx.reps();
  meta.warmup = ctx.warmup();
  meta.tiny = true;
  const JsonValue doc = result_to_json(meta, HostInfo::current(), result);
  EXPECT_EQ(validate_result_json(doc), "");

  const auto& tables = doc.find("tables")->items();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].find("name")->as_string(), "serving_reps");

  const JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const auto num = [&](const char* name) {
    const JsonValue* v = metrics->find(name);
    EXPECT_NE(v, nullptr) << name;
    EXPECT_TRUE(v != nullptr && v->is_number()) << name;
    return v != nullptr && v->is_number() ? v->as_number() : -1.0;
  };
  // The CI repro-smoke gate reads exactly these.
  EXPECT_GT(num("throughput_rps"), 0.0);
  EXPECT_GT(num("p50_ms"), 0.0);
  EXPECT_GE(num("p99_ms"), num("p50_ms"));
  EXPECT_EQ(num("sanity_mismatches"), 0.0);
  EXPECT_EQ(num("site_table_bounded"), 1.0);
  // Scale-independent shape invariants.
  EXPECT_GE(num("sites_distinct"), 64.0);
  EXPECT_GT(num("site_cap"), 0.0);
  EXPECT_LT(num("site_cap"), num("sites_distinct"));
  EXPECT_EQ(num("requests"), num("sites_distinct") * 12);
  EXPECT_LE(num("end_live_sites"), num("site_cap"));
  EXPECT_LE(num("max_live_sites"),
            num("site_cap") + num("client_threads"));
  // Churn must actually churn: far more evictions than the table holds,
  // and evicted sites coming back warm.
  EXPECT_GT(num("evictions"), num("site_cap"));
  EXPECT_GT(num("warm_reregistrations"), 0.0);
  EXPECT_GT(num("store_flushes"), 0.0);
  EXPECT_EQ(num("store_flush_failures"), 0.0);
  // Restart drill: every rep past the first reloads the shared sharded
  // store in a fresh Runtime — decisions must be present at construction,
  // returning sites must warm-start, and results must stay correct.
  EXPECT_GE(num("restart_reps"), 1.0);
  EXPECT_GT(num("restart_store_entries_min"), 0.0);
  EXPECT_LE(num("restart_store_entries_min"), num("sites_distinct"));
  EXPECT_GT(num("restart_warm_offers"), 0.0);
  EXPECT_EQ(num("restart_mismatches"), 0.0);
  // In-flight checking ran on every submission and never fired.
  EXPECT_GE(num("checks_run"), num("requests"));
  EXPECT_EQ(num("check_failures"), 0.0);
}

// ------------------------------------------ checking experiment schema

// Deterministic tiny smoke of the fault-injection experiment: detection
// invariants hold at any scale (the overhead numbers are only gated at
// full fig3 scale in CI — a tiny run's denominators are noise).
TEST(ReproChecking, TinyRunDetectsEveryFaultAtFullRate) {
  RunOptions opt;
  opt.tiny = true;
  opt.threads = 2;
  RunContext ctx(opt);
  const Experiment& exp = builtin_experiments().find("checking");
  const ExperimentResult result = exp.run(ctx);

  RunMeta meta;
  meta.experiment = exp.name;
  meta.title = exp.title;
  meta.paper_ref = exp.paper_ref;
  meta.scale = ctx.scale(exp.default_scale);
  meta.threads = ctx.threads();
  meta.reps = ctx.reps();
  meta.warmup = ctx.warmup();
  meta.tiny = true;
  const JsonValue doc = result_to_json(meta, HostInfo::current(), result);
  EXPECT_EQ(validate_result_json(doc), "");

  const auto& tables = doc.find("tables")->items();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].find("name")->as_string(), "checker_overhead");
  EXPECT_EQ(tables[1].find("name")->as_string(), "fault_detection");

  const JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const auto num = [&](const char* name) {
    const JsonValue* v = metrics->find(name);
    EXPECT_NE(v, nullptr) << name;
    EXPECT_TRUE(v != nullptr && v->is_number()) << name;
    return v != nullptr && v->is_number() ? v->as_number() : -1.0;
  };
  // The CI repro-smoke gate reads exactly these detection metrics.
  EXPECT_EQ(num("detection_rate_full_min"), 1.0);
  EXPECT_EQ(num("detection_trial_agreement"), 1.0);
  EXPECT_EQ(num("detection_within_tolerance"), 1.0);
  EXPECT_EQ(num("recovery_mismatches"), 0.0);
  EXPECT_EQ(num("false_positives"), 0.0);
  EXPECT_GT(num("trials_total"), 0.0);
  EXPECT_EQ(num("injected_total"), num("trials_total"));
  // Overhead metrics must exist and be finite; their values are gated in
  // CI at full scale only.
  EXPECT_GT(num("checker_overhead_full_pct"), -100.0);
  EXPECT_GT(num("checker_overhead_pct"), -100.0);
  EXPECT_GT(num("checker_overhead_quarter_pct"), -100.0);
}

}  // namespace
}  // namespace sapp::repro
