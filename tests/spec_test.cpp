// Tests for the speculative-parallelization substrate: LRPD, R-LRPD,
// wavefront inspector/executor and while-loop speculation.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "spec/lrpd.hpp"
#include "spec/rlrpd.hpp"
#include "spec/wavefront.hpp"
#include "spec/while_spec.hpp"

namespace sapp {
namespace {

ThreadPool& pool4() {
  static ThreadPool pool(4);
  return pool;
}

// ---------------- LRPD ----------------

SpeculativeLoop loop_of(std::size_t dim,
                        std::vector<std::vector<std::pair<std::uint32_t, Access>>> its) {
  SpeculativeLoop l;
  l.dim = dim;
  for (auto& ops : its) l.iterations.push_back({std::move(ops)});
  return l;
}

TEST(Lrpd, DisjointWritesAreFullyParallel) {
  auto l = loop_of(8, {{{0, Access::kWrite}},
                       {{1, Access::kWrite}},
                       {{2, Access::kWrite}, {2, Access::kRead}}});
  const auto r = lrpd_test(l, pool4());
  EXPECT_TRUE(r.fully_parallel);
  EXPECT_TRUE(r.passed());
  EXPECT_EQ(r.first_dependence_sink, l.iterations.size());
}

TEST(Lrpd, WriteBeforeReadPerIterationIsPrivatizable) {
  // Every iteration writes t then reads it: classic privatizable temporary.
  auto l = loop_of(4, {{{0, Access::kWrite}, {0, Access::kRead}},
                       {{0, Access::kWrite}, {0, Access::kRead}},
                       {{0, Access::kWrite}, {0, Access::kRead}}});
  const auto r = lrpd_test(l, pool4());
  EXPECT_FALSE(r.fully_parallel);
  EXPECT_TRUE(r.parallel_after_privatization);
  EXPECT_TRUE(r.passed());
}

TEST(Lrpd, ReductionOnlyConflictsValidateAsReduction) {
  auto l = loop_of(4, {{{2, Access::kReduction}},
                       {{2, Access::kReduction}},
                       {{2, Access::kReduction}}});
  const auto r = lrpd_test(l, pool4());
  EXPECT_TRUE(r.valid_reduction);
  EXPECT_TRUE(r.passed());
}

TEST(Lrpd, FlowDependenceFailsWithEarliestSink) {
  // iter 0 writes e5; iter 3 reads e5 (exposed) -> sink = 3.
  auto l = loop_of(8, {{{5, Access::kWrite}},
                       {{1, Access::kWrite}},
                       {{2, Access::kWrite}},
                       {{5, Access::kRead}},
                       {{5, Access::kRead}}});
  const auto r = lrpd_test(l, pool4());
  EXPECT_FALSE(r.passed());
  EXPECT_EQ(r.first_dependence_sink, 3u);
}

TEST(Lrpd, MixedReductionAndPlainAccessIsGenuine) {
  // Element reduced in iter 0/2 but plainly read in iter 1: not a valid
  // reduction variable (the read observes a partial value).
  auto l = loop_of(4, {{{0, Access::kReduction}},
                       {{0, Access::kRead}},
                       {{0, Access::kReduction}}});
  const auto r = lrpd_test(l, pool4());
  EXPECT_FALSE(r.passed());
  EXPECT_EQ(r.first_dependence_sink, 1u);
}

TEST(Lrpd, WarOnlyPatternPasses) {
  // Reads precede every write (WAR): removable by copy-in privatization.
  auto l = loop_of(4, {{{0, Access::kRead}},
                       {{0, Access::kRead}},
                       {{0, Access::kWrite}}});
  const auto r = lrpd_test(l, pool4());
  EXPECT_TRUE(r.passed());
}

// ---------------- R-LRPD ----------------

TEST(Rlrpd, FullyParallelLoopCommitsInOneRound) {
  constexpr std::size_t kN = 256, kDim = 256;
  std::vector<double> data(kDim, 0.0);
  const auto body = [](std::size_t i, SpecArray& a) {
    a.write(static_cast<std::uint32_t>(i), static_cast<double>(i) * 2);
  };
  const auto st = rlrpd_execute(kN, body, data, pool4());
  EXPECT_TRUE(st.success);
  EXPECT_EQ(st.rounds, 1u);
  EXPECT_EQ(st.committed, kN);
  EXPECT_EQ(st.reexecuted, 0u);
  for (std::size_t i = 0; i < kDim; ++i)
    EXPECT_DOUBLE_EQ(data[i], static_cast<double>(i) * 2);
}

TEST(Rlrpd, ReductionLoopNeedsNoReexecution) {
  constexpr std::size_t kN = 1024;  // divisible by 16: 64 adds per element
  std::vector<double> data(16, 0.0);
  const auto body = [](std::size_t i, SpecArray& a) {
    a.reduce_add(static_cast<std::uint32_t>(i % 16), 1.0);
  };
  const auto st = rlrpd_execute(kN, body, data, pool4());
  EXPECT_EQ(st.rounds, 1u);
  for (int e = 0; e < 16; ++e) EXPECT_DOUBLE_EQ(data[e], 64.0);
}

// The central R-LRPD claim: a partially parallel loop (one dependence arc
// in the middle) commits the prefix and only re-executes the remainder.
TEST(Rlrpd, PartiallyParallelLoopMatchesSequential) {
  constexpr std::size_t kN = 400, kDim = 512;
  // iteration 200 reads what iteration 100 wrote.
  const auto body = [](std::size_t i, SpecArray& a) {
    if (i == 100) a.write(500, 42.0);
    if (i == 200) {
      const double v = a.read(500);
      a.write(501, v + 1.0);
    }
    a.write(static_cast<std::uint32_t>(i), static_cast<double>(i));
  };
  std::vector<double> seq(kDim, 0.0), par(kDim, 0.0);
  sequential_execute(kN, body, seq);
  const auto st = rlrpd_execute(kN, body, par, pool4());
  EXPECT_TRUE(st.success);
  EXPECT_EQ(seq, par);
  // With 4 blocks of 100, iterations 100 and 200 land in different blocks:
  // at least one re-execution round.
  EXPECT_GT(st.rounds, 1u);
  EXPECT_GT(st.reexecuted, 0u);
  EXPECT_EQ(st.committed, kN);
}

TEST(Rlrpd, FullySequentialChainTerminates) {
  // Every iteration reads its predecessor's value: worst case.
  constexpr std::size_t kN = 64;
  const auto body = [](std::size_t i, SpecArray& a) {
    const double prev = i == 0 ? 1.0 : a.read(static_cast<std::uint32_t>(i - 1));
    a.write(static_cast<std::uint32_t>(i), prev + 1.0);
  };
  std::vector<double> seq(kN, 0.0), par(kN, 0.0);
  sequential_execute(kN, body, seq);
  const auto st = rlrpd_execute(kN, body, par, pool4());
  EXPECT_TRUE(st.success);
  EXPECT_EQ(seq, par);
  EXPECT_GT(st.rounds, 5u);  // lots of re-execution, but it terminates
}

TEST(Rlrpd, MaxRoundsFallsBackToSequential) {
  const auto body = [](std::size_t i, SpecArray& a) {
    const double prev = i == 0 ? 1.0 : a.read(static_cast<std::uint32_t>(i - 1));
    a.write(static_cast<std::uint32_t>(i), prev * 1.5);
  };
  std::vector<double> seq(64, 0.0), par(64, 0.0);
  sequential_execute(64, body, seq);
  const auto st = rlrpd_execute(64, body, par, pool4(), {.max_rounds = 2});
  EXPECT_FALSE(st.success);  // speculation abandoned...
  EXPECT_EQ(seq, par);       // ...but the result is still correct
}

TEST(Rlrpd, WriteAfterWriteAcrossBlocksCommitsInOrder) {
  constexpr std::size_t kN = 100;
  const auto body = [](std::size_t i, SpecArray& a) {
    a.write(7, static_cast<double>(i));  // last writer wins
  };
  std::vector<double> par(16, 0.0);
  const auto st = rlrpd_execute(kN, body, par, pool4());
  EXPECT_EQ(st.rounds, 1u);  // WAW does not force re-execution
  EXPECT_DOUBLE_EQ(par[7], 99.0);
}

// ---------------- wavefront ----------------

TEST(Wavefront, IndependentIterationsOneLevel) {
  auto l = loop_of(8, {{{0, Access::kWrite}},
                       {{1, Access::kWrite}},
                       {{2, Access::kWrite}}});
  const auto w = compute_wavefronts(l);
  EXPECT_EQ(w.num_levels(), 1u);
  EXPECT_DOUBLE_EQ(w.parallelism(), 3.0);
}

TEST(Wavefront, ChainSerializes) {
  // i reads i-1's output: level i.
  std::vector<std::vector<std::pair<std::uint32_t, Access>>> its;
  its.push_back({{0, Access::kWrite}});
  for (std::uint32_t i = 1; i < 6; ++i)
    its.push_back({{static_cast<std::uint32_t>(i - 1), Access::kRead},
                   {i, Access::kWrite}});
  const auto w = compute_wavefronts(loop_of(8, std::move(its)));
  EXPECT_EQ(w.num_levels(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(w.level[i], i);
}

TEST(Wavefront, ReductionsCommuteWithinLevel) {
  auto l = loop_of(4, {{{0, Access::kReduction}},
                       {{0, Access::kReduction}},
                       {{0, Access::kReduction}}});
  const auto w = compute_wavefronts(l);
  EXPECT_EQ(w.num_levels(), 1u);
}

TEST(Wavefront, ReadAfterReductionOrders) {
  auto l = loop_of(4, {{{0, Access::kReduction}},
                       {{0, Access::kReduction}},
                       {{0, Access::kRead}}});
  const auto w = compute_wavefronts(l);
  EXPECT_EQ(w.level[2], 1u);  // the read waits for the reductions
}

TEST(Wavefront, ExecutorRespectsDependences) {
  // Chain through memory: executing out of order would corrupt values.
  constexpr std::size_t kN = 200;
  std::vector<std::vector<std::pair<std::uint32_t, Access>>> its;
  for (std::uint32_t i = 0; i < kN; ++i) {
    if (i % 10 == 0) {
      its.push_back({{i, Access::kWrite}});
    } else {
      its.push_back({{i - 1, Access::kRead}, {i, Access::kWrite}});
    }
  }
  const auto l = loop_of(kN, std::move(its));
  const auto w = compute_wavefronts(l);
  std::vector<double> data(kN, 0.0);
  execute_wavefronts(w, pool4(), [&](std::size_t i) {
    data[i] = i % 10 == 0 ? 1.0 : data[i - 1] + 1.0;
  });
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_DOUBLE_EQ(data[i], static_cast<double>(i % 10) + 1.0) << i;
}

// ---------------- while-loop speculation ----------------

TEST(WhileSpec, ProcessesExactlyTheLoopIterations) {
  std::atomic<std::uint64_t> sum{0};
  const auto st = while_spec_execute<std::uint64_t>(
      0, [](const std::uint64_t& s) { return s < 137; },
      [](const std::uint64_t& s) { return s + 1; },
      [&](const std::uint64_t& s) { sum.fetch_add(s); }, 16, pool4());
  EXPECT_EQ(st.iterations, 137u);
  EXPECT_EQ(sum.load(), 137ull * 136 / 2);
  EXPECT_EQ(st.batches, (137 + 15) / 16);
}

TEST(WhileSpec, DataDependentExitDiscardsOverrun) {
  // The loop should stop at the 40th iteration; batch 16 means up to 7
  // speculatively processed iterations are discarded in the last batch.
  std::atomic<int> processed{0};
  const auto st = while_spec_execute_datadep<std::uint64_t>(
      0, [](const std::uint64_t& s) { return s + 1; },
      [&](const std::uint64_t& s) {
        processed.fetch_add(1);
        return s < 39;  // iteration 39 returns false
      },
      16, pool4());
  EXPECT_EQ(st.iterations, 40u);
  EXPECT_EQ(st.discarded, 48u - 40u);
  EXPECT_EQ(processed.load(), 48);
}

TEST(WhileSpec, LinkedListTraversal) {
  // The motivating case: list nodes processed in parallel while the
  // traversal discovers them sequentially.
  constexpr std::size_t kNodes = 500;
  std::vector<std::uint32_t> next(kNodes);
  std::iota(next.begin(), next.end(), 1u);  // chain 0->1->...->end
  std::vector<std::atomic<int>> visited(kNodes);
  const auto st = while_spec_execute<std::uint32_t>(
      0, [&](const std::uint32_t& n) { return n < kNodes; },
      [&](const std::uint32_t& n) { return next[n]; },
      [&](const std::uint32_t& n) { visited[n].fetch_add(1); }, 32, pool4());
  EXPECT_EQ(st.iterations, kNodes);
  for (auto& v : visited) EXPECT_EQ(v.load(), 1);
}

}  // namespace
}  // namespace sapp
