// End-to-end smoke test: the README quickstart path must stay working.
//
// Constructs a SmartAppsRuntime, runs one reducer(...).invoke(...) round
// trip on a synthetic irregular pattern, checks the result against the
// sequential reference, and checks that report() has content.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/runtime.hpp"
#include "workloads/workload.hpp"

namespace sapp {
namespace {

TEST(Smoke, RuntimeInvokeRoundTrip) {
  workloads::SynthParams params;
  params.dim = 20000;
  params.distinct = 8000;
  params.iterations = 50000;
  params.refs_per_iter = 1;
  params.zipf_theta = 0.6;
  params.seed = 7;
  const ReductionInput input = workloads::make_synthetic(params);

  SmartAppsRuntime::Options opt;
  opt.threads = 4;
  opt.calibrate = false;  // deterministic coefficients for CI
  SmartAppsRuntime rt(opt);

  AdaptiveReducer& site = rt.reducer("smoke");
  std::vector<double> w(input.pattern.dim, 0.0);
  const SchemeResult r = site.invoke(input, w);

  EXPECT_GE(r.total_s(), 0.0);
  EXPECT_EQ(site.invocations(), 1u);
  EXPECT_FALSE(site.decision().rationale.empty());

  // Numerically equivalent to the sequential loop.
  std::vector<double> ref(input.pattern.dim, 0.0);
  run_sequential(input, ref);
  double max_err = 0.0;
  for (std::size_t e = 0; e < ref.size(); ++e)
    max_err = std::max(max_err, std::abs(ref[e] - w[e]));
  EXPECT_LT(max_err, 1e-6);

  const std::string report = rt.report();
  EXPECT_FALSE(report.empty());
  EXPECT_NE(report.find("smoke"), std::string::npos);
}

}  // namespace
}  // namespace sapp
