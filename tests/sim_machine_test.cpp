// Protocol-level tests of the CC-NUMA machine and the PCLR extension,
// driven by hand-built op vectors.
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace sapp::sim {
namespace {

MachineConfig small_config(unsigned nodes) {
  MachineConfig c = MachineConfig::paper(nodes);
  c.l1_bytes = 1024;
  c.l2_bytes = 4096;  // 16 lines: easy to overflow
  c.l2_assoc = 2;
  c.metadata_loads = false;
  c.barrier_base_cycles = 0;  // protocol tests look at pure memory costs
  return c;
}

Op load(Addr a) { return Op{.kind = Op::Kind::kLoad, .addr = a}; }
Op store(Addr a) { return Op{.kind = Op::Kind::kStore, .addr = a}; }
Op loadred(Addr a) { return Op{.kind = Op::Kind::kLoadRed, .addr = a}; }
Op storered(Addr a, double v) {
  return Op{.kind = Op::Kind::kStoreRed, .addr = a, .value = v};
}
Op barrier(const char* l) { return Op{.kind = Op::Kind::kBarrier, .label = l}; }
Op flushop() { return Op{.kind = Op::Kind::kFlush}; }

std::vector<std::unique_ptr<TraceCursor>> cursors(
    std::vector<std::vector<Op>> per_proc) {
  std::vector<std::unique_ptr<TraceCursor>> cs;
  for (auto& ops : per_proc)
    cs.push_back(std::make_unique<VectorCursor>(std::move(ops)));
  return cs;
}

TEST(SimMachine, LocalMissCostsRoughlyLocalRoundTrip) {
  auto cfg = small_config(1);
  Machine m(cfg, Mode::kSeq, 64);
  // Two loads of the same line: one miss, one L1 hit.
  auto r = m.run(cursors({{load(0), load(8), barrier("loop")}}));
  EXPECT_EQ(r.counters.local_misses, 1u);
  EXPECT_EQ(r.counters.l1_hits, 1u);
  // The barrier waits for the outstanding miss: >= base round trip.
  EXPECT_GE(r.total_cycles, cfg.local_round_trip);
  EXPECT_LT(r.total_cycles, 2u * cfg.local_round_trip);
}

TEST(SimMachine, RemoteMissCostsMore) {
  auto cfg = small_config(2);
  // Proc 1 touches the page first (its home), then proc 0 misses remotely.
  Machine m(cfg, Mode::kSw, 64);
  auto r = m.run(cursors({
      {barrier("warm"), load(0), barrier("loop")},
      {load(0), barrier("warm"), barrier("loop")},
  }));
  EXPECT_EQ(r.counters.remote_misses, 1u);
  EXPECT_GE(r.counters.local_misses, 1u);
}

TEST(SimMachine, DirtyRecallOnRemoteRead) {
  auto cfg = small_config(2);
  Machine m(cfg, Mode::kSw, 64);
  // Proc 0 writes line 0 (dirty exclusive); proc 1 then reads it.
  auto r = m.run(cursors({
      {store(0), barrier("w"), barrier("r")},
      {barrier("w"), load(0), barrier("r")},
  }));
  EXPECT_EQ(r.counters.recalls, 1u);
  const DirEntry* e = m.directory().peek(0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirState::kShared);  // downgraded after intervention
}

TEST(SimMachine, StoreInvalidatesSharers) {
  auto cfg = small_config(4);
  Machine m(cfg, Mode::kSw, 64);
  // Three procs read the line; proc 3 writes it.
  auto r = m.run(cursors({
      {load(0), barrier("rd"), barrier("wr")},
      {load(0), barrier("rd"), barrier("wr")},
      {load(0), barrier("rd"), barrier("wr")},
      {barrier("rd"), store(0), barrier("wr")},
  }));
  EXPECT_GE(r.counters.invalidations, 3u);
  const DirEntry* e = m.directory().peek(0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirState::kExclusive);
  EXPECT_EQ(e->owner, 3u);
}

TEST(SimMachine, PclrAccumulatesIntoMemoryOnFlush) {
  auto cfg = small_config(2);
  Machine m(cfg, Mode::kHw, 64);
  // Both procs accumulate into element 2 (addr 16), then flush.
  auto r = m.run(cursors({
      {loadred(16), storered(16, 1.25), flushop(), barrier("merge")},
      {loadred(16), storered(16, 2.5), flushop(), barrier("merge")},
  }));
  EXPECT_EQ(r.counters.red_fills, 2u);
  EXPECT_EQ(r.counters.red_lines_flushed, 2u);
  EXPECT_DOUBLE_EQ(m.w_memory()[2], 3.75);
  // Untouched elements of the combined lines stay neutral.
  EXPECT_DOUBLE_EQ(m.w_memory()[0], 0.0);
  EXPECT_DOUBLE_EQ(m.w_memory()[3], 0.0);
}

TEST(SimMachine, PclrNeutralFillIsLocalAndCheap) {
  auto cfg = small_config(2);
  Machine hw(cfg, Mode::kHw, 64);
  auto r = hw.run(cursors({
      {loadred(0), barrier("loop")},
      {barrier("loop")},
  }));
  EXPECT_EQ(r.counters.red_fills, 1u);
  EXPECT_EQ(r.counters.local_misses + r.counters.remote_misses, 0u);
  EXPECT_LE(r.total_cycles, cfg.local_round_trip);
}

TEST(SimMachine, PclrDisplacementCombinesInBackground) {
  auto cfg = small_config(1);
  // L2 = 4096 B / 64 = 64 frames, 2-way: touching 100 distinct reduction
  // lines must displace some.
  std::vector<Op> ops;
  const std::size_t lines = 100;
  for (std::size_t i = 0; i < lines; ++i) {
    ops.push_back(loadred(i * 64));
    ops.push_back(storered(i * 64, 1.0));
  }
  ops.push_back(flushop());
  ops.push_back(barrier("merge"));
  Machine m(cfg, Mode::kHw, lines * 8);
  auto r = m.run(cursors({std::move(ops)}));
  EXPECT_GT(r.counters.red_lines_displaced, 0u);
  EXPECT_EQ(r.counters.red_lines_displaced + r.counters.red_lines_flushed,
            lines);
  // Every contribution must land in memory exactly once.
  for (std::size_t i = 0; i < lines; ++i)
    EXPECT_DOUBLE_EQ(m.w_memory()[i * 8], 1.0) << "line " << i;
}

TEST(SimMachine, FirstRedWritebackRecallsDirtyPlainCopy) {
  auto cfg = small_config(2);
  Machine m(cfg, Mode::kHw, 64);
  // Proc 0 holds line 0 dirty (plain). Proc 1 accumulates into the same
  // line via PCLR and flushes: the home must recall proc 0's copy first.
  auto r = m.run(cursors({
      {store(0), barrier("w"), barrier("f")},
      {barrier("w"), loadred(0), storered(0, 1.0), flushop(),
       barrier("f")},
  }));
  EXPECT_GE(r.counters.recalls, 1u);
  EXPECT_DOUBLE_EQ(m.w_memory()[0], 1.0);
}

TEST(SimMachine, RedLoadHitOnPlainDirtyLineWritesBackFirst) {
  auto cfg = small_config(1);
  Machine m(cfg, Mode::kHw, 64);
  auto r = m.run(cursors({
      {store(0), loadred(0), storered(0, 2.0), flushop(), barrier("f")},
  }));
  // §5.1.2: the plain dirty line is written back, invalidated, then the
  // reduction miss proceeds.
  EXPECT_GE(r.counters.writebacks_plain, 1u);
  EXPECT_EQ(r.counters.red_fills, 1u);
  EXPECT_DOUBLE_EQ(m.w_memory()[0], 2.0);
}

TEST(SimMachine, FlexChargesHigherOccupancyThanHw) {
  auto mk_ops = [] {
    std::vector<Op> ops;
    for (std::size_t i = 0; i < 60; ++i) {
      ops.push_back(loadred(i * 64));
      ops.push_back(storered(i * 64, 1.0));
    }
    ops.push_back(flushop());
    ops.push_back(barrier("merge"));
    return ops;
  };
  auto cfg = small_config(1);
  Machine hw(cfg, Mode::kHw, 60 * 8);
  auto rh = hw.run(cursors({mk_ops()}));
  Machine fx(cfg, Mode::kFlex, 60 * 8);
  auto rf = fx.run(cursors({mk_ops()}));
  EXPECT_GT(rf.total_cycles, rh.total_cycles);
  EXPECT_DOUBLE_EQ(fx.w_memory()[0], hw.w_memory()[0]);  // same values
}

TEST(SimMachine, BarrierSeparatesPhases) {
  auto cfg = small_config(2);
  Machine m(cfg, Mode::kSw, 64);
  auto r = m.run(cursors({
      {load(0), barrier("init"), load(4096), barrier("loop")},
      {barrier("init"), barrier("loop")},
  }));
  EXPECT_GT(r.phase_cycles.at("init"), 0u);
  EXPECT_GT(r.phase_cycles.at("loop"), 0u);
  EXPECT_EQ(r.total_cycles,
            r.phase_cycles.at("init") + r.phase_cycles.at("loop"));
}

TEST(SimMachine, DeterministicAcrossRuns) {
  auto mk = [] {
    std::vector<std::vector<Op>> pp(4);
    for (unsigned p = 0; p < 4; ++p) {
      for (int i = 0; i < 50; ++i) {
        pp[p].push_back(load((i * 4 + p) * 64));
        pp[p].push_back(store((i * 4 + p) * 64));
      }
      pp[p].push_back(barrier("loop"));
    }
    return pp;
  };
  auto cfg = small_config(4);
  Machine a(cfg, Mode::kSw, 8192);
  Machine b(cfg, Mode::kSw, 8192);
  auto ra = a.run(cursors(mk()));
  auto rb = b.run(cursors(mk()));
  EXPECT_EQ(ra.total_cycles, rb.total_cycles);
  EXPECT_EQ(ra.counters.local_misses, rb.counters.local_misses);
  EXPECT_EQ(ra.counters.remote_misses, rb.counters.remote_misses);
}

TEST(SimMachine, DirectoryContentionDelaysConcurrentMisses) {
  // Many procs missing to the same home must queue on its controller.
  auto run_with = [&](unsigned nodes) {
    auto cfg = small_config(nodes);
    std::vector<std::vector<Op>> pp(nodes);
    // Proc 0 first-touches the pages (becomes home), then everyone reads
    // distinct lines of that page.
    for (unsigned p = 0; p < nodes; ++p) {
      if (p == 0) pp[p].push_back(load(0));
      pp[p].push_back(barrier("home"));
      for (int i = 0; i < 8; ++i)
        pp[p].push_back(load((1 + i * nodes + p) * 64));
      pp[p].push_back(barrier("loop"));
    }
    Machine m(cfg, Mode::kSw, 4096);
    return m.run(cursors(std::move(pp))).phase_cycles.at("loop");
  };
  // More requesters -> more queueing at the single home.
  EXPECT_GT(run_with(8), run_with(2));
}

}  // namespace
}  // namespace sapp::sim
