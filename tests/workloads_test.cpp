// Tests for the workload generators: structural consistency, regime
// targets (the published MO/SP sharing shapes per application) and
// determinism.
#include <gtest/gtest.h>

#include "core/characterize.hpp"
#include "workloads/paramsets.hpp"
#include "workloads/workload.hpp"

namespace sapp::workloads {
namespace {

void expect_consistent(const Workload& w) {
  const auto& p = w.input.pattern;
  ASSERT_TRUE(w.input.consistent()) << w.app;
  for (std::uint32_t e : p.refs.indices())
    ASSERT_LT(e, p.dim) << w.app << " element out of range";
  EXPECT_GT(p.iterations(), 0u) << w.app;
  EXPECT_GT(w.instr_per_iter, 0u) << w.app;
}

TEST(Synthetic, HitsDistinctAndMobilityTargets) {
  SynthParams p;
  p.dim = 50000;
  p.distinct = 10000;
  p.iterations = 30000;
  p.refs_per_iter = 2;
  p.seed = 1;
  const auto in = make_synthetic(p);
  const auto s = characterize(in.pattern, 8);
  EXPECT_NEAR(static_cast<double>(s.distinct), 10000, 900);
  EXPECT_NEAR(s.mo, 2.0, 0.05);
  EXPECT_EQ(s.iterations, 30000u);
}

TEST(Synthetic, DeterministicPerSeed) {
  SynthParams p;
  p.dim = 10000;
  p.distinct = 2000;
  p.iterations = 5000;
  p.seed = 9;
  const auto a = make_synthetic(p);
  const auto b = make_synthetic(p);
  EXPECT_EQ(a.pattern.refs.indices(), b.pattern.refs.indices());
  EXPECT_EQ(a.values, b.values);
  p.seed = 10;
  const auto c = make_synthetic(p);
  EXPECT_NE(a.pattern.refs.indices(), c.pattern.refs.indices());
}

TEST(Irreg, MeshEdgesHaveMobilityTwoAndLocality) {
  const auto w = make_irreg(100000, 25000, 200000, 3);
  expect_consistent(w);
  const auto s = characterize(w.input.pattern, 8);
  EXPECT_NEAR(s.mo, 2.0, 0.01);
  EXPECT_TRUE(w.input.pattern.iteration_replication_legal);
  // Mesh renumbering: low local-write replication under block ownership.
  EXPECT_LT(s.lw_replication, 1.5);
}

TEST(Nbf, SingleTargetSkewedHistogram) {
  const auto w = make_nbf(25600, 6400, 100000, 3);
  expect_consistent(w);
  const auto s = characterize(w.input.pattern, 8);
  EXPECT_DOUBLE_EQ(s.mo, 1.0);
  EXPECT_GT(s.chd_gini, 0.3);  // hot atoms
  // Skew must show up as owner imbalance for local-write.
  EXPECT_GT(s.lw_imbalance, 1.2);
}

TEST(Moldyn, ScrambledPairsShareTouchedSet) {
  const auto w = make_moldyn(16384, 3922, 50000, 3);
  expect_consistent(w);
  const auto s = characterize(w.input.pattern, 8);
  EXPECT_NEAR(s.mo, 2.0, 0.01);
  // Scrambled pair list: most touched elements seen by several threads.
  EXPECT_GT(s.shared_fraction, 0.5);
}

TEST(Spark98, RowBandedLowSharing) {
  const auto w = make_spark98(30169, 18000, 210000, 3);
  expect_consistent(w);
  const auto s = characterize(w.input.pattern, 8);
  EXPECT_DOUBLE_EQ(s.mo, 1.0);
  EXPECT_LT(s.shared_fraction, 0.15);  // band overlap only
}

TEST(Spice, VerySparseAndLwIllegal) {
  const auto w = make_spice(186943, 1200, 3);
  expect_consistent(w);
  EXPECT_FALSE(w.input.pattern.iteration_replication_legal);
  const auto s = characterize(w.input.pattern, 8);
  EXPECT_LT(s.sp, 20.0);   // touched set far below the dimension
  EXPECT_GT(s.mo, 20.0);   // ~28 stamps per device
}

TEST(Charmm, LargeArrayScatteredLists) {
  const auto w = make_charmm(332288, 59600, 100000, 3);
  expect_consistent(w);
  const auto s = characterize(w.input.pattern, 8);
  EXPECT_NEAR(s.mo, 2.0, 0.05);
  EXPECT_GT(s.dim_ratio, 4.0);  // 2.5 MB array vs 512 KB cache
}

// ---------------- Table 2 generators ----------------

TEST(Table2Generators, MatchPublishedShapes) {
  const auto rows = table2_rows(0.25, 11);
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& r : rows) {
    expect_consistent(r.workload);
    // Scaled iteration counts track the published values.
    EXPECT_NEAR(static_cast<double>(r.workload.input.pattern.iterations()),
                0.25 * r.paper_iters, 0.05 * r.paper_iters + 8)
        << r.workload.app;
    EXPECT_EQ(r.workload.instr_per_iter, r.paper_instr_per_iter);
  }
}

TEST(Table2Generators, RedOpsPerIterationMatch) {
  const auto rows = table2_rows(0.2, 12);
  for (const auto& r : rows) {
    const auto& p = r.workload.input.pattern;
    const double red_per_iter = static_cast<double>(p.num_refs()) /
                                static_cast<double>(p.iterations());
    EXPECT_NEAR(red_per_iter, r.paper_red_per_iter,
                0.08 * r.paper_red_per_iter + 0.5)
        << r.workload.app;
  }
}

TEST(Table2Generators, InputStreamVolumesSetPerApplication) {
  const auto rows = table2_rows(0.1, 13);
  // Euler reads two node ids per edge; Nbf streams its whole pair list.
  EXPECT_EQ(rows[0].workload.input_bytes_per_iter, 8u);
  EXPECT_EQ(rows[4].workload.input_bytes_per_iter, 800u);
  EXPECT_GT(rows[4].workload.input_bytes_per_iter,
            rows[1].workload.input_bytes_per_iter);
}

TEST(Table2Generators, InvocationCountsMatchPaper) {
  const auto rows = table2_rows(0.1, 14);
  EXPECT_EQ(rows[0].workload.invocations, 120u);   // Euler
  EXPECT_EQ(rows[1].workload.invocations, 3855u);  // Equake
  EXPECT_EQ(rows[2].workload.invocations, 1u);     // Vml
}

TEST(Table2Generators, EulerEdgesTouchContiguousComponentBlocks) {
  // dflux updates 7 contiguous state components per endpoint: the
  // cache-line-friendly layout the PCLR section assumes.
  const auto w = make_euler(0.05, 15);
  const auto& p = w.input.pattern;
  for (std::size_t i = 0; i < std::min<std::size_t>(50, p.iterations());
       ++i) {
    const auto row = p.refs.row(i);
    ASSERT_EQ(row.size(), 14u);
    for (unsigned c = 1; c < 7; ++c) {
      EXPECT_EQ(row[c], row[0] + c);      // endpoint u's block
      EXPECT_EQ(row[7 + c], row[7] + c);  // endpoint v's block
    }
  }
}

TEST(Table2Generators, EulerArraySizeMatchesPaperAtFullScale) {
  const auto w = make_euler(1.0, 5);
  const double kb =
      static_cast<double>(w.input.pattern.dim) * sizeof(double) / 1024.0;
  EXPECT_NEAR(kb, 686.6, 12.0);
}

TEST(Table2Generators, VmlFitsInL2) {
  const auto w = make_vml(1.0, 5);
  EXPECT_LE(w.input.pattern.dim * sizeof(double), 64u * 1024);
}

// ---------------- Fig. 3 parameter sets ----------------

TEST(Fig3Rows, TwentyOneRowsAllConsistent) {
  // Fig. 3 has 21 rows: Irreg 4, Nbf 4, Moldyn 4, Spark98 2, Charmm 3,
  // Spice 4.
  const auto rows = fig3_rows(0.05, 20);
  ASSERT_EQ(rows.size(), 21u);
  for (const auto& r : rows) {
    expect_consistent(r.workload);
    EXPECT_FALSE(r.workload.paper.recommended.empty());
    EXPECT_EQ(static_cast<double>(r.workload.input.pattern.dim),
              r.paper_dim)
        << r.workload.app << " " << r.workload.variant;
  }
}

TEST(Fig3Rows, SpiceRowsForbidLw) {
  for (const auto& r : fig3_rows(0.05, 21)) {
    if (r.workload.app == "Spice")
      EXPECT_FALSE(r.workload.input.pattern.iteration_replication_legal);
    else
      EXPECT_TRUE(r.workload.input.pattern.iteration_replication_legal);
  }
}

TEST(Fig3Rows, DimensionSweepsMatchThePaperColumns) {
  const auto rows = fig3_rows(0.05, 22);
  // Irreg sweep: 100K, 500K, 1M, 2M.
  EXPECT_EQ(rows[0].workload.input.pattern.dim, 100000u);
  EXPECT_EQ(rows[1].workload.input.pattern.dim, 500000u);
  EXPECT_EQ(rows[2].workload.input.pattern.dim, 1000000u);
  EXPECT_EQ(rows[3].workload.input.pattern.dim, 2000000u);
  // Spice sweep (rows 17..20).
  EXPECT_EQ(rows[17].workload.input.pattern.dim, 186943u);
  EXPECT_EQ(rows[20].workload.input.pattern.dim, 33725u);
}

}  // namespace
}  // namespace sapp::workloads
