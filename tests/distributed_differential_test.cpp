// Differential conformance of the distributed strategies (sim/cluster.hpp).
//
// A randomized grid of (strategy x operator x node count x dimension x
// seed) cases asserts the values tracked through each strategy's task
// graph agree with the sequential reference:
//
//   * max/min — bitwise equal: comparisons never round, so any combine
//     order along the tree / ring / shuffle yields the identical double;
//   * sum — error-bounded per element: the graphs reassociate the
//     per-element accumulation (per-node partials in iteration order,
//     then a deterministic cross-node fold), so the check is the standard
//     reassociated-summation bound |got - ref| <=
//     (4 + n_e) * eps * Sigma|contribution_e| + denorm_min, with n_e the
//     element's contribution count plus one fold per node.
//
// Untouched elements must hold the operator's neutral element exactly
// (0 / -inf / +inf), matching the intra-node simulator's convention.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "sim/cluster.hpp"
#include "workloads/workload.hpp"

namespace sapp::sim {
namespace {

struct GridCase {
  std::size_t dim;
  std::size_t iterations;
  unsigned refs_per_iter;
  double distinct_frac;
  double zipf;
  bool sorted;
  std::uint64_t seed;
};

constexpr GridCase kCases[] = {
    {64, 200, 1, 1.0, 0.0, true, 1},
    {257, 900, 2, 0.5, 0.4, false, 2},     // odd dim: ragged owner blocks
    {1024, 3000, 3, 0.1, 0.8, false, 3},   // skewed sparse scatter
    {4096, 2000, 1, 0.02, 0.6, false, 4},  // tiny hot set
    {512, 1, 4, 0.2, 0.0, true, 5},        // single iteration
    {2048, 5000, 2, 0.9, 0.2, true, 6},    // near-dense
};

constexpr unsigned kNodeCounts[] = {1, 2, 3, 5, 8, 16};

ReductionInput build_case(const GridCase& c) {
  workloads::SynthParams p;
  p.dim = c.dim;
  p.distinct = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(c.dim) *
                                  c.distinct_frac));
  p.iterations = c.iterations;
  p.refs_per_iter = c.refs_per_iter;
  p.zipf_theta = c.zipf;
  p.sort_iterations = c.sorted;
  p.locality = 0.5;
  p.body_flops = 3;
  p.seed = 0xC0FFEE ^ c.seed;
  return workloads::make_synthetic(p);
}

/// Sequential fold of every contribution with `op`, from neutral, in
/// iteration order — for kAdd identical to run_sequential over zeros.
std::vector<double> reference(const ReductionInput& in, CombineOp op) {
  std::vector<double> w(in.pattern.dim, neutral_of(op));
  const auto& ptr = in.pattern.refs.row_ptr();
  const auto& idx = in.pattern.refs.indices();
  for (std::size_t i = 0; i < in.pattern.iterations(); ++i) {
    const double s = iteration_scale(i, in.pattern.body_flops);
    for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
      const double c = in.values[j] * s;
      switch (op) {
        case CombineOp::kAdd:
          w[idx[j]] = w[idx[j]] == neutral_of(op) ? c : w[idx[j]] + c;
          break;
        case CombineOp::kMax: w[idx[j]] = std::max(w[idx[j]], c); break;
        case CombineOp::kMin: w[idx[j]] = std::min(w[idx[j]], c); break;
      }
    }
  }
  return w;
}

TEST(DistributedDifferential, SumWithinReassociationBound) {
  for (const GridCase& c : kCases) {
    const ReductionInput in = build_case(c);
    // Per-element contribution count and absolute sum for the bound.
    std::vector<double> abs_sum(c.dim, 0.0);
    std::vector<std::size_t> cnt(c.dim, 0);
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    for (std::size_t i = 0; i < in.pattern.iterations(); ++i) {
      const double s = iteration_scale(i, in.pattern.body_flops);
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        abs_sum[idx[j]] += std::abs(in.values[j] * s);
        ++cnt[idx[j]];
      }
    }
    std::vector<double> ref(c.dim, 0.0);
    run_sequential(in, ref);

    for (const unsigned nodes : kNodeCounts) {
      const ClusterConfig cfg{nodes, 8, {}, MachineCoeffs::defaults()};
      for (const DistStrategy s : all_dist_strategies()) {
        const DistRunResult r =
            simulate_distributed(in, CombineOp::kAdd, s, cfg);
        ASSERT_EQ(r.w.size(), c.dim);
        const double eps = std::numeric_limits<double>::epsilon();
        for (std::size_t e = 0; e < c.dim; ++e) {
          const double bound =
              (4.0 + static_cast<double>(cnt[e] + nodes)) * eps *
                  abs_sum[e] +
              std::numeric_limits<double>::denorm_min();
          ASSERT_NEAR(r.w[e], ref[e], bound)
              << to_string(s) << " nodes=" << nodes << " seed=" << c.seed
              << " element=" << e;
        }
      }
    }
  }
}

TEST(DistributedDifferential, MinMaxAreBitwiseExact) {
  for (const GridCase& c : kCases) {
    const ReductionInput in = build_case(c);
    for (const CombineOp op : {CombineOp::kMin, CombineOp::kMax}) {
      const std::vector<double> ref = reference(in, op);
      for (const unsigned nodes : kNodeCounts) {
        const ClusterConfig cfg{nodes, 8, {}, MachineCoeffs::defaults()};
        for (const DistStrategy s : all_dist_strategies()) {
          const DistRunResult r = simulate_distributed(in, op, s, cfg);
          ASSERT_EQ(r.w.size(), c.dim);
          for (std::size_t e = 0; e < c.dim; ++e) {
            ASSERT_EQ(std::memcmp(&r.w[e], &ref[e], sizeof(double)), 0)
                << to_string(s) << " op=" << static_cast<int>(op)
                << " nodes=" << nodes << " seed=" << c.seed
                << " element=" << e;
          }
        }
      }
    }
  }
}

TEST(DistributedDifferential, UntouchedElementsHoldTheNeutral) {
  // The sparse scatter leaves most of the array untouched: every strategy
  // must report exactly the neutral there, never a stray zero/garbage.
  const GridCase c = kCases[3];
  const ReductionInput in = build_case(c);
  std::vector<bool> touched(c.dim, false);
  for (const std::uint32_t e : in.pattern.refs.indices()) touched[e] = true;
  for (const CombineOp op :
       {CombineOp::kAdd, CombineOp::kMin, CombineOp::kMax}) {
    const double neutral = neutral_of(op);
    for (const DistStrategy s : all_dist_strategies()) {
      const ClusterConfig cfg{5, 8, {}, MachineCoeffs::defaults()};
      const DistRunResult r = simulate_distributed(in, op, s, cfg);
      for (std::size_t e = 0; e < c.dim; ++e) {
        if (touched[e]) continue;
        ASSERT_EQ(std::memcmp(&r.w[e], &neutral, sizeof(double)), 0)
            << to_string(s) << " element " << e;
      }
    }
  }
}

}  // namespace
}  // namespace sapp::sim
