// Unit tests for the set-associative cache model.
#include <gtest/gtest.h>

#include "sim/cache.hpp"

namespace sapp::sim {
namespace {

TEST(SimCache, MissThenHit) {
  Cache c(1024, 2, 64);  // 8 sets x 2 ways
  EXPECT_EQ(c.find(0), nullptr);
  c.evict_and_install(0, LineState::kShared);
  ASSERT_NE(c.find(0), nullptr);
  EXPECT_EQ(c.find(0)->state, LineState::kShared);
}

TEST(SimCache, LineOfMasksOffset) {
  Cache c(1024, 2, 64);
  EXPECT_EQ(c.line_of(0), 0u);
  EXPECT_EQ(c.line_of(63), 0u);
  EXPECT_EQ(c.line_of(64), 64u);
  EXPECT_EQ(c.line_of(130), 128u);
}

TEST(SimCache, SetConflictEvictsLru) {
  Cache c(1024, 2, 64);  // 8 sets: addresses 64*8 apart collide
  const Addr a = 0, b = 8 * 64, d = 16 * 64;
  c.evict_and_install(a, LineState::kShared);
  c.evict_and_install(b, LineState::kShared);
  ASSERT_NE(c.find(a), nullptr);  // touch a: b becomes LRU
  CacheLine victim = c.evict_and_install(d, LineState::kShared);
  EXPECT_TRUE(victim.valid());
  EXPECT_EQ(victim.line_addr, b);
  EXPECT_NE(c.find(a), nullptr);
  EXPECT_EQ(c.find(b), nullptr);
  EXPECT_NE(c.find(d), nullptr);
}

TEST(SimCache, PrefersInvalidFrameOverEviction) {
  Cache c(1024, 2, 64);
  c.evict_and_install(0, LineState::kDirty);
  CacheLine victim = c.evict_and_install(8 * 64, LineState::kShared);
  EXPECT_FALSE(victim.valid());  // second way was free
  EXPECT_NE(c.find(0), nullptr);
  EXPECT_NE(c.find(8 * 64), nullptr);
}

TEST(SimCache, InvalidateReturnsContent) {
  Cache c(1024, 2, 64);
  c.evict_and_install(64, LineState::kReduction);
  c.find(64)->data[3] = 7.5;
  CacheLine out = c.invalidate(64);
  EXPECT_EQ(out.state, LineState::kReduction);
  EXPECT_DOUBLE_EQ(out.data[3], 7.5);
  EXPECT_EQ(c.find(64), nullptr);
  // Invalidating a missing line returns an invalid frame.
  EXPECT_FALSE(c.invalidate(64).valid());
}

TEST(SimCache, ForEachVisitsOnlyValid) {
  Cache c(2048, 4, 64);
  c.evict_and_install(0, LineState::kShared);
  c.evict_and_install(64, LineState::kReduction);
  c.evict_and_install(128, LineState::kDirty);
  c.invalidate(64);
  int count = 0;
  c.for_each([&](CacheLine&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(SimCache, DataZeroedOnInstall) {
  Cache c(1024, 2, 64);
  c.evict_and_install(0, LineState::kReduction);
  c.find(0)->data[0] = 42.0;
  c.invalidate(0);
  c.evict_and_install(0, LineState::kReduction);
  EXPECT_DOUBLE_EQ(c.find(0)->data[0], 0.0);  // neutral fill
}

TEST(SimCache, RejectsNonPowerOfTwoSets) {
  EXPECT_DEATH(Cache(3 * 2 * 64, 2, 64), "power of two");  // 3 sets
}

}  // namespace
}  // namespace sapp::sim
