// Shared randomized-case generator of the differential conformance suites.
//
// The 240-case (pattern x operator x thread-count) sweep was born in
// scheme_differential_test.cpp; the in-flight checker reuses the identical
// case set for its zero-false-positive property (a checker that flags a
// legal reassociation anywhere in this matrix would also flag it in
// production). Every case is reproducible from its index alone.
#pragma once

#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "reductions/access_pattern.hpp"

namespace sapp::difftest {

enum class OpKind { kSum, kMax, kMin };

inline const char* op_name(OpKind op) {
  switch (op) {
    case OpKind::kSum: return "sum";
    case OpKind::kMax: return "max";
    case OpKind::kMin: return "min";
  }
  return "?";
}

struct CaseParams {
  std::size_t dim = 0;
  std::size_t iterations = 0;
  unsigned max_refs_per_iter = 0;
  double theta = 0.0;
  unsigned body_flops = 0;
  bool lw_legal = true;
  unsigned threads = 1;
  OpKind op = OpKind::kSum;
};

/// SAPP_THREADS, so the CI thread matrix genuinely varies these suites.
inline unsigned env_threads() {
  if (const char* s = std::getenv("SAPP_THREADS"); s != nullptr) {
    const int v = std::atoi(s);
    if (v >= 1 && v <= 64) return static_cast<unsigned>(v);
  }
  return 2;
}

/// Deterministic case derivation: every case is reproducible from its
/// index alone (failures print the index).
inline CaseParams derive_case(int i) {
  Rng rng(0xD1FFu + static_cast<std::uint64_t>(i) * 7919u);
  CaseParams c;
  c.dim = 1 + static_cast<std::size_t>(rng.uniform(0.0, 1.0) *
                                       rng.uniform(0.0, 1.0) * 4000.0);
  // One case in ~8 is degenerate: zero iterations.
  c.iterations = (i % 8 == 7)
                     ? 0
                     : 1 + static_cast<std::size_t>(
                               rng.uniform(0.0, 1.0) * 2500.0);
  c.max_refs_per_iter = static_cast<unsigned>(rng.uniform(0.0, 6.99));
  // The op/theta/thread axes are drawn independently from the per-case
  // Rng — correlated moduli (i % 3, i % 6, ...) would lock the axes
  // together and leave most of the claimed cross-product unexercised.
  const double thetas[] = {0.0, 0.6, 1.2};
  c.theta = thetas[static_cast<int>(rng.uniform(0.0, 2.99))];
  c.body_flops = static_cast<unsigned>(rng.uniform(0.0, 3.99));
  c.lw_legal = rng.uniform(0.0, 1.0) < 0.8;
  const unsigned pool_sizes[] = {1, 2, 3, 4, 8, env_threads()};
  c.threads = pool_sizes[static_cast<int>(rng.uniform(0.0, 5.99))];
  c.op = static_cast<OpKind>(static_cast<int>(rng.uniform(0.0, 2.99)));
  return c;
}

inline ReductionInput build_input(const CaseParams& c, int i) {
  Rng rng(0xABCDu + static_cast<std::uint64_t>(i) * 104729u);
  std::vector<std::uint64_t> ptr{0};
  std::vector<std::uint32_t> idx;
  for (std::size_t it = 0; it < c.iterations; ++it) {
    // Jittered per-iteration reference count, including empty iterations.
    const auto nrefs = static_cast<unsigned>(
        rng.uniform(0.0, static_cast<double>(c.max_refs_per_iter) + 0.99));
    for (unsigned r = 0; r < nrefs; ++r)
      idx.push_back(static_cast<std::uint32_t>(rng.zipf(c.dim, c.theta)));
    ptr.push_back(idx.size());
  }
  ReductionInput in;
  in.pattern.dim = c.dim;
  in.pattern.refs = Csr(std::move(ptr), std::move(idx));
  in.pattern.body_flops = c.body_flops;
  in.pattern.iteration_replication_legal = c.lw_legal;
  in.values.resize(in.pattern.num_refs());
  for (auto& v : in.values) v = rng.uniform(-2.0, 2.0);
  return in;
}

}  // namespace sapp::difftest
