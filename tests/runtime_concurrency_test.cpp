// Concurrency contract of the multi-site runtime.
//
// Many application threads submit through one sapp::Runtime — to disjoint
// sites, to one contended site, and racing on the creation of a brand-new
// site. Every submission must execute exactly once (invocation counters
// add up and every output equals the sequential reference), and the whole
// suite runs in the TSan CI job (see .github/workflows/ci.yml), so the
// striped site table, the per-site serialization and the shared-pool
// arbitration are race-checked, not just assumed.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "workloads/workload.hpp"

namespace sapp {
namespace {

/// Pool size for the runtime under test; SAPP_THREADS lets the CI thread
/// matrix vary the worker side while the submitter side stays at 8.
unsigned pool_threads() {
  if (const char* s = std::getenv("SAPP_THREADS"); s != nullptr) {
    const int v = std::atoi(s);
    if (v >= 1 && v <= 64) return static_cast<unsigned>(v);
  }
  return 2;
}

RuntimeOptions quiet_options() {
  RuntimeOptions o;
  o.threads = pool_threads();
  o.calibrate = false;  // deterministic, fast construction under TSan
  // These tests pin concurrency semantics (exactly-once, site creation),
  // not adaptation. Under TSan/ASan every measurement overruns the
  // uncalibrated predictions, which would trigger scheme switches and
  // mispredict-driven re-characterizations and make the counters flaky —
  // so park the feedback loop — the time-drift detector included.
  o.adaptive.mispredict_patience = 1 << 30;
  o.adaptive.monitor.time_drift_patience = 1 << 30;
  return o;
}

ReductionInput site_input(int variant) {
  workloads::SynthParams p;
  p.dim = 400 + 50 * static_cast<std::size_t>(variant);
  p.distinct = p.dim / 2;
  p.iterations = 600;
  p.refs_per_iter = 2;
  p.zipf_theta = 0.3;
  p.seed = 9000 + static_cast<std::uint64_t>(variant);
  auto in = workloads::make_synthetic(p);
  in.pattern.loop_id = "conc/site" + std::to_string(variant);
  return in;
}

void expect_matches_reference(const std::vector<double>& out,
                              const std::vector<double>& ref,
                              const char* what) {
  for (std::size_t e = 0; e < ref.size(); ++e)
    ASSERT_NEAR(out[e], ref[e], 1e-9) << what << " element " << e;
}

TEST(RuntimeConcurrency, DisjointSitesSubmitInParallel) {
  constexpr int kThreads = 8;
  constexpr int kInvocations = 15;
  Runtime rt(quiet_options());

  std::vector<ReductionInput> inputs;
  std::vector<std::vector<double>> refs;
  for (int t = 0; t < kThreads; ++t) {
    inputs.push_back(site_input(t));
    refs.emplace_back(inputs.back().pattern.dim, 0.0);
    run_sequential(inputs.back(), refs.back());
  }

  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const ReductionInput& in = inputs[static_cast<std::size_t>(t)];
      std::vector<double> out(in.pattern.dim);
      start.arrive_and_wait();
      for (int k = 0; k < kInvocations; ++k) {
        std::fill(out.begin(), out.end(), 0.0);
        (void)rt.submit(in, out);
        expect_matches_reference(out, refs[static_cast<std::size_t>(t)],
                                 "disjoint");
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(rt.site_count(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    const AdaptiveReducer& r =
        rt.site(inputs[static_cast<std::size_t>(t)].pattern.loop_id);
    // Exactly once per submission: no lost or duplicated invocations.
    EXPECT_EQ(r.invocations(), static_cast<unsigned>(kInvocations));
    EXPECT_EQ(r.recharacterizations(), 1u);  // the pattern never drifts
  }
}

TEST(RuntimeConcurrency, SharedSiteSerializesExactlyOnce) {
  constexpr int kThreads = 8;
  constexpr int kInvocations = 10;
  Runtime rt(quiet_options());
  const ReductionInput in = site_input(99);
  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);

  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<double> out(in.pattern.dim);
      start.arrive_and_wait();
      for (int k = 0; k < kInvocations; ++k) {
        std::fill(out.begin(), out.end(), 0.0);
        (void)rt.submit(in, out);
        expect_matches_reference(out, ref, "shared");
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(rt.site_count(), 1u);
  EXPECT_EQ(rt.site(in.pattern.loop_id).invocations(),
            static_cast<unsigned>(kThreads * kInvocations));
}

TEST(RuntimeConcurrency, RacingFirstSubmissionCreatesOneSite) {
  constexpr int kThreads = 8;
  Runtime rt(quiet_options());
  const ReductionInput in = site_input(7);
  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);

  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<double> out(in.pattern.dim, 0.0);
      start.arrive_and_wait();  // all hit the cold site simultaneously
      (void)rt.submit(in, out);
      expect_matches_reference(out, ref, "racing-create");
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(rt.site_count(), 1u);
  const AdaptiveReducer& r = rt.site(in.pattern.loop_id);
  EXPECT_EQ(r.invocations(), static_cast<unsigned>(kThreads));
  EXPECT_EQ(r.recharacterizations(), 1u);  // one winner characterized
}

TEST(RuntimeConcurrency, MixedDisjointAndSharedTraffic) {
  // Half the submitters own private sites, half hammer one shared site —
  // the striped table serves both kinds of traffic at once.
  constexpr int kThreads = 8;
  constexpr int kInvocations = 8;
  Runtime rt(quiet_options());

  std::vector<ReductionInput> inputs;
  std::vector<std::vector<double>> refs;
  for (int t = 0; t <= kThreads / 2; ++t) {
    inputs.push_back(site_input(t));
    refs.emplace_back(inputs.back().pattern.dim, 0.0);
    run_sequential(inputs.back(), refs.back());
  }

  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Threads 0..3 -> private sites 1..4; threads 4..7 -> shared site 0.
    const std::size_t s =
        t < kThreads / 2 ? static_cast<std::size_t>(t) + 1 : 0;
    threads.emplace_back([&, s] {
      const ReductionInput& in = inputs[s];
      std::vector<double> out(in.pattern.dim);
      start.arrive_and_wait();
      for (int k = 0; k < kInvocations; ++k) {
        std::fill(out.begin(), out.end(), 0.0);
        (void)rt.submit(in, out);
        expect_matches_reference(out, refs[s], "mixed");
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(rt.site_count(), static_cast<std::size_t>(kThreads / 2 + 1));
  unsigned total = 0;
  for (const auto& id : rt.site_ids()) total += rt.site(id).invocations();
  EXPECT_EQ(total, static_cast<unsigned>(kThreads * kInvocations));
  EXPECT_EQ(rt.site(inputs[0].pattern.loop_id).invocations(),
            static_cast<unsigned>(kThreads / 2 * kInvocations));
}

TEST(RuntimeConcurrency, ReportAndSnapshotRaceSubmitters) {
  // report() and snapshot_decisions() take each site's mutex, so reading
  // live reducer state while other threads submit must be race-free
  // (this test exists to run under TSan).
  constexpr int kSubmitters = 4;
  constexpr int kInvocations = 12;
  Runtime rt(quiet_options());
  std::vector<ReductionInput> inputs;
  for (int t = 0; t < kSubmitters; ++t) inputs.push_back(site_input(300 + t));

  std::barrier start(kSubmitters + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      const ReductionInput& in = inputs[static_cast<std::size_t>(t)];
      std::vector<double> out(in.pattern.dim, 0.0);
      start.arrive_and_wait();
      for (int k = 0; k < kInvocations; ++k) (void)rt.submit(in, out);
    });
  }
  threads.emplace_back([&] {
    start.arrive_and_wait();
    for (int k = 0; k < kInvocations; ++k) {
      EXPECT_FALSE(rt.report().empty());
      (void)rt.snapshot_decisions();
    }
  });
  for (auto& th : threads) th.join();

  unsigned total = 0;
  for (const auto& id : rt.site_ids()) total += rt.site(id).invocations();
  EXPECT_EQ(total, static_cast<unsigned>(kSubmitters * kInvocations));
  EXPECT_EQ(rt.snapshot_decisions().size(),
            static_cast<std::size_t>(kSubmitters));
}

TEST(RuntimeConcurrency, ConcurrentWarmStartsAdoptCachedDecisions) {
  // A learner runtime persists its decisions; a second runtime warm-starts
  // every site under concurrent first submissions.
  constexpr int kThreads = 6;
  const std::string path =
      ::testing::TempDir() + "runtime_concurrency_cache.json";

  std::vector<ReductionInput> inputs;
  std::vector<std::vector<double>> refs;
  for (int t = 0; t < kThreads; ++t) {
    inputs.push_back(site_input(200 + t));
    refs.emplace_back(inputs.back().pattern.dim, 0.0);
    run_sequential(inputs.back(), refs.back());
  }

  {
    Runtime learner(quiet_options());
    std::vector<double> out;
    for (const auto& in : inputs) {
      out.assign(in.pattern.dim, 0.0);
      (void)learner.submit(in, out);
    }
    ASSERT_TRUE(learner.save_decisions(path));
  }

  RuntimeOptions o = quiet_options();
  o.decision_cache_path = path;
  Runtime rt(o);
  EXPECT_EQ(rt.warm_entries(), static_cast<std::size_t>(kThreads));

  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const ReductionInput& in = inputs[static_cast<std::size_t>(t)];
      std::vector<double> out(in.pattern.dim, 0.0);
      start.arrive_and_wait();
      (void)rt.submit(in, out);
      expect_matches_reference(out, refs[static_cast<std::size_t>(t)],
                               "warm");
    });
  }
  for (auto& th : threads) th.join();

  for (const auto& in : inputs) {
    const AdaptiveReducer& r = rt.site(in.pattern.loop_id);
    EXPECT_TRUE(r.warm_started()) << in.pattern.loop_id;
    EXPECT_EQ(r.recharacterizations(), 0u) << in.pattern.loop_id;
  }
  std::remove(path.c_str());
}

TEST(RuntimeConcurrency, SiteChurnStressStaysBoundedAndExactlyOnce) {
  // Serving-shaped churn: many more sites than the table may hold, so
  // registration, submission and LRU eviction race continuously (plus an
  // explicit sweeper thread). Two properties must survive, race-checked
  // under TSan: the live table stays bounded, and every submission
  // executes exactly once — each output matches its sequential reference,
  // and the lifetime-invocation counters, summed per site across live
  // state and evicted-site store snapshots, add up to the request count
  // (eviction persists a site's counter and a warm restart resumes it, so
  // churn can neither lose nor duplicate evidence).
  constexpr std::size_t kSites = 96;
  constexpr std::size_t kCap = 12;
  constexpr int kThreads = 6;
  constexpr int kRequests = 250;  // per thread

  std::vector<ReductionInput> inputs;
  std::vector<std::vector<double>> refs;
  for (std::size_t s = 0; s < kSites; ++s) {
    workloads::SynthParams p;
    p.dim = 80 + 8 * (s % 24);  // small: TSan runs every access
    p.distinct = p.dim / 2;
    p.iterations = 160;
    p.refs_per_iter = 2;
    p.seed = 5000 + s;
    inputs.push_back(workloads::make_synthetic(p));
    inputs.back().pattern.loop_id = "churn/site" + std::to_string(s);
    refs.emplace_back(p.dim, 0.0);
    run_sequential(inputs.back(), refs.back());
  }

  RuntimeOptions o = quiet_options();
  o.max_sites = kCap;
  Runtime rt(o);

  std::atomic<bool> done{false};
  std::thread sweeper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)rt.sweep();
      EXPECT_LE(rt.site_count(), kCap + kThreads)
          << "table must stay bounded while churn is in flight";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Deterministic per-thread site walk covering the whole population.
      std::size_t idx = static_cast<std::size_t>(t) * 17 % kSites;
      std::vector<double> out;
      start.arrive_and_wait();
      for (int k = 0; k < kRequests; ++k) {
        const ReductionInput& in = inputs[idx];
        out.assign(in.pattern.dim, 0.0);
        (void)rt.submit(in, out);
        expect_matches_reference(out, refs[idx], "churn");
        idx = (idx + 7) % kSites;
      }
    });
  }
  for (auto& th : threads) th.join();
  done.store(true);
  sweeper.join();

  // Quiesced: one sweep trims any transient overshoot back under the cap.
  (void)rt.sweep();
  EXPECT_LE(rt.site_count(), kCap);
  EXPECT_GT(rt.evictions(), 0u);

  // Exactly-once conservation across live sites and evicted snapshots
  // (live wins: a warm-started site's lifetime already includes the
  // store's count as its base).
  const DecisionCache persisted = rt.persisted_decisions();
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kSites; ++s) {
    const std::string id = "churn/site" + std::to_string(s);
    if (rt.has_live_site(id)) {
      total += rt.site(id).lifetime_invocations();
    } else if (const CachedDecision* d = persisted.find(id)) {
      total += d->invocations;
    }
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kRequests);
}

}  // namespace
}  // namespace sapp
