// Tests for the reduction-scheme library: correctness of every scheme
// against the sequential reference across pattern shapes and thread counts
// (parameterized property suite), plus scheme-specific behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "reductions/registry.hpp"
#include "reductions/scheme_hash.hpp"
#include "reductions/scheme_ll.hpp"
#include "reductions/scheme_lw.hpp"
#include "reductions/scheme_rep.hpp"
#include "reductions/scheme_sel.hpp"

namespace sapp {
namespace {

// ---------------- pattern builders ----------------

struct PatternSpec {
  const char* name;
  std::size_t dim;
  std::size_t iterations;
  unsigned refs_per_iter;
  double zipf_theta;   // skew
  unsigned body_flops;
  bool lw_legal = true;
};

ReductionInput build(const PatternSpec& s, std::uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<std::uint64_t> ptr{0};
  std::vector<std::uint32_t> idx;
  for (std::size_t i = 0; i < s.iterations; ++i) {
    for (unsigned r = 0; r < s.refs_per_iter; ++r)
      idx.push_back(
          static_cast<std::uint32_t>(rng.zipf(s.dim, s.zipf_theta)));
    ptr.push_back(idx.size());
  }
  ReductionInput in;
  in.pattern.dim = s.dim;
  in.pattern.refs = Csr(std::move(ptr), std::move(idx));
  in.pattern.body_flops = s.body_flops;
  in.pattern.iteration_replication_legal = s.lw_legal;
  in.values.resize(in.pattern.num_refs());
  for (auto& v : in.values) v = rng.uniform(-2.0, 2.0);
  return in;
}

std::vector<double> reference(const ReductionInput& in) {
  std::vector<double> out(in.pattern.dim, 0.0);
  run_sequential(in, out);
  return out;
}

void expect_equivalent(const std::vector<double>& ref,
                       const std::vector<double>& got,
                       double scale_hint) {
  ASSERT_EQ(ref.size(), got.size());
  const double tol = 1e-9 * std::max(1.0, scale_hint);
  for (std::size_t e = 0; e < ref.size(); ++e)
    ASSERT_NEAR(ref[e], got[e], tol) << "element " << e;
}

// ---------------- parameterized equivalence suite ----------------

using EquivParam = std::tuple<SchemeKind, int /*pattern id*/, unsigned>;

const PatternSpec kPatterns[] = {
    {"uniform-dense", 512, 4000, 2, 0.0, 2},
    {"uniform-sparse", 20000, 500, 1, 0.0, 0},
    {"skewed", 4096, 3000, 3, 0.9, 4},
    {"hot-single-element", 64, 2000, 1, 3.0, 0},
    {"wide-iteration", 2048, 300, 16, 0.4, 8},
    {"one-iteration", 128, 1, 4, 0.0, 1},
    {"tiny-dim", 3, 1000, 2, 0.0, 0},
};

class SchemeEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(SchemeEquivalence, MatchesSequential) {
  const auto [kind, pat_id, threads] = GetParam();
  const ReductionInput in = build(kPatterns[pat_id]);
  const auto ref = reference(in);

  ThreadPool pool(threads);
  const auto scheme = make_scheme(kind);
  ASSERT_TRUE(scheme->applicable(in.pattern));
  std::vector<double> out(in.pattern.dim, 0.0);
  scheme->run(in, pool, out);
  expect_equivalent(ref, out,
                    static_cast<double>(in.pattern.num_refs()));
}

std::string equiv_param_name(
    const ::testing::TestParamInfo<EquivParam>& info) {
  const SchemeKind kind = std::get<0>(info.param);
  const int pat = std::get<1>(info.param);
  const unsigned threads = std::get<2>(info.param);
  std::string name = std::string(to_string(kind)) + "_" +
                     kPatterns[pat].name + "_p" + std::to_string(threads);
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllPatterns, SchemeEquivalence,
    ::testing::Combine(
        ::testing::Values(SchemeKind::kAtomic, SchemeKind::kCritical,
                          SchemeKind::kRep, SchemeKind::kLocalWrite,
                          SchemeKind::kLinked, SchemeKind::kSelective,
                          SchemeKind::kHash),
        ::testing::Range(0, static_cast<int>(std::size(kPatterns))),
        ::testing::Values(1u, 2u, 4u, 7u)),
    equiv_param_name);

// ---------------- accumulation semantics ----------------

TEST(Schemes, AccumulateIntoExistingOutput) {
  const ReductionInput in = build(kPatterns[0]);
  auto ref = reference(in);
  ThreadPool pool(3);
  std::vector<double> out(in.pattern.dim, 1.5);  // pre-existing values
  make_scheme(SchemeKind::kRep)->run(in, pool, out);
  for (std::size_t e = 0; e < ref.size(); ++e)
    ASSERT_NEAR(ref[e] + 1.5, out[e], 1e-6) << e;
}

TEST(Schemes, PlanReuseAcrossInvocations) {
  // The adaptive runtime reuses plans across loop invocations; results
  // must stay correct and independent.
  const ReductionInput in = build(kPatterns[2]);
  const auto ref = reference(in);
  ThreadPool pool(4);
  for (SchemeKind kind :
       {SchemeKind::kRep, SchemeKind::kLinked, SchemeKind::kSelective,
        SchemeKind::kHash, SchemeKind::kLocalWrite}) {
    const auto scheme = make_scheme(kind);
    const auto plan = scheme->plan(in.pattern, pool.size());
    for (int invocation = 0; invocation < 3; ++invocation) {
      std::vector<double> out(in.pattern.dim, 0.0);
      scheme->execute(plan.get(), in, pool, out);
      for (std::size_t e = 0; e < ref.size(); e += 13)
        ASSERT_NEAR(ref[e], out[e], 1e-6)
            << to_string(kind) << " invocation " << invocation;
    }
  }
}

// ---------------- scheme-specific behaviour ----------------

TEST(LocalWrite, NotApplicableWithoutIterationReplication) {
  PatternSpec s = kPatterns[0];
  s.lw_legal = false;
  const ReductionInput in = build(s);
  LocalWriteScheme<> lw;
  EXPECT_FALSE(lw.applicable(in.pattern));
}

TEST(LocalWrite, ReplicationMatchesOwnerSpread) {
  // Every iteration touches two elements in opposite halves: with 2
  // threads, each iteration must be executed twice.
  std::vector<std::uint64_t> ptr{0};
  std::vector<std::uint32_t> idx;
  constexpr std::size_t kIters = 100;
  for (std::size_t i = 0; i < kIters; ++i) {
    idx.push_back(static_cast<std::uint32_t>(i % 50));        // low half
    idx.push_back(static_cast<std::uint32_t>(50 + (i % 50))); // high half
    ptr.push_back(idx.size());
  }
  AccessPattern p;
  p.dim = 100;
  p.refs = Csr(std::move(ptr), std::move(idx));
  LocalWriteScheme<> lw;
  const auto plan = lw.plan(p, 2);
  const auto* pl = dynamic_cast<const LocalWriteScheme<>::Plan*>(plan.get());
  ASSERT_NE(pl, nullptr);
  EXPECT_EQ(pl->replicated_executions, 2 * kIters);
}

TEST(Selective, SharedSetShrinksWithPartitionLocality) {
  // Perfectly partition-local pattern: no shared elements at all.
  std::vector<std::uint64_t> ptr{0};
  std::vector<std::uint32_t> idx;
  constexpr std::size_t kN = 1000;
  for (std::size_t i = 0; i < kN; ++i) {
    idx.push_back(static_cast<std::uint32_t>(i));  // iteration i -> element i
    ptr.push_back(idx.size());
  }
  AccessPattern p;
  p.dim = kN;
  p.refs = Csr(std::move(ptr), std::move(idx));
  SelectiveScheme<> sel;
  const auto plan = sel.plan(p, 4);
  const auto* pl = dynamic_cast<const SelectiveScheme<>::Plan*>(plan.get());
  ASSERT_NE(pl, nullptr);
  EXPECT_EQ(pl->shared_elems.size(), 0u);
}

TEST(Hash, PrivateBytesScaleWithTouchedNotDim) {
  PatternSpec sparse{"sp", 1000000, 400, 2, 0.0, 0};
  const ReductionInput in = build(sparse);
  ThreadPool pool(2);
  std::vector<double> out(in.pattern.dim, 0.0);
  const auto hash_res = make_scheme(SchemeKind::kHash)->run(in, pool, out);
  std::vector<double> out2(in.pattern.dim, 0.0);
  const auto rep_res = make_scheme(SchemeKind::kRep)->run(in, pool, out2);
  EXPECT_LT(hash_res.private_bytes, rep_res.private_bytes / 100);
}

TEST(Hash, GrowsPastInitialEstimateAndStaysCorrect) {
  // Force growth: iterations all distinct, initial estimate small because
  // refs/thread underestimates the touched set under 1 thread? Use a
  // pattern with many distinct per thread.
  PatternSpec s{"grow", 100000, 60000, 1, 0.0, 0};
  const ReductionInput in = build(s);
  const auto ref = reference(in);
  ThreadPool pool(1);
  std::vector<double> out(in.pattern.dim, 0.0);
  make_scheme(SchemeKind::kHash)->run(in, pool, out);
  for (std::size_t e = 0; e < ref.size(); e += 101)
    ASSERT_NEAR(ref[e], out[e], 1e-8);
}

TEST(Rep, ReportsAllThreePhases) {
  const ReductionInput in = build(kPatterns[0]);
  ThreadPool pool(2);
  std::vector<double> out(in.pattern.dim, 0.0);
  const auto r = make_scheme(SchemeKind::kRep)->run(in, pool, out);
  EXPECT_GT(r.phases.init_s, 0.0);
  EXPECT_GT(r.phases.loop_s, 0.0);
  EXPECT_GT(r.phases.merge_s, 0.0);
  EXPECT_EQ(r.private_bytes, 2 * in.pattern.dim * sizeof(double));
}

TEST(LocalWrite, NoInitOrMergePhase) {
  const ReductionInput in = build(kPatterns[0]);
  ThreadPool pool(2);
  std::vector<double> out(in.pattern.dim, 0.0);
  const auto r = make_scheme(SchemeKind::kLocalWrite)->run(in, pool, out);
  EXPECT_EQ(r.phases.init_s, 0.0);
  EXPECT_EQ(r.phases.merge_s, 0.0);
  EXPECT_GT(r.phases.loop_s, 0.0);
}

// ---------------- registry ----------------

TEST(Registry, AllKindsConstructible) {
  for (SchemeKind k : all_scheme_kinds()) {
    const auto s = make_scheme(k);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), k);
  }
}

TEST(Registry, CandidatesAreThePaperFive) {
  const auto c = candidate_scheme_kinds();
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c[0], SchemeKind::kRep);
  EXPECT_EQ(c[1], SchemeKind::kLocalWrite);
  EXPECT_EQ(c[2], SchemeKind::kLinked);
  EXPECT_EQ(c[3], SchemeKind::kSelective);
  EXPECT_EQ(c[4], SchemeKind::kHash);
}

TEST(Registry, NameRoundTrip) {
  for (SchemeKind k : all_scheme_kinds())
    EXPECT_EQ(scheme_kind_from_name(std::string(to_string(k))), k);
  EXPECT_THROW((void)scheme_kind_from_name("bogus"), std::invalid_argument);
}

// ---------------- operators ----------------

TEST(ReductionOps, NeutralElements) {
  EXPECT_DOUBLE_EQ(SumOp<double>::neutral(), 0.0);
  EXPECT_DOUBLE_EQ(ProdOp<double>::neutral(), 1.0);
  EXPECT_DOUBLE_EQ(MaxOp<double>::apply(MaxOp<double>::neutral(), -1e300),
                   -1e300);
  EXPECT_DOUBLE_EQ(MinOp<double>::apply(MinOp<double>::neutral(), 1e300),
                   1e300);
}

TEST(ReductionOps, AtomicAccumulateUnderContention) {
  double target = 0.0;
  ThreadPool pool(4);
  pool.run([&](unsigned) {
    for (int i = 0; i < 10000; ++i)
      atomic_accumulate<SumOp<double>>(&target, 1.0);
  });
  EXPECT_DOUBLE_EQ(target, 40000.0);
}

TEST(ReductionOps, MaxSchemeViaTemplatedRep) {
  // The schemes are generic over the operator: max-reduce with rep.
  PatternSpec s = kPatterns[2];
  ReductionInput in = build(s);
  // Sequential max reference.
  std::vector<double> ref(in.pattern.dim, MaxOp<double>::neutral());
  {
    const auto& ptr = in.pattern.refs.row_ptr();
    const auto& idx = in.pattern.refs.indices();
    for (std::size_t i = 0; i < in.pattern.iterations(); ++i) {
      const double sc = iteration_scale(i, in.pattern.body_flops);
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j)
        ref[idx[j]] = std::max(ref[idx[j]], in.values[j] * sc);
    }
  }
  ThreadPool pool(3);
  RepScheme<MaxOp<double>> rep;
  std::vector<double> out(in.pattern.dim, MaxOp<double>::neutral());
  rep.run(in, pool, out);
  for (std::size_t e = 0; e < ref.size(); ++e)
    ASSERT_DOUBLE_EQ(ref[e], out[e]) << e;
}

}  // namespace
}  // namespace sapp
