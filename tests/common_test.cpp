// Unit tests for the common substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/barrier.hpp"
#include "common/csr.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace sapp {
namespace {

// ---------------- Rng ----------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i)
    if (a2() != c()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(8);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ZipfZeroThetaIsRoughlyUniform) {
  Rng r(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[r.zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng r(10);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[r.zipf(100, 0.9)];
  // Rank 0 much more popular than rank 50.
  EXPECT_GT(counts[0], counts[50] * 3);
  EXPECT_GT(counts[0], counts[99] * 3);
}

// ---------------- stats ----------------

TEST(Stats, MeanStddevMedian) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  const std::vector<double> even{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, HarmonicMeanMatchesPaperUsage) {
  // Harmonic mean of {4.0, 14.0, 6.1, 9.9, 15.6} — the Fig. 6 Hw speedups —
  // should land near the paper's reported 7.6 average.
  const std::vector<double> hw{4.0, 14.0, 6.1, 9.9, 15.6};
  EXPECT_NEAR(harmonic_mean(hw), 7.6, 0.35);
}

TEST(Stats, HarmonicMeanRejectsNonPositive) {
  const std::vector<double> bad{1.0, 0.0};
  EXPECT_DEATH(harmonic_mean(bad), "positive");
}

TEST(Stats, Speedup) { EXPECT_DOUBLE_EQ(speedup(10.0, 2.5), 4.0); }

// ---------------- Table ----------------

TEST(Table, AlignsColumns) {
  Table t({"a", "long-header", "c"});
  t.add_row({"xx", "1", "2"});
  t.add_row({"y", "12345678901234", "3"});
  const std::string s = t.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("12345678901234"), std::string::npos);
  // All lines same length for fully populated rows.
  EXPECT_DEATH(t.add_row({"only-two", "cells"}), "width");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}

// ---------------- static_block ----------------

TEST(StaticBlock, CoversRangeExactly) {
  for (std::size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    for (unsigned p : {1u, 2u, 3u, 8u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (unsigned t = 0; t < p; ++t) {
        const Range r = static_block(n, t, p);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(StaticBlock, BalancedWithinOne) {
  for (unsigned t = 0; t < 7; ++t) {
    const auto sz = static_block(23, t, 7).size();
    EXPECT_GE(sz, 3u);
    EXPECT_LE(sz, 4u);
  }
}

TEST(StaticBlock, ZeroThreadsYieldsEmptyRange) {
  const Range r = static_block(100, 0, 0);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
}

TEST(StaticBlock, TidBeyondPoolYieldsEmptyRange) {
  EXPECT_TRUE(static_block(100, 4, 4).empty());
  EXPECT_TRUE(static_block(100, 99, 4).empty());
}

TEST(StaticBlock, FewerItemsThanThreads) {
  // n < nthreads: the first n threads get exactly one iteration each, the
  // rest get empty ranges; the union still covers [0, n) exactly once.
  constexpr std::size_t n = 3;
  constexpr unsigned p = 8;
  for (unsigned t = 0; t < p; ++t) {
    const Range r = static_block(n, t, p);
    if (t < n) {
      EXPECT_EQ(r.begin, t);
      EXPECT_EQ(r.size(), 1u);
    } else {
      EXPECT_TRUE(r.empty());
    }
  }
}

TEST(StaticBlock, RemainderGoesToLeadingThreads) {
  // 10 items over 4 threads: sizes 3,3,2,2.
  EXPECT_EQ(static_block(10, 0, 4).size(), 3u);
  EXPECT_EQ(static_block(10, 1, 4).size(), 3u);
  EXPECT_EQ(static_block(10, 2, 4).size(), 2u);
  EXPECT_EQ(static_block(10, 3, 4).size(), 2u);
}

// ---------------- SpinBarrier ----------------

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr unsigned kThreads = 4;
  SpinBarrier bar(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<int> seen(kThreads, -1);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int ph = 0; ph < 5; ++ph) {
        phase_counter.fetch_add(1);
        bar.arrive_and_wait();
        // After the barrier, all increments of this phase are visible.
        EXPECT_GE(phase_counter.load(), (ph + 1) * static_cast<int>(kThreads));
        bar.arrive_and_wait();
      }
      seen[t] = 1;
    });
  }
  for (auto& th : ts) th.join();
  for (int s : seen) EXPECT_EQ(s, 1);
}

// ---------------- ThreadPool ----------------

TEST(ThreadPool, RunsEveryWorkerOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  pool.run([&](unsigned tid) { counts[tid].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](unsigned, Range r) {
    for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DynamicCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  pool.parallel_for_dynamic(1003, 17, [&](unsigned, Range r) {
    for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int k = 0; k < 200; ++k)
    pool.run([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPool, EmptyRangeDoesNotInvokeBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](unsigned, Range) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, CallerParticipatesAsWorkerZero) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id tid0{};
  std::set<std::thread::id> others;
  std::mutex mu;
  pool.run([&](unsigned tid) {
    if (tid == 0) {
      tid0 = std::this_thread::get_id();
    } else {
      std::scoped_lock lk(mu);
      others.insert(std::this_thread::get_id());
    }
  });
  EXPECT_EQ(tid0, caller);
  EXPECT_EQ(others.size(), 3u);
  EXPECT_EQ(others.count(caller), 0u);
}

TEST(ThreadPool, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  std::thread::id seen{};
  pool.run([&](unsigned tid) {
    EXPECT_EQ(tid, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, std::this_thread::get_id());
}

TEST(ThreadPool, ManyBackToBackRegions) {
  // The regression the spin-then-block design targets: thousands of tiny
  // regions in a row must all dispatch and join correctly whether workers
  // are caught spinning or have parked.
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  constexpr int kRegions = 5000;
  for (int k = 0; k < kRegions; ++k)
    pool.run([&](unsigned tid) { total.fetch_add(tid + 1); });
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kRegions) * (1 + 2 + 3));
}

TEST(ThreadPool, RegionsInterleavedWithSleepPark) {
  // Let the workers exhaust their spin budget and park between regions;
  // the next dispatch must wake them.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int k = 0; k < 3; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.run([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 6);
}

TEST(ThreadPool, DynamicClaimsEveryIndexExactlyOnce) {
  // Chunk size not dividing n, n not dividing threads: every index must be
  // claimed exactly once across all chunk shapes.
  ThreadPool pool(4);
  for (const std::size_t chunk : {1ul, 7ul, 64ul, 5000ul}) {
    std::vector<std::atomic<int>> hits(997);
    pool.parallel_for_dynamic(997, chunk, [&](unsigned, Range r) {
      for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1) << "chunk " << chunk;
  }
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  std::atomic<int> invocations{0};
  pool.parallel_for(3, [&](unsigned, Range r) {
    invocations.fetch_add(1);
    for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(invocations.load(), 3);  // empty ranges are skipped
}

TEST(ThreadPool, RunAcceptsStdFunction) {
  // The templated front end must still take a pre-built std::function
  // (type-erased callers).
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  const std::function<void(unsigned)> f = [&](unsigned) {
    calls.fetch_add(1);
  };
  pool.run(f);
  EXPECT_EQ(calls.load(), 2);
}

// ---------------- Csr ----------------

TEST(Csr, FromPairsGroupsByRow) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs{
      {2, 7}, {0, 1}, {2, 9}, {0, 3}};
  const Csr csr = Csr::from_pairs(3, pairs);
  EXPECT_EQ(csr.rows(), 3u);
  EXPECT_EQ(csr.nnz(), 4u);
  ASSERT_EQ(csr.row(0).size(), 2u);
  EXPECT_EQ(csr.row(0)[0], 1u);
  EXPECT_EQ(csr.row(0)[1], 3u);
  EXPECT_EQ(csr.row(1).size(), 0u);
  ASSERT_EQ(csr.row(2).size(), 2u);
  EXPECT_EQ(csr.row(2)[0], 7u);
  EXPECT_EQ(csr.row(2)[1], 9u);
}

TEST(Csr, RejectsMalformedRowPtr) {
  EXPECT_DEATH(Csr({0, 5}, {1, 2}), "malformed");
}

// ---------------- aligned ----------------

TEST(Aligned, PaddedOccupiesFullCacheLine) {
  static_assert(sizeof(Padded<int>) == kCacheLine);
  static_assert(alignof(Padded<int>) == kCacheLine);
  Padded<int> arr[4];
  for (int i = 0; i < 4; ++i) *arr[i] = i;
  EXPECT_EQ(*arr[3], 3);
}

TEST(Aligned, VectorDataCacheAligned) {
  CacheAlignedVector<double> v(100, 1.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLine, 0u);
  EXPECT_DOUBLE_EQ(std::accumulate(v.begin(), v.end(), 0.0), 100.0);
}

// ---------------- Timer ----------------

TEST(Timer, MonotonicAndRestartable) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
  t.restart();
  EXPECT_LT(t.seconds(), 0.5);
}

TEST(Timer, PhaseTimesAccumulate) {
  PhaseTimes a{1.0, 2.0, 3.0}, b{0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.total(), 7.5);
}

}  // namespace
}  // namespace sapp
