// Property tests of the analytic cost models (the ToolBox "Predictor"):
// monotonicity in each pattern dimension and sanity of the calibrated
// coefficients. These pin down the *reasons* the decision model prefers a
// scheme, not just the final choice.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cost_model.hpp"
#include "reductions/registry.hpp"

namespace sapp {
namespace {

PatternStats base_stats() {
  PatternStats s;
  s.threads = 8;
  s.dim = 200000;
  s.iterations = 300000;
  s.refs = 600000;
  s.distinct = 60000;
  s.mo = 2.0;
  s.con = 10.0;
  s.sp = 30.0;
  s.dim_ratio = 3.0;
  s.chr = 0.375;
  s.touched_per_thread = 20000;
  s.shared_fraction = 0.3;
  s.lw_replication = 1.3;
  s.lw_imbalance = 1.1;
  s.lw_legal = true;
  return s;
}

const MachineCoeffs kMc = MachineCoeffs::defaults();

class CostMonotonicity : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(CostMonotonicity, MoreReferencesCostMore) {
  const SchemeKind k = GetParam();
  auto lo = base_stats();
  auto hi = base_stats();
  hi.refs = 4 * lo.refs;
  hi.iterations = 4 * lo.iterations;
  EXPECT_LT(predict_cost(k, lo, 4, kMc).loop_s,
            predict_cost(k, hi, 4, kMc).loop_s)
      << to_string(k);
}

TEST_P(CostMonotonicity, MoreThreadsShrinkTheLoop) {
  const SchemeKind k = GetParam();
  auto few = base_stats();
  few.threads = 2;
  auto many = base_stats();
  many.threads = 16;
  EXPECT_GT(predict_cost(k, few, 8, kMc).loop_s,
            predict_cost(k, many, 8, kMc).loop_s)
      << to_string(k);
}

TEST_P(CostMonotonicity, HeavierBodyCostsMore) {
  const SchemeKind k = GetParam();
  const auto s = base_stats();
  EXPECT_LT(predict_cost(k, s, 2, kMc).loop_s,
            predict_cost(k, s, 64, kMc).loop_s)
      << to_string(k);
}

INSTANTIATE_TEST_SUITE_P(
    AllCandidates, CostMonotonicity,
    ::testing::Values(SchemeKind::kRep, SchemeKind::kLocalWrite,
                      SchemeKind::kLinked, SchemeKind::kSelective,
                      SchemeKind::kHash),
    [](const auto& info) { return std::string(to_string(info.param)); });

// --- Scheme-specific structure.

TEST(CostModel, OnlyRepAndLlPayDimSizedPlans) {
  auto small = base_stats();
  auto big = base_stats();
  big.dim *= 16;
  const auto mc = kMc;
  // rep/ll allocate P full copies: plan scales with dim.
  EXPECT_GT(predict_cost(SchemeKind::kRep, big, 4, mc).plan_s,
            8 * predict_cost(SchemeKind::kRep, small, 4, mc).plan_s);
  EXPECT_GT(predict_cost(SchemeKind::kLinked, big, 4, mc).plan_s,
            8 * predict_cost(SchemeKind::kLinked, small, 4, mc).plan_s);
  // lw's plan scales with refs, not dim.
  EXPECT_DOUBLE_EQ(predict_cost(SchemeKind::kLocalWrite, big, 4, mc).plan_s,
                   predict_cost(SchemeKind::kLocalWrite, small, 4, mc).plan_s);
  // hash's plan scales with the touched estimate, capped well below dim.
  EXPECT_LT(predict_cost(SchemeKind::kHash, big, 4, mc).plan_s,
            predict_cost(SchemeKind::kRep, big, 4, mc).plan_s);
}

TEST(CostModel, SelMergeScalesWithSharedSetOnly) {
  auto lo = base_stats();
  lo.shared_fraction = 0.05;
  auto hi = base_stats();
  hi.shared_fraction = 0.9;
  EXPECT_LT(predict_cost(SchemeKind::kSelective, lo, 4, kMc).merge_s,
            predict_cost(SchemeKind::kSelective, hi, 4, kMc).merge_s);
}

TEST(CostModel, LwPenalizedByReplicationAndImbalance) {
  auto good = base_stats();
  good.lw_replication = 1.0;
  good.lw_imbalance = 1.0;
  auto repl = good;
  repl.lw_replication = 2.0;
  auto imb = good;
  imb.lw_imbalance = 3.0;
  const double base = predict_cost(SchemeKind::kLocalWrite, good, 16, kMc).loop_s;
  EXPECT_GT(predict_cost(SchemeKind::kLocalWrite, repl, 16, kMc).loop_s, base);
  EXPECT_GT(predict_cost(SchemeKind::kLocalWrite, imb, 16, kMc).loop_s,
            2.5 * base);
}

TEST(CostModel, RepBecomesHopelessWhenDimDwarfsRefs) {
  // 5k refs into a 2M array (the Irreg 2M / Fig. 3 r4 regime): rep must
  // be the most expensive candidate.
  PatternStats s = base_stats();
  s.dim = 2000000;
  s.refs = 10000;
  s.iterations = 5000;
  s.distinct = 5000;
  s.touched_per_thread = 700;
  s.shared_fraction = 0.1;
  const auto all = predict_all(s, 8, kMc);
  EXPECT_EQ(all.back().scheme, SchemeKind::kRep);
}

TEST(CostModel, SeqHasNoParallelOverheads) {
  const auto c = predict_cost(SchemeKind::kSeq, base_stats(), 4, kMc);
  EXPECT_DOUBLE_EQ(c.plan_s, 0.0);
  EXPECT_DOUBLE_EQ(c.init_s, 0.0);
  EXPECT_DOUBLE_EQ(c.merge_s, 0.0);
  EXPECT_GT(c.loop_s, 0.0);
}

TEST(CostModel, CalibratedCoefficientsAreOrdered) {
  // Timing-based micro-calibration runs while other tests load the host;
  // take the best (cleanest) of a few attempts before asserting ordering.
  ThreadPool pool(2);
  MachineCoeffs mc = MachineCoeffs::calibrate(pool);
  for (int attempt = 0;
       attempt < 3 && !(mc.ns_atomic > mc.ns_update &&
                        mc.ns_hash > mc.ns_update * 0.8);
       ++attempt) {
    mc = MachineCoeffs::calibrate(pool);
  }
  // Contended atomics cost more than plain cached updates; a hash probe
  // is not cheaper than a plain update (modulo measurement noise).
  EXPECT_GT(mc.ns_atomic, mc.ns_update);
  EXPECT_GT(mc.ns_hash, mc.ns_update * 0.8);
  EXPECT_GE(mc.ns_update_far, mc.ns_update * 0.7);
  EXPECT_GT(mc.fork_join_us, 0.0);
  EXPECT_GT(mc.ns_inspect, 0.0);
  EXPECT_GT(mc.ns_alloc, 0.0);
}

TEST(CostModel, PredictAllContainsExactlyTheCandidates) {
  const auto all = predict_all(base_stats(), 4, kMc);
  ASSERT_EQ(all.size(), 5u);
  for (const auto& c : all) {
    const auto cands = candidate_scheme_kinds();
    EXPECT_NE(std::find(cands.begin(), cands.end(), c.scheme), cands.end());
  }
}

// ---- Ranking stability ---------------------------------------------------
// A pinned table of known inputs -> expected full scheme ranking under the
// default coefficients. These regimes are far from every decision boundary,
// so the orders must survive coefficient tweaks that merely reshuffle
// near-ties; a failure here means the predictor's *shape* changed, which
// has to be a deliberate decision (update the table in the same commit).

PatternStats ranking_stats(std::size_t dim, std::size_t iters,
                           std::size_t refs, std::size_t distinct,
                           unsigned threads, bool lw_legal,
                           double shared_fraction) {
  PatternStats s;
  s.threads = threads;
  s.dim = dim;
  s.iterations = iters;
  s.refs = refs;
  s.distinct = distinct;
  s.mo = iters ? static_cast<double>(refs) / static_cast<double>(iters) : 0;
  s.con = distinct
              ? static_cast<double>(refs) / static_cast<double>(distinct)
              : 0;
  s.sp = dim ? 100.0 * static_cast<double>(distinct) /
                   static_cast<double>(dim)
             : 0;
  s.dim_ratio = refs ? static_cast<double>(dim) / static_cast<double>(refs)
                     : 0;
  s.touched_per_thread = static_cast<double>(distinct) / threads;
  s.shared_fraction = shared_fraction;
  s.lw_replication = 1.3;
  s.lw_imbalance = 1.1;
  s.lw_legal = lw_legal;
  s.chd_gini = 0.3;
  s.chr = 0.4;
  return s;
}

TEST(CostModel, RankingStabilityPinnedTable) {
  struct Scenario {
    const char* name;
    PatternStats stats;
    unsigned flops;
    std::vector<SchemeKind> expected;  // best first, full order
  };
  using K = SchemeKind;
  const Scenario table[] = {
      // Small dense array, heavy reuse: private full replicas win.
      {"dense_reuse",
       ranking_stats(1 << 13, 1 << 20, 1 << 21, (1 << 13) - 512, 8, true,
                     0.8),
       4,
       {K::kRep, K::kLinked, K::kHash, K::kSelective, K::kLocalWrite}},
      // Tiny hot set in a huge array: compact hash accumulation wins and
      // full replication is hopeless (dim-sized init+merge per thread).
      {"sparse_hot",
       ranking_stats(1 << 21, 1 << 16, 1 << 18, 1 << 10, 8, true, 0.2),
       8,
       {K::kHash, K::kLocalWrite, K::kSelective, K::kLinked, K::kRep}},
      // Huge scatter with replication illegal: lw must sort dead last.
      {"huge_scatter",
       ranking_stats(1 << 22, 1 << 15, 1 << 15, 1 << 14, 8, false, 0.5),
       2,
       {K::kHash, K::kSelective, K::kLinked, K::kRep, K::kLocalWrite}},
      // Balanced middle: hash still leads, rep trails on the merge.
      {"mid_balanced",
       ranking_stats(1 << 17, 1 << 18, 1 << 18, 1 << 16, 8, true, 0.5),
       6,
       {K::kHash, K::kLocalWrite, K::kLinked, K::kSelective, K::kRep}},
      // Single thread, tiny loop: owner-replay (lw) has no merge at all.
      {"tiny_serial",
       ranking_stats(256, 512, 1024, 128, 1, true, 0.5),
       2,
       {K::kLocalWrite, K::kRep, K::kLinked, K::kSelective, K::kHash}},
  };
  for (const Scenario& sc : table) {
    const auto all = predict_all(sc.stats, sc.flops, kMc);
    ASSERT_EQ(all.size(), sc.expected.size()) << sc.name;
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i].scheme, sc.expected[i])
          << sc.name << ": rank " << i << " is " << to_string(all[i].scheme)
          << ", expected " << to_string(sc.expected[i]);
    }
  }
  // Inapplicable schemes must sort last regardless of their raw cost.
  const auto scatter = predict_all(table[2].stats, table[2].flops, kMc);
  EXPECT_FALSE(scatter.back().applicable);
}

}  // namespace
}  // namespace sapp
