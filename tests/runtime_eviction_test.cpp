// LRU/TTL eviction contract of the bounded runtime site table.
//
// `max_sites` caps the live table: a creation past the cap evicts the
// least-recently-used sites (their decisions persisted into the store);
// `site_ttl_s` expires idle sites on sweep(). The end-to-end property —
// the reason eviction is safe at all — is that an evicted site which
// returns warm-starts from its persisted decision: correct results, no
// re-characterization, knowledge bounded only by the store, not the
// table.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "workloads/workload.hpp"

namespace sapp {
namespace {

RuntimeOptions quiet_options() {
  RuntimeOptions o;
  o.threads = 2;
  o.calibrate = false;
  // Pin eviction semantics, not adaptation: park the feedback loop so
  // uncalibrated predictions cannot trigger switches mid-test.
  o.adaptive.mispredict_patience = 1 << 30;
  o.adaptive.monitor.time_drift_patience = 1 << 30;
  return o;
}

ReductionInput site_input(int variant) {
  workloads::SynthParams p;
  p.dim = 300 + 40 * static_cast<std::size_t>(variant);
  p.distinct = p.dim / 2;
  p.iterations = 500;
  p.refs_per_iter = 2;
  p.seed = 7100 + static_cast<std::uint64_t>(variant);
  auto in = workloads::make_synthetic(p);
  in.pattern.loop_id = "evict/site" + std::to_string(variant);
  return in;
}

TEST(RuntimeEviction, LeastRecentlyUsedSiteGoesFirst) {
  RuntimeOptions o = quiet_options();
  o.max_sites = 3;
  Runtime rt(o);
  std::vector<ReductionInput> in;
  std::vector<std::vector<double>> out;
  for (int v = 0; v < 4; ++v) {
    in.push_back(site_input(v));
    out.emplace_back(in.back().pattern.dim, 0.0);
  }
  // Recency order oldest-first after this: site0, site1, site2.
  for (int v = 0; v < 3; ++v) (void)rt.submit(in[v], out[v]);
  // Touch site0 so site1 becomes the LRU victim.
  (void)rt.submit(in[0], out[0]);
  EXPECT_EQ(rt.site_count(), 3u);
  EXPECT_EQ(rt.evictions(), 0u);

  // Creating site3 must evict — and evict site1 specifically.
  (void)rt.submit(in[3], out[3]);
  EXPECT_LE(rt.site_count(), 3u);
  EXPECT_GE(rt.evictions(), 1u);
  EXPECT_FALSE(rt.has_live_site("evict/site1"));
  EXPECT_TRUE(rt.has_live_site("evict/site0"));
  EXPECT_TRUE(rt.has_live_site("evict/site3"));
  // The victim's decision moved into the store, not into the void.
  EXPECT_TRUE(rt.persisted_decisions().find("evict/site1") != nullptr);
}

TEST(RuntimeEviction, TtlExpiresIdleSitesButNotActiveOnes) {
  // A TTL starts the maintenance thread (ticking at ttl/2), so expiry
  // needs no explicit sweep() — an idle site disappears on its own while
  // a site that keeps submitting never does.
  RuntimeOptions o = quiet_options();
  o.site_ttl_s = 0.05;
  Runtime rt(o);
  auto a = site_input(0);
  auto b = site_input(1);
  std::vector<double> out_a(a.pattern.dim, 0.0);
  std::vector<double> out_b(b.pattern.dim, 0.0);
  (void)rt.submit(a, out_a);
  (void)rt.submit(b, out_b);
  EXPECT_EQ(rt.site_count(), 2u);
  EXPECT_EQ(rt.sweep(), 0u) << "fresh sites are inside the TTL";

  // Site a goes idle past the TTL; site b stays hot (touched every 10ms,
  // well inside the 50ms TTL).
  for (int k = 0; k < 10; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::fill(out_b.begin(), out_b.end(), 0.0);
    (void)rt.submit(b, out_b);
  }
  (void)rt.sweep();  // deterministic even if the maintenance tick just ran
  EXPECT_FALSE(rt.has_live_site("evict/site0"));
  EXPECT_TRUE(rt.has_live_site("evict/site1"));
  EXPECT_EQ(rt.evictions(), 1u);
  // Expiry persisted the idle site's decision for a later warm return.
  EXPECT_TRUE(rt.persisted_decisions().find("evict/site0") != nullptr);
}

TEST(RuntimeEviction, EvictedSiteReturnsWarmWithCorrectResults) {
  RuntimeOptions o = quiet_options();
  o.max_sites = 2;
  Runtime rt(o);
  std::vector<ReductionInput> in;
  std::vector<std::vector<double>> ref;
  for (int v = 0; v < 3; ++v) {
    in.push_back(site_input(v));
    ref.emplace_back(in.back().pattern.dim, 0.0);
    run_sequential(in.back(), ref.back());
  }
  std::vector<double> out(in[0].pattern.dim, 0.0);
  // Learn site0 over a few invocations, then push it out of the table.
  for (int k = 0; k < 3; ++k) {
    std::fill(out.begin(), out.end(), 0.0);
    (void)rt.submit(in[0], out);
  }
  const SchemeKind learned = rt.site("evict/site0").current();
  const std::uint64_t learned_invocations =
      rt.site("evict/site0").lifetime_invocations();
  std::vector<double> out1(in[1].pattern.dim, 0.0);
  std::vector<double> out2(in[2].pattern.dim, 0.0);
  (void)rt.submit(in[1], out1);
  (void)rt.submit(in[2], out2);
  ASSERT_FALSE(rt.has_live_site("evict/site0")) << "site0 was the LRU victim";
  const std::uint64_t warm_before = rt.warm_offers();

  // The return: same input, fresh registration. It must warm-start from
  // the persisted decision (no characterization run), keep the learned
  // scheme, resume the lifetime invocation count, and stay correct.
  std::fill(out.begin(), out.end(), 0.0);
  (void)rt.submit(in[0], out);
  ASSERT_TRUE(rt.has_live_site("evict/site0"));
  EXPECT_EQ(rt.warm_offers(), warm_before + 1);
  EXPECT_TRUE(rt.site("evict/site0").warm_started());
  EXPECT_EQ(rt.site("evict/site0").recharacterizations(), 0u);
  EXPECT_EQ(rt.site("evict/site0").current(), learned);
  EXPECT_EQ(rt.site("evict/site0").lifetime_invocations(),
            learned_invocations + 1);
  for (std::size_t e = 0; e < ref[0].size(); ++e)
    ASSERT_NEAR(out[e], ref[0][e], 1e-9 + 1e-9 * std::abs(ref[0][e]))
        << "element " << e;
}

TEST(RuntimeEviction, TableStaysBoundedThroughSustainedChurn) {
  RuntimeOptions o = quiet_options();
  o.max_sites = 8;
  Runtime rt(o);
  std::vector<ReductionInput> in;
  for (int v = 0; v < 40; ++v) in.push_back(site_input(v));
  std::vector<double> out;
  for (int round = 0; round < 3; ++round) {
    for (const auto& i : in) {
      out.assign(i.pattern.dim, 0.0);
      (void)rt.submit(i, out);
      EXPECT_LE(rt.site_count(), 8u)
          << "single-threaded churn must never overshoot the cap";
    }
  }
  EXPECT_GE(rt.evictions(), 40u * 3u - 8u);
  // Bounded table, unbounded knowledge: every site's decision is held.
  EXPECT_EQ(rt.warm_entries(), 40u);
}

// Process-restart flow (the serving harness measures the same thing at
// scale): a second Runtime pointed at the first one's decision-store
// directory must warm-start every returning site from the reloaded
// sharded store — warm offers counted, zero re-characterizations, results
// identical — with eviction churn in between, so the knowledge crossing
// the restart went through evict → persist → reload, not live memory.
TEST(RuntimeEviction, RestartReloadsShardedStoreAndWarmStarts) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("sapp_evict_restart." + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  constexpr int kSites = 6;
  std::vector<ReductionInput> in;
  std::vector<std::vector<double>> ref;
  std::vector<SchemeKind> learned(kSites);
  for (int v = 0; v < kSites; ++v) {
    in.push_back(site_input(v));
    ref.emplace_back(in.back().pattern.dim, 0.0);
    run_sequential(in.back(), ref.back());
  }

  RuntimeOptions o = quiet_options();
  o.decision_cache_dir = dir;
  o.max_sites = 3;  // smaller than kSites: decisions cross via the store
  {
    Runtime rt(o);
    std::vector<double> out;
    for (int round = 0; round < 3; ++round)
      for (int v = 0; v < kSites; ++v) {
        out.assign(in[v].pattern.dim, 0.0);
        (void)rt.submit(in[v], out);
      }
    // Record what each site settled on: live table first, else the
    // persisted snapshot of an already-evicted site.
    const DecisionCache persisted = rt.snapshot_decisions();
    const DecisionCache stored = rt.persisted_decisions();
    for (int v = 0; v < kSites; ++v) {
      const std::string& id = in[v].pattern.loop_id;
      const CachedDecision* d = persisted.find(id);
      if (d == nullptr) d = stored.find(id);
      ASSERT_NE(d, nullptr) << "site " << v << " left no decision";
      learned[v] = d->scheme;
    }
    // Destructor drains the maintenance thread and flushes every shard.
  }

  Runtime rt2(o);
  EXPECT_EQ(rt2.warm_entries(), static_cast<std::size_t>(kSites))
      << "the fresh Runtime must reload every persisted decision";
  EXPECT_EQ(rt2.site_count(), 0u);
  std::vector<double> out;
  for (int v = 0; v < kSites; ++v) {
    out.assign(in[v].pattern.dim, 0.0);
    (void)rt2.submit(in[v], out);
    for (std::size_t e = 0; e < ref[v].size(); ++e)
      ASSERT_NEAR(out[e], ref[v][e], 1e-9 + 1e-9 * std::abs(ref[v][e]))
          << "site " << v << " element " << e << " across restart";
    // Inspect while the site is guaranteed live (it was just submitted;
    // later creations may evict it again under the small cap).
    const auto& site = rt2.site(in[v].pattern.loop_id);
    EXPECT_TRUE(site.warm_started()) << "site " << v;
    EXPECT_EQ(site.recharacterizations(), 0u)
        << "site " << v << ": a warm start must skip characterization";
    EXPECT_EQ(site.current(), learned[v]) << "site " << v;
  }
  EXPECT_GE(rt2.warm_offers(), static_cast<std::uint64_t>(kSites))
      << "every returning site found a cached decision";
  fs::remove_all(dir);
}

TEST(RuntimeEviction, SweepIsANoOpWithoutCapOrTtl) {
  Runtime rt(quiet_options());
  auto a = site_input(0);
  std::vector<double> out(a.pattern.dim, 0.0);
  (void)rt.submit(a, out);
  EXPECT_EQ(rt.sweep(), 0u);
  EXPECT_EQ(rt.site_count(), 1u);
  EXPECT_EQ(rt.evictions(), 0u);
}

}  // namespace
}  // namespace sapp
