// Property tests of the in-flight probabilistic reduction checker
// (src/check, docs/checking.md).
//
// Three properties pin the design:
//   * no false positives — across the full 240-case differential matrix
//     (patterns x operators x thread counts), a correct scheme execution
//     never fails the check, at sample_rate 1.0 and 0.25;
//   * detection matches the analytical bound — a single-element corruption
//     is detected iff its element is sampled (exact, per trial), so the
//     aggregate detection rate is binomially distributed around the
//     sampled fraction; N-element corruptions follow 1-(1-s)^N;
//   * order independence — the input checksum is bitwise identical across
//     thread counts and combine orders (serial pass vs. sharded passes of
//     different widths).
// Plus the wiring: a detected corruption rolls the AdaptiveReducer back to
// the trusted serial result and demotes the decision.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "check/checker.hpp"
#include "check/fault_injector.hpp"
#include "common/rng.hpp"
#include "core/adaptive.hpp"
#include "differential_cases.hpp"
#include "reductions/scheme_atomic.hpp"
#include "reductions/scheme_rep.hpp"
#include "workloads/workload.hpp"

namespace sapp {
namespace {

using difftest::CaseParams;
using difftest::OpKind;

CheckOp check_op(OpKind op) {
  switch (op) {
    case OpKind::kSum: return CheckOp::kSum;
    case OpKind::kMax: return CheckOp::kMax;
    case OpKind::kMin: return CheckOp::kMin;
  }
  return CheckOp::kSum;
}

template <typename Op>
std::vector<std::unique_ptr<Scheme>> probe_schemes() {
  // One deterministic-fold scheme and one order-nondeterministic scheme:
  // between them they produce every legal kind of reassociation the
  // tolerance has to absorb.
  std::vector<std::unique_ptr<Scheme>> v;
  v.push_back(std::make_unique<RepScheme<Op>>());
  v.push_back(std::make_unique<AtomicScheme<Op>>());
  return v;
}

template <typename Op>
void run_case_checked(const CaseParams& c, const ReductionInput& in,
                      ThreadPool& pool, int index, double rate,
                      std::size_t& failures) {
  for (auto& scheme : probe_schemes<Op>()) {
    CheckerOptions co;
    co.enabled = true;
    co.sample_rate = rate;
    ReductionChecker checker(co, check_op(c.op));
    std::vector<double> out(in.pattern.dim, Op::neutral());
    checker.begin(in, out, &pool);
    (void)scheme->run(in, pool, out);
    const CheckReport rep = checker.verify(out);
    if (!rep.passed) {
      ++failures;
      ADD_FAILURE() << "false positive: case " << index << " scheme "
                    << scheme->name() << " op " << difftest::op_name(c.op)
                    << " rate " << rate << " slot " << rep.first_failed_slot
                    << " excess " << rep.max_rel_excess;
    }
  }
}

// --- Property 1: zero false positives over the differential matrix. ----

TEST(Checker, NoFalsePositivesAcrossDifferentialMatrix) {
  constexpr int kCases = 240;
  std::map<unsigned, std::unique_ptr<ThreadPool>> pools;
  std::size_t failures = 0;
  for (int i = 0; i < kCases; ++i) {
    const CaseParams c = difftest::derive_case(i);
    const ReductionInput in = difftest::build_input(c, i);
    auto& pool = pools[c.threads];
    if (!pool) pool = std::make_unique<ThreadPool>(c.threads);
    // Rate 1.0 checks every element; 0.25 exercises the sampled path.
    const double rate = i % 2 == 0 ? 1.0 : 0.25;
    switch (c.op) {
      case OpKind::kSum:
        run_case_checked<SumOp<double>>(c, in, *pool, i, rate, failures);
        break;
      case OpKind::kMax:
        run_case_checked<MaxOp<double>>(c, in, *pool, i, rate, failures);
        break;
      case OpKind::kMin:
        run_case_checked<MinOp<double>>(c, in, *pool, i, rate, failures);
        break;
    }
  }
  EXPECT_EQ(failures, 0u);
}

// --- Property 2: detection matches the analytical bound. ---------------

ReductionInput detection_input() {
  workloads::SynthParams p;
  p.dim = 1200;
  p.distinct = 1200;
  p.iterations = 4000;
  p.refs_per_iter = 3;
  p.seed = 424242;
  return workloads::make_synthetic(p);
}

/// One verify() per trial against a pre-corrupted copy of a correct
/// output: detection must agree with the sampling predicate per trial, and
/// the aggregate rate must sit inside the binomial envelope around the
/// exact sampled fraction.
void detection_trials(double rate, int corruptions_per_trial, int trials) {
  const ReductionInput in = detection_input();
  ThreadPool pool(4);
  CheckerOptions co;
  co.enabled = true;
  co.sample_rate = rate;
  ReductionChecker checker(co);
  std::vector<double> correct(in.pattern.dim, 0.0);
  checker.begin(in, correct, &pool);
  RepScheme<SumOp<double>> scheme;
  (void)scheme.run(in, pool, correct);
  ASSERT_TRUE(checker.verify(correct).passed);

  const std::size_t dim = in.pattern.dim;
  const double s =
      static_cast<double>(ReductionChecker::count_sampled(co.seed, rate, dim)) /
      static_cast<double>(dim);
  Rng rng(0xFA017u + static_cast<std::uint64_t>(corruptions_per_trial));
  int detected = 0;
  double expected_p_sum = 0.0;
  std::vector<double> out;
  for (int t = 0; t < trials; ++t) {
    out = correct;
    std::set<std::uint64_t> victims;
    while (victims.size() < static_cast<std::size_t>(corruptions_per_trial))
      victims.insert(rng.below(dim));
    bool predicted = false;
    for (const std::uint64_t e : victims) {
      out[e] = corrupt_value(out[e]);
      predicted |= ReductionChecker::slot_sampled(co.seed, rate, e);
    }
    const bool got = !checker.verify(out).passed;
    ASSERT_EQ(got, predicted)
        << "trial " << t << ": detection must equal 'any victim sampled'";
    detected += got ? 1 : 0;
    expected_p_sum += predicted ? 1.0 : 0.0;
  }
  // Aggregate: binomial around p = 1-(1-s)^N (victims ~ uniform without
  // replacement; the envelope is wide enough for the slight dependence).
  const double p = 1.0 - std::pow(1.0 - s, corruptions_per_trial);
  const double sigma = std::sqrt(p * (1.0 - p) / trials);
  EXPECT_NEAR(static_cast<double>(detected) / trials, p, 4.0 * sigma + 1e-12)
      << "rate " << rate << " N " << corruptions_per_trial;
}

TEST(Checker, SingleCorruptionDetectionMatchesSampleRate) {
  detection_trials(0.25, 1, 400);
  detection_trials(0.5, 1, 400);
}

TEST(Checker, MultiCorruptionDetectionFollowsOneMinusMissPower) {
  detection_trials(0.25, 3, 400);
}

TEST(Checker, FullRateDetectsEveryCorruption) {
  const ReductionInput in = detection_input();
  ThreadPool pool(2);
  CheckerOptions co;
  co.enabled = true;
  co.sample_rate = 1.0;
  ReductionChecker checker(co);
  std::vector<double> out(in.pattern.dim, 0.0);
  checker.begin(in, out, &pool);
  RepScheme<SumOp<double>> scheme;
  (void)scheme.run(in, pool, out);
  Rng rng(99);
  for (int t = 0; t < 50; ++t) {
    std::vector<double> bad = out;
    const auto victim = rng.below(bad.size());
    bad[victim] = corrupt_value(bad[victim]);
    EXPECT_FALSE(checker.verify(bad).passed) << "trial " << t;
  }
}

// --- Property 3: checksum order independence. --------------------------

TEST(Checker, ChecksumBitwiseEqualAcrossThreadCountsAndCombineOrders) {
  const ReductionInput in = detection_input();
  for (const double rate : {0.25, 1.0}) {
    CheckerOptions co;
    co.enabled = true;
    co.sample_rate = rate;
    // Serial pass is the reference combine order.
    ReductionChecker serial(co);
    std::vector<double> out(in.pattern.dim, 0.0);
    serial.begin(in, out, nullptr);
    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
      ThreadPool pool(threads);
      ReductionChecker sharded(co);
      sharded.begin(in, out, &pool);
      // Different pool widths shard (and hence associate) the fold
      // differently; the integer state makes them all bitwise equal.
      EXPECT_EQ(sharded.input_checksum(), serial.input_checksum())
          << "threads " << threads << " rate " << rate;
    }
  }
}

// --- Edge cases and the fault-injector contract. -----------------------

TEST(Checker, EmptyAndUnsampledInputsPass) {
  CheckerOptions co;
  co.enabled = true;
  co.sample_rate = 0.0;  // nothing sampled
  ReductionInput in = detection_input();
  ReductionChecker none(co);
  std::vector<double> out(in.pattern.dim, 1.0);
  none.begin(in, out, nullptr);
  EXPECT_EQ(none.slots_sampled(), 0u);
  EXPECT_TRUE(none.verify(out).passed);

  // Zero iterations: every sampled slot has zero contributions and the
  // untouched output must pass.
  in.pattern.refs = Csr({0}, {});
  in.values.clear();
  co.sample_rate = 1.0;
  ReductionChecker empty(co);
  empty.begin(in, out, nullptr);
  const CheckReport rep = empty.verify(out);
  EXPECT_TRUE(rep.passed);
  EXPECT_EQ(rep.contributions, 0u);
}

TEST(FaultInjector, FiresExactlyOnceAndRecordsTheEvent) {
  FaultInjector inj;
  std::vector<double> data(16, 1.0);
  EXPECT_FALSE(inj.corrupt_one(FaultSite::kSchemeCombine, data))
      << "unarmed injector must be a no-op";
  inj.arm(FaultSite::kSchemeCombine, 7, 1);
  EXPECT_FALSE(inj.corrupt_one(FaultSite::kSpecCommit, data))
      << "wrong site must not consume the shot";
  EXPECT_TRUE(inj.corrupt_one(FaultSite::kSchemeCombine, data));
  EXPECT_FALSE(inj.corrupt_one(FaultSite::kSchemeCombine, data))
      << "one shot means one corruption";
  ASSERT_EQ(inj.injected(), 1u);
  const auto ev = inj.events()[0];
  EXPECT_EQ(ev.site, FaultSite::kSchemeCombine);
  EXPECT_EQ(ev.original, 1.0);
  EXPECT_EQ(ev.corrupted, data[ev.element]);
  EXPECT_GE(std::abs(ev.corrupted - ev.original), 1.0)
      << "corruption must clear every legal rounding tolerance";
}

// --- Wiring: rollback + demotion in the adaptive layer. ----------------

TEST(Checker, AdaptiveReducerRollsBackAndDemotesOnDetectedCorruption) {
  const ReductionInput in = detection_input();
  std::vector<double> ref(in.pattern.dim, 0.0);
  run_sequential(in, ref);

  ThreadPool pool(4);
  FaultInjector inj;
  AdaptiveOptions opt;
  opt.check.enabled = true;
  opt.check.sample_rate = 1.0;
  opt.fault_injector = &inj;
  AdaptiveReducer red(pool, MachineCoeffs::defaults(), opt);

  std::vector<double> out(in.pattern.dim, 0.0);
  (void)red.invoke(in, out);  // clean first invocation
  EXPECT_EQ(red.check_failures(), 0u);
  const unsigned rechar_before = red.recharacterizations();

  inj.arm(FaultSite::kSchemeCombine, 1234, 1);
  std::fill(out.begin(), out.end(), 0.0);
  (void)red.invoke(in, out);
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_EQ(red.check_failures(), 1u);
  // Recovery: the shipped output is the trusted serial result, bitwise.
  for (std::size_t e = 0; e < ref.size(); ++e)
    ASSERT_EQ(out[e], ref[e]) << "element " << e;
  // Demotion: correctness evidence forced a re-characterization.
  EXPECT_EQ(red.recharacterizations(), rechar_before + 1);

  // And the failure never recurs once the injector is spent.
  std::fill(out.begin(), out.end(), 0.0);
  (void)red.invoke(in, out);
  EXPECT_EQ(red.check_failures(), 1u);
  EXPECT_GE(red.checks_run(), 3u);
}

}  // namespace
}  // namespace sapp
