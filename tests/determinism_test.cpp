// Bitwise determinism of the parallel reduction schemes.
//
// The deterministic schemes (seq, rep, lw, sel, ll, hash) must produce
// bitwise-identical output run over run for a fixed RNG seed and thread
// count — floating-point combine order is part of their contract, and the
// pool rewrite / kernel tiling must not perturb it. For rep, sel and lw the
// test also checks against a straightforward serial emulation of the seed
// implementation's combine order (per-thread partials under the static
// block schedule, folded in ascending thread order), which pins the exact
// FP ordering the optimized kernels must preserve. ll and hash, whose seed
// merges used racy atomic accumulation (no defined order to preserve), are
// checked against the ascending-thread-order reference their rewritten
// sync-free merges promise. atomic and critical remain order-nondeterministic
// by construction and are covered by the tolerance suite in
// reductions_test.cpp.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "reductions/registry.hpp"
#include "reductions/scheme_lw.hpp"

namespace sapp {
namespace {

ReductionInput build_input(std::size_t dim, std::size_t iterations,
                           unsigned refs_per_iter, double theta,
                           unsigned body_flops, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> ptr{0};
  std::vector<std::uint32_t> idx;
  for (std::size_t i = 0; i < iterations; ++i) {
    for (unsigned r = 0; r < refs_per_iter; ++r)
      idx.push_back(static_cast<std::uint32_t>(rng.zipf(dim, theta)));
    ptr.push_back(idx.size());
  }
  ReductionInput in;
  in.pattern.dim = dim;
  in.pattern.refs = Csr(std::move(ptr), std::move(idx));
  in.pattern.body_flops = body_flops;
  in.values.resize(in.pattern.num_refs());
  for (auto& v : in.values) v = rng.uniform(-2.0, 2.0);
  return in;
}

std::vector<double> run_scheme(SchemeKind kind, const ReductionInput& in,
                               ThreadPool& pool) {
  std::vector<double> out(in.pattern.dim, 0.0);
  const auto scheme = make_scheme(kind);
  (void)scheme->run(in, pool, out);
  return out;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e)
    ASSERT_EQ(std::memcmp(&a[e], &b[e], sizeof(double)), 0)
        << what << ": element " << e << " differs: " << a[e] << " vs "
        << b[e];
}

// Per-thread dense partial accumulation under the static block schedule —
// the loop-phase order every privatizing scheme uses. `touched[t][e]`
// records first-touch so lazily initialized schemes (ll, hash) can skip
// never-touched elements in the reference fold.
struct SerialPartials {
  std::vector<std::vector<double>> val;
  std::vector<std::vector<bool>> touched;
};

SerialPartials serial_partials(const ReductionInput& in, unsigned P) {
  SerialPartials sp;
  sp.val.assign(P, std::vector<double>(in.pattern.dim, 0.0));
  sp.touched.assign(P, std::vector<bool>(in.pattern.dim, false));
  const auto& ptr = in.pattern.refs.row_ptr();
  const auto& idx = in.pattern.refs.indices();
  for (unsigned t = 0; t < P; ++t) {
    const Range rg = static_block(in.pattern.iterations(), t, P);
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      const double s = iteration_scale(i, in.pattern.body_flops);
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        const std::uint32_t e = idx[j];
        sp.val[t][e] += in.values[j] * s;
        sp.touched[t][e] = true;
      }
    }
  }
  return sp;
}

const SchemeKind kDeterministic[] = {SchemeKind::kSeq,      SchemeKind::kRep,
                                     SchemeKind::kLocalWrite,
                                     SchemeKind::kSelective, SchemeKind::kLinked,
                                     SchemeKind::kHash};

TEST(Determinism, RunToRunBitwiseIdentical) {
  const ReductionInput in = build_input(600, 2500, 3, 0.7, 2, 1234);
  for (const unsigned P : {1u, 3u, 4u}) {
    ThreadPool pool(P);
    for (const SchemeKind kind : kDeterministic) {
      const auto a = run_scheme(kind, in, pool);
      const auto b = run_scheme(kind, in, pool);
      expect_bitwise_equal(
          a, b,
          (std::string(to_string(kind)) + " P=" + std::to_string(P)).c_str());
    }
  }
}

TEST(Determinism, PlanReuseBitwiseIdentical) {
  // Reusing the inspector plan across invocations (the adaptive runtime's
  // steady state) must not change the result either.
  const ReductionInput in = build_input(400, 1500, 2, 0.5, 1, 77);
  ThreadPool pool(3);
  for (const SchemeKind kind : kDeterministic) {
    const auto scheme = make_scheme(kind);
    const auto plan = scheme->plan(in.pattern, pool.size());
    std::vector<double> a(in.pattern.dim, 0.0), b(in.pattern.dim, 0.0);
    (void)scheme->execute(plan.get(), in, pool, a);
    (void)scheme->execute(plan.get(), in, pool, b);
    expect_bitwise_equal(a, b, to_string(kind).data());
  }
}

TEST(Determinism, RepMatchesSeedCombineOrder) {
  // Seed rep: out[e], then private copies folded in ascending thread
  // order. The tiled merge must reproduce this bitwise.
  const ReductionInput in = build_input(700, 3000, 3, 0.6, 2, 42);
  for (const unsigned P : {1u, 2u, 4u}) {
    ThreadPool pool(P);
    const auto got = run_scheme(SchemeKind::kRep, in, pool);
    const SerialPartials sp = serial_partials(in, P);
    std::vector<double> ref(in.pattern.dim, 0.0);
    for (std::size_t e = 0; e < ref.size(); ++e)
      for (unsigned q = 0; q < P; ++q) ref[e] += sp.val[q][e];
    expect_bitwise_equal(got, ref, "rep vs seed order");
  }
}

TEST(Determinism, LinkedAndHashMatchAscendingThreadOrder) {
  // The rewritten sync-free merges promise: per element, touched partial
  // copies fold into out in ascending thread order.
  const ReductionInput in = build_input(500, 2000, 2, 0.9, 0, 7);
  for (const unsigned P : {1u, 3u}) {
    ThreadPool pool(P);
    const SerialPartials sp = serial_partials(in, P);
    std::vector<double> ref(in.pattern.dim, 0.0);
    for (std::size_t e = 0; e < ref.size(); ++e)
      for (unsigned q = 0; q < P; ++q)
        if (sp.touched[q][e]) ref[e] += sp.val[q][e];
    for (const SchemeKind kind : {SchemeKind::kLinked, SchemeKind::kHash}) {
      const auto got = run_scheme(kind, in, pool);
      expect_bitwise_equal(got, ref, to_string(kind).data());
    }
  }
}

TEST(Determinism, SelectiveMatchesSeedCombineOrder) {
  // Seed sel: exclusive elements accumulate straight into out in the
  // owning thread's iteration order; shared elements privatize and fold in
  // ascending thread order.
  const ReductionInput in = build_input(300, 2000, 3, 0.4, 1, 9);
  const unsigned P = 4;
  ThreadPool pool(P);
  const auto got = run_scheme(SchemeKind::kSelective, in, pool);

  // Classify shared elements exactly as the inspector does.
  const auto& ptr = in.pattern.refs.row_ptr();
  const auto& idx = in.pattern.refs.indices();
  std::vector<int> owner(in.pattern.dim, -1);
  std::vector<bool> shared(in.pattern.dim, false);
  for (unsigned t = 0; t < P; ++t) {
    const Range rg = static_block(in.pattern.iterations(), t, P);
    for (std::size_t i = rg.begin; i < rg.end; ++i)
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        const std::uint32_t e = idx[j];
        if (owner[e] < 0)
          owner[e] = static_cast<int>(t);
        else if (owner[e] != static_cast<int>(t))
          shared[e] = true;
      }
  }
  std::vector<double> ref(in.pattern.dim, 0.0);
  std::vector<std::vector<double>> priv(
      P, std::vector<double>(in.pattern.dim, 0.0));
  for (unsigned t = 0; t < P; ++t) {
    const Range rg = static_block(in.pattern.iterations(), t, P);
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      const double s = iteration_scale(i, in.pattern.body_flops);
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        const std::uint32_t e = idx[j];
        if (shared[e])
          priv[t][e] += in.values[j] * s;
        else
          ref[e] += in.values[j] * s;
      }
    }
  }
  for (std::size_t e = 0; e < ref.size(); ++e)
    if (shared[e])
      for (unsigned q = 0; q < P; ++q) ref[e] += priv[q][e];
  expect_bitwise_equal(got, ref, "sel vs seed order");
}

TEST(Determinism, LocalWriteMatchesSeedCombineOrder) {
  // Seed lw: each thread replays its relevant iterations in ascending
  // order and writes only owned elements.
  const ReductionInput in = build_input(256, 1500, 2, 0.3, 1, 11);
  const unsigned P = 3;
  ThreadPool pool(P);
  const auto got = run_scheme(SchemeKind::kLocalWrite, in, pool);

  const auto& ptr = in.pattern.refs.row_ptr();
  const auto& idx = in.pattern.refs.indices();
  std::vector<double> ref(in.pattern.dim, 0.0);
  for (unsigned t = 0; t < P; ++t) {
    for (std::size_t i = 0; i < in.pattern.iterations(); ++i) {
      bool relevant = false;
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1] && !relevant; ++j)
        relevant = LocalWriteScheme<>::owner_of(idx[j], in.pattern.dim, P) == t;
      if (!relevant) continue;
      const double s = iteration_scale(i, in.pattern.body_flops);
      for (std::uint64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        const std::uint32_t e = idx[j];
        if (LocalWriteScheme<>::owner_of(e, in.pattern.dim, P) == t)
          ref[e] += in.values[j] * s;
      }
    }
  }
  expect_bitwise_equal(got, ref, "lw vs seed order");
}

}  // namespace
}  // namespace sapp
